// Package collective implements the communication schedules of the paper's
// workloads: ring Allreduce and Alltoall (§5). The schedulers are transport
// agnostic — they drive an abstract Mesh of reliable connections, which the
// experiment harness (internal/workload) backs with simulated RDMA QPs.
package collective

import "fmt"

// Conn is one reliable, ordered, unidirectional connection between two group
// members (one RDMA QP in practice).
type Conn interface {
	// Send posts a message; sentDone fires when the last byte is
	// acknowledged at the sender.
	Send(bytes int64, sentDone func())
	// NotifyRecv registers fn to fire when the cumulative bytes delivered
	// in order at the receiver reach threshold. Thresholds must be posted
	// in non-decreasing order per connection; if the threshold has already
	// been crossed, fn fires immediately.
	NotifyRecv(threshold int64, fn func())
}

// Mesh provides connections between group ranks.
type Mesh interface {
	// Conn returns the connection from rank src to rank dst (src != dst).
	Conn(src, dst int) Conn
}

// Pattern names a collective schedule.
type Pattern int

const (
	// RingAllreduce is the bandwidth-optimal ring: 2(G-1) steps of S/G.
	RingAllreduce Pattern = iota
	// AllToAll is a full personalized exchange: G-1 messages of S/G.
	AllToAll
)

// String returns the pattern mnemonic.
func (p Pattern) String() string {
	switch p {
	case RingAllreduce:
		return "allreduce"
	case AllToAll:
		return "alltoall"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Run executes the pattern over a group of size g exchanging totalBytes,
// invoking onDone once every member has finished all sends and receives.
func Run(p Pattern, mesh Mesh, g int, totalBytes int64, onDone func()) {
	switch p {
	case RingAllreduce:
		RunRingAllreduce(mesh, g, totalBytes, onDone)
	case AllToAll:
		RunAllToAll(mesh, g, totalBytes, onDone)
	default:
		panic(fmt.Sprintf("collective: unknown pattern %d", int(p)))
	}
}

// chunkSize splits totalBytes across g chunks, rounding up so every chunk
// carries at least one byte.
func chunkSize(totalBytes int64, g int) int64 {
	c := (totalBytes + int64(g) - 1) / int64(g)
	if c < 1 {
		c = 1
	}
	return c
}

// RunRingAllreduce schedules a ring Allreduce over g ranks: 2(g-1) steps; in
// each step every rank sends a chunk of totalBytes/g to its ring successor,
// and a rank may start step s+1 only after receiving the step-s chunk from
// its predecessor (the data dependency of reduce-scatter/allgather).
// A group of one completes immediately.
func RunRingAllreduce(mesh Mesh, g int, totalBytes int64, onDone func()) {
	if g < 1 {
		panic("collective: group size must be >= 1")
	}
	steps := 2 * (g - 1)
	if steps == 0 {
		if onDone != nil {
			onDone()
		}
		return
	}
	chunk := chunkSize(totalBytes, g)
	remaining := g * steps * 2 // a send-ack and a receive per rank per step
	finish := func() {
		remaining--
		if remaining == 0 && onDone != nil {
			onDone()
		}
	}
	for rank := 0; rank < g; rank++ {
		rank := rank
		succ := mesh.Conn(rank, (rank+1)%g)
		pred := mesh.Conn((rank+g-1)%g, rank)
		// Post the first send immediately; later sends chain off receives.
		succ.Send(chunk, finish)
		for s := 1; s < steps; s++ {
			s := s
			pred.NotifyRecv(int64(s)*chunk, func() {
				finish() // receive s-1 done
				succ.Send(chunk, finish)
			})
		}
		// The final step's receive.
		pred.NotifyRecv(int64(steps)*chunk, finish)
	}
}

// RunAllToAll schedules a full personalized exchange: every rank sends
// totalBytes/g to each of the other g-1 ranks, all messages posted up front
// (as NCCL's alltoall does). Completion requires every send acknowledged and
// every receive fully delivered.
func RunAllToAll(mesh Mesh, g int, totalBytes int64, onDone func()) {
	if g < 1 {
		panic("collective: group size must be >= 1")
	}
	if g == 1 {
		if onDone != nil {
			onDone()
		}
		return
	}
	chunk := chunkSize(totalBytes, g)
	remaining := g * (g - 1) * 2 // send-ack + receive per ordered pair
	finish := func() {
		remaining--
		if remaining == 0 && onDone != nil {
			onDone()
		}
	}
	for src := 0; src < g; src++ {
		for off := 1; off < g; off++ {
			dst := (src + off) % g
			mesh.Conn(src, dst).Send(chunk, finish)
			mesh.Conn(src, dst).NotifyRecv(chunk, finish)
		}
	}
}
