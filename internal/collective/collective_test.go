package collective

import (
	"fmt"
	"testing"
	"testing/quick"
)

// fakeConn is an in-memory connection with manually pumped delivery.
type fakeConn struct {
	src, dst  int
	sent      []int64 // posted messages
	acked     int     // how many sends have been acked
	delivered int64   // cumulative delivered bytes
	sentDone  []func()
	notifies  []notify
}

type notify struct {
	threshold int64
	fn        func()
}

func (c *fakeConn) Send(bytes int64, sentDone func()) {
	c.sent = append(c.sent, bytes)
	c.sentDone = append(c.sentDone, sentDone)
}

func (c *fakeConn) NotifyRecv(threshold int64, fn func()) {
	if c.delivered >= threshold {
		fn()
		return
	}
	c.notifies = append(c.notifies, notify{threshold, fn})
}

// deliverNext acks the oldest un-acked send and delivers its bytes.
func (c *fakeConn) deliverNext() bool {
	if c.acked >= len(c.sent) {
		return false
	}
	bytes := c.sent[c.acked]
	done := c.sentDone[c.acked]
	c.acked++
	if done != nil {
		done()
	}
	c.delivered += bytes
	for len(c.notifies) > 0 && c.notifies[0].threshold <= c.delivered {
		fn := c.notifies[0].fn
		c.notifies = c.notifies[1:]
		fn()
	}
	return true
}

type fakeMesh struct {
	conns map[string]*fakeConn
}

func newFakeMesh() *fakeMesh { return &fakeMesh{conns: make(map[string]*fakeConn)} }

func (m *fakeMesh) Conn(src, dst int) Conn {
	k := fmt.Sprintf("%d-%d", src, dst)
	c, ok := m.conns[k]
	if !ok {
		c = &fakeConn{src: src, dst: dst}
		m.conns[k] = c
	}
	return c
}

// pump drains all in-flight messages until quiescent.
func (m *fakeMesh) pump() {
	for {
		progressed := false
		for _, c := range m.conns {
			for c.deliverNext() {
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

func TestRingAllreduceCompletes(t *testing.T) {
	for _, g := range []int{2, 3, 4, 8, 16} {
		m := newFakeMesh()
		done := 0
		RunRingAllreduce(m, g, 1600, func() { done++ })
		m.pump()
		if done != 1 {
			t.Fatalf("g=%d: done=%d", g, done)
		}
		// Every rank used exactly one outgoing connection with 2(g-1) sends.
		steps := 2 * (g - 1)
		for _, c := range m.conns {
			if len(c.sent) != steps {
				t.Fatalf("g=%d: conn %d->%d sent %d messages, want %d", g, c.src, c.dst, len(c.sent), steps)
			}
		}
		if len(m.conns) != g {
			t.Fatalf("g=%d: %d connections, want %d (ring)", g, len(m.conns), g)
		}
	}
}

func TestRingAllreduceChunkSizes(t *testing.T) {
	m := newFakeMesh()
	RunRingAllreduce(m, 4, 1000, nil) // chunk = ceil(1000/4) = 250
	m.pump()
	for _, c := range m.conns {
		for _, b := range c.sent {
			if b != 250 {
				t.Fatalf("chunk = %d, want 250", b)
			}
		}
	}
}

func TestRingAllreduceDependency(t *testing.T) {
	// Without pumping, only step-0 sends may be posted: step s needs the
	// step s-1 receive.
	m := newFakeMesh()
	RunRingAllreduce(m, 4, 1600, nil)
	for _, c := range m.conns {
		if len(c.sent) != 1 {
			t.Fatalf("conn %d->%d posted %d sends before any receive", c.src, c.dst, len(c.sent))
		}
	}
	// Deliver exactly one message on the 0->1 connection: rank 1 may then
	// post its step-1 send (on 1->2), and nothing else changes.
	m.Conn(0, 1).(*fakeConn).deliverNext()
	if got := len(m.Conn(1, 2).(*fakeConn).sent); got != 2 {
		t.Fatalf("rank 1 posted %d sends after its first receive, want 2", got)
	}
	if got := len(m.Conn(2, 3).(*fakeConn).sent); got != 1 {
		t.Fatalf("rank 2 posted %d sends without receiving", got)
	}
}

func TestRingAllreduceGroupOfOne(t *testing.T) {
	done := 0
	RunRingAllreduce(newFakeMesh(), 1, 1000, func() { done++ })
	if done != 1 {
		t.Fatal("g=1 should complete immediately")
	}
}

func TestRingAllreduceBadGroupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunRingAllreduce(newFakeMesh(), 0, 1000, nil)
}

func TestAllToAllCompletes(t *testing.T) {
	for _, g := range []int{2, 3, 4, 8} {
		m := newFakeMesh()
		done := 0
		RunAllToAll(m, g, 800, func() { done++ })
		m.pump()
		if done != 1 {
			t.Fatalf("g=%d: done=%d", g, done)
		}
		if len(m.conns) != g*(g-1) {
			t.Fatalf("g=%d: %d connections, want %d", g, len(m.conns), g*(g-1))
		}
		for _, c := range m.conns {
			if len(c.sent) != 1 {
				t.Fatalf("alltoall conn sent %d messages", len(c.sent))
			}
		}
	}
}

func TestAllToAllPostsAllUpFront(t *testing.T) {
	m := newFakeMesh()
	RunAllToAll(m, 4, 800, nil)
	posted := 0
	for _, c := range m.conns {
		posted += len(c.sent)
	}
	if posted != 12 {
		t.Fatalf("posted %d sends up front, want 12", posted)
	}
}

func TestAllToAllGroupOfOne(t *testing.T) {
	done := 0
	RunAllToAll(newFakeMesh(), 1, 100, func() { done++ })
	if done != 1 {
		t.Fatal("g=1 should complete immediately")
	}
}

func TestRunDispatch(t *testing.T) {
	for _, p := range []Pattern{RingAllreduce, AllToAll} {
		m := newFakeMesh()
		done := 0
		Run(p, m, 2, 100, func() { done++ })
		m.pump()
		if done != 1 {
			t.Fatalf("%v: done=%d", p, done)
		}
	}
}

func TestRunUnknownPatternPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(Pattern(99), newFakeMesh(), 2, 100, nil)
}

func TestPatternString(t *testing.T) {
	if RingAllreduce.String() != "allreduce" || AllToAll.String() != "alltoall" {
		t.Fatal("pattern names")
	}
	if Pattern(5).String() != "Pattern(5)" {
		t.Fatal("unknown pattern name")
	}
}

func TestChunkSize(t *testing.T) {
	if chunkSize(1000, 4) != 250 || chunkSize(1001, 4) != 251 || chunkSize(1, 16) != 1 {
		t.Fatal("chunk sizing")
	}
}

// Conservation: a ring allreduce moves exactly 2(G-1) x chunk bytes out of
// every rank, and every byte sent is delivered.
func TestRingAllreduceConservationProperty(t *testing.T) {
	f := func(gRaw uint8, sizeRaw uint16) bool {
		g := int(gRaw%15) + 2
		size := int64(sizeRaw) + 1
		m := newFakeMesh()
		done := false
		RunRingAllreduce(m, g, size, func() { done = true })
		m.pump()
		if !done {
			return false
		}
		chunk := chunkSize(size, g)
		want := int64(2*(g-1)) * chunk
		for _, c := range m.conns {
			var sent int64
			for _, b := range c.sent {
				sent += b
			}
			if sent != want || c.delivered != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Alltoall conservation: every ordered pair exchanges exactly one chunk.
func TestAllToAllConservationProperty(t *testing.T) {
	f := func(gRaw uint8, sizeRaw uint16) bool {
		g := int(gRaw%10) + 2
		size := int64(sizeRaw) + 1
		m := newFakeMesh()
		done := false
		RunAllToAll(m, g, size, func() { done = true })
		m.pump()
		if !done {
			return false
		}
		chunk := chunkSize(size, g)
		if len(m.conns) != g*(g-1) {
			return false
		}
		for _, c := range m.conns {
			if len(c.sent) != 1 || c.sent[0] != chunk || c.delivered != chunk {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
