package exp

import (
	"fmt"

	"themis/internal/chaos"
	"themis/internal/core"
	"themis/internal/fabric"
	"themis/internal/obs"
	"themis/internal/rnic"
	"themis/internal/sim"
	"themis/internal/trace"
	"themis/internal/workload"
)

// Trial is the result record of one scenario run: the scenario echoed back
// (artifacts are self-describing), the headline metrics every workload maps
// onto, and the raw counter blocks. Fixed fields only — the JSON form must be
// byte-identical across runs.
type Trial struct {
	Name     string   `json:"name"`
	Scenario Scenario `json:"scenario"`
	// Err is non-empty if the run failed (e.g. incomplete at the horizon);
	// metric fields are zero in that case.
	Err string `json:"err,omitempty"`

	// CCTMillis is the completion time of the workload in milliseconds —
	// tail-group CCT for collectives, last-flow completion for motivation
	// and chaos, last-ack for incast.
	CCTMillis float64 `json:"cct_ms"`
	// RetransRatio is retransmitted/total data packets over all flows.
	RetransRatio float64 `json:"retrans_ratio"`
	// GoodputGbps is the workload's aggregate goodput where defined
	// (motivation: mean per-flow throughput; incast: receiver goodput).
	GoodputGbps float64 `json:"goodput_gbps,omitempty"`
	// AvgRateGbps is the observed flow's mean DCQCN sending rate
	// (motivation only, Fig. 1c).
	AvgRateGbps float64 `json:"avg_rate_gbps,omitempty"`

	// TableBytesPeak/TableBudgetBytes record the peak flow-table occupancy
	// against the configured §4 budget (churn scenarios only).
	TableBytesPeak   int `json:"table_bytes_peak,omitempty"`
	TableBudgetBytes int `json:"table_budget_bytes,omitempty"`

	// Counter blocks.
	Sender     rnic.SenderStats `json:"sender"`
	Middleware core.Stats       `json:"middleware"`
	Net        fabric.Counters  `json:"net"`
	Engine     sim.Metrics      `json:"engine"`

	// Violations lists invariant violations (chaos scenarios only).
	Violations []string `json:"violations,omitempty"`

	// Metrics is the trial's metrics-registry snapshot (RunObserved with
	// Obs.Metrics; nil otherwise).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// FlightDump is the path of the flight-recorder dump written when an
	// armed trial failed, panicked or violated an invariant.
	FlightDump string `json:"flight_dump,omitempty"`
}

// Obs configures the observability harness of a trial (all fields optional;
// the zero value observes nothing and adds no cost).
type Obs struct {
	// Tracer, if non-nil, records the run's packet and middleware events.
	// Owned by the caller; with Runner parallelism > 1 leave it nil (a shared
	// ring would race) and use FlightDir, which is per-trial.
	Tracer *trace.Tracer
	// Metrics creates a per-trial metrics registry; its snapshot lands in
	// Trial.Metrics.
	Metrics bool
	// FlightDir, if non-empty, arms a per-trial flight recorder: the run
	// records into a bounded ring and, when the trial errors, panics or
	// violates an invariant, the retained window is dumped to
	// <FlightDir>/flight-<label>.jsonl for `themis-sim inspect`. Ignored when
	// Tracer is set (the caller already owns the ring).
	FlightDir string
	// FlightCapacity sizes the flight ring (default obs.DefaultFlightCapacity).
	FlightCapacity int
}

// Run executes one scenario to completion on a private engine and returns its
// trial record. Failures are reported in Trial.Err, never by panicking, so a
// grid run surfaces every bad cell at once.
func Run(sc Scenario) Trial {
	return RunObserved(sc, Obs{})
}

// RunObserved is Run with the observability harness attached: an optional
// event tracer or per-trial flight recorder, and an optional per-trial
// metrics registry snapshotted into the result. A panicking workload is
// converted into Trial.Err (with a flight dump when armed) instead of taking
// the whole grid down.
func RunObserved(sc Scenario, o Obs) (t Trial) {
	// Identify the trial up front so a panic dump still carries its label.
	t = Trial{Name: sc.Label(), Scenario: sc}
	var flight *obs.FlightRecorder
	tr := o.Tracer
	if tr == nil && o.FlightDir != "" {
		flight = obs.NewFlightRecorder(o.FlightDir, o.FlightCapacity)
		tr = flight.Tracer()
	}
	var reg *obs.Registry
	if o.Metrics {
		reg = obs.NewRegistry()
	}
	dump := func(violations []string) {
		if flight == nil {
			return
		}
		path, err := flight.Dump(t.Name, sc.Seed, violations)
		if err != nil {
			t.Err += "; " + obs.DumpError(err)
			return
		}
		t.FlightDump = path
	}
	defer func() {
		if r := recover(); r != nil {
			t.Err = fmt.Sprintf("panic: %v", r)
			dump([]string{t.Err})
		}
	}()
	t = run(sc, tr, reg)
	t.Metrics = reg.Snapshot()
	if t.Err != "" || len(t.Violations) > 0 {
		dump(t.Violations)
	}
	return t
}

// run dispatches the scenario to its workload runner with the observability
// hooks threaded through.
func run(sc Scenario, tr *trace.Tracer, reg *obs.Registry) Trial {
	t := Trial{Name: sc.Label(), Scenario: sc}
	switch sc.Workload {
	case Motivation:
		cfg := sc.motivationConfig()
		cfg.Tracer, cfg.Metrics = tr, reg
		res, err := workload.RunMotivation(cfg)
		if err != nil {
			t.Err = err.Error()
			return t
		}
		t.CCTMillis = res.CompletionTime.Seconds() * 1e3
		t.RetransRatio = res.AvgRetransRatio
		t.GoodputGbps = res.AvgThroughput
		t.AvgRateGbps = res.AvgRateGbps
		t.Sender = res.Sender
		t.Engine = res.Engine
	case Collective:
		cfg := sc.collectiveConfig()
		cfg.Tracer, cfg.Metrics = tr, reg
		res, err := workload.RunCollective(cfg)
		if err != nil {
			t.Err = err.Error()
			return t
		}
		t.CCTMillis = res.TailCCT.Seconds() * 1e3
		t.RetransRatio = res.RetransRatio()
		t.Sender = res.Sender
		t.Middleware = res.Middleware
		t.Net = res.Net
		t.Engine = res.Engine
	case Incast:
		cfg := sc.incastConfig()
		cfg.Tracer, cfg.Metrics = tr, reg
		res, err := workload.RunIncast(cfg)
		if err != nil {
			t.Err = err.Error()
			return t
		}
		t.CCTMillis = res.CCT.Seconds() * 1e3
		t.GoodputGbps = res.GoodputGbps
		t.Sender = rnic.SenderStats{
			Retransmits: res.Sender.Retransmits,
			Timeouts:    res.Sender.Timeouts,
			NacksRx:     res.Sender.NacksRx,
		}
		t.Net.DataDrops = res.Drops
		t.Engine = res.Engine
	case Chaos:
		opt := sc.chaosOptions()
		opt.Tracer, opt.Metrics = tr, reg
		// The fault generator needs the topology; probe-build the cluster
		// once (cheap: no traffic runs on it).
		probe, err := chaos.BuildCluster(chaos.Scenario{Seed: sc.Seed}, opt)
		if err != nil {
			t.Err = err.Error()
			return t
		}
		res, err := chaos.RunScenario(chaos.Generate(sc.Seed, probe.Topo), opt)
		if err != nil {
			t.Err = err.Error()
			return t
		}
		t.CCTMillis = res.End.Seconds() * 1e3
		if res.Sender.DataPackets > 0 {
			t.RetransRatio = float64(res.Sender.Retransmits) / float64(res.Sender.DataPackets)
		}
		t.Sender = res.Sender
		t.Middleware = res.Middleware
		t.Net = res.Net
		t.Engine = res.Engine
		t.Violations = res.Violations
	case Convergence:
		opt := sc.convergenceOptions()
		opt.Tracer, opt.Metrics = tr, reg
		probe, err := chaos.BuildCluster(chaos.Scenario{Seed: sc.Seed}, opt)
		if err != nil {
			t.Err = err.Error()
			return t
		}
		csc := chaos.GenerateConvergence(sc.Seed, probe.Topo)
		if sc.Drain {
			csc.Faults = append(csc.Faults, chaos.DrainFault(probe.Topo))
		}
		res, err := chaos.RunScenario(csc, opt)
		if err != nil {
			t.Err = err.Error()
			return t
		}
		t.CCTMillis = res.End.Seconds() * 1e3
		if res.Sender.DataPackets > 0 {
			t.RetransRatio = float64(res.Sender.Retransmits) / float64(res.Sender.DataPackets)
		}
		t.Sender = res.Sender
		t.Middleware = res.Middleware
		t.Net = res.Net
		t.Engine = res.Engine
		t.Violations = res.Violations
	case Churn:
		cfg := sc.churnConfig()
		cfg.Tracer, cfg.Metrics = tr, reg
		res, err := workload.RunChurn(cfg)
		if err != nil {
			t.Err = err.Error()
			return t
		}
		t.CCTMillis = res.End.Seconds() * 1e3
		if res.Sender.DataPackets > 0 {
			t.RetransRatio = float64(res.Sender.Retransmits) / float64(res.Sender.DataPackets)
		}
		t.GoodputGbps = res.GoodputGbps
		t.TableBytesPeak = res.MaxTableBytes
		t.TableBudgetBytes = res.TableBudgetBytes
		t.Sender = res.Sender
		t.Middleware = res.Middleware
		t.Net = res.Net
		t.Engine = res.Engine
		t.Violations = res.Violations
	case Spray:
		if tr != nil || reg != nil {
			t.Err = "exp: spray does not support tracing or metrics (global observability state cannot span shards; see fabric.NewShardedNetwork)"
			return t
		}
		res, err := workload.RunSpray(sc.sprayConfig())
		if err != nil {
			t.Err = err.Error()
			return t
		}
		t.CCTMillis = res.CCT.Seconds() * 1e3
		t.Sender = rnic.SenderStats{
			Retransmits: res.Sender.Retransmits,
			Timeouts:    res.Sender.Timeouts,
			NacksRx:     res.Sender.NacksRx,
		}
		t.Net = res.Net
		// Only the partition-invariant engine counters go into the artifact:
		// the allocator fields (allocs, reuses, heap depth) depend on how the
		// event set is cut across shards, and Trial bytes must not vary with
		// the Shards execution knob.
		t.Engine = sim.Metrics{
			EventsExecuted:  res.Engine.EventsExecuted,
			EventsCancelled: res.Engine.EventsCancelled,
		}
	default:
		t.Err = fmt.Sprintf("exp: unknown workload %q", sc.Workload)
	}
	return t
}
