package exp

import (
	"fmt"

	"themis/internal/chaos"
	"themis/internal/core"
	"themis/internal/fabric"
	"themis/internal/rnic"
	"themis/internal/sim"
	"themis/internal/workload"
)

// Trial is the result record of one scenario run: the scenario echoed back
// (artifacts are self-describing), the headline metrics every workload maps
// onto, and the raw counter blocks. Fixed fields only — the JSON form must be
// byte-identical across runs.
type Trial struct {
	Name     string   `json:"name"`
	Scenario Scenario `json:"scenario"`
	// Err is non-empty if the run failed (e.g. incomplete at the horizon);
	// metric fields are zero in that case.
	Err string `json:"err,omitempty"`

	// CCTMillis is the completion time of the workload in milliseconds —
	// tail-group CCT for collectives, last-flow completion for motivation
	// and chaos, last-ack for incast.
	CCTMillis float64 `json:"cct_ms"`
	// RetransRatio is retransmitted/total data packets over all flows.
	RetransRatio float64 `json:"retrans_ratio"`
	// GoodputGbps is the workload's aggregate goodput where defined
	// (motivation: mean per-flow throughput; incast: receiver goodput).
	GoodputGbps float64 `json:"goodput_gbps,omitempty"`
	// AvgRateGbps is the observed flow's mean DCQCN sending rate
	// (motivation only, Fig. 1c).
	AvgRateGbps float64 `json:"avg_rate_gbps,omitempty"`

	// Counter blocks.
	Sender     rnic.SenderStats `json:"sender"`
	Middleware core.Stats       `json:"middleware"`
	Net        fabric.Counters  `json:"net"`
	Engine     sim.Metrics      `json:"engine"`

	// Violations lists invariant violations (chaos scenarios only).
	Violations []string `json:"violations,omitempty"`
}

// Run executes one scenario to completion on a private engine and returns its
// trial record. Failures are reported in Trial.Err, never by panicking, so a
// grid run surfaces every bad cell at once.
func Run(sc Scenario) Trial {
	t := Trial{Name: sc.Label(), Scenario: sc}
	switch sc.Workload {
	case Motivation:
		res, err := workload.RunMotivation(sc.motivationConfig())
		if err != nil {
			t.Err = err.Error()
			return t
		}
		t.CCTMillis = res.CompletionTime.Seconds() * 1e3
		t.RetransRatio = res.AvgRetransRatio
		t.GoodputGbps = res.AvgThroughput
		t.AvgRateGbps = res.AvgRateGbps
		t.Sender = res.Sender
		t.Engine = res.Engine
	case Collective:
		res, err := workload.RunCollective(sc.collectiveConfig())
		if err != nil {
			t.Err = err.Error()
			return t
		}
		t.CCTMillis = res.TailCCT.Seconds() * 1e3
		t.RetransRatio = res.RetransRatio()
		t.Sender = res.Sender
		t.Middleware = res.Middleware
		t.Net = res.Net
		t.Engine = res.Engine
	case Incast:
		res, err := workload.RunIncast(sc.incastConfig())
		if err != nil {
			t.Err = err.Error()
			return t
		}
		t.CCTMillis = res.CCT.Seconds() * 1e3
		t.GoodputGbps = res.GoodputGbps
		t.Sender = rnic.SenderStats{
			Retransmits: res.Sender.Retransmits,
			Timeouts:    res.Sender.Timeouts,
			NacksRx:     res.Sender.NacksRx,
		}
		t.Net.DataDrops = res.Drops
		t.Engine = res.Engine
	case Chaos:
		opt := sc.chaosOptions()
		// The fault generator needs the topology; probe-build the cluster
		// once (cheap: no traffic runs on it).
		probe, err := chaos.BuildCluster(chaos.Scenario{Seed: sc.Seed}, opt)
		if err != nil {
			t.Err = err.Error()
			return t
		}
		res, err := chaos.RunScenario(chaos.Generate(sc.Seed, probe.Topo), opt)
		if err != nil {
			t.Err = err.Error()
			return t
		}
		t.CCTMillis = res.End.Seconds() * 1e3
		if res.Sender.DataPackets > 0 {
			t.RetransRatio = float64(res.Sender.Retransmits) / float64(res.Sender.DataPackets)
		}
		t.Sender = res.Sender
		t.Middleware = res.Middleware
		t.Net = res.Net
		t.Engine = res.Engine
		t.Violations = res.Violations
	default:
		t.Err = fmt.Sprintf("exp: unknown workload %q", sc.Workload)
	}
	return t
}
