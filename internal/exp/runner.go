package exp

import "sync"

// Runner executes a grid of scenarios across a worker pool. Each trial owns
// its own engine, packet pool and RNG, so trials never share mutable state;
// results land in the output slice at their scenario's index, making the
// trial order — and therefore the serialized report — independent of the
// worker count and of scheduling.
type Runner struct {
	// Parallel is the worker count; values < 1 mean 1 (sequential).
	Parallel int
	// Obs is the per-trial observability configuration. Flight recorders and
	// metrics registries are created per trial, so every Obs field except
	// Tracer is parallel-safe; a shared Tracer requires Parallel <= 1.
	Obs Obs
}

// Run executes every scenario and returns one trial per scenario, in input
// order. Per-scenario failures are carried in Trial.Err.
func (r Runner) Run(grid []Scenario) []Trial {
	out := make([]Trial, len(grid))
	workers := r.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(grid) {
		workers = len(grid)
	}
	if workers <= 1 {
		for i := range grid {
			out[i] = RunObserved(grid[i], r.Obs)
		}
		return out
	}
	if r.Obs.Tracer != nil {
		panic("exp: Runner with a shared Obs.Tracer requires Parallel <= 1 (use Obs.FlightDir for per-trial rings)")
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = RunObserved(grid[i], r.Obs)
			}
		}()
	}
	for i := range grid {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
