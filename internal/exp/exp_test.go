package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"themis/internal/collective"
	"themis/internal/obs"
	"themis/internal/rnic"
	"themis/internal/workload"
)

// testGrid exercises every workload family at miniature sizes.
func testGrid() []Scenario {
	grid := SmokeGrid(1, 2) // 2 collective cells + 1 chaos soak
	grid = append(grid, Scenario{
		Name:         "motivation-small",
		Workload:     Motivation,
		Seed:         3,
		Transport:    rnic.SelectiveRepeat,
		MessageBytes: 1 << 20,
	})
	grid = append(grid, Scenario{
		Name:         "incast-small",
		Workload:     Incast,
		Seed:         4,
		Senders:      4,
		MessageBytes: 512 << 10,
	})
	grid = append(grid, ChurnGrid(5, 1)...)
	// First four convergence cells: the three delay-0 spray arms plus one
	// slow-control-plane cell, so the determinism check covers the
	// distributed routing plane with and without in-flight route messages.
	grid = append(grid, ConvergenceGrid(6, 1)[:4]...)
	return grid
}

// The tentpole's determinism guarantee: the same grid produces byte-identical
// serialized reports at any parallelism level, because every trial owns its
// own engine, pool and RNG and results land at their scenario's index. This
// mirrors internal/chaos TestRunDeterminism one layer up.
func TestRunnerParallelDeterminism(t *testing.T) {
	grid := testGrid()
	seq := NewReport("determinism", Runner{Parallel: 1}.Run(grid))
	par := NewReport("determinism", Runner{Parallel: 8}.Run(grid))
	a, err := seq.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("parallel=1 and parallel=8 reports differ:\n--- seq ---\n%s\n--- par ---\n%s", a, b)
	}
	for i, tr := range seq.Trials {
		if tr.Err != "" {
			t.Fatalf("trial %d (%s) failed: %s", i, tr.Name, tr.Err)
		}
	}
}

// The shard-determinism guarantee, enforced the same way as worker-count
// determinism above: the serialized report is byte-identical for every shard
// count. Legacy workloads prove the coordinator is inert (any Shards > 0
// drives the classic engine through a single-shard group); the spray cells
// genuinely repartition the fat tree across engines, so they prove the
// mailbox drain order, per-channel priorities and partition-invariant RNG
// streams reproduce the single-shard schedule exactly.
func TestShardCountDeterminism(t *testing.T) {
	grid := testGrid()
	grid = append(grid, SprayGrid(8)...)
	withShards := func(n int) []Scenario {
		out := make([]Scenario, len(grid))
		for i, sc := range grid {
			sc.Shards = n
			out[i] = sc
		}
		return out
	}
	base := NewReport("shard-determinism", Runner{Parallel: 4}.Run(withShards(0)))
	want, err := base.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range base.Trials {
		if tr.Err != "" {
			t.Fatalf("trial %d (%s) failed: %s", i, tr.Name, tr.Err)
		}
	}
	for _, shards := range []int{1, 2, 4} {
		rep := NewReport("shard-determinism", Runner{Parallel: 4}.Run(withShards(shards)))
		got, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("shards=%d report differs from shards=0:\n--- base ---\n%s\n--- got ---\n%s", shards, want, got)
		}
	}
}

func TestRunnerPreservesOrderAndReportsErrors(t *testing.T) {
	grid := []Scenario{
		{Name: "bad", Workload: Workload("nope"), Seed: 1},
		SmokeGrid(5)[0],
	}
	trials := Runner{Parallel: 4}.Run(grid)
	if len(trials) != 2 {
		t.Fatalf("got %d trials", len(trials))
	}
	if trials[0].Name != "bad" || trials[1].Name != grid[1].Name {
		t.Fatalf("order not preserved: %q, %q", trials[0].Name, trials[1].Name)
	}
	if !strings.Contains(trials[0].Err, "unknown workload") {
		t.Fatalf("bad workload Err = %q", trials[0].Err)
	}
	if trials[1].Err != "" {
		t.Fatalf("good trial failed: %s", trials[1].Err)
	}
	rep := NewReport("x", trials)
	if rep.Aggregate.Errors != 1 {
		t.Fatalf("Aggregate.Errors = %d, want 1", rep.Aggregate.Errors)
	}
	// The failed trial contributes nothing to the metric summaries.
	if rep.Aggregate.CCTMillis.Count != 1 {
		t.Fatalf("CCT summary count = %d, want 1", rep.Aggregate.CCTMillis.Count)
	}
}

func TestTrialCarriesEngineMetrics(t *testing.T) {
	tr := Run(SmokeGrid(1)[0])
	if tr.Err != "" {
		t.Fatal(tr.Err)
	}
	if tr.CCTMillis <= 0 {
		t.Fatalf("CCT = %g", tr.CCTMillis)
	}
	if tr.Engine.EventsExecuted == 0 {
		t.Fatal("engine metrics not captured")
	}
	// The free list must be doing its job on a real workload: reuses should
	// dwarf fresh allocations.
	if tr.Engine.EventReuses < tr.Engine.EventAllocs {
		t.Fatalf("event reuses %d < allocs %d", tr.Engine.EventReuses, tr.Engine.EventAllocs)
	}
	if tr.Sender.DataPackets == 0 {
		t.Fatal("sender counters not captured")
	}
}

func TestLinkFailureScenarioCompletes(t *testing.T) {
	tr := Run(LinkFailureScenario(7))
	if tr.Err != "" {
		t.Fatal(tr.Err)
	}
	if tr.Middleware.Bypassed == 0 {
		t.Fatal("link failure never engaged the ECMP fallback (no bypassed packets)")
	}
}

func TestLossRecoveryGridCompensationEffect(t *testing.T) {
	trials := Runner{Parallel: 2}.Run(LossRecoveryGrid(7))
	for _, tr := range trials {
		if tr.Err != "" {
			t.Fatalf("%s: %s", tr.Name, tr.Err)
		}
	}
	// With compensation disabled, blocked-but-real losses must wait for the
	// RTO: strictly more timeouts than the compensating arm.
	if trials[1].Sender.Timeouts <= trials[0].Sender.Timeouts {
		t.Fatalf("timeouts: comp=on %d, comp=off %d — compensation had no effect",
			trials[0].Sender.Timeouts, trials[1].Sender.Timeouts)
	}
}

func TestGridShapes(t *testing.T) {
	if g := Fig5Grid(1, 3<<20, collective.RingAllreduce); len(g) != 15 {
		t.Fatalf("Fig5Grid = %d cells, want 15", len(g))
	}
	if g := Fig1Grid(10<<20, 1, 2); len(g) != 4 {
		t.Fatalf("Fig1Grid = %d cells, want 4", len(g))
	}
	if g := ChaosGrid(5, 3); len(g) != 3 || g[2].Seed != 7 {
		t.Fatalf("ChaosGrid = %+v", g)
	}
	// 3 delays × 3 arms per seed, every cell on the distributed plane.
	if g := ConvergenceGrid(5, 2); len(g) != 18 {
		t.Fatalf("ConvergenceGrid = %d cells, want 18", len(g))
	} else {
		for _, sc := range g {
			if !sc.DistributedRouting {
				t.Fatalf("%s: not distributed", sc.Name)
			}
		}
	}
	// Names must be unique within each grid — they key the artifact rows.
	for _, grid := range [][]Scenario{
		Fig5Grid(1, 3<<20, collective.AllToAll),
		Fig1Grid(10<<20, 1),
		QueueFactorGrid(7, []float64{0.05, 1.5}),
		PathSubsetGrid(7, []int{1, 4, 16}),
		LossRecoveryGrid(7),
		SmokeGrid(1, 2),
		ChurnGrid(7, 2),
		ConvergenceGrid(7, 2),
	} {
		seen := map[string]bool{}
		for _, sc := range grid {
			if sc.Name == "" || seen[sc.Name] {
				t.Fatalf("duplicate or empty scenario name %q", sc.Name)
			}
			seen[sc.Name] = true
		}
	}
}

// TestChurnGridTrials runs one churn seed through the harness and checks the
// lifecycle story end to end: the budgeted arms stay under the §4 budget and
// actually evict, the no-relearn arm exercises conservative NACK forwarding,
// and the unbounded baseline never evicts.
func TestChurnGridTrials(t *testing.T) {
	trials := Runner{Parallel: 3}.Run(ChurnGrid(11, 1))
	if len(trials) != 3 {
		t.Fatalf("trials = %d, want 3", len(trials))
	}
	for _, tr := range trials {
		if tr.Err != "" {
			t.Fatalf("%s failed: %s", tr.Name, tr.Err)
		}
		if len(tr.Violations) != 0 {
			t.Errorf("%s: violations %v", tr.Name, tr.Violations)
		}
	}
	relearn, ecmp, unbounded := trials[0], trials[1], trials[2]
	for _, tr := range []Trial{relearn, ecmp} {
		if tr.TableBudgetBytes == 0 {
			t.Fatalf("%s: budget not recorded", tr.Name)
		}
		if tr.TableBytesPeak > tr.TableBudgetBytes {
			t.Errorf("%s: peak %d B over budget %d B", tr.Name, tr.TableBytesPeak, tr.TableBudgetBytes)
		}
		if tr.Middleware.Evictions == 0 {
			t.Errorf("%s: budget never evicted", tr.Name)
		}
	}
	if ecmp.Middleware.UnknownNacksForwarded == 0 {
		t.Error("no-relearn arm never forwarded an evicted-QP NACK")
	}
	if unbounded.Middleware.Evictions != 0 || unbounded.Middleware.TableFull != 0 {
		t.Errorf("unbounded baseline evicted: %+v", unbounded.Middleware)
	}
}

// Delay-0 distributed routing is defined to be the oracle fixed point: every
// FIB cold-starts converged and route updates apply in zero engine events, so
// a trial's entire JSON record — engine event counts included — must be
// byte-identical to the oracle mode it generalizes. Chaos cells are skipped
// (their harness pins its own routing options) and convergence cells are
// skipped (they are always distributed); everything else runs both ways.
func TestOracleDistributedIdentity(t *testing.T) {
	var oracle, dist []Scenario
	for _, sc := range testGrid() {
		if sc.Workload == Chaos || sc.Workload == Convergence {
			continue
		}
		sc.Name = sc.Label() // pin before toggling so labels match
		sc.DistributedRouting = false
		sc.ConvergenceDelay = 0
		oracle = append(oracle, sc)
		sc.DistributedRouting = true
		dist = append(dist, sc)
	}
	a := NewReport("identity", Runner{Parallel: 4}.Run(oracle))
	b := NewReport("identity", Runner{Parallel: 4}.Run(dist))
	for i := range b.Trials {
		if b.Trials[i].Err != "" {
			t.Fatalf("%s: %s", b.Trials[i].Name, b.Trials[i].Err)
		}
		// Normalize the one intended difference; all behaviour must match.
		b.Trials[i].Scenario.DistributedRouting = false
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("delay-0 distributed diverged from oracle:\n--- oracle ---\n%s\n--- distributed ---\n%s", aj, bj)
	}
}

// TestConvergenceGridTrials runs one convergence seed (all delays × arms)
// through the harness: no cell may error or violate an invariant, and the
// slow-control-plane cells must not be vacuous — at least one of them has to
// show fault-induced damage.
func TestConvergenceGridTrials(t *testing.T) {
	trials := Runner{Parallel: 4}.Run(ConvergenceGrid(3, 1))
	if len(trials) != 9 {
		t.Fatalf("trials = %d, want 9", len(trials))
	}
	damaged := false
	for _, tr := range trials {
		if tr.Err != "" {
			t.Fatalf("%s failed: %s", tr.Name, tr.Err)
		}
		if len(tr.Violations) != 0 {
			t.Errorf("%s: violations %v", tr.Name, tr.Violations)
		}
		if tr.CCTMillis <= 0 {
			t.Errorf("%s: CCT = %g", tr.Name, tr.CCTMillis)
		}
		if tr.Net.DataDrops+tr.Net.LinkDrops+tr.Net.LoopDrops > 0 || tr.Sender.Timeouts > 0 {
			damaged = true
		}
	}
	if !damaged {
		t.Fatal("no convergence cell showed any fault-induced damage")
	}
}

func TestLabelDerivation(t *testing.T) {
	sc := Scenario{Workload: Collective, Seed: 9, LB: workload.Themis, Pattern: collective.AllToAll}
	if got := sc.Label(); !strings.Contains(got, "alltoall") || !strings.Contains(got, "seed9") {
		t.Fatalf("Label = %q", got)
	}
	sc.Name = "explicit"
	if sc.Label() != "explicit" {
		t.Fatal("explicit name not honoured")
	}
}

func TestReportWriteFile(t *testing.T) {
	dir := t.TempDir()
	rep := NewReport("smoke", Runner{}.Run(SmokeGrid(1)[:1]))
	path, err := rep.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_smoke.json" {
		t.Fatalf("artifact name = %s", path)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := rep.JSON()
	if !bytes.Equal(b, want) {
		t.Fatal("file contents differ from JSON()")
	}
}

// TestRunObservedDumpsFlightOnPanic drives the failure path of the flight
// recorder end to end: a workload that panics mid-setup (SendMessage rejects
// the non-positive size) must come back as a Trial.Err — never a crashed
// grid — with the ring dumped to disk for `themis-sim inspect`.
func TestRunObservedDumpsFlightOnPanic(t *testing.T) {
	dir := t.TempDir()
	sc := Scenario{Name: "chaos-bad-size", Workload: Chaos, Seed: 3, MessageBytes: -1}
	tr := RunObserved(sc, Obs{FlightDir: dir})
	if !strings.Contains(tr.Err, "panic") {
		t.Fatalf("Err = %q, want a recovered panic", tr.Err)
	}
	if tr.FlightDump == "" {
		t.Fatal("no flight dump written for a panicking trial")
	}
	f, err := os.Open(tr.FlightDump)
	if err != nil {
		t.Fatalf("open dump: %v", err)
	}
	defer f.Close()
	d, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatalf("dump not parsable: %v", err)
	}
	if d.Label != tr.Name || d.Seed != sc.Seed {
		t.Fatalf("dump metadata = %q/%d, want %q/%d", d.Label, d.Seed, tr.Name, sc.Seed)
	}
	if len(d.Violations) == 0 || !strings.Contains(d.Violations[0], "panic") {
		t.Fatalf("dump violations = %v, want the recovered panic", d.Violations)
	}

	// An error that is reported (not panicked) takes the same exit: dumped.
	tr = RunObserved(Scenario{Name: "bad", Workload: Workload("nope"), Seed: 4}, Obs{FlightDir: dir})
	if tr.Err == "" || tr.FlightDump == "" {
		t.Fatalf("erroring trial: Err=%q FlightDump=%q, want both set", tr.Err, tr.FlightDump)
	}
}
