package exp

import (
	"encoding/json"
	"os"
	"path/filepath"

	"themis/internal/stats"
)

// Aggregate digests a set of trials: per-metric summaries folded from the
// per-trial scalars with stats.Summary.Merge, plus sweep-level counts.
type Aggregate struct {
	CCTMillis    stats.Summary `json:"cct_ms"`
	RetransRatio stats.Summary `json:"retrans_ratio"`
	GoodputGbps  stats.Summary `json:"goodput_gbps"`
	// Engine-wide event-loop totals across all trials.
	EventsExecuted uint64 `json:"events_executed"`
	EventAllocs    uint64 `json:"event_allocs"`
	EventReuses    uint64 `json:"event_reuses"`
	// Errors counts trials with a non-empty Err; Violations counts chaos
	// invariant violations across all trials.
	Errors     int `json:"errors"`
	Violations int `json:"violations"`
}

// Report is the serialized artifact of one sweep: the grid's trials in input
// order plus their aggregate. Marshal it with JSON() for a byte-stable form.
type Report struct {
	Name      string    `json:"name"`
	Trials    []Trial   `json:"trials"`
	Aggregate Aggregate `json:"aggregate"`
}

// NewReport aggregates trials into a named report. Failed trials count in
// Aggregate.Errors and are excluded from the metric summaries.
func NewReport(name string, trials []Trial) *Report {
	r := &Report{Name: name, Trials: trials}
	agg := &r.Aggregate
	for _, t := range trials {
		agg.EventsExecuted += t.Engine.EventsExecuted
		agg.EventAllocs += t.Engine.EventAllocs
		agg.EventReuses += t.Engine.EventReuses
		agg.Violations += len(t.Violations)
		if t.Err != "" {
			agg.Errors++
			continue
		}
		agg.CCTMillis = agg.CCTMillis.Merge(stats.Summarize([]float64{t.CCTMillis}))
		agg.RetransRatio = agg.RetransRatio.Merge(stats.Summarize([]float64{t.RetransRatio}))
		if t.GoodputGbps != 0 {
			agg.GoodputGbps = agg.GoodputGbps.Merge(stats.Summarize([]float64{t.GoodputGbps}))
		}
	}
	return r
}

// JSON returns the canonical serialized form: indented, fixed field order,
// trailing newline. Byte-identical for identical trials.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// FileName is the artifact naming convention: BENCH_<name>.json.
func FileName(name string) string { return "BENCH_" + name + ".json" }

// WriteFile serializes the report to dir/BENCH_<name>.json and returns the
// path written.
func (r *Report) WriteFile(dir string) (string, error) {
	b, err := r.JSON()
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, FileName(r.Name))
	return path, os.WriteFile(path, b, 0o644)
}
