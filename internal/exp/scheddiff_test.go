package exp

import (
	"bytes"
	"testing"

	"themis/internal/sim"
)

// TestGridSchedulerEquivalence is the acceptance gate for the timing-wheel
// swap at the artifact level: every named grid's aggregated report must be
// BYTE-identical whether the engines underneath run on the hierarchical
// wheel or on the binary-heap oracle. The unit-level differential tests
// (sim/contract_test.go, sim/wheel_test.go, FuzzWheelHeapEquivalence) prove
// pop-order equivalence for arbitrary op sequences; this one proves the
// property composes through the full stack — fabric, transport, Themis
// middleware, metrics serialization — for the exact workloads whose
// BENCH_<name>.json artifacts CI publishes.
func TestGridSchedulerEquivalence(t *testing.T) {
	cases := []struct {
		name string
		grid []Scenario
	}{
		{"smoke", SmokeGrid(1, 2)},
		{"churn", ChurnGrid(1, 1)},
		{"convergence", ConvergenceGrid(1, 1)},
		{"spray", SprayGrid(1)},
	}
	runUnder := func(s sim.Scheduler, name string, grid []Scenario) []byte {
		prev := sim.SetDefaultScheduler(s)
		defer sim.SetDefaultScheduler(prev)
		out, err := NewReport(name, Runner{Parallel: 2}.Run(grid)).JSON()
		if err != nil {
			t.Fatalf("%s under %v: %v", name, s, err)
		}
		return out
	}
	for _, c := range cases {
		heap := runUnder(sim.SchedulerHeap, c.name, c.grid)
		wheel := runUnder(sim.SchedulerWheel, c.name, c.grid)
		if !bytes.Equal(heap, wheel) {
			// Locate the first differing line for an actionable failure.
			hl := bytes.Split(heap, []byte("\n"))
			wl := bytes.Split(wheel, []byte("\n"))
			for i := range hl {
				if i >= len(wl) || !bytes.Equal(hl[i], wl[i]) {
					t.Fatalf("grid %s: report diverges at line %d:\n heap  %s\n wheel %s",
						c.name, i+1, hl[i], wl[i])
				}
			}
			t.Fatalf("grid %s: reports differ in length only", c.name)
		}
	}
}
