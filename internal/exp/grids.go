package exp

import (
	"fmt"

	"themis/internal/collective"
	"themis/internal/core"
	"themis/internal/memmodel"
	"themis/internal/rnic"
	"themis/internal/sim"
	"themis/internal/workload"
)

// This file holds the scenario constructors for the paper's figures and the
// repo's ablations — the declarative form of what the benchmark suites and
// the CLI run. Each constructor returns a grid ready for Runner.Run.

// Fig1Arms returns the motivation study's transport arms in paper order:
// NIC-SR (the commodity transport, Fig. 1b/1c) and the Ideal oracle bound
// (Fig. 1d).
func Fig1Arms() []rnic.Transport {
	return []rnic.Transport{rnic.SelectiveRepeat, rnic.Ideal}
}

// Fig1Scenario is one §2.2 motivation cell: random packet spraying over the
// fixed 4×4×2 fabric with the given transport.
func Fig1Scenario(seed, bytes int64, tr rnic.Transport) Scenario {
	return Scenario{
		Name:         fmt.Sprintf("fig1/%v/seed%d", tr, seed),
		Workload:     Motivation,
		Seed:         seed,
		Transport:    tr,
		MessageBytes: bytes,
	}
}

// Fig1Grid returns the motivation grid: both transport arms for each seed.
func Fig1Grid(bytes int64, seeds ...int64) []Scenario {
	var grid []Scenario
	for _, seed := range seeds {
		for _, tr := range Fig1Arms() {
			grid = append(grid, Fig1Scenario(seed, bytes, tr))
		}
	}
	return grid
}

// Fig5Cell is one §5 evaluation cell: the given collective pattern under one
// (TI, TD) DCQCN setting and one load-balancing arm.
func Fig5Cell(seed, bytes int64, pattern collective.Pattern, set workload.DCQCNSetting, lb workload.LBMode) Scenario {
	return Scenario{
		Name: fmt.Sprintf("fig5/%v/ti%d-td%d/%v/seed%d",
			pattern, int64(set.TI/sim.Microsecond), int64(set.TD/sim.Microsecond), lb, seed),
		Workload:     Collective,
		Seed:         seed,
		Pattern:      pattern,
		LB:           lb,
		TI:           set.TI,
		TD:           set.TD,
		MessageBytes: bytes,
	}
}

// Fig5Grid returns the full Fig. 5 matrix for one pattern: the five paper
// DCQCN settings crossed with the three compared systems, in paper order.
func Fig5Grid(seed, bytes int64, pattern collective.Pattern) []Scenario {
	var grid []Scenario
	for _, set := range workload.PaperDCQCNSettings() {
		for _, lb := range workload.Fig5Arms() {
			grid = append(grid, Fig5Cell(seed, bytes, pattern, set, lb))
		}
	}
	return grid
}

// AblationCell is the small collective cell the ablation benchmarks share:
// a 1 MB ring Allreduce on a 4×4×4 fabric at 100 Gbps.
func AblationCell(seed int64, lb workload.LBMode) Scenario {
	return Scenario{
		Name:         fmt.Sprintf("ablation/%v/seed%d", lb, seed),
		Workload:     Collective,
		Seed:         seed,
		Pattern:      collective.RingAllreduce,
		LB:           lb,
		MessageBytes: 1 << 20,
		Leaves:       4,
		Spines:       4,
		HostsPerLeaf: 4,
		Bandwidth:    100e9,
	}
}

// QueueFactorGrid sweeps the Themis-D queue expansion factor F on an
// oversubscribed fabric (two spines: deeper in-flight windows).
func QueueFactorGrid(seed int64, factors []float64) []Scenario {
	var grid []Scenario
	for _, f := range factors {
		sc := AblationCell(seed, workload.Themis)
		sc.Name = fmt.Sprintf("queue-factor/f%g/seed%d", f, seed)
		sc.MessageBytes = 4 << 20
		sc.Spines = 2
		sc.Themis.QueueFactor = f
		grid = append(grid, sc)
	}
	return grid
}

// PathSubsetGrid sweeps the §6 path-subset restriction k over the default
// 16-spine fabric.
func PathSubsetGrid(seed int64, ks []int) []Scenario {
	var grid []Scenario
	for _, k := range ks {
		sc := Scenario{
			Name:         fmt.Sprintf("path-subset/k%d/seed%d", k, seed),
			Workload:     Collective,
			Seed:         seed,
			Pattern:      collective.RingAllreduce,
			LB:           workload.Themis,
			MessageBytes: 2 << 20,
		}
		sc.Themis.PathSubset = k
		grid = append(grid, sc)
	}
	return grid
}

// LossRecoveryGrid returns the §3.4 compensation ablation pair: a 2×4×2
// Themis fabric dropping every 500th data packet, with NACK compensation on
// and off. With compensation disabled, blocked-but-real losses wait for the
// sender's RTO — the trial's Sender.Timeouts counter shows the difference.
func LossRecoveryGrid(seed int64) []Scenario {
	var grid []Scenario
	for _, disable := range []bool{false, true} {
		sc := Scenario{
			Name:           fmt.Sprintf("loss-recovery/comp=%t/seed%d", !disable, seed),
			Workload:       Collective,
			Seed:           seed,
			Pattern:        collective.RingAllreduce,
			LB:             workload.Themis,
			MessageBytes:   1 << 20,
			Leaves:         2,
			Spines:         4,
			HostsPerLeaf:   2,
			Bandwidth:      100e9,
			RTO:            500 * sim.Microsecond,
			DropEveryNData: 500,
		}
		sc.Themis.DisableCompensation = disable
		grid = append(grid, sc)
	}
	return grid
}

// LinkFailureScenario is the §5.3 mid-run link failure: one collective group
// on a 4×4×4 fabric, leaf 0's first uplink (port 4, after the 4 host ports)
// going down at 20 µs with ECMP fallback armed.
func LinkFailureScenario(seed int64) Scenario {
	sc := AblationCell(seed, workload.Themis)
	sc.Name = fmt.Sprintf("link-failure/seed%d", seed)
	sc.Groups = 1
	sc.Themis.FallbackOnFailure = true
	sc.LinkFail = &workload.LinkFault{Switch: 0, Port: 4, At: 20 * sim.Microsecond}
	return sc
}

// ChaosGrid returns fault-injection soak scenarios for seeds
// [first, first+count).
func ChaosGrid(first int64, count int) []Scenario {
	grid := make([]Scenario, count)
	for i := range grid {
		grid[i] = Scenario{Workload: Chaos, Seed: first + int64(i)}
		grid[i].Name = grid[i].Label()
	}
	return grid
}

// ConvergenceDelays are the per-hop control-plane delays the convergence grid
// sweeps: 0 (the oracle fixed point — distributed mode must match it
// byte-for-byte), a fast modern control plane, and a deliberately slow one
// where reconvergence windows dominate.
func ConvergenceDelays() []sim.Duration {
	return []sim.Duration{0, 5 * sim.Microsecond, 50 * sim.Microsecond}
}

// ConvergenceGrid returns the routing-reconvergence sweep for seeds
// [first, first+count): per seed, each per-hop delay crossed with three spray
// arms — Themis with relearn (re-pins sprayed flows after topology change),
// plain ECMP, and flowlet switching — all on the distributed per-switch
// control plane, with the seeded routing-stressor fault schedule (flap
// storms, pod-uplink loss, maintenance drains).
func ConvergenceGrid(first int64, count int) []Scenario {
	arms := []struct {
		name  string
		lb    workload.LBMode
		knobs ThemisKnobs
	}{
		{"themis-relearn", workload.Themis, ThemisKnobs{Relearn: true, FallbackOnFailure: true}},
		{"ecmp", workload.ECMP, ThemisKnobs{}},
		{"flowlet", workload.Flowlet, ThemisKnobs{}},
	}
	var grid []Scenario
	for i := 0; i < count; i++ {
		seed := first + int64(i)
		for _, d := range ConvergenceDelays() {
			for _, arm := range arms {
				sc := Scenario{
					Name: fmt.Sprintf("convergence/%s/d%dus/seed%d",
						arm.name, int64(d/sim.Microsecond), seed),
					Workload:           Convergence,
					Seed:               seed,
					LB:                 arm.lb,
					DistributedRouting: true,
					ConvergenceDelay:   d,
					Themis:             arm.knobs,
				}
				grid = append(grid, sc)
			}
		}
	}
	return grid
}

// churnQPs is the offered QP count of the churn grid; the budgeted arms get
// SRAM for a tenth of it.
const churnQPs = 120

// churnBudgetBytes derives the §4 table budget for the churn grid's fabric
// (100 Gbps last hop, 1 us links → 2 us last-hop RTT): entries × M_QP.
func churnBudgetBytes(entries int) int {
	return core.TableBudget(memmodel.Params{
		Bandwidth: 100e9,
		RTTLast:   2 * sim.Microsecond,
		MTU:       1500,
		Factor:    1.5,
	}, entries)
}

// ChurnGrid returns the flow-lifecycle sweep for seeds [first, first+count):
// per seed, a budgeted arm with relearn (eviction costs one relearn round
// trip), a budgeted arm without (evicted flows permanently degrade to ECMP
// with conservative NACK forwarding), and the unbounded baseline. Both
// budgeted arms get SRAM for a tenth of the offered QPs, and every arm runs
// the seeded fault mix (ToR reboots + a link flap) over bursty senders.
func ChurnGrid(first int64, count int) []Scenario {
	budget := churnBudgetBytes(churnQPs / 10)
	arms := []struct {
		name   string
		knobs  ThemisKnobs
		budget int
	}{
		{"budgeted-relearn", ThemisKnobs{Relearn: true, FallbackOnFailure: true}, budget},
		{"budgeted-ecmp", ThemisKnobs{FallbackOnFailure: true}, budget},
		{"unbounded", ThemisKnobs{Relearn: true, FallbackOnFailure: true}, 0},
	}
	var grid []Scenario
	for i := 0; i < count; i++ {
		seed := first + int64(i)
		for _, arm := range arms {
			sc := Scenario{
				Name:         fmt.Sprintf("churn/%s/seed%d", arm.name, seed),
				Workload:     Churn,
				Seed:         seed,
				LB:           workload.Themis,
				QPs:          churnQPs,
				Concurrency:  24,
				MessageBytes: 64 << 10,
				BurstBytes:   9000,
				LossyControl: true,
				Faults:       true,
				Themis:       arm.knobs,
			}
			sc.Themis.TableBudgetBytes = arm.budget
			grid = append(grid, sc)
		}
	}
	return grid
}

// repsArms returns the spraying-arm comparison set the REPS grid sweeps: the
// two feedback-driven arms (REPS entropy cache, congestion-aware bias) against
// the established baselines — Themis with relearn, plain ECMP and flowlet
// switching. Themis knobs only matter on the churn cells; the chaos and
// convergence harness pins its own hardened middleware config.
func repsArms() []struct {
	name  string
	lb    workload.LBMode
	knobs ThemisKnobs
} {
	return []struct {
		name  string
		lb    workload.LBMode
		knobs ThemisKnobs
	}{
		{"reps", workload.REPS, ThemisKnobs{}},
		{"congestion", workload.CongestionAware, ThemisKnobs{}},
		{"themis-relearn", workload.Themis, ThemisKnobs{Relearn: true, FallbackOnFailure: true}},
		{"ecmp", workload.ECMP, ThemisKnobs{}},
		{"flowlet", workload.Flowlet, ThemisKnobs{}},
	}
}

// RepsGrid returns the REPS evaluation sweep for seeds [first, first+count):
// per seed, every spraying arm (see repsArms) crossed with three stress
// workloads — the seeded chaos fault soak, a light flow-churn run with the
// seeded fault mix, and the routing-reconvergence soak on the distributed
// control plane at a fast per-hop delay. Chaos cells set LBArmed because the
// chaos workload's LB arm is opt-in (see Scenario.LBArmed); cells are kept
// light (smaller transfers, fewer churn QPs than ChurnGrid) so the grid stays
// a bench-smoke citizen.
func RepsGrid(first int64, count int) []Scenario {
	var grid []Scenario
	for i := 0; i < count; i++ {
		seed := first + int64(i)
		for _, arm := range repsArms() {
			grid = append(grid,
				Scenario{
					Name:         fmt.Sprintf("reps/chaos/%s/seed%d", arm.name, seed),
					Workload:     Chaos,
					Seed:         seed,
					LB:           arm.lb,
					LBArmed:      true,
					MessageBytes: 512 << 10,
				},
				Scenario{
					Name:         fmt.Sprintf("reps/churn/%s/seed%d", arm.name, seed),
					Workload:     Churn,
					Seed:         seed,
					LB:           arm.lb,
					QPs:          48,
					Concurrency:  12,
					MessageBytes: 64 << 10,
					LossyControl: true,
					Faults:       true,
					Themis:       arm.knobs,
				},
				Scenario{
					Name:               fmt.Sprintf("reps/convergence/%s/seed%d", arm.name, seed),
					Workload:           Convergence,
					Seed:               seed,
					LB:                 arm.lb,
					MessageBytes:       512 << 10,
					DistributedRouting: true,
					ConvergenceDelay:   5 * sim.Microsecond,
					Themis:             arm.knobs,
				})
		}
	}
	return grid
}

// SmokeGrid is the miniature CI sweep: one fast collective cell per seed on a
// 3×3×2 fabric plus one chaos soak seed — a few hundred milliseconds of wall
// clock in total, enough to exercise every layer of the harness.
func SmokeGrid(seeds ...int64) []Scenario {
	var grid []Scenario
	for _, seed := range seeds {
		grid = append(grid, Scenario{
			Name:         fmt.Sprintf("smoke/themis/seed%d", seed),
			Workload:     Collective,
			Seed:         seed,
			Pattern:      collective.RingAllreduce,
			LB:           workload.Themis,
			MessageBytes: 256 << 10,
			Leaves:       3,
			Spines:       3,
			HostsPerLeaf: 2,
			Bandwidth:    100e9,
		})
	}
	if len(seeds) > 0 {
		grid = append(grid, ChaosGrid(seeds[0], 1)...)
	}
	return grid
}

// SprayGrid returns the space-parallel workload cells: a fat-tree permutation
// under ECMP, random packet spraying, the REPS entropy cache and the
// congestion-aware biased sprayer for each seed. The cells are small (k=4,
// 64 KB messages) because the grid exists for the shard-determinism regression
// and CLI smoke runs, not for scale — BenchmarkShardScaling covers the large
// configuration. Keeping the feedback-driven arms in this grid is deliberate:
// TestShardCountDeterminism runs it at several shard counts, so any entropy
// state that stopped being a pure function of per-sender feedback would show
// up as a byte diff here.
func SprayGrid(seeds ...int64) []Scenario {
	var grid []Scenario
	for _, seed := range seeds {
		for _, lb := range []workload.LBMode{
			workload.ECMP,
			workload.RandomSpray,
			workload.REPS,
			workload.CongestionAware,
		} {
			grid = append(grid, Scenario{
				Name:         fmt.Sprintf("spray/%v/seed%d", lb, seed),
				Workload:     Spray,
				Seed:         seed,
				LB:           lb,
				FatTreeK:     4,
				MessageBytes: 64 << 10,
			})
		}
	}
	return grid
}
