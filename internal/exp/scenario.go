// Package exp is the unified experiment harness: a declarative Scenario
// describes one trial (topology family, transport arm, LB mode, workload,
// faults, duration, seed), Run executes it on a private sim.Engine, and
// Runner executes a grid of scenarios across a worker pool. Every trial owns
// its own engine, packet pool and RNG, so trials are embarrassingly parallel
// and bit-identical for a given seed regardless of worker count.
//
// Results aggregate through internal/stats and serialize to BENCH_<name>.json
// artifacts (see report.go). Scenario and Trial are fixed-field structs — no
// maps — so the serialized form is byte-identical across runs and across
// parallelism levels, which the determinism regression test relies on.
package exp

import (
	"fmt"

	"themis/internal/chaos"
	"themis/internal/collective"
	"themis/internal/core"
	"themis/internal/rnic"
	"themis/internal/sim"
	"themis/internal/workload"
)

// Workload names the experiment family a scenario runs.
type Workload string

const (
	// Motivation is the §2.2 Fig. 1 study: two 4-node ring groups spraying
	// over a fixed 4×4×2 leaf-spine at 100 Gbps. Topology fields are ignored.
	Motivation Workload = "motivation"
	// Collective is the §5 Fig. 5 evaluation: synchronized collective groups
	// spanning all racks of a leaf-spine.
	Collective Workload = "collective"
	// Incast is the many-to-one stress test (Senders flows into host 0).
	Incast Workload = "incast"
	// Chaos is a fault-injection soak run: the fault schedule is generated
	// from the seed (see internal/chaos), and invariants are checked.
	Chaos Workload = "chaos"
	// Churn is the flow-lifecycle stress: a stream of short-lived cross-rack
	// QPs (QPs total, Concurrency at a time) against a bounded flow table,
	// with lifecycle invariants checked (see workload.RunChurn).
	Churn Workload = "churn"
	// Convergence is the routing-focused soak: the fault schedule comes from
	// chaos.GenerateConvergence (flap storms, pod-uplink loss, maintenance
	// drains) and the cluster runs the distributed per-switch control plane
	// with ConvergenceDelay per hop, so forwarding during the windows uses
	// honestly stale FIBs. Invariants (including FIB convergence and zero
	// steady-state loop drops) are checked.
	Convergence Workload = "convergence"
	// Spray is the space-parallel fat-tree permutation (workload.RunSpray):
	// the only workload whose trial genuinely runs on multiple shards. Uses
	// FatTreeK instead of the leaf-spine fields.
	Spray Workload = "spray"
)

// ThemisKnobs is the serializable subset of core.Config — the middleware
// ablation switches a scenario can flip. Runtime-only fields (tracer, clock,
// pool) are wired by the harness.
type ThemisKnobs struct {
	QueueFactor         float64 `json:"queue_factor,omitempty"`
	PathSubset          int     `json:"path_subset,omitempty"`
	DisableBlocking     bool    `json:"disable_blocking,omitempty"`
	DisableCompensation bool    `json:"disable_compensation,omitempty"`
	FallbackOnFailure   bool    `json:"fallback_on_failure,omitempty"`
	Relearn             bool    `json:"relearn,omitempty"`
	// TableBudgetBytes bounds each instance's flow table to the §4 SRAM
	// budget (0 = unbounded); IdleTimeout enables idle-entry eviction.
	TableBudgetBytes int          `json:"table_budget_bytes,omitempty"`
	IdleTimeout      sim.Duration `json:"idle_timeout,omitempty"`
}

func (k ThemisKnobs) coreConfig() core.Config {
	return core.Config{
		QueueFactor:         k.QueueFactor,
		PathSubset:          k.PathSubset,
		DisableBlocking:     k.DisableBlocking,
		DisableCompensation: k.DisableCompensation,
		FallbackOnFailure:   k.FallbackOnFailure,
		Relearn:             k.Relearn,
		TableBudgetBytes:    k.TableBudgetBytes,
		IdleTimeout:         k.IdleTimeout,
	}
}

// Scenario declaratively describes one trial. The zero value of every field
// means "workload default" (the same defaults the workload runners apply), so
// a scenario only states what it varies. Durations serialize as nanoseconds.
type Scenario struct {
	// Name uniquely labels the scenario within a grid; Label() derives one
	// when empty.
	Name     string   `json:"name,omitempty"`
	Workload Workload `json:"workload"`
	Seed     int64    `json:"seed"`

	// Shards is an execution knob, not an experiment arm: it selects how many
	// space-parallel engine shards drive the trial (0 = classic single
	// engine). Results are byte-identical for every value — the shard
	// determinism regression enforces it — so like Runner.Parallel it is
	// excluded from the serialized scenario and the BENCH artifacts.
	Shards int `json:"-"`

	// Experiment arms.
	LB workload.LBMode `json:"lb,omitempty"`
	// LBArmed marks LB as an explicit chaos-workload arm: chaos scenarios
	// historically always ran the harness default (Themis), so the arm must
	// be opt-in to keep their serialized form and results unchanged.
	// Convergence scenarios always arm LB; other workloads ignore this.
	LBArmed bool `json:"lb_armed,omitempty"`
	// RepsCache (LB == REPS) and PathBuckets (LB == CongestionAware) are the
	// spraying-arm knobs; zero takes the workload defaults.
	RepsCache   int `json:"reps_cache,omitempty"`
	PathBuckets int `json:"path_buckets,omitempty"`

	Transport rnic.Transport     `json:"transport,omitempty"`
	Pattern   collective.Pattern `json:"pattern,omitempty"` // collective only
	TI        sim.Duration       `json:"ti,omitempty"`      // DCQCN sweep knobs
	TD        sim.Duration       `json:"td,omitempty"`

	// Topology family (leaf-spine; ignored by Motivation, which pins the
	// paper's 4×4×2 fabric).
	Leaves       int          `json:"leaves,omitempty"`
	Spines       int          `json:"spines,omitempty"`
	HostsPerLeaf int          `json:"hosts_per_leaf,omitempty"`
	FatTreeK     int          `json:"fat_tree_k,omitempty"` // spray only
	Bandwidth    int64        `json:"bandwidth,omitempty"`
	LinkDelay    sim.Duration `json:"link_delay,omitempty"`

	// Workload shape.
	MessageBytes int64 `json:"message_bytes,omitempty"`
	Groups       int   `json:"groups,omitempty"`      // collective
	Senders      int   `json:"senders,omitempty"`     // incast fan-in
	Flows        int   `json:"flows,omitempty"`       // chaos ring flows
	QPs          int   `json:"qps,omitempty"`         // churn: total flows opened
	Concurrency  int   `json:"concurrency,omitempty"` // churn: flows open at once
	Faults       bool  `json:"faults,omitempty"`      // churn: seeded reboots + link flap

	// Mechanics.
	BurstBytes   int          `json:"burst_bytes,omitempty"`
	BufferBytes  int          `json:"buffer_bytes,omitempty"`
	Horizon      sim.Duration `json:"horizon,omitempty"`
	DisablePFC   bool         `json:"disable_pfc,omitempty"`
	LossyControl bool         `json:"lossy_control,omitempty"`
	RTO          sim.Duration `json:"rto,omitempty"`
	RTOBackoff   float64      `json:"rto_backoff,omitempty"`
	RTOMax       sim.Duration `json:"rto_max,omitempty"`

	// Routing plane. DistributedRouting replaces the instant global oracle
	// with the per-switch BGP-style control plane (see internal/route);
	// ConvergenceDelay is its per-hop message delay. Drain appends a
	// maintenance drain to a convergence scenario's fault schedule.
	DistributedRouting bool         `json:"distributed_routing,omitempty"`
	ConvergenceDelay   sim.Duration `json:"convergence_delay,omitempty"`
	Drain              bool         `json:"drain,omitempty"`

	// Middleware ablation knobs.
	Themis ThemisKnobs `json:"themis,omitempty"`

	// Declarative faults. Chaos scenarios generate their own schedule from
	// the seed and ignore these.
	DropEveryNData int                 `json:"drop_every_n_data,omitempty"`
	LinkFail       *workload.LinkFault `json:"link_fail,omitempty"`
}

// Label returns Name, or a derived "workload/arm/seed" identifier.
func (s Scenario) Label() string {
	if s.Name != "" {
		return s.Name
	}
	switch s.Workload {
	case Motivation:
		return fmt.Sprintf("motivation/%v/seed%d", s.Transport, s.Seed)
	case Collective:
		return fmt.Sprintf("collective/%v/%v/ti%v-td%v/seed%d", s.Pattern, s.LB, s.TI, s.TD, s.Seed)
	case Incast:
		return fmt.Sprintf("incast/%v/seed%d", s.LB, s.Seed)
	case Chaos:
		return fmt.Sprintf("chaos/seed%d", s.Seed)
	case Churn:
		return fmt.Sprintf("churn/%v/seed%d", s.LB, s.Seed)
	case Convergence:
		return fmt.Sprintf("convergence/%v/d%dus/seed%d",
			s.LB, int64(s.ConvergenceDelay/sim.Microsecond), s.Seed)
	case Spray:
		return fmt.Sprintf("spray/%v/seed%d", s.LB, s.Seed)
	default:
		return fmt.Sprintf("%s/seed%d", s.Workload, s.Seed)
	}
}

// collectiveConfig lowers the scenario to the workload runner's config.
func (s Scenario) collectiveConfig() workload.CollectiveConfig {
	return workload.CollectiveConfig{
		Seed:           s.Seed,
		Shards:         s.Shards,
		Pattern:        s.Pattern,
		MessageBytes:   s.MessageBytes,
		Leaves:         s.Leaves,
		Spines:         s.Spines,
		HostsPerLeaf:   s.HostsPerLeaf,
		Bandwidth:      s.Bandwidth,
		Groups:         s.Groups,
		LB:             s.LB,
		Transport:      s.Transport,
		TI:             s.TI,
		TD:             s.TD,
		BurstBytes:     s.BurstBytes,
		BufferBytes:    s.BufferBytes,
		Horizon:        s.Horizon,
		DisablePFC:     s.DisablePFC,
		RTO:            s.RTO,
		RTOBackoff:     s.RTOBackoff,
		RTOMax:         s.RTOMax,
		LossyControl:   s.LossyControl,
		ThemisCfg:      s.Themis.coreConfig(),
		DropEveryNData: s.DropEveryNData,
		LinkFail:       s.LinkFail,

		DistributedRouting: s.DistributedRouting,
		ConvergenceDelay:   s.ConvergenceDelay,
	}
}

func (s Scenario) motivationConfig() workload.MotivationConfig {
	return workload.MotivationConfig{
		Seed:         s.Seed,
		Shards:       s.Shards,
		MessageBytes: s.MessageBytes,
		Transport:    s.Transport,
		LB:           s.LB,
		Horizon:      s.Horizon,
		BurstBytes:   s.BurstBytes,
		TI:           s.TI,
		TD:           s.TD,
		RTO:          s.RTO,
		RTOBackoff:   s.RTOBackoff,
		RTOMax:       s.RTOMax,

		DistributedRouting: s.DistributedRouting,
		ConvergenceDelay:   s.ConvergenceDelay,
	}
}

func (s Scenario) incastConfig() workload.IncastConfig {
	return workload.IncastConfig{
		Seed:         s.Seed,
		Shards:       s.Shards,
		Senders:      s.Senders,
		MessageBytes: s.MessageBytes,
		Bandwidth:    s.Bandwidth,
		LinkDelay:    s.LinkDelay,
		BufferBytes:  s.BufferBytes,
		LB:           s.LB,
		DisablePFC:   s.DisablePFC,
		Horizon:      s.Horizon,

		DistributedRouting: s.DistributedRouting,
		ConvergenceDelay:   s.ConvergenceDelay,
	}
}

func (s Scenario) churnConfig() workload.ChurnConfig {
	return workload.ChurnConfig{
		Seed:         s.Seed,
		Shards:       s.Shards,
		Leaves:       s.Leaves,
		Spines:       s.Spines,
		HostsPerLeaf: s.HostsPerLeaf,
		Bandwidth:    s.Bandwidth,
		LB:           s.LB,
		RepsCache:    s.RepsCache,
		PathBuckets:  s.PathBuckets,
		Transport:    s.Transport,
		QPs:          s.QPs,
		Concurrency:  s.Concurrency,
		MessageBytes: s.MessageBytes,
		Faults:       s.Faults,
		BurstBytes:   s.BurstBytes,
		BufferBytes:  s.BufferBytes,
		Horizon:      s.Horizon,
		RTO:          s.RTO,
		RTOBackoff:   s.RTOBackoff,
		RTOMax:       s.RTOMax,
		LossyControl: s.LossyControl,
		ThemisCfg:    s.Themis.coreConfig(),

		DistributedRouting: s.DistributedRouting,
		ConvergenceDelay:   s.ConvergenceDelay,
	}
}

func (s Scenario) sprayConfig() workload.SprayConfig {
	return workload.SprayConfig{
		Seed:         s.Seed,
		Shards:       s.Shards,
		FatTreeK:     s.FatTreeK,
		Bandwidth:    s.Bandwidth,
		LinkDelay:    s.LinkDelay,
		BufferBytes:  s.BufferBytes,
		MessageBytes: s.MessageBytes,
		BurstBytes:   s.BurstBytes,
		LB:           s.LB,
		RepsCache:    s.RepsCache,
		PathBuckets:  s.PathBuckets,
		DisablePFC:   s.DisablePFC,
		Horizon:      s.Horizon,
	}
}

func (s Scenario) chaosOptions() chaos.Options {
	return chaos.Options{
		Shards:       s.Shards,
		Leaves:       s.Leaves,
		Spines:       s.Spines,
		HostsPerLeaf: s.HostsPerLeaf,
		Bandwidth:    s.Bandwidth,
		Flows:        s.Flows,
		MessageBytes: s.MessageBytes,
		Horizon:      s.Horizon,

		// LB is an arm only when explicitly armed (see Scenario.LBArmed);
		// legacy chaos scenarios keep the harness default (Themis).
		LB:          s.LB,
		LBSet:       s.LBArmed,
		RepsCache:   s.RepsCache,
		PathBuckets: s.PathBuckets,
	}
}

// convergenceOptions lowers a convergence scenario to the chaos harness. The
// LB arm is explicit (LBSet) so an ECMP arm — the LBMode zero value — is not
// silently replaced with the harness default.
func (s Scenario) convergenceOptions() chaos.Options {
	return chaos.Options{
		Shards:       s.Shards,
		Leaves:       s.Leaves,
		Spines:       s.Spines,
		HostsPerLeaf: s.HostsPerLeaf,
		Bandwidth:    s.Bandwidth,
		Flows:        s.Flows,
		MessageBytes: s.MessageBytes,
		Horizon:      s.Horizon,

		LB:                 s.LB,
		LBSet:              true,
		RepsCache:          s.RepsCache,
		PathBuckets:        s.PathBuckets,
		DistributedRouting: s.DistributedRouting,
		ConvergenceDelay:   s.ConvergenceDelay,
	}
}
