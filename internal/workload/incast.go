package workload

import (
	"fmt"

	"themis/internal/obs"
	"themis/internal/packet"
	"themis/internal/sim"
	"themis/internal/trace"
)

// IncastConfig parameterizes a many-to-one stress test: every other host
// sends MessageBytes to host 0 simultaneously. Incast is not one of the
// paper's headline workloads but is the regime that stresses two substrate
// properties Themis relies on: PFC's losslessness (drops would turn every
// blocked NACK into a compensation or timeout) and the strict-priority
// control class (NACK return latency bounds the §3.3 ring sizing).
type IncastConfig struct {
	Seed         int64
	Senders      int   // fan-in degree (default 15)
	MessageBytes int64 // per sender (default 2 MB)
	Bandwidth    int64 // default 100 Gbps
	LinkDelay    sim.Duration
	BufferBytes  int // switch shared buffer (default 64 MB)
	LB           LBMode
	DisablePFC   bool
	Horizon      sim.Duration
	Shards       int // drive via the shard coordinator (see ClusterConfig.Shards)
	// DistributedRouting/ConvergenceDelay select the BGP-style per-switch
	// control plane (see ClusterConfig).
	DistributedRouting bool
	ConvergenceDelay   sim.Duration
	// Tracer/Metrics hook up the observability harness (see internal/obs);
	// not part of the serialized scenario.
	Tracer  *trace.Tracer `json:"-"`
	Metrics *obs.Registry `json:"-"`
}

func (c IncastConfig) withDefaults() IncastConfig {
	if c.Senders == 0 {
		c.Senders = 15
	}
	if c.MessageBytes == 0 {
		c.MessageBytes = 2 << 20
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = 100e9
	}
	if c.Horizon == 0 {
		c.Horizon = 30 * sim.Second
	}
	return c
}

// IncastResult carries the incast measurements.
type IncastResult struct {
	CCT         sim.Time // when the last sender's message is acknowledged
	Drops       uint64
	Pauses      uint64 // PFC pause frames sent by the destination ToR
	Sender      SenderAgg
	GoodputGbps float64 // receiver goodput over the completion time
	// Engine is the event-loop counter block for this trial's engine.
	Engine sim.Metrics
}

// SenderAgg is the aggregate sender-side counters of an incast run.
type SenderAgg struct {
	Retransmits uint64
	Timeouts    uint64
	NacksRx     uint64
}

// RunIncast places each sender on its own rack (Senders+1 leaves, one host
// each) so every flow crosses the fabric, then blasts them all at host 0.
func RunIncast(cfg IncastConfig) (*IncastResult, error) {
	cfg = cfg.withDefaults()
	cl, err := BuildCluster(ClusterConfig{
		Seed:               cfg.Seed,
		Shards:             cfg.Shards,
		Leaves:             cfg.Senders + 1,
		Spines:             cfg.Senders + 1,
		HostsPerLeaf:       1,
		Bandwidth:          cfg.Bandwidth,
		LinkDelay:          cfg.LinkDelay,
		BufferBytes:        cfg.BufferBytes,
		LB:                 cfg.LB,
		DisablePFC:         cfg.DisablePFC,
		DistributedRouting: cfg.DistributedRouting,
		ConvergenceDelay:   cfg.ConvergenceDelay,
		Tracer:             cfg.Tracer,
		Metrics:            cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	res := &IncastResult{}
	done := 0
	for h := 1; h <= cfg.Senders; h++ {
		cl.Conn(packet.NodeID(h), 0).Send(cfg.MessageBytes, func() {
			done++
			if cl.Engine.Now() > res.CCT {
				res.CCT = cl.Engine.Now()
			}
			if done == cfg.Senders {
				cl.Engine.Stop()
			}
		})
	}
	end := cl.Run(cfg.Horizon)
	cl.Engine.RunAll()
	if done != cfg.Senders {
		return nil, fmt.Errorf("workload: incast incomplete: %d/%d senders at %v", done, cfg.Senders, end)
	}
	agg := cl.AggregateSenderStats()
	res.Sender = SenderAgg{Retransmits: agg.Retransmits, Timeouts: agg.Timeouts, NacksRx: agg.NacksRx}
	res.Drops = cl.Net.Counters().DataDrops
	res.Pauses, _ = cl.Net.PFCStats(cl.Topo.ToROf(0))
	total := float64(cfg.MessageBytes) * float64(cfg.Senders)
	res.GoodputGbps = total * 8 / res.CCT.Seconds() / 1e9
	res.Engine = cl.Engine.Metrics()
	return res, nil
}
