package workload

import (
	"fmt"

	"themis/internal/collective"
	"themis/internal/core"
	"themis/internal/fabric"
	"themis/internal/obs"
	"themis/internal/packet"
	"themis/internal/rnic"
	"themis/internal/sim"
	"themis/internal/trace"
)

// CollectiveConfig parameterizes the §5 evaluation (Fig. 5): synchronized
// collective communication across groups that each span all racks.
type CollectiveConfig struct {
	Seed    int64
	Pattern collective.Pattern
	// MessageBytes is the per-group collective size S (paper: 300 MB).
	MessageBytes int64
	// Topology (defaults: the paper's 16×16 leaf-spine at 400 Gbps with 16
	// hosts per leaf = 256 NICs).
	Leaves, Spines, HostsPerLeaf int
	Bandwidth                    int64
	// Groups is the number of communication groups; group g consists of
	// host g of every leaf, so every group spans all racks and GroupSize ==
	// Leaves. Defaults to HostsPerLeaf (every NIC participates).
	Groups int
	// Experiment arms.
	LB        LBMode
	Transport rnic.Transport
	TI, TD    sim.Duration // DCQCN sweep knobs
	// Mechanics.
	BurstBytes  int
	BufferBytes int          // switch shared buffer (default 64 MB)
	Shards      int          // drive via the shard coordinator (see ClusterConfig.Shards)
	Horizon     sim.Duration // simulation cap (default 30 s)
	DisablePFC  bool         // run a lossy fabric (PFC is on by default)
	// Transport recovery knobs (see rnic.Config).
	RTO        sim.Duration
	RTOBackoff float64
	RTOMax     sim.Duration
	// LossyControl drops ACK/NACK/CNP like data (robustness experiments).
	LossyControl bool
	// DistributedRouting/ConvergenceDelay select the BGP-style per-switch
	// control plane (see ClusterConfig).
	DistributedRouting bool
	ConvergenceDelay   sim.Duration
	ThemisCfg          core.Config
	// DropEveryNData, if positive, drops every Nth data packet at switch
	// egress (loss ablations; see ClusterConfig.DropEveryNData).
	DropEveryNData int
	// LinkFail, if non-nil, takes one switch port down mid-run (§5.3).
	LinkFail *LinkFault
	// Tracer, if non-nil, records packet and middleware events (observability
	// harness; not part of the serialized scenario).
	Tracer *trace.Tracer `json:"-"`
	// Metrics, if non-nil, is the shared metrics registry (see internal/obs).
	Metrics *obs.Registry `json:"-"`
}

// LinkFault declaratively describes a single link failure: switch Switch's
// port Port goes down at time At; Repair > 0 brings it back up at that time.
type LinkFault struct {
	Switch int          `json:"switch"`
	Port   int          `json:"port"`
	At     sim.Duration `json:"at"`
	Repair sim.Duration `json:"repair,omitempty"`
}

func (c CollectiveConfig) withDefaults() CollectiveConfig {
	if c.MessageBytes == 0 {
		c.MessageBytes = 300 << 20
	}
	if c.Leaves == 0 {
		c.Leaves = 16
	}
	if c.Spines == 0 {
		c.Spines = 16
	}
	if c.HostsPerLeaf == 0 {
		c.HostsPerLeaf = 16
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = 400e9
	}
	if c.Groups == 0 {
		c.Groups = c.HostsPerLeaf
	}
	if c.Horizon == 0 {
		c.Horizon = 30 * sim.Second
	}
	return c
}

// CollectiveResult carries one Fig. 5 data point.
type CollectiveResult struct {
	// TailCCT is the completion time of the slowest group — the paper's
	// metric ("the training job's communication bottleneck").
	TailCCT sim.Time
	// GroupCCT is each group's completion time.
	GroupCCT []sim.Time
	// Sender aggregates transport counters over all QPs.
	Sender rnic.SenderStats
	// Middleware aggregates Themis counters (zero unless LB == Themis).
	Middleware core.Stats
	// Net aggregates fabric counters (drops, PFC pauses, ECN marks).
	Net fabric.Counters
	// Engine is the event-loop counter block for this trial's engine.
	Engine sim.Metrics
}

// RetransRatio is the fraction of transmitted data packets that were
// retransmissions.
func (r *CollectiveResult) RetransRatio() float64 {
	if r.Sender.DataPackets == 0 {
		return 0
	}
	return float64(r.Sender.Retransmits) / float64(r.Sender.DataPackets)
}

// GroupHosts returns the members of group g: host g of every leaf, i.e. one
// NIC per rack (§5's group construction).
func GroupHosts(leaves, hostsPerLeaf, g int) []packet.NodeID {
	hosts := make([]packet.NodeID, leaves)
	for l := 0; l < leaves; l++ {
		hosts[l] = packet.NodeID(l*hostsPerLeaf + g)
	}
	return hosts
}

// RunCollective executes one Fig. 5 cell: all groups start the same
// collective simultaneously; the result records per-group and tail CCT.
func RunCollective(cfg CollectiveConfig) (*CollectiveResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Groups > cfg.HostsPerLeaf {
		return nil, fmt.Errorf("workload: %d groups need at most HostsPerLeaf=%d", cfg.Groups, cfg.HostsPerLeaf)
	}
	cl, err := BuildCluster(ClusterConfig{
		Seed:               cfg.Seed,
		Shards:             cfg.Shards,
		Leaves:             cfg.Leaves,
		Spines:             cfg.Spines,
		HostsPerLeaf:       cfg.HostsPerLeaf,
		Bandwidth:          cfg.Bandwidth,
		LB:                 cfg.LB,
		Transport:          cfg.Transport,
		TI:                 cfg.TI,
		TD:                 cfg.TD,
		BurstBytes:         cfg.BurstBytes,
		BufferBytes:        cfg.BufferBytes,
		DisablePFC:         cfg.DisablePFC,
		RTO:                cfg.RTO,
		RTOBackoff:         cfg.RTOBackoff,
		RTOMax:             cfg.RTOMax,
		LossyControl:       cfg.LossyControl,
		DistributedRouting: cfg.DistributedRouting,
		ConvergenceDelay:   cfg.ConvergenceDelay,
		ThemisCfg:          cfg.ThemisCfg,
		DropEveryNData:     cfg.DropEveryNData,
		Tracer:             cfg.Tracer,
		Metrics:            cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	if f := cfg.LinkFail; f != nil {
		f := *f
		cl.Engine.Schedule(f.At, func() { cl.FailLink(f.Switch, f.Port) })
		if f.Repair > 0 {
			cl.Engine.Schedule(f.Repair, func() { cl.RepairLink(f.Switch, f.Port) })
		}
	}

	res := &CollectiveResult{GroupCCT: make([]sim.Time, cfg.Groups)}
	remaining := cfg.Groups
	for g := 0; g < cfg.Groups; g++ {
		g := g
		hosts := GroupHosts(cfg.Leaves, cfg.HostsPerLeaf, g)
		collective.Run(cfg.Pattern, cl.Mesh(hosts), len(hosts), cfg.MessageBytes, func() {
			res.GroupCCT[g] = cl.Engine.Now()
			remaining--
			if remaining == 0 {
				cl.Engine.Stop()
			}
		})
	}
	end := cl.Run(cfg.Horizon)
	cl.Engine.RunAll() // drain in-flight control traffic and timers

	if remaining != 0 {
		return nil, fmt.Errorf("workload: collective incomplete: %d groups unfinished at %v (pattern=%v lb=%v)", remaining, end, cfg.Pattern, cfg.LB)
	}
	res.TailCCT = maxTime(res.GroupCCT)
	res.Sender = cl.AggregateSenderStats()
	res.Middleware = cl.ThemisStats()
	res.Net = cl.Net.Counters()
	res.Engine = cl.Engine.Metrics()
	return res, nil
}

// DCQCNSetting is one (TI, TD) column of Fig. 5.
type DCQCNSetting struct {
	TI, TD sim.Duration
}

// PaperDCQCNSettings returns the five Fig. 5 configurations, in paper order:
// (900,4), (300,4), (10,4), (10,50), (10,200) microseconds.
func PaperDCQCNSettings() []DCQCNSetting {
	us := sim.Microsecond
	return []DCQCNSetting{
		{900 * us, 4 * us},
		{300 * us, 4 * us},
		{10 * us, 4 * us},
		{10 * us, 50 * us},
		{10 * us, 200 * us},
	}
}

// Fig5Arms returns the three compared systems, in paper order.
func Fig5Arms() []LBMode { return []LBMode{ECMP, Adaptive, Themis} }
