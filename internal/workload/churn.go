package workload

import (
	"fmt"
	"math/rand"

	"themis/internal/core"
	"themis/internal/fabric"
	"themis/internal/obs"
	"themis/internal/packet"
	"themis/internal/rnic"
	"themis/internal/sim"
	"themis/internal/trace"
)

// ChurnConfig parameterizes the flow-churn workload: a stream of short-lived
// cross-rack QPs (open → transfer → close) with far more QPs over the run —
// and optionally more concurrently — than a budgeted Themis flow table can
// hold. It is the workload the §4 lifecycle layer exists for: production
// clusters see millions of short-lived QPs, not a fixed set sized to SRAM.
type ChurnConfig struct {
	Seed int64

	// Topology (defaults: the chaos harness's 3×3 leaf-spine, 2 hosts per
	// leaf, 100 Gbps).
	Leaves, Spines, HostsPerLeaf int
	Bandwidth                    int64

	// Arms.
	LB          LBMode
	RepsCache   int // REPS ring capacity (LB == REPS; 0 = default)
	PathBuckets int // congestion-aware entropy buckets (LB == CongestionAware; 0 = default)
	Transport rnic.Transport

	// Churn shape: QPs flows are opened over the run, Concurrency at a time;
	// each transfers MessageBytes then closes, and its slot opens the next
	// flow. Defaults: 120 QPs, 24 concurrent, 128 KB per flow.
	QPs          int
	Concurrency  int
	MessageBytes int64

	// Faults mixes seeded ToR reboots and a link flap into the churn (the
	// soak configuration): state loss, relearn and the §6 fallback all run
	// while flows are being opened and closed.
	Faults bool

	// Mechanics.
	BurstBytes   int
	BufferBytes  int
	Horizon      sim.Duration // wall guard (default 2 s virtual)
	Shards       int          // drive via the shard coordinator (see ClusterConfig.Shards)
	RTO          sim.Duration
	RTOBackoff   float64
	RTOMax       sim.Duration
	LossyControl bool
	// DistributedRouting/ConvergenceDelay select the BGP-style per-switch
	// control plane (see ClusterConfig).
	DistributedRouting bool
	ConvergenceDelay   sim.Duration
	ThemisCfg          core.Config

	Tracer  *trace.Tracer `json:"-"`
	Metrics *obs.Registry `json:"-"`
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Leaves == 0 {
		c.Leaves = 3
	}
	if c.Spines == 0 {
		c.Spines = 3
	}
	if c.HostsPerLeaf == 0 {
		c.HostsPerLeaf = 2
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = 100e9
	}
	if c.QPs == 0 {
		c.QPs = 120
	}
	if c.Concurrency == 0 {
		c.Concurrency = 24
	}
	if c.Concurrency > c.QPs {
		c.Concurrency = c.QPs
	}
	if c.MessageBytes == 0 {
		c.MessageBytes = 128 << 10
	}
	if c.Horizon == 0 {
		c.Horizon = 2 * sim.Second
	}
	if c.RTO == 0 {
		c.RTO = 200 * sim.Microsecond
	}
	if c.RTOBackoff == 0 {
		c.RTOBackoff = 2
	}
	if c.RTOMax == 0 {
		c.RTOMax = 10 * sim.Millisecond
	}
	return c
}

// ChurnResult is the outcome of one churn run.
type ChurnResult struct {
	// End is the virtual time the last flow completed.
	End sim.Time
	// Opened and Completed count flows; they are equal on a clean run.
	Opened, Completed int
	// MeanFCT is the mean flow completion time (open to last ack).
	MeanFCT sim.Duration
	// GoodputGbps is aggregate acked payload over the run (total goodput
	// bytes × 8 / End).
	GoodputGbps float64
	// MaxTableBytes is the peak flow-table occupancy observed on any ToR at
	// flow open/close points; TableBudgetBytes echoes the configured budget.
	// The invariant MaxTableBytes <= TableBudgetBytes (budget > 0) is checked
	// continuously and lands in Violations if ever broken.
	MaxTableBytes    int
	TableBudgetBytes int

	Sender     rnic.SenderStats
	Middleware core.Stats
	Net        fabric.Counters
	Engine     sim.Metrics
	Violations []string
}

// churnDriver holds the open-loop state: it keeps Concurrency flows in
// flight, each completion closing its QP and opening the next.
type churnDriver struct {
	cl  *Cluster
	cfg ChurnConfig
	rng *rand.Rand

	opened, completed int
	sumFCT            sim.Duration
	maxTable          int
	violations        []string
}

// sampleOccupancy records peak table occupancy and flags budget violations.
// It runs at every open/close event — the only points occupancy can grow.
func (d *churnDriver) sampleOccupancy() {
	b, budget := d.cl.MaxTableBytes()
	if b > d.maxTable {
		d.maxTable = b
	}
	if budget > 0 && b > budget {
		d.violations = append(d.violations,
			fmt.Sprintf("flow-table occupancy %d B exceeds budget %d B at %v", b, budget, d.cl.Engine.Now()))
	}
}

func (d *churnDriver) openNext() {
	if d.opened >= d.cfg.QPs {
		return
	}
	d.opened++
	nHosts := d.cl.Topo.NumHosts()
	src := packet.NodeID(d.rng.Intn(nHosts))
	dst := packet.NodeID(d.rng.Intn(nHosts))
	for d.cl.Topo.ToROf(dst) == d.cl.Topo.ToROf(src) {
		// Same-rack flows never touch Themis; churn wants cross-rack ones.
		dst = packet.NodeID(d.rng.Intn(nHosts))
	}
	cn := d.cl.OpenFlow(src, dst)
	start := d.cl.Engine.Now()
	d.sampleOccupancy()
	cn.Send(d.cfg.MessageBytes, func() {
		d.completed++
		d.sumFCT += d.cl.Engine.Now().Sub(start)
		d.cl.CloseFlow(cn)
		d.sampleOccupancy()
		if d.completed == d.cfg.QPs {
			d.cl.Engine.Stop()
			return
		}
		d.openNext()
	})
}

// scheduleChurnFaults injects the soak fault mix: two ToR reboots and one
// link flap, drawn deterministically from the seed so a failing seed
// reproduces exactly. Times land in the early life of the run (the same
// 10–200 us window the chaos generator uses) so state loss and the §6
// fallback overlap live churn.
func scheduleChurnFaults(cl *Cluster, cfg ChurnConfig) {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	var tors []int
	var links [][2]int
	for _, sw := range cl.Topo.Switches() {
		if sw.Tier == 0 && len(sw.Hosts()) > 0 {
			tors = append(tors, sw.ID)
			for pi := range sw.Ports {
				if !sw.Ports[pi].IsHostPort() {
					links = append(links, [2]int{sw.ID, pi})
				}
			}
		}
	}
	if len(tors) == 0 {
		return // no middleware deployed: reboots and the §6 reaction are moot
	}
	us := sim.Microsecond
	for i := 0; i < 2; i++ {
		sw := tors[rng.Intn(len(tors))]
		cl.Engine.Schedule(sim.Duration(10+rng.Intn(150))*us, func() { cl.RebootToR(sw) })
	}
	l := links[rng.Intn(len(links))]
	down := sim.Duration(20+rng.Intn(100)) * us
	up := down + sim.Duration(30+rng.Intn(120))*us
	cl.Engine.Schedule(down, func() { cl.FailLink(l[0], l[1]) })
	cl.Engine.Schedule(up, func() { cl.RepairLink(l[0], l[1]) })
}

// RunChurn executes one flow-churn trial and audits the lifecycle
// invariants: occupancy never exceeds the budget, every flow completes,
// blocked NACKs are exactly the middleware's deliberate verdicts (a NACK for
// an evicted/unknown QP is forwarded, never blocked), and no armed
// compensation outlives the run.
func RunChurn(cfg ChurnConfig) (*ChurnResult, error) {
	cfg = cfg.withDefaults()
	cl, err := BuildCluster(ClusterConfig{
		Seed:               cfg.Seed,
		Shards:             cfg.Shards,
		Leaves:             cfg.Leaves,
		Spines:             cfg.Spines,
		HostsPerLeaf:       cfg.HostsPerLeaf,
		Bandwidth:          cfg.Bandwidth,
		LB:                 cfg.LB,
		RepsCache:          cfg.RepsCache,
		PathBuckets:        cfg.PathBuckets,
		Transport:          cfg.Transport,
		BurstBytes:         cfg.BurstBytes,
		BufferBytes:        cfg.BufferBytes,
		RTO:                cfg.RTO,
		RTOBackoff:         cfg.RTOBackoff,
		RTOMax:             cfg.RTOMax,
		LossyControl:       cfg.LossyControl,
		DistributedRouting: cfg.DistributedRouting,
		ConvergenceDelay:   cfg.ConvergenceDelay,
		ThemisCfg:          cfg.ThemisCfg,
		Tracer:             cfg.Tracer,
		Metrics:            cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Faults {
		scheduleChurnFaults(cl, cfg)
	}

	d := &churnDriver{cl: cl, cfg: cfg, rng: cl.Engine.Rand()}
	for i := 0; i < cfg.Concurrency; i++ {
		d.openNext()
	}
	end := cl.Run(cfg.Horizon)
	cl.Engine.RunAll() // drain in-flight control traffic and timers

	res := &ChurnResult{
		End:        end,
		Opened:     d.opened,
		Completed:  d.completed,
		Sender:     cl.AggregateSenderStats(),
		Middleware: cl.ThemisStats(),
		Net:        cl.Net.Counters(),
		Engine:     cl.Engine.Metrics(),
		Violations: d.violations,
	}
	res.MaxTableBytes, res.TableBudgetBytes = d.maxTable, cl.Config.ThemisCfg.TableBudgetBytes
	if d.completed > 0 {
		res.MeanFCT = d.sumFCT / sim.Duration(d.completed)
	}
	if sec := end.Seconds(); sec > 0 {
		res.GoodputGbps = float64(res.Sender.GoodputBytes) * 8 / sec / 1e9
	}
	res.Violations = append(res.Violations, churnInvariants(cl, d)...)
	return res, nil
}

// churnInvariants audits the cluster after the run drained.
func churnInvariants(cl *Cluster, d *churnDriver) []string {
	var v []string
	if d.completed != d.cfg.QPs {
		v = append(v, fmt.Sprintf("%d/%d flows never completed", d.cfg.QPs-d.completed, d.cfg.QPs))
	}
	if n := cl.FailedLinks(); n != 0 {
		v = append(v, fmt.Sprintf("%d link failures left outstanding", n))
	}
	// Blocked-NACK conservation: the fabric blocks a host control packet
	// exactly when a Themis-D instance returned a deliberate "block" verdict.
	// Equality proves structurally that NACKs for evicted/unknown/rejected
	// QPs — which never reach the verdict path — were all forwarded.
	st := cl.ThemisStats()
	if blocked := cl.Net.Counters().Blocked; blocked != st.NacksBlocked {
		v = append(v, fmt.Sprintf("blocked-NACK conservation broken: fabric blocked %d != middleware verdicts %d",
			blocked, st.NacksBlocked))
	}
	// With every flow closed, no armed compensation may survive: an armed
	// entry either resolved (cancelled/compensated) or its flow completed and
	// was unregistered.
	if d.completed == d.cfg.QPs {
		for _, id := range cl.torIDs {
			if n := cl.Themis[id].PendingCompensations(); n != 0 {
				v = append(v, fmt.Sprintf("sw %d: %d armed compensations after all flows closed", id, n))
			}
		}
	}
	return v
}
