// Package workload is the experiment harness: it assembles topology, fabric,
// NICs, Themis and collective schedules into the paper's experiments and
// collects the metrics each figure reports.
//
// The two experiment families are:
//
//   - RunMotivation — the §2.2 motivation study (Fig. 1): two 4-node ring
//     groups over a 100 Gbps leaf-spine with random packet spraying, showing
//     the spurious-retransmission ratio (1b), NACK-driven rate drops (1c)
//     and the throughput gap to an ideal transport (1d).
//
//   - RunCollective — the §5 evaluation (Fig. 5): 16 groups × 16 NICs on a
//     16×16 400 Gbps leaf-spine running ring Allreduce or Alltoall under
//     ECMP / adaptive routing / Themis across DCQCN (TI, TD) settings,
//     reporting the slowest group's communication completion time.
package workload

import (
	"fmt"

	"themis/internal/collective"
	"themis/internal/core"
	"themis/internal/fabric"
	"themis/internal/lb"
	"themis/internal/obs"
	"themis/internal/packet"
	"themis/internal/rnic"
	"themis/internal/route"
	"themis/internal/sim"
	"themis/internal/topo"
	"themis/internal/trace"
)

// LBMode selects the load-balancing arm of an experiment.
type LBMode int

const (
	// ECMP is flow-level hashing (the deployed default).
	ECMP LBMode = iota
	// RandomSpray is per-packet uniform spraying (RPS).
	RandomSpray
	// Adaptive is per-packet least-queue adaptive routing (AR).
	Adaptive
	// Flowlet is flowlet switching.
	Flowlet
	// SprayNoThemis applies the PSN-based spraying policy with no Themis-D
	// filtering — the "direct combination" the paper's deltas are against.
	SprayNoThemis
	// Themis installs the full middleware: Themis-S spraying at source ToRs
	// and Themis-D NACK filtering + compensation at destination ToRs.
	Themis
	// REPS is Recycled Entropy Packet Spraying: the sender sprays via a
	// bounded cache of recently-ACKed entropy values (lb.REPS) fed by the
	// RNIC's transport feedback; switches hash the stamped entropy with
	// plain ECMP.
	REPS
	// CongestionAware sprays per-packet round-robin entropy at the sender
	// and steers around congested paths switch-locally (lb.CongestionAware:
	// per-port ECN-knee EWMA), with DCQCN cutting by per-path α estimates
	// instead of the flow-global one.
	CongestionAware
)

// String returns the arm mnemonic.
func (m LBMode) String() string {
	switch m {
	case ECMP:
		return "ecmp"
	case RandomSpray:
		return "rps"
	case Adaptive:
		return "adaptive"
	case Flowlet:
		return "flowlet"
	case SprayNoThemis:
		return "spray-nothemis"
	case Themis:
		return "themis"
	case REPS:
		return "reps"
	case CongestionAware:
		return "congestion"
	default:
		return fmt.Sprintf("LBMode(%d)", int(m))
	}
}

// ClusterConfig describes one simulated cluster.
type ClusterConfig struct {
	Seed int64

	// Shards > 0 drives the trial through the sim.ShardGroup epoch
	// coordinator instead of calling Engine.Run directly. The legacy
	// workloads built on Cluster have global drivers (collective round
	// logic, the churn driver, chaos injectors, shared loss hooks) that
	// cannot be space-partitioned without changing their timing, so they
	// always run as a single shard regardless of the requested count — the
	// knob proves coordinator inertness (byte-identical results for any
	// value) rather than buying parallelism here. The spray workload
	// (RunSpray) is the genuinely partitioned path.
	Shards int

	// Topology: leaf-spine unless FatTreeK > 0.
	Leaves, Spines, HostsPerLeaf int
	FatTreeK                     int
	Bandwidth                    int64        // all links
	LinkDelay                    sim.Duration // per-hop propagation

	// Switch.
	BufferBytes int  // default 64 MB (the paper's switch buffer)
	DisableECN  bool // ECN marking is on by default (DCQCN needs it)
	DisablePFC  bool // PFC is on by default (RoCE fabrics run lossless)

	// Load balancing.
	LB         LBMode
	FlowletGap sim.Duration // default 50 us
	// RepsCache is the REPS entropy-ring capacity (default
	// lb.DefaultREPSCache). Used when LB == REPS.
	RepsCache int
	// PathBuckets is the entropy-bucket count of the congestion-aware arm:
	// the sender round-robins data packets over this many source ports and
	// DCQCN keeps one α per bucket (default 16). Used when
	// LB == CongestionAware.
	PathBuckets int

	// NIC / transport.
	Transport  rnic.Transport
	MTU        int
	BurstBytes int // default 16 KB pacer bursts
	RTO        sim.Duration
	RTOBackoff float64      // RTO multiplier per consecutive timeout (<=1: fixed RTO)
	RTOMax     sim.Duration // backoff cap (default 100x RTO when backing off)
	AckEvery   int
	DisableCC  bool
	TI, TD     sim.Duration // DCQCN knobs (Fig. 5 sweep)
	NackFactor float64      // DCQCN NACK-cut factor (default cc's 0.75)

	// LossyControl subjects ACK/NACK/CNP to buffer drops and injected loss
	// (fabric.Config.ControlLossless = false) — the robustness configuration;
	// production RoCE fabrics keep the control class lossless.
	LossyControl bool

	// DistributedRouting replaces the instant global routing oracle with the
	// per-switch BGP-style control plane (internal/route): link events
	// propagate hop-by-hop with ConvergenceDelay per message, and forwarding
	// during the window uses each switch's possibly-stale FIB.
	DistributedRouting bool
	// ConvergenceDelay is the per-hop control-message processing delay.
	// Zero converges synchronously (oracle-equivalent results).
	ConvergenceDelay sim.Duration

	// DropEveryNData, if positive, drops every Nth data packet at switch
	// egress — the declarative form of the counter-based LossFunc the loss
	// ablations use, expressible in a serialized scenario.
	DropEveryNData int

	// Themis middleware (used when LB == Themis).
	ThemisCfg core.Config

	// Tracer, if non-nil, records packet and middleware events for
	// debugging (see internal/trace).
	Tracer *trace.Tracer

	// Metrics, if non-nil, is shared by every component of the cluster:
	// fabric counters, per-NIC sender stats and per-ToR Themis verdicts all
	// register on it as pull-based gauges (see internal/obs).
	Metrics *obs.Registry
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Bandwidth == 0 {
		c.Bandwidth = 400e9
	}
	if c.LinkDelay == 0 {
		c.LinkDelay = sim.Microsecond
	}
	if c.BufferBytes == 0 {
		c.BufferBytes = 64 << 20
	}
	if c.BurstBytes == 0 {
		c.BurstBytes = 16 << 10
	}
	if c.FlowletGap == 0 {
		c.FlowletGap = 50 * sim.Microsecond
	}
	if c.RepsCache == 0 {
		c.RepsCache = lb.DefaultREPSCache
	}
	if c.PathBuckets == 0 {
		c.PathBuckets = 16
	}
	return c
}

func (c ClusterConfig) selector() func() lb.Selector {
	switch c.LB {
	case ECMP, Themis:
		// Themis steers via the ToR pipeline; non-steered traffic (e.g.
		// unregistered or fallback flows) uses ECMP.
		return func() lb.Selector { return lb.ECMP{} }
	case RandomSpray:
		return func() lb.Selector { return lb.RandomSpray{} }
	case Adaptive:
		return func() lb.Selector { return lb.Adaptive{} }
	case Flowlet:
		gap := c.FlowletGap
		return func() lb.Selector { return lb.NewFlowlet(gap) }
	case SprayNoThemis:
		return func() lb.Selector { return lb.PSNSpray{} }
	case REPS:
		// The sender's entropy cache does the path steering; switches just
		// hash the stamped five-tuple.
		return func() lb.Selector { return lb.ECMP{} }
	case CongestionAware:
		// Bias the spray away from ports whose queue has been sitting at or
		// above the ECN-marking knee — the same signal DCQCN reacts to, read
		// switch-locally and a feedback-delay earlier.
		mark := fabric.DefaultECN(c.Bandwidth).KminBytes
		return func() lb.Selector { return lb.NewCongestionAware(mark, 0, 0) }
	default:
		panic(fmt.Sprintf("workload: unknown LB mode %d", int(c.LB)))
	}
}

// entropyWiring applies the sender-side half of the spraying arms to a NIC
// config: the REPS cache (with its ACK-feedback hook) or the round-robin
// bucket entropy plus per-path DCQCN of the congestion-aware arm. A no-op
// for every other mode, byte-for-byte.
func (c ClusterConfig) entropyWiring(ncfg *rnic.Config) {
	switch c.LB {
	case REPS:
		size := c.RepsCache
		ncfg.NewEntropy = func(_ packet.QPID, base uint16) lb.EntropySource {
			return lb.NewREPS(base, size)
		}
	case CongestionAware:
		buckets := c.PathBuckets
		ncfg.NewEntropy = func(_ packet.QPID, base uint16) lb.EntropySource {
			return lb.EntropyRoundRobin{Base: base, Buckets: buckets}
		}
		ncfg.CC.PathBuckets = buckets
	}
}

// Cluster is a fully wired simulation instance.
type Cluster struct {
	Config ClusterConfig
	Engine *sim.Engine
	Topo   *topo.Topology
	Net    *fabric.Network
	NICs   []*rnic.NIC
	Themis map[int]*core.Themis // per-ToR middleware (LB == Themis only)

	// torIDs holds the Themis ToR switch IDs in creation order so that every
	// cluster-wide middleware sweep visits instances in the same order on
	// every run — ranging over the Themis map would not.
	torIDs []int

	nextQP    packet.QPID
	nextSport uint16
	conns     map[[2]packet.NodeID]*Conn
	connList  []*Conn // creation order, for deterministic iteration

	// failedLinks tracks outstanding FailLink calls so that overlapping
	// failures repaired in any order only re-enable Themis once the fabric is
	// whole again.
	failedLinks map[[2]int]bool

	// group is the shard coordinator Run drives when Config.Shards > 0 (a
	// single-shard group over Engine; see ClusterConfig.Shards).
	group *sim.ShardGroup
}

// BuildCluster assembles a cluster from the configuration.
func BuildCluster(cfg ClusterConfig) (*Cluster, error) {
	cfg = cfg.withDefaults()
	var t *topo.Topology
	var err error
	if cfg.FatTreeK > 0 {
		t, err = topo.NewFatTree(topo.FatTreeConfig{
			K:          cfg.FatTreeK,
			HostLink:   topo.LinkSpec{Bandwidth: cfg.Bandwidth, Delay: cfg.LinkDelay},
			FabricLink: topo.LinkSpec{Bandwidth: cfg.Bandwidth, Delay: cfg.LinkDelay},
		})
	} else {
		t, err = topo.NewLeafSpine(topo.LeafSpineConfig{
			Leaves: cfg.Leaves, Spines: cfg.Spines, HostsPerLeaf: cfg.HostsPerLeaf,
			HostLink:   topo.LinkSpec{Bandwidth: cfg.Bandwidth, Delay: cfg.LinkDelay},
			FabricLink: topo.LinkSpec{Bandwidth: cfg.Bandwidth, Delay: cfg.LinkDelay},
		})
	}
	if err != nil {
		return nil, err
	}
	engine := sim.NewEngine(cfg.Seed)
	// One pool per cluster: the engine is single-threaded, so every component
	// on it can share the free list. The fabric recycles packets at their
	// terminals; NICs and Themis draw replacements from the same pool.
	pool := packet.NewPool()
	fcfg := fabric.Config{
		BufferBytes:     cfg.BufferBytes,
		ControlLossless: !cfg.LossyControl,
		NewDataSelector: cfg.selector(),
		Tracer:          cfg.Tracer,
		Pool:            pool,
		Metrics:         cfg.Metrics,
	}
	if cfg.DistributedRouting {
		fcfg.Routing = route.Config{Mode: route.Distributed, PerHopDelay: cfg.ConvergenceDelay}
	}
	if !cfg.DisableECN {
		fcfg.ECN = fabric.DefaultECN(cfg.Bandwidth)
	}
	if !cfg.DisablePFC {
		fcfg.PFC = fabric.DefaultPFC(cfg.Bandwidth)
	}
	net := fabric.NewNetwork(engine, t, fcfg)
	if n := cfg.DropEveryNData; n > 0 {
		count := 0
		net.SetLossFunc(func(p *packet.Packet, sw, port int) bool {
			count++
			return count%n == 0
		})
	}

	cl := &Cluster{
		Config:      cfg,
		Engine:      engine,
		Topo:        t,
		Net:         net,
		Themis:      make(map[int]*core.Themis),
		nextQP:      1,
		nextSport:   1000,
		conns:       make(map[[2]packet.NodeID]*Conn),
		failedLinks: make(map[[2]int]bool),
	}
	if cfg.Shards > 0 {
		// One shard holding the whole topology: no cross-shard links, so the
		// lookahead is infinite and the coordinator runs a single epoch that
		// executes exactly what Engine.Run would.
		cl.group = sim.NewShardGroup([]*sim.Engine{engine}, sim.Duration(sim.Forever))
	}

	ncfg := rnic.Config{
		MTU:        cfg.MTU,
		Transport:  cfg.Transport,
		LineRate:   cfg.Bandwidth,
		DisableCC:  cfg.DisableCC,
		RTO:        cfg.RTO,
		RTOBackoff: cfg.RTOBackoff,
		RTOMax:     cfg.RTOMax,
		AckEvery:   cfg.AckEvery,
		BurstBytes: cfg.BurstBytes,
		Pool:       pool,
		Metrics:    cfg.Metrics,
	}
	ncfg.CC.LineRate = cfg.Bandwidth
	ncfg.CC.TI = cfg.TI
	ncfg.CC.TD = cfg.TD
	ncfg.CC.NackFactor = cfg.NackFactor
	cfg.entropyWiring(&ncfg)
	for h := 0; h < t.NumHosts(); h++ {
		id := packet.NodeID(h)
		nic := rnic.New(engine, id, ncfg, func(p *packet.Packet) { net.Inject(id, p) })
		net.AttachHost(id, nic.HandlePacket)
		cl.NICs = append(cl.NICs, nic)
	}

	if cfg.LB == Themis {
		tcfg := cfg.ThemisCfg
		tcfg.Pool = pool
		// The lifecycle layer (idle eviction, last-touch LRU) needs virtual
		// timestamps even without tracing, so the engine is always the clock.
		tcfg.Clock = engine
		if tcfg.Metrics == nil {
			tcfg.Metrics = cfg.Metrics
		}
		if cfg.FatTreeK > 0 && tcfg.Mode == core.DirectSpray {
			tcfg.Mode = core.PathMapSpray
		}
		if cfg.Tracer != nil && tcfg.Tracer == nil {
			tcfg.Tracer = cfg.Tracer
		}
		for _, sw := range t.Switches() {
			if sw.Tier == 0 && len(sw.Hosts()) > 0 {
				th := core.New(t, sw.ID, tcfg)
				net.SetTorPipeline(sw.ID, th)
				cl.Themis[sw.ID] = th
				cl.torIDs = append(cl.torIDs, sw.ID)
			}
		}
	}
	return cl, nil
}

// Conn returns (creating on first use) the reliable connection from src to
// dst — one QP plus Themis registration when the middleware is deployed.
func (cl *Cluster) Conn(src, dst packet.NodeID) *Conn {
	key := [2]packet.NodeID{src, dst}
	if cn, ok := cl.conns[key]; ok {
		return cn
	}
	cn := cl.OpenFlow(src, dst)
	cl.conns[key] = cn
	return cn
}

// OpenFlow creates a fresh (uncached) connection from src to dst: a new QP,
// NIC sender/receiver halves, and Themis registrations where the middleware
// is deployed. Unlike Conn it may be called repeatedly for the same host pair
// — the flow-churn workload opens and closes thousands of short-lived QPs.
// A core.ErrTableFull registration is tolerated: the flow simply runs
// unmanaged (ECMP + forwarded NACKs), which is the §4 degradation contract.
func (cl *Cluster) OpenFlow(src, dst packet.NodeID) *Conn {
	qp := cl.nextQP
	cl.nextQP++
	sport := cl.nextSport
	cl.nextSport++
	s := cl.NICs[src].OpenSender(qp, dst, sport)
	r := cl.NICs[dst].OpenReceiver(qp, src, sport)
	for _, id := range cl.torIDs {
		if err := cl.Themis[id].RegisterFlow(qp, src, dst, sport); err != nil && err != core.ErrTableFull {
			panic(err) // config error (e.g. direct spray on fat-tree): fail loudly
		}
	}
	cn := &Conn{Sender: s, Receiver: r, cluster: cl, src: src, dst: dst}
	r.OnDeliver = cn.onDeliver
	cl.connList = append(cl.connList, cn)
	return cn
}

// CloseFlow retires a connection opened by OpenFlow (or Conn): the Themis
// entries are unregistered on every ToR, and both NIC halves are closed so
// no timer or pacer event of the QP remains scheduled. Idempotent. The
// Conn's counters remain readable (AggregateSenderStats keeps counting it).
func (cl *Cluster) CloseFlow(cn *Conn) {
	if cn.closed {
		return
	}
	cn.closed = true
	qp := cn.Sender.QP()
	for _, id := range cl.torIDs {
		cl.Themis[id].UnregisterFlow(qp)
	}
	cl.NICs[cn.src].CloseSender(qp)
	cl.NICs[cn.dst].CloseReceiver(qp)
}

// Conns returns all connections created so far, in creation order.
func (cl *Cluster) Conns() []*Conn {
	out := make([]*Conn, len(cl.connList))
	copy(out, cl.connList)
	return out
}

// Mesh adapts a host list to a collective.Mesh over this cluster.
func (cl *Cluster) Mesh(hosts []packet.NodeID) collective.Mesh {
	return clusterMesh{cl: cl, hosts: hosts}
}

type clusterMesh struct {
	cl    *Cluster
	hosts []packet.NodeID
}

func (m clusterMesh) Conn(src, dst int) collective.Conn {
	return m.cl.Conn(m.hosts[src], m.hosts[dst])
}

// Run drives the simulation until the event queue drains or the horizon is
// reached, returning the final virtual time. With Config.Shards > 0 the
// epoch coordinator drives the (single-shard) group instead; the executed
// event sequence is identical either way.
func (cl *Cluster) Run(horizon sim.Duration) sim.Time {
	if cl.group != nil {
		return cl.group.Run(sim.Time(horizon))
	}
	return cl.Engine.Run(sim.Time(horizon))
}

// FailLink takes the fabric link at (sw, port) down and simulates the §6
// monitoring-tool reaction (Pingmesh-style detection): every Themis instance
// disables itself, reverting the whole fabric to ECMP. Cluster-wide disable
// is required for correctness, not just at the adjacent ToR: PSN-based
// spraying is deterministic, so any source ToR left spraying would keep
// steering the same PSN residues into the dead path forever. Failures may
// overlap; Themis stays disabled until every one is repaired.
func (cl *Cluster) FailLink(sw, port int) {
	cl.failedLinks[[2]int{sw, port}] = true
	cl.Net.SetLinkState(sw, port, false)
	for _, id := range cl.torIDs {
		cl.Themis[id].SetDisabled(true)
	}
}

// RepairLink restores the link and, once no failure remains outstanding,
// re-enables the middleware. Repairs may arrive in any order relative to the
// failures.
func (cl *Cluster) RepairLink(sw, port int) {
	delete(cl.failedLinks, [2]int{sw, port})
	cl.Net.SetLinkState(sw, port, true)
	if len(cl.failedLinks) > 0 {
		return
	}
	for _, id := range cl.torIDs {
		cl.Themis[id].SetDisabled(false)
	}
}

// FailedLinks returns the number of outstanding link failures.
func (cl *Cluster) FailedLinks() int { return len(cl.failedLinks) }

// DrainLink starts a maintenance drain of the fabric link at (sw, port): the
// routing layer withdraws it from candidate sets while the link keeps
// carrying in-flight traffic, so a later FailLink on the same link hits a
// path nothing routes over. Themis stays enabled — a drained link is alive,
// it is merely no longer a candidate, so deterministic PSN spraying never
// steers into a dead path because of a drain alone.
func (cl *Cluster) DrainLink(sw, port int) {
	cl.Net.SetLinkDrained(sw, port, true)
}

// UndrainLink ends the maintenance drain, restoring the link to candidate
// sets (after reconvergence, under distributed routing).
func (cl *Cluster) UndrainLink(sw, port int) {
	cl.Net.SetLinkDrained(sw, port, false)
}

// DrainedLinks returns the number of fabric links currently drained.
func (cl *Cluster) DrainedLinks() int { return cl.Net.DrainedLinks() }

// RebootToR power-cycles the Themis instance on ToR sw (no-op on clusters
// without the middleware): all flow-table and ring-queue state is lost
// mid-flow. With ThemisCfg.Relearn the instance rebuilds state from live
// traffic; otherwise its flows stay unmanaged until re-registered.
func (cl *Cluster) RebootToR(sw int) {
	if th, ok := cl.Themis[sw]; ok {
		th.Reboot()
	}
}

// AggregateSenderStats sums sender-side stats over all connections.
func (cl *Cluster) AggregateSenderStats() rnic.SenderStats {
	var agg rnic.SenderStats
	for _, cn := range cl.connList {
		st := cn.Sender.Stats()
		agg.DataPackets += st.DataPackets
		agg.Retransmits += st.Retransmits
		agg.BytesSent += st.BytesSent
		agg.GoodputBytes += st.GoodputBytes
		agg.AcksRx += st.AcksRx
		agg.NacksRx += st.NacksRx
		agg.CnpsRx += st.CnpsRx
		agg.Timeouts += st.Timeouts
		agg.Completions += st.Completions
	}
	return agg
}

// ThemisStats sums middleware stats over all ToRs.
func (cl *Cluster) ThemisStats() core.Stats {
	var agg core.Stats
	for _, id := range cl.torIDs {
		st := cl.Themis[id].Stats()
		agg.Sprayed += st.Sprayed
		agg.NacksSeen += st.NacksSeen
		agg.NacksForwarded += st.NacksForwarded
		agg.NacksBlocked += st.NacksBlocked
		agg.Compensations += st.Compensations
		agg.CompensationCancelled += st.CompensationCancelled
		agg.ScanMisses += st.ScanMisses
		agg.RingOverflows += st.RingOverflows
		agg.Bypassed += st.Bypassed
		agg.Reboots += st.Reboots
		agg.Relearns += st.Relearns
		agg.Evictions += st.Evictions
		agg.IdleEvictions += st.IdleEvictions
		agg.TableFull += st.TableFull
		agg.Unregistered += st.Unregistered
		agg.UnknownNacksForwarded += st.UnknownNacksForwarded
	}
	return agg
}

// MaxTableBytes returns the largest current flow-table occupancy across ToRs
// and the (uniform) configured budget. Both are zero on clusters without the
// middleware.
func (cl *Cluster) MaxTableBytes() (maxBytes, budget int) {
	for _, id := range cl.torIDs {
		th := cl.Themis[id]
		if b := th.TableBytes(); b > maxBytes {
			maxBytes = b
		}
		budget = th.TableBudgetBytes()
	}
	return maxBytes, budget
}

// Conn adapts one QP pair to collective.Conn and tracks in-order delivery
// thresholds.
type Conn struct {
	Sender   *rnic.SenderQP
	Receiver *rnic.ReceiverQP

	cluster  *Cluster
	src, dst packet.NodeID
	closed   bool

	recvBytes int64
	notifies  []connNotify
}

// Src returns the sending host.
func (cn *Conn) Src() packet.NodeID { return cn.src }

// Dst returns the receiving host.
func (cn *Conn) Dst() packet.NodeID { return cn.dst }

// Closed reports whether CloseFlow has retired this connection.
func (cn *Conn) Closed() bool { return cn.closed }

// Close retires the connection (see Cluster.CloseFlow).
func (cn *Conn) Close() { cn.cluster.CloseFlow(cn) }

type connNotify struct {
	threshold int64
	fn        func()
}

// Send implements collective.Conn.
func (cn *Conn) Send(bytes int64, sentDone func()) {
	cn.Sender.SendMessage(bytes, sentDone)
}

// NotifyRecv implements collective.Conn.
func (cn *Conn) NotifyRecv(threshold int64, fn func()) {
	if cn.recvBytes >= threshold {
		fn()
		return
	}
	cn.notifies = append(cn.notifies, connNotify{threshold, fn})
}

// RecvBytes returns the in-order bytes delivered so far.
func (cn *Conn) RecvBytes() int64 { return cn.recvBytes }

func (cn *Conn) onDeliver(_ sim.Time, _ packet.PSN, payload int) {
	cn.recvBytes += int64(payload)
	for len(cn.notifies) > 0 && cn.notifies[0].threshold <= cn.recvBytes {
		fn := cn.notifies[0].fn
		cn.notifies = cn.notifies[1:]
		fn()
	}
}
