package workload

import (
	"fmt"

	"themis/internal/fabric"
	"themis/internal/packet"
	"themis/internal/rnic"
	"themis/internal/sim"
	"themis/internal/topo"
)

// streamKeyShardEngine is the sim.StreamSeed key namespace for per-shard
// engine seeds. The sharded fabric never draws from engine RNGs (switches use
// identity-keyed streams, NICs are deterministic), so these seeds only matter
// if a future component forgets that rule — distinct per-shard seeds make such
// a bug show up as shard-count-dependent output instead of silently passing.
func streamKeyShardEngine(shard int) uint64 { return 0xE5<<56 | uint64(shard) }

// SprayConfig parameterizes the space-parallel permutation workload: every
// host on a K-ary fat-tree sends one message to the host half the cluster
// away (dst = (src + H/2) mod H), so all traffic crosses the core and every
// shard carries an equal slice. This is the workload that genuinely exercises
// the sharded engine — the legacy Cluster workloads have global drivers and
// pin themselves to one shard (see ClusterConfig.Shards).
type SprayConfig struct {
	Seed         int64
	FatTreeK     int          // default 4
	Bandwidth    int64        // default 100 Gbps
	LinkDelay    sim.Duration // default 1 us
	BufferBytes  int          // switch shared buffer (default 64 MB)
	MessageBytes int64        // per host (default 1 MB)
	BurstBytes   int          // NIC pacer burst (default: ClusterConfig default)
	LB           LBMode       // any non-Themis arm (incl. REPS / CongestionAware)
	RepsCache    int          // REPS ring capacity (LB == REPS; 0 = default)
	PathBuckets  int          // congestion-aware entropy buckets (0 = default)
	DisablePFC   bool
	DisableECN   bool
	// Shards is the number of space-parallel shards (default 1). The result
	// is byte-identical for every legal value — that is the determinism
	// contract TestSprayShardInvariance enforces.
	Shards  int
	Horizon sim.Duration // default 30 s
}

func (c SprayConfig) withDefaults() SprayConfig {
	if c.FatTreeK == 0 {
		c.FatTreeK = 4
	}
	if c.Bandwidth == 0 {
		c.Bandwidth = 100e9
	}
	if c.LinkDelay == 0 {
		c.LinkDelay = sim.Microsecond
	}
	if c.BufferBytes == 0 {
		c.BufferBytes = 64 << 20
	}
	if c.MessageBytes == 0 {
		c.MessageBytes = 1 << 20
	}
	if c.BurstBytes == 0 {
		c.BurstBytes = 16 << 10
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Horizon == 0 {
		c.Horizon = 30 * sim.Second
	}
	return c
}

// SprayResult carries the permutation measurements.
type SprayResult struct {
	CCT      sim.Time   // when the last message is acknowledged
	Complete []sim.Time // per-sender completion time, indexed by source host
	Sender   SenderAgg
	Net      fabric.Counters
	// Engine is the merged event-loop counter block of all shard engines.
	// EventsExecuted and EventsCancelled are partition-invariant; the
	// allocator counters (EventAllocs, EventReuses, HeapHighWater) depend on
	// per-shard free-list locality and are excluded from the determinism
	// contract.
	Engine sim.Metrics
	End    sim.Time
}

// RunSpray builds the sharded fat-tree dataplane and runs the permutation.
func RunSpray(cfg SprayConfig) (*SprayResult, error) {
	cfg = cfg.withDefaults()
	if cfg.LB == Themis {
		return nil, fmt.Errorf("workload: spray does not support the Themis pipeline yet (core wiring is classic-engine only)")
	}
	t, err := topo.NewFatTree(topo.FatTreeConfig{
		K:          cfg.FatTreeK,
		HostLink:   topo.LinkSpec{Bandwidth: cfg.Bandwidth, Delay: cfg.LinkDelay},
		FabricLink: topo.LinkSpec{Bandwidth: cfg.Bandwidth, Delay: cfg.LinkDelay},
	})
	if err != nil {
		return nil, err
	}
	part, err := topo.PartitionRacks(t, cfg.Shards)
	if err != nil {
		return nil, err
	}
	la, err := topo.Lookahead(t, part)
	if err != nil {
		return nil, err
	}
	engines := make([]*sim.Engine, cfg.Shards)
	for i := range engines {
		engines[i] = sim.NewEngine(sim.StreamSeed(cfg.Seed, streamKeyShardEngine(i)))
	}
	group := sim.NewShardGroup(engines, la)

	// The selector and the sender-side entropy wiring share one lowered
	// ClusterConfig so the switch MarkBytes knee and the NIC bucket counts
	// stay consistent with the single-shard cluster path.
	lcfg := ClusterConfig{
		LB:          cfg.LB,
		Bandwidth:   cfg.Bandwidth,
		RepsCache:   cfg.RepsCache,
		PathBuckets: cfg.PathBuckets,
	}.withDefaults()
	fcfg := fabric.Config{
		BufferBytes:     cfg.BufferBytes,
		ControlLossless: true,
		NewDataSelector: lcfg.selector(),
	}
	if !cfg.DisableECN {
		fcfg.ECN = fabric.DefaultECN(cfg.Bandwidth)
	}
	if !cfg.DisablePFC {
		fcfg.PFC = fabric.DefaultPFC(cfg.Bandwidth)
	}
	net, err := fabric.NewShardedNetwork(group, t, part, cfg.Seed, fcfg)
	if err != nil {
		return nil, err
	}

	h2 := t.NumHosts()
	nics := make([]*rnic.NIC, h2)
	for h := 0; h < h2; h++ {
		id := packet.NodeID(h)
		shard := part.HostShard[h]
		ncfg := rnic.Config{
			MTU:        packet.DefaultMTU,
			LineRate:   cfg.Bandwidth,
			BurstBytes: cfg.BurstBytes,
			Pool:       net.ShardPool(shard),
		}
		// Per-sender entropy state lives on the sender's own shard and is a
		// pure function of its transport feedback, so the spraying arms stay
		// shard-invariant.
		lcfg.entropyWiring(&ncfg)
		nic := rnic.New(group.Shard(shard), id, ncfg, func(p *packet.Packet) { net.Inject(id, p) })
		net.AttachHost(id, nic.HandlePacket)
		nics[h] = nic
	}

	res := &SprayResult{Complete: make([]sim.Time, h2)}
	senders := make([]*rnic.SenderQP, h2)
	for h := 0; h < h2; h++ {
		src, dst := packet.NodeID(h), packet.NodeID((h+h2/2)%h2)
		qp, sport := packet.QPID(h+1), uint16(1000+h)
		s := nics[src].OpenSender(qp, dst, sport)
		nics[dst].OpenReceiver(qp, src, sport)
		senders[h] = s
		// Each completion closure writes only its own slot on its own
		// shard's engine — no cross-shard state, so no coordination needed.
		eng, slot := group.Shard(part.HostShard[h]), h
		s.SendMessage(cfg.MessageBytes, func() { res.Complete[slot] = eng.Now() })
	}

	res.End = group.Run(sim.Time(cfg.Horizon))
	for h, at := range res.Complete {
		if at == 0 {
			return nil, fmt.Errorf("workload: spray incomplete: host %d unfinished at %v", h, res.End)
		}
		if at > res.CCT {
			res.CCT = at
		}
	}
	for _, s := range senders {
		st := s.Stats()
		res.Sender.Retransmits += st.Retransmits
		res.Sender.Timeouts += st.Timeouts
		res.Sender.NacksRx += st.NacksRx
	}
	res.Net = net.Counters()
	res.Engine = group.Metrics()
	return res, nil
}
