package workload

import (
	"fmt"

	"themis/internal/obs"
	"themis/internal/packet"
	"themis/internal/rnic"
	"themis/internal/sim"
	"themis/internal/stats"
	"themis/internal/trace"
)

// MotivationConfig parameterizes the §2.2 motivation experiment (Fig. 1):
// eight nodes in two 4-node ring groups over a 100 Gbps leaf-spine fabric,
// random packet spraying, each node sending MessageBytes to the next node of
// its group.
type MotivationConfig struct {
	Seed         int64
	MessageBytes int64          // default 100 MB (the paper's size)
	Transport    rnic.Transport // NIC-SR (default) or Ideal for the Fig. 1d bound
	LB           LBMode         // default RandomSpray (the paper's motivation LB)
	Window       sim.Duration   // meter window for time series (default 100 us)
	SampleEvery  sim.Duration   // rate sampling period (default 10 us)
	Horizon      sim.Duration   // simulation cap (default 10 s)
	Shards       int            // drive via the shard coordinator (see ClusterConfig.Shards)
	BurstBytes   int            // pacer burst (default 16 KB)
	// TI/TD are the DCQCN rate-increase timer and minimum decrease
	// interval. The motivation study defaults to the classic DCQCN values
	// (55 us fast-recovery timer, 50 us rate-reduce gate [41]) — the Fig. 1c
	// sawtooth (drops to ~50-90% with quick recovery, averaging ~86% of
	// line rate) requires cuts to be rate-limited and recovery to be fast;
	// Fig. 5 separately sweeps these knobs.
	TI, TD sim.Duration
	// NackFactor overrides the DCQCN NACK-cut factor (0 = cc default).
	NackFactor float64
	// Transport recovery knobs (see rnic.Config).
	RTO        sim.Duration
	RTOBackoff float64
	RTOMax     sim.Duration
	// DistributedRouting/ConvergenceDelay select the BGP-style per-switch
	// control plane (see ClusterConfig).
	DistributedRouting bool
	ConvergenceDelay   sim.Duration
	// Tracer/Metrics hook up the observability harness (see internal/obs);
	// not part of the serialized scenario.
	Tracer  *trace.Tracer `json:"-"`
	Metrics *obs.Registry `json:"-"`
}

func (c MotivationConfig) withDefaults() MotivationConfig {
	if c.MessageBytes == 0 {
		c.MessageBytes = 100 << 20
	}
	if c.Window == 0 {
		c.Window = 100 * sim.Microsecond
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 10 * sim.Microsecond
	}
	if c.Horizon == 0 {
		c.Horizon = 10 * sim.Second
	}
	if c.TI == 0 {
		c.TI = 55 * sim.Microsecond
	}
	if c.TD == 0 {
		c.TD = 50 * sim.Microsecond
	}
	return c
}

// MotivationResult carries the Fig. 1 measurements.
type MotivationResult struct {
	// RetransRatio is the windowed retransmission ratio of the observed
	// flow (node 0 → node 2), Fig. 1b.
	RetransRatio *stats.Series
	// AvgRetransRatio is retransmitted/total data packets over all flows.
	AvgRetransRatio float64
	// RateGbps is the observed flow's sending rate over time, Fig. 1c.
	RateGbps *stats.Series
	// AvgRateGbps is the time-average of the observed flow's rate while it
	// was active.
	AvgRateGbps float64
	// ThroughputGbps is each flow's goodput over its completion time; the
	// average reproduces Fig. 1d's bar.
	ThroughputGbps []float64
	AvgThroughput  float64
	// CompletionTime is when the last flow finished.
	CompletionTime sim.Time
	// Aggregate transport counters.
	Sender rnic.SenderStats
	// Engine is the event-loop counter block for this trial's engine.
	Engine sim.Metrics
}

// MotivationFlows returns the ring flow pairs of Fig. 1a: two groups
// {0,2,4,6} and {1,3,5,7}, each node sending to the next in its group.
func MotivationFlows() [][2]packet.NodeID {
	var flows [][2]packet.NodeID
	for _, start := range []int{0, 1} {
		for i := 0; i < 4; i++ {
			src := packet.NodeID(start + 2*i)
			dst := packet.NodeID(start + 2*((i+1)%4))
			flows = append(flows, [2]packet.NodeID{src, dst})
		}
	}
	return flows
}

// RunMotivation executes the Fig. 1 experiment and returns its measurements.
func RunMotivation(cfg MotivationConfig) (*MotivationResult, error) {
	cfg = cfg.withDefaults()
	lbMode := cfg.LB
	if lbMode == ECMP {
		lbMode = RandomSpray // the motivation study's default arm
	}
	cl, err := BuildCluster(ClusterConfig{
		Seed:               cfg.Seed,
		Shards:             cfg.Shards,
		Leaves:             4,
		Spines:             4,
		HostsPerLeaf:       2,
		Bandwidth:          100e9,
		LB:                 lbMode,
		Transport:          cfg.Transport,
		BurstBytes:         cfg.BurstBytes,
		TI:                 cfg.TI,
		TD:                 cfg.TD,
		NackFactor:         cfg.NackFactor,
		RTO:                cfg.RTO,
		RTOBackoff:         cfg.RTOBackoff,
		RTOMax:             cfg.RTOMax,
		DistributedRouting: cfg.DistributedRouting,
		ConvergenceDelay:   cfg.ConvergenceDelay,
		Tracer:             cfg.Tracer,
		Metrics:            cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}

	flows := MotivationFlows()
	res := &MotivationResult{}
	ratio := stats.NewRatioMeter("retransmission ratio (flow 0->2)", cfg.Window)
	rate := stats.NewSeries("rate Gbps (flow 0->2)")

	remaining := len(flows)
	completions := make([]sim.Time, len(flows))
	conns := make([]*Conn, len(flows))
	for i, f := range flows {
		i := i
		cn := cl.Conn(f[0], f[1])
		conns[i] = cn
		if i == 0 { // the observed flow: node 0 -> node 2
			cn.Sender.OnSend = func(t sim.Time, _ packet.PSN, _ int, retrans bool) {
				r := 0.0
				if retrans {
					r = 1
				}
				ratio.Observe(t, r, 1)
			}
		}
		cn.Send(cfg.MessageBytes, func() {
			completions[i] = cl.Engine.Now()
			remaining--
			if remaining == 0 {
				cl.Engine.Stop()
			}
		})
	}

	// Sample the observed flow's DCQCN rate (Fig. 1c).
	sampler := sim.NewTicker(cl.Engine, cfg.SampleEvery, func() {
		rate.Add(cl.Engine.Now(), float64(conns[0].Sender.Rate())/1e9)
	})
	sampler.Start()
	end := cl.Run(cfg.Horizon)
	sampler.Stop()
	cl.Engine.RunAll() // drain remaining events (acks in flight, timers)

	if remaining != 0 {
		return nil, fmt.Errorf("workload: motivation run incomplete: %d flows unfinished at %v", remaining, end)
	}

	res.RetransRatio = ratio.Finish(completions[0])
	res.RateGbps = rate
	res.CompletionTime = maxTime(completions)
	res.Sender = cl.AggregateSenderStats()
	if res.Sender.DataPackets > 0 {
		res.AvgRetransRatio = float64(res.Sender.Retransmits) / float64(res.Sender.DataPackets)
	}
	// Truncate the rate series to the observed flow's active period before
	// averaging.
	var active []float64
	for _, s := range res.RateGbps.Samples {
		if s.T <= completions[0] {
			active = append(active, s.V)
		}
	}
	res.AvgRateGbps = stats.Mean(active)
	for i := range flows {
		gbps := float64(conns[i].Sender.Stats().GoodputBytes) * 8 / completions[i].Seconds() / 1e9
		res.ThroughputGbps = append(res.ThroughputGbps, gbps)
	}
	res.AvgThroughput = stats.Mean(res.ThroughputGbps)
	res.Engine = cl.Engine.Metrics()
	return res, nil
}

func maxTime(ts []sim.Time) sim.Time {
	var m sim.Time
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}
