package workload

import (
	"reflect"
	"testing"

	"themis/internal/core"
	"themis/internal/memmodel"
	"themis/internal/sim"
)

// dstEntryBytes is the §4 cost of one Themis-D entry on the default cluster
// topology (100 Gbps, 1 us hops): 20 B of flow state + a 25-entry PSN ring.
const dstEntryBytes = memmodel.FlowTableEntryBytes + 25*memmodel.QueueEntryBytes

// TestOverlappingFailureWithFallbackLatches is the regression test for the
// latch-clobber bug: the cluster-wide monitoring disable (FailLink →
// SetDisabled) and the §6 per-ToR link reaction (FallbackOnFailure →
// LinkStateChanged) used to share one boolean, so repairing a ToR-adjacent
// link re-enabled that ToR even while an unrelated failure elsewhere still
// required the whole fabric to stay on ECMP.
func TestOverlappingFailureWithFallbackLatches(t *testing.T) {
	cl, err := BuildCluster(ClusterConfig{
		Seed: 1, Leaves: 2, Spines: 4, HostsPerLeaf: 2, Bandwidth: 100e9,
		LB:        Themis,
		ThemisCfg: core.Config{FallbackOnFailure: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	tor0, tor1 := cl.Themis[0], cl.Themis[1]
	// Fault A is adjacent to ToR 0, fault B to ToR 1 (ports 0..1 are hosts,
	// 2.. are uplinks). Each trips both latches on its ToR: the cluster-wide
	// admin disable plus the ToR's own FallbackOnFailure reaction.
	cl.FailLink(0, 2)
	cl.FailLink(1, 2)
	if tor0.DownPorts() != 1 || tor1.DownPorts() != 1 {
		t.Fatalf("downPorts = %d,%d, want 1,1", tor0.DownPorts(), tor1.DownPorts())
	}
	// Repair A. ToR 0's link reaction clears (its ports are healthy again)
	// but fault B is still outstanding, so the admin latch must keep every
	// instance — including ToR 0 — disabled. With a single shared boolean the
	// link-up event clobbered the cluster-wide latch here.
	cl.RepairLink(0, 2)
	if tor0.DownPorts() != 0 {
		t.Fatalf("tor0 downPorts = %d after repair, want 0", tor0.DownPorts())
	}
	for id, th := range cl.Themis {
		if !th.Disabled() {
			t.Fatalf("sw %d re-enabled while fault B is outstanding", id)
		}
	}
	done := false
	cl.Conn(0, 2).Send(500_000, func() { done = true })
	cl.Run(sim.Second)
	if !done {
		t.Fatal("transfer incomplete under the remaining failure")
	}
	// Repair B: the admin latch clears everywhere and ToR 1's link reaction
	// clears with the up event — nothing may remain disabled.
	cl.RepairLink(1, 2)
	for id, th := range cl.Themis {
		if th.Disabled() {
			t.Fatalf("sw %d still disabled after the last repair", id)
		}
	}
}

// TestChurnUnboundedCompletes is the baseline arm: no budget, no faults —
// every flow completes, nothing is ever evicted or rejected.
func TestChurnUnboundedCompletes(t *testing.T) {
	res, err := RunChurn(ChurnConfig{
		Seed: 1, QPs: 60, Concurrency: 12, MessageBytes: 64 << 10,
		LB: Themis, ThemisCfg: core.Config{Relearn: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Completed != 60 || res.Opened != 60 {
		t.Fatalf("completed %d opened %d, want 60/60", res.Completed, res.Opened)
	}
	if res.Middleware.Evictions != 0 || res.Middleware.TableFull != 0 {
		t.Fatalf("unbounded run evicted: %+v", res.Middleware)
	}
	if res.Middleware.Unregistered == 0 {
		t.Fatal("CloseFlow never unregistered anything")
	}
	if res.GoodputGbps <= 0 {
		t.Fatalf("goodput = %v", res.GoodputGbps)
	}
}

// TestChurnBudgetedDegradesGracefully is the tentpole acceptance check at
// workload level: with SRAM for roughly 1/10 of the offered QPs, occupancy
// never exceeds the budget, flows that lose (or never get) an entry fall back
// to ECMP, and every transfer still completes.
func TestChurnBudgetedDegradesGracefully(t *testing.T) {
	budget := 6 * dstEntryBytes // 60 QPs offered, table fits ~6 dst entries
	res, err := RunChurn(ChurnConfig{
		Seed: 1, QPs: 60, Concurrency: 12, MessageBytes: 64 << 10,
		LB:        Themis,
		ThemisCfg: core.Config{Relearn: true, TableBudgetBytes: budget},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Completed != 60 {
		t.Fatalf("completed %d/60 under budget pressure", res.Completed)
	}
	if res.MaxTableBytes > budget {
		t.Fatalf("peak occupancy %d B exceeds budget %d B", res.MaxTableBytes, budget)
	}
	// Non-vacuity: the budget must actually have displaced flows.
	if res.Middleware.Evictions == 0 && res.Middleware.TableFull == 0 {
		t.Fatalf("budget %d B never bit: %+v", budget, res.Middleware)
	}
	if res.TableBudgetBytes != budget {
		t.Fatalf("result echoes budget %d, want %d", res.TableBudgetBytes, budget)
	}
}

// TestChurnDeterministic: same seed, same config → byte-identical results.
func TestChurnDeterministic(t *testing.T) {
	cfg := ChurnConfig{
		Seed: 3, QPs: 40, Concurrency: 8, MessageBytes: 32 << 10,
		LB: Themis, Faults: true,
		ThemisCfg: core.Config{Relearn: true, FallbackOnFailure: true,
			TableBudgetBytes: 4 * dstEntryBytes},
	}
	a, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

// TestChurnSoak mixes flow churn with seeded ToR reboots and link flaps over
// 50 seeds, under a budget sized for 1/10 of the offered QPs. Two budgeted
// arms run per seed — relearn on (eviction means a one-packet relearn churn)
// and relearn off (eviction means a permanent fall back to ECMP, the arm that
// exercises conservative NACK forwarding) — plus an unbounded baseline. Every
// arm must hold all lifecycle invariants (occupancy ≤ budget, blocked-NACK
// conservation — i.e. evicted/unknown-QP NACKs are forwarded, never blocked —
// and armed compensations drain), and each budgeted arm's mean goodput must
// stay within 15% of the unbounded baseline.
func TestChurnSoak(t *testing.T) {
	const seeds = 50
	base := ChurnConfig{
		QPs: 120, Concurrency: 24, MessageBytes: 64 << 10,
		// The burst pacer is what turns spraying into OOO arrivals and hence
		// NACK traffic (rnic.Config.BurstBytes); without it the soak's NACK
		// invariants are near-vacuous.
		BurstBytes: 9000,
		LB:         Themis, Faults: true, LossyControl: true,
	}
	budget := 12 * dstEntryBytes // table for 1/10 of the offered QPs
	arms := []struct {
		name string
		cfg  core.Config
	}{
		{"budgeted-relearn", core.Config{Relearn: true, FallbackOnFailure: true, TableBudgetBytes: budget}},
		{"budgeted-ecmp", core.Config{FallbackOnFailure: true, TableBudgetBytes: budget}},
		{"unbounded", core.Config{Relearn: true, FallbackOnFailure: true}},
	}
	goodput := make([]float64, len(arms))
	evictions, forwarded := uint64(0), uint64(0)
	for seed := int64(1); seed <= seeds; seed++ {
		for i, arm := range arms {
			cfg := base
			cfg.Seed = seed
			cfg.ThemisCfg = arm.cfg
			res, err := RunChurn(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != 0 {
				t.Errorf("seed %d %s: violations %v", seed, arm.name, res.Violations)
			}
			goodput[i] += res.GoodputGbps
			if arm.cfg.TableBudgetBytes > 0 {
				evictions += res.Middleware.Evictions
				forwarded += res.Middleware.UnknownNacksForwarded
			}
		}
	}
	// The soak is vacuous unless the budget displaced real state and the
	// degraded flows actually exercised the forward-don't-block path.
	if evictions == 0 {
		t.Fatal("soak never evicted a flow")
	}
	if forwarded == 0 {
		t.Fatal("soak never forwarded a NACK for an evicted/unknown QP")
	}
	for i, arm := range arms[:2] {
		if goodput[i] < 0.85*goodput[2] {
			t.Fatalf("%s mean goodput %.2f Gbps below 85%% of unbounded %.2f Gbps",
				arm.name, goodput[i]/seeds, goodput[2]/seeds)
		}
	}
}
