package workload

import (
	"testing"

	"themis/internal/collective"
	"themis/internal/packet"
	"themis/internal/rnic"
	"themis/internal/sim"
	"themis/internal/trace"
)

func TestLBModeString(t *testing.T) {
	names := map[LBMode]string{
		ECMP: "ecmp", RandomSpray: "rps", Adaptive: "adaptive",
		Flowlet: "flowlet", SprayNoThemis: "spray-nothemis", Themis: "themis",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d: got %q want %q", m, m.String(), want)
		}
	}
}

func TestBuildClusterLeafSpine(t *testing.T) {
	cl, err := BuildCluster(ClusterConfig{
		Seed: 1, Leaves: 2, Spines: 2, HostsPerLeaf: 2, Bandwidth: 100e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.NICs) != 4 {
		t.Fatalf("nics = %d", len(cl.NICs))
	}
	if len(cl.Themis) != 0 {
		t.Fatal("themis installed without LB=Themis")
	}
}

func TestBuildClusterThemisInstallsPipelines(t *testing.T) {
	cl, err := BuildCluster(ClusterConfig{
		Seed: 1, Leaves: 4, Spines: 4, HostsPerLeaf: 2, Bandwidth: 100e9, LB: Themis,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Themis) != 4 {
		t.Fatalf("themis instances = %d, want one per leaf", len(cl.Themis))
	}
}

func TestBuildClusterFatTree(t *testing.T) {
	cl, err := BuildCluster(ClusterConfig{Seed: 1, FatTreeK: 4, Bandwidth: 100e9, LB: Themis})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Topo.NumHosts() != 16 {
		t.Fatalf("hosts = %d", cl.Topo.NumHosts())
	}
	// Cross-pod connection must register without error (PathMap mode is
	// forced automatically on fat-trees).
	cn := cl.Conn(0, 15)
	done := false
	cn.Send(100_000, func() { done = true })
	cl.Run(sim.Second)
	if !done {
		t.Fatal("fat-tree transfer incomplete")
	}
}

func TestConnReuse(t *testing.T) {
	cl, err := BuildCluster(ClusterConfig{Seed: 1, Leaves: 2, Spines: 2, HostsPerLeaf: 1, Bandwidth: 100e9})
	if err != nil {
		t.Fatal(err)
	}
	a := cl.Conn(0, 1)
	b := cl.Conn(0, 1)
	if a != b {
		t.Fatal("Conn not reused")
	}
	if c := cl.Conn(1, 0); c == a {
		t.Fatal("reverse direction shared a QP")
	}
	if len(cl.Conns()) != 2 {
		t.Fatalf("conns = %d", len(cl.Conns()))
	}
}

func TestConnNotifyRecvOrdering(t *testing.T) {
	cl, err := BuildCluster(ClusterConfig{Seed: 1, Leaves: 2, Spines: 2, HostsPerLeaf: 1, Bandwidth: 100e9})
	if err != nil {
		t.Fatal(err)
	}
	cn := cl.Conn(0, 1)
	var fired []int
	cn.NotifyRecv(1000, func() { fired = append(fired, 1) })
	cn.NotifyRecv(2000, func() { fired = append(fired, 2) })
	cn.Send(2500, nil)
	cl.Run(sim.Second)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if cn.RecvBytes() != 2500 {
		t.Fatalf("recv bytes = %d", cn.RecvBytes())
	}
	// Already-crossed threshold fires immediately.
	now := false
	cn.NotifyRecv(100, func() { now = true })
	if !now {
		t.Fatal("past threshold did not fire immediately")
	}
}

func TestGroupHosts(t *testing.T) {
	hosts := GroupHosts(4, 16, 3)
	want := []packet.NodeID{3, 19, 35, 51}
	for i := range want {
		if hosts[i] != want[i] {
			t.Fatalf("hosts = %v", hosts)
		}
	}
}

func TestMotivationFlows(t *testing.T) {
	flows := MotivationFlows()
	if len(flows) != 8 {
		t.Fatalf("flows = %d", len(flows))
	}
	// Group 1 ring: 0->2->4->6->0.
	if flows[0] != [2]packet.NodeID{0, 2} || flows[3] != [2]packet.NodeID{6, 0} {
		t.Fatalf("group 1 flows = %v", flows[:4])
	}
	// Group 2 ring: 1->3->5->7->1.
	if flows[4] != [2]packet.NodeID{1, 3} || flows[7] != [2]packet.NodeID{7, 1} {
		t.Fatalf("group 2 flows = %v", flows[4:])
	}
	// Every flow is cross-rack (host h is on leaf h/2).
	for _, f := range flows {
		if f[0]/2 == f[1]/2 {
			t.Fatalf("flow %v is same-rack", f)
		}
	}
}

func TestRunMotivationSmall(t *testing.T) {
	res, err := RunMotivation(MotivationConfig{Seed: 3, MessageBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionTime <= 0 {
		t.Fatal("no completion time")
	}
	if len(res.ThroughputGbps) != 8 {
		t.Fatalf("throughputs = %d", len(res.ThroughputGbps))
	}
	// NIC-SR + random spraying: the pathology must appear.
	if res.Sender.Retransmits == 0 {
		t.Fatal("no spurious retransmissions in the motivation scenario")
	}
	if res.AvgRetransRatio <= 0 || res.AvgRetransRatio >= 1 {
		t.Fatalf("retrans ratio = %f", res.AvgRetransRatio)
	}
	if res.AvgRateGbps <= 0 || res.AvgRateGbps > 100 {
		t.Fatalf("avg rate = %f", res.AvgRateGbps)
	}
	if res.AvgThroughput <= 0 || res.AvgThroughput > 100 {
		t.Fatalf("avg throughput = %f", res.AvgThroughput)
	}
	if res.RetransRatio.Len() == 0 || res.RateGbps.Len() == 0 {
		t.Fatal("empty time series")
	}
}

func TestRunMotivationIdealBeatsNICSR(t *testing.T) {
	nicsr, err := RunMotivation(MotivationConfig{Seed: 3, MessageBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := RunMotivation(MotivationConfig{Seed: 3, MessageBytes: 2 << 20, Transport: rnic.Ideal})
	if err != nil {
		t.Fatal(err)
	}
	if ideal.Sender.Retransmits != 0 {
		t.Fatalf("ideal transport retransmitted %d", ideal.Sender.Retransmits)
	}
	if ideal.AvgThroughput <= nicsr.AvgThroughput {
		t.Fatalf("ideal %.1f <= nic-sr %.1f Gbps", ideal.AvgThroughput, nicsr.AvgThroughput)
	}
}

func smallCollective(pattern collective.Pattern, lb LBMode, seed int64) CollectiveConfig {
	return CollectiveConfig{
		Seed:         seed,
		Pattern:      pattern,
		MessageBytes: 1 << 20,
		Leaves:       4,
		Spines:       4,
		HostsPerLeaf: 4,
		Bandwidth:    100e9,
		Groups:       4,
		LB:           lb,
	}
}

func TestRunCollectiveAllreduceArms(t *testing.T) {
	for _, arm := range Fig5Arms() {
		res, err := RunCollective(smallCollective(collective.RingAllreduce, arm, 5))
		if err != nil {
			t.Fatalf("%v: %v", arm, err)
		}
		if res.TailCCT <= 0 {
			t.Fatalf("%v: no tail CCT", arm)
		}
		if len(res.GroupCCT) != 4 {
			t.Fatalf("%v: groups = %d", arm, len(res.GroupCCT))
		}
		for g, cct := range res.GroupCCT {
			if cct <= 0 || cct > res.TailCCT {
				t.Fatalf("%v: group %d CCT %v vs tail %v", arm, g, cct, res.TailCCT)
			}
		}
	}
}

func TestRunCollectiveAlltoall(t *testing.T) {
	res, err := RunCollective(smallCollective(collective.AllToAll, Themis, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.TailCCT <= 0 {
		t.Fatal("no tail CCT")
	}
	if res.Middleware.Sprayed == 0 {
		t.Fatal("themis sprayed nothing")
	}
}

func TestRunCollectiveThemisBeatsAdaptive(t *testing.T) {
	// The paper's headline comparison: Themis vs the direct combination of
	// commodity RNICs and adaptive routing (§5).
	themis, err := RunCollective(smallCollective(collective.RingAllreduce, Themis, 5))
	if err != nil {
		t.Fatal(err)
	}
	ar, err := RunCollective(smallCollective(collective.RingAllreduce, Adaptive, 5))
	if err != nil {
		t.Fatal(err)
	}
	if ar.Sender.NacksRx == 0 {
		t.Fatal("adaptive routing produced no sender NACKs — pathology missing")
	}
	if themis.Sender.NacksRx >= ar.Sender.NacksRx {
		t.Fatalf("themis nacks %d >= adaptive %d", themis.Sender.NacksRx, ar.Sender.NacksRx)
	}
	if themis.RetransRatio() >= ar.RetransRatio() {
		t.Fatalf("themis retrans ratio %.4f >= adaptive %.4f", themis.RetransRatio(), ar.RetransRatio())
	}
	if themis.TailCCT >= ar.TailCCT {
		t.Fatalf("themis tail CCT %v >= adaptive %v", themis.TailCCT, ar.TailCCT)
	}
}

func TestRunCollectiveDeterministic(t *testing.T) {
	a, err := RunCollective(smallCollective(collective.RingAllreduce, Adaptive, 9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCollective(smallCollective(collective.RingAllreduce, Adaptive, 9))
	if err != nil {
		t.Fatal(err)
	}
	if a.TailCCT != b.TailCCT || a.Sender.Retransmits != b.Sender.Retransmits {
		t.Fatalf("nondeterministic: %v/%d vs %v/%d", a.TailCCT, a.Sender.Retransmits, b.TailCCT, b.Sender.Retransmits)
	}
}

func TestRunCollectiveTooManyGroups(t *testing.T) {
	cfg := smallCollective(collective.RingAllreduce, ECMP, 1)
	cfg.Groups = 10
	if _, err := RunCollective(cfg); err == nil {
		t.Fatal("expected error")
	}
}

func TestPaperDCQCNSettings(t *testing.T) {
	s := PaperDCQCNSettings()
	if len(s) != 5 {
		t.Fatalf("settings = %d", len(s))
	}
	if s[0].TI != 900*sim.Microsecond || s[0].TD != 4*sim.Microsecond {
		t.Fatalf("first setting = %+v", s[0])
	}
	if s[4].TI != 10*sim.Microsecond || s[4].TD != 200*sim.Microsecond {
		t.Fatalf("last setting = %+v", s[4])
	}
}

func TestFailAndRepairLink(t *testing.T) {
	cl, err := BuildCluster(ClusterConfig{
		Seed: 1, Leaves: 2, Spines: 4, HostsPerLeaf: 2, Bandwidth: 100e9, LB: Themis,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.FailLink(0, 2)
	for _, th := range cl.Themis {
		if !th.Disabled() {
			t.Fatal("FailLink must disable every Themis instance")
		}
	}
	done := false
	cl.Conn(0, 2).Send(500_000, func() { done = true })
	cl.Run(sim.Second)
	if !done {
		t.Fatal("transfer incomplete under failure")
	}
	cl.RepairLink(0, 2)
	for _, th := range cl.Themis {
		if th.Disabled() {
			t.Fatal("RepairLink must re-enable Themis")
		}
	}
}

func TestOverlappingFailuresRepairedOutOfOrder(t *testing.T) {
	cl, err := BuildCluster(ClusterConfig{
		Seed: 1, Leaves: 2, Spines: 4, HostsPerLeaf: 2, Bandwidth: 100e9, LB: Themis,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two overlapping failures on different leaves.
	cl.FailLink(0, 2)
	cl.FailLink(1, 3)
	if cl.FailedLinks() != 2 {
		t.Fatalf("outstanding failures = %d", cl.FailedLinks())
	}
	// Repair them in the opposite order of a LIFO assumption: the first
	// failure first. One link is still down, so Themis must stay disabled.
	cl.RepairLink(0, 2)
	if cl.FailedLinks() != 1 {
		t.Fatalf("outstanding failures = %d", cl.FailedLinks())
	}
	for _, th := range cl.Themis {
		if !th.Disabled() {
			t.Fatal("Themis re-enabled while a failure is outstanding")
		}
	}
	done := false
	cl.Conn(0, 2).Send(500_000, func() { done = true })
	cl.Run(sim.Second)
	if !done {
		t.Fatal("transfer incomplete under the remaining failure")
	}
	cl.RepairLink(1, 3)
	if cl.FailedLinks() != 0 {
		t.Fatalf("outstanding failures = %d", cl.FailedLinks())
	}
	for _, th := range cl.Themis {
		if th.Disabled() {
			t.Fatal("Themis not re-enabled after the last repair")
		}
	}
}

func TestLossyControlPlaneStillCompletes(t *testing.T) {
	cl, err := BuildCluster(ClusterConfig{
		Seed: 7, Leaves: 2, Spines: 4, HostsPerLeaf: 2, Bandwidth: 100e9,
		LB: Themis, LossyControl: true,
		RTO: 200 * sim.Microsecond, RTOBackoff: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drop 1% of control packets (deterministic stride, engine-independent).
	ctrlSeen := 0
	cl.Net.SetLossFunc(func(pkt *packet.Packet, sw, port int) bool {
		if !pkt.Kind.IsControl() {
			return false
		}
		ctrlSeen++
		return ctrlSeen%100 == 0
	})
	remaining := 0
	for _, f := range [][2]packet.NodeID{{0, 2}, {1, 3}, {2, 0}, {3, 1}} {
		remaining++
		cl.Conn(f[0], f[1]).Send(1<<20, func() { remaining-- })
	}
	cl.Run(10 * sim.Second)
	cl.Engine.RunAll()
	if remaining != 0 {
		t.Fatalf("%d transfers incomplete under control-plane loss", remaining)
	}
	if cl.Net.Counters().CtrlDrops == 0 {
		t.Fatal("no control packets dropped — regime mis-tuned")
	}
	// Themis-D classification must stay consistent under lost NACKs: every
	// compensation corresponds to a previously blocked NACK.
	st := cl.ThemisStats()
	if st.Compensations > st.NacksBlocked {
		t.Fatalf("compensations %d > blocked NACKs %d", st.Compensations, st.NacksBlocked)
	}
	if st.NacksSeen != st.NacksForwarded+st.NacksBlocked {
		t.Fatalf("NACK classification leak: seen %d, fwd %d, blocked %d",
			st.NacksSeen, st.NacksForwarded, st.NacksBlocked)
	}
}

func TestClusterTracing(t *testing.T) {
	tr := trace.New(4096)
	cl, err := BuildCluster(ClusterConfig{
		Seed: 1, Leaves: 2, Spines: 4, HostsPerLeaf: 2, Bandwidth: 100e9,
		LB: Themis, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	cl.Conn(0, 2).Send(200_000, func() { done = true })
	cl.Run(sim.Second)
	if !done {
		t.Fatal("incomplete")
	}
	if tr.Total() == 0 {
		t.Fatal("no events traced")
	}
	injected := tr.Filter(func(e trace.Event) bool { return e.Op == trace.HostTx })
	delivered := tr.Filter(func(e trace.Event) bool { return e.Op == trace.Deliver })
	sprayed := tr.Filter(func(e trace.Event) bool { return e.Op == trace.Spray })
	if len(injected) == 0 || len(delivered) == 0 || len(sprayed) == 0 {
		t.Fatalf("missing trace classes: inj=%d del=%d spray=%d", len(injected), len(delivered), len(sprayed))
	}
	// Events must be time-ordered.
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].T < evs[i-1].T {
			t.Fatal("trace out of order")
		}
	}
}

func TestRunIncastLossless(t *testing.T) {
	res, err := RunIncast(IncastConfig{Seed: 2, Senders: 8, MessageBytes: 1 << 20, LB: Themis})
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops != 0 {
		t.Fatalf("PFC incast dropped %d", res.Drops)
	}
	if res.CCT <= 0 {
		t.Fatal("no CCT")
	}
	// 8 MB through a 100 Gbps bottleneck. The run is one big DCQCN
	// transient at the default (900,4) knobs — deep synchronized cuts with
	// slow recovery — so goodput sits well below line; the invariant worth
	// asserting is losslessness plus plausible bounds.
	if res.GoodputGbps <= 1 || res.GoodputGbps > 100 {
		t.Fatalf("goodput = %.1f Gbps", res.GoodputGbps)
	}
	if res.Sender.Timeouts != 0 {
		t.Fatalf("timeouts = %d", res.Sender.Timeouts)
	}
}

func TestRunIncastLossyVsLossless(t *testing.T) {
	// With a shallow buffer and a long feedback loop, only PFC prevents the
	// pre-CNP burst from overflowing.
	base := IncastConfig{
		Seed: 2, Senders: 12, MessageBytes: 1 << 20, LB: Themis,
		BufferBytes: 4 << 20, LinkDelay: 5 * sim.Microsecond,
	}
	lossless, err := RunIncast(base)
	if err != nil {
		t.Fatal(err)
	}
	lossyCfg := base
	lossyCfg.DisablePFC = true
	lossy, err := RunIncast(lossyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if lossless.Drops != 0 {
		t.Fatalf("lossless dropped %d", lossless.Drops)
	}
	if lossy.Drops == 0 {
		t.Fatal("lossy fabric did not drop — regime mis-tuned")
	}
	if lossy.CCT <= lossless.CCT {
		t.Fatalf("lossy %v <= lossless %v", lossy.CCT, lossless.CCT)
	}
}
