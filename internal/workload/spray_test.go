package workload

import (
	"testing"

	"themis/internal/sim"
)

// normalizeEngine strips the allocator counters that legitimately vary with
// partitioning: free-list locality (allocs/reuses) and per-shard queue depth
// are properties of how the event set is cut across engines, not of the
// simulated system. EventsExecuted and EventsCancelled ARE part of the
// contract and stay.
func normalizeEngine(m sim.Metrics) sim.Metrics {
	m.EventAllocs, m.EventReuses, m.HeapHighWater = 0, 0, 0
	return m
}

// The spray determinism contract: the entire result — completion times,
// counters, executed-event totals — is identical for every shard count.
func TestSprayShardInvariance(t *testing.T) {
	for _, lbm := range []LBMode{ECMP, RandomSpray} {
		base := SprayConfig{
			Seed:         7,
			FatTreeK:     4,
			MessageBytes: 64 << 10,
			LB:           lbm,
		}
		base.Shards = 1
		ref, err := RunSpray(base)
		if err != nil {
			t.Fatalf("%v shards=1: %v", lbm, err)
		}
		if ref.CCT == 0 || ref.Net.Delivered == 0 {
			t.Fatalf("%v: degenerate reference run: %+v", lbm, ref)
		}
		for _, shards := range []int{2, 4, 8} {
			cfg := base
			cfg.Shards = shards
			got, err := RunSpray(cfg)
			if err != nil {
				t.Fatalf("%v shards=%d: %v", lbm, shards, err)
			}
			if got.CCT != ref.CCT || got.End != ref.End {
				t.Fatalf("%v shards=%d: CCT/End %v/%v, want %v/%v", lbm, shards, got.CCT, got.End, ref.CCT, ref.End)
			}
			for h := range ref.Complete {
				if got.Complete[h] != ref.Complete[h] {
					t.Fatalf("%v shards=%d: host %d completed at %v, want %v", lbm, shards, h, got.Complete[h], ref.Complete[h])
				}
			}
			if got.Sender != ref.Sender {
				t.Fatalf("%v shards=%d: sender stats %+v, want %+v", lbm, shards, got.Sender, ref.Sender)
			}
			if got.Net != ref.Net {
				t.Fatalf("%v shards=%d: net counters %+v, want %+v", lbm, shards, got.Net, ref.Net)
			}
			if normalizeEngine(got.Engine) != normalizeEngine(ref.Engine) {
				t.Fatalf("%v shards=%d: engine metrics %+v, want %+v", lbm, shards, got.Engine, ref.Engine)
			}
		}
	}
}

func TestSprayCompletes(t *testing.T) {
	res, err := RunSpray(SprayConfig{Seed: 1, FatTreeK: 4, MessageBytes: 32 << 10, LB: RandomSpray, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for h, at := range res.Complete {
		if at == 0 || at > res.CCT {
			t.Fatalf("host %d completion %v outside (0, CCT=%v]", h, at, res.CCT)
		}
	}
	if res.Net.DataDrops != 0 {
		t.Fatalf("lossless fabric dropped %d data packets", res.Net.DataDrops)
	}
}

func TestSprayRejectsThemisLB(t *testing.T) {
	if _, err := RunSpray(SprayConfig{Seed: 1, LB: Themis}); err == nil {
		t.Fatal("Themis LB accepted on the sharded spray path")
	}
}

// BenchmarkShardScaling measures the space-parallel engine on a K=8 fat-tree
// permutation (128 hosts, 80 switches) at 1 vs 4 shards. Wall-clock speedup
// requires free CPUs; on a single-CPU host this primarily measures
// coordination overhead (see PERF.md for recorded numbers).
func BenchmarkShardScaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "shards=1", 2: "shards=2", 4: "shards=4"}[shards], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunSpray(SprayConfig{
					Seed:         11,
					FatTreeK:     8,
					MessageBytes: 128 << 10,
					LB:           RandomSpray,
					Shards:       shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.CCT == 0 {
					b.Fatal("empty run")
				}
			}
		})
	}
}
