package obs

import (
	"encoding/json"
	"testing"
)

func TestCountersSharedByName(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("themis.nacks")
	b := r.Counter("themis.nacks")
	if a != b {
		t.Fatal("same name should yield the same counter instance")
	}
	a.Inc()
	b.Add(2)
	if got := a.Value(); got != 3 {
		t.Fatalf("shared counter value: got %d want 3", got)
	}
}

func TestGaugesAreAdditive(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("fabric.drops", func() float64 { return 2 })
	r.GaugeFunc("fabric.drops", func() float64 { return 5 })
	s := r.Snapshot()
	if v, ok := s.Lookup("fabric.drops"); !ok || v != 7 {
		t.Fatalf("additive gauge: got %v,%v want 7,true", v, ok)
	}
}

func TestGaugesPullAtSnapshotTime(t *testing.T) {
	r := NewRegistry()
	n := 0.0
	r.GaugeFunc("live", func() float64 { return n })
	n = 41
	if v, _ := r.Snapshot().Lookup("live"); v != 41 {
		t.Fatalf("gauge should be read at snapshot time: got %v", v)
	}
	n = 42
	if v, _ := r.Snapshot().Lookup("live"); v != 42 {
		t.Fatalf("gauge should be re-read per snapshot: got %v", v)
	}
}

func TestHistogramDigest(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("want 1 histogram, got %d", len(s.Histograms))
	}
	hv := s.Histograms[0]
	if hv.Count != 100 || hv.Max != 100 {
		t.Fatalf("digest: %+v", hv)
	}
	if hv.P50 < 49 || hv.P50 > 51 || hv.P99 < 98 {
		t.Fatalf("percentiles off: %+v", hv)
	}
}

func TestSnapshotSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("z").Inc()
	r.Counter("a").Inc()
	r.GaugeFunc("m", func() float64 { return 1 })
	r.GaugeFunc("b", func() float64 { return 1 })
	r.Histogram("y").Observe(1)
	r.Histogram("c").Observe(1)
	first, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("snapshot JSON not stable:\n%s\n%s", first, second)
	}
	s := r.Snapshot()
	if s.Counters[0].Name != "a" || s.Gauges[0].Name != "b" || s.Histograms[0].Name != "c" {
		t.Fatalf("snapshot not sorted: %+v", s)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	r.GaugeFunc("g", func() float64 { return 1 })
	h := r.Histogram("h")
	h.Observe(1)
	if h.Count() != 0 {
		t.Fatal("nil histogram should count 0")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	var s *Snapshot
	if _, ok := s.Lookup("x"); ok {
		t.Fatal("nil snapshot lookup should miss")
	}
}

func TestDisabledInstrumentsAllocateNothing(t *testing.T) {
	var r *Registry
	c := r.Counter("off")
	h := r.Histogram("off")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		h.Observe(1.5)
	})
	if allocs != 0 {
		t.Fatalf("disabled metrics path allocates: %v allocs/op", allocs)
	}
}
