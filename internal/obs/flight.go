package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"themis/internal/trace"
)

// DefaultFlightCapacity is the ring size a flight recorder uses when the
// caller does not choose one: large enough to hold the full event history of
// the harness's small scenarios, small enough (a few MB) to keep one per
// parallel trial.
const DefaultFlightCapacity = 1 << 16

// FlightRecorder couples a bounded trace ring with a dump directory: the
// simulation records into the ring for free (it is an ordinary tracer), and
// when an invariant trips, a trial errors or a panic unwinds, Dump flushes
// the retained window to disk as a schema-v1 JSONL artifact. Every red run
// thereby ships its own repro evidence; `themis-sim inspect` reconstructs
// the offending flow's timeline from the file.
//
// A nil *FlightRecorder is inert: Tracer() returns nil (zero recording cost,
// per the tracer's nil convention) and Dump is a no-op.
type FlightRecorder struct {
	tracer *trace.Tracer
	dir    string
}

// NewFlightRecorder creates a recorder ringing the last capacity events
// (DefaultFlightCapacity when capacity <= 0) and dumping into dir.
func NewFlightRecorder(dir string, capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{tracer: trace.New(capacity), dir: dir}
}

// Tracer returns the recording ring; install it as the cluster's tracer.
// Nil-safe (nil recorder -> nil tracer -> zero-cost recording).
func (f *FlightRecorder) Tracer() *trace.Tracer {
	if f == nil {
		return nil
	}
	return f.tracer
}

// Dump writes the retained events as <dir>/flight-<label>.jsonl and returns
// the path. The label is sanitized for use as a file name. Safe on nil
// (returns "" and no error) so callers can dump unconditionally.
func (f *FlightRecorder) Dump(label string, seed int64, violations []string) (string, error) {
	if f == nil {
		return "", nil
	}
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(f.dir, FlightFileName(label))
	d := NewDump(label, seed, f.tracer, violations)
	tmp, err := os.CreateTemp(f.dir, ".flight-*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())
	if err := WriteJSONL(tmp, d); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	// Rename-into-place so a concurrently tailing reader never sees a
	// half-written dump.
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	return path, nil
}

// FlightFileName derives the dump file name for a run label:
// "flight-<sanitized label>.jsonl".
func FlightFileName(label string) string {
	s := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, label)
	if s == "" {
		s = "unnamed"
	}
	return "flight-" + s + ".jsonl"
}

// DumpError formats a dump failure for surfacing next to the original
// violation without masking it.
func DumpError(err error) string {
	return fmt.Sprintf("flight recorder dump failed: %v", err)
}
