package obs_test

import (
	"fmt"
	"testing"

	"themis/internal/obs"
	"themis/internal/packet"
	"themis/internal/sim"
	"themis/internal/trace"
	"themis/internal/workload"
)

// TestTimelineInvariantsOverSeeds is the executable form of the paper's §3
// correctness argument: for 50 seeds of a smoke-shaped Themis scenario,
// reconstruct every flow's per-PSN timeline from a full (unevicted) trace
// and assert the ledger invariants — every dropped data PSN is eventually
// retransmitted and delivered, no sent PSN is missing a delivery at FCT, and
// no compensation fires without a prior blocked NACK for the same ePSN. Odd
// seeds inject periodic data drops so the recovery clause is exercised, not
// vacuous.
func TestTimelineInvariantsOverSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("50-seed soak")
	}
	for seed := int64(1); seed <= 50; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := workload.ClusterConfig{
				Seed: seed, Leaves: 2, Spines: 2, HostsPerLeaf: 2, Bandwidth: 100e9,
				LB:     workload.Themis,
				Tracer: trace.New(1 << 20),
			}
			if seed%2 == 1 {
				cfg.DropEveryNData = 97
			}
			cl, err := workload.BuildCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			const flows = 4
			done := 0
			for i := 0; i < flows; i++ {
				cl.Conn(packet.NodeID(i), packet.NodeID((i+2)%4)).Send(256<<10, func() { done++ })
			}
			cl.Run(sim.Second)
			if done != flows {
				t.Fatalf("scenario incomplete: %d/%d flows", done, flows)
			}
			tr := cfg.Tracer
			if tr.Total() != uint64(tr.Len()) {
				t.Fatalf("ring evicted %d events; the check needs the full trace",
					tr.Total()-uint64(tr.Len()))
			}
			evs := tr.Events()
			qps := obs.QPs(evs)
			if len(qps) != flows {
				t.Fatalf("trace covers %d QPs, want %d", len(qps), flows)
			}
			for _, qp := range qps {
				tl := obs.FlowTimeline(evs, qp)
				for _, v := range tl.CheckInvariants() {
					t.Errorf("qp %d: %s", qp, v)
				}
			}
		})
	}
}
