package obs

import (
	"strings"
	"testing"

	"themis/internal/packet"
	"themis/internal/sim"
	"themis/internal/trace"
)

func simTime(t int64) sim.Time { return sim.Time(t) }

func ev(t int64, op trace.Op, kind packet.Kind, qp packet.QPID, psn uint32) trace.Event {
	return trace.Event{T: simTime(t), Op: op, Sw: 0, Port: 0, Kind: kind, QP: qp, PSN: packet.NewPSN(psn), Src: 0, Dst: 4}
}

func TestFlowTimelineJoinsPerPSN(t *testing.T) {
	events := []trace.Event{
		ev(0, trace.HostTx, packet.Data, 1, 0),
		ev(1, trace.HostTx, packet.Data, 1, 1),
		ev(2, trace.HostTx, packet.Data, 2, 0), // other flow
		{T: simTime(3), Op: trace.FaultLinkDown, Sw: 0, Port: 1},
		ev(4, trace.Deliver, packet.Data, 1, 0),
		ev(5, trace.Deliver, packet.Data, 1, 1),
	}
	tl := FlowTimeline(events, 1)
	if len(tl.Events) != 4 {
		t.Fatalf("flow events: got %d want 4 (other-QP and fault events excluded)", len(tl.Events))
	}
	if len(tl.Entries) != 2 {
		t.Fatalf("PSN entries: got %d want 2", len(tl.Entries))
	}
	if tl.Entries[0].PSN.Uint32() != 0 || tl.Entries[1].PSN.Uint32() != 1 {
		t.Fatalf("entries not in first-appearance order: %v, %v", tl.Entries[0].PSN, tl.Entries[1].PSN)
	}
	if e := tl.Entry(packet.NewPSN(1)); e == nil || len(e.Events) != 2 {
		t.Fatalf("psn 1 ledger wrong: %+v", e)
	}
	if tl.Entry(packet.NewPSN(9)) != nil {
		t.Fatal("unseen PSN should have no entry")
	}
}

func TestQPsHelper(t *testing.T) {
	events := []trace.Event{
		ev(0, trace.HostTx, packet.Data, 3, 0),
		ev(1, trace.HostTx, packet.Data, 1, 0),
		{T: simTime(2), Op: trace.FaultReset, Sw: 1, Port: -1}, // QP field is zero; must not appear
		ev(3, trace.HostTx, packet.Data, 3, 1),
	}
	qps := QPs(events)
	if len(qps) != 2 || qps[0] != 1 || qps[1] != 3 {
		t.Fatalf("QPs: got %v want [1 3]", qps)
	}
}

func TestInvariantsCleanFlow(t *testing.T) {
	// Drop of PSN 1, then a NACK verdict, retransmit, and delivery: ledger closes.
	events := []trace.Event{
		ev(0, trace.HostTx, packet.Data, 1, 0),
		ev(1, trace.HostTx, packet.Data, 1, 1),
		ev(2, trace.Deliver, packet.Data, 1, 0),
		ev(3, trace.Drop, packet.Data, 1, 1),
		ev(4, trace.NackBlocked, packet.Nack, 1, 1),
		ev(5, trace.Compensate, packet.Nack, 1, 1),
		ev(6, trace.HostTx, packet.Data, 1, 1),
		ev(7, trace.Deliver, packet.Data, 1, 1),
	}
	tl := FlowTimeline(events, 1)
	if v := tl.CheckInvariants(); len(v) != 0 {
		t.Fatalf("clean flow should pass, got violations: %v", v)
	}
}

func TestInvariantDropNeverRecovered(t *testing.T) {
	events := []trace.Event{
		ev(0, trace.HostTx, packet.Data, 1, 0),
		ev(1, trace.Drop, packet.Data, 1, 0),
	}
	v := FlowTimeline(events, 1).CheckInvariants()
	if len(v) != 1 || !strings.Contains(v[0], "never recovered") {
		t.Fatalf("want one never-recovered violation, got %v", v)
	}

	// Retransmit without delivery is still a violation.
	events = append(events, ev(2, trace.HostTx, packet.Data, 1, 0))
	v = FlowTimeline(events, 1).CheckInvariants()
	if len(v) != 1 || !strings.Contains(v[0], "never recovered") {
		t.Fatalf("retransmit without deliver should still violate, got %v", v)
	}

	// Delivery closes the ledger.
	events = append(events, ev(3, trace.Deliver, packet.Data, 1, 0))
	if v := FlowTimeline(events, 1).CheckInvariants(); len(v) != 0 {
		t.Fatalf("recovered drop should pass, got %v", v)
	}
}

func TestInvariantDeliverGap(t *testing.T) {
	events := []trace.Event{
		ev(0, trace.HostTx, packet.Data, 1, 0),
		ev(1, trace.HostTx, packet.Data, 1, 1),
		ev(2, trace.Deliver, packet.Data, 1, 1),
	}
	v := FlowTimeline(events, 1).CheckInvariants()
	if len(v) != 1 || !strings.Contains(v[0], "deliver-gap") {
		t.Fatalf("want one deliver-gap violation, got %v", v)
	}
}

func TestInvariantCompensateWithoutBlock(t *testing.T) {
	events := []trace.Event{
		ev(0, trace.HostTx, packet.Data, 1, 0),
		ev(1, trace.Drop, packet.Data, 1, 0),
		ev(2, trace.Compensate, packet.Nack, 1, 0),
		ev(3, trace.HostTx, packet.Data, 1, 0),
		ev(4, trace.Deliver, packet.Data, 1, 0),
	}
	tl := FlowTimeline(events, 1)
	v := tl.CheckInvariants()
	if len(v) != 1 || !strings.Contains(v[0], "without a prior blocked NACK") {
		t.Fatalf("want one compensation-provenance violation, got %v", v)
	}

	// On a truncated dump the blocked NACK may have been evicted: skip check 3.
	tl.Truncated = true
	if v := tl.CheckInvariants(); len(v) != 0 {
		t.Fatalf("truncated timeline should skip compensation check, got %v", v)
	}
}

func TestTimelineFromDumpPropagatesTruncation(t *testing.T) {
	tr := trace.New(2)
	for _, e := range []trace.Event{
		ev(0, trace.HostTx, packet.Data, 1, 0),
		ev(1, trace.Compensate, packet.Nack, 1, 0),
		ev(2, trace.HostTx, packet.Data, 1, 0),
		ev(3, trace.Deliver, packet.Data, 1, 0),
	} {
		tr.Record(e)
	}
	d := NewDump("trunc", 0, tr, nil)
	tl := TimelineFromDump(d, 1)
	if !tl.Truncated {
		t.Fatal("timeline should inherit dump truncation")
	}
}

func TestExplainNACK(t *testing.T) {
	events := []trace.Event{
		ev(0, trace.HostTx, packet.Data, 1, 5),
		ev(1, trace.Drop, packet.Data, 1, 5),
		ev(2, trace.NackBlocked, packet.Nack, 1, 5),
		ev(3, trace.Compensate, packet.Nack, 1, 5),
		ev(4, trace.HostTx, packet.Data, 1, 5),
		ev(5, trace.Deliver, packet.Data, 1, 5),
	}
	tl := FlowTimeline(events, 1)
	got := tl.ExplainNACK(packet.NewPSN(5))
	for _, want := range []string{"BLOCKED", "COMPENSATION", "dropped", "delivered"} {
		if !strings.Contains(got, want) {
			t.Errorf("ExplainNACK missing %q:\n%s", want, got)
		}
	}
	if got := tl.ExplainNACK(packet.NewPSN(99)); !strings.Contains(got, "no recorded events") {
		t.Errorf("unseen PSN: %s", got)
	}
	forwarded := FlowTimeline([]trace.Event{ev(0, trace.NackForwarded, packet.Nack, 1, 2)}, 1)
	if got := forwarded.ExplainNACK(packet.NewPSN(2)); !strings.Contains(got, "FORWARDED") {
		t.Errorf("forwarded verdict missing:\n%s", got)
	}
	if got := tl.ExplainNACK(packet.NewPSN(5)); strings.Contains(got, "no Themis-D verdict") {
		t.Errorf("flow with verdicts should not print the no-verdict note")
	}
}

func TestTimelineFormat(t *testing.T) {
	events := []trace.Event{
		ev(0, trace.HostTx, packet.Data, 1, 0),
		ev(1, trace.Deliver, packet.Data, 1, 0),
	}
	var b strings.Builder
	if err := FlowTimeline(events, 1).Format(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "flow qp=1: 2 events over 1 PSNs") || !strings.Contains(out, "psn 0:") {
		t.Fatalf("format output:\n%s", out)
	}
}
