package obs

import (
	"bytes"
	"testing"

	"themis/internal/packet"
	"themis/internal/sim"
	"themis/internal/trace"
)

// FuzzTraceRoundTrip builds an arbitrary event stream from the fuzz input,
// exports it, re-imports it and exports again: the two serializations must be
// byte-identical (the acceptance bar for the schema — report diffing and
// golden files depend on it). Op bytes beyond the defined range exercise the
// "Op(N)" fallback of String/ParseOp.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add("smoke/seed1", int64(1), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add("chaos seed 7", int64(7), []byte{0xff, 0xee, 0xdd, 0xcc})
	f.Add("", int64(-1), []byte{})
	f.Fuzz(func(t *testing.T, label string, seed int64, data []byte) {
		tr := trace.New(64)
		var now sim.Time
		for i := 0; i+4 <= len(data); i += 4 {
			b := data[i : i+4]
			now += sim.Time(b[0]) // monotone, arbitrary gaps
			tr.Record(trace.Event{
				T:    now,
				Op:   trace.Op(b[1] % 16), // 13..15 are out of range on purpose
				Sw:   int(b[2]%8) - 1,
				Port: int(b[3]%8) - 1,
				Kind: packet.Kind(b[1] % 3),
				QP:   packet.QPID(b[2]),
				PSN:  packet.NewPSN(uint32(b[3])<<8 | uint32(b[0])),
				Src:  packet.NodeID(b[0] % 16),
				Dst:  packet.NodeID(b[1] % 16),
			})
		}
		d := NewDump(label, seed, tr, nil)
		var first bytes.Buffer
		if err := WriteJSONL(&first, d); err != nil {
			t.Fatalf("export: %v", err)
		}
		got, err := ReadJSONL(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("import of our own export: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := WriteJSONL(&second, got); err != nil {
			t.Fatalf("re-export: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round trip not byte-identical:\n--- first\n%s--- second\n%s",
				first.Bytes(), second.Bytes())
		}
	})
}
