package obs

import (
	"bytes"
	"strings"
	"testing"

	"themis/internal/packet"
	"themis/internal/sim"
	"themis/internal/trace"
)

func sampleEvents() []trace.Event {
	return []trace.Event{
		{T: 0, Op: trace.HostTx, Sw: -1, Port: -1, Kind: packet.Data, QP: 1, PSN: packet.NewPSN(0), Src: 0, Dst: 4},
		{T: 1000, Op: trace.Spray, Sw: 0, Port: 2, Kind: packet.Data, QP: 1, PSN: packet.NewPSN(0), Src: 0, Dst: 4},
		{T: 2000, Op: trace.Drop, Sw: 2, Port: 1, Kind: packet.Data, QP: 1, PSN: packet.NewPSN(0), Src: 0, Dst: 4},
		{T: 3000, Op: trace.NackBlocked, Sw: 1, Port: -1, Kind: packet.Nack, QP: 1, PSN: packet.NewPSN(0), Src: 4, Dst: 0},
		{T: 4000, Op: trace.FaultLinkDown, Sw: 0, Port: 3},
		{T: 5000, Op: trace.Deliver, Sw: -1, Port: -1, Kind: packet.Data, QP: 1, PSN: packet.NewPSN(0), Src: 0, Dst: 4},
	}
}

func sampleDump() *Dump {
	tr := trace.New(64)
	for _, ev := range sampleEvents() {
		tr.Record(ev)
	}
	return NewDump("unit", 42, tr, []string{"example violation"})
}

func TestJSONLRoundTripByteIdentical(t *testing.T) {
	d := sampleDump()
	var first bytes.Buffer
	if err := WriteJSONL(&first, d); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadJSONL(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	var second bytes.Buffer
	if err := WriteJSONL(&second, back); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("round trip not byte-identical:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
	}
	if back.Label != d.Label || back.Seed != d.Seed || back.Total != d.Total {
		t.Fatalf("metadata changed: got %+v want %+v", back, d)
	}
	if len(back.Events) != len(d.Events) {
		t.Fatalf("event count changed: got %d want %d", len(back.Events), len(d.Events))
	}
	for i := range back.Events {
		if back.Events[i] != d.Events[i] {
			t.Fatalf("event %d changed: got %+v want %+v", i, back.Events[i], d.Events[i])
		}
	}
}

func TestJSONLHeaderFirstLine(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleDump()); err != nil {
		t.Fatal(err)
	}
	firstLine, _, _ := strings.Cut(buf.String(), "\n")
	if !strings.HasPrefix(firstLine, `{"schema":"themis-trace","version":1,`) {
		t.Fatalf("unexpected header line: %s", firstLine)
	}
}

func TestTruncatedReflectsEviction(t *testing.T) {
	tr := trace.New(4)
	for i := 0; i < 10; i++ {
		tr.Record(trace.Event{T: sim.Time(i), Op: trace.HostTx, Sw: -1, Port: -1, QP: 1})
	}
	d := NewDump("trunc", 0, tr, nil)
	if !d.Truncated() {
		t.Fatalf("dump of overflowed ring should be truncated (total=%d retained=%d)", d.Total, len(d.Events))
	}
	if sampleDump().Truncated() {
		t.Fatal("dump of non-overflowed ring should not be truncated")
	}
}

func TestNewDumpNilTracer(t *testing.T) {
	d := NewDump("nil", 7, nil, nil)
	if d.Total != 0 || len(d.Events) != 0 || d.Truncated() {
		t.Fatalf("nil-tracer dump should be empty: %+v", d)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, d); err != nil {
		t.Fatalf("write empty dump: %v", err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("read empty dump: %v", err)
	}
	if len(back.Events) != 0 || back.Label != "nil" || back.Seed != 7 {
		t.Fatalf("empty dump changed: %+v", back)
	}
}

func TestReadJSONLRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"not json":   "hello world\n",
		"wrong name": `{"schema":"other","version":1,"label":"","seed":0,"total":0,"retained":0}` + "\n",
		"wrong vsn":  `{"schema":"themis-trace","version":2,"label":"","seed":0,"total":0,"retained":0}` + "\n",
		"bad event":  `{"schema":"themis-trace","version":1,"label":"","seed":0,"total":1,"retained":1}` + "\nnope\n",
		"unknown op": `{"schema":"themis-trace","version":1,"label":"","seed":0,"total":1,"retained":1}` + "\n" + `{"t":0,"op":"warp","sw":0,"port":0,"kind":0,"qp":0,"psn":0,"src":0,"dst":0}` + "\n",
	}
	for name, in := range cases {
		if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error, got none", name)
		}
	}
}

func TestReadJSONLUnterminatedLastLine(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleDump()); err != nil {
		t.Fatal(err)
	}
	clipped := strings.TrimSuffix(buf.String(), "\n")
	back, err := ReadJSONL(strings.NewReader(clipped))
	if err != nil {
		t.Fatalf("unterminated last line should parse: %v", err)
	}
	if len(back.Events) != len(sampleEvents()) {
		t.Fatalf("lost events on unterminated input: got %d want %d", len(back.Events), len(sampleEvents()))
	}
}
