package obs

import (
	"sort"

	"themis/internal/stats"
)

// Registry is a per-trial metrics registry. Components register instruments
// by name at construction time; the harness snapshots the registry into the
// trial record after the run. The registry is deliberately pull-oriented:
// gauge callbacks read the counter blocks components already maintain, so
// enabling metrics adds no per-event work to the simulation hot path at all —
// values are materialized once, at Snapshot time.
//
// All methods are nil-safe: a nil *Registry returns nil instruments (whose
// methods are also nil-safe no-ops), so instrumented code carries no guards
// and disabled metrics cost one predictable branch per observation.
//
// The registry is not safe for concurrent use; like the packet pool, each
// parallel trial owns its own instance.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string][]func() float64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string][]func() float64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Instances
// asking for the same name share one counter (e.g. every NIC incrementing
// "rnic.messages"). Nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// GaugeFunc registers a gauge callback under name. Gauges are additive:
// multiple callbacks under one name (e.g. one per ToR) are summed at
// Snapshot time, which is how per-instance counter blocks aggregate to
// cluster-wide metrics without any hot-path cost. No-op on nil.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.gauges[name] = append(r.gauges[name], fn)
}

// Histogram returns the named histogram, creating it on first use; same
// sharing semantics as Counter. Nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{name: name}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing metric.
type Counter struct {
	name string
	v    uint64
}

// Inc adds one. Safe on nil.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n. Safe on nil.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Histogram accumulates samples and digests them into percentiles at
// Snapshot time (via stats.Percentile).
type Histogram struct {
	name    string
	samples []float64
}

// Observe records one sample. Safe on nil.
func (h *Histogram) Observe(v float64) {
	if h != nil {
		h.samples = append(h.samples, v)
	}
}

// Count returns the number of samples observed (0 on nil).
func (h *Histogram) Count() int {
	if h == nil {
		return 0
	}
	return len(h.samples)
}

// MetricValue is one named scalar in a snapshot.
type MetricValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramValue is one digested histogram in a snapshot.
type HistogramValue struct {
	Name  string  `json:"name"`
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Snapshot is the materialized state of a registry: every instrument,
// sorted by name, with gauge callbacks evaluated and histograms digested.
// Fixed field order and sorted names keep the JSON form byte-identical for
// identical runs (the report artifacts depend on this).
type Snapshot struct {
	Counters   []MetricValue    `json:"counters,omitempty"`
	Gauges     []MetricValue    `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot materializes the registry. Nil registry yields nil.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{}
	// Map iteration order is irrelevant here: the slices are sorted by name
	// before the snapshot is returned.
	for _, c := range r.counters { //lint:ordered snapshot slices are sorted by name before return
		s.Counters = append(s.Counters, MetricValue{Name: c.name, Value: float64(c.v)})
	}
	for name, fns := range r.gauges { //lint:ordered snapshot slices are sorted by name before return
		sum := 0.0
		for _, fn := range fns {
			sum += fn()
		}
		s.Gauges = append(s.Gauges, MetricValue{Name: name, Value: sum})
	}
	for _, h := range r.hists { //lint:ordered snapshot slices are sorted by name before return
		hv := HistogramValue{Name: h.name, Count: len(h.samples)}
		if len(h.samples) > 0 {
			hv.Mean = stats.Mean(h.samples)
			hv.P50 = stats.Percentile(h.samples, 50)
			hv.P90 = stats.Percentile(h.samples, 90)
			hv.P99 = stats.Percentile(h.samples, 99)
			hv.Max = stats.Percentile(h.samples, 100)
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Lookup returns the snapshot value of a named counter or gauge (gauges take
// precedence), with ok reporting whether the name exists. Convenience for
// tests and tools; nil-safe.
func (s *Snapshot) Lookup(name string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}
