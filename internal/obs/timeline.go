package obs

import (
	"fmt"
	"io"
	"sort"

	"themis/internal/packet"
	"themis/internal/trace"
)

// Timeline is one flow's reconstructed history: every traced event of a QP,
// joined into an ordered per-PSN ledger. NACK-family events (NackBlocked,
// NackForwarded, Compensate) carry the ePSN in their PSN field, so they land
// in the ledger entry of the packet whose fate they decide — which is exactly
// the join needed to answer "why was this NACK blocked?".
type Timeline struct {
	QP packet.QPID
	// Entries holds one ledger per PSN, in order of first appearance
	// (events arrive oldest-first, so this is time order).
	Entries []*PSNLedger
	// Events are all packet events of the flow, oldest first.
	Events []trace.Event
	// Truncated records that the source ring evicted events before the dump
	// was taken; invariant checks that need the evicted prefix are skipped.
	Truncated bool

	byPSN map[uint32]*PSNLedger
}

// PSNLedger is the ordered event history of one sequence number.
type PSNLedger struct {
	PSN    packet.PSN
	Events []trace.Event
}

// FlowTimeline reconstructs the timeline of qp from a trace event stream
// (oldest first, as Tracer.Events returns). Fault events carry no flow
// fields and are excluded.
func FlowTimeline(events []trace.Event, qp packet.QPID) *Timeline {
	tl := &Timeline{QP: qp, byPSN: make(map[uint32]*PSNLedger)}
	for _, ev := range events {
		if ev.Op.IsFault() || ev.QP != qp {
			continue
		}
		tl.Events = append(tl.Events, ev)
		key := ev.PSN.Uint32()
		entry, ok := tl.byPSN[key]
		if !ok {
			entry = &PSNLedger{PSN: ev.PSN}
			tl.byPSN[key] = entry
			tl.Entries = append(tl.Entries, entry)
		}
		entry.Events = append(entry.Events, ev)
	}
	return tl
}

// TimelineFromDump reconstructs qp's timeline from an imported dump,
// propagating the dump's truncation state into the invariant checks.
func TimelineFromDump(d *Dump, qp packet.QPID) *Timeline {
	tl := FlowTimeline(d.Events, qp)
	tl.Truncated = d.Truncated()
	return tl
}

// Entry returns the ledger of one PSN (nil when the flow never saw it).
func (tl *Timeline) Entry(psn packet.PSN) *PSNLedger {
	return tl.byPSN[psn.Uint32()]
}

// QPs returns the distinct flows present in an event stream, ascending.
func QPs(events []trace.Event) []packet.QPID {
	seen := make(map[packet.QPID]bool)
	var out []packet.QPID
	for _, ev := range events {
		if ev.Op.IsFault() || seen[ev.QP] {
			continue
		}
		seen[ev.QP] = true
		out = append(out, ev.QP)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CheckInvariants audits the flow's loss-recovery ledger — the executable
// form of the paper's §3 correctness argument. It returns human-readable
// violations (empty slice = ledger closed):
//
//  1. Recovery: every Drop of a data PSN is eventually followed by a
//     retransmission (HostTx) and a Deliver of that PSN. A dropped packet
//     that is never redelivered means the NACK/RTO recovery machinery lost
//     track of it.
//  2. No Deliver-gap: every data PSN the host ever transmitted is delivered
//     at least once by the end of the trace — the flow cannot have completed
//     (cumulative ACK) around a hole.
//  3. Compensation provenance: every Compensate was preceded by a
//     NackBlocked for the same ePSN — Themis-D may only synthesize a NACK
//     to stand in for one it previously suppressed (§3.4).
//
// Checks 1 and 2 are sound even on a truncated ring: eviction removes the
// oldest events, so an event in the window retains everything after it.
// Check 3 needs the evicted prefix (the NackBlocked precedes the
// Compensate) and is skipped when the timeline is truncated.
func (tl *Timeline) CheckInvariants() []string {
	var v []string
	for _, entry := range tl.Entries {
		v = append(v, entry.checkRecovery(tl.QP)...)
		if !tl.Truncated {
			v = append(v, entry.checkCompensation(tl.QP)...)
		}
	}
	return v
}

// checkRecovery enforces invariants 1 and 2 on one ledger entry.
func (e *PSNLedger) checkRecovery(qp packet.QPID) []string {
	var v []string
	// Invariant 1: after the last data Drop there must be a HostTx
	// (the retransmission) and then a Deliver.
	lastDrop := -1
	for i, ev := range e.Events {
		if ev.Op == trace.Drop && ev.Kind == packet.Data {
			lastDrop = i
		}
	}
	if lastDrop >= 0 {
		retx, delivered := false, false
		for _, ev := range e.Events[lastDrop+1:] {
			if ev.Kind != packet.Data {
				continue
			}
			switch ev.Op {
			case trace.HostTx:
				retx = true
			case trace.Deliver:
				if retx {
					delivered = true
				}
			}
		}
		if !delivered {
			v = append(v, fmt.Sprintf("qp %d psn %d: data drop at %v never recovered (no retransmit+deliver after it)",
				qp, e.PSN, e.Events[lastDrop].T))
		}
		return v
	}
	// Invariant 2: a transmitted data PSN that was never dropped must have
	// been delivered. (A dropped one is covered by invariant 1.)
	sent, delivered := false, false
	for _, ev := range e.Events {
		if ev.Kind != packet.Data {
			continue
		}
		switch ev.Op {
		case trace.HostTx:
			sent = true
		case trace.Deliver:
			delivered = true
		}
	}
	if sent && !delivered {
		v = append(v, fmt.Sprintf("qp %d psn %d: transmitted but never delivered (deliver-gap)", qp, e.PSN))
	}
	return v
}

// checkCompensation enforces invariant 3 on one ledger entry.
func (e *PSNLedger) checkCompensation(qp packet.QPID) []string {
	var v []string
	blocked := false
	for _, ev := range e.Events {
		switch ev.Op {
		case trace.NackBlocked:
			blocked = true
		case trace.Compensate:
			if !blocked {
				v = append(v, fmt.Sprintf("qp %d psn %d: compensation at %v without a prior blocked NACK for this ePSN",
					qp, e.PSN, ev.T))
			}
		}
	}
	return v
}

// ExplainNACK narrates the verdict history of one ePSN: which NACKs
// Themis-D saw for it, what it decided, and how the decision resolved.
// This is the "why was this NACK blocked?" answer, rendered from the ledger.
func (tl *Timeline) ExplainNACK(psn packet.PSN) string {
	entry := tl.Entry(psn)
	if entry == nil {
		return fmt.Sprintf("qp %d psn %d: no recorded events\n", tl.QP, psn)
	}
	out := fmt.Sprintf("qp %d psn %d verdict history:\n", tl.QP, psn)
	verdicts := 0
	for _, ev := range entry.Events {
		switch ev.Op {
		case trace.NackBlocked:
			verdicts++
			out += fmt.Sprintf("  %12.3fus NACK(ePSN=%d) BLOCKED at sw%d: tPSN-ePSN not a multiple of N (Eq. 3) — arrival reordered, not lost\n",
				ev.T.Microseconds(), psn, ev.Sw)
		case trace.NackForwarded:
			verdicts++
			out += fmt.Sprintf("  %12.3fus NACK(ePSN=%d) FORWARDED at sw%d: same-path successor seen — genuine loss signal\n",
				ev.T.Microseconds(), psn, ev.Sw)
		case trace.Compensate:
			verdicts++
			out += fmt.Sprintf("  %12.3fus COMPENSATION generated at sw%d: a later same-path packet arrived, so the blocked NACK stood for a real loss (§3.4)\n",
				ev.T.Microseconds(), ev.Sw)
		case trace.Drop:
			out += fmt.Sprintf("  %12.3fus %s dropped at sw%d\n", ev.T.Microseconds(), ev.Kind, ev.Sw)
		case trace.Deliver:
			if ev.Kind == packet.Data {
				out += fmt.Sprintf("  %12.3fus data PSN %d delivered\n", ev.T.Microseconds(), psn)
			}
		}
	}
	if verdicts == 0 {
		out += "  (no Themis-D verdict recorded for this PSN)\n"
	}
	return out
}

// Format writes the full per-PSN ledger, one section per sequence number in
// first-appearance order — the human-readable companion of the JSONL dump.
func (tl *Timeline) Format(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "flow qp=%d: %d events over %d PSNs\n", tl.QP, len(tl.Events), len(tl.Entries)); err != nil {
		return err
	}
	for _, entry := range tl.Entries {
		if _, err := fmt.Fprintf(w, "psn %d:\n", entry.PSN); err != nil {
			return err
		}
		for _, ev := range entry.Events {
			if _, err := fmt.Fprintf(w, "  %s\n", ev); err != nil {
				return err
			}
		}
	}
	return nil
}
