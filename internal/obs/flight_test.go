package obs

import (
	"os"
	"path/filepath"
	"testing"

	"themis/internal/trace"
)

func TestFlightRecorderDumpAndReload(t *testing.T) {
	dir := t.TempDir()
	fr := NewFlightRecorder(dir, 128)
	for _, ev := range sampleEvents() {
		fr.Tracer().Record(ev)
	}
	path, err := fr.Dump("smoke/seed 3", 3, []string{"boom"})
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	if filepath.Base(path) != "flight-smoke_seed_3.jsonl" {
		t.Fatalf("unexpected dump name: %s", path)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open dump: %v", err)
	}
	defer f.Close()
	d, err := ReadJSONL(f)
	if err != nil {
		t.Fatalf("reload dump: %v", err)
	}
	if d.Label != "smoke/seed 3" || d.Seed != 3 {
		t.Fatalf("metadata lost: %+v", d)
	}
	if len(d.Violations) != 1 || d.Violations[0] != "boom" {
		t.Fatalf("violations lost: %v", d.Violations)
	}
	if len(d.Events) != len(sampleEvents()) {
		t.Fatalf("events lost: got %d want %d", len(d.Events), len(sampleEvents()))
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dump dir should hold exactly the dump, got %d entries", len(entries))
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	if fr.Tracer() != nil {
		t.Fatal("nil recorder should expose a nil tracer")
	}
	fr.Tracer().Record(trace.Event{}) // must not panic
	path, err := fr.Dump("x", 0, nil)
	if err != nil || path != "" {
		t.Fatalf("nil recorder dump: got %q, %v", path, err)
	}
}

func TestFlightRecorderDefaultCapacity(t *testing.T) {
	fr := NewFlightRecorder(t.TempDir(), 0)
	for i := 0; i < DefaultFlightCapacity+5; i++ {
		fr.Tracer().Record(trace.Event{Op: trace.HostTx})
	}
	if got := fr.Tracer().Len(); got != DefaultFlightCapacity {
		t.Fatalf("default capacity: retained %d want %d", got, DefaultFlightCapacity)
	}
}

func TestFlightFileName(t *testing.T) {
	cases := map[string]string{
		"smoke":    "flight-smoke.jsonl",
		"a b/c:d":  "flight-a_b_c_d.jsonl",
		"":         "flight-unnamed.jsonl",
		"ok-1_2.x": "flight-ok-1_2.x.jsonl",
	}
	for in, want := range cases {
		if got := FlightFileName(in); got != want {
			t.Errorf("FlightFileName(%q) = %q, want %q", in, got, want)
		}
	}
}
