// Package obs is the observability layer of the simulator: structured trace
// export, post-mortem flight recording, per-flow timeline reconstruction and
// a metrics registry.
//
// The package sits directly on top of internal/trace. The tracer stays the
// single recording primitive — a bounded, allocation-free ring that is
// zero-cost when nil — and obs adds the machinery that turns a ring of raw
// events into evidence:
//
//   - jsonl.go: a versioned, round-trippable JSONL serialization of a trace
//     dump (schema v1), replacing the ad-hoc text Dump format for anything a
//     tool needs to re-read.
//   - flight.go: a FlightRecorder that invariant checkers and the experiment
//     runner flush to disk the moment a trial fails, so a red run ships its
//     own reproduction evidence.
//   - timeline.go: per-flow, per-PSN ledger reconstruction — the structure
//     that answers "why was this NACK blocked?" and carries the executable
//     form of the paper's §3 correctness argument (ledger invariants).
//   - metrics.go: named counters, gauges and histograms registered by the
//     fabric, the RNICs and the Themis middleware, snapshotted into every
//     experiment trial.
//
// Everything here follows the tracer's nil-object convention: a nil
// *Registry, *FlightRecorder, *Counter or *Histogram is safe to use and
// free, so instrumented code needs no guards and the hot path stays
// zero-alloc when observability is disabled.
package obs
