package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"themis/internal/packet"
	"themis/internal/sim"
	"themis/internal/trace"
)

// SchemaVersion is the JSONL trace schema version this package writes.
// Version history:
//
//	v1 — header line {"schema":"themis-trace","version":1,...} followed by
//	     one event object per line. Times are integer picoseconds; ops are
//	     the trace.Op mnemonics.
const SchemaVersion = 1

// schemaName identifies the artifact kind in the header line.
const schemaName = "themis-trace"

// Dump is one exported trace: identifying metadata plus the retained events.
// It is the round-trippable unit — WriteJSONL(ReadJSONL(x)) reproduces x
// byte-for-byte, which FuzzTraceRoundTrip verifies.
type Dump struct {
	// Label identifies the run (scenario label, chaos seed, ...).
	Label string
	// Seed is the run's RNG seed, for replay.
	Seed int64
	// Total is the number of events ever recorded by the source tracer;
	// when Total > len(Events) the ring evicted the oldest events and the
	// dump is a suffix of the run, not the whole story.
	Total uint64
	// Violations carries the invariant violations (if any) that triggered
	// the dump.
	Violations []string
	// Events are the retained events, oldest first.
	Events []trace.Event
}

// Truncated reports whether the source ring evicted events before the dump
// was taken; ledger invariant checks on a truncated dump are best-effort.
func (d *Dump) Truncated() bool { return d.Total > uint64(len(d.Events)) }

// NewDump snapshots a tracer into a dump. Safe on a nil tracer (empty dump).
func NewDump(label string, seed int64, tr *trace.Tracer, violations []string) *Dump {
	return &Dump{
		Label:      label,
		Seed:       seed,
		Total:      tr.Total(),
		Violations: violations,
		Events:     tr.Events(),
	}
}

// headerJSON is the first line of a v1 dump. Fixed field order — the struct
// is the schema.
type headerJSON struct {
	Schema     string   `json:"schema"`
	Version    int      `json:"version"`
	Label      string   `json:"label"`
	Seed       int64    `json:"seed"`
	Total      uint64   `json:"total"`
	Retained   int      `json:"retained"`
	Violations []string `json:"violations,omitempty"`
}

// eventJSON is one event line of a v1 dump. Fixed field order; times are
// integer picoseconds so no float formatting can perturb a round trip.
type eventJSON struct {
	T    int64  `json:"t"`
	Op   string `json:"op"`
	Sw   int    `json:"sw"`
	Port int    `json:"port"`
	Kind uint8  `json:"kind"`
	QP   int32  `json:"qp"`
	PSN  uint32 `json:"psn"`
	Src  int32  `json:"src"`
	Dst  int32  `json:"dst"`
}

// WriteJSONL serializes the dump in schema v1: a header line followed by one
// compact JSON object per event.
func WriteJSONL(w io.Writer, d *Dump) error {
	bw := bufio.NewWriter(w)
	hdr := headerJSON{
		Schema:     schemaName,
		Version:    SchemaVersion,
		Label:      canonical(d.Label),
		Seed:       d.Seed,
		Total:      d.Total,
		Retained:   len(d.Events),
		Violations: canonicalAll(d.Violations),
	}
	if err := writeLine(bw, hdr); err != nil {
		return err
	}
	for _, ev := range d.Events {
		ej := eventJSON{
			T:    int64(ev.T),
			Op:   ev.Op.String(),
			Sw:   ev.Sw,
			Port: ev.Port,
			Kind: uint8(ev.Kind),
			QP:   int32(ev.QP),
			PSN:  ev.PSN.Uint32(),
			Src:  int32(ev.Src),
			Dst:  int32(ev.Dst),
		}
		if err := writeLine(bw, ej); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// canonical replaces invalid UTF-8 with the replacement rune before
// marshaling. encoding/json renders invalid bytes as the escape sequence
// � but writes an input U+FFFD raw, so without this normalization a
// label containing invalid UTF-8 would serialize differently before and
// after a round trip, breaking the byte-identity guarantee (found by
// FuzzTraceRoundTrip).
func canonical(s string) string { return strings.ToValidUTF8(s, "�") }

func canonicalAll(ss []string) []string {
	for i, s := range ss {
		if c := canonical(s); c != s {
			ss[i] = c
		}
	}
	return ss
}

func writeLine(w *bufio.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// ReadJSONL parses a schema v1 dump. It rejects unknown schema names and
// versions loudly — the versioned header exists precisely so that a future
// v2 can change the line format without silently misreading old artifacts.
func ReadJSONL(r io.Reader) (*Dump, error) {
	br := bufio.NewReader(r)
	line, err := readLine(br)
	if err != nil {
		return nil, fmt.Errorf("obs: reading dump header: %w", err)
	}
	var hdr headerJSON
	if err := json.Unmarshal(line, &hdr); err != nil {
		return nil, fmt.Errorf("obs: parsing dump header: %w", err)
	}
	if hdr.Schema != schemaName {
		return nil, fmt.Errorf("obs: not a trace dump (schema %q)", hdr.Schema)
	}
	if hdr.Version != SchemaVersion {
		return nil, fmt.Errorf("obs: unsupported trace schema version %d (have %d)", hdr.Version, SchemaVersion)
	}
	d := &Dump{
		Label:      hdr.Label,
		Seed:       hdr.Seed,
		Total:      hdr.Total,
		Violations: hdr.Violations,
	}
	for lineNo := 2; ; lineNo++ {
		line, err := readLine(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("obs: reading dump line %d: %w", lineNo, err)
		}
		var ej eventJSON
		if err := json.Unmarshal(line, &ej); err != nil {
			return nil, fmt.Errorf("obs: parsing dump line %d: %w", lineNo, err)
		}
		op, ok := trace.ParseOp(ej.Op)
		if !ok {
			return nil, fmt.Errorf("obs: dump line %d: unknown op %q", lineNo, ej.Op)
		}
		d.Events = append(d.Events, trace.Event{
			T:    sim.Time(ej.T),
			Op:   op,
			Sw:   ej.Sw,
			Port: ej.Port,
			Kind: packet.Kind(ej.Kind),
			QP:   packet.QPID(ej.QP),
			PSN:  packet.NewPSN(ej.PSN),
			Src:  packet.NodeID(ej.Src),
			Dst:  packet.NodeID(ej.Dst),
		})
	}
	return d, nil
}

// readLine reads one newline-terminated line of any length. A final unter-
// minated line is returned with its content; a clean EOF returns io.EOF.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	if len(line) == 0 && err != nil {
		return nil, err
	}
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	return line, nil
}
