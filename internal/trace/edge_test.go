package trace

import (
	"strings"
	"testing"

	"themis/internal/packet"
	"themis/internal/sim"
)

// TestWraparoundAtExactCapacity pins the boundary between "ring filling" and
// "ring evicting": recording exactly capacity events retains all of them in
// order with no eviction, and one more event evicts exactly the oldest.
func TestWraparoundAtExactCapacity(t *testing.T) {
	const cap = 8
	tr := New(cap)
	for i := 0; i < cap; i++ {
		tr.Record(ev(sim.Time(i), SwEnq, packet.PSN(i)))
	}
	if tr.Len() != cap || tr.Total() != cap {
		t.Fatalf("at capacity: len=%d total=%d", tr.Len(), tr.Total())
	}
	evs := tr.Events()
	for i, e := range evs {
		if e.PSN != packet.PSN(i) {
			t.Fatalf("event %d: psn=%d, ring reordered at exact capacity", i, e.PSN)
		}
	}
	tr.Record(ev(sim.Time(cap), SwEnq, packet.PSN(cap)))
	evs = tr.Events()
	if tr.Len() != cap || tr.Total() != cap+1 {
		t.Fatalf("past capacity: len=%d total=%d", tr.Len(), tr.Total())
	}
	if evs[0].PSN != 1 || evs[cap-1].PSN != cap {
		t.Fatalf("eviction window wrong: first=%d last=%d", evs[0].PSN, evs[cap-1].PSN)
	}
}

// TestQueriesOnEmptyTracer: a constructed-but-unused tracer answers every
// query with an empty (nil) result rather than zero-valued events.
func TestQueriesOnEmptyTracer(t *testing.T) {
	tr := New(4)
	if got := tr.Events(); len(got) != 0 {
		t.Fatalf("Events on empty tracer = %v", got)
	}
	if got := tr.Filter(func(Event) bool { return true }); got != nil {
		t.Fatalf("Filter on empty tracer = %v", got)
	}
	if got := tr.ByQP(0); got != nil {
		t.Fatalf("ByQP on empty tracer = %v", got)
	}
	if got := tr.ByOp(Drop); got != nil {
		t.Fatalf("ByOp on empty tracer = %v", got)
	}
	var sb strings.Builder
	if err := tr.Dump(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("Dump on empty tracer wrote %q (err %v)", sb.String(), err)
	}
}

// TestNilTracerEveryMethod exercises the full method set on a nil receiver —
// the convention every recording call site relies on instead of guards.
func TestNilTracerEveryMethod(t *testing.T) {
	var tr *Tracer
	tr.Record(ev(0, HostTx, 0))
	tr.RecordPacket(0, Drop, 0, 0, &packet.Packet{})
	tr.RecordFault(0, FaultReset, 0, -1)
	if tr.Len() != 0 {
		t.Fatal("nil Len")
	}
	if tr.Total() != 0 {
		t.Fatal("nil Total")
	}
	if tr.Events() != nil {
		t.Fatal("nil Events")
	}
	if tr.Filter(func(Event) bool { return true }) != nil {
		t.Fatal("nil Filter")
	}
	if tr.ByQP(1) != nil {
		t.Fatal("nil ByQP")
	}
	if tr.ByOp(Drop) != nil {
		t.Fatal("nil ByOp")
	}
	var sb strings.Builder
	if err := tr.Dump(&sb); err != nil || sb.Len() != 0 {
		t.Fatal("nil Dump")
	}
	if s := tr.Summary(); !strings.Contains(s, "0 events") {
		t.Fatalf("nil Summary = %q", s)
	}
}

// TestOpStringExhaustive iterates the whole Op space via Ops(): every defined
// op must have a real mnemonic (not the "Op(N)" fallback), mnemonics must be
// unique, and ParseOp must invert String for defined and undefined ops alike.
func TestOpStringExhaustive(t *testing.T) {
	ops := Ops()
	if len(ops) != int(lastOp) {
		t.Fatalf("Ops() returned %d ops, lastOp = %d", len(ops), lastOp)
	}
	seen := make(map[string]Op, len(ops))
	for _, op := range ops {
		s := op.String()
		if strings.HasPrefix(s, "Op(") {
			t.Errorf("op %d has no mnemonic (add a String case)", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("ops %d and %d share mnemonic %q", prev, op, s)
		}
		seen[s] = op
		got, ok := ParseOp(s)
		if !ok || got != op {
			t.Errorf("ParseOp(%q) = (%d, %t), want (%d, true)", s, got, ok, op)
		}
	}
	// The fallback form round-trips too (the JSONL importer depends on it).
	if got, ok := ParseOp(Op(200).String()); !ok || got != Op(200) {
		t.Fatalf("fallback form did not round-trip: got %d, %t", got, ok)
	}
	if _, ok := ParseOp("no-such-op"); ok {
		t.Fatal("ParseOp accepted garbage")
	}
}
