package trace

import (
	"strings"
	"testing"

	"themis/internal/packet"
	"themis/internal/sim"
)

func ev(t sim.Time, op Op, psn packet.PSN) Event {
	return Event{T: t, Op: op, Sw: 1, Port: 2, Kind: packet.Data, QP: 3, PSN: psn, Src: 0, Dst: 4}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(ev(0, HostTx, 0))
	tr.RecordPacket(0, Drop, 0, 0, &packet.Packet{})
	if tr.Len() != 0 || tr.Total() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer misbehaved")
	}
}

func TestRecordAndEvents(t *testing.T) {
	tr := New(8)
	for i := 0; i < 5; i++ {
		tr.Record(ev(sim.Time(i), SwEnq, packet.PSN(i)))
	}
	evs := tr.Events()
	if len(evs) != 5 || tr.Total() != 5 {
		t.Fatalf("len=%d total=%d", len(evs), tr.Total())
	}
	for i, e := range evs {
		if e.PSN != packet.PSN(i) {
			t.Fatal("order broken")
		}
	}
}

func TestEviction(t *testing.T) {
	tr := New(3)
	for i := 0; i < 10; i++ {
		tr.Record(ev(sim.Time(i), SwEnq, packet.PSN(i)))
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].PSN != 7 || evs[2].PSN != 9 {
		t.Fatalf("retained = %v", evs)
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
}

func TestMinCapacity(t *testing.T) {
	tr := New(0)
	tr.Record(ev(0, Drop, 1))
	tr.Record(ev(1, Drop, 2))
	if tr.Len() != 1 || tr.Events()[0].PSN != 2 {
		t.Fatal("min capacity ring broken")
	}
}

func TestFilterAndByQP(t *testing.T) {
	tr := New(16)
	tr.Record(Event{Op: Drop, QP: 1, PSN: 10})
	tr.Record(Event{Op: Mark, QP: 2, PSN: 20})
	tr.Record(Event{Op: Drop, QP: 1, PSN: 30})
	drops := tr.Filter(func(e Event) bool { return e.Op == Drop })
	if len(drops) != 2 {
		t.Fatalf("drops = %d", len(drops))
	}
	qp1 := tr.ByQP(1)
	if len(qp1) != 2 || qp1[0].PSN != 10 || qp1[1].PSN != 30 {
		t.Fatalf("qp1 = %v", qp1)
	}
}

func TestEventString(t *testing.T) {
	e := ev(sim.Time(1500*sim.Nanosecond), NackBlocked, 7)
	s := e.String()
	for _, want := range []string{"1.500us", "nack-blocked", "sw1.2", "DATA", "qp=3", "psn=7", "0->4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("%q missing %q", s, want)
		}
	}
	host := Event{Op: HostTx, Sw: -1, Port: -1}
	if !strings.Contains(host.String(), "host") {
		t.Fatal("host event location")
	}
}

func TestOpStrings(t *testing.T) {
	ops := map[Op]string{
		HostTx: "host-tx", SwEnq: "sw-enq", SwTx: "sw-tx", Mark: "mark",
		Drop: "drop", Deliver: "deliver", NackBlocked: "nack-blocked",
		NackForwarded: "nack-fwd", Compensate: "compensate", Spray: "spray",
		FaultLinkDown: "fault-down", FaultLinkUp: "fault-up", FaultReset: "fault-reset",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d = %q want %q", op, op.String(), want)
		}
	}
	if Op(99).String() != "Op(99)" {
		t.Fatal("unknown op")
	}
}

func TestByOpAndFaultEvents(t *testing.T) {
	tr := New(16)
	tr.Record(Event{Op: NackBlocked, QP: 1, PSN: 10})
	tr.RecordFault(sim.Time(2*sim.Microsecond), FaultLinkDown, 3, 4)
	tr.RecordFault(sim.Time(5*sim.Microsecond), FaultLinkUp, 3, 4)
	tr.Record(Event{Op: NackBlocked, QP: 2, PSN: 20})
	blocked := tr.ByOp(NackBlocked)
	if len(blocked) != 2 || blocked[0].PSN != 10 || blocked[1].PSN != 20 {
		t.Fatalf("blocked = %v", blocked)
	}
	downs := tr.ByOp(FaultLinkDown)
	if len(downs) != 1 || downs[0].Sw != 3 || downs[0].Port != 4 {
		t.Fatalf("downs = %v", downs)
	}
	// Fault events render without packet fields.
	s := downs[0].String()
	if !strings.Contains(s, "fault-down") || !strings.Contains(s, "sw3.4") || strings.Contains(s, "qp=") {
		t.Fatalf("fault event render = %q", s)
	}
	// Nil safety.
	var nilTr *Tracer
	nilTr.RecordFault(0, FaultReset, 0, -1)
	if nilTr.ByOp(FaultReset) != nil {
		t.Fatal("nil tracer ByOp")
	}
}

func TestDumpAndSummary(t *testing.T) {
	tr := New(4)
	tr.Record(ev(0, Drop, 1))
	tr.Record(ev(1, Mark, 2))
	var sb strings.Builder
	if err := tr.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\n"); got != 2 {
		t.Fatalf("dump lines = %d", got)
	}
	sum := tr.Summary()
	if !strings.Contains(sum, "drop") || !strings.Contains(sum, "mark") || !strings.Contains(sum, "2 events") {
		t.Fatalf("summary = %q", sum)
	}
}
