// Package trace records simulation events into a bounded in-memory ring for
// debugging and for the packet-level walkthroughs in the examples. Recording
// is zero-cost when no tracer is installed (a nil *Tracer is safe to call).
//
// Events capture the life of a packet through the fabric — injection,
// switch hops, queueing decisions, ECN marks, drops — and the Themis
// middleware's verdicts (blocked / forwarded / compensated), which is
// exactly the evidence one needs to audit a NACK classification after the
// fact.
package trace

import (
	"fmt"
	"io"
	"strings"

	"themis/internal/packet"
	"themis/internal/sim"
)

// Op enumerates traced operations.
type Op uint8

const (
	// HostTx: a host injected a packet into its access link.
	HostTx Op = iota
	// SwEnq: a switch queued a packet on an egress port.
	SwEnq
	// SwTx: a packet started serializing out of a port.
	SwTx
	// Mark: a packet got CE-marked.
	Mark
	// Drop: a packet was dropped (buffer, loss injection or dead link).
	Drop
	// Deliver: a packet reached its destination host.
	Deliver
	// NackBlocked: Themis-D blocked an invalid NACK.
	NackBlocked
	// NackForwarded: Themis-D validated and forwarded a NACK.
	NackForwarded
	// Compensate: Themis-D generated a compensation NACK.
	Compensate
	// Spray: Themis-S steered a data packet.
	Spray
	// FaultLinkDown: a fault injector (or operator) took a link down.
	FaultLinkDown
	// FaultLinkUp: a downed link was repaired.
	FaultLinkUp
	// FaultReset: a ToR middleware lost its state (simulated reboot).
	FaultReset

	// lastOp marks the end of the Op space for iteration; keep it after the
	// final real op.
	lastOp
)

// String returns the op mnemonic.
func (o Op) String() string {
	switch o {
	case HostTx:
		return "host-tx"
	case SwEnq:
		return "sw-enq"
	case SwTx:
		return "sw-tx"
	case Mark:
		return "mark"
	case Drop:
		return "drop"
	case Deliver:
		return "deliver"
	case NackBlocked:
		return "nack-blocked"
	case NackForwarded:
		return "nack-fwd"
	case Compensate:
		return "compensate"
	case Spray:
		return "spray"
	case FaultLinkDown:
		return "fault-down"
	case FaultLinkUp:
		return "fault-up"
	case FaultReset:
		return "fault-reset"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// IsFault reports whether the op is a fault event (no packet fields).
func (o Op) IsFault() bool { return o >= FaultLinkDown && o < lastOp }

// ParseOp is the inverse of Op.String: it resolves a mnemonic (or the
// "Op(N)" fallback form String produces for out-of-range values) back to the
// Op. The JSONL trace importer relies on ParseOp(op.String()) == op holding
// for every possible Op byte, which FuzzTraceRoundTrip exercises.
func ParseOp(s string) (Op, bool) {
	for op := HostTx; op < lastOp; op++ {
		if s == op.String() {
			return op, true
		}
	}
	var n uint8
	if _, err := fmt.Sscanf(s, "Op(%d)", &n); err == nil && fmt.Sprintf("Op(%d)", n) == s {
		return Op(n), true
	}
	return 0, false
}

// Ops returns every defined operation, in declaration order — the iteration
// surface for exhaustiveness checks and per-op summaries.
func Ops() []Op {
	out := make([]Op, 0, int(lastOp))
	for op := HostTx; op < lastOp; op++ {
		out = append(out, op)
	}
	return out
}

// Event is one recorded occurrence. Packet fields are copied, not
// referenced, so events stay valid after the packet is recycled.
type Event struct {
	T    sim.Time
	Op   Op
	Sw   int // switch involved, -1 for host-side events
	Port int // port involved, -1 when not applicable
	Kind packet.Kind
	QP   packet.QPID
	PSN  packet.PSN
	Src  packet.NodeID
	Dst  packet.NodeID
}

// String renders one line of trace output.
func (e Event) String() string {
	loc := "host"
	if e.Sw >= 0 {
		if e.Port >= 0 {
			loc = fmt.Sprintf("sw%d.%d", e.Sw, e.Port)
		} else {
			loc = fmt.Sprintf("sw%d", e.Sw)
		}
	}
	if e.Op.IsFault() {
		// Fault events carry no packet fields.
		return fmt.Sprintf("%12.3fus %-12s %-8s", e.T.Microseconds(), e.Op, loc)
	}
	return fmt.Sprintf("%12.3fus %-12s %-8s %s qp=%d psn=%d %d->%d",
		e.T.Microseconds(), e.Op, loc, e.Kind, e.QP, e.PSN, e.Src, e.Dst)
}

// Tracer is a fixed-capacity ring of events. The zero value is unusable;
// construct with New. A nil Tracer ignores Record calls, so call sites need
// no guards.
type Tracer struct {
	events []Event
	head   int
	size   int
	total  uint64
}

// New returns a tracer retaining the last capacity events.
func New(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{events: make([]Event, capacity)}
}

// Record appends an event, evicting the oldest when full. Safe on nil.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	t.total++
	if t.size < len(t.events) {
		t.events[(t.head+t.size)%len(t.events)] = ev
		t.size++
		return
	}
	t.events[t.head] = ev
	t.head = (t.head + 1) % len(t.events)
}

// RecordPacket is a convenience wrapper copying packet fields. Safe on nil.
func (t *Tracer) RecordPacket(now sim.Time, op Op, sw, port int, p *packet.Packet) {
	if t == nil {
		return
	}
	t.Record(Event{
		T: now, Op: op, Sw: sw, Port: port,
		Kind: p.Kind, QP: p.QP, PSN: p.PSN, Src: p.Src, Dst: p.Dst,
	})
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.size
}

// Total returns the number of events ever recorded (including evicted).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, t.size)
	for i := 0; i < t.size; i++ {
		out[i] = t.events[(t.head+i)%len(t.events)]
	}
	return out
}

// Filter returns retained events satisfying keep, oldest-first.
func (t *Tracer) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, ev := range t.Events() {
		if keep(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// ByQP returns the retained events of one QP, oldest-first.
func (t *Tracer) ByQP(qp packet.QPID) []Event {
	return t.Filter(func(e Event) bool { return e.QP == qp })
}

// ByOp returns the retained events with a given verdict/op, oldest-first —
// the post-hoc audit trail for one class of decisions (e.g. every blocked
// NACK, or every injected fault).
func (t *Tracer) ByOp(op Op) []Event {
	return t.Filter(func(e Event) bool { return e.Op == op })
}

// RecordFault is a convenience wrapper for non-packet fault events (link
// state changes, middleware state resets). Safe on nil.
func (t *Tracer) RecordFault(now sim.Time, op Op, sw, port int) {
	if t == nil {
		return
	}
	t.Record(Event{T: now, Op: op, Sw: sw, Port: port})
}

// Dump writes the retained events, one per line.
func (t *Tracer) Dump(w io.Writer) error {
	for _, ev := range t.Events() {
		if _, err := fmt.Fprintln(w, ev); err != nil {
			return err
		}
	}
	return nil
}

// Summary counts retained events per op.
func (t *Tracer) Summary() string {
	counts := map[Op]int{}
	for _, ev := range t.Events() {
		counts[ev.Op]++
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events retained (%d total)\n", t.Len(), t.Total())
	for op := HostTx; op < lastOp; op++ {
		if c := counts[op]; c > 0 {
			fmt.Fprintf(&b, "  %-14s %d\n", op, c)
		}
	}
	return b.String()
}
