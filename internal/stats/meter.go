package stats

import "themis/internal/sim"

// RateMeter measures a byte (or event) rate over fixed windows, producing a
// time series of per-window rates. It reproduces the windowed measurements in
// Fig. 1b (retransmission ratio over time) and Fig. 1c (rate over time).
type RateMeter struct {
	window  sim.Duration
	start   sim.Time // start of current window
	current float64  // accumulated in current window
	series  *Series
}

// NewRateMeter returns a meter that closes a window every window duration.
func NewRateMeter(name string, window sim.Duration) *RateMeter {
	if window <= 0 {
		panic("stats: rate meter window must be positive")
	}
	return &RateMeter{window: window, series: NewSeries(name)}
}

// Observe adds amount at time t, closing any windows that have elapsed.
// Observations must be non-decreasing in time.
func (m *RateMeter) Observe(t sim.Time, amount float64) {
	m.advance(t)
	m.current += amount
}

// advance closes windows up to time t. Empty windows emit zero samples so
// idle periods are visible in the series.
func (m *RateMeter) advance(t sim.Time) {
	for t >= m.start.Add(m.window) {
		m.flushWindow()
	}
}

func (m *RateMeter) flushWindow() {
	end := m.start.Add(m.window)
	rate := m.current / m.window.Seconds() // per-second rate
	m.series.Add(m.start, rate)
	m.start = end
	m.current = 0
}

// Finish closes the window containing t (if it has content) and returns the
// series of per-second rates, one sample per window, stamped with the window
// start time.
func (m *RateMeter) Finish(t sim.Time) *Series {
	m.advance(t)
	if m.current != 0 {
		m.flushWindow()
	}
	return m.series
}

// Series returns the samples accumulated so far without closing the current
// window.
func (m *RateMeter) Series() *Series { return m.series }

// Reset discards all accumulated samples and pending window content and
// rewinds the window clock to zero, keeping the name and window size. The
// meter behaves as if freshly constructed (reused across trials).
func (m *RateMeter) Reset() {
	m.start = 0
	m.current = 0
	m.series = NewSeries(m.series.Name)
}

// RatioMeter measures the ratio of two counters (e.g. retransmitted packets /
// total packets) per window.
type RatioMeter struct {
	window     sim.Duration
	start      sim.Time
	num, denom float64
	series     *Series
}

// NewRatioMeter returns a per-window ratio meter.
func NewRatioMeter(name string, window sim.Duration) *RatioMeter {
	if window <= 0 {
		panic("stats: ratio meter window must be positive")
	}
	return &RatioMeter{window: window, series: NewSeries(name)}
}

// Observe adds num/denom contributions at time t.
func (m *RatioMeter) Observe(t sim.Time, num, denom float64) {
	m.advance(t)
	m.num += num
	m.denom += denom
}

func (m *RatioMeter) advance(t sim.Time) {
	for t >= m.start.Add(m.window) {
		m.flushWindow()
	}
}

func (m *RatioMeter) flushWindow() {
	if m.denom > 0 {
		m.series.Add(m.start, m.num/m.denom)
	}
	m.start = m.start.Add(m.window)
	m.num, m.denom = 0, 0
}

// Finish closes the trailing window and returns the series. Windows with a
// zero denominator are skipped (no traffic, no ratio).
func (m *RatioMeter) Finish(t sim.Time) *Series {
	m.advance(t)
	if m.denom > 0 {
		m.flushWindow()
	}
	return m.series
}

// Series returns the samples accumulated so far without closing the current
// window.
func (m *RatioMeter) Series() *Series { return m.series }

// Reset discards accumulated samples and pending contributions and rewinds
// the window clock to zero; see RateMeter.Reset.
func (m *RatioMeter) Reset() {
	m.start = 0
	m.num, m.denom = 0, 0
	m.series = NewSeries(m.series.Name)
}

// Counter is a named monotonically increasing counter.
type Counter struct {
	Name  string
	Value uint64
}

// Inc adds n.
func (c *Counter) Inc(n uint64) { c.Value += n }
