package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"themis/internal/sim"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("x")
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Fatal("empty series stats should be NaN")
	}
	s.Add(0, 1)
	s.Add(10, 3)
	s.Add(20, 2)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Mean() != 2 {
		t.Fatalf("Mean = %g", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 3 {
		t.Fatalf("Min/Max = %g/%g", s.Min(), s.Max())
	}
}

func TestSeriesTimeMean(t *testing.T) {
	s := NewSeries("x")
	s.Add(0, 10) // holds 0..10
	s.Add(10, 0) // holds 10..40
	s.Add(40, 5) // terminal sample: not weighted
	want := (10.0*10 + 0.0*30) / 40
	if got := s.TimeMean(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("TimeMean = %g want %g", got, want)
	}
	// Single sample falls back to mean.
	one := NewSeries("y")
	one.Add(5, 7)
	if one.TimeMean() != 7 {
		t.Fatalf("single-sample TimeMean = %g", one.TimeMean())
	}
	// Zero span falls back to mean.
	z := NewSeries("z")
	z.Add(5, 1)
	z.Add(5, 3)
	if z.TimeMean() != 2 {
		t.Fatalf("zero-span TimeMean = %g", z.TimeMean())
	}
}

func TestSeriesTable(t *testing.T) {
	s := NewSeries("rate")
	s.Add(sim.Time(2*sim.Microsecond), 42)
	out := s.Table()
	if !strings.Contains(out, "# rate") || !strings.Contains(out, "2.000 42") {
		t.Fatalf("Table output:\n%s", out)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	if Percentile(vals, 0) != 1 {
		t.Fatal("p0")
	}
	if Percentile(vals, 100) != 5 {
		t.Fatal("p100")
	}
	if Percentile(vals, 50) != 3 {
		t.Fatalf("p50 = %g", Percentile(vals, 50))
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
	// Input must not be mutated.
	if vals[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean should be NaN")
	}
}

// Property: percentile is always within [min, max] and monotone in p.
func TestPercentileProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := Percentile(vals, pa), Percentile(vals, pb)
		lo, hi := Percentile(vals, 0), Percentile(vals, 100)
		return va <= vb && va >= lo && vb <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRateMeter(t *testing.T) {
	m := NewRateMeter("tx", sim.Microsecond)
	// 1000 bytes in window [0,1us), 500 in [1,2us), nothing in [2,3us),
	// 250 in [3,4us).
	m.Observe(0, 600)
	m.Observe(sim.Time(500*sim.Nanosecond), 400)
	m.Observe(sim.Time(1500*sim.Nanosecond), 500)
	m.Observe(sim.Time(3500*sim.Nanosecond), 250)
	s := m.Finish(sim.Time(4 * sim.Microsecond))
	if s.Len() != 4 {
		t.Fatalf("windows = %d: %+v", s.Len(), s.Samples)
	}
	wantPerSec := []float64{1000 / 1e-6, 500 / 1e-6, 0, 250 / 1e-6}
	for i, w := range wantPerSec {
		if math.Abs(s.Samples[i].V-w) > 1e-6 {
			t.Fatalf("window %d rate = %g want %g", i, s.Samples[i].V, w)
		}
	}
}

func TestRateMeterFinishPartialWindow(t *testing.T) {
	m := NewRateMeter("tx", sim.Microsecond)
	m.Observe(sim.Time(100*sim.Nanosecond), 100)
	s := m.Finish(sim.Time(200 * sim.Nanosecond))
	if s.Len() != 1 {
		t.Fatalf("windows = %d", s.Len())
	}
}

func TestRateMeterZeroWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRateMeter("x", 0)
}

func TestRatioMeter(t *testing.T) {
	m := NewRatioMeter("retrans", sim.Microsecond)
	m.Observe(0, 1, 10)                            // 10% in window 0
	m.Observe(sim.Time(1100*sim.Nanosecond), 2, 4) // 50% in window 1
	// window 2 empty -> skipped
	m.Observe(sim.Time(3200*sim.Nanosecond), 0, 5) // 0% in window 3
	s := m.Finish(sim.Time(4 * sim.Microsecond))
	if s.Len() != 3 {
		t.Fatalf("windows = %d: %+v", s.Len(), s.Samples)
	}
	want := []float64{0.1, 0.5, 0}
	for i, w := range want {
		if math.Abs(s.Samples[i].V-w) > 1e-12 {
			t.Fatalf("window %d ratio = %g want %g", i, s.Samples[i].V, w)
		}
	}
}

func TestRatioMeterZeroWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRatioMeter("x", 0)
}

func TestPercentileSingleton(t *testing.T) {
	one := []float64{42}
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := Percentile(one, p); got != 42 {
			t.Fatalf("p%g of singleton = %g, want 42", p, got)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s != (Summary{}) {
		t.Fatalf("empty Summarize = %+v, want zero value", s)
	}
	// The zero summary is JSON-clean (no NaNs), unlike raw Percentile/Mean.
	if s.Count != 0 || s.Mean != 0 || s.P50 != 0 {
		t.Fatalf("empty summary not zeroed: %+v", s)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	want := Summary{Count: 1, Sum: 7, Mean: 7, Min: 7, Max: 7, P50: 7, P99: 7}
	if s != want {
		t.Fatalf("Summarize([7]) = %+v, want %+v", s, want)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Count != 4 || s.Sum != 10 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("Summarize = %+v", s)
	}
	if s.P50 != 2 || s.P99 != 4 {
		t.Fatalf("percentiles = p50 %g p99 %g", s.P50, s.P99)
	}
}

func TestSummaryMerge(t *testing.T) {
	a := Summarize([]float64{1, 2, 3})
	b := Summarize([]float64{10, 20})
	m := a.Merge(b)
	if m.Count != 5 || m.Sum != 36 || m.Min != 1 || m.Max != 20 {
		t.Fatalf("Merge = %+v", m)
	}
	if math.Abs(m.Mean-36.0/5) > 1e-12 {
		t.Fatalf("Mean = %g", m.Mean)
	}
	// Merging with the empty summary is the identity in either direction —
	// the parallel runner folds trial records starting from the zero value.
	if a.Merge(Summary{}) != a || (Summary{}).Merge(a) != a {
		t.Fatal("merge with zero summary should be identity")
	}
	// Merge is commutative on the exact fields.
	ba := b.Merge(a)
	if ba.Count != m.Count || ba.Sum != m.Sum || ba.Min != m.Min || ba.Max != m.Max {
		t.Fatalf("merge not commutative: %+v vs %+v", ba, m)
	}
}

func TestRateMeterReset(t *testing.T) {
	m := NewRateMeter("tx", sim.Microsecond)
	m.Observe(sim.Time(100*sim.Nanosecond), 100)
	m.Finish(sim.Time(2 * sim.Microsecond))
	m.Reset()
	if m.Series().Len() != 0 {
		t.Fatal("Reset kept samples")
	}
	if m.Series().Name != "tx" {
		t.Fatal("Reset lost the name")
	}
	// The window clock restarted: an observation at t=0 must not panic or
	// land in a stale window, and the pending amount from before Reset is gone.
	m.Observe(0, 50)
	s := m.Finish(sim.Time(sim.Microsecond))
	if s.Len() != 1 || math.Abs(s.Samples[0].V-50/1e-6) > 1e-6 {
		t.Fatalf("post-reset series = %+v", s.Samples)
	}
}

func TestRatioMeterReset(t *testing.T) {
	m := NewRatioMeter("rt", sim.Microsecond)
	m.Observe(0, 1, 2)
	m.Finish(sim.Time(2 * sim.Microsecond))
	m.Reset()
	if m.Series().Len() != 0 {
		t.Fatal("Reset kept samples")
	}
	m.Observe(0, 3, 4)
	s := m.Finish(sim.Time(sim.Microsecond))
	if s.Len() != 1 || math.Abs(s.Samples[0].V-0.75) > 1e-12 {
		t.Fatalf("post-reset series = %+v", s.Samples)
	}
}

func TestCounter(t *testing.T) {
	c := Counter{Name: "drops"}
	c.Inc(3)
	c.Inc(4)
	if c.Value != 7 {
		t.Fatalf("counter = %d", c.Value)
	}
}

// Property: total bytes observed equals the integral of the rate series.
func TestRateMeterConservationProperty(t *testing.T) {
	f := func(amounts []uint16) bool {
		m := NewRateMeter("x", sim.Microsecond)
		var total float64
		t := sim.Time(0)
		for i, a := range amounts {
			t = t.Add(sim.Duration(i%700) * sim.Nanosecond)
			m.Observe(t, float64(a))
			total += float64(a)
		}
		s := m.Finish(t.Add(sim.Microsecond))
		var integral float64
		for _, smp := range s.Samples {
			integral += smp.V * sim.Microsecond.Seconds()
		}
		return math.Abs(integral-total) < 1e-6*(1+total)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
