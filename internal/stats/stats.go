// Package stats provides the measurement primitives used by the experiment
// harness: time series of samples, windowed rate meters, and summary
// statistics (mean/percentiles) for reproducing the paper's time-series
// figures (Fig. 1b, 1c) and scalar results (Fig. 1d, Fig. 5).
package stats

import (
	"fmt"
	"math"
	"sort"

	"themis/internal/sim"
)

// Sample is one (time, value) observation.
type Sample struct {
	T sim.Time
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name    string
	Samples []Sample
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends an observation.
func (s *Series) Add(t sim.Time, v float64) {
	s.Samples = append(s.Samples, Sample{T: t, V: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Samples) }

// Mean returns the arithmetic mean of the sample values (NaN if empty).
func (s *Series) Mean() float64 {
	if len(s.Samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range s.Samples {
		sum += x.V
	}
	return sum / float64(len(s.Samples))
}

// Min returns the minimum sample value (NaN if empty).
func (s *Series) Min() float64 {
	if len(s.Samples) == 0 {
		return math.NaN()
	}
	m := s.Samples[0].V
	for _, x := range s.Samples[1:] {
		if x.V < m {
			m = x.V
		}
	}
	return m
}

// Max returns the maximum sample value (NaN if empty).
func (s *Series) Max() float64 {
	if len(s.Samples) == 0 {
		return math.NaN()
	}
	m := s.Samples[0].V
	for _, x := range s.Samples[1:] {
		if x.V > m {
			m = x.V
		}
	}
	return m
}

// TimeMean returns the time-weighted mean, treating each sample value as
// holding until the next sample. Returns the plain mean when fewer than two
// samples exist.
func (s *Series) TimeMean() float64 {
	if len(s.Samples) < 2 {
		return s.Mean()
	}
	var area, span float64
	for i := 0; i < len(s.Samples)-1; i++ {
		dt := float64(s.Samples[i+1].T - s.Samples[i].T)
		area += s.Samples[i].V * dt
		span += dt
	}
	if span == 0 {
		return s.Mean()
	}
	return area / span
}

// Table renders the series as "t_us value" rows, one per sample, suitable for
// plotting the paper's time-series figures.
func (s *Series) Table() string {
	out := fmt.Sprintf("# %s: time_us value\n", s.Name)
	for _, x := range s.Samples {
		out += fmt.Sprintf("%.3f %.6g\n", x.T.Microseconds(), x.V)
	}
	return out
}

// Percentile returns the p-th percentile (0..100) of values using nearest-rank
// on a sorted copy. NaN if values is empty.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Mean returns the arithmetic mean of values (NaN if empty).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}
