package stats

import "math"

// Summary is the scalar digest of one metric across many observations — the
// form trial records carry so that per-seed results can be aggregated across
// a sweep without retaining every sample. The zero value is an empty summary.
//
// Percentiles are computed at Summarize time from the full sample set; Merge
// combines count/sum/min/max exactly but keeps the percentile fields of the
// receiver only when the other side is empty (exact percentile merge would
// need the samples — callers that need cross-trial percentiles summarize the
// per-trial scalars instead, which is what the paper's figures report).
type Summary struct {
	Count int     `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// Summarize digests values. The empty set yields the zero Summary (all-zero,
// Count 0) rather than NaNs so the result serializes cleanly to JSON.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	s := Summary{
		Count: len(values),
		Min:   values[0],
		Max:   values[0],
		P50:   Percentile(values, 50),
		P99:   Percentile(values, 99),
	}
	for _, v := range values {
		s.Sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = s.Sum / float64(s.Count)
	return s
}

// Merge combines two summaries, as when aggregating per-trial records from
// the parallel runner. Count, Sum, Mean, Min and Max are exact; percentiles
// are taken from whichever side is non-empty (approximate when both are —
// see the type comment).
func (s Summary) Merge(o Summary) Summary {
	switch {
	case s.Count == 0:
		return o
	case o.Count == 0:
		return s
	}
	m := Summary{
		Count: s.Count + o.Count,
		Sum:   s.Sum + o.Sum,
		Min:   math.Min(s.Min, o.Min),
		Max:   math.Max(s.Max, o.Max),
		P50:   s.P50,
		P99:   s.P99,
	}
	m.Mean = m.Sum / float64(m.Count)
	return m
}
