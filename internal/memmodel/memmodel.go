// Package memmodel implements the §4 analytical memory-overhead model of
// Themis (Table 1): the PathMap footprint of Themis-S and the per-QP flow
// table + ring PSN queue footprint of Themis-D, plus the fat-tree worked
// example that yields M_total ≈ 193 KB for a k=32 fat-tree ToR.
package memmodel

import (
	"fmt"
	"math"

	"themis/internal/sim"
)

// Params are the symbols of Table 1.
type Params struct {
	NPaths    int          // N_paths: equal-cost paths between a src/dst pair
	Bandwidth int64        // BW: last-hop bandwidth, bits per second
	RTTLast   sim.Duration // RTT_last: last-hop round-trip time
	NNIC      int          // N_NIC: RNICs per ToR switch
	NQP       int          // N_QP: cross-rack QPs per RNIC
	MTU       int          // MTU size in bytes
	Factor    float64      // F: queue capacity expansion factor
}

// PaperDefaults returns the reference values of Table 1.
func PaperDefaults() Params {
	return Params{
		NPaths:    256,
		Bandwidth: 400e9,
		RTTLast:   2 * sim.Microsecond,
		NNIC:      16,
		NQP:       100,
		MTU:       1500,
		Factor:    1.5,
	}
}

// Flow-table entry layout (§4): 13 B QP ID + 3 B blocked ePSN + 1 B Valid +
// 3 B queue metadata.
const (
	QPIDBytes           = 13
	BlockedEPSNBytes    = 3
	ValidFlagBytes      = 1
	QueueMetaBytes      = 3
	FlowTableEntryBytes = QPIDBytes + BlockedEPSNBytes + ValidFlagBytes + QueueMetaBytes
	// QueueEntryBytes is the truncated PSN stored per ring slot.
	QueueEntryBytes = 1
)

// PathMapBytes is M_PathMap = N_paths × 2 bytes (Themis-S).
func (p Params) PathMapBytes() int { return p.NPaths * 2 }

// QueueEntries is N_entries = ⌈BW × RTT_last × F / MTU⌉.
func (p Params) QueueEntries() int {
	bdpBytes := float64(p.Bandwidth) / 8 * p.RTTLast.Seconds()
	return int(math.Ceil(bdpBytes * p.Factor / float64(p.MTU)))
}

// PerQPBytes is M_QP = 20 bytes + N_entries × 1 byte (Themis-D).
func (p Params) PerQPBytes() int {
	return FlowTableEntryBytes + p.QueueEntries()*QueueEntryBytes
}

// TotalBytes is Eq. 4: M_total = M_PathMap + M_QP × N_QP × N_NIC.
func (p Params) TotalBytes() int {
	return p.PathMapBytes() + p.PerQPBytes()*p.NQP*p.NNIC
}

// FractionOfSRAM returns M_total as a fraction of a switch SRAM size.
func (p Params) FractionOfSRAM(sramBytes int) float64 {
	return float64(p.TotalBytes()) / float64(sramBytes)
}

// Report renders the full §4 calculation as text (the cmd/memcalc output).
func (p Params) Report() string {
	return fmt.Sprintf(`Themis memory overhead model (paper §4, Table 1)
  N_paths = %d   BW = %g Gbps   RTT_last = %v   N_NIC = %d   N_QP = %d   MTU = %d B   F = %g

Themis-S:
  M_PathMap = N_paths x 2 B                = %d B
Themis-D (per QP):
  N_entries = ceil(BW x RTT_last x F / MTU) = %d
  M_QP      = %d B flow-table entry + N_entries x 1 B = %d B
Total (Eq. 4):
  M_total   = M_PathMap + M_QP x N_QP x N_NIC = %d B (%.1f KB)
  fraction of 64 MB switch SRAM             = %.2f%%
`,
		p.NPaths, float64(p.Bandwidth)/1e9, p.RTTLast, p.NNIC, p.NQP, p.MTU, p.Factor,
		p.PathMapBytes(),
		p.QueueEntries(),
		FlowTableEntryBytes, p.PerQPBytes(),
		p.TotalBytes(), float64(p.TotalBytes())/1024,
		p.FractionOfSRAM(64<<20)*100)
}

// FatTree describes the §4 worked example fabric: a 3-layer fat-tree with
// switch port count K and 1:1 subscription.
type FatTree struct{ K int }

// Leaves returns the ToR (leaf) switch count, K²/2.
func (f FatTree) Leaves() int { return f.K * f.K / 2 }

// Spines returns the aggregation switch count, K²/2.
func (f FatTree) Spines() int { return f.K * f.K / 2 }

// Cores returns the core switch count, K²/4.
func (f FatTree) Cores() int { return f.K * f.K / 4 }

// Hosts returns the GPU/NIC count, K³/4.
func (f FatTree) Hosts() int { return f.K * f.K * f.K / 4 }

// MaxPaths returns the maximum equal-cost paths between a pair, (K/2)².
func (f FatTree) MaxPaths() int { return (f.K / 2) * (f.K / 2) }

// NICsPerToR returns K/2.
func (f FatTree) NICsPerToR() int { return f.K / 2 }

// Params derives Table 1 parameters from the fat-tree dimensions, keeping
// the paper's link/QP assumptions.
func (f FatTree) Params() Params {
	p := PaperDefaults()
	p.NPaths = f.MaxPaths()
	p.NNIC = f.NICsPerToR()
	return p
}
