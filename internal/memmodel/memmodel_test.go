package memmodel

import (
	"strings"
	"testing"

	"themis/internal/sim"
)

func TestPaperWorkedExample(t *testing.T) {
	p := PaperDefaults()
	// §4: PathMap = 256 x 2 = 512 B.
	if p.PathMapBytes() != 512 {
		t.Fatalf("PathMap = %d", p.PathMapBytes())
	}
	// BW x RTT = 400 Gbps x 2 us = 100 KB; x1.5/1500 = 100 entries.
	if p.QueueEntries() != 100 {
		t.Fatalf("entries = %d", p.QueueEntries())
	}
	// M_QP = 20 + 100 = 120 B.
	if p.PerQPBytes() != 120 {
		t.Fatalf("perQP = %d", p.PerQPBytes())
	}
	// M_total = 512 + 120*100*16 = 192512 B ≈ 193 KB (paper: "≈ 193KB").
	if p.TotalBytes() != 192512 {
		t.Fatalf("total = %d", p.TotalBytes())
	}
	if kb := float64(p.TotalBytes()) / 1024; kb < 187 || kb > 194 {
		t.Fatalf("total = %.1f KB, paper says ≈ 193 KB", kb)
	}
	// Fraction of 64 MB SRAM: the paper quotes 0.6%; the arithmetic in Eq. 4
	// actually gives ≈ 0.3% — we assert our exact computation and record the
	// discrepancy in EXPERIMENTS.md.
	if f := p.FractionOfSRAM(64 << 20); f > 0.006 {
		t.Fatalf("fraction = %f, must be under the paper's 0.6%%", f)
	}
}

func TestFlowTableEntryIs20Bytes(t *testing.T) {
	if FlowTableEntryBytes != 20 {
		t.Fatalf("flow table entry = %d B, §4 says 20 B", FlowTableEntryBytes)
	}
}

func TestFatTreeK32(t *testing.T) {
	f := FatTree{K: 32}
	if f.Leaves() != 512 || f.Spines() != 512 || f.Cores() != 256 {
		t.Fatalf("switches = %d/%d/%d", f.Leaves(), f.Spines(), f.Cores())
	}
	if f.Hosts() != 8192 {
		t.Fatalf("hosts = %d", f.Hosts())
	}
	if f.MaxPaths() != 256 {
		t.Fatalf("paths = %d", f.MaxPaths())
	}
	if f.NICsPerToR() != 16 {
		t.Fatalf("nics/tor = %d", f.NICsPerToR())
	}
	// The derived params must match Table 1's reference values.
	p := f.Params()
	if p.NPaths != 256 || p.NNIC != 16 {
		t.Fatalf("params = %+v", p)
	}
	if p.TotalBytes() != PaperDefaults().TotalBytes() {
		t.Fatal("k=32 fat-tree must reproduce the worked example")
	}
}

func TestQueueEntriesScaling(t *testing.T) {
	p := PaperDefaults()
	p.Bandwidth = 100e9 // quarter the bandwidth -> quarter the entries
	if p.QueueEntries() != 25 {
		t.Fatalf("entries = %d", p.QueueEntries())
	}
	p.RTTLast = 4 * sim.Microsecond
	if p.QueueEntries() != 50 {
		t.Fatalf("entries = %d", p.QueueEntries())
	}
	p.Factor = 1.0
	if p.QueueEntries() != 34 { // ceil(50000/1500)
		t.Fatalf("entries = %d", p.QueueEntries())
	}
}

func TestReportContents(t *testing.T) {
	r := PaperDefaults().Report()
	for _, want := range []string{"M_PathMap", "512 B", "N_entries", "100", "192512 B", "188.0 KB"} {
		if !strings.Contains(r, want) {
			t.Fatalf("report missing %q:\n%s", want, r)
		}
	}
}
