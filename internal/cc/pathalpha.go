package cc

// PathAlpha maintains per-path congestion estimates for the congestion-aware
// spraying arm (PAPERS.md: "Congestion Control for Spraying with Congested
// Paths"): one EWMA α per entropy bucket instead of DCQCN's single flow-global
// estimate. A spraying flow crosses many paths at once; folding every path's
// marks into one α makes a single congested path cut the whole flow as if all
// paths were congested. Keeping α per bucket lets the rate machine cut by the
// congested path's estimate while the clean paths' estimates decay.
//
// Buckets are fixed at construction and all state lives in a slice, so every
// operation iterates in index order — deterministic by construction.
type PathAlpha struct {
	g     float64
	alpha []float64
}

// NewPathAlpha returns per-bucket estimates, all starting at 1 like DCQCN's
// flow-global α (maximally cautious until feedback arrives). g is the EWMA
// gain shared with the flow-global estimate.
func NewPathAlpha(buckets int, g float64) *PathAlpha {
	p := &PathAlpha{g: g, alpha: make([]float64, buckets)}
	for i := range p.alpha {
		p.alpha[i] = 1
	}
	return p
}

// Buckets returns the bucket count.
func (p *PathAlpha) Buckets() int { return len(p.alpha) }

// Alpha returns bucket b's congestion estimate.
func (p *PathAlpha) Alpha(b int) float64 { return p.alpha[b] }

// OnMark applies the EWMA-up step to bucket b: a CNP was attributed to it.
func (p *PathAlpha) OnMark(b int) {
	p.alpha[b] = (1-p.g)*p.alpha[b] + p.g
}

// Decay applies one CNP-free decay period to every bucket.
func (p *PathAlpha) Decay() {
	for i := range p.alpha {
		p.alpha[i] = (1 - p.g) * p.alpha[i]
	}
}

// Reset restores every bucket to the maximally-cautious α=1 (RTO expiry:
// the feedback loop itself stalled, so no estimate is trustworthy).
func (p *PathAlpha) Reset() {
	for i := range p.alpha {
		p.alpha[i] = 1
	}
}

// Max returns the largest per-bucket estimate (quiescence check).
func (p *PathAlpha) Max() float64 {
	m := 0.0
	for _, a := range p.alpha {
		if a > m {
			m = a
		}
	}
	return m
}
