// Package cc implements DCQCN [Zhu et al., SIGCOMM'15], the congestion
// control that commodity RNICs run and that the paper's evaluation sweeps
// (§5): the rate increase timer TI sets how quickly a sender recovers its
// rate, and the rate decrease interval TD bounds how often it cuts.
//
// The rate machine follows the published algorithm: a multiplicative
// decrease driven by CNPs with an EWMA congestion estimate α, and a
// three-phase increase (fast recovery, additive increase, hyper increase)
// driven by a timer and a byte counter. The paper's key observation (§2.2)
// is wired in through OnNack: commodity NICs treat NACKs as congestion, so a
// NACK triggers the same rate cut — the "unnecessary slow start" Themis
// eliminates.
package cc

import "themis/internal/sim"

// Config parameterizes DCQCN. Zero fields take the published defaults.
type Config struct {
	LineRate int64 // link rate in bits per second (required)
	MinRate  int64 // floor rate; default LineRate/1000

	// TI is the rate-increase timer period (the paper's T_I, default 900us:
	// the "recommended" setting of [27] used in Fig. 5's first column).
	TI sim.Duration
	// TD is the minimum interval between consecutive rate decreases (the
	// paper's T_D, default 4us).
	TD sim.Duration

	// AlphaG is the EWMA gain g for the congestion estimate (default 1/256).
	AlphaG float64
	// AlphaTimer is the α-decay period when no CNP arrives (default 55us).
	AlphaTimer sim.Duration
	// ByteCounter is the byte-counter threshold B for rate increases
	// (default 10 MB).
	ByteCounter int64
	// FastRecovery is the number of increase events in fast recovery
	// (default 5).
	FastRecovery int
	// RAI and RHAI are the additive and hyper increase steps (defaults
	// LineRate/100 and LineRate/20, matching the common practice of scaling
	// the published 40/400 Mbps steps to the link rate).
	RAI, RHAI int64
	// PathBuckets, when positive, enables per-path congestion estimates: one
	// α EWMA per entropy bucket (see PathAlpha). A CNP attributed to bucket b
	// (via OnCNPPath) marks and cuts by α_b instead of the flow-global α, so
	// a spraying flow crossing one congested path no longer cuts as if every
	// path were congested. Zero keeps the published flow-global behavior.
	PathBuckets int
	// NackFactor is the multiplicative cut applied when the transport
	// reports a NACK (the paper's "unnecessary slow start", §2.2). NACK
	// cuts are gated by TD like CNP cuts but are loss-signal responses:
	// they do not update α and do not restart the increase timer phase —
	// they only re-enter fast recovery towards the pre-cut rate. Default
	// 0.75.
	NackFactor float64

	// RateListener, if set, is invoked after every rate change (for the
	// Fig. 1c rate-over-time series).
	RateListener func(t sim.Time, rate int64)
}

func (c Config) withDefaults() Config {
	if c.LineRate <= 0 {
		panic("cc: Config.LineRate is required")
	}
	if c.MinRate == 0 {
		c.MinRate = c.LineRate / 1000
	}
	if c.MinRate <= 0 {
		c.MinRate = 1
	}
	if c.TI == 0 {
		c.TI = 900 * sim.Microsecond
	}
	if c.TD == 0 {
		c.TD = 4 * sim.Microsecond
	}
	if c.AlphaG == 0 {
		c.AlphaG = 1.0 / 256
	}
	if c.AlphaTimer == 0 {
		c.AlphaTimer = 55 * sim.Microsecond
	}
	if c.ByteCounter == 0 {
		c.ByteCounter = 10 << 20
	}
	if c.FastRecovery == 0 {
		c.FastRecovery = 5
	}
	if c.RAI == 0 {
		c.RAI = c.LineRate / 100
	}
	if c.RHAI == 0 {
		c.RHAI = c.LineRate / 20
	}
	if c.NackFactor == 0 {
		c.NackFactor = 0.75
	}
	return c
}

// Stats counts rate-machine events.
type Stats struct {
	Decreases      uint64 // rate cuts applied
	SuppressedCuts uint64 // decrease requests ignored inside a TD interval
	IncreaseEvents uint64 // timer/byte-counter increase events
	CNPs           uint64 // congestion notifications seen
	Nacks          uint64 // NACK-triggered decrease requests seen
}

// DCQCN is one sender's rate machine. It is bound to a sim.Engine for its
// timers; all methods must be called on the simulation goroutine.
type DCQCN struct {
	engine *sim.Engine
	cfg    Config

	rc    int64   // current rate
	rt    int64   // target rate
	alpha float64 // flow-global congestion estimate

	// paths holds the per-entropy-bucket estimates when Config.PathBuckets
	// is set; nil runs the published flow-global algorithm.
	paths *PathAlpha

	lastDecrease  sim.Time
	everDecreased bool

	// Increase machinery.
	timerStage int
	byteStage  int
	bytesAcc   int64

	incTimer   *sim.Ticker
	alphaTimer *sim.Timer
	cnpSeen    bool // a CNP arrived during the current alpha period

	stats Stats
}

// New returns a DCQCN instance at line rate.
func New(engine *sim.Engine, cfg Config) *DCQCN {
	cfg = cfg.withDefaults()
	d := &DCQCN{
		engine: engine,
		cfg:    cfg,
		rc:     cfg.LineRate,
		rt:     cfg.LineRate,
		alpha:  1,
	}
	if cfg.PathBuckets > 0 {
		d.paths = NewPathAlpha(cfg.PathBuckets, cfg.AlphaG)
	}
	d.incTimer = sim.NewTicker(engine, cfg.TI, d.onTimerIncrease)
	d.alphaTimer = sim.NewTimer(engine, d.onAlphaTimer)
	return d
}

// Rate returns the current sending rate in bits per second.
func (d *DCQCN) Rate() int64 { return d.rc }

// TargetRate returns the current target rate (for tests/introspection).
func (d *DCQCN) TargetRate() int64 { return d.rt }

// Alpha returns the congestion estimate (for tests/introspection).
func (d *DCQCN) Alpha() float64 { return d.alpha }

// Stats returns a snapshot of event counters.
func (d *DCQCN) Stats() Stats { return d.stats }

// Paths returns the per-bucket estimates, or nil when PathBuckets is unset
// (for tests/introspection).
func (d *DCQCN) Paths() *PathAlpha { return d.paths }

// OnCNP processes a congestion notification against the flow-global α.
func (d *DCQCN) OnCNP() {
	d.onCNP(-1)
}

// OnCNPPath processes a congestion notification attributed to an entropy
// bucket. With PathBuckets configured, the mark and the cut use that
// bucket's α; otherwise (or for an out-of-range bucket) it degrades to the
// flow-global OnCNP.
func (d *DCQCN) OnCNPPath(bucket int) {
	d.onCNP(bucket)
}

func (d *DCQCN) onCNP(bucket int) {
	d.stats.CNPs++
	d.cnpSeen = true
	if d.paths != nil && bucket >= 0 && bucket < d.paths.Buckets() {
		d.paths.OnMark(bucket)
	} else {
		bucket = -1
	}
	d.decrease(bucket)
}

// OnNack processes a NACK: commodity RNICs treat it as a congestion/loss
// signal and cut the rate — the paper's "unnecessary slow start" (§2.2).
// The cut is TD-gated like a CNP cut, but it neither updates α nor restarts
// the increase-timer phase: the rate dips by NackFactor and fast recovery
// pulls it back towards the pre-cut rate.
func (d *DCQCN) OnNack() {
	d.stats.Nacks++
	now := d.engine.Now()
	if d.everDecreased && now.Sub(d.lastDecrease) < d.cfg.TD {
		d.stats.SuppressedCuts++
		return
	}
	d.lastDecrease = now
	d.everDecreased = true
	d.stats.Decreases++

	if d.rc > d.rt {
		d.rt = d.rc
	}
	d.setRate(int64(float64(d.rc) * d.cfg.NackFactor))
	// Re-enter fast recovery without disturbing the running timer phase.
	d.timerStage = 0
	d.byteStage = 0
	d.bytesAcc = 0
	if !d.incTimer.Active() {
		d.incTimer.SetPeriod(d.cfg.TI)
		d.incTimer.Start()
	}
}

// OnTimeout processes a retransmission timeout with a full cut to MinRate
// (the most conservative slow start).
func (d *DCQCN) OnTimeout() {
	d.setRate(d.cfg.MinRate)
	d.rt = d.cfg.MinRate
	d.alpha = 1
	if d.paths != nil {
		d.paths.Reset()
	}
	d.resetIncreaseState()
}

// OnBytesSent advances the byte counter.
func (d *DCQCN) OnBytesSent(n int) {
	d.bytesAcc += int64(n)
	for d.bytesAcc >= d.cfg.ByteCounter {
		d.bytesAcc -= d.cfg.ByteCounter
		d.byteStage++
		d.increase()
	}
}

// decrease applies the CNP/NACK multiplicative decrease, rate-limited to one
// cut per TD. bucket >= 0 selects the per-path α for the cut (the bucket has
// already been marked by onCNP); -1 uses the flow-global α.
func (d *DCQCN) decrease(bucket int) {
	now := d.engine.Now()
	if d.everDecreased && now.Sub(d.lastDecrease) < d.cfg.TD {
		d.stats.SuppressedCuts++
		// α still tracks congestion inside the TD window.
		d.updateAlphaUp()
		return
	}
	d.lastDecrease = now
	d.everDecreased = true
	d.stats.Decreases++

	d.updateAlphaUp()
	alpha := d.alpha
	if bucket >= 0 {
		alpha = d.paths.Alpha(bucket)
	}
	d.rt = d.rc
	newRate := int64(float64(d.rc) * (1 - alpha/2))
	d.setRate(newRate)
	d.resetIncreaseState()
}

func (d *DCQCN) updateAlphaUp() {
	g := d.cfg.AlphaG
	d.alpha = (1-g)*d.alpha + g
	d.armAlphaTimer()
}

func (d *DCQCN) armAlphaTimer() {
	d.cnpSeen = false
	d.alphaTimer.Reset(d.cfg.AlphaTimer)
}

// onAlphaTimer decays α after a CNP-free period. The timer self-cancels once
// α has fully decayed so an idle sender leaves the event queue quiescent;
// any later CNP re-arms it via updateAlphaUp.
func (d *DCQCN) onAlphaTimer() {
	if !d.cnpSeen {
		d.alpha = (1 - d.cfg.AlphaG) * d.alpha
		if d.paths != nil {
			d.paths.Decay()
		}
	}
	live := d.cnpSeen || d.alpha >= 1e-4
	if d.paths != nil && d.paths.Max() >= 1e-4 {
		live = true
	}
	if live {
		d.armAlphaTimer()
	}
}

// resetIncreaseState restarts the increase machinery after a decrease.
func (d *DCQCN) resetIncreaseState() {
	d.timerStage = 0
	d.byteStage = 0
	d.bytesAcc = 0
	d.incTimer.SetPeriod(d.cfg.TI)
	d.incTimer.Start()
}

func (d *DCQCN) onTimerIncrease() {
	d.timerStage++
	d.increase()
}

// increase applies one rate-increase event per the DCQCN phases.
func (d *DCQCN) increase() {
	d.stats.IncreaseEvents++
	f := d.cfg.FastRecovery
	switch {
	case d.timerStage <= f && d.byteStage <= f:
		// Fast recovery: halve the gap to the target.
	case d.timerStage > f && d.byteStage > f:
		// Hyper increase.
		d.rt += d.cfg.RHAI
	default:
		// Additive increase.
		d.rt += d.cfg.RAI
	}
	if d.rt > d.cfg.LineRate {
		d.rt = d.cfg.LineRate
	}
	// Ceiling division so the rate actually reaches the target instead of
	// stalling one bit-per-second below it.
	d.setRate((d.rc + d.rt + 1) / 2)
	// Fully recovered: stop the increase timer so an idle simulation can
	// drain. The next decrease restarts it.
	if d.rc >= d.cfg.LineRate && d.rt >= d.cfg.LineRate {
		d.incTimer.Stop()
	}
}

func (d *DCQCN) setRate(r int64) {
	if r < d.cfg.MinRate {
		r = d.cfg.MinRate
	}
	if r > d.cfg.LineRate {
		r = d.cfg.LineRate
	}
	if r == d.rc {
		return
	}
	d.rc = r
	if d.cfg.RateListener != nil {
		d.cfg.RateListener(d.engine.Now(), r)
	}
}

// Stop cancels the rate machine's timers (a QP teardown hook).
func (d *DCQCN) Stop() {
	d.incTimer.Stop()
	d.alphaTimer.Stop()
}
