package cc

import (
	"testing"

	"themis/internal/sim"
)

const line = int64(100e9)

func newD(e *sim.Engine, mut func(*Config)) *DCQCN {
	cfg := Config{LineRate: line}
	if mut != nil {
		mut(&cfg)
	}
	return New(e, cfg)
}

func TestStartsAtLineRate(t *testing.T) {
	e := sim.NewEngine(1)
	d := newD(e, nil)
	if d.Rate() != line {
		t.Fatalf("rate = %d", d.Rate())
	}
	if d.Alpha() != 1 {
		t.Fatalf("alpha = %g", d.Alpha())
	}
}

func TestRequiresLineRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(sim.NewEngine(1), Config{})
}

func TestCNPCutsRate(t *testing.T) {
	e := sim.NewEngine(1)
	d := newD(e, nil)
	d.OnCNP()
	// alpha was updated to (1-g)*1+g = 1, cut = rc*(1-1/2) = 50G.
	if d.Rate() != line/2 {
		t.Fatalf("rate after CNP = %d, want %d", d.Rate(), line/2)
	}
	if d.TargetRate() != line {
		t.Fatalf("target = %d, want old rate", d.TargetRate())
	}
	if d.Stats().Decreases != 1 {
		t.Fatal("decrease not counted")
	}
}

func TestNackCutsRateByFactor(t *testing.T) {
	e := sim.NewEngine(1)
	d := newD(e, nil)
	a0 := d.Alpha()
	d.OnNack()
	if d.Rate() != int64(float64(line)*0.75) {
		t.Fatalf("rate after NACK = %d, want 75%% of line", d.Rate())
	}
	if d.Alpha() != a0 {
		t.Fatal("NACK cut must not update alpha")
	}
	if d.TargetRate() != line {
		t.Fatalf("target = %d, want pre-cut rate", d.TargetRate())
	}
	if d.Stats().Nacks != 1 || d.Stats().Decreases != 1 {
		t.Fatalf("stats = %+v", d.Stats())
	}
}

func TestNackCutRecoversViaFastRecovery(t *testing.T) {
	e := sim.NewEngine(1)
	d := newD(e, func(c *Config) { c.TI = 50 * sim.Microsecond })
	d.OnNack()
	e.Run(sim.Time(3 * sim.Millisecond))
	if d.Rate() != line {
		t.Fatalf("rate did not recover after NACK cut: %d", d.Rate())
	}
}

func TestNackCutDoesNotRestartTimerPhase(t *testing.T) {
	e := sim.NewEngine(1)
	d := newD(e, func(c *Config) { c.TI = 100 * sim.Microsecond; c.TD = sim.Microsecond })
	d.OnNack() // starts the timer at t=0; next tick at 100us
	// A second NACK at t=90us must not push the tick to t=190us.
	e.At(sim.Time(90*sim.Microsecond), func() { d.OnNack() })
	e.Run(sim.Time(105 * sim.Microsecond))
	if d.Stats().IncreaseEvents == 0 {
		t.Fatal("increase timer was restarted by the NACK cut")
	}
}

func TestTDGatesDecreases(t *testing.T) {
	e := sim.NewEngine(1)
	d := newD(e, func(c *Config) { c.TD = 10 * sim.Microsecond })
	var rates []int64
	e.At(0, func() { d.OnCNP() })
	e.At(sim.Time(2*sim.Microsecond), func() { d.OnCNP() })  // inside TD: suppressed
	e.At(sim.Time(5*sim.Microsecond), func() { d.OnCNP() })  // inside TD: suppressed
	e.At(sim.Time(15*sim.Microsecond), func() { d.OnCNP() }) // outside: cuts
	e.At(sim.Time(16*sim.Microsecond), func() { rates = append(rates, d.Rate()) })
	e.Run(sim.Time(20 * sim.Microsecond))
	st := d.Stats()
	if st.Decreases != 2 {
		t.Fatalf("decreases = %d, want 2", st.Decreases)
	}
	if st.SuppressedCuts != 2 {
		t.Fatalf("suppressed = %d, want 2", st.SuppressedCuts)
	}
}

func TestLargerTDMeansFewerCuts(t *testing.T) {
	run := func(td sim.Duration) uint64 {
		e := sim.NewEngine(1)
		d := newD(e, func(c *Config) { c.TD = td })
		for i := 0; i < 100; i++ {
			e.At(sim.Time(i)*sim.Time(2*sim.Microsecond), func() { d.OnNack() })
		}
		e.RunAll()
		return d.Stats().Decreases
	}
	small, big := run(4*sim.Microsecond), run(200*sim.Microsecond)
	if big >= small {
		t.Fatalf("TD=200us gave %d cuts, TD=4us gave %d", big, small)
	}
}

func TestFastRecoveryHalvesGap(t *testing.T) {
	e := sim.NewEngine(1)
	d := newD(e, func(c *Config) { c.TI = 100 * sim.Microsecond })
	d.OnCNP() // rc = 50G, rt = 100G
	rc0 := d.Rate()
	e.Run(sim.Time(100 * sim.Microsecond)) // one timer increase
	want := (rc0 + line) / 2
	if d.Rate() != want {
		t.Fatalf("after 1 FR event rate = %d, want %d", d.Rate(), want)
	}
	// After 5 fast-recovery rounds the rate is within 2^-5 of target.
	e.Run(sim.Time(500 * sim.Microsecond))
	if gap := line - d.Rate(); gap > line/32+1 {
		t.Fatalf("gap after FR = %d", gap)
	}
}

func TestSmallerTIRecoversFaster(t *testing.T) {
	recovery := func(ti sim.Duration) int64 {
		e := sim.NewEngine(1)
		d := newD(e, func(c *Config) { c.TI = ti })
		d.OnCNP()
		e.Run(sim.Time(900 * sim.Microsecond))
		return d.Rate()
	}
	fast, slow := recovery(10*sim.Microsecond), recovery(900*sim.Microsecond)
	if fast <= slow {
		t.Fatalf("TI=10us recovered to %d, TI=900us to %d", fast, slow)
	}
}

func TestByteCounterDrivesIncrease(t *testing.T) {
	e := sim.NewEngine(1)
	d := newD(e, func(c *Config) {
		c.TI = sim.Second // effectively disable the timer path
		c.ByteCounter = 1 << 20
	})
	d.OnCNP()
	rc0 := d.Rate()
	d.OnBytesSent(1 << 20) // one byte-counter event
	if d.Rate() <= rc0 {
		t.Fatal("byte counter did not increase rate")
	}
	if d.Stats().IncreaseEvents != 1 {
		t.Fatalf("increase events = %d", d.Stats().IncreaseEvents)
	}
}

func TestHyperIncreaseAfterBothExceedF(t *testing.T) {
	e := sim.NewEngine(1)
	d := newD(e, func(c *Config) {
		c.TI = 10 * sim.Microsecond
		c.ByteCounter = 1000
		c.FastRecovery = 2
	})
	d.OnCNP()
	// Drive both stages past F.
	for i := 0; i < 3; i++ {
		d.OnBytesSent(1000)
	}
	e.Run(sim.Time(30 * sim.Microsecond)) // 3 timer events
	rtBefore := d.TargetRate()
	_ = rtBefore
	// Both stages now > F = 2: next event is hyper increase, but rt is
	// already capped at line rate, so just assert the cap holds.
	d.OnBytesSent(1000)
	if d.TargetRate() > line {
		t.Fatal("target exceeded line rate")
	}
	if d.Rate() > line {
		t.Fatal("rate exceeded line rate")
	}
}

func TestAlphaDecaysWithoutCNPs(t *testing.T) {
	e := sim.NewEngine(1)
	d := newD(e, nil)
	d.OnCNP()
	a0 := d.Alpha()
	e.Run(sim.Time(sim.Millisecond)) // many alpha periods, no CNPs
	if d.Alpha() >= a0 {
		t.Fatalf("alpha did not decay: %g -> %g", a0, d.Alpha())
	}
	// A later cut is therefore gentler than a half cut.
	r0 := d.Rate()
	d.OnCNP()
	if d.Rate() <= r0/2 {
		t.Fatalf("cut with decayed alpha too deep: %d -> %d", r0, d.Rate())
	}
}

func TestTimeoutResetsToMinRate(t *testing.T) {
	e := sim.NewEngine(1)
	d := newD(e, func(c *Config) { c.MinRate = 1e9 })
	d.OnTimeout()
	if d.Rate() != 1e9 {
		t.Fatalf("rate after timeout = %d", d.Rate())
	}
	if d.Alpha() != 1 {
		t.Fatal("alpha not reset")
	}
}

func TestRateFloorAndCeiling(t *testing.T) {
	e := sim.NewEngine(1)
	d := newD(e, func(c *Config) { c.MinRate = 5e9; c.TD = 0 })
	for i := 0; i < 100; i++ {
		d.OnCNP()
		// Space the cuts out past TD.
		e.At(e.Now().Add(5*sim.Microsecond), func() {})
		e.RunAll()
	}
	if d.Rate() < 5e9 {
		t.Fatalf("rate %d below floor", d.Rate())
	}
}

func TestRateListener(t *testing.T) {
	e := sim.NewEngine(1)
	var events []int64
	d := newD(e, func(c *Config) {
		c.RateListener = func(_ sim.Time, r int64) { events = append(events, r) }
	})
	d.OnCNP()
	if len(events) != 1 || events[0] != line/2 {
		t.Fatalf("listener events = %v", events)
	}
}

func TestStopCancelsTimers(t *testing.T) {
	e := sim.NewEngine(1)
	d := newD(e, func(c *Config) { c.TI = 10 * sim.Microsecond })
	d.OnCNP()
	d.Stop()
	if e.Pending() != 0 {
		t.Fatalf("pending events after Stop = %d", e.Pending())
	}
}

func TestRecoveryToLineRateEventually(t *testing.T) {
	e := sim.NewEngine(1)
	d := newD(e, func(c *Config) { c.TI = 50 * sim.Microsecond; c.ByteCounter = 1 << 20 })
	d.OnCNP()
	// Simulate sending while recovering.
	tick := sim.NewTicker(e, 10*sim.Microsecond, func() { d.OnBytesSent(125000) })
	tick.Start()
	e.Run(sim.Time(20 * sim.Millisecond))
	tick.Stop()
	d.Stop()
	if d.Rate() != line {
		t.Fatalf("rate did not recover to line: %d", d.Rate())
	}
}
