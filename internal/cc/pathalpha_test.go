package cc

import (
	"testing"

	"themis/internal/sim"
)

func TestPathAlphaStartsCautious(t *testing.T) {
	p := NewPathAlpha(4, 1.0/256)
	if p.Buckets() != 4 {
		t.Fatalf("buckets = %d", p.Buckets())
	}
	for b := 0; b < 4; b++ {
		if p.Alpha(b) != 1 {
			t.Fatalf("bucket %d starts at %g, want 1", b, p.Alpha(b))
		}
	}
	if p.Max() != 1 {
		t.Fatalf("max = %g", p.Max())
	}
}

func TestPathAlphaMarkAndDecayAreLocal(t *testing.T) {
	g := 0.5
	p := NewPathAlpha(3, g)
	// Decay all, then mark only bucket 1: its estimate rises while the others
	// keep falling — the independence that motivates per-path state.
	p.Decay() // all 0.5
	p.OnMark(1)
	if got, want := p.Alpha(1), (1-g)*0.5+g; got != want {
		t.Fatalf("marked bucket = %g, want %g", got, want)
	}
	if p.Alpha(0) != 0.5 || p.Alpha(2) != 0.5 {
		t.Fatalf("mark leaked: %g, %g", p.Alpha(0), p.Alpha(2))
	}
	p.Decay()
	if p.Alpha(1) <= p.Alpha(0) {
		t.Fatalf("ordering lost after decay: %g vs %g", p.Alpha(1), p.Alpha(0))
	}
	if p.Max() != p.Alpha(1) {
		t.Fatalf("max = %g, want bucket 1's %g", p.Max(), p.Alpha(1))
	}
	p.Reset()
	for b := 0; b < 3; b++ {
		if p.Alpha(b) != 1 {
			t.Fatalf("reset left bucket %d at %g", b, p.Alpha(b))
		}
	}
}

// TestCNPPathCutsByBucketAlpha: with per-path estimates enabled, the cut uses
// the attributed bucket's α — a decayed clean-path estimate cuts far less
// than the flow-global α=1 would.
func TestCNPPathCutsByBucketAlpha(t *testing.T) {
	e := sim.NewEngine(1)
	d := newD(e, func(c *Config) { c.PathBuckets = 4; c.AlphaG = 0.5 })
	if d.Paths() == nil || d.Paths().Buckets() != 4 {
		t.Fatal("per-path estimates not armed")
	}
	// Decay bucket 2 well below 1 without touching the machine's rate.
	for i := 0; i < 6; i++ {
		d.Paths().Decay()
	}
	a2 := d.Paths().Alpha(2) // (1-g)^6 ≈ 0.0156
	d.OnCNPPath(2)
	// The mark runs first: α₂ ← (1-g)α₂+g, then the cut is rc·(1-α₂/2).
	marked := (1-0.5)*a2 + 0.5
	want := int64(float64(line) * (1 - marked/2))
	if d.Rate() != want {
		t.Fatalf("rate = %d, want %d (cut by bucket α %g)", d.Rate(), want, marked)
	}
	// The flow-global α was still EWMA'd up (it feeds the legacy quiescence
	// logic), but the cut must not have used it: a flow-global cut from α=1
	// would have halved the rate.
	if d.Rate() <= line/2 {
		t.Fatalf("cut used flow-global alpha: rate = %d", d.Rate())
	}
}

// TestCNPPathOutOfRangeDegradesToGlobal: buckets outside [0, PathBuckets)
// fall back to the published flow-global behavior instead of panicking.
func TestCNPPathOutOfRangeDegradesToGlobal(t *testing.T) {
	e := sim.NewEngine(1)
	d := newD(e, func(c *Config) { c.PathBuckets = 2 })
	d.OnCNPPath(7)
	if d.Rate() != line/2 {
		t.Fatalf("rate = %d, want flow-global halving", d.Rate())
	}
	for b := 0; b < 2; b++ {
		if d.Paths().Alpha(b) != 1 {
			t.Fatalf("out-of-range CNP marked bucket %d", b)
		}
	}
}

// TestCNPPathWithoutBucketsIsGlobal: OnCNPPath on an unarmed machine is
// exactly OnCNP — the sender-side hook can call it unconditionally.
func TestCNPPathWithoutBucketsIsGlobal(t *testing.T) {
	e := sim.NewEngine(1)
	d := newD(e, nil)
	if d.Paths() != nil {
		t.Fatal("paths armed without PathBuckets")
	}
	d.OnCNPPath(3)
	if d.Rate() != line/2 {
		t.Fatalf("rate = %d, want flow-global halving", d.Rate())
	}
}

// TestPathAlphaDecaysOverQuietPeriods: the α timer decays every bucket during
// CNP-free periods, so clean paths forget old congestion; and the timer stays
// alive until the per-path estimates have fully decayed too.
func TestPathAlphaDecaysOverQuietPeriods(t *testing.T) {
	e := sim.NewEngine(1)
	d := newD(e, func(c *Config) { c.PathBuckets = 2; c.AlphaG = 0.25 })
	d.OnCNPPath(0) // mark bucket 0, arm the timer
	before := d.Paths().Alpha(1)
	e.Run(sim.Time(2 * sim.Millisecond))
	if got := d.Paths().Alpha(1); got >= before {
		t.Fatalf("clean bucket did not decay: %g -> %g", before, got)
	}
	// After a long quiet window every estimate is negligible: the timer was
	// kept alive long enough to decay the per-path state, then went quiescent.
	e.Run(sim.Time(50 * sim.Millisecond))
	if m := d.Paths().Max(); m >= 1e-4 {
		t.Fatalf("per-path estimates never fully decayed: max %g", m)
	}
}

// TestTimeoutResetsPathAlpha: an RTO is a feedback-loop failure — every
// per-path estimate returns to the maximally-cautious 1.
func TestTimeoutResetsPathAlpha(t *testing.T) {
	e := sim.NewEngine(1)
	d := newD(e, func(c *Config) { c.PathBuckets = 3 })
	for i := 0; i < 4; i++ {
		d.Paths().Decay()
	}
	d.OnTimeout()
	for b := 0; b < 3; b++ {
		if d.Paths().Alpha(b) != 1 {
			t.Fatalf("bucket %d = %g after RTO, want 1", b, d.Paths().Alpha(b))
		}
	}
	if d.Rate() != line/1000 {
		t.Fatalf("rate = %d, want MinRate", d.Rate())
	}
}
