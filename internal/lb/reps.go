package lb

import "themis/internal/packet"

// EntropySource is the sender-side per-packet entropy chooser: it picks the
// UDP source port ("entropy value") stamped on each outgoing data packet, so
// the fabric's per-flow ECMP hash lands the packet on a sender-chosen path.
// The RNIC threads transport feedback back into the source — cumulative ACK
// advances, NACKs and RTO expiries — which is exactly the signal REPS-style
// caches need to distinguish good paths from failed ones.
//
// Implementations must be deterministic functions of the call sequence: the
// hook runs inside the sender's event handlers, so any hidden randomness
// would break the engine's byte-identical replay and shard-count invariance.
type EntropySource interface {
	// Pick returns the entropy value for the (re)transmission of psn.
	Pick(psn packet.PSN) uint16
	// OnAck reports that psn was cumulatively acknowledged: the entropy it
	// carried traversed a good path.
	OnAck(psn packet.PSN)
	// OnNack reports that psn was explicitly NACKed (received out of order
	// or lost): its entropy is suspect.
	OnNack(psn packet.PSN)
	// OnTimeout reports an RTO expiry: every cached path estimate is stale.
	OnTimeout()
	// Name identifies the policy in reports.
	Name() string
}

// REPS is Recycled Entropy Packet Spraying (PAPERS.md): a bounded per-source
// cache of entropy values that recently traversed good paths. Each ACKed
// packet recycles its entropy into a fixed-size FIFO ring; each transmission
// pops the oldest recycled value, or explores a fresh one when the ring is
// empty (cold start, or after feedback drained it). A NACK evicts the failed
// packet's entropy from both the in-flight map and the ring, and an RTO
// flushes the ring entirely — so entropy pointing at a blackholed path ages
// out within one feedback round-trip instead of being re-sprayed until the
// control plane reacts.
//
// The cache is a pure function of the transport feedback sequence: no RNG,
// no wall clock, so a REPS sender is shard-invariant and byte-replayable.
type REPS struct {
	base uint16
	ring []uint16 // circular FIFO of recycled entropy values
	head int
	n    int
	// inflight maps outstanding PSNs to the entropy they carry, so ACK/NACK
	// feedback (which names only the PSN) can be attributed to a path. Never
	// iterated — lookups and deletes only.
	inflight map[packet.PSN]uint16
	explore  uint16
	stats    REPSStats
}

// REPSStats counts cache events for reports and tests.
type REPSStats struct {
	Recycled uint64 // ACKed entropy values returned to the ring
	Explored uint64 // fresh entropy values minted on ring miss
	Evicted  uint64 // entropy values scrubbed by NACK feedback
	Flushes  uint64 // whole-ring flushes on RTO expiry
}

// DefaultREPSCache is the default ring capacity: roughly one
// bandwidth-delay product of 4KB packets on the fabrics the grids model,
// and comfortably more than the path diversity of the k≤8 topologies.
const DefaultREPSCache = 64

// NewREPS returns a REPS entropy source. base is the flow's home source port
// (the value a non-spraying sender would stamp on every packet); size is the
// ring capacity (DefaultREPSCache if <= 0).
func NewREPS(base uint16, size int) *REPS {
	if size <= 0 {
		size = DefaultREPSCache
	}
	return &REPS{
		base:     base,
		ring:     make([]uint16, size),
		inflight: make(map[packet.PSN]uint16),
	}
}

// Pick implements EntropySource: recycle the oldest cached entropy, or
// explore a fresh value on a miss.
func (r *REPS) Pick(psn packet.PSN) uint16 {
	var e uint16
	if r.n > 0 {
		e = r.ring[r.head]
		r.head = (r.head + 1) % len(r.ring)
		r.n--
		r.stats.Recycled++
	} else {
		e = r.base + r.explore
		r.explore++
		r.stats.Explored++
	}
	r.inflight[psn] = e
	return e
}

// OnAck implements EntropySource: the entropy psn carried saw a good path —
// return it to the ring (dropped if the ring is full: the cache already
// holds enough known-good entropy).
func (r *REPS) OnAck(psn packet.PSN) {
	e, ok := r.inflight[psn]
	if !ok {
		return
	}
	delete(r.inflight, psn)
	if r.n == len(r.ring) {
		return
	}
	r.ring[(r.head+r.n)%len(r.ring)] = e
	r.n++
}

// OnNack implements EntropySource: psn's entropy is suspect — forget the
// in-flight attribution and scrub every cached copy of the value, so the
// next transmissions stop landing on the failed path.
func (r *REPS) OnNack(psn packet.PSN) {
	e, ok := r.inflight[psn]
	if !ok {
		return
	}
	delete(r.inflight, psn)
	kept := 0
	for i := 0; i < r.n; i++ {
		v := r.ring[(r.head+i)%len(r.ring)]
		if v == e {
			r.stats.Evicted++
			continue
		}
		r.ring[(r.head+kept)%len(r.ring)] = v
		kept++
	}
	r.n = kept
	r.stats.Evicted++ // the in-flight copy itself
}

// OnTimeout implements EntropySource: an RTO means the feedback loop itself
// stalled — every cached estimate is stale, so flush the ring and re-explore.
func (r *REPS) OnTimeout() {
	r.head, r.n = 0, 0
	r.stats.Flushes++
}

// Name implements EntropySource.
func (r *REPS) Name() string { return "reps" }

// Cached returns the number of recycled entropy values currently in the ring.
func (r *REPS) Cached() int { return r.n }

// Stats returns the cache event counters.
func (r *REPS) Stats() REPSStats { return r.stats }

// EntropyRoundRobin stamps entropy base+PSN mod Buckets: a stateless spray
// over a fixed bucket set. It is the sender half of the congestion-aware
// arm — the switch-side CongestionAware selector and the per-path DCQCN
// coupling both key their estimates off the same bucket arithmetic.
type EntropyRoundRobin struct {
	Base    uint16
	Buckets int
}

// Pick implements EntropySource.
func (e EntropyRoundRobin) Pick(psn packet.PSN) uint16 {
	return e.Base + uint16(psn.Mod(e.Buckets))
}

// OnAck implements EntropySource (stateless: no-op).
func (EntropyRoundRobin) OnAck(packet.PSN) {}

// OnNack implements EntropySource (stateless: no-op).
func (EntropyRoundRobin) OnNack(packet.PSN) {}

// OnTimeout implements EntropySource (stateless: no-op).
func (EntropyRoundRobin) OnTimeout() {}

// Name implements EntropySource.
func (EntropyRoundRobin) Name() string { return "rr" }
