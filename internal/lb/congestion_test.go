package lb

import (
	"testing"

	"themis/internal/packet"
)

func TestCongestionAwareBiasesAwayFromHotPort(t *testing.T) {
	s := NewCongestionAware(1000, 0.5, 0) // high gain: estimates move fast
	cands := []int{0, 1, 2, 3}
	ctx := newFakeCtx()
	ctx.queues[2] = 5000 // port 2 sits over the knee
	counts := map[int]int{}
	for i := 0; i < 256; i++ {
		p := dataPkt(1, 2, uint16(3000+i), packet.PSN(i))
		counts[s.Select(p, cands, ctx)]++
	}
	if counts[2] != 0 {
		t.Fatalf("congested port still picked %d times: %v", counts[2], counts)
	}
	for _, c := range []int{0, 1, 3} {
		if counts[c] == 0 {
			t.Fatalf("uncongested port %d never used: %v", c, counts)
		}
	}
	if s.Estimate(2) <= s.Estimate(0) {
		t.Fatalf("estimates: hot %v cold %v", s.Estimate(2), s.Estimate(0))
	}
}

func TestCongestionAwareAllCongestedPicksLeastEstimate(t *testing.T) {
	s := NewCongestionAware(100, 0.5, 0)
	cands := []int{0, 1}
	ctx := newFakeCtx()
	// Warm both ports over the knee, port 1 hotter for longer.
	ctx.queues[0], ctx.queues[1] = 200, 200
	for i := 0; i < 10; i++ {
		s.Select(dataPkt(1, 2, uint16(i), 0), cands, ctx)
	}
	ctx.queues[0] = 0 // port 0 drains; port 1 stays hot
	got := s.Select(dataPkt(1, 2, 99, 0), cands, ctx)
	// One decay step may not drop port 0 below the threshold yet, but it must
	// already be the lesser estimate.
	if s.Estimate(0) >= s.Estimate(1) {
		t.Fatalf("estimates: %v vs %v", s.Estimate(0), s.Estimate(1))
	}
	if got != 0 {
		t.Fatalf("picked %d, want the draining port 0", got)
	}
}

// TestCongestionAwareDeterministic: no RNG, no map order — identical inputs
// give identical decisions, the property the shard contract needs.
func TestCongestionAwareDeterministic(t *testing.T) {
	run := func() []int {
		s := NewCongestionAware(1000, 0, 0)
		cands := []int{4, 5, 6, 7}
		ctx := newFakeCtx()
		var out []int
		for i := 0; i < 128; i++ {
			ctx.queues[4+i%4] = (i * 37) % 3000
			out = append(out, s.Select(dataPkt(1, 2, uint16(i), packet.PSN(i)), cands, ctx))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestCongestionAwareUncongestedSpreads: with every estimate below the
// threshold the arm keeps spraying — distinct flow keys land on distinct
// rotation starts, so all ports see traffic.
func TestCongestionAwareUncongestedSpreads(t *testing.T) {
	s := NewCongestionAware(1<<20, 0, 0)
	cands := []int{0, 1, 2, 3}
	ctx := newFakeCtx()
	counts := map[int]int{}
	for i := 0; i < 512; i++ {
		counts[s.Select(dataPkt(1, 2, uint16(i), 0), cands, ctx)]++
	}
	for _, c := range cands {
		if counts[c] == 0 {
			t.Fatalf("port %d never used under no congestion: %v", c, counts)
		}
	}
}

func TestCongestionAwareZeroKneePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCongestionAware(0, 0, 0)
}

func TestCongestionAwareDefaultsAndName(t *testing.T) {
	s := NewCongestionAware(100, 0, 0)
	if s.Gain != DefaultCongestionGain || s.Threshold != DefaultCongestionThreshold {
		t.Fatalf("defaults not applied: %+v", s)
	}
	if s.Name() != "congestion-aware" {
		t.Fatal("name")
	}
	if s.Estimate(12345) != 0 {
		t.Fatal("unobserved port must report a zero estimate")
	}
}
