package lb

import (
	"themis/internal/packet"
	"themis/internal/sim"
)

// flowletIdleFactor scales Gap into the eviction threshold: an entry idle for
// longer than flowletIdleFactor×Gap is dead state — any packet arriving after
// a plain Gap already re-balances, so keeping the entry buys nothing beyond
// one map hit, and under flow churn the table would otherwise grow one entry
// per flow key forever.
const flowletIdleFactor = 16

// flowletSweepPerSelect bounds the amortized eviction work: each Select
// advances the clock hand over at most this many entries. Two checks per
// insertion of at most one new entry means the table shrinks whenever more
// than half the scanned entries are expired, so occupancy stays proportional
// to the number of flows active within the idle window.
const flowletSweepPerSelect = 2

// Flowlet implements flowlet switching [10, 23, 36]: a flow keeps its current
// path while packets arrive back-to-back, and may be re-balanced onto the
// least-loaded path whenever an inter-packet gap exceeds Gap (the flowlet
// timeout). Because commodity RNICs pace at line rate in hardware, real RDMA
// flows essentially never expose gaps larger than a sensible timeout, so the
// policy degenerates to flow-level balancing — the incompatibility §2.3
// describes; the Fig. 5 ablation reproduces that collapse.
//
// Idle entries are evicted by an amortized clock-hand sweep over a side
// slice (never by iterating the map, whose order is nondeterministic and
// banned on hot paths): each Select checks up to flowletSweepPerSelect
// entries and deletes those idle longer than flowletIdleFactor×Gap. Eviction
// never changes a packet decision: a re-created entry runs the same
// stateless Adaptive re-balance the gap-expiry path would have run.
type Flowlet struct {
	// Gap is the idle interval after which a flow may switch paths.
	Gap sim.Duration
	// table tracks the last-seen time and current port per flow.
	table map[packet.FlowKey]*flowletEntry
	// order is the clock-hand scan sequence over live entries; hand is the
	// next index to check. Eviction swap-removes, so order is unordered.
	order []*flowletEntry
	hand  int
}

type flowletEntry struct {
	key  packet.FlowKey
	last sim.Time
	port int
}

// NewFlowlet returns a flowlet selector with the given gap.
func NewFlowlet(gap sim.Duration) *Flowlet {
	if gap <= 0 {
		panic("lb: flowlet gap must be positive")
	}
	return &Flowlet{Gap: gap, table: make(map[packet.FlowKey]*flowletEntry)}
}

// Select implements Selector.
func (f *Flowlet) Select(pkt *packet.Packet, cands []int, ctx Context) int {
	key := pkt.Key()
	now := ctx.Now()
	e, ok := f.table[key]
	if !ok {
		e = &flowletEntry{key: key, port: Adaptive{}.Select(pkt, cands, ctx)} //lint:alloc-ok one entry per new flowlet key: per-flow setup, not per-packet
		f.table[key] = e
		f.order = append(f.order, e) //lint:alloc-ok amortized growth of the per-flow scan slice, not per-packet
	} else if now.Sub(e.last) > f.Gap || !contains(cands, e.port) {
		// New flowlet (or the cached port is no longer a valid candidate,
		// e.g. after a link failure): re-balance.
		e.port = Adaptive{}.Select(pkt, cands, ctx)
	}
	e.last = now
	f.sweep(now)
	return e.port
}

// sweep advances the clock hand over up to flowletSweepPerSelect entries,
// evicting those idle beyond flowletIdleFactor×Gap. O(1) amortized,
// allocation-free, and deterministic (slice order, never map order).
func (f *Flowlet) sweep(now sim.Time) {
	idle := sim.Duration(flowletIdleFactor) * f.Gap
	for i := 0; i < flowletSweepPerSelect && len(f.order) > 0; i++ {
		if f.hand >= len(f.order) {
			f.hand = 0
		}
		e := f.order[f.hand]
		if now.Sub(e.last) <= idle {
			f.hand++
			continue
		}
		delete(f.table, e.key)
		last := len(f.order) - 1
		f.order[f.hand] = f.order[last]
		f.order[last] = nil
		f.order = f.order[:last]
	}
}

// Name implements Selector.
func (f *Flowlet) Name() string { return "flowlet" }

// Entries returns the number of tracked flows (state-size accounting).
func (f *Flowlet) Entries() int { return len(f.table) }

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
