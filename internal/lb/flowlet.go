package lb

import (
	"themis/internal/packet"
	"themis/internal/sim"
)

// Flowlet implements flowlet switching [10, 23, 36]: a flow keeps its current
// path while packets arrive back-to-back, and may be re-balanced onto the
// least-loaded path whenever an inter-packet gap exceeds Gap (the flowlet
// timeout). Because commodity RNICs pace at line rate in hardware, real RDMA
// flows essentially never expose gaps larger than a sensible timeout, so the
// policy degenerates to flow-level balancing — the incompatibility §2.3
// describes; the Fig. 5 ablation reproduces that collapse.
type Flowlet struct {
	// Gap is the idle interval after which a flow may switch paths.
	Gap sim.Duration
	// table tracks the last-seen time and current port per flow.
	table map[packet.FlowKey]*flowletEntry
}

type flowletEntry struct {
	last sim.Time
	port int
}

// NewFlowlet returns a flowlet selector with the given gap.
func NewFlowlet(gap sim.Duration) *Flowlet {
	if gap <= 0 {
		panic("lb: flowlet gap must be positive")
	}
	return &Flowlet{Gap: gap, table: make(map[packet.FlowKey]*flowletEntry)}
}

// Select implements Selector.
func (f *Flowlet) Select(pkt *packet.Packet, cands []int, ctx Context) int {
	key := pkt.Key()
	now := ctx.Now()
	e, ok := f.table[key]
	if !ok {
		e = &flowletEntry{port: Adaptive{}.Select(pkt, cands, ctx)} //lint:alloc-ok one entry per new flowlet key: per-flow setup, not per-packet
		f.table[key] = e
	} else if now.Sub(e.last) > f.Gap || !contains(cands, e.port) {
		// New flowlet (or the cached port is no longer a valid candidate,
		// e.g. after a link failure): re-balance.
		e.port = Adaptive{}.Select(pkt, cands, ctx)
	}
	e.last = now
	return e.port
}

// Name implements Selector.
func (f *Flowlet) Name() string { return "flowlet" }

// Entries returns the number of tracked flows (state-size accounting).
func (f *Flowlet) Entries() int { return len(f.table) }

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
