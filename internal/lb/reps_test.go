package lb

import (
	"testing"

	"themis/internal/packet"
)

// TestREPSExploresWhenEmpty pins the cold-start behavior: with nothing
// recycled, every pick mints a fresh entropy value base, base+1, …
func TestREPSExploresWhenEmpty(t *testing.T) {
	r := NewREPS(1000, 4)
	for i := 0; i < 8; i++ {
		if got, want := r.Pick(packet.PSN(i)), uint16(1000+i); got != want {
			t.Fatalf("pick %d = %d, want %d", i, got, want)
		}
	}
	if st := r.Stats(); st.Explored != 8 || st.Recycled != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestREPSRecycleOrdering is the core REPS loop: ACKed entropy re-enters the
// ring FIFO and is handed out oldest-first before any new value is explored.
func TestREPSRecycleOrdering(t *testing.T) {
	r := NewREPS(2000, 8)
	for i := 0; i < 3; i++ {
		r.Pick(packet.PSN(i)) // 2000, 2001, 2002 in flight
	}
	// ACK out of transmission order: recycle order is ACK order, not PSN order.
	r.OnAck(1)
	r.OnAck(0)
	r.OnAck(2)
	want := []uint16{2001, 2000, 2002}
	for i, w := range want {
		if got := r.Pick(packet.PSN(10 + i)); got != w {
			t.Fatalf("recycled pick %d = %d, want %d", i, got, w)
		}
	}
	if r.Cached() != 0 {
		t.Fatalf("ring should be drained, cached = %d", r.Cached())
	}
	// Drained again: the next pick explores a fresh value, continuing the
	// sequence (2003), not reusing one.
	if got := r.Pick(20); got != 2003 {
		t.Fatalf("post-drain pick = %d, want 2003", got)
	}
	if st := r.Stats(); st.Recycled != 3 || st.Explored != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestREPSNackEvictsEverywhere: a NACK scrubs the failed entropy from the
// in-flight attribution AND every recycled copy in the ring, so no later pick
// re-sprays onto the suspect path.
func TestREPSNackEvictsEverywhere(t *testing.T) {
	r := NewREPS(3000, 8)
	r.Pick(0) // explores 3000
	r.Pick(1) // explores 3001
	r.OnAck(0)
	r.OnAck(1)
	// Ring now holds [3000, 3001]. Recycle 3000 onto psn 3 and NACK it.
	if got := r.Pick(3); got != 3000 {
		t.Fatalf("setup: pick = %d, want 3000", got)
	}
	r.OnNack(3)
	// 3000 must be gone: the next picks are 3001 (still cached) then a fresh
	// exploration — never 3000.
	if got := r.Pick(4); got != 3001 {
		t.Fatalf("post-nack pick = %d, want 3001", got)
	}
	if got := r.Pick(5); got == 3000 {
		t.Fatal("evicted entropy came back")
	}
	if st := r.Stats(); st.Evicted == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestREPSNackScrubsRingCopies: NACK eviction removes every cached duplicate,
// not just the first hit, and preserves the FIFO order of survivors.
func TestREPSNackScrubsRingCopies(t *testing.T) {
	r := NewREPS(0, 8)
	// Build a ring [0, 1, 0, 2] by ACK order (entropy == explore offset).
	for i := 0; i < 3; i++ {
		r.Pick(packet.PSN(i)) // 0, 1, 2
	}
	r.OnAck(0) // ring [0]
	r.OnAck(1) // ring [0 1]
	r.Pick(10) // recycles 0
	r.OnAck(10)
	r.OnAck(2) // ring [1 0 2]
	r.Pick(11) // recycles 1
	r.OnAck(11)
	// Ring is [0 2 1]; now carry 0 in flight and NACK it.
	if got := r.Pick(12); got != 0 {
		t.Fatalf("setup pick = %d, want 0", got)
	}
	r.OnNack(12)
	if r.Cached() != 2 {
		t.Fatalf("cached = %d, want 2", r.Cached())
	}
	if a, b := r.Pick(13), r.Pick(14); a != 2 || b != 1 {
		t.Fatalf("survivors = %d, %d, want 2, 1", a, b)
	}
}

// TestREPSTimeoutFlushes: an RTO invalidates the whole cache — the ring
// empties and picks go back to exploration.
func TestREPSTimeoutFlushes(t *testing.T) {
	r := NewREPS(4000, 8)
	for i := 0; i < 4; i++ {
		r.Pick(packet.PSN(i)) // explores 4000..4003
	}
	for i := 0; i < 4; i++ {
		r.OnAck(packet.PSN(i))
	}
	if r.Cached() != 4 {
		t.Fatalf("cached = %d", r.Cached())
	}
	r.OnTimeout()
	if r.Cached() != 0 {
		t.Fatalf("cached after flush = %d", r.Cached())
	}
	if got := r.Pick(10); got != 4004 {
		t.Fatalf("post-flush pick = %d, want fresh 4004", got)
	}
	if st := r.Stats(); st.Flushes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestREPSRingBounded: the ring never grows past its capacity — surplus ACKs
// drop their entropy instead of allocating.
func TestREPSRingBounded(t *testing.T) {
	r := NewREPS(0, 4)
	for i := 0; i < 32; i++ {
		r.Pick(packet.PSN(i))
	}
	for i := 0; i < 32; i++ {
		r.OnAck(packet.PSN(i))
	}
	if r.Cached() != 4 {
		t.Fatalf("cached = %d, want capacity 4", r.Cached())
	}
	// The kept values are the first four ACKed, FIFO.
	for i := 0; i < 4; i++ {
		if got := r.Pick(packet.PSN(100 + i)); got != uint16(i) {
			t.Fatalf("pick %d = %d, want %d", i, got, i)
		}
	}
}

// TestREPSUnknownFeedbackIgnored: ACK/NACK for PSNs with no in-flight
// attribution (duplicate feedback, pre-hook packets) are no-ops.
func TestREPSUnknownFeedbackIgnored(t *testing.T) {
	r := NewREPS(0, 4)
	r.OnAck(99)
	r.OnNack(99)
	if r.Cached() != 0 {
		t.Fatalf("cached = %d", r.Cached())
	}
	r.Pick(0)
	r.OnAck(0)
	r.OnAck(0) // duplicate: entropy must not be recycled twice
	if r.Cached() != 1 {
		t.Fatalf("cached = %d after duplicate ack", r.Cached())
	}
}

// TestREPSDeterministic: two instances fed the same feedback sequence emit
// identical picks — the property the shard-invariance contract needs.
func TestREPSDeterministic(t *testing.T) {
	run := func() []uint16 {
		r := NewREPS(7000, 8)
		var out []uint16
		for i := 0; i < 64; i++ {
			psn := packet.PSN(i)
			out = append(out, r.Pick(psn))
			switch i % 5 {
			case 0, 1, 2:
				r.OnAck(psn)
			case 3:
				r.OnNack(psn)
			case 4:
				if i%20 == 19 {
					r.OnTimeout()
				}
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pick %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestEntropyRoundRobin(t *testing.T) {
	e := EntropyRoundRobin{Base: 5000, Buckets: 3}
	want := []uint16{5000, 5001, 5002, 5000, 5001}
	for i, w := range want {
		if got := e.Pick(packet.PSN(i)); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
	// Feedback is a no-op; Name identifies the policy.
	e.OnAck(0)
	e.OnNack(1)
	e.OnTimeout()
	if e.Name() != "rr" {
		t.Fatal("name")
	}
	if NewREPS(0, 0).Name() != "reps" {
		t.Fatal("reps name")
	}
}
