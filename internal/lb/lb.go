// Package lb implements the load-balancing policies the paper compares:
// flow-level ECMP, random packet spraying, queue-aware adaptive routing and
// flowlet switching, plus the deterministic PSN-based spraying rule of Eq. 1
// that Themis-S enforces.
//
// A Selector picks one egress port out of a switch's equal-cost candidate
// set for each packet. Selectors are instantiated per switch so that any
// per-flow state (flowlet tables) is switch-local, as it would be in
// hardware.
package lb

import (
	"hash/crc32"
	"math/rand"

	"themis/internal/packet"
	"themis/internal/sim"
)

// Context gives a Selector access to local switch state at decision time.
type Context interface {
	// Now returns the current virtual time.
	Now() sim.Time
	// QueueBytes returns the current egress queue depth of a candidate port.
	QueueBytes(port int) int
	// Rand is the deterministic random source of the simulation.
	Rand() *rand.Rand
	// Seed is the switch-local hash seed (see SwitchSeed), decorrelating
	// ECMP decisions across tiers.
	Seed() uint32
}

// Selector picks an egress port for a packet from the candidate set cands
// (actual port numbers, sorted ascending). Implementations must return one
// of the candidates.
type Selector interface {
	Select(pkt *packet.Packet, cands []int, ctx Context) int
	// Name identifies the policy in reports.
	Name() string
}

// ieeeTable is the byte-at-a-time CRC-32/IEEE table. The stdlib's
// ChecksumIEEE forces its input slice to escape (it feeds arch-specific fast
// paths), which would cost one heap allocation per ECMP decision; hashing the
// fixed-size keys byte by byte against the table keeps the fabric forward
// path allocation-free while producing bit-identical checksums.
var ieeeTable = crc32.MakeTable(crc32.IEEE)

// crcByte folds one byte into a running CRC-32/IEEE state.
func crcByte(crc uint32, b byte) uint32 {
	return ieeeTable[byte(crc)^b] ^ (crc >> 8)
}

// Hash is the ECMP hash over a flow key. It is CRC32 (IEEE), which real
// switch ASICs commonly use, and which is linear over GF(2): for a fixed
// base key, XOR-ing a delta into the UDP source port changes the hash by a
// key-independent delta. That linearity is what makes the offline PathMap of
// §3.2 (and [37]) valid for every flow; see package core.
func Hash(k packet.FlowKey) uint32 {
	crc := ^uint32(0)
	crc = crcByte(crc, byte(k.Src))
	crc = crcByte(crc, byte(k.Src>>8))
	crc = crcByte(crc, byte(k.Src>>16))
	crc = crcByte(crc, byte(k.Src>>24))
	crc = crcByte(crc, byte(k.Dst))
	crc = crcByte(crc, byte(k.Dst>>8))
	crc = crcByte(crc, byte(k.Dst>>16))
	crc = crcByte(crc, byte(k.Dst>>24))
	crc = crcByte(crc, byte(k.SPort))
	crc = crcByte(crc, byte(k.SPort>>8))
	crc = crcByte(crc, byte(k.DPort))
	crc = crcByte(crc, byte(k.DPort>>8))
	return ^crc
}

// Index reduces a hash onto n candidates. For power-of-two n this is a mask
// (preserving XOR linearity); otherwise a modulo.
func Index(h uint32, n int) int {
	if n <= 0 {
		panic("lb: Index with no candidates")
	}
	if n&(n-1) == 0 {
		return int(h) & (n - 1)
	}
	return int(h % uint32(n))
}

// SwitchSeed derives a deterministic per-switch value, used where per-switch
// (rather than per-tier) diversity is wanted — e.g. deriving a flow's P_base
// in Eq. 1.
func SwitchSeed(swID int) uint32 {
	crc := ^uint32(0)
	crc = crcByte(crc, byte(swID))
	crc = crcByte(crc, byte(swID>>8))
	crc = crcByte(crc, byte(swID>>16))
	crc = crcByte(crc, 0x5a)
	return ^crc
}

// TierSeed derives the ECMP hash seed for a topology tier. Real fabrics
// configure hashing uniformly within a tier and differently across tiers:
// within a tier, uniformity keeps the fabric-wide path function a single
// linear map of the flow hash (the property the §3.2 PathMap and [37]
// exploit); across tiers, distinct seeds decorrelate decisions and avoid
// hash polarization. The PathMap prober in package core mirrors this exact
// function.
func TierSeed(tier int) uint32 {
	crc := ^uint32(0)
	crc = crcByte(crc, byte(tier))
	crc = crcByte(crc, 0xc3)
	crc = crcByte(crc, 0x96)
	crc = crcByte(crc, 0x69)
	return ^crc
}

// gf32Mul multiplies two elements of GF(2^32) modulo the CRC-32/IEEE
// polynomial (x^32 + x^26 + ... + 1, 0x04C11DB7). Multiplication by a fixed
// nonzero constant is an invertible GF(2)-linear map, which is exactly what
// per-switch hash seeding needs: each switch applies a different linear
// transform to the flow hash, so successive tiers decide on independent bit
// subspaces (no hash polarization) while XOR-deltas in the key still induce
// key-independent decision deltas (the linearity PathMap relies on).
func gf32Mul(a, b uint32) uint32 {
	var r uint32
	for b != 0 {
		if b&1 != 0 {
			r ^= a
		}
		b >>= 1
		carry := a & 0x80000000
		a <<= 1
		if carry != 0 {
			a ^= 0x04C11DB7
		}
	}
	return r
}

// ECMPIndex is the canonical ECMP decision: the candidate index a switch
// with the given seed picks for flow key k among n candidates. Both the
// fabric's ECMP selector and the offline PathMap prober use it, so the two
// can never disagree.
func ECMPIndex(k packet.FlowKey, seed uint32, n int) int {
	return Index(gf32Mul(Hash(k), seed|1), n)
}

// ECMP hashes the five-tuple; all packets of a flow take one path.
type ECMP struct{}

// Select implements Selector.
func (ECMP) Select(pkt *packet.Packet, cands []int, ctx Context) int {
	return cands[ECMPIndex(pkt.Key(), ctx.Seed(), len(cands))]
}

// Name implements Selector.
func (ECMP) Name() string { return "ecmp" }

// RandomSpray picks a uniformly random candidate per packet (random packet
// spraying, RPS [13]).
type RandomSpray struct{}

// Select implements Selector. A single candidate is returned without
// consuming a random draw: degraded fabrics (failed links leaving one uplink)
// must not perturb the shared per-switch RNG stream for a decision with no
// freedom, or the failure would shift every later spray decision on the
// switch.
func (RandomSpray) Select(_ *packet.Packet, cands []int, ctx Context) int {
	if len(cands) == 1 {
		return cands[0]
	}
	return cands[ctx.Rand().Intn(len(cands))]
}

// Name implements Selector.
func (RandomSpray) Name() string { return "rps" }

// Adaptive picks the candidate with the shortest egress queue, breaking ties
// by the flow hash so that an idle fabric still spreads flows. This models
// per-packet adaptive routing as deployed in AI fabrics.
type Adaptive struct{}

// Select implements Selector. The winner is the first minimum-queue
// candidate in rotation order starting from the flow-hash position, so ties
// genuinely spread by flow hash rather than collapsing onto cands[0].
func (Adaptive) Select(pkt *packet.Packet, cands []int, ctx Context) int {
	start := ECMPIndex(pkt.Key(), ctx.Seed(), len(cands))
	best := cands[start]
	bestQ := ctx.QueueBytes(best)
	for i := 1; i < len(cands); i++ {
		c := cands[(start+i)%len(cands)]
		if q := ctx.QueueBytes(c); q < bestQ {
			best, bestQ = c, q
		}
	}
	return best
}

// Name implements Selector.
func (Adaptive) Name() string { return "adaptive" }

// PSNSpray implements Eq. 1: path_i = (PSN_i mod N + P_base) mod N, with
// P_base derived from the flow's ECMP hash. It is exported for direct use as
// a plain selector (the "2-tier" deployment of Themis-S, §3.2) and reused by
// package core.
type PSNSpray struct{}

// Select implements Selector. Control packets fall back to ECMP: the policy
// sprays only data packets, whose PSNs are meaningful.
func (PSNSpray) Select(pkt *packet.Packet, cands []int, ctx Context) int {
	n := len(cands)
	if pkt.Kind != packet.Data {
		return cands[ECMPIndex(pkt.Key(), ctx.Seed(), n)]
	}
	return cands[SprayIndex(pkt.PSN, Hash(pkt.Key())^ctx.Seed(), n)]
}

// Name implements Selector.
func (PSNSpray) Name() string { return "psn-spray" }

// SprayIndex computes Eq. 1's path index for a PSN given the flow's hash and
// the path count n.
func SprayIndex(psn packet.PSN, flowHash uint32, n int) int {
	base := Index(flowHash, n)
	return (psn.Mod(n) + base) % n
}
