package lb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"themis/internal/packet"
	"themis/internal/sim"
)

// fakeCtx implements Context for tests.
type fakeCtx struct {
	now    sim.Time
	queues map[int]int
	rng    *rand.Rand
	seed   uint32
}

func newFakeCtx() *fakeCtx {
	return &fakeCtx{queues: make(map[int]int), rng: rand.New(rand.NewSource(7))}
}

func (c *fakeCtx) Now() sim.Time        { return c.now }
func (c *fakeCtx) QueueBytes(p int) int { return c.queues[p] }
func (c *fakeCtx) Rand() *rand.Rand     { return c.rng }
func (c *fakeCtx) Seed() uint32         { return c.seed }

func dataPkt(src, dst packet.NodeID, sport uint16, psn packet.PSN) *packet.Packet {
	return &packet.Packet{Kind: packet.Data, Src: src, Dst: dst, SPort: sport, DPort: 4791, PSN: psn, Payload: 1000}
}

func TestHashDeterministic(t *testing.T) {
	k := packet.FlowKey{Src: 1, Dst: 2, SPort: 100, DPort: 4791}
	if Hash(k) != Hash(k) {
		t.Fatal("hash not deterministic")
	}
	k2 := k
	k2.SPort = 101
	if Hash(k) == Hash(k2) {
		t.Fatal("sport change should change hash")
	}
}

// CRC32 linearity: Hash(k ^ d) ^ Hash(k) depends only on d, not k. This is
// the property PathMap construction relies on (§3.2).
func TestHashXORLinearityInSport(t *testing.T) {
	delta := func(k packet.FlowKey, d uint16) uint32 {
		kd := k
		kd.SPort ^= d
		return Hash(kd) ^ Hash(k)
	}
	f := func(src, dst int32, sportA, sportB, d uint16) bool {
		ka := packet.FlowKey{Src: packet.NodeID(src), Dst: packet.NodeID(dst), SPort: sportA, DPort: 4791}
		kb := packet.FlowKey{Src: packet.NodeID(dst), Dst: packet.NodeID(src), SPort: sportB, DPort: 4791}
		return delta(ka, d) == delta(kb, d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexPowerOfTwoAndModulo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 16, 256} {
		for _, h := range []uint32{0, 1, 12345, 1 << 31} {
			if got, want := Index(h, n), int(h)&(n-1); got != want {
				t.Fatalf("Index(%d,%d) = %d want %d", h, n, got, want)
			}
		}
	}
	if got := Index(10, 3); got != 1 {
		t.Fatalf("Index(10,3) = %d", got)
	}
}

func TestIndexPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Index(1, 0)
}

func TestECMPStickyPerFlow(t *testing.T) {
	cands := []int{2, 3, 4, 5}
	ctx := newFakeCtx()
	var sel ECMP
	first := sel.Select(dataPkt(1, 2, 100, 0), cands, ctx)
	for psn := packet.PSN(1); psn < 100; psn++ {
		if got := sel.Select(dataPkt(1, 2, 100, psn), cands, ctx); got != first {
			t.Fatal("ECMP moved a flow across paths")
		}
	}
	if sel.Name() != "ecmp" {
		t.Fatal("name")
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	cands := []int{0, 1, 2, 3, 4, 5, 6, 7}
	ctx := newFakeCtx()
	var sel ECMP
	seen := map[int]int{}
	for sport := uint16(0); sport < 512; sport++ {
		seen[sel.Select(dataPkt(1, 2, sport, 0), cands, ctx)]++
	}
	for _, c := range cands {
		if seen[c] == 0 {
			t.Fatalf("ECMP never used port %d: %v", c, seen)
		}
	}
}

func TestRandomSprayUniform(t *testing.T) {
	cands := []int{10, 11, 12, 13}
	ctx := newFakeCtx()
	var sel RandomSpray
	counts := map[int]int{}
	p := dataPkt(1, 2, 100, 0)
	for i := 0; i < 4000; i++ {
		counts[sel.Select(p, cands, ctx)]++
	}
	for _, c := range cands {
		if counts[c] < 800 || counts[c] > 1200 {
			t.Fatalf("random spray skewed: %v", counts)
		}
	}
}

func TestAdaptivePicksShortestQueue(t *testing.T) {
	cands := []int{0, 1, 2, 3}
	ctx := newFakeCtx()
	ctx.queues[0] = 500
	ctx.queues[1] = 100
	ctx.queues[2] = 900
	ctx.queues[3] = 100
	var sel Adaptive
	got := sel.Select(dataPkt(1, 2, 100, 0), cands, ctx)
	if ctx.queues[got] != 100 {
		t.Fatalf("adaptive picked port %d with queue %d", got, ctx.queues[got])
	}
}

func TestAdaptiveReturnsCandidate(t *testing.T) {
	f := func(src, dst int32, sport uint16, qa, qb, qc uint16) bool {
		cands := []int{5, 9, 11}
		ctx := newFakeCtx()
		ctx.queues[5], ctx.queues[9], ctx.queues[11] = int(qa), int(qb), int(qc)
		got := Adaptive{}.Select(dataPkt(packet.NodeID(src), packet.NodeID(dst), sport, 0), cands, ctx)
		if !contains(cands, got) {
			return false
		}
		min := int(qa)
		if int(qb) < min {
			min = int(qb)
		}
		if int(qc) < min {
			min = int(qc)
		}
		return ctx.queues[got] == min
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPSNSprayEq1(t *testing.T) {
	cands := []int{4, 5, 6, 7} // N = 4
	ctx := newFakeCtx()
	var sel PSNSpray
	p0 := dataPkt(1, 2, 100, 0)
	base := Index(Hash(p0.Key()), 4)
	for psn := packet.PSN(0); psn < 64; psn++ {
		p := dataPkt(1, 2, 100, psn)
		want := cands[(int(psn%4)+base)%4]
		if got := sel.Select(p, cands, ctx); got != want {
			t.Fatalf("psn %d: got %d want %d", psn, got, want)
		}
	}
}

func TestPSNSprayControlFallsBackToECMP(t *testing.T) {
	cands := []int{0, 1, 2, 3}
	ctx := newFakeCtx()
	var sel PSNSpray
	ack := &packet.Packet{Kind: packet.Ack, Src: 2, Dst: 1, SPort: 99, DPort: 4791, PSN: 5}
	want := ECMP{}.Select(ack, cands, ctx)
	for i := 0; i < 10; i++ {
		ack.PSN = packet.PSN(i)
		if got := sel.Select(ack, cands, ctx); got != want {
			t.Fatal("control packets must be ECMP-routed, independent of PSN")
		}
	}
}

// The core property behind Eq. 3: two PSNs map to the same path iff they are
// congruent mod N.
func TestSprayIndexCongruenceProperty(t *testing.T) {
	f := func(psnA, psnB, flowHash uint32, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		same := SprayIndex(packet.PSN(psnA), flowHash, n) == SprayIndex(packet.PSN(psnB), flowHash, n)
		return same == (psnA%uint32(n) == psnB%uint32(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Uniformity: over n consecutive PSNs every path is used exactly once.
func TestSprayIndexUniform(t *testing.T) {
	for n := 1; n <= 16; n++ {
		seen := make(map[int]int)
		for psn := 0; psn < n; psn++ {
			seen[SprayIndex(packet.PSN(psn), 0xdeadbeef, n)]++
		}
		if len(seen) != n {
			t.Fatalf("n=%d: used %d distinct paths", n, len(seen))
		}
	}
}

func TestFlowletSticksWithinGap(t *testing.T) {
	fl := NewFlowlet(10 * sim.Microsecond)
	cands := []int{0, 1, 2, 3}
	ctx := newFakeCtx()
	p := dataPkt(1, 2, 100, 0)
	first := fl.Select(p, cands, ctx)
	for i := 0; i < 50; i++ {
		ctx.now = ctx.now.Add(sim.Microsecond) // gaps below timeout
		if got := fl.Select(p, cands, ctx); got != first {
			t.Fatal("flowlet switched paths within gap")
		}
	}
	if fl.Entries() != 1 {
		t.Fatalf("entries = %d", fl.Entries())
	}
}

func TestFlowletSwitchesAfterGap(t *testing.T) {
	fl := NewFlowlet(10 * sim.Microsecond)
	cands := []int{0, 1}
	ctx := newFakeCtx()
	p := dataPkt(1, 2, 100, 0)
	first := fl.Select(p, cands, ctx)
	// Make the current path look congested and wait past the gap.
	ctx.queues[first] = 1 << 20
	ctx.now = ctx.now.Add(11 * sim.Microsecond)
	if got := fl.Select(p, cands, ctx); got == first {
		t.Fatal("flowlet failed to re-balance after gap")
	}
}

func TestFlowletRebalancesOnInvalidPort(t *testing.T) {
	fl := NewFlowlet(10 * sim.Microsecond)
	ctx := newFakeCtx()
	p := dataPkt(1, 2, 100, 0)
	first := fl.Select(p, []int{0, 1}, ctx)
	// Candidate set shrinks (link failure): cached port may disappear.
	remaining := []int{1 - first}
	ctx.now = ctx.now.Add(sim.Nanosecond)
	if got := fl.Select(p, remaining, ctx); got != remaining[0] {
		t.Fatal("flowlet returned a non-candidate port")
	}
}

func TestFlowletZeroGapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFlowlet(0)
}

func TestSelectorNames(t *testing.T) {
	names := map[string]Selector{
		"ecmp":      ECMP{},
		"rps":       RandomSpray{},
		"adaptive":  Adaptive{},
		"psn-spray": PSNSpray{},
		"flowlet":   NewFlowlet(sim.Microsecond),
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("Name() = %q want %q", s.Name(), want)
		}
	}
}

// gf32Mul is the per-switch seeding transform; ECMPIndex's correctness
// arguments need it to be GF(2)-linear and invertible.
func TestGF32MulDistributesOverXOR(t *testing.T) {
	f := func(a, b, c uint32) bool {
		return gf32Mul(a^b, c) == gf32Mul(a, c)^gf32Mul(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGF32MulNoZeroDivisors(t *testing.T) {
	f := func(a, b uint32) bool {
		if a == 0 || b == 0 {
			return gf32Mul(a, b) == 0
		}
		return gf32Mul(a, b) != 0 // field: nonzero * nonzero != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGF32MulCommutes(t *testing.T) {
	f := func(a, b uint32) bool { return gf32Mul(a, b) == gf32Mul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Different tiers must decide on genuinely different hash subspaces: for a
// decent fraction of flows, tier 0 and tier 1 pick different indices.
func TestTierSeedsDecorrelate(t *testing.T) {
	differ := 0
	const flows = 1024
	for i := 0; i < flows; i++ {
		k := packet.FlowKey{Src: 1, Dst: 2, SPort: uint16(i), DPort: 4791}
		if ECMPIndex(k, TierSeed(0), 4) != ECMPIndex(k, TierSeed(1), 4) {
			differ++
		}
	}
	// Perfect decorrelation gives ~75%; anything near zero means
	// polarization is back.
	if differ < flows/2 {
		t.Fatalf("tiers correlated: only %d/%d differ", differ, flows)
	}
}

// TestAdaptiveTieBreakFirstInRotation pins the deterministic tie-break: among
// equal shortest queues, Adaptive returns the first minimum encountered
// scanning from the flow's hash-derived rotation start — never a
// scan-order-dependent or RNG-dependent choice.
func TestAdaptiveTieBreakFirstInRotation(t *testing.T) {
	cands := []int{0, 1, 2, 3}
	cases := []struct {
		name   string
		queues map[int]int
	}{
		{"all-equal", map[int]int{0: 5, 1: 5, 2: 5, 3: 5}},
		{"two-way-tie", map[int]int{0: 9, 1: 3, 2: 3, 3: 9}},
		{"tie-wraps-rotation", map[int]int{0: 1, 1: 7, 2: 7, 3: 1}},
		{"unique-min", map[int]int{0: 4, 1: 2, 2: 8, 3: 6}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for sport := uint16(0); sport < 64; sport++ {
				ctx := newFakeCtx()
				for p, q := range tc.queues {
					ctx.queues[p] = q
				}
				p := dataPkt(1, 2, sport, 0)
				got := Adaptive{}.Select(p, cands, ctx)
				// Reference: walk the rotation from the hash start and take
				// the first strict minimum.
				start := ECMPIndex(p.Key(), ctx.Seed(), len(cands))
				want := cands[start]
				for i := 1; i < len(cands); i++ {
					c := cands[(start+i)%len(cands)]
					if ctx.queues[c] < ctx.queues[want] {
						want = c
					}
				}
				if got != want {
					t.Fatalf("sport %d: got %d want %d (start %d)", sport, got, want, start)
				}
			}
		})
	}
}

// TestAdaptiveTieBreakSpreadsFlows: because the rotation start is per-flow,
// an all-tied fabric still spreads different flows across all ports instead
// of polarizing onto the lowest-indexed candidate.
func TestAdaptiveTieBreakSpreadsFlows(t *testing.T) {
	cands := []int{0, 1, 2, 3}
	ctx := newFakeCtx()
	seen := map[int]int{}
	for sport := uint16(0); sport < 256; sport++ {
		seen[Adaptive{}.Select(dataPkt(1, 2, sport, 0), cands, ctx)]++
	}
	for _, c := range cands {
		if seen[c] == 0 {
			t.Fatalf("tied queues polarized away from port %d: %v", c, seen)
		}
	}
}

// TestRandomSpraySingleCandidateDrawsNoRNG is the regression for the
// degraded-fabric determinism bug: with one live candidate there is no choice
// to make, and drawing from the shared per-switch RNG anyway would perturb
// every later decision on that switch relative to a healthy run.
func TestRandomSpraySingleCandidateDrawsNoRNG(t *testing.T) {
	var sel RandomSpray
	p := dataPkt(1, 2, 100, 0)
	// Interleave single-candidate selections into one context but not the
	// other; the multi-candidate decision stream must stay identical.
	a, b := newFakeCtx(), newFakeCtx()
	multi := []int{3, 4, 5, 6}
	for i := 0; i < 64; i++ {
		if got := sel.Select(p, []int{9}, a); got != 9 {
			t.Fatalf("single candidate: got %d", got)
		}
		ga, gb := sel.Select(p, multi, a), sel.Select(p, multi, b)
		if ga != gb {
			t.Fatalf("decision %d diverged: %d vs %d — single-candidate select consumed RNG", i, ga, gb)
		}
	}
}

// TestFlowletTableBounded is the flow-churn regression: one packet each from
// a long stream of distinct flows must not grow the table monotonically — the
// amortized sweep has to evict idle entries, keeping occupancy proportional
// to the flows active inside the idle window, not to total flows ever seen.
func TestFlowletTableBounded(t *testing.T) {
	gap := 10 * sim.Microsecond
	fl := NewFlowlet(gap)
	cands := []int{0, 1, 2, 3}
	ctx := newFakeCtx()
	const flows = 20000
	peak := 0
	for i := 0; i < flows; i++ {
		ctx.now = ctx.now.Add(sim.Microsecond)
		fl.Select(dataPkt(1, 2, uint16(i), packet.PSN(i)), cands, ctx)
		if n := fl.Entries(); n > peak {
			peak = n
		}
	}
	// Each flow is idle after its single packet; the idle window spans
	// flowletIdleFactor×gap = 160 µs = 160 new flows at this arrival rate.
	// The sweep retires up to 2 entries per select against 1 insertion, so
	// occupancy must stay within a small multiple of the window — far below
	// the 20000 keys offered.
	bound := 4 * flowletIdleFactor * int(gap/sim.Microsecond)
	if peak > bound {
		t.Fatalf("flowlet table peaked at %d entries (bound %d) over %d flows", peak, bound, flows)
	}
	// And long-idle state must eventually vanish entirely: advance far past
	// the window and let the sweep run on a single revisiting flow.
	ctx.now = ctx.now.Add(sim.Second)
	for i := 0; i < flows; i++ {
		fl.Select(dataPkt(1, 2, 7, 0), cands, ctx)
		ctx.now = ctx.now.Add(sim.Nanosecond)
	}
	if n := fl.Entries(); n != 1 {
		t.Fatalf("stale entries survived: %d", n)
	}
}

// TestFlowletSweepPreservesDecisions: eviction is invisible to routing — a
// flow revisited after eviction re-balances exactly like one whose entry
// survived past the gap, because both paths run the same stateless Adaptive
// choice.
func TestFlowletSweepPreservesDecisions(t *testing.T) {
	gap := 10 * sim.Microsecond
	cands := []int{0, 1, 2, 3}
	p := dataPkt(1, 2, 100, 0)

	// Arm A: entry evicted (idle far past the factor), then revisited.
	fa := NewFlowlet(gap)
	ca := newFakeCtx()
	fa.Select(p, cands, ca)
	ca.now = ca.now.Add(sim.Second)
	// Churn unrelated flows so the sweep hand passes the stale entry.
	for i := 0; i < 8; i++ {
		fa.Select(dataPkt(3, 4, uint16(i), 0), cands, ca)
	}
	gotA := fa.Select(p, cands, ca)

	// Arm B: entry still resident, gap expired.
	fb := NewFlowlet(gap)
	cb := newFakeCtx()
	fb.Select(p, cands, cb)
	cb.now = cb.now.Add(sim.Second)
	for i := 0; i < 8; i++ {
		fb.Select(dataPkt(3, 4, uint16(i), 0), cands, cb)
	}
	gotB := fb.Select(p, cands, cb)

	if gotA != gotB {
		t.Fatalf("eviction changed a routing decision: %d vs %d", gotA, gotB)
	}
}

// TestIndexNonPowerOfTwoInRange: for every n > 0 (not just powers of two)
// Index returns h mod n, in [0, n) — the modulo path must agree with the
// documented contract, not just the masked fast path.
func TestIndexNonPowerOfTwoInRange(t *testing.T) {
	f := func(h uint32, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		got := Index(h, n)
		return got == int(h%uint32(n)) && got >= 0 && got < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestGF32MulSeedOr1Invertible: seeding with seed|1 guarantees a nonzero
// multiplier, and multiplication by a nonzero field element is injective — so
// per-switch seeding permutes the hash space instead of collapsing it. This
// is the property that keeps ECMPIndex collision-free across hash inputs.
func TestGF32MulSeedOr1Invertible(t *testing.T) {
	f := func(h1, h2, seed uint32) bool {
		s := seed | 1
		if h1 == h2 {
			return gf32Mul(h1, s) == gf32Mul(h2, s)
		}
		return gf32Mul(h1, s) != gf32Mul(h2, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
