package lb

import "themis/internal/packet"

// Defaults for CongestionAware. The gain mirrors DCQCN's g (1/16), clocked
// per decision rather than per timer tick; the threshold marks a port
// congested once half its recent observations were over MarkBytes.
const (
	DefaultCongestionGain      = 1.0 / 16
	DefaultCongestionThreshold = 0.5
)

// CongestionAware is the switch-local congestion-aware spraying arm
// (PAPERS.md: "Congestion Control for Spraying with Congested Paths"): it
// keeps a per-egress-port EWMA of a binary congestion indicator (queue depth
// at or over MarkBytes — the same Kmin knee the ECN marker uses) and biases
// the spray away from ports whose estimate exceeds Threshold. State lives in
// the switch instance like flowlet state does; packets still spread by the
// per-packet entropy the sender stamps, so the arm sprays, it just sprays
// around hotspots.
//
// Selection is fully deterministic: the rotation start comes from the packet
// key hash (which varies per packet under a spraying entropy source), the
// estimate update walks candidates in slice order, and no RNG is drawn.
type CongestionAware struct {
	// MarkBytes is the queue depth treated as a congestion signal — the
	// ECN-marking knee of the attached links.
	MarkBytes int
	// Gain is the EWMA gain applied per decision.
	Gain float64
	// Threshold is the estimate above which a port is skipped while any
	// candidate sits below it.
	Threshold float64
	// ewma holds the per-port congestion estimate, indexed by port number.
	ewma []float64
}

// NewCongestionAware returns a congestion-aware selector. markBytes must be
// positive; gain and threshold fall back to the defaults when <= 0.
func NewCongestionAware(markBytes int, gain, threshold float64) *CongestionAware {
	if markBytes <= 0 {
		panic("lb: CongestionAware needs a positive marking threshold")
	}
	if gain <= 0 {
		gain = DefaultCongestionGain
	}
	if threshold <= 0 {
		threshold = DefaultCongestionThreshold
	}
	return &CongestionAware{MarkBytes: markBytes, Gain: gain, Threshold: threshold}
}

// Select implements Selector: update every candidate's estimate from its
// instantaneous queue, then take the first candidate in rotation order from
// the packet-hash position whose estimate is below Threshold — or, when all
// paths look congested, the least-congested one (first in rotation on ties).
func (s *CongestionAware) Select(pkt *packet.Packet, cands []int, ctx Context) int {
	n := len(cands)
	for _, c := range cands {
		if c >= len(s.ewma) {
			grown := make([]float64, c+1) //lint:alloc-ok per-port table growth happens once per new port number, not per packet
			copy(grown, s.ewma)
			s.ewma = grown
		}
		m := 0.0
		if ctx.QueueBytes(c) >= s.MarkBytes {
			m = 1.0
		}
		s.ewma[c] = (1-s.Gain)*s.ewma[c] + s.Gain*m
	}
	start := Index(gf32Mul(Hash(pkt.Key()), ctx.Seed()|1), n)
	best := cands[start]
	bestE := s.ewma[best]
	for i := 0; i < n; i++ {
		c := cands[(start+i)%n]
		if e := s.ewma[c]; e < s.Threshold {
			return c
		} else if e < bestE {
			best, bestE = c, e
		}
	}
	return best
}

// Name implements Selector.
func (s *CongestionAware) Name() string { return "congestion-aware" }

// Estimate returns the current congestion estimate for a port (0 for ports
// never observed) — exposed for tests and state-size accounting.
func (s *CongestionAware) Estimate(port int) float64 {
	if port >= len(s.ewma) {
		return 0
	}
	return s.ewma[port]
}
