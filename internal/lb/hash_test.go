package lb

import (
	"hash/crc32"
	"testing"
	"testing/quick"

	"themis/internal/packet"
)

// TestHashMatchesStdlibCRC32 pins the table-driven hashers to the stdlib
// checksum they replaced for allocation-freedom: any divergence would silently
// re-route every ECMP flow and invalidate golden results.
func TestHashMatchesStdlibCRC32(t *testing.T) {
	ref := func(k packet.FlowKey) uint32 {
		b := []byte{
			byte(k.Src), byte(k.Src >> 8), byte(k.Src >> 16), byte(k.Src >> 24),
			byte(k.Dst), byte(k.Dst >> 8), byte(k.Dst >> 16), byte(k.Dst >> 24),
			byte(k.SPort), byte(k.SPort >> 8),
			byte(k.DPort), byte(k.DPort >> 8),
		}
		return crc32.ChecksumIEEE(b)
	}
	if err := quick.Check(func(src, dst uint32, sport, dport uint16) bool {
		k := packet.FlowKey{Src: packet.NodeID(src), Dst: packet.NodeID(dst), SPort: sport, DPort: dport}
		return Hash(k) == ref(k)
	}, nil); err != nil {
		t.Fatal(err)
	}
	for swID := 0; swID < 1<<10; swID++ {
		want := crc32.ChecksumIEEE([]byte{byte(swID), byte(swID >> 8), byte(swID >> 16), 0x5a})
		if got := SwitchSeed(swID); got != want {
			t.Fatalf("SwitchSeed(%d) = %#x, want %#x", swID, got, want)
		}
	}
	for tier := 0; tier < 8; tier++ {
		want := crc32.ChecksumIEEE([]byte{byte(tier), 0xc3, 0x96, 0x69})
		if got := TierSeed(tier); got != want {
			t.Fatalf("TierSeed(%d) = %#x, want %#x", tier, got, want)
		}
	}
}

// TestHashZeroAlloc guards the escape-analysis property the rewrite bought.
func TestHashZeroAlloc(t *testing.T) {
	k := packet.FlowKey{Src: 3, Dst: 9, SPort: 1000, DPort: 4791}
	var sink uint32
	allocs := testing.AllocsPerRun(1000, func() {
		sink += Hash(k) + TierSeed(1) + SwitchSeed(2)
	})
	if allocs != 0 {
		t.Fatalf("hashing allocates %.1f/op", allocs)
	}
	_ = sink
}
