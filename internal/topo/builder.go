package topo

import (
	"fmt"

	"themis/internal/packet"
	"themis/internal/sim"
)

// Builder assembles a Topology incrementally. Typical use:
//
//	b := topo.NewBuilder()
//	leaf := b.AddSwitch("leaf0", 0)
//	spine := b.AddSwitch("spine0", 1)
//	b.Connect(leaf, spine, 400e9, sim.Microsecond)
//	h := b.AddHost(leaf, 400e9, sim.Microsecond)
//	t, err := b.Build()
type Builder struct {
	switches []*Switch
	attach   []Attach
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// AddSwitch adds a switch at the given tier and returns its ID.
func (b *Builder) AddSwitch(name string, tier int) int {
	id := len(b.switches)
	b.switches = append(b.switches, &Switch{
		ID:       id,
		Name:     name,
		Tier:     tier,
		hostPort: make(map[packet.NodeID]int),
	})
	return id
}

// AddHost attaches a new host to switch sw over a link with the given rate
// and delay, returning the host's NodeID.
func (b *Builder) AddHost(sw int, bw int64, delay sim.Duration) packet.NodeID {
	h := packet.NodeID(len(b.attach))
	s := b.switches[sw]
	port := len(s.Ports)
	s.Ports = append(s.Ports, Port{
		Bandwidth:  bw,
		Delay:      delay,
		PeerSwitch: -1,
		PeerPort:   -1,
		Host:       h,
	})
	s.hostPort[h] = port
	b.attach = append(b.attach, Attach{Switch: sw, Port: port, Bandwidth: bw, Delay: delay})
	return h
}

// Connect links two switches with a bidirectional link and returns the port
// indices allocated on each side.
func (b *Builder) Connect(a, c int, bw int64, delay sim.Duration) (portA, portC int) {
	sa, sc := b.switches[a], b.switches[c]
	portA, portC = len(sa.Ports), len(sc.Ports)
	sa.Ports = append(sa.Ports, Port{Bandwidth: bw, Delay: delay, PeerSwitch: c, PeerPort: portC, Host: -1})
	sc.Ports = append(sc.Ports, Port{Bandwidth: bw, Delay: delay, PeerSwitch: a, PeerPort: portA, Host: -1})
	return portA, portC
}

// Build computes the equal-cost routing tables and validates the topology.
func (b *Builder) Build() (*Topology, error) {
	t := &Topology{switches: b.switches, attach: b.attach}
	n := len(b.switches)
	if n == 0 {
		return nil, fmt.Errorf("topo: no switches")
	}
	t.dist = make([][]int, n)
	t.routes = make([][][]int, n)
	for sw := range t.routes {
		t.routes[sw] = make([][]int, n)
	}
	// BFS from every switch that hosts at least one host (a potential
	// destination ToR); derive candidate ports on every other switch.
	for dst := 0; dst < n; dst++ {
		dist := bfs(b.switches, dst)
		t.dist[dst] = dist // dist from dst to each sw == sw to dst (undirected)
		for sw := 0; sw < n; sw++ {
			if sw == dst {
				continue
			}
			if dist[sw] < 0 {
				continue // unreachable; left empty, Validate of routes below
			}
			var cands []int
			for pi, p := range b.switches[sw].Ports {
				if p.IsHostPort() {
					continue
				}
				if dist[p.PeerSwitch] == dist[sw]-1 {
					cands = append(cands, pi)
				}
			}
			t.routes[sw][dst] = cands
		}
	}
	// dist is symmetric for undirected graphs; store as dist[sw][dst].
	d := make([][]int, n)
	for sw := 0; sw < n; sw++ {
		d[sw] = make([]int, n)
		for dst := 0; dst < n; dst++ {
			d[sw][dst] = t.dist[dst][sw]
		}
	}
	t.dist = d
	if err := t.Validate(); err != nil {
		return nil, err
	}
	// Every host pair must be connected.
	for h := range b.attach {
		tor := b.attach[h].Switch
		for g := range b.attach {
			gtor := b.attach[g].Switch
			if tor != gtor && t.dist[tor][gtor] < 0 {
				return nil, fmt.Errorf("topo: hosts %d and %d are disconnected", h, g)
			}
		}
	}
	return t, nil
}

// bfs returns hop distances from src over the switch graph (-1 unreachable).
func bfs(switches []*Switch, src int) []int {
	dist := make([]int, len(switches))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		sw := queue[0]
		queue = queue[1:]
		for _, p := range switches[sw].Ports {
			if p.IsHostPort() {
				continue
			}
			if dist[p.PeerSwitch] < 0 {
				dist[p.PeerSwitch] = dist[sw] + 1
				queue = append(queue, p.PeerSwitch)
			}
		}
	}
	return dist
}
