package topo

import (
	"fmt"

	"themis/internal/sim"
)

// LinkSpec bundles the rate and propagation delay of one link class.
type LinkSpec struct {
	Bandwidth int64        // bits per second
	Delay     sim.Duration // one-way propagation delay
}

// LeafSpineConfig parameterizes a 2-tier Clos (leaf-spine) fabric. With
// HostLink == FabricLink and Spines == HostsPerLeaf the fabric has 1:1
// subscription, as in the paper's evaluation (§5).
type LeafSpineConfig struct {
	Leaves       int // number of leaf (ToR) switches
	Spines       int // number of spine switches
	HostsPerLeaf int
	HostLink     LinkSpec // host <-> leaf links
	FabricLink   LinkSpec // leaf <-> spine links
}

// NewLeafSpine builds a leaf-spine fabric. Host NodeIDs are assigned
// leaf-major: host h lives on leaf h / HostsPerLeaf. Every leaf connects to
// every spine, so there are exactly Spines equal-cost paths between hosts in
// different racks, and a leaf's uplink port for spine s is port
// HostsPerLeaf+s (host ports come first).
func NewLeafSpine(cfg LeafSpineConfig) (*Topology, error) {
	if cfg.Leaves <= 0 || cfg.Spines <= 0 || cfg.HostsPerLeaf <= 0 {
		return nil, fmt.Errorf("topo: leaf-spine dimensions must be positive: %+v", cfg)
	}
	b := NewBuilder()
	leaves := make([]int, cfg.Leaves)
	for i := range leaves {
		leaves[i] = b.AddSwitch(fmt.Sprintf("leaf%d", i), 0)
	}
	spines := make([]int, cfg.Spines)
	for i := range spines {
		spines[i] = b.AddSwitch(fmt.Sprintf("spine%d", i), 1)
	}
	for _, l := range leaves {
		for h := 0; h < cfg.HostsPerLeaf; h++ {
			b.AddHost(l, cfg.HostLink.Bandwidth, cfg.HostLink.Delay)
		}
		for _, s := range spines {
			b.Connect(l, s, cfg.FabricLink.Bandwidth, cfg.FabricLink.Delay)
		}
	}
	return b.Build()
}

// FatTreeConfig parameterizes a 3-tier fat-tree [Al-Fares et al.] with switch
// port count K (must be even). The fabric has K pods; each pod has K/2 edge
// (ToR) and K/2 aggregation switches; there are (K/2)^2 core switches and
// K^3/4 hosts. Between hosts in different pods there are (K/2)^2 equal-cost
// paths.
type FatTreeConfig struct {
	K          int
	HostLink   LinkSpec
	FabricLink LinkSpec
}

// NewFatTree builds a K-ary fat-tree. Host NodeIDs are assigned pod-major,
// edge-major: host h lives in pod h/(K/2)^2, on edge switch (h mod (K/2)^2)/(K/2).
func NewFatTree(cfg FatTreeConfig) (*Topology, error) {
	k := cfg.K
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree K must be even and >= 2, got %d", k)
	}
	half := k / 2
	b := NewBuilder()
	// Edge and aggregation switches per pod.
	edges := make([][]int, k) // edges[pod][i]
	aggs := make([][]int, k)  // aggs[pod][i]
	for pod := 0; pod < k; pod++ {
		edges[pod] = make([]int, half)
		aggs[pod] = make([]int, half)
		for i := 0; i < half; i++ {
			edges[pod][i] = b.AddSwitch(fmt.Sprintf("edge%d.%d", pod, i), 0)
		}
		for i := 0; i < half; i++ {
			aggs[pod][i] = b.AddSwitch(fmt.Sprintf("agg%d.%d", pod, i), 1)
		}
	}
	// Core switches: (k/2)^2, organized in half groups of half; core group g
	// connects to aggregation switch g of every pod.
	cores := make([][]int, half)
	for g := 0; g < half; g++ {
		cores[g] = make([]int, half)
		for j := 0; j < half; j++ {
			cores[g][j] = b.AddSwitch(fmt.Sprintf("core%d.%d", g, j), 2)
		}
	}
	for pod := 0; pod < k; pod++ {
		for i := 0; i < half; i++ {
			// Hosts first so host ports precede uplinks on edge switches.
			for h := 0; h < half; h++ {
				b.AddHost(edges[pod][i], cfg.HostLink.Bandwidth, cfg.HostLink.Delay)
			}
			// Edge i connects to every aggregation switch in its pod.
			for a := 0; a < half; a++ {
				b.Connect(edges[pod][i], aggs[pod][a], cfg.FabricLink.Bandwidth, cfg.FabricLink.Delay)
			}
		}
		// Aggregation g connects to all cores in group g.
		for g := 0; g < half; g++ {
			for j := 0; j < half; j++ {
				b.Connect(aggs[pod][g], cores[g][j], cfg.FabricLink.Bandwidth, cfg.FabricLink.Delay)
			}
		}
	}
	return b.Build()
}
