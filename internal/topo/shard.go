package topo

import (
	"fmt"

	"themis/internal/packet"
	"themis/internal/sim"
)

// Partition assigns every switch and host of a topology to one of Shards
// space-parallel engine shards (see sim.ShardGroup). The partition rule is
// rack-granular: a ToR and all of its hosts always land in the same shard,
// so host<->ToR traffic (the only zero- or near-zero-latency interaction in
// the model) never crosses a shard boundary.
type Partition struct {
	Shards      int
	SwitchShard []int // indexed by switch ID
	HostShard   []int // indexed by host NodeID
}

// PartitionRacks computes the canonical rack partition: tier-0 switches with
// attached hosts ("racks") are dealt round-robin to shards in switch-ID
// order, each host follows its ToR, and the remaining switches (spines,
// aggregations, cores, host-less edges) are dealt round-robin in switch-ID
// order as well. shards == 1 yields the degenerate single-shard partition
// with no cross-shard links.
func PartitionRacks(t *Topology, shards int) (Partition, error) {
	if shards < 1 {
		return Partition{}, fmt.Errorf("topo: partition needs at least 1 shard, got %d", shards)
	}
	p := Partition{
		Shards:      shards,
		SwitchShard: make([]int, t.NumSwitches()),
		HostShard:   make([]int, t.NumHosts()),
	}
	racks, others := 0, 0
	for _, sw := range t.Switches() {
		isRack := sw.Tier == 0 && len(sw.Hosts()) > 0
		if isRack {
			p.SwitchShard[sw.ID] = racks % shards
			racks++
		} else {
			p.SwitchShard[sw.ID] = others % shards
			others++
		}
	}
	if racks < shards {
		return Partition{}, fmt.Errorf("topo: %d shards but only %d racks — shards must not exceed rack count", shards, racks)
	}
	for h := 0; h < t.NumHosts(); h++ {
		p.HostShard[h] = p.SwitchShard[t.ToROf(packet.NodeID(h))]
	}
	return p, nil
}

// Lookahead returns the conservative synchronization window for a partition:
// the minimum one-way propagation delay over all cross-shard links. Any
// event a shard executes at time t can only reach another shard at t+W or
// later, which is what makes barrier-per-epoch synchronization with window W
// correct (see sim.ShardGroup). With no cross-shard links it returns
// sim.Duration(sim.Forever) — one epoch spans the whole run. A cross-shard
// link with zero propagation delay is an error: it would force zero-width
// epochs.
func Lookahead(t *Topology, p Partition) (sim.Duration, error) {
	w := sim.Duration(sim.Forever)
	for _, sw := range t.Switches() {
		for pi := range sw.Ports {
			port := &sw.Ports[pi]
			if port.PeerSwitch < 0 {
				continue // host links are intra-shard by construction
			}
			if p.SwitchShard[sw.ID] == p.SwitchShard[port.PeerSwitch] {
				continue
			}
			if port.Delay <= 0 {
				return 0, fmt.Errorf("topo: cross-shard link %s port %d has zero propagation delay; sharding needs a positive latency floor", sw.Name, pi)
			}
			if port.Delay < w {
				w = port.Delay
			}
		}
	}
	return w, nil
}
