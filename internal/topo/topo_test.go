package topo

import (
	"testing"
	"testing/quick"

	"themis/internal/packet"
	"themis/internal/sim"
)

var testLink = LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond}

func mustLeafSpine(t *testing.T, leaves, spines, hosts int) *Topology {
	t.Helper()
	tp, err := NewLeafSpine(LeafSpineConfig{
		Leaves: leaves, Spines: spines, HostsPerLeaf: hosts,
		HostLink: testLink, FabricLink: testLink,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestBuilderSimplePair(t *testing.T) {
	b := NewBuilder()
	s0 := b.AddSwitch("s0", 0)
	s1 := b.AddSwitch("s1", 0)
	b.Connect(s0, s1, 100e9, sim.Microsecond)
	h0 := b.AddHost(s0, 100e9, sim.Microsecond)
	h1 := b.AddHost(s1, 100e9, sim.Microsecond)
	tp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumHosts() != 2 || tp.NumSwitches() != 2 {
		t.Fatalf("dims: %d hosts %d switches", tp.NumHosts(), tp.NumSwitches())
	}
	if tp.ToROf(h0) != s0 || tp.ToROf(h1) != s1 {
		t.Fatal("ToROf wrong")
	}
	// Route from s0 to h1 goes over the single inter-switch port.
	c := tp.CandidatePorts(s0, h1)
	if len(c) != 1 {
		t.Fatalf("candidates = %v", c)
	}
	if got := tp.Switch(s0).Ports[c[0]].PeerSwitch; got != s1 {
		t.Fatalf("candidate peers %d", got)
	}
	// Local delivery port.
	c = tp.CandidatePorts(s0, h0)
	if len(c) != 1 || tp.Switch(s0).Ports[c[0]].Host != h0 {
		t.Fatalf("local candidates = %v", c)
	}
	if tp.Distance(s0, s1) != 1 || tp.Distance(s0, s0) != 0 {
		t.Fatal("distance wrong")
	}
}

func TestBuildEmptyFails(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Fatal("expected error for empty topology")
	}
}

func TestBuildDisconnectedFails(t *testing.T) {
	b := NewBuilder()
	s0 := b.AddSwitch("s0", 0)
	s1 := b.AddSwitch("s1", 0)
	b.AddHost(s0, 100e9, sim.Microsecond)
	b.AddHost(s1, 100e9, sim.Microsecond)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for disconnected hosts")
	}
}

func TestLeafSpineShape(t *testing.T) {
	tp := mustLeafSpine(t, 4, 4, 2)
	if tp.NumHosts() != 8 {
		t.Fatalf("hosts = %d", tp.NumHosts())
	}
	if tp.NumSwitches() != 8 {
		t.Fatalf("switches = %d", tp.NumSwitches())
	}
	// Host h is on leaf h/2.
	for h := 0; h < 8; h++ {
		if tp.ToROf(packet.NodeID(h)) != h/2 {
			t.Fatalf("host %d on leaf %d", h, tp.ToROf(packet.NodeID(h)))
		}
	}
	// Cross-rack: 4 equal-cost uplinks, ports 2..5 (after 2 host ports).
	c := tp.CandidatePorts(0, packet.NodeID(7))
	if len(c) != 4 {
		t.Fatalf("uplink candidates = %v", c)
	}
	for i, p := range c {
		if p != 2+i {
			t.Fatalf("uplink ports = %v, want [2 3 4 5]", c)
		}
	}
	if n := tp.PathCount(0, 7); n != 4 {
		t.Fatalf("PathCount = %d, want 4", n)
	}
	if n := tp.PathCount(0, 1); n != 1 {
		t.Fatalf("same-rack PathCount = %d, want 1", n)
	}
	// Spine switches must each have one port per leaf and no host ports.
	for sw := 4; sw < 8; sw++ {
		s := tp.Switch(sw)
		if s.Tier != 1 {
			t.Fatalf("switch %d tier = %d", sw, s.Tier)
		}
		if len(s.Ports) != 4 {
			t.Fatalf("spine %d has %d ports", sw, len(s.Ports))
		}
		for _, p := range s.Ports {
			if p.IsHostPort() {
				t.Fatal("spine has host port")
			}
		}
	}
}

func TestLeafSpinePaper16x16(t *testing.T) {
	// The §5 evaluation topology: 16 leaves x 16 spines x 16 hosts.
	tp, err := NewLeafSpine(LeafSpineConfig{
		Leaves: 16, Spines: 16, HostsPerLeaf: 16,
		HostLink:   LinkSpec{Bandwidth: 400e9, Delay: sim.Microsecond},
		FabricLink: LinkSpec{Bandwidth: 400e9, Delay: sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumHosts() != 256 {
		t.Fatalf("hosts = %d, want 256", tp.NumHosts())
	}
	if n := tp.PathCount(0, 255); n != 16 {
		t.Fatalf("PathCount = %d, want 16", n)
	}
}

func TestLeafSpineInvalidConfig(t *testing.T) {
	if _, err := NewLeafSpine(LeafSpineConfig{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestLeafSpineValidate(t *testing.T) {
	tp := mustLeafSpine(t, 2, 2, 2)
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFatTreeShape(t *testing.T) {
	tp, err := NewFatTree(FatTreeConfig{K: 4, HostLink: testLink, FabricLink: testLink})
	if err != nil {
		t.Fatal(err)
	}
	// K=4: 16 hosts, 4 pods x (2 edge + 2 agg) + 4 core = 20 switches.
	if tp.NumHosts() != 16 {
		t.Fatalf("hosts = %d", tp.NumHosts())
	}
	if tp.NumSwitches() != 20 {
		t.Fatalf("switches = %d", tp.NumSwitches())
	}
	// Cross-pod path count = (K/2)^2 = 4.
	if n := tp.PathCount(0, 15); n != 4 {
		t.Fatalf("cross-pod PathCount = %d, want 4", n)
	}
	// Same-pod different-edge path count = K/2 = 2.
	if n := tp.PathCount(0, packet.NodeID(2)); n != 2 {
		t.Fatalf("same-pod PathCount = %d, want 2", n)
	}
	// Same-edge: 1.
	if n := tp.PathCount(0, 1); n != 1 {
		t.Fatalf("same-edge PathCount = %d, want 1", n)
	}
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFatTreeHostPlacement(t *testing.T) {
	tp, err := NewFatTree(FatTreeConfig{K: 4, HostLink: testLink, FabricLink: testLink})
	if err != nil {
		t.Fatal(err)
	}
	// Pod-major, edge-major: hosts 0,1 on edge0.0; 2,3 on edge0.1; 4,5 on edge1.0...
	if tp.ToROf(0) != tp.ToROf(1) {
		t.Fatal("hosts 0,1 should share an edge switch")
	}
	if tp.ToROf(1) == tp.ToROf(2) {
		t.Fatal("hosts 1,2 should be on different edge switches")
	}
	// Cross-pod distance edge->edge is 4 switch hops... edge-agg-core-agg-edge.
	d := tp.Distance(tp.ToROf(0), tp.ToROf(15))
	if d != 4 {
		t.Fatalf("cross-pod edge distance = %d, want 4", d)
	}
}

func TestFatTreeOddKFails(t *testing.T) {
	if _, err := NewFatTree(FatTreeConfig{K: 3, HostLink: testLink, FabricLink: testLink}); err == nil {
		t.Fatal("expected error for odd K")
	}
}

func TestFatTreeK8(t *testing.T) {
	tp, err := NewFatTree(FatTreeConfig{K: 8, HostLink: testLink, FabricLink: testLink})
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumHosts() != 128 { // k^3/4
		t.Fatalf("hosts = %d, want 128", tp.NumHosts())
	}
	if n := tp.PathCount(0, 127); n != 16 { // (k/2)^2
		t.Fatalf("PathCount = %d, want 16", n)
	}
}

func TestCandidatePortsStable(t *testing.T) {
	tp := mustLeafSpine(t, 2, 4, 2)
	a := tp.CandidatePorts(0, 3)
	b := tp.CandidatePorts(0, 3)
	if &a[0] != &b[0] {
		t.Fatal("CandidatePorts should return the shared slice")
	}
	// Candidates sorted ascending.
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			t.Fatalf("candidates not sorted: %v", a)
		}
	}
}

func TestSwitchHosts(t *testing.T) {
	tp := mustLeafSpine(t, 2, 2, 3)
	hs := tp.Switch(0).Hosts()
	if len(hs) != 3 || hs[0] != 0 || hs[1] != 1 || hs[2] != 2 {
		t.Fatalf("Hosts = %v", hs)
	}
}

func TestHostAttach(t *testing.T) {
	tp := mustLeafSpine(t, 2, 2, 2)
	a := tp.HostAttach(3)
	if a.Switch != 1 {
		t.Fatalf("attach switch = %d", a.Switch)
	}
	if a.Bandwidth != testLink.Bandwidth || a.Delay != testLink.Delay {
		t.Fatal("attach link spec wrong")
	}
	if p, ok := tp.Switch(1).HostPort(3); !ok || p != a.Port {
		t.Fatal("HostPort inconsistent with attach")
	}
}

// Property: every candidate port leads to a switch strictly closer to the
// destination ToR (shortest-path consistency), for random fabric shapes.
func TestCandidatesShortestPathProperty(t *testing.T) {
	f := func(l, s, h uint8) bool {
		leaves := int(l%6) + 2
		spines := int(s%6) + 1
		hosts := int(h%3) + 1
		tp, err := NewLeafSpine(LeafSpineConfig{
			Leaves: leaves, Spines: spines, HostsPerLeaf: hosts,
			HostLink: testLink, FabricLink: testLink,
		})
		if err != nil {
			return false
		}
		for sw := 0; sw < tp.NumSwitches(); sw++ {
			for hID := 0; hID < tp.NumHosts(); hID++ {
				dst := packet.NodeID(hID)
				dstTor := tp.ToROf(dst)
				if sw == dstTor {
					continue
				}
				for _, p := range tp.CandidatePorts(sw, dst) {
					peer := tp.Switch(sw).Ports[p].PeerSwitch
					if tp.Distance(peer, dstTor) != tp.Distance(sw, dstTor)-1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFatTreeRoutesShortestPathAllPairs(t *testing.T) {
	tp, err := NewFatTree(FatTreeConfig{K: 4, HostLink: testLink, FabricLink: testLink})
	if err != nil {
		t.Fatal(err)
	}
	for sw := 0; sw < tp.NumSwitches(); sw++ {
		for h := 0; h < tp.NumHosts(); h++ {
			dst := packet.NodeID(h)
			dstTor := tp.ToROf(dst)
			if sw == dstTor {
				continue
			}
			cands := tp.CandidatePorts(sw, dst)
			if len(cands) == 0 {
				t.Fatalf("switch %d has no route to host %d", sw, h)
			}
			for _, p := range cands {
				peer := tp.Switch(sw).Ports[p].PeerSwitch
				if tp.Distance(peer, dstTor) != tp.Distance(sw, dstTor)-1 {
					t.Fatalf("non-shortest candidate at switch %d to host %d", sw, h)
				}
			}
		}
	}
}
