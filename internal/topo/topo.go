// Package topo models the physical network: switches, hosts, and the links
// between them, together with the equal-cost routing tables that the fabric
// consults when forwarding. Builders for the paper's two topology families —
// 2-tier leaf-spine (evaluation, §5) and 3-tier fat-tree (memory analysis,
// §4) — are provided.
//
// The package is purely structural: it computes, for every switch and every
// destination, the set of equal-cost candidate egress ports (the ECMP
// next-hop set). Which candidate a packet actually takes is the load
// balancer's job (package lb) or Themis-S's (package core).
package topo

import (
	"fmt"

	"themis/internal/packet"
	"themis/internal/sim"
)

// Port describes one switch port and the link attached to it. Exactly one of
// PeerSwitch/Host is set (the other is -1).
type Port struct {
	Bandwidth  int64         // link rate in bits per second
	Delay      sim.Duration  // one-way propagation delay
	PeerSwitch int           // neighbor switch ID, or -1 if this is a host port
	PeerPort   int           // port index on the neighbor switch (-1 for hosts)
	Host       packet.NodeID // attached host, or -1
}

// IsHostPort reports whether the port faces a host.
func (p *Port) IsHostPort() bool { return p.Host >= 0 }

// Switch is one switch node in the topology.
type Switch struct {
	ID    int
	Name  string
	Ports []Port
	// Tier is builder-assigned (0 = ToR/leaf/edge, 1 = spine/agg, 2 = core).
	Tier int

	hostPort   map[packet.NodeID]int
	hostSlices map[int][]int // lazily cached single-port slices
}

// HostPort returns the port index facing host h, if h is attached here.
func (s *Switch) HostPort(h packet.NodeID) (int, bool) {
	p, ok := s.hostPort[h]
	return p, ok
}

// Hosts returns the hosts attached to this switch in port order.
func (s *Switch) Hosts() []packet.NodeID {
	var hs []packet.NodeID
	for _, p := range s.Ports {
		if p.IsHostPort() {
			hs = append(hs, p.Host)
		}
	}
	return hs
}

// Attach records where a host plugs into the fabric.
type Attach struct {
	Switch    int // ToR switch ID
	Port      int // port index on that switch
	Bandwidth int64
	Delay     sim.Duration
}

// Topology is an immutable network graph with precomputed equal-cost routes.
// Build one with a Builder or one of the New* constructors.
type Topology struct {
	switches []*Switch
	attach   []Attach // indexed by host NodeID

	// routes[sw][dstTor] = sorted candidate egress ports on sw that lie on a
	// shortest path towards dstTor. Empty for sw == dstTor.
	routes [][][]int
	// dist[sw][dstTor] = hop distance between switches.
	dist [][]int
}

// NumHosts returns the number of hosts.
func (t *Topology) NumHosts() int { return len(t.attach) }

// NumSwitches returns the number of switches.
func (t *Topology) NumSwitches() int { return len(t.switches) }

// Switch returns switch id.
func (t *Topology) Switch(id int) *Switch { return t.switches[id] }

// Switches returns all switches.
func (t *Topology) Switches() []*Switch { return t.switches }

// HostAttach returns the attachment point of host h.
func (t *Topology) HostAttach(h packet.NodeID) Attach { return t.attach[h] }

// ToROf returns the ToR switch ID of host h.
func (t *Topology) ToROf(h packet.NodeID) int { return t.attach[h].Switch }

// CandidatePorts returns the equal-cost egress ports at switch sw for
// reaching host dst. If dst is attached to sw, the single host port is
// returned. The slice is shared; callers must not modify it.
func (t *Topology) CandidatePorts(sw int, dst packet.NodeID) []int {
	s := t.switches[sw]
	if p, ok := s.HostPort(dst); ok {
		return t.hostPortSlice(sw, p)
	}
	return t.routes[sw][t.ToROf(dst)]
}

// hostPortCache caches single-element host port slices to avoid allocation
// on the forwarding fast path.
//
//lint:alloc-ok memoization cache fill; steady-state forwarding hits the cached slice
func (t *Topology) hostPortSlice(sw, port int) []int {
	s := t.switches[sw]
	if s.hostSlices == nil {
		s.hostSlices = make(map[int][]int, len(s.hostPort))
	}
	sl, ok := s.hostSlices[port]
	if !ok {
		sl = []int{port}
		s.hostSlices[port] = sl
	}
	return sl
}

// Distance returns the switch-hop distance between two switches.
func (t *Topology) Distance(a, b int) int { return t.dist[a][b] }

// PathCount returns the number of equal-cost paths between the ToRs of two
// hosts in different racks (the N of Eq. 1). Returns 1 for same-rack pairs.
func (t *Topology) PathCount(src, dst packet.NodeID) int {
	a, b := t.ToROf(src), t.ToROf(dst)
	if a == b {
		return 1
	}
	return t.countPaths(a, b)
}

func (t *Topology) countPaths(sw, dstTor int) int {
	if sw == dstTor {
		return 1
	}
	n := 0
	for _, p := range t.routes[sw][dstTor] {
		n += t.countPaths(t.switches[sw].Ports[p].PeerSwitch, dstTor)
	}
	return n
}

// RoutesWithFilter recomputes the equal-cost candidate table considering
// only links for which up(sw, port) is true — the routing-reconvergence view
// of the fabric after failures. The result is indexed routes[sw][dstTor]
// like the built-in table; entries are nil where no path exists.
func (t *Topology) RoutesWithFilter(up func(sw, port int) bool) [][][]int {
	n := len(t.switches)
	routes := make([][][]int, n)
	for sw := range routes {
		routes[sw] = make([][]int, n)
	}
	for dst := 0; dst < n; dst++ {
		perSw := t.RoutesForDst(dst, up)
		for sw := 0; sw < n; sw++ {
			routes[sw][dst] = perSw[sw]
		}
	}
	return routes
}

// RoutesForDst computes the failure-aware candidate sets towards one
// destination switch only: result[sw] is the sorted equal-cost egress port
// set at sw (nil where no path exists, empty semantics identical to the
// corresponding RoutesWithFilter column). Single-destination extraction is
// what makes incremental oracle-mode reconvergence cheap: a link flap
// invalidates cached columns in O(switches) and only the destinations
// actually forwarded to afterwards pay a BFS.
//
//lint:alloc-ok post-link-flap reconvergence recompute; steady state serves the cached column
func (t *Topology) RoutesForDst(dst int, up func(sw, port int) bool) [][]int {
	n := len(t.switches)
	out := make([][]int, n)
	// BFS from dst over up links only.
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[dst] = 0
	queue := []int{dst}
	for len(queue) > 0 {
		sw := queue[0]
		queue = queue[1:]
		for pi, p := range t.switches[sw].Ports {
			if p.IsHostPort() || !up(sw, pi) || !up(p.PeerSwitch, p.PeerPort) {
				continue
			}
			if dist[p.PeerSwitch] < 0 {
				dist[p.PeerSwitch] = dist[sw] + 1
				queue = append(queue, p.PeerSwitch)
			}
		}
	}
	for sw := 0; sw < n; sw++ {
		if sw == dst || dist[sw] < 0 {
			continue
		}
		var cands []int
		for pi, p := range t.switches[sw].Ports {
			if p.IsHostPort() || !up(sw, pi) || !up(p.PeerSwitch, p.PeerPort) {
				continue
			}
			if dist[p.PeerSwitch] == dist[sw]-1 {
				cands = append(cands, pi)
			}
		}
		out[sw] = cands
	}
	return out
}

// Validate checks structural invariants (bidirectional links, consistent
// attachment records) and returns the first violation found.
func (t *Topology) Validate() error {
	for _, s := range t.switches {
		for pi := range s.Ports {
			p := &s.Ports[pi]
			if p.IsHostPort() {
				a := t.attach[p.Host]
				if a.Switch != s.ID || a.Port != pi {
					return fmt.Errorf("topo: host %d attach record mismatch at switch %d port %d", p.Host, s.ID, pi)
				}
				continue
			}
			if p.PeerSwitch < 0 || p.PeerSwitch >= len(t.switches) {
				return fmt.Errorf("topo: switch %d port %d has invalid peer %d", s.ID, pi, p.PeerSwitch)
			}
			peer := t.switches[p.PeerSwitch]
			if p.PeerPort < 0 || p.PeerPort >= len(peer.Ports) {
				return fmt.Errorf("topo: switch %d port %d peer port out of range", s.ID, pi)
			}
			back := peer.Ports[p.PeerPort]
			if back.PeerSwitch != s.ID || back.PeerPort != pi {
				return fmt.Errorf("topo: link %d.%d <-> %d.%d not symmetric", s.ID, pi, p.PeerSwitch, p.PeerPort)
			}
			if back.Bandwidth != p.Bandwidth || back.Delay != p.Delay {
				return fmt.Errorf("topo: link %d.%d <-> %d.%d asymmetric properties", s.ID, pi, p.PeerSwitch, p.PeerPort)
			}
		}
	}
	for h, a := range t.attach {
		s := t.switches[a.Switch]
		if a.Port >= len(s.Ports) || s.Ports[a.Port].Host != packet.NodeID(h) {
			return fmt.Errorf("topo: host %d not found at recorded attach point", h)
		}
	}
	return nil
}
