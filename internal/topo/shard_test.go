package topo

import (
	"testing"

	"themis/internal/packet"
	"themis/internal/sim"
)

func leafSpine(t *testing.T, leaves, spines, hostsPerLeaf int, fabricDelay sim.Duration) *Topology {
	t.Helper()
	topo, err := NewLeafSpine(LeafSpineConfig{
		Leaves:       leaves,
		Spines:       spines,
		HostsPerLeaf: hostsPerLeaf,
		HostLink:     LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
		FabricLink:   LinkSpec{Bandwidth: 100e9, Delay: fabricDelay},
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestPartitionRacksRoundRobin(t *testing.T) {
	topo := leafSpine(t, 4, 2, 2, sim.Microsecond)
	p, err := PartitionRacks(topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Racks (tier-0 with hosts) deal 0,1,0,1 in switch-ID order; the host-less
	// spines deal 0,1 independently.
	rack, other := 0, 0
	for _, sw := range topo.Switches() {
		want := other % 2
		if sw.Tier == 0 && len(sw.Hosts()) > 0 {
			want = rack % 2
			rack++
		} else {
			other++
		}
		if p.SwitchShard[sw.ID] != want {
			t.Fatalf("switch %s shard = %d, want %d", sw.Name, p.SwitchShard[sw.ID], want)
		}
	}
	// Every host follows its ToR — the rack-granularity invariant the sharded
	// fabric's host-local scheduling depends on.
	for h := 0; h < topo.NumHosts(); h++ {
		if p.HostShard[h] != p.SwitchShard[topo.ToROf(packet.NodeID(h))] {
			t.Fatalf("host %d shard %d != ToR shard %d", h, p.HostShard[h], p.SwitchShard[topo.ToROf(packet.NodeID(h))])
		}
	}
}

func TestPartitionRacksValidates(t *testing.T) {
	topo := leafSpine(t, 2, 2, 1, sim.Microsecond)
	if _, err := PartitionRacks(topo, 0); err == nil {
		t.Fatal("shards=0 accepted")
	}
	if _, err := PartitionRacks(topo, 3); err == nil {
		t.Fatal("more shards than racks accepted")
	}
}

func TestLookaheadMinCrossShardDelay(t *testing.T) {
	topo := leafSpine(t, 2, 2, 1, 500*sim.Nanosecond)
	p, err := PartitionRacks(topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Lookahead(topo, p)
	if err != nil {
		t.Fatal(err)
	}
	if w != 500*sim.Nanosecond {
		t.Fatalf("lookahead = %v, want 500ns", w)
	}
}

func TestLookaheadSingleShardIsForever(t *testing.T) {
	topo := leafSpine(t, 2, 2, 1, sim.Microsecond)
	p, err := PartitionRacks(topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Lookahead(topo, p)
	if err != nil {
		t.Fatal(err)
	}
	if w != sim.Duration(sim.Forever) {
		t.Fatalf("lookahead = %v, want Forever (no cross-shard links)", w)
	}
}

func TestLookaheadRejectsZeroDelayCrossShardLink(t *testing.T) {
	topo := leafSpine(t, 2, 2, 1, 0)
	p, err := PartitionRacks(topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Lookahead(topo, p); err == nil {
		t.Fatal("zero-delay cross-shard link accepted")
	}
}

func TestPartitionRacksFatTree(t *testing.T) {
	topo, err := NewFatTree(FatTreeConfig{
		K:          4,
		HostLink:   LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
		FabricLink: LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		p, err := PartitionRacks(topo, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		counts := make([]int, shards)
		for h := 0; h < topo.NumHosts(); h++ {
			counts[p.HostShard[h]]++
		}
		// K=4 has 8 racks of 2 hosts: the round-robin deal balances hosts
		// exactly for every divisor shard count.
		for s, c := range counts {
			if c != topo.NumHosts()/shards {
				t.Fatalf("shards=%d: shard %d has %d hosts, want %d", shards, s, c, topo.NumHosts()/shards)
			}
		}
	}
}
