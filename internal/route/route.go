// Package route implements a per-switch distributed routing control plane
// modeled after BGP in the datacenter (RFC 7938). Every switch runs its own
// path-vector speaker: it owns a private ASN derived from its switch ID, it
// peers over every fabric link (all sessions are eBGP because every switch
// has a distinct ASN — the tier only determines *where* a switch sits in the
// CLOS, the numbering scheme is uniform), and it maintains a per-destination
// RIB of the routes its neighbors advertised plus the equal-cost FIB
// distilled from the RIB.
//
// The point of the package is honesty about reconvergence windows. The
// fabric's historical behavior — a link flips and a global oracle instantly
// hands every switch the new shortest-path table — hides exactly the regime
// the paper's in-network recovery must survive: between a failure and the
// arrival of the withdrawal messages, each switch forwards from its own
// stale FIB, producing transient blackholes, micro-loops, and ECMP-group
// shrink. Here, update/withdrawal messages propagate hop-by-hop through the
// deterministic event engine with a configurable per-hop processing delay
// (Config.PerHopDelay); during the window every switch answers Candidates
// from whatever its local FIB says.
//
// Protocol model, deliberately small but mechanically faithful:
//
//   - Route selection is shortest AS-path (hop count) with all equal-cost
//     next hops installed (BGP multipath, as RFC 7938 §5.2 prescribes for
//     CLOS fabrics). Ties never need breaking for selection; the
//     lowest-numbered candidate port's path is the representative path a
//     switch re-advertises.
//   - Loop suppression is AS-path based: an advertisement whose path already
//     contains the receiving switch is kept in the RIB but marked invalid,
//     exactly like a BGP speaker dropping a route whose AS_PATH contains its
//     own ASN.
//   - Sessions ride the fabric links. A link going down (or being drained
//     for maintenance) tears the session: both endpoints forget everything
//     learned over it and advertise the consequences. A session
//     (re-)establishing triggers a full-table exchange, like a BGP session
//     reset. Per-session generation counters discard in-flight messages
//     from a previous incarnation of the session.
//
// With PerHopDelay == 0 the plane degenerates to the oracle: every trigger
// drains the whole message cascade synchronously inside the triggering call,
// scheduling zero engine events, and the FIBs land on the same fixed point
// the oracle computes (CheckConverged asserts fib == topo.RoutesWithFilter
// content-wise). That fixed-point equality is not luck: at convergence a
// neighbor at BFS distance d-1 advertises a shortest path, and a shortest
// path from a distance-(d-1) node can never pass through a distance-d node,
// so path-invalidity never excludes an oracle candidate.
package route

import (
	"fmt"

	"themis/internal/sim"
	"themis/internal/topo"
)

// Mode selects how the fabric resolves candidate egress ports.
type Mode uint8

const (
	// Oracle is the historical behavior: a global recomputation of the
	// shortest-path table visible to every switch the instant a link flips.
	Oracle Mode = iota
	// Distributed gives every switch its own RIB/FIB converging via
	// hop-by-hop messages; forwarding during the window uses stale state.
	Distributed
)

// String returns the mode mnemonic.
func (m Mode) String() string {
	switch m {
	case Oracle:
		return "oracle"
	case Distributed:
		return "distributed"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Config parameterizes the control plane.
type Config struct {
	Mode Mode
	// PerHopDelay is the processing+propagation delay of one control-plane
	// message over one fabric link. Zero means synchronous convergence
	// (no engine events, oracle-equivalent results).
	PerHopDelay sim.Duration
}

// PrivateASNBase is the first private 16-bit ASN (RFC 6996); switch i is
// assigned PrivateASNBase+i, so AS paths and switch-ID paths are isomorphic
// and the implementation stores switch IDs.
const PrivateASNBase = 64512

// ribEntry is one neighbor-learned route towards one destination switch.
type ribEntry struct {
	present bool    // a route was learned over this session
	valid   bool    // AS path does not contain the local switch
	hops    int     // neighbor's advertised hop count to the destination
	path    []int32 // neighbor's AS path, neighbor first (shared, immutable)
}

// advert is one route announcement or withdrawal inside a message.
type advert struct {
	dst      int
	withdraw bool
	hops     int
	path     []int32
}

// msg is a batched control-plane message on one session.
type msg struct {
	to      int    // receiving switch
	port    int    // receiving switch's port (identifies the session)
	gen     uint32 // session generation at send time; stale ⇒ discarded
	adverts []advert
}

// node is the per-switch speaker state.
type node struct {
	id       int
	linkUp   []bool   // physical link state per port (host ports unused)
	drained  []bool   // maintenance drain per port
	portGen  []uint32 // session generation per port
	rib      [][]ribEntry
	fib      [][]int   // fib[dst] = sorted equal-cost egress ports
	bestLen  []int     // hop count of best route; -1 unreachable, 0 self
	bestPath [][]int32 // representative AS path, self first; nil unreachable
	advLen   []int     // last advertised length (-1 after withdrawal)
	advPath  [][]int32
	dirty    []bool
	dirtyAny bool
}

func (n *node) usable(port int) bool { return n.linkUp[port] && !n.drained[port] }

// Plane is the whole-fabric control plane: one speaker per switch plus the
// message transport between them.
type Plane struct {
	eng   *sim.Engine
	tp    *topo.Topology
	cfg   Config
	nodes []*node

	inflight  int    // messages scheduled on the engine, not yet delivered
	queue     []*msg // synchronous queue (PerHopDelay == 0)
	draining  bool
	quiescent bool
	epoch     uint32
	msgsSent  uint64
	episodes  uint64 // completed reconvergence episodes
}

// NewPlane builds the control plane in the converged all-links-up state:
// every FIB equals the oracle table and zero messages are outstanding.
func NewPlane(eng *sim.Engine, tp *topo.Topology, cfg Config) *Plane {
	p := &Plane{eng: eng, tp: tp, cfg: cfg, quiescent: true}
	ns := tp.NumSwitches()
	allUp := func(int, int) bool { return true }
	routes := tp.RoutesWithFilter(allUp)
	// Representative AS paths by lowest-candidate-port walk — the same
	// deterministic choice recompute makes, so the cold-start state is a
	// fixed point of the protocol.
	paths := make([][][]int32, ns)
	for src := 0; src < ns; src++ {
		paths[src] = make([][]int32, ns)
		for dst := 0; dst < ns; dst++ {
			paths[src][dst] = coldPath(tp, routes, src, dst)
		}
	}
	p.nodes = make([]*node, ns)
	for sw := 0; sw < ns; sw++ {
		np := len(tp.Switch(sw).Ports)
		nd := &node{
			id:       sw,
			linkUp:   make([]bool, np),
			drained:  make([]bool, np),
			portGen:  make([]uint32, np),
			rib:      make([][]ribEntry, ns),
			fib:      make([][]int, ns),
			bestLen:  make([]int, ns),
			bestPath: make([][]int32, ns),
			advLen:   make([]int, ns),
			advPath:  make([][]int32, ns),
			dirty:    make([]bool, ns),
		}
		for port := range nd.linkUp {
			nd.linkUp[port] = true
		}
		for dst := 0; dst < ns; dst++ {
			nd.rib[dst] = make([]ribEntry, np)
			nd.fib[dst] = routes[sw][dst]
			pl := paths[sw][dst]
			switch {
			case sw == dst:
				nd.bestLen[dst] = 0
			case pl == nil:
				nd.bestLen[dst] = -1
			default:
				nd.bestLen[dst] = len(pl) - 1
			}
			nd.bestPath[dst] = pl
			nd.advLen[dst] = nd.bestLen[dst]
			nd.advPath[dst] = pl
		}
		p.nodes[sw] = nd
	}
	// Seed every RIB with what each neighbor would have advertised at
	// convergence.
	for sw := 0; sw < ns; sw++ {
		nd := p.nodes[sw]
		for port, prt := range tp.Switch(sw).Ports {
			if prt.IsHostPort() {
				continue
			}
			peer := prt.PeerSwitch
			for dst := 0; dst < ns; dst++ {
				pl := paths[peer][dst]
				if pl == nil {
					continue
				}
				nd.rib[dst][port] = ribEntry{
					present: true,
					valid:   !pathContains(pl, sw),
					hops:    len(pl) - 1,
					path:    pl,
				}
			}
		}
	}
	return p
}

// coldPath walks the lowest-numbered candidate port from src towards dst and
// returns the switch-ID path (src first), or nil if dst is unreachable.
func coldPath(tp *topo.Topology, routes [][][]int, src, dst int) []int32 {
	path := []int32{int32(src)}
	cur := src
	for cur != dst {
		cands := routes[cur][dst]
		if len(cands) == 0 {
			return nil
		}
		cur = tp.Switch(cur).Ports[cands[0]].PeerSwitch
		path = append(path, int32(cur))
	}
	return path
}

func pathContains(path []int32, sw int) bool {
	for _, h := range path {
		if h == int32(sw) {
			return true
		}
	}
	return false
}

func pathEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ASN returns the private ASN assigned to switch sw.
func ASN(sw int) uint32 { return PrivateASNBase + uint32(sw) }

// Candidates returns switch sw's current FIB entry towards destination ToR
// dstTor: the equal-cost egress port set as this switch believes it to be
// right now, stale or not. The slice is owned by the plane; callers must not
// modify it. Nil means sw currently has no route (transient blackhole).
func (p *Plane) Candidates(sw, dstTor int) []int { return p.nodes[sw].fib[dstTor] }

// Quiescent reports whether no control-plane messages are outstanding.
func (p *Plane) Quiescent() bool { return p.quiescent }

// Epoch returns the convergence epoch: it increments every time the plane
// returns to quiescence after a reconvergence episode. The fabric stamps
// packets with the epoch at injection so that TTL-exhaustion drops can be
// attributed to the correct window.
func (p *Plane) Epoch() uint32 { return p.epoch }

// MessagesSent returns the lifetime count of control messages sent.
func (p *Plane) MessagesSent() uint64 { return p.msgsSent }

// Episodes returns the number of completed reconvergence episodes.
func (p *Plane) Episodes() uint64 { return p.episodes }

// LinkUsable reports whether the control plane considers the link at
// (sw, port) usable: physically up and not drained.
func (p *Plane) LinkUsable(sw, port int) bool { return p.nodes[sw].usable(port) }

// SetLinkState informs the plane that the fabric link at (sw, port) changed
// physical state. Both endpoints observe the transition immediately (fast
// local failure detection); only the propagation of its consequences is
// delayed. Idempotent for repeated same-state calls.
func (p *Plane) SetLinkState(sw, port int, up bool) {
	prt := &p.tp.Switch(sw).Ports[port]
	if prt.IsHostPort() {
		panic("route: SetLinkState on host port")
	}
	nd := p.nodes[sw]
	if nd.linkUp[port] == up {
		return
	}
	wasUsable := nd.usable(port)
	nd.linkUp[port] = up
	p.nodes[prt.PeerSwitch].linkUp[prt.PeerPort] = up
	p.sessionTransition(sw, port, prt.PeerSwitch, prt.PeerPort, wasUsable)
}

// SetDrained marks the link at (sw, port) as drained for maintenance (or
// restores it). Draining withdraws the routes over the session exactly like
// a failure would — that is the operational point: traffic shifts away
// *before* the physical link is taken down, so the later SetLinkState(down)
// finds the session already unusable and causes zero routing churn.
func (p *Plane) SetDrained(sw, port int, drained bool) {
	prt := &p.tp.Switch(sw).Ports[port]
	if prt.IsHostPort() {
		panic("route: SetDrained on host port")
	}
	nd := p.nodes[sw]
	if nd.drained[port] == drained {
		return
	}
	wasUsable := nd.usable(port)
	nd.drained[port] = drained
	p.nodes[prt.PeerSwitch].drained[prt.PeerPort] = drained
	p.sessionTransition(sw, port, prt.PeerSwitch, prt.PeerPort, wasUsable)
}

// sessionTransition handles a usability edge on the session between
// (sw, port) and (peer, peerPort), after the owning flag already flipped.
func (p *Plane) sessionTransition(sw, port, peer, peerPort int, wasUsable bool) {
	a, b := p.nodes[sw], p.nodes[peer]
	nowUsable := a.usable(port)
	if nowUsable == wasUsable {
		// E.g. a drained link going physically down: routing already
		// shifted away, nothing to do.
		return
	}
	// Session reset: any message still in flight belongs to the previous
	// incarnation and must be discarded on delivery.
	a.portGen[port]++
	b.portGen[peerPort]++
	clearColumn(a, port)
	clearColumn(b, peerPort)
	if nowUsable {
		// Session established: full-table exchange, like a BGP reset.
		p.send(a, port, fullTable(a))
		p.send(b, peerPort, fullTable(b))
	}
	p.reconcile(a)
	p.reconcile(b)
	p.drainQueue()
	p.checkQuiescent()
}

// clearColumn forgets everything nd learned over one session and marks the
// affected destinations dirty.
func clearColumn(nd *node, port int) {
	for dst := range nd.rib {
		if !nd.rib[dst][port].present {
			continue
		}
		nd.rib[dst][port] = ribEntry{}
		if !nd.dirty[dst] {
			nd.dirty[dst] = true
			nd.dirtyAny = true
		}
	}
}

// fullTable builds the adverts a node sends on session establishment: every
// destination it currently has a route to, itself included.
func fullTable(nd *node) []advert {
	var out []advert
	for dst := range nd.bestLen {
		if nd.bestLen[dst] < 0 {
			continue
		}
		out = append(out, advert{dst: dst, hops: nd.bestLen[dst], path: nd.bestPath[dst]})
	}
	return out
}

// reconcile recomputes every dirty destination at nd and advertises the
// resulting best-route changes to all usable neighbors.
func (p *Plane) reconcile(nd *node) {
	if !nd.dirtyAny {
		return
	}
	nd.dirtyAny = false
	var adverts []advert
	for dst := 0; dst < len(nd.dirty); dst++ {
		if !nd.dirty[dst] {
			continue
		}
		nd.dirty[dst] = false
		if dst == nd.id {
			continue
		}
		recompute(nd, dst)
		if nd.bestLen[dst] == nd.advLen[dst] && pathEqual(nd.bestPath[dst], nd.advPath[dst]) {
			continue
		}
		nd.advLen[dst] = nd.bestLen[dst]
		nd.advPath[dst] = nd.bestPath[dst]
		adverts = append(adverts, advert{
			dst:      dst,
			withdraw: nd.bestLen[dst] < 0,
			hops:     nd.bestLen[dst],
			path:     nd.bestPath[dst],
		})
	}
	if len(adverts) == 0 {
		return
	}
	ports := p.tp.Switch(nd.id).Ports
	for port := range ports {
		if ports[port].IsHostPort() || !nd.usable(port) {
			continue
		}
		p.send(nd, port, adverts)
	}
}

// recompute rebuilds nd's FIB entry and best route for one destination from
// the RIB: minimum hop count over usable sessions with valid paths, all
// equal-cost ports installed, lowest port's path as representative.
func recompute(nd *node, dst int) {
	min := -1
	var cands []int
	col := nd.rib[dst]
	for port := range col {
		e := &col[port]
		if !e.present || !e.valid || !nd.usable(port) {
			continue
		}
		h := e.hops + 1
		if min < 0 || h < min {
			min = h
			cands = cands[:0]
		}
		if h == min {
			cands = append(cands, port)
		}
	}
	if min < 0 {
		nd.fib[dst] = nil
		nd.bestLen[dst] = -1
		nd.bestPath[dst] = nil
		return
	}
	nd.fib[dst] = cands
	nd.bestLen[dst] = min
	rep := col[cands[0]].path
	path := make([]int32, 0, len(rep)+1)
	path = append(path, int32(nd.id))
	path = append(path, rep...)
	nd.bestPath[dst] = path
}

// send queues one message on the session leaving (from, port). With a
// positive per-hop delay the delivery is an engine event; with delay zero it
// joins the synchronous queue drained to fixpoint by the triggering call.
func (p *Plane) send(from *node, port int, adverts []advert) {
	if len(adverts) == 0 {
		return
	}
	prt := &p.tp.Switch(from.id).Ports[port]
	to, toPort := prt.PeerSwitch, prt.PeerPort
	m := &msg{to: to, port: toPort, gen: p.nodes[to].portGen[toPort], adverts: adverts}
	p.msgsSent++
	p.quiescent = false
	if p.cfg.PerHopDelay > 0 {
		p.inflight++
		p.eng.Schedule(p.cfg.PerHopDelay, func() { p.deliver(m) })
		return
	}
	p.queue = append(p.queue, m)
}

// deliver is the engine callback for a delayed message.
func (p *Plane) deliver(m *msg) {
	p.inflight--
	if m.gen == p.nodes[m.to].portGen[m.port] {
		p.process(m)
	}
	p.drainQueue()
	p.checkQuiescent()
}

// process applies a message's adverts to the receiver's RIB and reconciles.
func (p *Plane) process(m *msg) {
	nd := p.nodes[m.to]
	for _, ad := range m.adverts {
		e := &nd.rib[ad.dst][m.port]
		if ad.withdraw {
			if !e.present {
				continue
			}
			*e = ribEntry{}
		} else {
			*e = ribEntry{
				present: true,
				valid:   !pathContains(ad.path, nd.id),
				hops:    ad.hops,
				path:    ad.path,
			}
		}
		if !nd.dirty[ad.dst] {
			nd.dirty[ad.dst] = true
			nd.dirtyAny = true
		}
	}
	p.reconcile(nd)
}

// drainQueue runs the synchronous (delay-zero) message cascade to fixpoint.
// Path-vector with shortest-path selection always terminates; the step cap
// turns a protocol bug into a deterministic panic instead of a hang.
func (p *Plane) drainQueue() {
	if p.draining || len(p.queue) == 0 {
		return
	}
	p.draining = true
	steps := 0
	for len(p.queue) > 0 {
		m := p.queue[0]
		p.queue = p.queue[1:]
		if m.gen == p.nodes[m.to].portGen[m.port] {
			p.process(m)
		}
		steps++
		if steps > 1<<22 {
			panic("route: synchronous convergence did not terminate")
		}
	}
	p.queue = nil
	p.draining = false
}

// checkQuiescent closes a reconvergence episode when nothing is outstanding.
func (p *Plane) checkQuiescent() {
	if p.quiescent || p.inflight > 0 || len(p.queue) > 0 {
		return
	}
	p.quiescent = true
	p.epoch++
	p.episodes++
}

// CheckConverged verifies the plane is quiescent and every switch's FIB
// equals the oracle fixed point (topo.RoutesWithFilter over usable links).
// It returns nil when converged and a description of the first divergence
// otherwise — the invariant that makes "distributed" honest rather than
// merely different.
func (p *Plane) CheckConverged() error {
	if p.inflight > 0 || len(p.queue) > 0 {
		return fmt.Errorf("route: %d control messages still outstanding", p.inflight+len(p.queue))
	}
	want := p.tp.RoutesWithFilter(func(sw, port int) bool { return p.nodes[sw].usable(port) })
	for sw := range p.nodes {
		for dst := range p.nodes {
			if sw == dst {
				continue
			}
			got := p.nodes[sw].fib[dst]
			if !intsEqual(got, want[sw][dst]) {
				return fmt.Errorf("route: switch %d fib[dst %d] = %v, oracle says %v", sw, dst, got, want[sw][dst])
			}
		}
	}
	return nil
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
