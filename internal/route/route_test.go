package route

import (
	"math/rand"
	"testing"

	"themis/internal/sim"
	"themis/internal/topo"
)

// leafSpine builds the 2-tier fixture used throughout: switch IDs are leaves
// 0..leaves-1 then spines, a leaf's uplink to spine s is port hosts+s, and a
// spine's port i faces leaf i.
func leafSpine(t *testing.T, leaves, spines, hosts int) *topo.Topology {
	t.Helper()
	tp, err := topo.NewLeafSpine(topo.LeafSpineConfig{
		Leaves: leaves, Spines: spines, HostsPerLeaf: hosts,
		HostLink:   topo.LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
		FabricLink: topo.LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
	})
	if err != nil {
		t.Fatalf("NewLeafSpine: %v", err)
	}
	return tp
}

func TestColdStartConverged(t *testing.T) {
	for _, tc := range []struct {
		name string
		tp   func(t *testing.T) *topo.Topology
	}{
		{"leafspine-3x2", func(t *testing.T) *topo.Topology { return leafSpine(t, 3, 2, 1) }},
		{"leafspine-4x4", func(t *testing.T) *topo.Topology { return leafSpine(t, 4, 4, 2) }},
		{"fattree-4", func(t *testing.T) *topo.Topology {
			tp, err := topo.NewFatTree(topo.FatTreeConfig{
				K:          4,
				HostLink:   topo.LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
				FabricLink: topo.LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
			})
			if err != nil {
				t.Fatalf("NewFatTree: %v", err)
			}
			return tp
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine(1)
			p := NewPlane(eng, tc.tp(t), Config{Mode: Distributed})
			if !p.Quiescent() {
				t.Fatal("cold start not quiescent")
			}
			if p.MessagesSent() != 0 {
				t.Fatalf("cold start sent %d messages", p.MessagesSent())
			}
			if err := p.CheckConverged(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// event is one control-plane stimulus in a table-driven scenario.
type event struct {
	sw, port int
	kind     string // "down", "up", "drain", "undrain"
}

func apply(p *Plane, ev event) {
	switch ev.kind {
	case "down":
		p.SetLinkState(ev.sw, ev.port, false)
	case "up":
		p.SetLinkState(ev.sw, ev.port, true)
	case "drain":
		p.SetDrained(ev.sw, ev.port, true)
	case "undrain":
		p.SetDrained(ev.sw, ev.port, false)
	default:
		panic("unknown event kind " + ev.kind)
	}
}

// fibWant pins one expected FIB entry after a scenario completes.
type fibWant struct {
	sw, dst int
	ports   []int // nil means "no route"
}

// TestWithdrawalUpdateOrdering drives withdrawal/update sequences through a
// 3-leaf × 2-spine fixture at per-hop delay zero (synchronous convergence)
// and pins the resulting FIBs. Topology reminder: leaves 0,1,2 (port 0 host,
// port 1 → spine 3, port 2 → spine 4); spines 3,4 (port i → leaf i).
func TestWithdrawalUpdateOrdering(t *testing.T) {
	for _, tc := range []struct {
		name   string
		events []event
		want   []fibWant
	}{
		{
			name:   "single-uplink-loss-shrinks-ecmp",
			events: []event{{0, 1, "down"}},
			want: []fibWant{
				{sw: 0, dst: 1, ports: []int{2}},    // leaf0 reaches leaf1 only via spine4
				{sw: 3, dst: 0, ports: []int{1, 2}}, // spine3 detours to leaf0 via the other leaves
				{sw: 1, dst: 0, ports: []int{2}},    // leaf1 drops spine3 (now 3 hops from leaf0)
				{sw: 0, dst: 3, ports: []int{2}},    // leaf0 reaches spine3 the long way
				{sw: 4, dst: 0, ports: []int{0}},    // spine4 still has the direct link
			},
		},
		{
			name:   "total-isolation-withdraws-everywhere",
			events: []event{{0, 1, "down"}, {0, 2, "down"}},
			want: []fibWant{
				{sw: 1, dst: 0, ports: nil}, // leaf0 unreachable: withdrawals propagated
				{sw: 2, dst: 0, ports: nil},
				{sw: 3, dst: 0, ports: nil},
				{sw: 4, dst: 0, ports: nil},
				{sw: 0, dst: 1, ports: nil},
				{sw: 1, dst: 2, ports: []int{1, 2}}, // the rest of the fabric is untouched
			},
		},
		{
			name:   "repair-restores-full-ecmp",
			events: []event{{0, 1, "down"}, {0, 2, "down"}, {0, 1, "up"}, {0, 2, "up"}},
			want: []fibWant{
				{sw: 1, dst: 0, ports: []int{1, 2}},
				{sw: 0, dst: 2, ports: []int{1, 2}},
				{sw: 3, dst: 0, ports: []int{0}},
				{sw: 4, dst: 0, ports: []int{0}},
			},
		},
		{
			name:   "drain-withdraws-like-failure",
			events: []event{{0, 2, "drain"}},
			want: []fibWant{
				{sw: 0, dst: 1, ports: []int{1}},    // drained uplink carries no routes
				{sw: 4, dst: 0, ports: []int{1, 2}}, // spine4 detours around the drain
			},
		},
		{
			name: "down-during-drain-is-churnless-and-undrain-recovers",
			events: []event{
				{0, 2, "drain"}, {0, 2, "down"}, // drop of a drained link: no-op for routing
				{0, 2, "up"}, {0, 2, "undrain"}, // maintenance done
			},
			want: []fibWant{
				{sw: 0, dst: 1, ports: []int{1, 2}},
				{sw: 4, dst: 0, ports: []int{0}},
			},
		},
		{
			name: "flap-same-state-calls-are-idempotent",
			events: []event{
				{0, 1, "down"}, {0, 1, "down"}, {0, 1, "up"}, {0, 1, "up"},
			},
			want: []fibWant{
				{sw: 0, dst: 1, ports: []int{1, 2}},
				{sw: 3, dst: 0, ports: []int{0}},
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine(1)
			p := NewPlane(eng, leafSpine(t, 3, 2, 1), Config{Mode: Distributed})
			for _, ev := range tc.events {
				apply(p, ev)
				// Delay zero: every stimulus resolves synchronously, with
				// zero engine events, back to the oracle fixed point.
				if err := p.CheckConverged(); err != nil {
					t.Fatalf("after %+v: %v", ev, err)
				}
				if !p.Quiescent() {
					t.Fatalf("after %+v: not quiescent", ev)
				}
			}
			if m := eng.Metrics(); m.EventsExecuted != 0 {
				t.Fatalf("delay-0 plane executed %d engine events", m.EventsExecuted)
			}
			for _, w := range tc.want {
				got := p.Candidates(w.sw, w.dst)
				if !intsEqual(got, w.ports) {
					t.Errorf("fib[sw %d][dst %d] = %v, want %v", w.sw, w.dst, got, w.ports)
				}
			}
		})
	}
}

// TestMicroLoopFormation reproduces the classic CLOS micro-loop: when link
// leaf0–spine4 fails with a positive per-hop delay, spine4 immediately
// detours traffic for leaf0 towards leaf1 (whose stale advertised path went
// via spine3 and is therefore valid at spine4), while leaf1 still holds
// spine4's stale direct advertisement — so for one reconvergence window
// leaf1 and spine4 point at each other. The window closes when spine4's
// update reaches leaf1 and is rejected by AS-path loop suppression.
func TestMicroLoopFormation(t *testing.T) {
	const delay = 10 * sim.Microsecond
	eng := sim.NewEngine(1)
	p := NewPlane(eng, leafSpine(t, 3, 2, 1), Config{Mode: Distributed, PerHopDelay: delay})

	eng.Schedule(sim.Microsecond, func() { p.SetLinkState(0, 2, false) })
	eng.Run(sim.Time(sim.Microsecond + delay/2)) // mid-window: updates still in flight

	if p.Quiescent() {
		t.Fatal("plane quiescent mid-window")
	}
	// spine4 (id 4) already detours leaf0 traffic via leaf1 and leaf2...
	if got := p.Candidates(4, 0); !intsEqual(got, []int{1, 2}) {
		t.Fatalf("spine4 fib[leaf0] = %v, want detour [1 2]", got)
	}
	// ...while leaf1 (id 1) still believes spine4 has the direct link: the
	// micro-loop leaf1 → spine4 → leaf1 is live.
	if got := p.Candidates(1, 0); !intsEqual(got, []int{1, 2}) {
		t.Fatalf("leaf1 fib[leaf0] = %v, want stale [1 2]", got)
	}

	eng.RunAll()
	if err := p.CheckConverged(); err != nil {
		t.Fatal(err)
	}
	// Loop suppressed: spine4's re-advertised path [4 1 3 0] contains
	// leaf1, so leaf1 dropped the spine4 route and kept only spine3.
	if got := p.Candidates(1, 0); !intsEqual(got, []int{1}) {
		t.Fatalf("post-convergence leaf1 fib[leaf0] = %v, want [1]", got)
	}
	epoch := p.Epoch()
	if epoch == 0 {
		t.Fatal("no reconvergence episode recorded")
	}

	// Repair: another window, another episode.
	eng.Schedule(sim.Microsecond, func() { p.SetLinkState(0, 2, true) })
	eng.RunAll()
	if err := p.CheckConverged(); err != nil {
		t.Fatal(err)
	}
	if p.Epoch() <= epoch {
		t.Fatalf("epoch did not advance across repair: %d -> %d", epoch, p.Epoch())
	}
	if got := p.Candidates(1, 0); !intsEqual(got, []int{1, 2}) {
		t.Fatalf("post-repair leaf1 fib[leaf0] = %v, want [1 2]", got)
	}
}

// TestSessionResetDiscardsStaleMessages flaps a link faster than the per-hop
// delay so that updates from a dead session incarnation are still in flight
// when the session re-establishes; the per-session generation counters must
// discard them, and the plane must still land on the oracle fixed point.
func TestSessionResetDiscardsStaleMessages(t *testing.T) {
	const delay = 10 * sim.Microsecond
	eng := sim.NewEngine(1)
	p := NewPlane(eng, leafSpine(t, 4, 3, 1), Config{Mode: Distributed, PerHopDelay: delay})
	for i := 0; i < 6; i++ {
		at := sim.Duration(i+1) * sim.Microsecond // well inside one per-hop delay
		down := i%2 == 0
		eng.Schedule(at, func() { p.SetLinkState(1, 2, down) }) // leaf1 uplink to spine 1
	}
	eng.RunAll()
	if err := p.CheckConverged(); err != nil {
		t.Fatal(err)
	}
	if !p.Quiescent() {
		t.Fatal("not quiescent after flap burst")
	}
}

// TestDelayZeroMatchesOracle drives hundreds of random link and drain
// transitions through a delay-zero plane and checks after every single one
// that the FIBs sit exactly on the oracle fixed point without having
// scheduled any engine events — the property the byte-identity acceptance
// criterion rests on.
func TestDelayZeroMatchesOracle(t *testing.T) {
	tp := leafSpine(t, 4, 3, 2)
	eng := sim.NewEngine(7)
	p := NewPlane(eng, tp, Config{Mode: Distributed})
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		leaf := rng.Intn(4)
		port := 2 + rng.Intn(3) // uplink ports on a 2-host leaf
		switch rng.Intn(4) {
		case 0:
			p.SetLinkState(leaf, port, false)
		case 1:
			p.SetLinkState(leaf, port, true)
		case 2:
			p.SetDrained(leaf, port, true)
		case 3:
			p.SetDrained(leaf, port, false)
		}
		if err := p.CheckConverged(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if m := eng.Metrics(); m.EventsExecuted != 0 {
		t.Fatalf("delay-0 plane executed %d engine events", m.EventsExecuted)
	}
	if p.MessagesSent() == 0 {
		t.Fatal("plane sent no messages at all")
	}
}

// TestConvergenceWithDelayRandomFlaps is the delayed-mode counterpart: random
// flaps land at random engine times, and once the dust settles the plane must
// be quiescent on the oracle fixed point.
func TestConvergenceWithDelayRandomFlaps(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		tp := leafSpine(t, 4, 3, 2)
		eng := sim.NewEngine(seed)
		p := NewPlane(eng, tp, Config{Mode: Distributed, PerHopDelay: 7 * sim.Microsecond})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 40; i++ {
			leaf := rng.Intn(4)
			port := 2 + rng.Intn(3)
			down := rng.Intn(2) == 0
			at := sim.Duration(rng.Intn(200)) * sim.Microsecond
			eng.Schedule(at, func() { p.SetLinkState(leaf, port, down) })
		}
		eng.RunAll()
		if err := p.CheckConverged(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestASN(t *testing.T) {
	if got := ASN(0); got != 64512 {
		t.Fatalf("ASN(0) = %d", got)
	}
	if got := ASN(9); got != 64521 {
		t.Fatalf("ASN(9) = %d", got)
	}
	if Oracle.String() != "oracle" || Distributed.String() != "distributed" {
		t.Fatal("mode strings")
	}
}
