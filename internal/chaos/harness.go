package chaos

import (
	"fmt"

	"themis/internal/core"
	"themis/internal/fabric"
	"themis/internal/memmodel"
	"themis/internal/obs"
	"themis/internal/packet"
	"themis/internal/rnic"
	"themis/internal/sim"
	"themis/internal/topo"
	"themis/internal/trace"
	"themis/internal/workload"
)

// Options parameterizes the scenario harness. The defaults are a small
// cross-rack workload on a 3×3 leaf-spine — big enough for every fault kind
// to matter, small enough that a 50-seed soak stays cheap.
type Options struct {
	Leaves, Spines, HostsPerLeaf int
	Bandwidth                    int64
	Flows                        int          // cross-rack ring flows (default one per host)
	MessageBytes                 int64        // per-flow transfer (default 2 MB)
	Horizon                      sim.Duration // wall guard (default 2 s virtual)
	Shards                       int          // drive via the shard coordinator (see workload.ClusterConfig.Shards)
	// LB selects the spray arm; the zero value means "harness default"
	// (Themis) unless LBSet marks an explicit choice — workload.ECMP is the
	// LBMode zero value, so a flag is needed to ask for it.
	LB    workload.LBMode
	LBSet bool
	// RepsCache / PathBuckets tune the REPS and congestion-aware arms
	// (zero = workload defaults); ignored by the other arms.
	RepsCache   int
	PathBuckets int
	// DistributedRouting runs the per-switch BGP-style control plane instead
	// of the routing oracle; ConvergenceDelay is its per-hop message delay
	// (see internal/route).
	DistributedRouting bool
	ConvergenceDelay   sim.Duration
	Tracer             *trace.Tracer
	// Metrics, if non-nil, is the shared registry cluster components register
	// their gauges on (see internal/obs).
	Metrics *obs.Registry
	// FlightDir, if non-empty, arms a flight recorder: the run records into a
	// bounded ring (capacity FlightCapacity, default obs.DefaultFlightCapacity)
	// and, when any invariant is violated, dumps the retained window to
	// <FlightDir>/flight-seed<seed>.jsonl for `themis-sim inspect`. When
	// Tracer is also set it takes precedence and no recorder is created.
	FlightDir      string
	FlightCapacity int
}

func (o Options) withDefaults() Options {
	if o.Leaves == 0 {
		o.Leaves = 3
	}
	if o.Spines == 0 {
		o.Spines = 3
	}
	if o.HostsPerLeaf == 0 {
		o.HostsPerLeaf = 2
	}
	if o.Bandwidth == 0 {
		o.Bandwidth = 100e9
	}
	if o.Flows == 0 {
		o.Flows = o.Leaves * o.HostsPerLeaf
	}
	if o.MessageBytes == 0 {
		// Large enough that the 10–160 us fault window lands mid-flow.
		o.MessageBytes = 2 << 20
	}
	if o.Horizon == 0 {
		o.Horizon = 2 * sim.Second
	}
	if !o.LBSet {
		o.LB = workload.Themis
	}
	return o
}

// Result is the outcome of one scenario run.
type Result struct {
	Scenario   Scenario
	End        sim.Time // drain time of the last event
	Sender     rnic.SenderStats
	Middleware core.Stats
	Net        fabric.Counters
	Engine     sim.Metrics // event-loop counter block for this run's engine
	Violations []string    // empty = all invariants held
	// FlightDump is the path of the flight-recorder dump written for a
	// violating run (empty when no recorder was armed or nothing tripped).
	FlightDump string
}

// BuildCluster assembles the hardened cluster the harness runs scenarios
// against: Themis with lazy state relearning, exponential RTO backoff on the
// NICs, a lossy control class so control-plane faults are injectable, and a
// finite (but roomy: 4 entries per flow) §4 flow-table budget so the soak
// exercises real SRAM accounting — the budget invariant is meaningful, while
// the steady workload itself never deserves an eviction.
// Exported so the CLI and benchmarks run exactly what the soak tests run.
func BuildCluster(sc Scenario, opt Options) (*workload.Cluster, error) {
	opt = opt.withDefaults()
	budget := core.TableBudget(memmodel.Params{
		Bandwidth: opt.Bandwidth,
		RTTLast:   2 * sim.Microsecond, // two 1 us last-hop links
		MTU:       1500,
		Factor:    1.5,
	}, 4*opt.Flows)
	return workload.BuildCluster(workload.ClusterConfig{
		Seed:               sc.Seed,
		Shards:             opt.Shards,
		Leaves:             opt.Leaves,
		Spines:             opt.Spines,
		HostsPerLeaf:       opt.HostsPerLeaf,
		Bandwidth:          opt.Bandwidth,
		LB:                 opt.LB,
		RepsCache:          opt.RepsCache,
		PathBuckets:        opt.PathBuckets,
		LossyControl:       true,
		RTO:                200 * sim.Microsecond,
		RTOBackoff:         2,
		RTOMax:             10 * sim.Millisecond,
		DistributedRouting: opt.DistributedRouting,
		ConvergenceDelay:   opt.ConvergenceDelay,
		ThemisCfg:          core.Config{Relearn: true, TableBudgetBytes: budget},
		Tracer:             opt.Tracer,
		Metrics:            opt.Metrics,
	})
}

// RunScenario executes one scenario: build the hardened cluster, install the
// injector, start a cross-rack ring of transfers, run to drain and audit the
// invariants. The same (scenario, options) pair always produces the same
// Result.
func RunScenario(sc Scenario, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	var flight *obs.FlightRecorder
	if opt.FlightDir != "" && opt.Tracer == nil {
		flight = obs.NewFlightRecorder(opt.FlightDir, opt.FlightCapacity)
		opt.Tracer = flight.Tracer()
	}
	cl, err := BuildCluster(sc, opt)
	if err != nil {
		return nil, err
	}
	NewInjector(cl, sc).Install()

	// Cross-rack ring: host i sends to the same-index host of the next leaf,
	// so every flow traverses the fabric and every ToR plays both roles.
	nHosts := cl.Topo.NumHosts()
	remaining := opt.Flows
	for i := 0; i < opt.Flows; i++ {
		src := packet.NodeID(i % nHosts)
		dst := packet.NodeID((i + opt.HostsPerLeaf) % nHosts)
		cl.Conn(src, dst).Send(opt.MessageBytes, func() {
			remaining--
			if remaining == 0 {
				cl.Engine.Stop()
			}
		})
	}

	end := cl.Run(opt.Horizon)
	cl.Engine.RunAll()
	res := &Result{
		Scenario:   sc,
		End:        end,
		Sender:     cl.AggregateSenderStats(),
		Middleware: cl.ThemisStats(),
		Net:        cl.Net.Counters(),
		Engine:     cl.Engine.Metrics(),
		Violations: CheckInvariants(cl, remaining),
	}
	if len(res.Violations) > 0 && flight != nil {
		path, err := flight.Dump(fmt.Sprintf("seed%d", sc.Seed), sc.Seed, res.Violations)
		if err != nil {
			// Surface the dump failure next to the violations it documents;
			// never mask the original finding.
			res.Violations = append(res.Violations, obs.DumpError(err))
		} else {
			res.FlightDump = path
		}
	}
	return res, nil
}

// Soak generates and runs scenarios for seeds [first, first+count) and
// returns the results. It stops early only on harness errors (config bugs),
// never on invariant violations — those are reported per result so a sweep
// surfaces every bad seed at once.
func Soak(first int64, count int, opt Options) ([]*Result, error) {
	return soak(first, count, opt, Generate)
}

// SoakConvergence is Soak with the routing-focused generator: flap storms,
// pod-uplink loss and maintenance drains (plus the classic kinds) against
// whatever routing mode opt selects. Run it once with DistributedRouting
// and a non-zero ConvergenceDelay and once against the oracle to compare
// graceful degradation across reconvergence windows.
func SoakConvergence(first int64, count int, opt Options) ([]*Result, error) {
	return soak(first, count, opt, GenerateConvergence)
}

func soak(first int64, count int, opt Options, gen func(int64, *topo.Topology) Scenario) ([]*Result, error) {
	opt = opt.withDefaults()
	// The generator needs the topology; build a throwaway cluster once.
	probe, err := BuildCluster(Scenario{Seed: first}, opt)
	if err != nil {
		return nil, err
	}
	var out []*Result
	for i := 0; i < count; i++ {
		seed := first + int64(i)
		sc := gen(seed, probe.Topo)
		res, err := RunScenario(sc, opt)
		if err != nil {
			return out, fmt.Errorf("chaos: seed %d: %w", seed, err)
		}
		out = append(out, res)
	}
	return out, nil
}
