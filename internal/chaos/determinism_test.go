package chaos

import (
	"testing"

	"themis/internal/trace"
)

// runTraced executes one generated scenario with a tracer installed and
// returns the full result plus the retained event stream.
func runTraced(t *testing.T, seed int64) (*Result, []trace.Event) {
	t.Helper()
	opt := Options{Tracer: trace.New(1 << 14)}
	probe, err := BuildCluster(Scenario{Seed: seed}, opt)
	if err != nil {
		t.Fatalf("build probe cluster: %v", err)
	}
	sc := Generate(seed, probe.Topo)
	res, err := RunScenario(sc, opt)
	if err != nil {
		t.Fatalf("run scenario: %v", err)
	}
	return res, opt.Tracer.Events()
}

// TestRunDeterminism is the regression test behind themis-lint's whole reason
// to exist: the same chaos seed must reproduce the run bit for bit. It runs
// one fault-heavy scenario twice and requires the retained trace-ring
// contents — every packet hop, verdict and fault, in order — and the final
// aggregate stats to be identical. Any wall-clock read, global-rand call or
// map-order leak into the event queue shows up here as a diff.
func TestRunDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		resA, evA := runTraced(t, seed)
		resB, evB := runTraced(t, seed)

		if resA.End != resB.End {
			t.Errorf("seed %d: end time differs: %v vs %v", seed, resA.End, resB.End)
		}
		if resA.Sender != resB.Sender {
			t.Errorf("seed %d: sender stats differ:\n  %+v\n  %+v", seed, resA.Sender, resB.Sender)
		}
		if resA.Middleware != resB.Middleware {
			t.Errorf("seed %d: middleware stats differ:\n  %+v\n  %+v", seed, resA.Middleware, resB.Middleware)
		}
		if resA.Net != resB.Net {
			t.Errorf("seed %d: fabric counters differ:\n  %+v\n  %+v", seed, resA.Net, resB.Net)
		}

		if len(evA) != len(evB) {
			t.Fatalf("seed %d: trace length differs: %d vs %d events", seed, len(evA), len(evB))
		}
		for i := range evA {
			if evA[i] != evB[i] {
				t.Fatalf("seed %d: trace diverges at event %d:\n  run A: %v\n  run B: %v",
					seed, i, evA[i], evB[i])
			}
		}
		if len(evA) == 0 {
			t.Errorf("seed %d: empty trace — tracer not wired through the run", seed)
		}
	}
}
