// Package chaos is a deterministic fault-injection subsystem for the Themis
// simulator. A Scenario — derived entirely from a seed — schedules faults on
// the discrete-event engine: link flaps with routing reconvergence, per-link
// random drop and corruption, control-plane (ACK/NACK/CNP) loss, ToR reboots
// that wipe the middleware's Fig. 4a state mid-flow, and black-holed ports
// that silently eat traffic until the monitoring plane notices.
//
// The point of the package is the paper's §6 robustness story made
// executable: under every generated fault schedule the system must degrade
// gracefully — every message completes, no QP wedges, Themis never leaks
// ring state, and every compensation NACK corresponds to a previously
// blocked NACK. RunScenario wires a cluster, injects the scenario and checks
// those invariants; a violating seed reproduces the exact run.
package chaos

import (
	"fmt"
	"math/rand"

	"themis/internal/sim"
	"themis/internal/topo"
)

// FaultKind enumerates the injectable fault classes.
type FaultKind int

const (
	// LinkFlap takes a fabric link down at At and repairs it At+Duration
	// later, driving the §6 monitoring-plane reaction both ways (Themis
	// disables cluster-wide, routing reconverges, then recovers).
	LinkFlap FaultKind = iota
	// DropRate drops each data packet crossing the target link with
	// probability Rate during [At, At+Duration).
	DropRate
	// CorruptRate models bit corruption on the target link: a corrupted
	// packet fails its ICRC at the receiver and is discarded, so on the wire
	// it is indistinguishable from a drop — but it is generated as a
	// distinct class because real fabrics exhibit both independently.
	CorruptRate
	// CtrlLoss drops each control packet (ACK/NACK/CNP) fabric-wide with
	// probability Rate during [At, At+Duration). Requires a cluster built
	// with LossyControl (the harness's default).
	CtrlLoss
	// TorReboot power-cycles the Themis instance on switch Sw at At: flow
	// table and ring queues are lost mid-flow (core.Themis.Reboot).
	TorReboot
	// Blackhole silently drops everything on the target link from At until
	// the monitoring plane detects it At+Duration later and fails the link
	// over (FailLink); the link is repaired another Duration after that.
	Blackhole
	// FlapStorm cycles the target link down/up three times inside
	// [At, At+Duration). Under a distributed routing plane with non-zero
	// per-hop delay every cycle restarts convergence before the previous
	// episode finishes — the stale-FIB stress test. Generate never draws the
	// kinds below Blackhole; they belong to GenerateConvergence.
	FlapStorm
	// UplinkLoss takes down every uplink of the ToR Sw except its lowest at
	// At and repairs them all at At+Duration: the pod-uplink-loss event that
	// shrinks every remote ECMP group toward the ToR to a single path.
	UplinkLoss
	// Drain models a maintenance drain: the target link is administratively
	// withdrawn from routing at At (traffic shifts away while the link still
	// forwards), physically taken down at At+Duration/2, repaired at
	// At+Duration and undrained after. Done right this is lossless.
	Drain
)

// String returns the fault mnemonic.
func (k FaultKind) String() string {
	switch k {
	case LinkFlap:
		return "link-flap"
	case DropRate:
		return "drop-rate"
	case CorruptRate:
		return "corrupt-rate"
	case CtrlLoss:
		return "ctrl-loss"
	case TorReboot:
		return "tor-reboot"
	case Blackhole:
		return "blackhole"
	case FlapStorm:
		return "flap-storm"
	case UplinkLoss:
		return "uplink-loss"
	case Drain:
		return "drain"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one scheduled fault. Sw/Port identify the target fabric link
// (TorReboot uses only Sw; CtrlLoss ignores both and applies fabric-wide).
type Fault struct {
	Kind     FaultKind
	At       sim.Duration // injection time
	Duration sim.Duration // outage / active window / detection latency
	Sw, Port int
	Rate     float64 // drop probability for the rate-based kinds
}

// String renders the fault compactly.
func (f Fault) String() string {
	switch f.Kind {
	case TorReboot:
		return fmt.Sprintf("%v@%v sw%d", f.Kind, f.At, f.Sw)
	case CtrlLoss:
		return fmt.Sprintf("%v@%v+%v p=%.3f", f.Kind, f.At, f.Duration, f.Rate)
	case DropRate, CorruptRate:
		return fmt.Sprintf("%v@%v+%v sw%d.%d p=%.3f", f.Kind, f.At, f.Duration, f.Sw, f.Port, f.Rate)
	default:
		return fmt.Sprintf("%v@%v+%v sw%d.%d", f.Kind, f.At, f.Duration, f.Sw, f.Port)
	}
}

// Scenario is a seeded fault schedule. Everything about a run — the fault
// schedule, every probabilistic drop decision, and the workload — derives
// from Seed, so a scenario that violates an invariant replays exactly.
type Scenario struct {
	Seed   int64
	Faults []Fault
}

// String renders the scenario for failure reports.
func (s Scenario) String() string {
	out := fmt.Sprintf("seed %d:", s.Seed)
	for _, f := range s.Faults {
		out += " [" + f.String() + "]"
	}
	return out
}

// Generate derives a scenario deterministically from seed for the given
// topology: one to three faults drawn over the fabric links and ToR
// switches, with injection times spread across the early life of the
// transfers so faults land mid-flow.
func Generate(seed int64, tp *topo.Topology) Scenario {
	rng := rand.New(rand.NewSource(seed))
	links := fabricLinks(tp)
	tors := torSwitches(tp)
	n := 1 + rng.Intn(3)
	sc := Scenario{Seed: seed}
	for i := 0; i < n; i++ {
		kind := FaultKind(rng.Intn(int(Blackhole) + 1))
		f := Fault{
			Kind:     kind,
			At:       sim.Duration(10+rng.Intn(150)) * sim.Microsecond,
			Duration: sim.Duration(20+rng.Intn(180)) * sim.Microsecond,
		}
		switch kind {
		case TorReboot:
			f.Sw = tors[rng.Intn(len(tors))]
		case CtrlLoss:
			f.Sw, f.Port = -1, -1
			f.Rate = 0.002 + 0.02*rng.Float64()
		default:
			l := links[rng.Intn(len(links))]
			f.Sw, f.Port = l[0], l[1]
			if kind == DropRate || kind == CorruptRate {
				f.Rate = 0.001 + 0.02*rng.Float64()
			}
		}
		sc.Faults = append(sc.Faults, f)
	}
	return sc
}

// GenerateConvergence derives a routing-focused scenario deterministically
// from seed: one to three faults drawn from the full kind set with a bias
// toward the convergence stressors (flap storms, pod-uplink loss, drains)
// that only matter when the cluster runs the distributed control plane with
// a non-zero per-hop delay. The seed is XOR-folded so the same seed yields
// an unrelated schedule from Generate's.
func GenerateConvergence(seed int64, tp *topo.Topology) Scenario {
	rng := rand.New(rand.NewSource(seed ^ 0xc0e7))
	links := fabricLinks(tp)
	tors := torSwitches(tp)
	n := 1 + rng.Intn(3)
	sc := Scenario{Seed: seed}
	// Kind menu: the three routing stressors appear twice so roughly two
	// thirds of the draws exercise the convergence machinery; the remainder
	// mixes in the classic kinds so routing churn overlaps state loss and
	// control-plane loss.
	menu := []FaultKind{
		FlapStorm, FlapStorm, UplinkLoss, UplinkLoss, Drain, Drain,
		LinkFlap, TorReboot, CtrlLoss,
	}
	for i := 0; i < n; i++ {
		kind := menu[rng.Intn(len(menu))]
		f := Fault{
			Kind:     kind,
			At:       sim.Duration(10+rng.Intn(150)) * sim.Microsecond,
			Duration: sim.Duration(40+rng.Intn(160)) * sim.Microsecond,
		}
		switch kind {
		case TorReboot, UplinkLoss:
			f.Sw = tors[rng.Intn(len(tors))]
		case CtrlLoss:
			f.Sw, f.Port = -1, -1
			f.Rate = 0.002 + 0.02*rng.Float64()
		default:
			l := links[rng.Intn(len(links))]
			f.Sw, f.Port = l[0], l[1]
		}
		sc.Faults = append(sc.Faults, f)
	}
	return sc
}

// DrainFault returns a deterministic maintenance drain of the first ToR's
// first uplink, placed late enough that transfers are in full flight. The
// CLI's -drain flag and the convergence grid's drain arm both append it.
func DrainFault(tp *topo.Topology) Fault {
	tors := torSwitches(tp)
	sw := tors[0]
	port := -1
	for pi := range tp.Switches()[sw].Ports {
		if !tp.Switches()[sw].Ports[pi].IsHostPort() {
			port = pi
			break
		}
	}
	return Fault{
		Kind:     Drain,
		At:       30 * sim.Microsecond,
		Duration: 80 * sim.Microsecond,
		Sw:       sw,
		Port:     port,
	}
}

// fabricLinks lists every (switch, port) fabric link endpoint.
func fabricLinks(tp *topo.Topology) [][2]int {
	var links [][2]int
	for _, sw := range tp.Switches() {
		for pi := range sw.Ports {
			if !sw.Ports[pi].IsHostPort() {
				links = append(links, [2]int{sw.ID, pi})
			}
		}
	}
	return links
}

// torSwitches lists the switches that can host a Themis instance.
func torSwitches(tp *topo.Topology) []int {
	var tors []int
	for _, sw := range tp.Switches() {
		if sw.Tier == 0 && len(sw.Hosts()) > 0 {
			tors = append(tors, sw.ID)
		}
	}
	return tors
}
