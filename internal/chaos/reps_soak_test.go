package chaos

import (
	"testing"

	"themis/internal/sim"
	"themis/internal/workload"
)

// blackholeScenario is the recovery benchmark fault: leaf 1's first uplink
// silently eats every packet for 300 µs starting at 20 µs — long enough that
// spraying arms keep losing ~1/3 of their packets until their feedback reacts
// — and is then failed over and repaired by the detector.
func blackholeScenario(seed int64) Scenario {
	return Scenario{Seed: seed, Faults: []Fault{
		{Kind: Blackhole, At: 20 * sim.Microsecond, Duration: 300 * sim.Microsecond, Sw: 1, Port: 2},
	}}
}

// TestREPSRecoversFasterThanRPSUnderBlackhole is the REPS acceptance soak:
// across 50 seeds of the same silent-blackhole fault, the entropy cache must
// finish measurably sooner on average than feedback-blind random spraying.
// The mechanism: REPS' NACK/RTO feedback evicts entropy pointing into the
// hole and recycles only ACKed (known-good) values, so retransmissions steer
// around the dead spine, while RPS keeps spraying ~1/3 of every window into
// it until the detector fails the link over.
func TestREPSRecoversFasterThanRPSUnderBlackhole(t *testing.T) {
	const seeds = 50
	run := func(mode workload.LBMode) (mean sim.Duration) {
		opt := Options{LB: mode, LBSet: true, MessageBytes: 256 << 10}
		var total sim.Duration
		for seed := int64(1); seed <= seeds; seed++ {
			res, err := RunScenario(blackholeScenario(seed), opt)
			if err != nil {
				t.Fatalf("%v seed %d: %v", mode, seed, err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("%v seed %d violations: %v", mode, seed, res.Violations)
			}
			total += sim.Duration(res.End)
		}
		return total / seeds
	}
	reps := run(workload.REPS)
	rps := run(workload.RandomSpray)
	t.Logf("mean completion: reps=%v rps=%v", reps, rps)
	if reps >= rps {
		t.Fatalf("REPS (%v) did not beat RPS (%v) under a blackhole", reps, rps)
	}
	// "Measurably": at least a few percent, not a rounding artifact.
	if margin := rps - reps; margin*100 < rps*2 {
		t.Fatalf("REPS margin %v over RPS %v is below 2%%", margin, rps)
	}
}
