package chaos

import (
	"math/rand"

	"themis/internal/packet"
	"themis/internal/sim"
	"themis/internal/trace"
	"themis/internal/workload"
)

// lossRule is one time-windowed probabilistic drop rule. The injector's
// LossFunc is the union of the active rules.
type lossRule struct {
	from, to  sim.Time
	sw, port  int // -1 wildcards
	ctrl, dat bool
	rate      float64
}

func (r *lossRule) matches(now sim.Time, pkt *packet.Packet, sw, port int) bool {
	if now < r.from || now >= r.to {
		return false
	}
	if r.sw >= 0 && r.sw != sw {
		return false
	}
	if r.port >= 0 && r.port != port {
		return false
	}
	if pkt.Kind.IsControl() {
		return r.ctrl
	}
	return r.dat
}

// Injector realizes a Scenario on a workload.Cluster: it installs a composed
// fabric LossFunc for the rate-based faults and schedules the discrete
// faults (flaps, reboots, blackhole detection) on the cluster's engine.
// Every probabilistic decision draws from a rand.Rand seeded with the
// scenario seed, so two runs of the same scenario are identical.
type Injector struct {
	cl    *workload.Cluster
	sc    Scenario
	rng   *rand.Rand
	rules []*lossRule
}

// NewInjector prepares (but does not install) the injector.
func NewInjector(cl *workload.Cluster, sc Scenario) *Injector {
	return &Injector{cl: cl, sc: sc, rng: rand.New(rand.NewSource(sc.Seed))}
}

// Install wires the scenario into the cluster. Must be called before the
// simulation runs (fault times are absolute). It replaces the network's
// LossFunc.
func (in *Injector) Install() {
	eng := in.cl.Engine
	for _, f := range in.sc.Faults {
		f := f
		start := sim.Time(f.At)
		end := sim.Time(f.At + f.Duration)
		switch f.Kind {
		case LinkFlap:
			eng.At(start, func() {
				in.recordFault(trace.FaultLinkDown, f.Sw, f.Port)
				in.cl.FailLink(f.Sw, f.Port)
			})
			eng.At(end, func() {
				in.recordFault(trace.FaultLinkUp, f.Sw, f.Port)
				in.cl.RepairLink(f.Sw, f.Port)
			})
		case DropRate, CorruptRate:
			in.rules = append(in.rules, &lossRule{
				from: start, to: end, sw: f.Sw, port: f.Port, dat: true, rate: f.Rate,
			})
		case CtrlLoss:
			in.rules = append(in.rules, &lossRule{
				from: start, to: end, sw: -1, port: -1, ctrl: true, rate: f.Rate,
			})
		case TorReboot:
			eng.At(start, func() { in.cl.RebootToR(f.Sw) })
		case Blackhole:
			// Silent loss until the monitoring plane detects the port at
			// At+Duration and fails it over; repaired one detection window
			// later. The rule covers only the silent phase — once the link
			// is administratively down the fabric drops at the queue head.
			in.rules = append(in.rules, &lossRule{
				from: start, to: end, sw: f.Sw, port: f.Port, ctrl: true, dat: true, rate: 1,
			})
			eng.At(end, func() {
				in.recordFault(trace.FaultLinkDown, f.Sw, f.Port)
				in.cl.FailLink(f.Sw, f.Port)
			})
			eng.At(sim.Time(f.At+2*f.Duration), func() {
				in.recordFault(trace.FaultLinkUp, f.Sw, f.Port)
				in.cl.RepairLink(f.Sw, f.Port)
			})
		case FlapStorm:
			// Three down/up cycles inside the window. With a distributed
			// routing plane each cycle restarts convergence before the last
			// one settles; with the oracle each is an instant recompute.
			cycle := f.Duration / 3
			for c := 0; c < 3; c++ {
				down := start + sim.Time(sim.Duration(c)*cycle)
				up := down + sim.Time(cycle/2)
				eng.At(down, func() {
					in.recordFault(trace.FaultLinkDown, f.Sw, f.Port)
					in.cl.FailLink(f.Sw, f.Port)
				})
				eng.At(up, func() {
					in.recordFault(trace.FaultLinkUp, f.Sw, f.Port)
					in.cl.RepairLink(f.Sw, f.Port)
				})
			}
		case UplinkLoss:
			// Every uplink of ToR f.Sw but the lowest goes down together —
			// remote ECMP groups toward the rack collapse to a single path.
			ports := in.uplinksOf(f.Sw)
			for _, p := range ports[1:] {
				p := p
				eng.At(start, func() {
					in.recordFault(trace.FaultLinkDown, f.Sw, p)
					in.cl.FailLink(f.Sw, p)
				})
				eng.At(end, func() {
					in.recordFault(trace.FaultLinkUp, f.Sw, p)
					in.cl.RepairLink(f.Sw, p)
				})
			}
		case Drain:
			// Maintenance order: withdraw from routing first, let traffic
			// shift away, then take the link down; repair, then readmit.
			eng.At(start, func() { in.cl.DrainLink(f.Sw, f.Port) })
			eng.At(start+sim.Time(f.Duration/2), func() {
				in.recordFault(trace.FaultLinkDown, f.Sw, f.Port)
				in.cl.FailLink(f.Sw, f.Port)
			})
			eng.At(end, func() {
				in.recordFault(trace.FaultLinkUp, f.Sw, f.Port)
				in.cl.RepairLink(f.Sw, f.Port)
				in.cl.UndrainLink(f.Sw, f.Port)
			})
		}
	}
	if len(in.rules) > 0 {
		in.cl.Net.SetLossFunc(in.lossFunc)
	}
}

// lossFunc is the composed fabric hook: the first active matching rule
// decides the packet's fate.
func (in *Injector) lossFunc(pkt *packet.Packet, sw, port int) bool {
	now := in.cl.Engine.Now()
	for _, r := range in.rules {
		if !r.matches(now, pkt, sw, port) {
			continue
		}
		if r.rate >= 1 || in.rng.Float64() < r.rate {
			return true
		}
	}
	return false
}

// uplinksOf lists switch sw's fabric ports in ascending order.
func (in *Injector) uplinksOf(sw int) []int {
	var ports []int
	s := in.cl.Topo.Switches()[sw]
	for pi := range s.Ports {
		if !s.Ports[pi].IsHostPort() {
			ports = append(ports, pi)
		}
	}
	return ports
}

func (in *Injector) recordFault(op trace.Op, sw, port int) {
	if tr := in.cl.Config.Tracer; tr != nil {
		tr.RecordFault(in.cl.Engine.Now(), op, sw, port)
	}
}
