package chaos

import (
	"reflect"
	"testing"

	"themis/internal/sim"
)

func TestConvergenceFaultKindStrings(t *testing.T) {
	names := map[FaultKind]string{
		FlapStorm: "flap-storm", UplinkLoss: "uplink-loss", Drain: "drain",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d: got %q want %q", k, k.String(), want)
		}
	}
}

func TestGenerateConvergenceDeterministicAndWellFormed(t *testing.T) {
	tp := testTopo(t)
	a := GenerateConvergence(42, tp)
	b := GenerateConvergence(42, tp)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different scenarios:\n%v\n%v", a, b)
	}
	sawRouting := false
	for seed := int64(1); seed <= 200; seed++ {
		sc := GenerateConvergence(seed, tp)
		if len(sc.Faults) < 1 || len(sc.Faults) > 3 {
			t.Fatalf("seed %d: %d faults", seed, len(sc.Faults))
		}
		for _, f := range sc.Faults {
			if f.At <= 0 || f.Duration <= 0 {
				t.Fatalf("seed %d: non-positive times in %v", seed, f)
			}
			switch f.Kind {
			case FlapStorm, UplinkLoss, Drain:
				sawRouting = true
			}
			switch f.Kind {
			case TorReboot, UplinkLoss:
				if sw := tp.Switch(f.Sw); sw.Tier != 0 {
					t.Fatalf("seed %d: %v targets non-ToR", seed, f)
				}
			case CtrlLoss:
				if f.Rate <= 0 || f.Rate >= 0.05 {
					t.Fatalf("seed %d: ctrl-loss rate %v", seed, f.Rate)
				}
			default:
				if tp.Switch(f.Sw).Ports[f.Port].IsHostPort() {
					t.Fatalf("seed %d: fault targets host port %v", seed, f)
				}
			}
		}
	}
	if !sawRouting {
		t.Fatal("200 seeds never drew a routing stressor")
	}
}

func TestDrainFaultTargetsUplink(t *testing.T) {
	tp := testTopo(t)
	f := DrainFault(tp)
	if f.Kind != Drain {
		t.Fatalf("kind = %v", f.Kind)
	}
	if tp.Switch(f.Sw).Tier != 0 {
		t.Fatalf("drain targets non-ToR sw %d", f.Sw)
	}
	if tp.Switch(f.Sw).Ports[f.Port].IsHostPort() {
		t.Fatalf("drain targets host port %d.%d", f.Sw, f.Port)
	}
}

// A maintenance drain under the distributed plane must degrade gracefully:
// routing withdraws the link, traffic shifts away, the physical drop and
// repair follow, and every invariant (including the new routing ones —
// converged FIBs, zero steady-state loop drops, no outstanding drains)
// holds at drain time.
func TestDrainScenarioGraceful(t *testing.T) {
	tp := testTopo(t)
	sc := Scenario{Seed: 21, Faults: []Fault{DrainFault(tp)}}
	res, err := RunScenario(sc, Options{
		DistributedRouting: true,
		ConvergenceDelay:   10 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Sender.Completions == 0 {
		t.Fatal("no completions")
	}
}

// A flap storm with a slow control plane is the worst case for stale FIBs:
// each cycle restarts convergence before the last settles. The run may drop
// packets in the reconvergence windows (that is the point) but must still
// complete every transfer and end converged with zero post-quiescence loop
// drops.
func TestFlapStormSlowConvergenceRecovers(t *testing.T) {
	sc := Scenario{Seed: 23, Faults: []Fault{
		{Kind: FlapStorm, At: 20 * sim.Microsecond, Duration: 120 * sim.Microsecond, Sw: 0, Port: 2},
	}}
	res, err := RunScenario(sc, Options{
		DistributedRouting: true,
		ConvergenceDelay:   25 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}

func TestUplinkLossShrinksThenRecovers(t *testing.T) {
	sc := Scenario{Seed: 29, Faults: []Fault{
		{Kind: UplinkLoss, At: 30 * sim.Microsecond, Duration: 100 * sim.Microsecond, Sw: 1},
	}}
	res, err := RunScenario(sc, Options{
		DistributedRouting: true,
		ConvergenceDelay:   10 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
}

// Delay-0 distributed is the oracle: same fault schedules, same traffic,
// identical results down to every counter and the engine event count —
// reflect.DeepEqual over the whole Result, not a tolerance.
func TestDelayZeroDistributedIdenticalToOracle(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		tp := testTopo(t)
		sc := Generate(seed, tp)
		oracle, err := RunScenario(sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		dist, err := RunScenario(sc, Options{DistributedRouting: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(oracle, dist) {
			t.Fatalf("seed %d: delay-0 distributed diverged from oracle:\noracle: %+v\ndist:   %+v", seed, oracle, dist)
		}
	}
}

func goodputGbps(res *Result) float64 {
	sec := res.End.Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(res.Sender.GoodputBytes) * 8 / sec / 1e9
}

// TestConvergenceSoak is the PR's acceptance gate: 50 seeded routing-focused
// scenarios (flap storms, pod-uplink loss, maintenance drains, plus reboots
// and control loss) against the distributed plane with a deliberately slow
// 20 us per-hop delay. Every invariant — including converged FIBs and zero
// post-quiescence loop drops — must hold on every seed, and per-seed goodput
// must stay within a floor of the oracle baseline running the exact same
// schedules: reconvergence windows may hurt, but never wedge.
func TestConvergenceSoak(t *testing.T) {
	const seeds = 50
	opt := Options{
		DistributedRouting: true,
		ConvergenceDelay:   20 * sim.Microsecond,
	}
	dist, err := SoakConvergence(1, seeds, opt)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := SoakConvergence(1, seeds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != seeds || len(oracle) != seeds {
		t.Fatalf("ran %d/%d scenarios, want %d", len(dist), len(oracle), seeds)
	}
	faulted := 0
	for i, res := range dist {
		if len(res.Violations) != 0 {
			t.Errorf("%v\n  violations: %v", res.Scenario, res.Violations)
		}
		if len(oracle[i].Violations) != 0 {
			t.Errorf("oracle %v\n  violations: %v", oracle[i].Scenario, oracle[i].Violations)
		}
		if res.Net.DataDrops+res.Net.CtrlDrops+res.Net.LinkDrops+res.Net.LoopDrops > 0 ||
			res.Middleware.Reboots > 0 || res.Sender.Timeouts > 0 {
			faulted++
		}
		// Goodput floor, stated as its reciprocal: the transfers are fixed
		// size, so bounding completion time bounds goodput. A reconvergence
		// window costs recovery time in units of the RTO backoff (capped at
		// 10 ms) while the oracle loses nothing, so tens of ms of slip is
		// legitimate; 200 ms (≈0.5 Gbps aggregate over 12 MB) means flows
		// are leaking packets steadily, and the 2 s horizon means a wedge.
		if res.End > oracle[i].End+sim.Time(200*sim.Millisecond) {
			t.Errorf("%v\n  end %v exceeds oracle %v by more than 200ms (goodput %.2f vs %.2f Gbps)",
				res.Scenario, res.End, oracle[i].End, goodputGbps(res), goodputGbps(oracle[i]))
		}
	}
	// The soak is vacuous if the schedules never actually hurt anything.
	if faulted < seeds/2 {
		t.Fatalf("only %d/%d scenarios caused observable damage", faulted, seeds)
	}
}
