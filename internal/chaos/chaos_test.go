package chaos

import (
	"reflect"
	"testing"

	"themis/internal/sim"
	"themis/internal/topo"
	"themis/internal/trace"
)

func testTopo(t *testing.T) *topo.Topology {
	t.Helper()
	tp, err := topo.NewLeafSpine(topo.LeafSpineConfig{
		Leaves: 3, Spines: 3, HostsPerLeaf: 2,
		HostLink:   topo.LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
		FabricLink: topo.LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestFaultKindStrings(t *testing.T) {
	names := map[FaultKind]string{
		LinkFlap: "link-flap", DropRate: "drop-rate", CorruptRate: "corrupt-rate",
		CtrlLoss: "ctrl-loss", TorReboot: "tor-reboot", Blackhole: "blackhole",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d: got %q want %q", k, k.String(), want)
		}
	}
}

func TestGenerateDeterministicAndWellFormed(t *testing.T) {
	tp := testTopo(t)
	a := Generate(42, tp)
	b := Generate(42, tp)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different scenarios:\n%v\n%v", a, b)
	}
	for seed := int64(1); seed <= 200; seed++ {
		sc := Generate(seed, tp)
		if len(sc.Faults) < 1 || len(sc.Faults) > 3 {
			t.Fatalf("seed %d: %d faults", seed, len(sc.Faults))
		}
		for _, f := range sc.Faults {
			if f.At <= 0 || f.Duration <= 0 {
				t.Fatalf("seed %d: non-positive times in %v", seed, f)
			}
			switch f.Kind {
			case TorReboot:
				if sw := tp.Switch(f.Sw); sw.Tier != 0 {
					t.Fatalf("seed %d: reboot targets non-ToR %v", seed, f)
				}
			case CtrlLoss:
				if f.Rate <= 0 || f.Rate >= 0.05 {
					t.Fatalf("seed %d: ctrl-loss rate %v", seed, f.Rate)
				}
			default:
				if tp.Switch(f.Sw).Ports[f.Port].IsHostPort() {
					t.Fatalf("seed %d: fault targets host port %v", seed, f)
				}
			}
		}
	}
}

func TestScenarioString(t *testing.T) {
	sc := Scenario{Seed: 7, Faults: []Fault{
		{Kind: LinkFlap, At: sim.Microsecond, Duration: sim.Microsecond, Sw: 1, Port: 2},
		{Kind: TorReboot, At: sim.Microsecond, Sw: 0},
	}}
	s := sc.String()
	for _, want := range []string{"seed 7", "link-flap", "sw1.2", "tor-reboot", "sw0"} {
		if !contains(s, want) {
			t.Fatalf("scenario string %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestRunScenarioNoFaultsBaseline(t *testing.T) {
	res, err := RunScenario(Scenario{Seed: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations on a fault-free run: %v", res.Violations)
	}
	if res.Sender.Completions == 0 {
		t.Fatal("no completions")
	}
}

func TestLinkFlapRecordsTraceAndRecovers(t *testing.T) {
	tr := trace.New(1 << 19)
	sc := Scenario{Seed: 3, Faults: []Fault{
		{Kind: LinkFlap, At: 20 * sim.Microsecond, Duration: 100 * sim.Microsecond, Sw: 0, Port: 2},
	}}
	res, err := RunScenario(sc, Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if n := len(tr.ByOp(trace.FaultLinkDown)); n != 1 {
		t.Fatalf("fault-down events = %d", n)
	}
	if n := len(tr.ByOp(trace.FaultLinkUp)); n != 1 {
		t.Fatalf("fault-up events = %d", n)
	}
}

// The acceptance scenario: a ToR reboot mid-flow loses the Fig. 4a state.
// The hardened cluster (Relearn + RTO backoff) must complete every transfer
// and never permanently block a valid NACK — transfers finishing is the
// observable proof, relearns and the reboot counter pin down the mechanism.
func TestTorRebootRecovery(t *testing.T) {
	tr := trace.New(1 << 19)
	sc := Scenario{Seed: 11, Faults: []Fault{
		// Reboot ToR 0 while its flows are mid-transfer, with concurrent
		// data loss so NACK traffic exercises the rebuilt state.
		{Kind: TorReboot, At: 40 * sim.Microsecond, Sw: 0},
		{Kind: DropRate, At: 10 * sim.Microsecond, Duration: 150 * sim.Microsecond, Sw: 0, Port: 2, Rate: 0.01},
	}}
	res, err := RunScenario(sc, Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Middleware.Reboots != 1 {
		t.Fatalf("reboots = %d", res.Middleware.Reboots)
	}
	if res.Middleware.Relearns == 0 {
		t.Fatal("rebooted ToR never relearned its flows")
	}
	if n := len(tr.ByOp(trace.FaultReset)); n != 1 {
		t.Fatalf("fault-reset events = %d", n)
	}
}

func TestBlackholeDetectedAndRepaired(t *testing.T) {
	sc := Scenario{Seed: 5, Faults: []Fault{
		{Kind: Blackhole, At: 30 * sim.Microsecond, Duration: 120 * sim.Microsecond, Sw: 1, Port: 2},
	}}
	res, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	// The silent window must actually eat traffic; recovery then relies on
	// the sender's RTO backoff until detection fails the link over.
	if res.Net.DataDrops == 0 && res.Net.CtrlDrops == 0 {
		t.Fatal("blackhole dropped nothing")
	}
}

func TestCtrlLossScenarioCompletes(t *testing.T) {
	sc := Scenario{Seed: 9, Faults: []Fault{
		{Kind: CtrlLoss, At: 10 * sim.Microsecond, Duration: 200 * sim.Microsecond, Sw: -1, Port: -1, Rate: 0.02},
	}}
	res, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Net.CtrlDrops == 0 {
		t.Fatal("no control packets dropped")
	}
}

func TestRunScenarioDeterministic(t *testing.T) {
	tp := testTopo(t)
	sc := Generate(17, tp)
	a, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.End != b.End || a.Sender != b.Sender || a.Middleware != b.Middleware || a.Net != b.Net {
		t.Fatalf("same scenario, different runs:\n%+v\n%+v", a, b)
	}
}

// TestChaosSoak is the tentpole acceptance gate: ≥50 seeded scenarios, every
// invariant holds on each. A failing seed prints its full scenario — rerun
// RunScenario(Generate(seed, topo), Options{}) to reproduce deterministically.
func TestChaosSoak(t *testing.T) {
	const seeds = 50
	results, err := Soak(1, seeds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != seeds {
		t.Fatalf("ran %d scenarios, want %d", len(results), seeds)
	}
	faulted := 0
	for _, res := range results {
		if len(res.Violations) != 0 {
			t.Errorf("%v\n  violations: %v", res.Scenario, res.Violations)
		}
		if res.Net.DataDrops+res.Net.CtrlDrops+res.Net.LinkDrops > 0 ||
			res.Middleware.Reboots > 0 || res.Sender.Timeouts > 0 {
			faulted++
		}
	}
	// The soak is vacuous if the schedules never actually hurt anything.
	if faulted < seeds/2 {
		t.Fatalf("only %d/%d scenarios caused observable damage", faulted, seeds)
	}
}
