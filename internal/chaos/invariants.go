package chaos

import (
	"fmt"
	"sort"

	"themis/internal/workload"
)

// CheckInvariants audits a cluster after a scenario has run to completion
// (engine drained). remaining is the number of transfers that never
// completed. The returned strings are human-readable violations; an empty
// slice means the system degraded gracefully:
//
//  1. Every message completes — no fault schedule may wedge a transfer.
//  2. No QP is stuck with unacknowledged data after the event queue drains.
//  3. No injected failure is left outstanding (scenarios repair what they
//     break, so Themis must be re-enabled).
//  4. Ring queues never hold more entries than their capacity (entries are
//     evicted, not leaked).
//  5. Themis-D accounting is closed: every inspected NACK was either
//     forwarded or blocked, and compensations never exceed blocked NACKs
//     (a compensation exists only to stand in for a blocked-but-real loss).
//  6. Flow-table occupancy never exceeds the configured §4 SRAM budget.
//  7. Blocked NACKs are conserved: the fabric blocked exactly as many host
//     control packets as the middleware's deliberate verdicts, proving that
//     NACKs for evicted/unknown/rejected QPs were forwarded, never blocked.
//  8. No armed compensation survives once every transfer completed: each
//     resolved as cancelled (BePSN arrived) or fired (confirmed loss).
//  9. The routing plane is converged after drain: every per-switch FIB
//     matches the oracle shortest paths for the final link state. A stale
//     FIB after quiescence means a lost withdrawal or a stuck session.
//  10. Zero steady-state loop drops: a TTL expiry while the plane reported
//     quiescence (on a packet injected in the current route epoch) is a
//     forwarding loop in a converged FIB — never acceptable.
//  11. No maintenance drain is left outstanding (scenarios undrain what
//     they drain, just as they repair what they fail).
func CheckInvariants(cl *workload.Cluster, remaining int) []string {
	var v []string
	if remaining != 0 {
		v = append(v, fmt.Sprintf("%d transfers never completed", remaining))
	}
	var blockedVerdicts uint64
	for _, cn := range cl.Conns() {
		if cn.Sender.Outstanding() {
			v = append(v, fmt.Sprintf("qp %d stuck: unacked data after drain", cn.Sender.QP()))
		}
	}
	if n := cl.FailedLinks(); n != 0 {
		v = append(v, fmt.Sprintf("%d link failures left outstanding", n))
	}
	// Sorted ToR order keeps the violation list (and any log diff built from
	// it) identical across runs.
	tors := make([]int, 0, len(cl.Themis))
	for sw := range cl.Themis { //lint:ordered keys are sorted below before any output is built
		tors = append(tors, sw)
	}
	sort.Ints(tors)
	for _, sw := range tors {
		th := cl.Themis[sw]
		if th.Disabled() && cl.FailedLinks() == 0 {
			v = append(v, fmt.Sprintf("themis on sw %d still disabled after all repairs", sw))
		}
		entries, capacity, _ := th.RingStats()
		if entries > capacity {
			v = append(v, fmt.Sprintf("sw %d: ring leak: %d entries > %d capacity", sw, entries, capacity))
		}
		st := th.Stats()
		if st.NacksSeen != st.NacksForwarded+st.NacksBlocked {
			v = append(v, fmt.Sprintf("sw %d: NACK accounting leak: seen %d != fwd %d + blocked %d",
				sw, st.NacksSeen, st.NacksForwarded, st.NacksBlocked))
		}
		if st.Compensations > st.NacksBlocked {
			v = append(v, fmt.Sprintf("sw %d: %d compensations > %d blocked NACKs",
				sw, st.Compensations, st.NacksBlocked))
		}
		blockedVerdicts += st.NacksBlocked
		if budget := th.TableBudgetBytes(); budget > 0 && th.TableBytes() > budget {
			v = append(v, fmt.Sprintf("sw %d: flow table %d B over the %d B budget",
				sw, th.TableBytes(), budget))
		}
		if remaining == 0 {
			if n := th.PendingCompensations(); n != 0 {
				v = append(v, fmt.Sprintf("sw %d: %d armed compensations after all transfers completed", sw, n))
			}
		}
	}
	if blocked := cl.Net.Counters().Blocked; blocked != blockedVerdicts {
		v = append(v, fmt.Sprintf("blocked-NACK conservation broken: fabric blocked %d != middleware verdicts %d",
			blocked, blockedVerdicts))
	}
	if err := cl.Net.RouteConverged(); err != nil {
		v = append(v, fmt.Sprintf("routing plane not converged after drain: %v", err))
	}
	if drops := cl.Net.Counters().SteadyLoopDrops; drops != 0 {
		v = append(v, fmt.Sprintf("%d TTL expiries while routing reported quiescence (steady-state forwarding loop)", drops))
	}
	if n := cl.DrainedLinks(); n != 0 {
		v = append(v, fmt.Sprintf("%d maintenance drains left outstanding", n))
	}
	return v
}
