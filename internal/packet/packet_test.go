package packet

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Data: "DATA", Ack: "ACK", Nack: "NACK", Cnp: "CNP", Kind(9): "Kind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind %d: got %q want %q", k, got, want)
		}
	}
}

func TestKindIsControl(t *testing.T) {
	if Data.IsControl() {
		t.Error("Data should not be control")
	}
	for _, k := range []Kind{Ack, Nack, Cnp} {
		if !k.IsControl() {
			t.Errorf("%v should be control", k)
		}
	}
}

func TestPacketSize(t *testing.T) {
	p := &Packet{Kind: Data, Payload: 1500}
	if p.Size() != 1500+HeaderBytes {
		t.Fatalf("Size = %d", p.Size())
	}
	c := &Packet{Kind: Ack}
	if c.Size() != ControlBytes {
		t.Fatalf("control Size = %d", c.Size())
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Kind: Data, QP: 3, PSN: 17, Src: 1, Dst: 2, SPort: 999, Payload: 1000, Retransmit: true}
	s := p.String()
	for _, want := range []string{"DATA", "qp=3", "psn=17", "1->2", "sport=999", "len=1000", "rtx"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func TestFlowKey(t *testing.T) {
	a := &Packet{Src: 1, Dst: 2, SPort: 10, DPort: 4791}
	b := &Packet{Src: 1, Dst: 2, SPort: 10, DPort: 4791, PSN: 99}
	if a.Key() != b.Key() {
		t.Fatal("PSN must not affect flow key")
	}
	c := &Packet{Src: 1, Dst: 2, SPort: 11, DPort: 4791}
	if a.Key() == c.Key() {
		t.Fatal("sport must affect flow key")
	}
}

func TestPoolReuse(t *testing.T) {
	pl := NewPool()
	p1 := pl.Get()
	p1.PSN = 42
	p1.ECN = true
	pl.Put(p1)
	p2 := pl.Get()
	if p2 != p1 {
		t.Fatal("pool did not reuse packet")
	}
	if p2.PSN != 0 || p2.ECN {
		t.Fatal("reused packet not zeroed")
	}
	allocs, reuses, returns := pl.Stats()
	if allocs != 1 || reuses != 1 || returns != 1 {
		t.Fatalf("stats = %d %d %d", allocs, reuses, returns)
	}
}

func TestPoolPutNil(t *testing.T) {
	pl := NewPool()
	pl.Put(nil) // must not panic or count
	_, _, returns := pl.Stats()
	if returns != 0 {
		t.Fatal("nil Put counted")
	}
}

func TestPoolManyCycles(t *testing.T) {
	pl := NewPool()
	live := make([]*Packet, 0, 64)
	for round := 0; round < 100; round++ {
		for i := 0; i < 64; i++ {
			live = append(live, pl.Get())
		}
		for _, p := range live {
			pl.Put(p)
		}
		live = live[:0]
	}
	allocs, reuses, _ := pl.Stats()
	if allocs > 64 {
		t.Fatalf("allocs = %d, want <= 64", allocs)
	}
	if reuses == 0 {
		t.Fatal("no reuses")
	}
}

// Property: a reused packet is always fully zeroed regardless of what the
// previous holder wrote into it.
func TestPoolZeroingProperty(t *testing.T) {
	pl := NewPool()
	f := func(psn uint32, payload uint16, ecn, rtx bool, sport uint16) bool {
		p := pl.Get()
		p.PSN = PSN(psn)
		p.Payload = int(payload)
		p.ECN = ecn
		p.Retransmit = rtx
		p.SPort = sport
		pl.Put(p)
		q := pl.Get()
		defer pl.Put(q)
		return *q == Packet{}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
