package packet

import "testing"

// FuzzPSNCompare checks the RFC 1982 comparison laws over the whole 24-bit
// space, wrap point included: ordering is irreflexive and antisymmetric,
// Diff agrees with Before/After, and Add inverts Diff.
func FuzzPSNCompare(f *testing.F) {
	f.Add(uint32(0), uint32(0))
	f.Add(uint32(psnMask), uint32(0))             // wrap boundary
	f.Add(uint32(psnHalf), uint32(0))             // antipodal (undefined order)
	f.Add(uint32(123456), uint32(psnMask-17))     // generic far pair
	f.Add(uint32(0xFFFFFFFF), uint32(0x01000000)) // raw values above 24 bits
	f.Fuzz(func(t *testing.T, a, b uint32) {
		p, q := NewPSN(a), NewPSN(b)
		if p == q && (p.Before(q) || p.After(q)) {
			t.Fatalf("equal PSN %d compares ordered", p)
		}
		if p.Before(q) && q.Before(p) {
			t.Fatalf("Before not antisymmetric: %d vs %d", p, q)
		}
		d := p.Diff(q)
		if d < -psnHalf || d >= psnHalf {
			t.Fatalf("Diff(%d,%d) = %d outside [-2^23, 2^23)", p, q, d)
		}
		switch {
		case d == 0:
			if p != q {
				t.Fatalf("Diff = 0 for distinct PSNs %d, %d", p, q)
			}
		case d == -psnHalf:
			// RFC 1982 leaves the antipodal pair unordered.
			if p.Before(q) || p.After(q) {
				t.Fatalf("antipodal PSNs %d, %d compare ordered", p, q)
			}
		case d > 0:
			if !p.After(q) || p.Before(q) {
				t.Fatalf("Diff = %d but After(%d,%d) = %t", d, p, q, p.After(q))
			}
		default:
			if !p.Before(q) || p.After(q) {
				t.Fatalf("Diff = %d but Before(%d,%d) = %t", d, p, q, p.Before(q))
			}
		}
		// The signed distance shifts q back onto p.
		if got := q.Add(int(d)); got != p {
			t.Fatalf("q.Add(p.Diff(q)) = %d, want %d", got, p)
		}
	})
}

// FuzzPSNAdd checks the wraparound shift: results stay in the 24-bit space,
// the shift is invertible and congruent to modular addition, and Add(1)
// matches Next.
func FuzzPSNAdd(f *testing.F) {
	f.Add(uint32(0), int32(1))
	f.Add(uint32(psnMask), int32(1)) // wrap forward
	f.Add(uint32(0), int32(-1))      // wrap backward
	f.Add(uint32(42), int32(-1<<24)) // full-cycle shift
	f.Add(uint32(0x00ABCDEF), int32(-2147483648))
	f.Fuzz(func(t *testing.T, v uint32, n int32) {
		p := NewPSN(v)
		got := p.Add(int(n))
		if uint32(got) != got.Uint32() {
			t.Fatalf("Add left bits above 2^24: %#x", uint32(got))
		}
		if p.Add(0) != p {
			t.Fatalf("Add(0) moved %d to %d", p, p.Add(0))
		}
		if back := got.Add(-int(n)); back != p {
			t.Fatalf("Add(%d) then Add(%d): %d, want %d", n, -n, back, p)
		}
		if p.Add(1) != p.Next() {
			t.Fatalf("Add(1) = %d disagrees with Next() = %d", p.Add(1), p.Next())
		}
		// got - p ≡ n (mod 2^24).
		rem := (int64(uint32(got)) - int64(uint32(p)) - int64(n)) % psnMod
		if rem < 0 {
			rem += psnMod
		}
		if rem != 0 {
			t.Fatalf("Add(%d) on %d: got %d, not congruent mod 2^24", n, p, got)
		}
	})
}
