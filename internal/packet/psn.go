package packet

// PSN is a BTH packet sequence number: a 24-bit serial number that wraps
// around, compared RFC 1982-style. Raw relational operators on PSNs are wrong
// near the wrap point (PSN 0xFFFFFF is *before* PSN 0, but `<` says the
// opposite), so direct `<`/`>`/`<=`/`>=` between PSN operands is forbidden by
// the psn-compare analyzer in internal/lint; use Before/After/Diff instead.
//
// The half-window comparison is sound as long as the span of simultaneously
// live sequence numbers (the send window plus reordering depth) stays below
// 2^23 packets — trivially true for any realistic QP, whose in-flight window
// is bounded by BDP.
type PSN uint32

// PSNBits is the width of the BTH sequence-number space.
const (
	PSNBits = 24
	psnMod  = 1 << PSNBits
	psnMask = psnMod - 1
	psnHalf = 1 << (PSNBits - 1)
)

// NewPSN returns v reduced into the 24-bit PSN space.
func NewPSN(v uint32) PSN { return PSN(v & psnMask) }

// Uint32 returns the raw 24-bit value.
func (p PSN) Uint32() uint32 { return uint32(p) & psnMask }

// Next returns the successor sequence number, wrapping at 2^24.
func (p PSN) Next() PSN { return PSN((uint32(p) + 1) & psnMask) }

// Add returns p shifted by n (n may be negative), wrapping at 2^24.
func (p PSN) Add(n int) PSN {
	return PSN(uint32(int64(p)+int64(n)) & psnMask)
}

// Before reports whether p precedes q in the wrapping sequence space: the
// forward distance from p to q is in (0, 2^23). Equal PSNs are not Before
// each other; the ambiguous antipodal case (distance exactly 2^23) reports
// false in both directions, as RFC 1982 leaves it undefined.
func (p PSN) Before(q PSN) bool {
	d := (uint32(q) - uint32(p)) & psnMask
	return d != 0 && d < psnHalf
}

// After reports whether p succeeds q in the wrapping sequence space.
func (p PSN) After(q PSN) bool { return q.Before(p) }

// Diff returns the signed smallest sequence distance p-q, in
// [-2^23, 2^23): positive when p is after q.
func (p PSN) Diff(q PSN) int32 {
	d := (uint32(p) - uint32(q)) & psnMask
	if d >= psnHalf {
		return int32(d) - psnMod
	}
	return int32(d)
}

// Mod returns the PSN's residue modulo n — the Eq. 1 path index. Because the
// PSN space (2^24) is generally not a multiple of n, the residue jumps at the
// wrap point; callers that compare residues across the wrap must keep the
// comparison window small (Themis-D's ring window is, by construction).
func (p PSN) Mod(n int) int {
	if n <= 0 {
		panic("packet: PSN.Mod with non-positive modulus")
	}
	return int(uint32(p) % uint32(n))
}

// Trunc returns the 1-byte truncated PSN that Themis-D stores in its ring
// queue (§3.3).
func (p PSN) Trunc() uint8 { return uint8(p) }
