package packet

// Pool is a free list of packets. Packet-level simulation of multi-terabyte
// transfers allocates hundreds of millions of packets; recycling them keeps
// GC pressure flat. The pool is not safe for concurrent use — the simulator
// is single-threaded by design, so parallel trials each own a pool.
//
// All methods are nil-safe: a nil *Pool degrades to plain allocation, so
// components take an optional pool and call it unconditionally.
type Pool struct {
	free []*Packet
	// Stats.
	allocs  uint64
	reuses  uint64
	returns uint64
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Get returns a zeroed packet, reusing a released one when available.
func (pl *Pool) Get() *Packet {
	if pl == nil {
		return &Packet{} //lint:alloc-ok nil-pool fallback used only by tests
	}
	n := len(pl.free)
	if n == 0 {
		pl.allocs++
		return &Packet{} //lint:alloc-ok pool miss: fresh packet, recycled via Put thereafter
	}
	p := pl.free[n-1]
	pl.free[n-1] = nil
	pl.free = pl.free[:n-1]
	pl.reuses++
	*p = Packet{}
	return p
}

// Put releases a packet back to the pool. The caller must not retain the
// pointer afterwards.
func (pl *Pool) Put(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	pl.returns++
	pl.free = append(pl.free, p) //lint:alloc-ok free-list growth is amortized; capacity is retained
}

// Stats reports (fresh allocations, reuses, returns).
func (pl *Pool) Stats() (allocs, reuses, returns uint64) {
	if pl == nil {
		return 0, 0, 0
	}
	return pl.allocs, pl.reuses, pl.returns
}
