// Package packet defines the on-the-wire unit of the simulator: a RoCE-like
// packet carrying a flow five-tuple, a queue-pair identifier, a packet
// sequence number (PSN) and the control fields the transports, the switches
// and the Themis middleware act on.
//
// The field set deliberately mirrors what a RoCEv2 deployment exposes to a
// programmable ToR switch: the UDP source port is the ECMP entropy field that
// Themis-S rewrites, the PSN lives in the BTH, and ACK/NACK packets carry the
// receiver's expected PSN (ePSN) in the AETH — NACKs never carry the PSN of
// the out-of-order packet that triggered them (§2.2 of the paper).
package packet

import "fmt"

// Kind discriminates packet roles.
type Kind uint8

const (
	// Data is a payload-bearing RDMA data segment.
	Data Kind = iota
	// Ack is a cumulative acknowledgment carrying the receiver's ePSN:
	// everything below PSN has been received.
	Ack
	// Nack requests retransmission of the packet with the carried ePSN.
	// Per the NIC-SR contract it carries only the ePSN.
	Nack
	// Cnp is a DCQCN congestion notification packet.
	Cnp
)

// String returns the kind mnemonic.
func (k Kind) String() string {
	switch k {
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	case Nack:
		return "NACK"
	case Cnp:
		return "CNP"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsControl reports whether the kind is a control packet (ACK/NACK/CNP).
func (k Kind) IsControl() bool { return k != Data }

// NodeID identifies a host (NIC) in the network.
type NodeID int32

// QPID identifies a queue pair connection between two hosts. QPIDs are
// globally unique in a simulation; a QP is unidirectional for data (the
// reverse direction carries only ACK/NACK/CNP).
type QPID int32

// Header sizes, matching RoCEv2 framing closely enough for timing purposes:
// Ethernet(14+4 FCS) + IPv4(20) + UDP(8) + BTH(12) = 58; round to 64 with
// preamble/IFG accounted as on-wire overhead.
const (
	HeaderBytes  = 64   // per-packet header+framing overhead on the wire
	ControlBytes = 64   // ACK/NACK/CNP are header-only packets
	DefaultMTU   = 1500 // default payload bytes per data packet (paper Table 1)
)

// DefaultTTL is the hop limit stamped on packets entering the fabric (the
// IPv4 TTL / IPv6 hop-limit of the encapsulating header). Any loop-free CLOS
// path is at most a handful of switch hops, so a packet that burns through
// DefaultTTL decrements has been caught in a forwarding loop — the transient
// micro-loops a reconverging distributed control plane produces — and is
// dropped instead of livelocking the event loop.
const DefaultTTL = 64

// Packet is a single simulated packet. Packets are passed by pointer through
// the fabric; ownership transfers with the pointer (a switch that drops a
// packet releases it back to the pool).
type Packet struct {
	Kind Kind

	// Flow addressing.
	Src, Dst NodeID // endpoints (hosts)
	QP       QPID   // queue pair the packet belongs to
	SPort    uint16 // UDP source port: ECMP entropy, rewritten by Themis-S
	DPort    uint16 // UDP destination port (RoCEv2 4791, constant)

	// Transport fields.
	PSN     PSN // BTH packet sequence number (Data), or AETH ePSN (Ack/Nack)
	Payload int // payload bytes (0 for control)

	// Congestion signals.
	ECN bool // CE mark applied by a switch on the way

	// TTL is the remaining hop limit, decremented at every switch that
	// forwards (not locally delivers) the packet; at zero the packet is
	// dropped and counted as a loop drop. Stamped with DefaultTTL on fabric
	// entry when unset, so tests may pre-set a smaller limit.
	TTL uint8

	// RouteEpoch records the routing-plane convergence epoch the packet was
	// injected under (fabric-internal, not on the wire). A TTL-exhaustion
	// drop only indicts the routing plane when the packet was launched under
	// the *current* quiescent epoch; packets stamped during a reconvergence
	// window are allowed to die of staleness.
	RouteEpoch uint32

	// Bookkeeping (not on the wire).
	Retransmit bool   // this data packet is a retransmission
	Buffered   bool   // currently counted against a switch buffer (fabric-internal)
	Accounted  bool   // currently counted against a PFC ingress (fabric-internal)
	InPort     int32  // ingress port at the current switch (fabric-internal)
	SeqNo      uint64 // global emission sequence for tracing
}

// Size returns the on-wire size in bytes including headers.
func (p *Packet) Size() int { return HeaderBytes + p.Payload }

// String renders a compact trace representation.
func (p *Packet) String() string {
	r := ""
	if p.Retransmit {
		r = " rtx"
	}
	return fmt.Sprintf("%s qp=%d psn=%d %d->%d sport=%d len=%d%s",
		p.Kind, p.QP, p.PSN, p.Src, p.Dst, p.SPort, p.Payload, r)
}

// FlowKey identifies a unidirectional flow for ECMP hashing: the classic
// five-tuple reduced to the fields that vary in this simulator.
type FlowKey struct {
	Src, Dst NodeID
	SPort    uint16
	DPort    uint16
}

// Key returns the packet's flow key. For control packets travelling in the
// reverse direction the key still uses the packet's own src/dst so that
// replies hash independently (as real ECMP does).
func (p *Packet) Key() FlowKey {
	return FlowKey{Src: p.Src, Dst: p.Dst, SPort: p.SPort, DPort: p.DPort}
}
