package packet

import "testing"

func TestPSNBeforeAfterBasic(t *testing.T) {
	if !PSN(1).Before(2) {
		t.Fatal("1 must be before 2")
	}
	if PSN(2).Before(1) {
		t.Fatal("2 must not be before 1")
	}
	if PSN(5).Before(5) || PSN(5).After(5) {
		t.Fatal("a PSN is neither before nor after itself")
	}
	if !PSN(2).After(1) {
		t.Fatal("2 must be after 1")
	}
}

func TestPSNWraparound(t *testing.T) {
	last := PSN(psnMask) // 0xFFFFFF
	if got := last.Next(); got != 0 {
		t.Fatalf("Next at wrap: got %d want 0", got)
	}
	if !last.Before(0) {
		t.Fatal("0xFFFFFF must be before 0 across the wrap")
	}
	if !PSN(0).After(last) {
		t.Fatal("0 must be after 0xFFFFFF across the wrap")
	}
	if PSN(0).Before(last) {
		t.Fatal("0 must not be before 0xFFFFFF")
	}
	// A raw uint32 `<` would get both of the above wrong — that is the bug
	// class the psn-compare analyzer exists to prevent.
	if !last.Add(10).Before(20) {
		t.Fatal("wrapped window comparison failed")
	}
}

func TestPSNDiff(t *testing.T) {
	cases := []struct {
		p, q PSN
		want int32
	}{
		{10, 3, 7},
		{3, 10, -7},
		{0, psnMask, 1},       // 0 is one after 0xFFFFFF
		{psnMask, 0, -1},      // and 0xFFFFFF one before 0
		{5, 5, 0},             // equal
		{psnHalf - 1, 0, psnHalf - 1}, // largest positive distance
	}
	for _, c := range cases {
		if got := c.p.Diff(c.q); got != c.want {
			t.Errorf("Diff(%d, %d) = %d, want %d", c.p, c.q, got, c.want)
		}
	}
}

func TestPSNAdd(t *testing.T) {
	if got := PSN(0).Add(-1); got != psnMask {
		t.Fatalf("Add(-1) at 0: got %#x want %#x", uint32(got), uint32(psnMask))
	}
	if got := PSN(psnMask).Add(1); got != 0 {
		t.Fatalf("Add(1) at wrap: got %d want 0", got)
	}
	if got := PSN(100).Add(23); got != 123 {
		t.Fatalf("Add: got %d want 123", got)
	}
}

func TestPSNModAndTrunc(t *testing.T) {
	if got := PSN(10).Mod(4); got != 2 {
		t.Fatalf("Mod: got %d want 2", got)
	}
	if got := PSN(0x123456).Trunc(); got != 0x56 {
		t.Fatalf("Trunc: got %#x want 0x56", got)
	}
	if got := NewPSN(0xFF123456).Uint32(); got != 0x123456 {
		t.Fatalf("NewPSN must mask to 24 bits: got %#x", got)
	}
}

// TestPSNTotalOrderWithinWindow checks antisymmetry and transitivity over a
// window that straddles the wrap point.
func TestPSNTotalOrderWithinWindow(t *testing.T) {
	base := PSN(psnMask - 50)
	var win []PSN
	for i := 0; i < 100; i++ {
		win = append(win, base.Add(i))
	}
	for i, a := range win {
		for j, b := range win {
			wantBefore := i < j
			if a.Before(b) != wantBefore {
				t.Fatalf("Before(%#x, %#x) = %v, want %v", uint32(a), uint32(b), a.Before(b), wantBefore)
			}
			if a.After(b) != (j < i) {
				t.Fatalf("After(%#x, %#x) = %v, want %v", uint32(a), uint32(b), a.After(b), j < i)
			}
		}
	}
}
