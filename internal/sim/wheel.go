package sim

import "math/bits"

// Hierarchical timing wheel — the engine's default event queue.
//
// The motivating workload is transport timer traffic: RTO timers and
// serialization completions are overwhelmingly near-future and frequently
// cancelled before firing. A binary heap pays O(log n) sift on every
// schedule and cancel; the wheel pays O(1) for both (a doubly-linked list
// insert/unlink plus one occupancy-bit flip) and defers all ordering work to
// the moment a slot actually becomes due.
//
// # Geometry
//
// Time is int64 picoseconds, so slot spans are powers of two of the time
// base: level k covers slots of 2^(10+8k) ps. Level 0's slot is 2^10 ps
// (~1 ns, the order of a serialization quantum); each of the 6 levels has
// 256 slots, so the wheel spans 2^58 ps ≈ 3.3 simulated days past the
// frontier. Events beyond that — in practice only Forever-ish sentinels —
// sit in an unordered overflow list and migrate into the top level when the
// frontier approaches.
//
// # Ordering contract
//
// Events pop in ascending (time, pri, seq) — bit-identical to the heap
// backend, which is kept alive in heap.go as the differential oracle. The
// wheel maintains the order with a three-tier partition:
//
//   - run: a small binary min-heap (explicit (time, pri, seq) comparator,
//     index-maintained for O(log) cancel) holding every pending event with
//     time < runEnd. Pops come only from here.
//   - slots: per-level 256-slot arrays of intrusive doubly-linked lists
//     (the Event's own next/prev fields — no allocation), holding events
//     with runEnd <= time < horizon. Lists are unordered; a slot is sorted
//     wholesale by pushing it through the run heap when it becomes due.
//   - overflow: events past the horizon.
//
// runEnd is the frontier: it only ever advances, and the invariant is that
// every event at or past it lives in slots/overflow and every event before
// it lives in the run heap (so the run heap's minimum is the global
// minimum).
//
// # Anti-aliasing placement
//
// A 256-slot ring can alias: two events a full wrap apart would share a slot
// and break the "circular order = time order" assumption. insert prevents
// this by placing an event at the SMALLEST level k where its slot lies
// within 255 slots of the frontier's slot: (t>>shift_k) - (runEnd>>shift_k)
// < 256. All resident level-k slot numbers then fall in a 256-value window
// anchored at the frontier, which is collision-free mod 256; the frontier
// only grows, so the window only tightens around a resident event.
//
// # Cascade
//
// refill finds, per level, the circularly-first occupied slot at/after the
// frontier cursor; the slot's range start is a lower bound for every event
// in it (and exact for the minimum's slot at level 0). The smallest range
// start wins, ties preferring the coarsest level. A winning level-0 slot is
// sorted into the run heap and runEnd advances to the slot's end; a winning
// level-k>0 slot is cascaded: the frontier advances to the slot's range
// start (everything pending is provably at/after it) and the slot's events
// re-insert, landing at least one level lower — all events in one slot
// share their level-k slot number with the new frontier, so the level-(k-1)
// distance is < 256. That strict descent bounds a cascade at one re-link
// per level per event.
const (
	wheelGranBits  = 10 // level-0 slot span: 2^10 ps ≈ 1 ns
	wheelLevelBits = 8  // 256 slots per level
	wheelSlots     = 1 << wheelLevelBits
	wheelLevels    = 6
	wheelOccWords  = wheelSlots / 64
	// wheelTopShift is the top level's slot-span exponent; the wheel horizon
	// is wheelSlots slots of that span past the frontier.
	wheelTopShift = wheelGranBits + (wheelLevels-1)*wheelLevelBits

	wheelGran = Time(1) << wheelGranBits
)

// Event.index sentinels. Non-negative index means "position in the run heap
// (wheel backend) or the event heap (heap backend)".
const (
	idxDead     = -1 // popped, cancelled, or never scheduled
	idxWheel    = -2 // linked into a wheel slot list; Event.loc holds level/slot
	idxOverflow = -3 // linked into the overflow list
)

// wheel is the hierarchical timing wheel state, embedded by value in Engine.
type wheel struct {
	run      []*Event // min-heap of events with time < runEnd
	runEnd   Time     // frontier: exclusive upper bound of the run heap's window
	count    int      // events resident in slots + overflow
	overflow *Event   // events past the wheel horizon (unordered list)
	// cnt tracks occupied slots per level so refill skips empty levels
	// without touching their bitmaps — all but one or two levels are empty
	// in steady state.
	cnt   [wheelLevels]int32
	occ   [wheelLevels][wheelOccWords]uint64
	slots [wheelLevels][wheelSlots]*Event
}

// add accepts a newly scheduled event (time and seq already assigned).
func (w *wheel) add(ev *Event) {
	if ev.time < w.runEnd {
		w.runPush(ev)
		return
	}
	w.insert(ev)
	w.count++
}

// insert links an event (time >= runEnd) into the smallest level whose slot
// window reaches it, or the overflow list. It does not touch count: cascades
// and overflow migration move events that are already counted.
func (w *wheel) insert(ev *Event) {
	t := uint64(ev.time)
	f := uint64(w.runEnd)
	for lv := 0; lv < wheelLevels; lv++ {
		shift := uint(wheelGranBits + lv*wheelLevelBits)
		if (t>>shift)-(f>>shift) < wheelSlots {
			slot := int(t>>shift) & (wheelSlots - 1)
			ev.index = idxWheel
			ev.loc = int32(lv<<wheelLevelBits | slot)
			ev.prev = nil
			ev.next = w.slots[lv][slot]
			if ev.next != nil {
				ev.next.prev = ev
			} else {
				w.cnt[lv]++
			}
			w.slots[lv][slot] = ev
			w.occ[lv][slot>>6] |= 1 << uint(slot&63)
			return
		}
	}
	ev.index = idxOverflow
	ev.prev = nil
	ev.next = w.overflow
	if ev.next != nil {
		ev.next.prev = ev
	}
	w.overflow = ev
}

// remove cancels a pending event out of whichever tier holds it.
func (w *wheel) remove(ev *Event) {
	switch {
	case ev.index >= 0:
		w.runRemove(ev.index)
	case ev.index == idxWheel:
		lv := int(ev.loc) >> wheelLevelBits
		slot := int(ev.loc) & (wheelSlots - 1)
		if ev.prev != nil {
			ev.prev.next = ev.next
		} else {
			w.slots[lv][slot] = ev.next
		}
		if ev.next != nil {
			ev.next.prev = ev.prev
		}
		if w.slots[lv][slot] == nil {
			w.occ[lv][slot>>6] &^= 1 << uint(slot&63)
			w.cnt[lv]--
		}
		ev.next, ev.prev = nil, nil
		w.count--
	case ev.index == idxOverflow:
		if ev.prev != nil {
			ev.prev.next = ev.next
		} else {
			w.overflow = ev.next
		}
		if ev.next != nil {
			ev.next.prev = ev.prev
		}
		ev.next, ev.prev = nil, nil
		w.count--
	}
}

// peek returns the earliest pending event without removing it, or nil.
// It may load the next due slot into the run heap — a pure repartition of
// pending events that executes nothing, so it is safe anywhere the engine
// itself is (nextTime, Pending-driven loops).
func (w *wheel) peek() *Event {
	if len(w.run) == 0 && !w.refill() {
		return nil
	}
	return w.run[0]
}

// pop removes and returns the earliest pending event, or nil.
func (w *wheel) pop() *Event {
	if len(w.run) == 0 && !w.refill() {
		return nil
	}
	return w.runPop()
}

// refill moves the next batch of due events into the run heap, cascading
// coarser slots and migrating overflow as needed. Returns false when no
// event is pending outside the run heap.
//
// The coarse-level candidate scan is paid once per batch, not once per slot:
// every level-0 slot strictly before the earliest coarse slot's span start
// (or before the level-0 window's end, when no coarse slot is occupied) is
// loaded in one pass, and the frontier jumps to that bound — coarser events
// are provably at/after it, and any event scheduled inside the loaded window
// later goes straight to the run heap, which orders it correctly.
//
// Termination: every loop iteration either returns, strictly descends every
// event of one coarse slot by a level (see cascade), or advances the
// frontier far enough that at least one overflow event enters the slots.
func (w *wheel) refill() bool {
	if w.count == 0 {
		return false
	}
	for {
		w.migrateOverflow()
		cLv, cSlot := -1, 0
		var cStart Time
		for lv := 1; lv < wheelLevels; lv++ {
			if w.cnt[lv] == 0 {
				continue
			}
			if slot, start, ok := w.firstSlot(lv); ok && (cLv < 0 || start <= cStart) {
				// <= so the coarsest of tying slots cascades first — its
				// events may precede the finer slot's within the same span.
				cLv, cSlot, cStart = lv, slot, start
			}
		}
		if w.cnt[0] > 0 {
			// The anti-aliasing invariant bounds every level-0 resident
			// below the window end, so with no coarse candidate one pass
			// loads them all.
			bound := Time(((uint64(w.runEnd) >> wheelGranBits) + wheelSlots) << wheelGranBits)
			if cLv >= 0 && cStart < bound {
				bound = cStart
			}
			if w.loadLevel0(bound) {
				return true
			}
		}
		if cLv < 0 {
			// Slots are empty; only far-future overflow remains. Jump the
			// frontier to the earliest overflow time (nothing else is
			// pending, so this skips only empty time) and migrate.
			w.runEnd = w.overflowMinTime() &^ (wheelGran - 1)
			continue
		}
		w.cascade(cLv, cSlot, cStart)
	}
}

// firstSlot scans level lv's occupancy bitmap circularly from the frontier
// cursor and returns the first occupied slot with the absolute start time of
// its span. The anti-aliasing insert rule guarantees circular distance from
// the cursor equals temporal order, and that the span start lower-bounds
// every event in the slot.
func (w *wheel) firstSlot(lv int) (slot int, start Time, ok bool) {
	shift := uint(wheelGranBits + lv*wheelLevelBits)
	cursor := uint64(w.runEnd) >> shift
	cur := int(cursor) & (wheelSlots - 1)
	occ := &w.occ[lv]
	word := cur >> 6
	if rest := occ[word] >> uint(cur&63) << uint(cur&63); rest != 0 {
		slot = word<<6 + bits.TrailingZeros64(rest)
	} else {
		found := false
		for i := 1; i <= wheelOccWords; i++ {
			wd := (word + i) & (wheelOccWords - 1)
			if occ[wd] != 0 {
				// On full wrap (wd == word) only sub-cursor bits can be set:
				// the at/after-cursor bits were checked empty above.
				slot = wd<<6 + bits.TrailingZeros64(occ[wd])
				found = true
				break
			}
		}
		if !found {
			return 0, 0, false
		}
	}
	delta := uint64(slot-cur) & (wheelSlots - 1)
	start = Time((cursor + delta) << shift)
	return slot, start, true
}

// loadLevel0 sorts every level-0 slot strictly before bound into the run
// heap and advances the frontier to bound. The caller guarantees every
// pending event outside level 0 is at/after bound, and circular scan order
// equals time order within the level, so the frontier can jump the whole
// window at once. Reports whether anything was loaded.
func (w *wheel) loadLevel0(bound Time) bool {
	loaded := false
	for w.cnt[0] > 0 {
		slot, start, ok := w.firstSlot(0)
		if !ok || start >= bound {
			break
		}
		ev := w.slots[0][slot]
		w.slots[0][slot] = nil
		w.occ[0][slot>>6] &^= 1 << uint(slot&63)
		w.cnt[0]--
		for ev != nil {
			next := ev.next
			ev.next, ev.prev = nil, nil
			w.runPush(ev)
			w.count--
			ev = next
		}
		loaded = true
		// Advance past the emptied slot so firstSlot's cursor moves on.
		w.runEnd = start + wheelGran
	}
	if bound > w.runEnd {
		w.runEnd = bound
	}
	return loaded
}

// cascade re-inserts one coarse slot's events a level down. The frontier
// first advances to the slot's span start — the proven global lower bound —
// so every event in the slot shares its level-lv slot number with the new
// frontier and lands at a level below lv.
func (w *wheel) cascade(lv, slot int, start Time) {
	if start > w.runEnd {
		w.runEnd = start
	}
	ev := w.slots[lv][slot]
	w.slots[lv][slot] = nil
	w.occ[lv][slot>>6] &^= 1 << uint(slot&63)
	w.cnt[lv]--
	for ev != nil {
		next := ev.next
		w.insert(ev)
		ev = next
	}
}

// migrateOverflow moves overflow events that now fit the top level into the
// slots. Afterwards every remaining overflow event is at least a full top
// slot past any slot-resident event, so slot loads never have to consult the
// overflow list.
func (w *wheel) migrateOverflow() {
	if w.overflow == nil {
		return
	}
	f := uint64(w.runEnd) >> wheelTopShift
	for ev := w.overflow; ev != nil; {
		next := ev.next
		if uint64(ev.time)>>wheelTopShift-f < wheelSlots {
			if ev.prev != nil {
				ev.prev.next = ev.next
			} else {
				w.overflow = ev.next
			}
			if ev.next != nil {
				ev.next.prev = ev.prev
			}
			w.insert(ev)
		}
		ev = next
	}
}

// overflowMinTime returns the earliest overflow event time. Only called on
// the refill slow path with all slots empty; the list is in practice a
// handful of Forever-ish sentinels.
func (w *wheel) overflowMinTime() Time {
	min := Forever
	for ev := w.overflow; ev != nil; ev = ev.next {
		if ev.time < min {
			min = ev.time
		}
	}
	return min
}

// runPush inserts into the run min-heap.
func (w *wheel) runPush(ev *Event) {
	ev.index = len(w.run)
	w.run = append(w.run, ev) //lint:alloc-ok run-heap growth is amortized; capacity is retained
	w.runUp(ev.index)
}

// runPop removes and returns the run-heap minimum. Caller ensures non-empty.
func (w *wheel) runPop() *Event {
	h := w.run
	top := h[0]
	n := len(h) - 1
	if n > 0 {
		h[0] = h[n]
		h[0].index = 0
	}
	h[n] = nil
	w.run = h[:n]
	if n > 1 {
		w.runDown(0)
	}
	top.index = idxDead
	return top
}

// runRemove deletes the event at heap position i (cancel path).
func (w *wheel) runRemove(i int) {
	h := w.run
	n := len(h) - 1
	if i != n {
		h[i] = h[n]
		h[i].index = i
	}
	h[n] = nil
	w.run = h[:n]
	if i != n {
		if !w.runDown(i) {
			w.runUp(i)
		}
	}
}

func (w *wheel) runUp(i int) {
	h := w.run
	for i > 0 {
		p := (i - 1) / 2
		if !eventBefore(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		h[i].index = i
		h[p].index = p
		i = p
	}
}

func (w *wheel) runDown(i int) bool {
	h := w.run
	n := len(h)
	moved := false
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && eventBefore(h[r], h[l]) {
			m = r
		}
		if !eventBefore(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		h[i].index = i
		h[m].index = m
		i = m
		moved = true
	}
	return moved
}
