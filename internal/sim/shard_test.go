package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// A Stop issued before Run must be sticky: the next Run observes it, executes
// nothing, and consumes it so the run after that proceeds. (Run used to reset
// the flag unconditionally on entry, silently swallowing pre-run Stops.)
func TestEngineStopStickyBeforeRun(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(1, func() { fired++ })
	e.Stop()
	if end := e.RunAll(); end != 0 || fired != 0 {
		t.Fatalf("stopped Run executed work: end=%v fired=%d", end, fired)
	}
	if e.Stopped() {
		t.Fatal("Run did not consume the stop")
	}
	e.RunAll()
	if fired != 1 {
		t.Fatalf("fired = %d after resume, want 1", fired)
	}
}

// AdvanceTo halts on a pending Stop but must NOT consume it — the shard
// coordinator needs the flag to survive until the next barrier.
func TestEngineAdvanceToLeavesStopPending(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(1, func() { fired++; e.Stop() })
	e.At(2, func() { fired++ })
	e.AdvanceTo(10)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if !e.Stopped() {
		t.Fatal("AdvanceTo consumed the stop")
	}
	e.AdvanceTo(10) // still halted: the flag is pending
	if fired != 1 {
		t.Fatalf("fired = %d after second AdvanceTo, want 1", fired)
	}
	e.RunAll() // Run observes the pending stop and consumes it
	if fired != 1 || e.Stopped() {
		t.Fatalf("fired=%d stopped=%v after consuming Run", fired, e.Stopped())
	}
	e.RunAll() // now drains normally
	if fired != 2 {
		t.Fatalf("fired = %d after resume, want 2", fired)
	}
}

// Same-time events order by (pri, seq): lower pri first regardless of
// insertion order, FIFO within a pri level, and pri 0 (all classic code)
// stays pure FIFO.
func TestEnginePriOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.AtPri(10, 5, func() { order = append(order, 50) })
	e.AtPri(10, 2, func() { order = append(order, 20) })
	e.At(10, func() { order = append(order, 0) })
	e.AtArgPri(10, 2, func(a any) { order = append(order, a.(int)) }, 21)
	e.AtPri(10, 1, func() { order = append(order, 10) })
	e.RunAll()
	want := []int{0, 10, 20, 21, 50}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMetricsMerge(t *testing.T) {
	a := Metrics{EventsExecuted: 10, EventsCancelled: 1, EventAllocs: 3, EventReuses: 7, HeapHighWater: 4}
	b := Metrics{EventsExecuted: 5, EventsCancelled: 2, EventAllocs: 1, EventReuses: 4, HeapHighWater: 9}
	a.Merge(b)
	want := Metrics{EventsExecuted: 15, EventsCancelled: 3, EventAllocs: 4, EventReuses: 11, HeapHighWater: 9}
	if a != want {
		t.Fatalf("merged = %+v, want %+v", a, want)
	}
	// Max, not sum: merging a shallower block keeps the high water.
	a.Merge(Metrics{HeapHighWater: 2})
	if a.HeapHighWater != 9 {
		t.Fatalf("HeapHighWater = %d after shallow merge, want 9", a.HeapHighWater)
	}
}

// A single-shard group is the degenerate case the legacy workloads run on:
// it must execute exactly what Engine.Run would, same order, same metrics.
func TestShardGroupSingleShardMatchesRun(t *testing.T) {
	trace := func(drive func(*Engine) Time) ([]Time, Metrics, Time) {
		e := NewEngine(7)
		var seen []Time
		var recur func()
		n := 0
		recur = func() {
			seen = append(seen, e.Now())
			if n++; n < 20 {
				e.Schedule(Duration(3+n%5), recur)
			}
		}
		e.Schedule(2, recur)
		end := drive(e)
		return seen, e.Metrics(), end
	}
	aSeen, aM, aEnd := trace(func(e *Engine) Time { return e.Run(1000) })
	bSeen, bM, bEnd := trace(func(e *Engine) Time {
		return NewShardGroup([]*Engine{e}, Duration(Forever)).Run(1000)
	})
	if aEnd != bEnd || aM != bM {
		t.Fatalf("end %v vs %v, metrics %+v vs %+v", aEnd, bEnd, aM, bM)
	}
	if len(aSeen) != len(bSeen) {
		t.Fatalf("event counts differ: %d vs %d", len(aSeen), len(bSeen))
	}
	for i := range aSeen {
		if aSeen[i] != bSeen[i] {
			t.Fatalf("event %d at %v vs %v", i, aSeen[i], bSeen[i])
		}
	}
}

// Two shards exchanging mail across epochs: the cross-shard ping-pong must
// execute at exactly the predicted times, twice over (determinism), with the
// lookahead window enforcing that each post lands in a later epoch.
func TestShardGroupCrossShardPingPong(t *testing.T) {
	const lookahead = Duration(10)
	run := func() [2][]Time {
		engines := []*Engine{NewEngine(1), NewEngine(2)}
		g := NewShardGroup(engines, lookahead)
		var seen [2][]Time // seen[i] is only touched by shard i's callbacks
		var hop func(shard int) func()
		hop = func(shard int) func() {
			return func() {
				e := g.Shard(shard)
				seen[shard] = append(seen[shard], e.Now())
				peer := 1 - shard
				g.Post(shard, peer, e.Now().Add(lookahead), 1, hop(peer))
			}
		}
		engines[0].At(5, hop(0))
		g.Run(100)
		return seen
	}
	a, b := run(), run()
	want := [2][]Time{{5, 25, 45, 65, 85}, {15, 35, 55, 75, 95}}
	for s := 0; s < 2; s++ {
		if len(a[s]) != len(want[s]) {
			t.Fatalf("shard %d fired at %v, want %v", s, a[s], want[s])
		}
		for i := range want[s] {
			if a[s][i] != want[s][i] || b[s][i] != want[s][i] {
				t.Fatalf("shard %d: runs %v / %v, want %v", s, a[s], b[s], want[s])
			}
		}
	}
}

// Mailbox drain order is (time, pri, src, seq) — posts buffered in arbitrary
// source order must schedule on the destination in exactly that total order.
func TestShardGroupMailDrainOrder(t *testing.T) {
	engines := []*Engine{NewEngine(1), NewEngine(2), NewEngine(3)}
	g := NewShardGroup(engines, Duration(Forever))
	var order []int
	rec := func(v int) func() { return func() { order = append(order, v) } }
	// Build-phase posts (coordinator-owned, before Run) in scrambled order.
	g.Post(2, 0, 5, 1, rec(3))                                               // time 5, pri 1, src 2
	g.Post(1, 0, 7, 0, rec(5))                                               // time 7
	g.Post(1, 0, 5, 1, rec(2))                                               // time 5, pri 1, src 1
	g.Post(0, 0, 5, 2, rec(4))                                               // time 5, pri 2
	g.Post(0, 0, 5, 1, rec(0))                                               // time 5, pri 1, src 0, seq first
	g.PostArg(0, 0, 5, 1, func(a any) { order = append(order, a.(int)) }, 1) // src 0, seq second
	g.Run(100)
	want := []int{0, 1, 2, 3, 4, 5}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// A Stop on any shard halts the whole group at the next barrier, and the
// group consumes the flags so a later Run resumes.
func TestShardGroupStopHaltsGroup(t *testing.T) {
	engines := []*Engine{NewEngine(1), NewEngine(2)}
	g := NewShardGroup(engines, Duration(10))
	fired := [2]int{}
	engines[0].At(5, func() { fired[0]++; engines[0].Stop() })
	engines[0].At(50, func() { fired[0]++ })
	engines[1].At(50, func() { fired[1]++ })
	g.Run(100)
	if fired[0] != 1 || fired[1] != 0 {
		t.Fatalf("fired = %v after stop, want [1 0]", fired)
	}
	if engines[0].Stopped() || engines[1].Stopped() {
		t.Fatal("group Run did not consume the stop flags")
	}
	g.Run(100)
	if fired[0] != 2 || fired[1] != 1 {
		t.Fatalf("fired = %v after resume, want [2 1]", fired)
	}
}

func TestShardGroupMetricsMergesShards(t *testing.T) {
	engines := []*Engine{NewEngine(1), NewEngine(2)}
	g := NewShardGroup(engines, Duration(Forever))
	for i := 0; i < 3; i++ {
		engines[0].At(Time(i+1), func() {})
	}
	engines[1].At(1, func() {})
	g.Run(100)
	m := g.Metrics()
	if m.EventsExecuted != 4 {
		t.Fatalf("EventsExecuted = %d, want 4", m.EventsExecuted)
	}
	if m.HeapHighWater != 3 {
		t.Fatalf("HeapHighWater = %d, want 3 (max, not sum)", m.HeapHighWater)
	}
}

func TestNewShardGroupValidates(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":        func() { NewShardGroup(nil, Duration(10)) },
		"no lookahead": func() { NewShardGroup([]*Engine{NewEngine(1)}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// StreamSeed derivation is pure: same (seed, key) -> same stream, different
// key -> different stream.
func TestStreamSeedIdentity(t *testing.T) {
	if StreamSeed(42, 1) != StreamSeed(42, 1) {
		t.Fatal("StreamSeed not deterministic")
	}
	if StreamSeed(42, 1) == StreamSeed(42, 2) {
		t.Fatal("distinct keys collided")
	}
	if StreamSeed(42, 1) == StreamSeed(43, 1) {
		t.Fatal("distinct seeds collided")
	}
}

// Property backing the shard-count determinism contract: the draws a
// component observes from its identity-keyed stream are independent of how
// many other components exist, how they are grouped, and in what order any
// of them consume their own streams. Concretely: for a random grouping of
// components into shards, interleaving draws group-by-group produces exactly
// the per-component sequences that drawing each stream alone produces.
func TestStreamIndependenceProperty(t *testing.T) {
	f := func(seed int64, assign []uint8, rounds uint8) bool {
		const components = 8
		n := int(rounds%5) + 1
		// Reference: each component drains its stream alone.
		want := make([][]int64, components)
		for c := 0; c < components; c++ {
			r := NewStream(seed, uint64(c))
			for i := 0; i < n; i++ {
				want[c] = append(want[c], r.Int63())
			}
		}
		// Grouped: components are sharded by assign and draw interleaved,
		// one draw per component per round, shard-major.
		shards := make(map[uint8][]int)
		for c := 0; c < components; c++ {
			var a uint8
			if len(assign) > 0 {
				a = assign[c%len(assign)] % 4
			}
			shards[a] = append(shards[a], c)
		}
		rngs := make([]*rand.Rand, components)
		for c := range rngs {
			rngs[c] = NewStream(seed, uint64(c))
		}
		got := make([][]int64, components)
		for i := 0; i < n; i++ {
			for a := uint8(0); a < 4; a++ {
				for _, c := range shards[a] {
					got[c] = append(got[c], rngs[c].Int63())
				}
			}
		}
		for c := 0; c < components; c++ {
			for i := range want[c] {
				if got[c][i] != want[c][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
