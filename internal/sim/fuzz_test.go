package sim

import "testing"

// FuzzWheelHeapEquivalence feeds the op bytecode (see runOps in
// wheel_test.go) to both scheduler backends and fails on any divergence in
// pop order, Metrics, or the final clock. The seed corpus covers the three
// structurally distinct wheel regimes: level-0 slot boundaries, the
// overflow list and its migrate/cascade path back down, and far-future
// times near the top of the range. testdata/fuzz/FuzzWheelHeapEquivalence
// holds the same seeds as committed corpus files.
func FuzzWheelHeapEquivalence(f *testing.F) {
	// Slot boundary: events at wheelGran-1 / wheelGran / wheelGran+1
	// (0x3ff, 0x400, 0x401 with gran bits 10), then a bounded run across
	// the edge and a drain.
	f.Add([]byte{
		0x00, 0xff, 0x03, // schedule now+1023
		0x00, 0x00, 0x04, // schedule now+1024
		0x00, 0x01, 0x04, // schedule now+1025
		0x06, 0x00, // Run(now) — nothing fires
		0x05, 0x00, 0x04, // AdvanceTo(now+1024) — two fire, one stays
	})
	// Overflow cascade: a far event lands past the top-level horizon
	// (0xff << 52), near events fill level 0, epochs march the frontier so
	// migrate/cascade run, and a cancel hits the overflow resident.
	f.Add([]byte{
		0x02, 0xff, 0x34, // schedule now + 255<<52 — overflow
		0x00, 0x10, 0x00, // schedule now+16
		0x02, 0x01, 0x1e, // schedule now + 1<<30 — level 2/3
		0x05, 0xff, 0xff, // AdvanceTo(now+65535)
		0x04, 0x00, 0x00, // cancel live[0] — the overflow resident
		0x07, // nextTime probe forces a refill
	})
	// Far future with same-time pri collisions: collisions at one instant,
	// a probe, then everything cancelled before a final drain.
	f.Add([]byte{
		0x03, 0x05, 0x02, // schedule now+5 pri 2
		0x03, 0x05, 0x00, // schedule now+5 pri 0
		0x03, 0x05, 0x02, // schedule now+5 pri 2 — seq breaks the tie
		0x02, 0x7f, 0x32, // schedule now + 127<<50 — far future
		0x07,             // probe
		0x04, 0x03, 0x00, // cancel live[3]
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip("op program longer than any real workload burst")
		}
		if err := diffOps(data); err != nil {
			t.Fatalf("backends diverge: %v\nminimized: %x", err, shrinkOps(data))
		}
	})
}
