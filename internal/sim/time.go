// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives every other component of the simulator: switches, links,
// RNICs, congestion control and the Themis middleware all schedule callbacks
// on a shared Engine and observe a common virtual clock. Time is measured in
// integer picoseconds so that per-packet serialization delays at 400 Gbps
// (30 ns for a 1500 B frame) are exact and never accumulate rounding drift.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in picoseconds since simulation start.
type Time int64

// Duration is a span of virtual time, in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Forever is a Time later than any reachable simulation instant.
const Forever Time = 1<<63 - 1

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds returns the time as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string { return Duration(t).String() }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds returns the duration as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Std converts d to a time.Duration (nanosecond precision, truncating).
func (d Duration) Std() time.Duration { return time.Duration(d / Nanosecond) }

// FromStd converts a time.Duration to a sim Duration.
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds()) * Nanosecond }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d == 0:
		return "0s"
	case d%Second == 0:
		return fmt.Sprintf("%ds", d/Second)
	case d%Millisecond == 0:
		return fmt.Sprintf("%dms", d/Millisecond)
	case d%Microsecond == 0:
		return fmt.Sprintf("%dus", d/Microsecond)
	case d%Nanosecond == 0:
		return fmt.Sprintf("%dns", d/Nanosecond)
	default:
		return fmt.Sprintf("%dps", int64(d))
	}
}

// TransmitTime returns the serialization delay of size bytes at rate bits/s.
// It rounds up to a whole picosecond so back-to-back transmissions never
// overlap.
func TransmitTime(sizeBytes int, rateBps int64) Duration {
	if rateBps <= 0 {
		panic("sim: TransmitTime with non-positive rate")
	}
	bits := int64(sizeBytes) * 8
	// bits / (rateBps bits/s) seconds = bits * 1e12 / rateBps picoseconds.
	ps := (bits*int64(Second) + rateBps - 1) / rateBps
	return Duration(ps)
}
