package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// This file pins the engine's ordering and epoch contracts as executable
// spec, written against the binary-heap engine BEFORE the timing-wheel swap
// landed. container/heap never guaranteed stability, so the same-time
// ordering these tests rely on is a property of the explicit (time, pri, seq)
// comparator — seq is unique per event, making the order total — not of heap
// mechanics. Any replacement scheduler must pass this file unchanged; the
// differential tests (wheel_test.go, FuzzWheelHeapEquivalence) then extend
// the point checks here to arbitrary op sequences.

// popRecord is one observed firing, tagged with the identity the event was
// scheduled under so tests can check the (time, pri, seq) total order.
type popRecord struct {
	at   Time
	pri  uint64
	born int // scheduling order, a proxy for seq
}

// TestEngineTotalOrderContract drives a deterministic shuffle of events over
// a small set of colliding timestamps and priorities and asserts the pop
// order is exactly ascending (time, pri, scheduling-order) — the total order
// every scheduler backend must reproduce bit-for-bit.
func TestEngineTotalOrderContract(t *testing.T) {
	for _, backend := range []Scheduler{SchedulerHeap, SchedulerWheel} {
		e := NewEngineWithScheduler(1, backend)
		rng := rand.New(rand.NewSource(7))
		var got []popRecord
		var want []popRecord
		for i := 0; i < 400; i++ {
			at := Time(rng.Intn(8)) * 100 // heavy same-time collisions
			pri := uint64(rng.Intn(3))
			rec := popRecord{at: at, pri: pri, born: i}
			want = append(want, rec)
			switch i % 4 {
			case 0:
				e.AtPri(at, pri, func() { got = append(got, rec) })
			case 1:
				e.AtArgPri(at, pri, func(a any) { got = append(got, a.(popRecord)) }, rec)
			case 2:
				if pri == 0 {
					e.At(at, func() { got = append(got, rec) })
				} else {
					e.AtPri(at, pri, func() { got = append(got, rec) })
				}
			default:
				if pri == 0 {
					e.AtArg(at, func(a any) { got = append(got, a.(popRecord)) }, rec)
				} else {
					e.AtArgPri(at, pri, func(a any) { got = append(got, a.(popRecord)) }, rec)
				}
			}
		}
		sort.SliceStable(want, func(i, j int) bool {
			if want[i].at != want[j].at {
				return want[i].at < want[j].at
			}
			return want[i].pri < want[j].pri
		})
		e.RunAll()
		if len(got) != len(want) {
			t.Fatalf("[%v] fired %d of %d events", backend, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("[%v] pop %d: got %+v want %+v", backend, i, got[i], want[i])
			}
		}
	}
}

// TestEngineSameTimePriOrder pins that pri orders before seq at one instant:
// a low-pri event scheduled LAST still fires before earlier high-pri ones.
func TestEngineSameTimePriOrder(t *testing.T) {
	for _, backend := range []Scheduler{SchedulerHeap, SchedulerWheel} {
		e := NewEngineWithScheduler(1, backend)
		var order []int
		e.AtPri(50, 2, func() { order = append(order, 2) })
		e.AtPri(50, 1, func() { order = append(order, 1) })
		e.AtPri(50, 0, func() { order = append(order, 0) })
		e.AtPri(50, 1, func() { order = append(order, 10) }) // same pri: FIFO by seq
		e.RunAll()
		want := []int{0, 1, 10, 2}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("[%v] order = %v, want %v", backend, order, want)
			}
		}
	}
}

// TestEngineAdvanceToBoundary pins the epoch API the shard coordinator
// depends on: AdvanceTo(limit) is inclusive — an event scheduled exactly at
// the limit fires; one a picosecond later does not, and becomes the next
// epoch's first event.
func TestEngineAdvanceToBoundary(t *testing.T) {
	for _, backend := range []Scheduler{SchedulerHeap, SchedulerWheel} {
		e := NewEngineWithScheduler(1, backend)
		var fired []Time
		e.At(99, func() { fired = append(fired, 99) })
		e.At(100, func() { fired = append(fired, 100) })
		e.At(101, func() { fired = append(fired, 101) })
		e.AdvanceTo(100)
		if len(fired) != 2 || fired[0] != 99 || fired[1] != 100 {
			t.Fatalf("[%v] events through limit: %v", backend, fired)
		}
		if nt := e.nextTime(); nt != 101 {
			t.Fatalf("[%v] nextTime after epoch = %v, want 101", backend, nt)
		}
		e.AdvanceTo(101)
		if len(fired) != 3 || fired[2] != 101 {
			t.Fatalf("[%v] next epoch: %v", backend, fired)
		}
		if nt := e.nextTime(); nt != Forever {
			t.Fatalf("[%v] nextTime on drained queue = %v, want Forever", backend, nt)
		}
	}
}

// TestEngineAdvanceToDoesNotConsumeStop pins the Stop propagation contract:
// AdvanceTo halts on a Stop raised mid-epoch but leaves the flag SET so the
// coordinator can observe it at the barrier, while Run consumes it.
func TestEngineAdvanceToDoesNotConsumeStop(t *testing.T) {
	for _, backend := range []Scheduler{SchedulerHeap, SchedulerWheel} {
		e := NewEngineWithScheduler(1, backend)
		fired := 0
		e.At(10, func() { fired++; e.Stop() })
		e.At(20, func() { fired++ })
		e.AdvanceTo(30)
		if fired != 1 {
			t.Fatalf("[%v] fired = %d after mid-epoch Stop, want 1", backend, fired)
		}
		if !e.Stopped() {
			t.Fatalf("[%v] AdvanceTo consumed the Stop flag", backend)
		}
		// The flag left set by AdvanceTo acts as a sticky stop for the next
		// Run, which consumes it without executing; the one after resumes.
		e.Run(30)
		if fired != 1 || e.Stopped() {
			t.Fatalf("[%v] first Run after epoch stop: fired=%d stopped=%v", backend, fired, e.Stopped())
		}
		if e.Run(30) != 20 || fired != 2 {
			t.Fatalf("[%v] resume after stop: fired=%d", backend, fired)
		}
	}
}

// TestEngineStickyPreRunStop pins sticky-Stop semantics for both loop APIs:
// a Stop issued between runs makes the next Run return immediately (and
// consumes the flag); AdvanceTo under a sticky Stop executes nothing and
// leaves the flag in place.
func TestEngineStickyPreRunStop(t *testing.T) {
	for _, backend := range []Scheduler{SchedulerHeap, SchedulerWheel} {
		e := NewEngineWithScheduler(1, backend)
		fired := 0
		e.At(10, func() { fired++ })
		e.Stop()
		e.AdvanceTo(50)
		if fired != 0 || !e.Stopped() {
			t.Fatalf("[%v] AdvanceTo under sticky stop: fired=%d stopped=%v", backend, fired, e.Stopped())
		}
		if e.Run(50) != 0 || fired != 0 {
			t.Fatalf("[%v] sticky stop did not halt Run (fired=%d)", backend, fired)
		}
		if e.Stopped() {
			t.Fatalf("[%v] Run did not consume the sticky stop", backend)
		}
		e.Run(50)
		if fired != 1 {
			t.Fatalf("[%v] event lost across sticky stop: fired=%d", backend, fired)
		}
	}
}

// TestEngineCancelAfterFireEpoch re-pins cancel-after-fire inside the epoch
// API (engine_test.go covers it under Run): an event that fired during an
// epoch must refuse a late Cancel without being marked cancelled.
func TestEngineCancelAfterFireEpoch(t *testing.T) {
	for _, backend := range []Scheduler{SchedulerHeap, SchedulerWheel} {
		e := NewEngineWithScheduler(1, backend)
		ev := e.At(10, func() {})
		e.AdvanceTo(10)
		if !ev.Fired() {
			t.Fatalf("[%v] event at the epoch limit did not fire", backend)
		}
		if e.Cancel(ev) {
			t.Fatalf("[%v] Cancel of a fired event returned true", backend)
		}
		if ev.Cancelled() {
			t.Fatalf("[%v] fired event marked cancelled", backend)
		}
		if m := e.Metrics(); m.EventsCancelled != 0 {
			t.Fatalf("[%v] EventsCancelled = %d, want 0", backend, m.EventsCancelled)
		}
	}
}

// TestEngineMetricsBackendIdentity pins that the counter block — which is
// serialized verbatim into Trial records and therefore into the committed
// BENCH artifacts — is bit-identical across scheduler backends for the same
// op sequence, including the allocator counters and the high-water mark.
func TestEngineMetricsBackendIdentity(t *testing.T) {
	run := func(s Scheduler) Metrics {
		e := NewEngineWithScheduler(3, s)
		rng := rand.New(rand.NewSource(11))
		var live []*Event
		for i := 0; i < 2000; i++ {
			switch rng.Intn(3) {
			case 0, 1:
				live = append(live, e.Schedule(Duration(rng.Intn(5000)), func() {}))
			default:
				if n := len(live); n > 0 {
					e.Cancel(live[rng.Intn(n)])
				}
			}
			if i%97 == 0 {
				e.Run(e.Now().Add(Duration(rng.Intn(2000))))
			}
		}
		e.RunAll()
		return e.Metrics()
	}
	h, w := run(SchedulerHeap), run(SchedulerWheel)
	if h != w {
		t.Fatalf("metrics diverge across backends:\n heap  %+v\n wheel %+v", h, w)
	}
}
