package sim

// Timer is a restartable one-shot timer bound to an Engine, analogous to
// time.Timer. It is the building block for retransmission timeouts and
// DCQCN's periodic rate-increase events.
type Timer struct {
	engine *Engine
	fn     func()
	ev     *Event
}

// NewTimer returns a stopped timer that will run fn when it fires.
func NewTimer(e *Engine, fn func()) *Timer {
	return &Timer{engine: e, fn: fn}
}

// Reset (re)arms the timer to fire after d, cancelling any pending firing.
func (t *Timer) Reset(d Duration) {
	t.Stop()
	t.ev = t.engine.Schedule(d, func() {
		t.ev = nil
		t.fn()
	})
}

// Stop cancels the pending firing, if any. It reports whether a firing was
// pending.
func (t *Timer) Stop() bool {
	if t.ev == nil {
		return false
	}
	t.engine.Cancel(t.ev)
	t.ev = nil
	return true
}

// Active reports whether the timer currently has a pending firing.
func (t *Timer) Active() bool { return t.ev != nil }

// Deadline returns the time of the pending firing; valid only if Active.
func (t *Timer) Deadline() Time {
	if t.ev == nil {
		return Forever
	}
	return t.ev.Time()
}

// Ticker repeatedly invokes fn with a fixed period until stopped. The
// callback runs strictly periodically in virtual time (no drift).
type Ticker struct {
	engine  *Engine
	period  Duration
	fn      func()
	ev      *Event
	running bool
}

// NewTicker returns a stopped ticker. Call Start to begin ticking.
func NewTicker(e *Engine, period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	return &Ticker{engine: e, period: period, fn: fn}
}

// Start arms the ticker; the first tick fires one period from now.
// Starting a running ticker restarts its phase.
func (t *Ticker) Start() {
	t.Stop()
	t.running = true
	t.arm()
}

func (t *Ticker) arm() {
	t.ev = t.engine.Schedule(t.period, func() {
		t.ev = nil
		t.fn()
		// Re-arm unless the callback stopped or restarted the ticker. The
		// callback runs before re-arming so SetPeriod applies to the very
		// next tick.
		if t.running && t.ev == nil {
			t.arm()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.running = false
	if t.ev != nil {
		t.engine.Cancel(t.ev)
		t.ev = nil
	}
}

// SetPeriod changes the tick period; takes effect for the next tick.
func (t *Ticker) SetPeriod(p Duration) {
	if p <= 0 {
		panic("sim: ticker period must be positive")
	}
	t.period = p
}

// Active reports whether the ticker is running.
func (t *Ticker) Active() bool { return t.running }
