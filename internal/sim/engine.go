package sim

import (
	"fmt"
	"math/rand"
)

// Event is a scheduled callback. It is returned by the Schedule family so
// callers can cancel pending events (e.g. retransmission timers).
//
// Handle lifetime: an Event is live from scheduling until it fires or is
// cancelled, after which the engine recycles the struct through an intrusive
// free list (see Metrics.EventReuses). A dead handle may still be queried
// (Fired/Cancelled report the final state) or passed to Cancel (a no-op)
// until the next Schedule/At call, which may reuse the struct. Code that can
// observe its event firing must drop the handle at that point — the pattern
// Timer and the transport pacer follow by nilling their reference inside the
// callback.
type Event struct {
	time Time
	// pri orders same-time events before seq. Classic single-engine code
	// never sets it (zero), preserving pure FIFO order among same-time
	// events. The sharded fabric stamps cross-component deliveries with a
	// stable per-channel priority so that same-time arrival order at a
	// component is a function of the channel identity, not of which engine
	// happened to schedule the event — the property that makes event order
	// invariant under repartitioning (see ShardGroup).
	pri uint64
	seq uint64 // tie-breaker: FIFO among same-(time, pri) events
	// index is the event's position in the run/event heap when >= 0, or one
	// of the idx* sentinels (wheel.go): idxDead once popped or cancelled,
	// idxWheel/idxOverflow while intrusively linked in the timing wheel.
	index int
	// next/prev are the intrusive links of the wheel's slot and overflow
	// lists; nil while the event is heap-resident or dead.
	next, prev *Event
	loc        int32 // packed wheel level/slot while index == idxWheel
	fn         func()
	fnArg      func(any) // arg-carrying callback (used when fn == nil)
	arg        any
	cancelled  bool
	fired      bool
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() Time { return e.time }

// Cancelled reports whether Cancel removed the event before it fired.
func (e *Event) Cancelled() bool { return e.cancelled }

// Fired reports whether the event's callback ran. Fired and Cancelled are
// mutually exclusive: cancelling an already-fired event is a no-op and does
// not mark it cancelled.
func (e *Event) Fired() bool { return e.fired }

// Scheduler selects the engine's event-queue backend.
type Scheduler uint8

const (
	// SchedulerWheel is the default: the hierarchical timing wheel
	// (wheel.go) with O(1) schedule/cancel.
	SchedulerWheel Scheduler = iota
	// SchedulerHeap is the original container/heap queue (heap.go), kept as
	// the differential-testing oracle. Both backends realize the identical
	// (time, pri, seq) total order and identical Metrics.
	SchedulerHeap
)

func (s Scheduler) String() string {
	if s == SchedulerHeap {
		return "heap"
	}
	return "wheel"
}

// defaultScheduler is what NewEngine uses. It is a package variable rather
// than a constructor parameter because engines are built deep inside
// workloads; the differential tests (and the themis-sim -sched flag) flip it
// for a whole run via SetDefaultScheduler. Not synchronized: set it before
// any concurrent engine construction (the exp.Runner workers only read it).
var defaultScheduler = SchedulerWheel

// SetDefaultScheduler selects the backend NewEngine uses and returns the
// previous choice so callers can restore it.
func SetDefaultScheduler(s Scheduler) Scheduler {
	prev := defaultScheduler
	defaultScheduler = s
	return prev
}

// Metrics is the engine's hot-path counter block. Trial records surface it so
// sweeps can report how much scheduling work a scenario did and how effective
// event recycling was.
//
// The block is part of the determinism contract: it is serialized verbatim
// into Trial records and thus into the committed BENCH artifacts, so both
// scheduler backends must produce bit-identical counters for the same op
// sequence (asserted by TestEngineMetricsBackendIdentity and the fuzz
// harness).
type Metrics struct {
	// EventsExecuted is the total number of events whose callbacks ran.
	EventsExecuted uint64
	// EventsCancelled is the number of events removed before firing.
	EventsCancelled uint64
	// EventAllocs is the number of Event structs freshly allocated.
	EventAllocs uint64
	// EventReuses is the number of Schedule/At calls served from the free
	// list — allocations avoided by recycling popped and cancelled events.
	EventReuses uint64
	// HeapHighWater is the maximum number of simultaneously pending events
	// observed, whichever backend queues them.
	HeapHighWater int
}

// Merge folds another engine's counter block into m: the event counters are
// summed and HeapHighWater takes the maximum. Trial records use it to roll
// per-shard engines up into one block; note that after a merge HeapHighWater
// is the deepest *single* queue seen, not the sum of concurrent depths.
func (m *Metrics) Merge(o Metrics) {
	m.EventsExecuted += o.EventsExecuted
	m.EventsCancelled += o.EventsCancelled
	m.EventAllocs += o.EventAllocs
	m.EventReuses += o.EventReuses
	if o.HeapHighWater > m.HeapHighWater {
		m.HeapHighWater = o.HeapHighWater
	}
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; the whole simulation runs on the goroutine that calls Run.
type Engine struct {
	now     Time
	sched   Scheduler
	wheel   wheel     // timing-wheel backend (SchedulerWheel)
	heapq   eventHeap // heap backend (SchedulerHeap)
	pending int       // events queued across whichever backend is active
	nextSeq uint64
	rng     *rand.Rand
	stopped bool

	// free is the intrusive free list: fired and cancelled events are pushed
	// here and reused by the next Schedule/At instead of allocating.
	free []*Event

	metrics Metrics
}

// NewEngine returns an engine with its clock at zero, a deterministic random
// source seeded with seed, and the default scheduler backend.
func NewEngine(seed int64) *Engine {
	return NewEngineWithScheduler(seed, defaultScheduler)
}

// NewEngineWithScheduler returns an engine on an explicit queue backend —
// the hook the differential tests use to run one workload on both backends
// without touching the global default.
func NewEngineWithScheduler(seed int64, s Scheduler) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed)), sched: s}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. All randomized
// components (random spraying, jitter) must draw from it so that a seed fully
// determines a run.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return e.pending }

// Executed returns the total number of events executed so far.
func (e *Engine) Executed() uint64 { return e.metrics.EventsExecuted }

// Metrics returns a snapshot of the engine's hot-path counters.
func (e *Engine) Metrics() Metrics { return e.metrics }

// newEvent returns a zeroed event, reusing a recycled one when available.
func (e *Engine) newEvent() *Event {
	n := len(e.free)
	if n == 0 {
		e.metrics.EventAllocs++
		return &Event{} //lint:alloc-ok free-list miss: fresh event, recycled on release
	}
	ev := e.free[n-1]
	e.free[n-1] = nil
	e.free = e.free[:n-1]
	e.metrics.EventReuses++
	*ev = Event{}
	return ev
}

// release recycles a dead event. The final fired/cancelled flags stay
// readable on the handle until the struct is reused; the callback references
// are dropped immediately so captured state can be collected.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.fnArg = nil
	ev.arg = nil
	e.free = append(e.free, ev) //lint:alloc-ok free-list growth is amortized; capacity is retained
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a logic bug in a discrete-event model.
func (e *Engine) At(t Time, fn func()) *Event {
	ev := e.newEvent()
	ev.fn = fn
	e.schedule(t, ev)
	return ev
}

// AtArg schedules fn(arg) at absolute time t. Unlike At, a caller that keeps
// one bound fn and varies arg schedules without any closure allocation — the
// fabric's serializers use this for their per-packet completion events.
func (e *Engine) AtArg(t Time, fn func(any), arg any) *Event {
	ev := e.newEvent()
	ev.fnArg = fn
	ev.arg = arg
	e.schedule(t, ev)
	return ev
}

// AtPri schedules fn at absolute time t with a same-time ordering priority
// (see Event.pri). Only the sharded fabric uses non-zero priorities.
func (e *Engine) AtPri(t Time, pri uint64, fn func()) *Event {
	ev := e.newEvent()
	ev.fn = fn
	ev.pri = pri
	e.schedule(t, ev)
	return ev
}

// AtArgPri schedules fn(arg) at absolute time t with a same-time ordering
// priority; the arg-carrying analogue of AtPri.
func (e *Engine) AtArgPri(t Time, pri uint64, fn func(any), arg any) *Event {
	ev := e.newEvent()
	ev.fnArg = fn
	ev.arg = arg
	ev.pri = pri
	e.schedule(t, ev)
	return ev
}

func (e *Engine) schedule(t Time, ev *Event) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev.time = t
	ev.seq = e.nextSeq
	e.nextSeq++
	if e.sched == SchedulerHeap {
		e.heapPush(ev)
	} else {
		e.wheel.add(ev)
	}
	e.pending++
	if e.pending > e.metrics.HeapHighWater {
		e.metrics.HeapHighWater = e.pending
	}
}

// Schedule schedules fn to run after delay d (d may be zero).
func (e *Engine) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event with negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// ScheduleArg schedules fn(arg) after delay d; see AtArg.
func (e *Engine) ScheduleArg(d Duration, fn func(any), arg any) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event with negative delay %v", d))
	}
	return e.AtArg(e.now.Add(d), fn, arg)
}

// Cancel removes a pending event and reports whether it was pending.
// Cancelling nil, an already-fired or an already-cancelled event is a no-op
// returning false — in particular a fired event is NOT marked cancelled, so
// Fired/Cancelled always reflect what actually happened to the callback.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.cancelled || ev.fired || ev.index == idxDead {
		return false
	}
	ev.cancelled = true
	if e.sched == SchedulerHeap {
		e.heapRemove(ev)
	} else {
		e.wheel.remove(ev)
	}
	ev.index = idxDead
	e.pending--
	e.metrics.EventsCancelled++
	e.release(ev)
	return true
}

// Stop halts event execution. Called from inside a callback it makes the
// surrounding Run/AdvanceTo return after the current event completes; called
// between runs it is sticky — the next Run returns immediately without
// executing anything. In both cases the stop is consumed by the Run that
// observes it, so a subsequent Run (or RunAll drain) proceeds normally.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether a Stop is pending, i.e. has been requested but not
// yet consumed by a Run. The shard coordinator polls it at each barrier to
// turn one shard's Stop into a group-wide halt.
func (e *Engine) Stopped() bool { return e.stopped }

// head returns the earliest pending event without removing it, or nil. On
// the wheel backend this may repartition pending events (load the next due
// slot into the run heap); it never executes anything.
func (e *Engine) head() *Event {
	if e.sched == SchedulerHeap {
		if len(e.heapq) == 0 {
			return nil
		}
		return e.heapq[0]
	}
	return e.wheel.peek()
}

// step pops and executes the head event. Callers have checked (via head)
// that an event is pending within their time bound.
func (e *Engine) step() {
	var ev *Event
	if e.sched == SchedulerHeap {
		ev = e.heapPop()
	} else {
		ev = e.wheel.pop()
	}
	e.pending--
	e.now = ev.time
	e.metrics.EventsExecuted++
	// Mark fired before invoking so a callback cancelling its own handle
	// is a no-op rather than a double release.
	ev.fired = true
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.fnArg(ev.arg)
	}
	e.release(ev)
}

// Run executes events in time order until the queue drains, the clock would
// pass until, or Stop is called (including a sticky Stop issued before the
// call — see Stop). It returns the time of the last executed event (or the
// current time if nothing ran) and clears any observed stop.
func (e *Engine) Run(until Time) Time {
	for {
		if e.stopped {
			e.stopped = false
			break
		}
		ev := e.head()
		if ev == nil || ev.time > until {
			break
		}
		e.step()
	}
	return e.now
}

// AdvanceTo is the epoch API for the shard coordinator: it executes events
// with time <= limit and returns the current time. Unlike Run it does NOT
// consume a pending Stop — it halts immediately and leaves the flag set so
// the coordinator can observe the halt at the next barrier and propagate it
// to the whole group.
func (e *Engine) AdvanceTo(limit Time) Time {
	for !e.stopped {
		ev := e.head()
		if ev == nil || ev.time > limit {
			break
		}
		e.step()
	}
	return e.now
}

// nextTime returns the timestamp of the earliest pending event, or Forever
// when the queue is empty. The coordinator uses it to pick the next epoch.
func (e *Engine) nextTime() Time {
	if ev := e.head(); ev != nil {
		return ev.time
	}
	return Forever
}

// RunAll executes events until the queue drains or Stop is called.
func (e *Engine) RunAll() Time { return e.Run(Forever) }
