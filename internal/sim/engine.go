package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a scheduled callback. It is returned by the Schedule family so
// callers can cancel pending events (e.g. retransmission timers).
type Event struct {
	time      Time
	seq       uint64 // tie-breaker: FIFO among same-time events
	index     int    // heap index, -1 once popped or cancelled
	fn        func()
	cancelled bool
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() Time { return e.time }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// eventHeap orders events by (time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; the whole simulation runs on the goroutine that calls Run.
type Engine struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	nEvents uint64 // total events executed
	rng     *rand.Rand
	stopped bool
}

// NewEngine returns an engine with its clock at zero and a deterministic
// random source seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. All randomized
// components (random spraying, jitter) must draw from it so that a seed fully
// determines a run.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Executed returns the total number of events executed so far.
func (e *Engine) Executed() uint64 { return e.nEvents }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a logic bug in a discrete-event model.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{time: t, seq: e.nextSeq, fn: fn}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return ev
}

// Schedule schedules fn to run after delay d (d may be zero).
func (e *Engine) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event with negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled || ev.index < 0 {
		if ev != nil {
			ev.cancelled = true
		}
		return
	}
	ev.cancelled = true
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the queue drains, the clock would
// pass until, or Stop is called. It returns the time of the last executed
// event (or the current time if nothing ran).
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.time > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = ev.time
		e.nEvents++
		ev.fn()
	}
	return e.now
}

// RunAll executes events until the queue drains or Stop is called.
func (e *Engine) RunAll() Time { return e.Run(Forever) }
