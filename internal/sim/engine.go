package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a scheduled callback. It is returned by the Schedule family so
// callers can cancel pending events (e.g. retransmission timers).
//
// Handle lifetime: an Event is live from scheduling until it fires or is
// cancelled, after which the engine recycles the struct through an intrusive
// free list (see Metrics.EventReuses). A dead handle may still be queried
// (Fired/Cancelled report the final state) or passed to Cancel (a no-op)
// until the next Schedule/At call, which may reuse the struct. Code that can
// observe its event firing must drop the handle at that point — the pattern
// Timer and the transport pacer follow by nilling their reference inside the
// callback.
type Event struct {
	time Time
	// pri orders same-time events before seq. Classic single-engine code
	// never sets it (zero), preserving pure FIFO order among same-time
	// events. The sharded fabric stamps cross-component deliveries with a
	// stable per-channel priority so that same-time arrival order at a
	// component is a function of the channel identity, not of which engine
	// happened to schedule the event — the property that makes event order
	// invariant under repartitioning (see ShardGroup).
	pri       uint64
	seq       uint64 // tie-breaker: FIFO among same-(time, pri) events
	index     int    // heap index, -1 once popped or cancelled
	fn        func()
	fnArg     func(any) // arg-carrying callback (used when fn == nil)
	arg       any
	cancelled bool
	fired     bool
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() Time { return e.time }

// Cancelled reports whether Cancel removed the event before it fired.
func (e *Event) Cancelled() bool { return e.cancelled }

// Fired reports whether the event's callback ran. Fired and Cancelled are
// mutually exclusive: cancelling an already-fired event is a no-op and does
// not mark it cancelled.
func (e *Event) Fired() bool { return e.fired }

// eventHeap orders events by (time, pri, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].pri != h[j].pri {
		return h[i].pri < h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Metrics is the engine's hot-path counter block. Trial records surface it so
// sweeps can report how much scheduling work a scenario did and how effective
// event recycling was.
type Metrics struct {
	// EventsExecuted is the total number of events whose callbacks ran.
	EventsExecuted uint64
	// EventsCancelled is the number of events removed before firing.
	EventsCancelled uint64
	// EventAllocs is the number of Event structs freshly allocated.
	EventAllocs uint64
	// EventReuses is the number of Schedule/At calls served from the free
	// list — allocations avoided by recycling popped and cancelled events.
	EventReuses uint64
	// HeapHighWater is the maximum event-queue depth observed.
	HeapHighWater int
}

// Merge folds another engine's counter block into m: the event counters are
// summed and HeapHighWater takes the maximum. Trial records use it to roll
// per-shard engines up into one block; note that after a merge HeapHighWater
// is the deepest *single* queue seen, not the sum of concurrent depths.
func (m *Metrics) Merge(o Metrics) {
	m.EventsExecuted += o.EventsExecuted
	m.EventsCancelled += o.EventsCancelled
	m.EventAllocs += o.EventAllocs
	m.EventReuses += o.EventReuses
	if o.HeapHighWater > m.HeapHighWater {
		m.HeapHighWater = o.HeapHighWater
	}
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; the whole simulation runs on the goroutine that calls Run.
type Engine struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	rng     *rand.Rand
	stopped bool

	// free is the intrusive free list: fired and cancelled events are pushed
	// here and reused by the next Schedule/At instead of allocating.
	free []*Event

	metrics Metrics
}

// NewEngine returns an engine with its clock at zero and a deterministic
// random source seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. All randomized
// components (random spraying, jitter) must draw from it so that a seed fully
// determines a run.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Executed returns the total number of events executed so far.
func (e *Engine) Executed() uint64 { return e.metrics.EventsExecuted }

// Metrics returns a snapshot of the engine's hot-path counters.
func (e *Engine) Metrics() Metrics { return e.metrics }

// newEvent returns a zeroed event, reusing a recycled one when available.
func (e *Engine) newEvent() *Event {
	n := len(e.free)
	if n == 0 {
		e.metrics.EventAllocs++
		return &Event{} //lint:alloc-ok free-list miss: fresh event, recycled on release
	}
	ev := e.free[n-1]
	e.free[n-1] = nil
	e.free = e.free[:n-1]
	e.metrics.EventReuses++
	*ev = Event{}
	return ev
}

// release recycles a dead event. The final fired/cancelled flags stay
// readable on the handle until the struct is reused; the callback references
// are dropped immediately so captured state can be collected.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.fnArg = nil
	ev.arg = nil
	e.free = append(e.free, ev) //lint:alloc-ok free-list growth is amortized; capacity is retained
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a logic bug in a discrete-event model.
func (e *Engine) At(t Time, fn func()) *Event {
	ev := e.newEvent()
	ev.fn = fn
	e.schedule(t, ev)
	return ev
}

// AtArg schedules fn(arg) at absolute time t. Unlike At, a caller that keeps
// one bound fn and varies arg schedules without any closure allocation — the
// fabric's serializers use this for their per-packet completion events.
func (e *Engine) AtArg(t Time, fn func(any), arg any) *Event {
	ev := e.newEvent()
	ev.fnArg = fn
	ev.arg = arg
	e.schedule(t, ev)
	return ev
}

// AtPri schedules fn at absolute time t with a same-time ordering priority
// (see Event.pri). Only the sharded fabric uses non-zero priorities.
func (e *Engine) AtPri(t Time, pri uint64, fn func()) *Event {
	ev := e.newEvent()
	ev.fn = fn
	ev.pri = pri
	e.schedule(t, ev)
	return ev
}

// AtArgPri schedules fn(arg) at absolute time t with a same-time ordering
// priority; the arg-carrying analogue of AtPri.
func (e *Engine) AtArgPri(t Time, pri uint64, fn func(any), arg any) *Event {
	ev := e.newEvent()
	ev.fnArg = fn
	ev.arg = arg
	ev.pri = pri
	e.schedule(t, ev)
	return ev
}

func (e *Engine) schedule(t Time, ev *Event) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev.time = t
	ev.seq = e.nextSeq
	e.nextSeq++
	heap.Push(&e.queue, ev)
	if len(e.queue) > e.metrics.HeapHighWater {
		e.metrics.HeapHighWater = len(e.queue)
	}
}

// Schedule schedules fn to run after delay d (d may be zero).
func (e *Engine) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event with negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// ScheduleArg schedules fn(arg) after delay d; see AtArg.
func (e *Engine) ScheduleArg(d Duration, fn func(any), arg any) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling event with negative delay %v", d))
	}
	return e.AtArg(e.now.Add(d), fn, arg)
}

// Cancel removes a pending event and reports whether it was pending.
// Cancelling nil, an already-fired or an already-cancelled event is a no-op
// returning false — in particular a fired event is NOT marked cancelled, so
// Fired/Cancelled always reflect what actually happened to the callback.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.cancelled || ev.fired || ev.index < 0 {
		return false
	}
	ev.cancelled = true
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	e.metrics.EventsCancelled++
	e.release(ev)
	return true
}

// Stop halts event execution. Called from inside a callback it makes the
// surrounding Run/AdvanceTo return after the current event completes; called
// between runs it is sticky — the next Run returns immediately without
// executing anything. In both cases the stop is consumed by the Run that
// observes it, so a subsequent Run (or RunAll drain) proceeds normally.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether a Stop is pending, i.e. has been requested but not
// yet consumed by a Run. The shard coordinator polls it at each barrier to
// turn one shard's Stop into a group-wide halt.
func (e *Engine) Stopped() bool { return e.stopped }

// step pops and executes the head event. Callers have checked the queue is
// non-empty and the head is within their time bound.
func (e *Engine) step() {
	ev := e.queue[0]
	heap.Pop(&e.queue)
	e.now = ev.time
	e.metrics.EventsExecuted++
	// Mark fired before invoking so a callback cancelling its own handle
	// is a no-op rather than a double release.
	ev.fired = true
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.fnArg(ev.arg)
	}
	e.release(ev)
}

// Run executes events in time order until the queue drains, the clock would
// pass until, or Stop is called (including a sticky Stop issued before the
// call — see Stop). It returns the time of the last executed event (or the
// current time if nothing ran) and clears any observed stop.
func (e *Engine) Run(until Time) Time {
	for {
		if e.stopped {
			e.stopped = false
			break
		}
		if len(e.queue) == 0 || e.queue[0].time > until {
			break
		}
		e.step()
	}
	return e.now
}

// AdvanceTo is the epoch API for the shard coordinator: it executes events
// with time <= limit and returns the current time. Unlike Run it does NOT
// consume a pending Stop — it halts immediately and leaves the flag set so
// the coordinator can observe the halt at the next barrier and propagate it
// to the whole group.
func (e *Engine) AdvanceTo(limit Time) Time {
	for !e.stopped && len(e.queue) > 0 && e.queue[0].time <= limit {
		e.step()
	}
	return e.now
}

// nextTime returns the timestamp of the earliest pending event, or Forever
// when the queue is empty. The coordinator uses it to pick the next epoch.
func (e *Engine) nextTime() Time {
	if len(e.queue) == 0 {
		return Forever
	}
	return e.queue[0].time
}

// RunAll executes events until the queue drains or Stop is called.
func (e *Engine) RunAll() Time { return e.Run(Forever) }
