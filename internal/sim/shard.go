package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file implements the space-parallel shard coordinator: several engines
// — one per topology shard — advanced in lockstep epochs under conservative
// barrier synchronization. The design invariants are:
//
//   - Lookahead. Every cross-shard interaction has a minimum latency W (the
//     smallest cross-shard link propagation delay). An event executing at
//     time t can therefore only affect another shard at t+W or later.
//   - Epochs. Each epoch executes events with time in [T, T+W), where T is
//     the earliest pending event across all shards. Everything a shard does
//     inside the window lands in other shards at or after T+W, i.e. in a
//     later epoch — so shards never need to see each other mid-epoch and can
//     run on separate goroutines.
//   - Mailboxes. Cross-shard work is posted into per-(src,dst) mailboxes
//     instead of the destination's event queue. The coordinator drains them
//     between epochs in sorted (time, pri, src, seq) order, so the schedule
//     order at the destination is a pure function of the simulation state,
//     not of goroutine interleaving.
//
// Determinism across shard *counts* additionally requires that no component
// observes the partition. Components therefore draw randomness from streams
// keyed by their stable identity (NewStream), never from a shared engine RNG,
// and cross-component deliveries carry a stable per-channel priority (see
// Event.pri) so same-time arrival order does not depend on which engine
// scheduled the event.

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood 2014) — the
// fixed mixing function the determinism contract names for deriving
// per-component RNG streams from a trial seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// StreamSeed derives the seed of an independent RNG stream from a trial seed
// and a stable component key (a switch ID, a shard index, ...). Streams are
// keyed by identity, not by draw order, so a component sees the same draws
// no matter how the topology is partitioned or how other components consume
// their own streams.
func StreamSeed(seed int64, key uint64) int64 {
	return int64(splitmix64(splitmix64(uint64(seed)) ^ key))
}

// NewStream returns a deterministic RNG for the (seed, key) stream.
func NewStream(seed int64, key uint64) *rand.Rand {
	return rand.New(rand.NewSource(StreamSeed(seed, key)))
}

// mailItem is one cross-shard post: a callback to schedule on the
// destination shard at an absolute time. src and seq record provenance for
// the deterministic drain order.
type mailItem struct {
	at    Time
	pri   uint64
	src   int
	seq   uint64
	fn    func()
	fnArg func(any)
	arg   any
}

// ShardGroup coordinates a set of engines that jointly simulate one
// partitioned topology. Shard(i) hands out the per-shard engines at build
// time; Run advances them all under barrier-per-epoch synchronization.
//
// Concurrency contract: during an epoch, shard i's worker goroutine owns
// engine i and everything reachable from it, and may append to mail[i][*]
// via Post/PostArg. Between epochs the coordinator owns everything. The
// hand-offs happen through the barrier channels inside Run, which provide
// the happens-before edges; no other synchronization exists, which is why
// the themis-lint purity analyzer can allowlist Run alone.
type ShardGroup struct {
	engines   []*Engine
	lookahead Duration
	// mail[src][dst] buffers cross-shard posts made during an epoch. Only
	// shard src's worker appends to row src, and only between-epoch
	// coordinator code reads or truncates it.
	mail    [][][]mailItem
	seq     []uint64   // per-source post counters (drain tie-breaker)
	scratch []mailItem // coordinator-only drain buffer, reused across epochs
}

// NewShardGroup assembles a coordinator over the given per-shard engines.
// The lookahead must be a positive lower bound on every cross-shard
// interaction latency; Forever is the correct value when no cross-shard
// links exist (the single epoch then spans the whole run).
func NewShardGroup(engines []*Engine, lookahead Duration) *ShardGroup {
	if len(engines) == 0 {
		panic("sim: shard group needs at least one engine")
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: shard lookahead must be positive, got %v", lookahead))
	}
	mail := make([][][]mailItem, len(engines))
	for i := range mail {
		mail[i] = make([][]mailItem, len(engines))
	}
	return &ShardGroup{
		engines:   engines,
		lookahead: lookahead,
		mail:      mail,
		seq:       make([]uint64, len(engines)),
	}
}

// Shards returns the number of shards in the group.
func (g *ShardGroup) Shards() int { return len(g.engines) }

// Shard returns shard i's engine.
func (g *ShardGroup) Shard(i int) *Engine { return g.engines[i] }

// Lookahead returns the group's conservative synchronization window.
func (g *ShardGroup) Lookahead() Duration { return g.lookahead }

// Post queues fn to run on shard dst at absolute time at. It must be called
// from shard src's worker during an epoch (or from the build phase before
// Run), and at must be at least one lookahead past the posting instant —
// the drain panics via Engine.schedule otherwise, which is exactly the
// violation a too-optimistic lookahead would cause.
func (g *ShardGroup) Post(src, dst int, at Time, pri uint64, fn func()) {
	g.post(dst, mailItem{at: at, pri: pri, src: src, fn: fn})
}

// PostArg is the arg-carrying analogue of Post; see Engine.AtArg.
func (g *ShardGroup) PostArg(src, dst int, at Time, pri uint64, fn func(any), arg any) {
	g.post(dst, mailItem{at: at, pri: pri, src: src, fnArg: fn, arg: arg})
}

func (g *ShardGroup) post(dst int, it mailItem) {
	it.seq = g.seq[it.src]
	g.seq[it.src]++
	g.mail[it.src][dst] = append(g.mail[it.src][dst], it) //lint:alloc-ok mailbox growth is amortized; backing arrays are retained across epochs
}

// drainMail moves every buffered cross-shard post into its destination
// engine, in (time, pri, src, seq) order per destination. The sort key is a
// total order (src+seq is unique), so the schedule order — and through it
// the destination's seq tie-breaker — is deterministic.
func (g *ShardGroup) drainMail() {
	for dst := range g.engines {
		g.scratch = g.scratch[:0]
		for src := range g.engines {
			g.scratch = append(g.scratch, g.mail[src][dst]...)
			g.mail[src][dst] = g.mail[src][dst][:0]
		}
		if len(g.scratch) == 0 {
			continue
		}
		sort.Slice(g.scratch, func(i, j int) bool {
			a, b := g.scratch[i], g.scratch[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.pri != b.pri {
				return a.pri < b.pri
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.seq < b.seq
		})
		eng := g.engines[dst]
		for i := range g.scratch {
			it := &g.scratch[i]
			if it.fn != nil {
				eng.AtPri(it.at, it.pri, it.fn)
			} else {
				eng.AtArgPri(it.at, it.pri, it.fnArg, it.arg)
			}
		}
	}
}

// Metrics returns the group's counter block: every shard engine's metrics
// folded together with Metrics.Merge.
func (g *ShardGroup) Metrics() Metrics {
	var m Metrics
	for _, e := range g.engines {
		m.Merge(e.Metrics())
	}
	return m
}

// Run advances every shard to until under conservative barrier-per-epoch
// synchronization and returns the latest shard clock. A Stop on any shard's
// engine halts the whole group at the next barrier (the stop flags are
// consumed, mirroring Engine.Run); cross-shard mail pending at a halt stays
// buffered and is delivered by the next Run.
//
// With one shard and no mail this degenerates to exactly Engine.Run(until):
// a single epoch bounded by until, identical event order, identical metrics.
//
// This is — alongside exp.Runner.Run — one of exactly two concurrent symbols
// in the deterministic core. The themis-lint purity analyzer allowlists it
// by name, which is why every goroutine, channel and barrier lives lexically
// inside this one function.
func (g *ShardGroup) Run(until Time) Time {
	n := len(g.engines)
	cmd := make([]chan Time, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		cmd[i] = make(chan Time)
		go func(i int) {
			for limit := range cmd[i] {
				g.engines[i].AdvanceTo(limit)
				done <- i
			}
		}(i)
	}
	for {
		// Barrier state: every worker is idle blocking on cmd, so the
		// coordinator owns all engine and mailbox state here.
		halted := false
		for _, e := range g.engines {
			if e.stopped {
				halted = true
			}
		}
		if halted {
			break
		}
		g.drainMail()
		next := Forever
		for _, e := range g.engines {
			if t := e.nextTime(); t < next {
				next = t
			}
		}
		if next == Forever || next > until {
			break
		}
		// The epoch executes [next, next+W); AdvanceTo is inclusive, so the
		// limit is one tick short of the window end (saturating near
		// Forever), and never past until.
		limit := Forever
		if g.lookahead < Duration(Forever-next) {
			limit = next.Add(g.lookahead) - 1
		}
		if limit > until {
			limit = until
		}
		for i := 0; i < n; i++ {
			cmd[i] <- limit
		}
		for i := 0; i < n; i++ {
			<-done
		}
	}
	for i := 0; i < n; i++ {
		close(cmd[i])
	}
	var end Time
	for _, e := range g.engines {
		e.stopped = false // consume the halt, as Engine.Run does
		if e.now > end {
			end = e.now
		}
	}
	return end
}

// RunAll advances the group until every shard's queue drains (or a Stop
// halts it).
func (g *ShardGroup) RunAll() Time { return g.Run(Forever) }
