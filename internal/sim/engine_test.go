package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(5 * Microsecond)
	if t1 != Time(5*Microsecond) {
		t.Fatalf("Add: got %d", t1)
	}
	if d := t1.Sub(t0); d != 5*Microsecond {
		t.Fatalf("Sub: got %v", d)
	}
	if s := t1.Seconds(); s != 5e-6 {
		t.Fatalf("Seconds: got %g", s)
	}
	if us := t1.Microseconds(); us != 5 {
		t.Fatalf("Microseconds: got %g", us)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0s"},
		{Second, "1s"},
		{3 * Millisecond, "3ms"},
		{7 * Microsecond, "7us"},
		{9 * Nanosecond, "9ns"},
		{5, "5ps"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d ps: got %q want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurationStdRoundTrip(t *testing.T) {
	d := 1500 * Nanosecond
	if d.Std() != 1500*time.Nanosecond {
		t.Fatalf("Std: got %v", d.Std())
	}
	if FromStd(2*time.Microsecond) != 2*Microsecond {
		t.Fatalf("FromStd: got %v", FromStd(2*time.Microsecond))
	}
}

func TestTransmitTime(t *testing.T) {
	// 1500 bytes at 400 Gbps = 12000 bits / 4e11 bps = 30 ns exactly.
	if got := TransmitTime(1500, 400e9); got != 30*Nanosecond {
		t.Fatalf("1500B@400G: got %v want 30ns", got)
	}
	// 1 byte at 100 Gbps = 8 bits / 1e11 = 80 ps exactly.
	if got := TransmitTime(1, 100e9); got != 80*Picosecond {
		t.Fatalf("1B@100G: got %v want 80ps", got)
	}
	// Rounds up: 1 byte at 3 bps -> ceil(8e12/3) ps.
	if got := TransmitTime(1, 3); got != Duration((8*int64(Second)+2)/3) {
		t.Fatalf("rounding: got %v", got)
	}
}

func TestTransmitTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TransmitTime(1, 0)
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %v", e.Now())
	}
	if e.Executed() != 3 {
		t.Fatalf("executed = %d", e.Executed())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: order[%d]=%d", i, v)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(10, func() { fired++ })
	e.At(20, func() { fired++ })
	e.At(30, func() { fired++ })
	e.Run(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.RunAll()
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is a no-op
	e.Cancel(nil)
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
}

func TestEngineCancelReturnsPending(t *testing.T) {
	e := NewEngine(1)
	ev := e.At(10, func() {})
	if !e.Cancel(ev) {
		t.Fatal("Cancel of a pending event should return true")
	}
	if e.Cancel(ev) {
		t.Fatal("second Cancel should return false")
	}
	if e.Cancel(nil) {
		t.Fatal("Cancel(nil) should return false")
	}
}

// The popped-then-cancelled path: once an event fires, Cancel must be a no-op
// that does NOT mark it cancelled — Fired/Cancelled stay mutually exclusive.
func TestEngineCancelAfterFire(t *testing.T) {
	e := NewEngine(1)
	ev := e.At(10, func() {})
	if ev.Fired() {
		t.Fatal("pending event reports Fired")
	}
	e.RunAll()
	if !ev.Fired() {
		t.Fatal("executed event not marked fired")
	}
	if e.Cancel(ev) {
		t.Fatal("Cancel of a fired event should return false")
	}
	if ev.Cancelled() {
		t.Fatal("fired event marked cancelled by late Cancel")
	}
	if !ev.Fired() {
		t.Fatal("late Cancel cleared the fired flag")
	}
}

// A callback cancelling its own (already-firing) event must not corrupt the
// free list: the event is released exactly once.
func TestEngineSelfCancelInCallback(t *testing.T) {
	e := NewEngine(1)
	var ev *Event
	ev = e.At(10, func() {
		if e.Cancel(ev) {
			t.Error("self-cancel during fire should return false")
		}
	})
	other := e.At(20, func() {})
	e.RunAll()
	if !ev.Fired() || ev.Cancelled() {
		t.Fatalf("fired=%v cancelled=%v", ev.Fired(), ev.Cancelled())
	}
	if !other.Fired() {
		t.Fatal("subsequent event did not fire")
	}
}

func TestEngineEventReuse(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 100; i++ {
		e.Schedule(1, func() {})
		e.RunAll()
	}
	m := e.Metrics()
	if m.EventAllocs != 1 {
		t.Fatalf("EventAllocs = %d, want 1 (free list should recycle)", m.EventAllocs)
	}
	if m.EventReuses != 99 {
		t.Fatalf("EventReuses = %d, want 99", m.EventReuses)
	}
	if m.EventsExecuted != 100 {
		t.Fatalf("EventsExecuted = %d, want 100", m.EventsExecuted)
	}
}

func TestEngineMetricsCounters(t *testing.T) {
	e := NewEngine(1)
	ev := e.At(5, func() {})
	e.At(10, func() {})
	e.At(15, func() {})
	if m := e.Metrics(); m.HeapHighWater != 3 {
		t.Fatalf("HeapHighWater = %d, want 3", m.HeapHighWater)
	}
	e.Cancel(ev)
	e.RunAll()
	m := e.Metrics()
	if m.EventsCancelled != 1 {
		t.Fatalf("EventsCancelled = %d, want 1", m.EventsCancelled)
	}
	if m.EventsExecuted != 2 {
		t.Fatalf("EventsExecuted = %d, want 2", m.EventsExecuted)
	}
}

func TestEngineScheduleArg(t *testing.T) {
	e := NewEngine(1)
	var got []int
	fn := func(a any) { got = append(got, a.(int)) }
	e.ScheduleArg(20, fn, 2)
	e.AtArg(10, fn, 1)
	e.ScheduleArg(30, fn, 3)
	e.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got = %v", got)
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine(1)
	var fired []int
	evs := make([]*Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.At(Time(i+1), func() { fired = append(fired, i) })
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.RunAll()
	want := []int{0, 1, 2, 3, 5, 6, 8, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestEngineScheduleFromCallback(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	var recur func()
	n := 0
	recur = func() {
		times = append(times, e.Now())
		n++
		if n < 5 {
			e.Schedule(7, recur)
		}
	}
	e.Schedule(7, recur)
	e.RunAll()
	for i, tm := range times {
		if tm != Time(7*(i+1)) {
			t.Fatalf("times = %v", times)
		}
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(1, func() { fired++; e.Stop() })
	e.At(2, func() { fired++ })
	e.RunAll()
	if fired != 1 {
		t.Fatalf("fired = %d after Stop, want 1", fired)
	}
	// Run can be resumed.
	e.RunAll()
	if fired != 2 {
		t.Fatalf("fired = %d after resume, want 2", fired)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(5, func() {})
	})
	e.RunAll()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []int64 {
		e := NewEngine(42)
		var draws []int64
		for i := 0; i < 10; i++ {
			d := Duration(e.Rand().Intn(1000) + 1)
			e.Schedule(d, func() { draws = append(draws, int64(e.Now())) })
		}
		e.RunAll()
		return draws
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: %v vs %v", a, b)
		}
	}
}

// Property: for any set of non-negative delays, events fire in sorted order.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(1)
		var fired []Time
		for _, d := range delays {
			e.Schedule(Duration(d), func() { fired = append(fired, e.Now()) })
		}
		e.RunAll()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimer(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	tm := NewTimer(e, func() { fired++ })
	if tm.Active() {
		t.Fatal("new timer should be stopped")
	}
	if tm.Deadline() != Forever {
		t.Fatal("stopped timer deadline should be Forever")
	}
	tm.Reset(10)
	if !tm.Active() || tm.Deadline() != 10 {
		t.Fatalf("active=%v deadline=%v", tm.Active(), tm.Deadline())
	}
	e.RunAll()
	if fired != 1 || tm.Active() {
		t.Fatalf("fired=%d active=%v", fired, tm.Active())
	}
}

func TestTimerResetSupersedes(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	tm := NewTimer(e, func() { fired++ })
	tm.Reset(10)
	tm.Reset(50) // supersedes the first arm
	e.Run(20)
	if fired != 0 {
		t.Fatal("superseded firing ran")
	}
	e.RunAll()
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(1)
	tm := NewTimer(e, func() { t.Fatal("stopped timer fired") })
	tm.Reset(10)
	if !tm.Stop() {
		t.Fatal("Stop should report a pending firing")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report nothing pending")
	}
	e.RunAll()
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	tk := NewTicker(e, 10, func() { ticks = append(ticks, e.Now()) })
	tk.Start()
	e.Run(35)
	tk.Stop()
	e.RunAll()
	if len(ticks) != 3 || ticks[0] != 10 || ticks[1] != 20 || ticks[2] != 30 {
		t.Fatalf("ticks = %v", ticks)
	}
}

func TestTickerSetPeriod(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	var tk *Ticker
	tk = NewTicker(e, 10, func() {
		ticks = append(ticks, e.Now())
		tk.SetPeriod(20)
	})
	tk.Start()
	e.Run(55)
	tk.Stop()
	// first tick at 10, then every 20: 30, 50.
	if len(ticks) != 3 || ticks[0] != 10 || ticks[1] != 30 || ticks[2] != 50 {
		t.Fatalf("ticks = %v", ticks)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTicker(e, 0, func() {})
}

// BenchmarkEngineScheduleCancel measures the schedule-then-cancel cycle that
// dominates transport timer traffic: every ack progress re-arms the RTO timer
// (Timer.Reset = Cancel + Schedule), so this pair is the hottest engine
// operation after plain event execution.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(Duration(100), fn)
		e.Cancel(ev)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(Duration(i%100), func() {})
		if e.Pending() > 1024 {
			e.RunAll()
		}
	}
	e.RunAll()
}
