package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// This file is the randomized differential harness for the timing wheel: it
// drives identical op sequences through a wheel engine and a heap engine (the
// oracle, heap.go) and asserts identical pop order — including same-timestamp
// (pri, seq) tie-breaks — and bit-identical Metrics. The op sequences are
// decoded from a byte string so the property test, its shrinker, and
// FuzzWheelHeapEquivalence (fuzz_test.go) all share one interpreter.

// fireRec is one observed callback firing: which scheduled op fired, when.
type fireRec struct {
	id int
	at Time
}

// runOps interprets data as an op bytecode against a fresh engine on the
// given backend and returns the complete firing log, the final metrics
// snapshot, and the final clock. The decoder is total: every byte string is
// a valid program (missing operand bytes read as zero).
//
// Op encoding (op := b & 7):
//
//	0,1  schedule at now+u16 ps          — near future, level-0/1 slots
//	2    schedule at now+(u8 << u8%53)   — all levels, overflow, far future
//	3    schedule at now+(u8&15), pri u8&3 — same-timestamp pri collisions
//	4    cancel live[u16 % len]          — handles may be recycled; a cancel
//	     landing on a reused handle cancels whatever event owns it now,
//	     which is deterministic and identical across backends
//	5    AdvanceTo(now+u16)              — epoch boundary, frontier advance
//	6    Run(now+u8)                     — bounded run
//	7    nextTime probe                  — forces a refill via the peek path
func runOps(s Scheduler, data []byte) ([]fireRec, Metrics, Time) {
	e := NewEngineWithScheduler(5, s)
	var fires []fireRec
	var live []*Event
	id := 0
	rec := func(a any) { fires = append(fires, fireRec{id: a.(int), at: e.Now()}) }
	i := 0
	next := func() byte {
		if i >= len(data) {
			return 0
		}
		b := data[i]
		i++
		return b
	}
	for i < len(data) {
		switch op := next(); op & 7 {
		case 0, 1:
			d := Duration(uint16(next()) | uint16(next())<<8)
			live = append(live, e.AtArg(e.Now().Add(d), rec, id))
			id++
		case 2:
			d := Duration(next()) << (next() % 53)
			live = append(live, e.AtArg(e.Now().Add(d), rec, id))
			id++
		case 3:
			t := e.Now().Add(Duration(next() & 15))
			pri := uint64(next() & 3)
			live = append(live, e.AtArgPri(t, pri, rec, id))
			id++
		case 4:
			if n := len(live); n > 0 {
				e.Cancel(live[int(uint16(next())|uint16(next())<<8)%n])
			}
		case 5:
			e.AdvanceTo(e.Now().Add(Duration(uint16(next()) | uint16(next())<<8)))
		case 6:
			e.Run(e.Now().Add(Duration(next())))
		default:
			_ = e.nextTime()
		}
	}
	e.RunAll()
	return fires, e.Metrics(), e.Now()
}

// diffOps runs one op program on both backends and returns a description of
// the first divergence, or nil when they agree exactly.
func diffOps(data []byte) error {
	hf, hm, ht := runOps(SchedulerHeap, data)
	wf, wm, wt := runOps(SchedulerWheel, data)
	if len(hf) != len(wf) {
		return fmt.Errorf("fired %d events on heap, %d on wheel", len(hf), len(wf))
	}
	for i := range hf {
		if hf[i] != wf[i] {
			return fmt.Errorf("pop %d: heap %+v, wheel %+v", i, hf[i], wf[i])
		}
	}
	if hm != wm {
		return fmt.Errorf("metrics diverge:\n heap  %+v\n wheel %+v", hm, wm)
	}
	if ht != wt {
		return fmt.Errorf("final clock: heap %v, wheel %v", ht, wt)
	}
	return nil
}

// shrinkOps minimizes a failing op program: smallest failing prefix first,
// then a greedy single-byte removal pass. Returns a program that still fails.
func shrinkOps(data []byte) []byte {
	for k := 1; k <= len(data); k++ {
		if diffOps(data[:k]) != nil {
			data = data[:k:k]
			break
		}
	}
	for i := 0; i < len(data); {
		cand := append(append([]byte{}, data[:i]...), data[i+1:]...)
		if diffOps(cand) != nil {
			data = cand
		} else {
			i++
		}
	}
	return data
}

// TestWheelHeapPropertyEquivalence drives >10⁵ random schedule/cancel/
// advance operations (seeded, shrinkable) through both backends. 5000
// sequences × ≥(bytes/3) ops each ≈ 2.4×10⁵ ops minimum; a divergence is
// minimized before reporting so the failure is directly actionable (and
// worth committing to the fuzz corpus).
func TestWheelHeapPropertyEquivalence(t *testing.T) {
	seqs := 5000
	if testing.Short() {
		seqs = 500
	}
	rng := rand.New(rand.NewSource(42))
	for s := 0; s < seqs; s++ {
		data := make([]byte, 32+rng.Intn(224))
		rng.Read(data)
		if diffOps(data) != nil {
			min := shrinkOps(data)
			t.Fatalf("sequence %d diverges: %v\nminimized program (add to fuzz corpus): %x",
				s, diffOps(min), min)
		}
	}
}

// TestWheelSlotBoundary pins ordering across level-0 slot edges: events one
// picosecond either side of a slot boundary, exactly on it, and colliding
// inside one slot must pop in (time, seq) order.
func TestWheelSlotBoundary(t *testing.T) {
	e := NewEngineWithScheduler(1, SchedulerWheel)
	var got []Time
	times := []Time{
		wheelGran - 1, wheelGran, wheelGran + 1, // slot 0 → slot 1 edge
		2*wheelGran - 1, 2 * wheelGran, // slot 1 → slot 2 edge
		wheelGran, wheelGran + 1, // duplicates: seq breaks the tie
		0, // fires immediately at t=0
	}
	for _, at := range times {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.RunAll()
	want := []Time{0, wheelGran - 1, wheelGran, wheelGran, wheelGran + 1, wheelGran + 1,
		2*wheelGran - 1, 2 * wheelGran}
	if len(got) != len(want) {
		t.Fatalf("fired %d of %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d = %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestWheelOverflowCascade schedules events past the top level's horizon so
// they land on the overflow list, then interleaves near events; draining must
// produce global time order, exercising migrateOverflow and the multi-level
// cascade as the frontier catches up.
func TestWheelOverflowCascade(t *testing.T) {
	e := NewEngineWithScheduler(1, SchedulerWheel)
	horizon := Time(1) << (wheelGranBits + wheelLevels*wheelLevelBits) // 2^58 ps
	times := []Time{
		horizon * 3, horizon + 1, horizon * 2, // overflow residents
		5, wheelGran * 300, horizon - 1, // in-wheel at levels 0/1/top
	}
	var got []Time
	for _, at := range times {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	if e.wheel.overflow == nil {
		t.Fatal("far events did not land on the overflow list")
	}
	e.RunAll()
	want := []Time{5, wheelGran * 300, horizon - 1, horizon + 1, horizon * 2, horizon * 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
	if e.wheel.overflow != nil || e.wheel.count != 0 {
		t.Fatal("wheel not empty after drain")
	}
}

// TestWheelFarFutureCancel parks events near the top of the time range on
// the overflow list, cancels some, and verifies the remainder still drains in
// order and the wheel empties — the far-future/cancel interaction the RTO
// timer workload leans on.
func TestWheelFarFutureCancel(t *testing.T) {
	e := NewEngineWithScheduler(1, SchedulerWheel)
	var got []Time
	far := Time(1) << 61
	evs := make([]*Event, 0, 4)
	for k := Time(0); k < 4; k++ {
		at := far + k
		evs = append(evs, e.At(at, func() { got = append(got, at) }))
	}
	e.At(100, func() { got = append(got, 100) })
	if !e.Cancel(evs[1]) || !e.Cancel(evs[3]) {
		t.Fatal("cancel of overflow residents failed")
	}
	e.RunAll()
	want := []Time{100, far, far + 2}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if e.Pending() != 0 || e.wheel.count != 0 {
		t.Fatal("wheel not empty after drain")
	}
}

// TestWheelCancelledSlotRefill empties whole slots by cancellation and checks
// the refill machinery skips them without firing anything or losing the one
// survivor several levels up.
func TestWheelCancelledSlotRefill(t *testing.T) {
	e := NewEngineWithScheduler(1, SchedulerWheel)
	var evs []*Event
	for k := Time(0); k < 64; k++ {
		evs = append(evs, e.At(k*wheelGran, func() {}))
	}
	fired := false
	e.At(wheelGran<<(2*wheelLevelBits), func() { fired = true }) // level-2 resident
	for _, ev := range evs {
		e.Cancel(ev)
	}
	if nt := e.nextTime(); nt != wheelGran<<(2*wheelLevelBits) {
		t.Fatalf("nextTime over cancelled slots = %v", nt)
	}
	e.RunAll()
	if !fired {
		t.Fatal("survivor event lost")
	}
}

// TestWheelScheduleCancelAllocs gates the wheel hot path at zero
// steady-state allocations: schedule/cancel churn and schedule/run churn
// must both live entirely off the event free list and the retained run-heap
// backing array.
func TestWheelScheduleCancelAllocs(t *testing.T) {
	e := NewEngineWithScheduler(1, SchedulerWheel)
	fn := func() {}
	// Warm the free list and the run-heap capacity.
	for k := 0; k < 64; k++ {
		e.Cancel(e.Schedule(Duration(k), fn))
	}
	if n := testing.AllocsPerRun(200, func() {
		ev := e.Schedule(1000, fn)
		e.Cancel(ev)
	}); n != 0 {
		t.Fatalf("schedule+cancel allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		e.Schedule(5, fn)
		e.RunAll()
	}); n != 0 {
		t.Fatalf("schedule+run allocates %.1f/op, want 0", n)
	}
}
