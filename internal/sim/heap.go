package sim

import "container/heap"

// This file is the binary-heap scheduler backend — the engine's original
// event queue, kept alive verbatim as the differential oracle for the timing
// wheel (see wheel.go). SchedulerHeap engines run on it; the wheel must
// reproduce its pop order and Metrics bit-for-bit (contract_test.go,
// wheel_test.go, FuzzWheelHeapEquivalence, and the grid-level
// TestGridSchedulerEquivalence all compare the two).

// eventBefore is the engine's total order over events: (time, pri, seq).
// seq is unique per event, so this is a strict total order — pop order is
// fully determined by it regardless of which queue structure maintains it.
// Both scheduler backends order by exactly this function.
func eventBefore(a, b *Event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}

// eventHeap orders events by (time, pri, seq).
type eventHeap []*Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return eventBefore(h[i], h[j]) }
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = idxDead
	*h = old[:n-1]
	return e
}

// heapPush inserts a scheduled event into the heap backend.
func (e *Engine) heapPush(ev *Event) { heap.Push(&e.heapq, ev) }

// heapRemove cancels a pending event out of the heap backend.
func (e *Engine) heapRemove(ev *Event) { heap.Remove(&e.heapq, ev.index) }

// heapPop removes and returns the earliest pending event.
func (e *Engine) heapPop() *Event { return heap.Pop(&e.heapq).(*Event) }
