package lint

import "testing"

// TestRelPkgPath pins the module-path normalization every scoping decision
// runs on: absolute import paths are stripped against the go.mod module path
// exactly — not by substring — so a module named themis never claims packages
// from a sibling module like themis-extra.
func TestRelPkgPath(t *testing.T) {
	cases := []struct {
		mod, pkg string
		rel      string
		ok       bool
	}{
		{"themis", "themis", "", true},
		{"themis", "themis/internal/sim", "internal/sim", true},
		{"themis", "themis/cmd/themis-lint", "cmd/themis-lint", true},
		{"themis", "themis/internal/lint/testdata/src/maporder", "internal/lint/testdata/src/maporder", true},
		{"themis", "themis-extra/internal/sim", "", false},
		{"themis", "other/themis/internal/sim", "", false},
		{"themis", "fmt", "", false},
		{"example.com/deep/mod", "example.com/deep/mod/internal/core", "internal/core", true},
	}
	for _, c := range cases {
		rel, ok := relPkgPath(c.mod, c.pkg)
		if rel != c.rel || ok != c.ok {
			t.Errorf("relPkgPath(%q, %q) = %q, %v; want %q, %v", c.mod, c.pkg, rel, ok, c.rel, c.ok)
		}
	}
}

// TestInScope pins the per-analyzer package scoping on the normalized paths.
func TestInScope(t *testing.T) {
	cases := []struct {
		a    *Analyzer
		rel  string
		want bool
	}{
		// The lint package and every testdata tree are exempt from everything.
		{MapOrder, "internal/lint", false},
		{MapOrder, "internal/lint/testdata/src/maporder", false},
		{NDTaint, "internal/lint/testdata/src/ndtaint", false},
		{Wallclock, "cmd/testdata", false},

		// wallclock: simulation packages only; CLIs may read the wall clock.
		{Wallclock, "internal/sim", true},
		{Wallclock, "cmd/themis-sim", false},

		// time-units: everywhere except package sim, which defines the units.
		{TimeUnits, "internal/sim", false},
		{TimeUnits, "internal/fabric", true},

		// hotpath: the TorPipeline middleware package only.
		{Hotpath, "internal/core", true},
		{Hotpath, "internal/fabric", false},

		// purity: the deterministic-core subtrees, including internal/exp.
		{Purity, "internal/sim", true},
		{Purity, "internal/exp", true},
		{Purity, "internal/route/subpkg", true},
		{Purity, "internal/obs", false},
		{Purity, "cmd/themis-sim", false},

		// whole-program analyzers run for every in-module target package.
		{NDTaint, "internal/obs", true},
		{HotAlloc, "cmd/themis-sim", true},
		{Escapes, "internal/chaos", true},
	}
	for _, c := range cases {
		if got := inScope(c.a, c.rel); got != c.want {
			t.Errorf("inScope(%s, %q) = %v, want %v", c.a.Name, c.rel, got, c.want)
		}
	}
}

// TestHasPathSegment guards the testdata exemption helper: segment matches
// must be whole path elements, not substrings.
func TestHasPathSegment(t *testing.T) {
	cases := []struct {
		rel, seg string
		want     bool
	}{
		{"internal/lint/testdata/src/x", "testdata", true},
		{"testdata", "testdata", true},
		{"internal/testdatax/pkg", "testdata", false},
		{"internal/mytestdata", "testdata", false},
		{"", "testdata", false},
	}
	for _, c := range cases {
		if got := hasPathSegment(c.rel, c.seg); got != c.want {
			t.Errorf("hasPathSegment(%q, %q) = %v, want %v", c.rel, c.seg, got, c.want)
		}
	}
}
