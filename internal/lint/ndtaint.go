package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// NDTaint is the interprocedural nondeterminism-taint analyzer: it tracks
// values originating at nondeterministic sources along the module call graph
// into determinism sinks and reports the full source→sink path.
//
// Sources:
//   - map `range` order (the key/value variables observe Go's randomized
//     iteration order; a loop audited commutative carries //lint:ordered);
//   - `select` with two or more communication cases (runtime picks at random);
//   - unseeded math/rand top-level functions (process-global source);
//   - sync.Map.Range callback parameters;
//   - pointer→uintptr conversions (ASLR leaks address bits into values);
//   - time.Now and friends (wall clock), anywhere in the module — including
//     cmd/, which the site-level wallclock analyzer deliberately exempts.
//
// Sinks — the places where a nondeterministic value corrupts the contract:
// engine event scheduling, trace recording, Trial/report JSON encoding, trace
// JSONL export, and FIB construction. A sink call audited as safe carries a
// justified //lint:taint-ok on its line or the line above.
//
// The propagation graph is value-level and flow-insensitive: assignments,
// field stores (field-sensitive, instance-insensitive), container element
// collapse, call-argument → parameter binding (interface calls resolved to
// every module implementation), return-value binding, and pass-through for
// calls that leave the module (stdlib). Calls through plain function values
// are not tracked, matching the call graph's contract.
var NDTaint = &Analyzer{
	Name: "ndtaint",
	Doc:  "track nondeterministic values along the call graph into determinism sinks",
	Run:  runNDTaint,
}

// taintSinkNames maps fully-qualified function names to sink categories.
func taintSinkNames(modPath string) map[string]string {
	m := make(map[string]string)
	for _, n := range []string{"At", "AtArg", "Schedule", "ScheduleArg"} {
		m["(*"+modPath+"/internal/sim.Engine)."+n] = "event scheduling"
	}
	m["(*"+modPath+"/internal/sim.Timer).Reset"] = "event scheduling"
	for _, n := range []string{"Record", "RecordPacket", "RecordFault"} {
		m["(*"+modPath+"/internal/trace.Tracer)."+n] = "trace recording"
	}
	m[modPath+"/internal/exp.NewReport"] = "report JSON encoding"
	m["(*"+modPath+"/internal/exp.Report).JSON"] = "report JSON encoding"
	m["(*"+modPath+"/internal/exp.Report).WriteFile"] = "report JSON encoding"
	m[modPath+"/internal/obs.NewDump"] = "trace JSONL export"
	m[modPath+"/internal/obs.WriteJSONL"] = "trace JSONL export"
	m[modPath+"/internal/route.recompute"] = "FIB construction"
	m["(*"+modPath+"/internal/route.Plane).reconcile"] = "FIB construction"
	return m
}

// tnode is one node of the taint-propagation graph. Comparable, so it keys
// the adjacency and visited maps directly.
type tnode struct {
	kind byte         // 'o' object, 'r' function return, 'c' call site, 's' source site, 'k' sink site
	obj  types.Object // kind 'o'
	fn   string       // kind 'r': FullName
	pos  token.Pos    // kind 's'/'k': site identity
	desc string       // kind 's'/'k': human label
}

// tedge is one directed propagation step, labeled for path reporting.
type tedge struct {
	to   tnode
	pos  token.Pos
	note string
}

// taintGraph is the module-wide propagation graph plus the bookkeeping the
// reporter and the vacuity guards need.
type taintGraph struct {
	prog    *Program
	sinks   map[string]string
	out     map[tnode][]tedge
	sources []tnode
	// sinkPkg/sinkMsg describe each sink node (package owning the call site,
	// category); sinkCalls counts every sink call site seen per category,
	// tainted or not, so tests can prove the sinks are non-vacuous.
	sinkPkg   map[tnode]string
	sinkCalls map[string][]token.Pos
	// per-file escape annotations
	ordered map[*ast.File]map[int]bool
	taintOK map[*ast.File]map[int]bool
}

func runNDTaint(pass *Pass) []Diagnostic {
	prog := pass.Prog
	if prog == nil {
		return nil
	}
	prog.taint()
	return prog.taintDiags[pass.Pkg.Path]
}

// taint builds the propagation graph and solves it once per Program.
func (prog *Program) taint() {
	if prog.taintDiags != nil {
		return
	}
	tg := &taintGraph{
		prog:      prog,
		sinks:     taintSinkNames(prog.ModPath),
		out:       make(map[tnode][]tedge),
		sinkPkg:   make(map[tnode]string),
		sinkCalls: make(map[string][]token.Pos),
		ordered:   make(map[*ast.File]map[int]bool),
		taintOK:   make(map[*ast.File]map[int]bool),
	}
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			tg.ordered[f] = annotatedLines(prog.Fset, f, "lint:ordered")
			tg.taintOK[f] = annotatedLines(prog.Fset, f, "lint:taint-ok")
		}
	}
	for _, p := range prog.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				tg.walkFunc(p, f, fd, fn)
			}
		}
	}
	prog.taintDiags = tg.solve()
	prog.taintSinkCalls = tg.sinkCalls
}

// TaintSinkCalls exposes, per sink category, every sink call site seen in the
// module — the vacuity guard asserts each category is exercised by a real
// package, so the analyzer cannot silently rot into checking nothing.
func (prog *Program) TaintSinkCalls() map[string][]token.Pos {
	prog.taint()
	return prog.taintSinkCalls
}

func (tg *taintGraph) edge(from, to tnode, pos token.Pos, note string) {
	tg.out[from] = append(tg.out[from], tedge{to: to, pos: pos, note: note})
}

func objNode(o types.Object) tnode { return tnode{kind: 'o', obj: o} }
func retNode(fn string) tnode      { return tnode{kind: 'r', fn: fn} }
func (tg *taintGraph) sourceNode(pos token.Pos, desc string) tnode {
	n := tnode{kind: 's', pos: pos, desc: desc}
	tg.sources = append(tg.sources, n)
	return n
}

// suppressed reports whether a source or sink on the given line carries one
// of the accepted escape markers.
func (tg *taintGraph) suppressed(f *ast.File, pos token.Pos, alsoOrdered bool) bool {
	line := tg.prog.Fset.Position(pos).Line
	if m := tg.taintOK[f]; m != nil && (m[line] || m[line-1]) {
		return true
	}
	if alsoOrdered {
		if m := tg.ordered[f]; m != nil && (m[line] || m[line-1]) {
			return true
		}
	}
	return false
}

// walkFunc adds the propagation edges contributed by one function body.
func (tg *taintGraph) walkFunc(p *Package, f *ast.File, fd *ast.FuncDecl, fn *types.Func) {
	caller := fn.FullName()
	info := p.Info

	// Named results flow to the function's return node even on bare returns.
	if sig, ok := fn.Type().(*types.Signature); ok {
		res := sig.Results()
		for i := 0; i < res.Len(); i++ {
			if v := res.At(i); v.Name() != "" {
				tg.edge(objNode(v), retNode(caller), fd.Pos(), "returned from "+fn.Name())
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.AssignStmt:
			tg.walkAssign(p, e)
		case *ast.GenDecl:
			for _, spec := range e.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					obj := info.Defs[name]
					if obj == nil {
						continue
					}
					var rhs ast.Expr
					if len(vs.Values) == len(vs.Names) {
						rhs = vs.Values[i]
					} else if len(vs.Values) == 1 {
						rhs = vs.Values[0]
					}
					if rhs != nil {
						for _, from := range tg.exprNodes(p, rhs) {
							tg.edge(from, objNode(obj), name.Pos(), "assigned to "+name.Name)
						}
					}
				}
			}
		case *ast.RangeStmt:
			tg.walkRange(p, f, e)
		case *ast.SelectStmt:
			tg.walkSelect(p, f, e)
		case *ast.ReturnStmt:
			for _, r := range e.Results {
				for _, from := range tg.exprNodes(p, r) {
					tg.edge(from, retNode(caller), r.Pos(), "returned from "+fn.Name())
				}
			}
		case *ast.CallExpr:
			tg.walkCall(p, f, caller, e)
		}
		return true
	})
}

// walkAssign wires rhs taint into lhs destinations. Stores through a field or
// an element collapse onto the field object / container object.
func (tg *taintGraph) walkAssign(p *Package, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			rhs = as.Rhs[0] // tuple: every lhs gets the full rhs taint
		}
		if rhs == nil {
			continue
		}
		from := tg.exprNodes(p, rhs)
		if len(from) == 0 {
			continue
		}
		for _, to := range tg.destNodes(p, lhs) {
			for _, fr := range from {
				tg.edge(fr, to, as.TokPos, "assigned to "+destLabel(lhs))
			}
		}
	}
}

// destLabel renders a short name for an assignment destination.
func destLabel(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	case *ast.IndexExpr:
		return destLabel(v.X) + "[...]"
	case *ast.StarExpr:
		return "*" + destLabel(v.X)
	}
	return "destination"
}

// destNodes resolves an assignment destination to graph nodes.
func (tg *taintGraph) destNodes(p *Package, e ast.Expr) []tnode {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := identObj(p.Info, v); obj != nil {
			return []tnode{objNode(obj)}
		}
	case *ast.SelectorExpr:
		var out []tnode
		if sel, ok := p.Info.Selections[v]; ok && sel.Kind() == types.FieldVal {
			out = append(out, objNode(sel.Obj()))
		} else if obj := identObj(p.Info, v.Sel); obj != nil {
			out = append(out, objNode(obj)) // qualified package-level var
		}
		// Storing through x.f taints x as a container too.
		out = append(out, tg.destNodes(p, v.X)...)
		return out
	case *ast.IndexExpr:
		return tg.destNodes(p, v.X) // element stores collapse onto the container
	case *ast.StarExpr:
		return tg.destNodes(p, v.X)
	}
	return nil
}

// identObj returns the variable object an identifier refers to, nil for
// constants, types, packages and the blank identifier.
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if id.Name == "_" {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if _, ok := obj.(*types.Var); ok {
		return obj
	}
	return nil
}

// walkRange seeds map-iteration-order taint on the key/value variables and
// propagates container taint for other range forms.
func (tg *taintGraph) walkRange(p *Package, f *ast.File, rs *ast.RangeStmt) {
	tv, ok := p.Info.Types[rs.X]
	if !ok {
		return
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	var dests []tnode
	for _, ke := range []ast.Expr{rs.Key, rs.Value} {
		if ke == nil {
			continue
		}
		if id, ok := ke.(*ast.Ident); ok {
			if obj := identObj(p.Info, id); obj != nil {
				dests = append(dests, objNode(obj))
			}
		}
	}
	if isMap && !tg.suppressed(f, rs.For, true) {
		src := tg.sourceNode(rs.For, "map iteration order")
		for _, d := range dests {
			tg.edge(src, d, rs.For, "observed in map-range order")
		}
	}
	// Element taint: ranging a tainted container taints the loop variables
	// regardless of the container kind.
	for _, from := range tg.exprNodes(p, rs.X) {
		for _, d := range dests {
			tg.edge(from, d, rs.For, "ranged over "+destLabel(rs.X))
		}
	}
}

// walkSelect seeds scheduler-choice taint on variables bound by a select with
// two or more communication cases.
func (tg *taintGraph) walkSelect(p *Package, f *ast.File, ss *ast.SelectStmt) {
	comms := 0
	for _, c := range ss.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comms++
		}
	}
	if comms < 2 || tg.suppressed(f, ss.Select, false) {
		return
	}
	src := tg.sourceNode(ss.Select, "select with multiple ready cases")
	for _, c := range ss.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if as, ok := cc.Comm.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := identObj(p.Info, id); obj != nil {
						tg.edge(src, objNode(obj), ss.Select, "bound in select case")
					}
				}
			}
		}
	}
}

// walkCall binds arguments to parameters of every statically-resolved module
// callee (interface calls fan out to each implementation), records sink call
// sites, and seeds the sync.Map.Range source.
func (tg *taintGraph) walkCall(p *Package, f *ast.File, caller string, call *ast.CallExpr) {
	// sync.Map.Range: iteration order taints the callback parameters.
	if fn := calleeFunc(p.Info, call); fn != nil && fn.Name() == "Range" &&
		fn.Pkg() != nil && fn.Pkg().Path() == "sync" && len(call.Args) == 1 {
		if fl, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok && !tg.suppressed(f, call.Pos(), true) {
			src := tg.sourceNode(call.Pos(), "sync.Map.Range iteration order")
			for _, field := range fl.Type.Params.List {
				for _, name := range field.Names {
					if obj := p.Info.Defs[name]; obj != nil {
						tg.edge(src, objNode(obj), call.Pos(), "observed in sync.Map.Range order")
					}
				}
			}
		}
	}

	// Resolve the callees via the call graph (same positions, interface
	// calls already fanned out).
	var recvExpr ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			recvExpr = sel.X
		}
	}
	for _, e := range tg.prog.Graph.Edges[caller] {
		if e.Pos != call.Pos() {
			continue
		}
		callee := e.Callee
		if cat, isSink := tg.sinks[callee]; isSink {
			tg.sinkCalls[cat] = append(tg.sinkCalls[cat], call.Pos())
			if !tg.suppressed(f, call.Pos(), false) {
				sink := tnode{kind: 'k', pos: call.Pos(), desc: cat}
				tg.sinkPkg[sink] = p.Path
				args := call.Args
				if recvExpr != nil {
					args = append([]ast.Expr{recvExpr}, args...)
				}
				for _, a := range args {
					for _, from := range tg.exprNodes(p, a) {
						tg.edge(from, sink, call.Pos(), "flows into "+shortFuncName(tg.prog.ModPath, callee)+" ("+cat+")")
					}
				}
			}
		}
		fi := tg.prog.Graph.Funcs[callee]
		if fi == nil {
			continue
		}
		sig, ok := fi.Fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		if recvExpr != nil && sig.Recv() != nil {
			for _, from := range tg.exprNodes(p, recvExpr) {
				tg.edge(from, objNode(sig.Recv()), call.Pos(), "receiver of "+fi.Fn.Name())
			}
		}
		params := sig.Params()
		for i, a := range call.Args {
			var pv *types.Var
			switch {
			case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
				pv = params.At(i)
			case sig.Variadic() && params.Len() > 0:
				pv = params.At(params.Len() - 1)
			}
			if pv == nil {
				continue
			}
			for _, from := range tg.exprNodes(p, a) {
				tg.edge(from, objNode(pv), a.Pos(), "passed to "+fi.Fn.Name()+" as "+paramLabel(pv))
			}
		}
		// The call expression observes the callee's return taint, including
		// through interface dispatch.
		tg.edge(retNode(callee), tnode{kind: 'c', pos: call.Pos()}, call.Pos(), "returned by "+fi.Fn.Name())
	}
}

// paramLabel names a parameter for path steps.
func paramLabel(v *types.Var) string {
	if v.Name() != "" && v.Name() != "_" {
		return v.Name()
	}
	return "arg"
}

// exprNodes collects the taint-graph nodes whose taint the expression
// carries: identifiers, field selections, module-call returns, and the
// synthetic sources seeded by nondeterministic constructs.
func (tg *taintGraph) exprNodes(p *Package, e ast.Expr) []tnode {
	var out []tnode
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := identObj(p.Info, v); obj != nil {
			out = append(out, objNode(obj))
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[v]; ok && sel.Kind() == types.FieldVal {
			out = append(out, objNode(sel.Obj()))
			out = append(out, tg.exprNodes(p, v.X)...)
		} else if obj := identObj(p.Info, v.Sel); obj != nil {
			out = append(out, objNode(obj))
		} else {
			out = append(out, tg.exprNodes(p, v.X)...) // method value: carry receiver taint
		}
	case *ast.CallExpr:
		out = append(out, tg.callNodes(p, v)...)
	case *ast.BinaryExpr:
		out = append(out, tg.exprNodes(p, v.X)...)
		out = append(out, tg.exprNodes(p, v.Y)...)
	case *ast.UnaryExpr:
		out = append(out, tg.exprNodes(p, v.X)...)
	case *ast.StarExpr:
		out = append(out, tg.exprNodes(p, v.X)...)
	case *ast.IndexExpr:
		out = append(out, tg.exprNodes(p, v.X)...)
		out = append(out, tg.exprNodes(p, v.Index)...)
	case *ast.SliceExpr:
		out = append(out, tg.exprNodes(p, v.X)...)
	case *ast.TypeAssertExpr:
		out = append(out, tg.exprNodes(p, v.X)...)
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			out = append(out, tg.exprNodes(p, el)...)
		}
	case *ast.FuncLit:
		// A closure carries the taint of every variable it touches: if it is
		// later scheduled or recorded, that taint goes with it.
		ast.Inspect(v.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := identObj(p.Info, id); obj != nil {
					out = append(out, objNode(obj))
				}
			}
			return true
		})
	}
	return out
}

// callNodes models what a call expression evaluates to, taint-wise.
func (tg *taintGraph) callNodes(p *Package, call *ast.CallExpr) []tnode {
	// Conversion? T(x) carries x's taint; pointer→uintptr is a fresh source.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		var out []tnode
		if len(call.Args) == 1 {
			out = tg.exprNodes(p, call.Args[0])
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.Uintptr {
				if at, ok := p.Info.Types[call.Args[0]]; ok && isAddrLike(at.Type) {
					f := enclosingFile(p, call.Pos())
					if f == nil || !tg.suppressed(f, call.Pos(), false) {
						out = append(out, tg.sourceNode(call.Pos(), "pointer→uintptr conversion"))
					}
				}
			}
		}
		return out
	}

	fn := calleeFunc(p.Info, call)

	// Nondeterministic stdlib sources.
	if fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "time":
			if forbiddenTime[fn.Name()] {
				f := enclosingFile(p, call.Pos())
				if f == nil || !tg.suppressed(f, call.Pos(), false) {
					return []tnode{tg.sourceNode(call.Pos(), "time."+fn.Name()+" (wall clock)")}
				}
				return nil
			}
		case "math/rand", "math/rand/v2":
			if recvOf(fn) == nil && !allowedRand[fn.Name()] {
				f := enclosingFile(p, call.Pos())
				if f == nil || !tg.suppressed(f, call.Pos(), false) {
					return []tnode{tg.sourceNode(call.Pos(), "rand."+fn.Name()+" (process-global source)")}
				}
				return nil
			}
		}
	}

	// Module callee (direct or via a module interface): the call expression
	// observes the resolved callees' return taint through the call-site node
	// wired up in walkCall.
	if fn != nil {
		if _, inModule := tg.prog.Graph.Funcs[fn.FullName()]; inModule {
			return []tnode{{kind: 'c', pos: call.Pos()}}
		}
		if fn.Pkg() != nil && (fn.Pkg().Path() == tg.prog.ModPath || strings.HasPrefix(fn.Pkg().Path(), tg.prog.ModPath+"/")) {
			return []tnode{{kind: 'c', pos: call.Pos()}}
		}
	}

	// Unknown or extern callee: conservative pass-through of arguments and
	// receiver (strings.Join(taintedKeys, ...) stays tainted).
	var out []tnode
	for _, a := range call.Args {
		out = append(out, tg.exprNodes(p, a)...)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			out = append(out, tg.exprNodes(p, sel.X)...)
		}
	}
	return out
}

// isAddrLike reports whether a type holds an address (pointer or
// unsafe.Pointer), for the pointer→uintptr source.
func isAddrLike(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// solve runs BFS from every source and converts each reached sink node into
// a diagnostic carrying the full propagation path.
func (tg *taintGraph) solve() map[string][]Diagnostic {
	type parentEdge struct {
		from tnode
		pos  token.Pos
		note string
	}
	parent := make(map[tnode]parentEdge)
	visited := make(map[tnode]bool)
	var queue []tnode
	for _, s := range tg.sources {
		if !visited[s] {
			visited[s] = true
			queue = append(queue, s)
		}
	}
	var reachedSinks []tnode
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.kind == 'k' {
			reachedSinks = append(reachedSinks, cur)
			continue // sinks have no out-edges
		}
		for _, e := range tg.out[cur] {
			if !visited[e.to] {
				visited[e.to] = true
				parent[e.to] = parentEdge{from: cur, pos: e.pos, note: e.note}
				queue = append(queue, e.to)
			}
		}
	}

	diags := make(map[string][]Diagnostic)
	for _, sink := range reachedSinks {
		// Reconstruct source→sink steps from the BFS parents.
		var rev []Step
		cur := sink
		src := sink
		for {
			pe, ok := parent[cur]
			if !ok {
				break
			}
			rev = append(rev, Step{Pos: tg.prog.Fset.Position(pe.pos), Note: pe.note})
			cur = pe.from
			src = cur
		}
		steps := make([]Step, 0, len(rev)+1)
		steps = append(steps, Step{Pos: tg.prog.Fset.Position(src.pos), Note: "source: " + src.desc})
		for i := len(rev) - 1; i >= 0; i-- {
			steps = append(steps, rev[i])
		}
		pkg := tg.sinkPkg[sink]
		diags[pkg] = append(diags[pkg], Diagnostic{
			Pos:  tg.prog.Fset.Position(sink.pos),
			Rule: "ndtaint",
			Message: "nondeterministic value (" + src.desc + ", " + shortPos(tg.prog.Fset, src.pos) +
				") reaches " + sink.desc + " — thread a seeded/deterministic value instead or justify with //lint:taint-ok",
			Path: steps,
		})
	}
	for pkg := range diags {
		SortDiagnostics(diags[pkg])
	}
	return diags
}

// shortPos renders file:line with the directory stripped.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + strconv.Itoa(p.Line)
}
