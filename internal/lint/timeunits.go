package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TimeUnits flags untyped integer literals added to or subtracted from
// sim.Time / sim.Duration values: a bare literal in that position is raw
// picoseconds in disguise. Scale a unit constant instead (5*sim.Microsecond).
// Multiplication and division are allowed — that IS the idiom for scaling a
// unit constant — and fully constant expressions (unit definitions such as
// `Forever = 1<<63 - 1`) are skipped.
var TimeUnits = &Analyzer{
	Name: "timeunits",
	Doc:  "forbid bare integer literals in sim.Time/sim.Duration addition",
	Run:  runTimeUnits,
}

func runTimeUnits(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos) {
		diags = append(diags, Diagnostic{
			Pos:     pass.Fset.Position(pos),
			Rule:    "timeunits",
			Message: "bare integer literal in sim time arithmetic is raw picoseconds; scale a unit constant (e.g. 5*sim.Microsecond)",
		})
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.ADD && e.Op != token.SUB {
					return true
				}
				// A constant expression is a unit definition, not arithmetic
				// on a running clock.
				if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil {
					return true
				}
				if !isSimTime(pass, e.X) && !isSimTime(pass, e.Y) {
					return true
				}
				if lit := intLiteral(e.X); lit != nil {
					report(lit.Pos())
				}
				if lit := intLiteral(e.Y); lit != nil {
					report(lit.Pos())
				}
			case *ast.AssignStmt:
				if e.Tok != token.ADD_ASSIGN && e.Tok != token.SUB_ASSIGN {
					return true
				}
				if len(e.Lhs) != 1 || len(e.Rhs) != 1 || !isSimTime(pass, e.Lhs[0]) {
					return true
				}
				if lit := intLiteral(e.Rhs[0]); lit != nil {
					report(lit.Pos())
				}
			}
			return true
		})
	}
	return diags
}

// isSimTime reports whether the expression has named type sim.Time or
// sim.Duration.
func isSimTime(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "/internal/sim") {
		return false
	}
	return obj.Name() == "Time" || obj.Name() == "Duration"
}

// intLiteral unwraps parens and unary +/- and returns the INT literal, if any.
func intLiteral(e ast.Expr) *ast.BasicLit {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.ADD && v.Op != token.SUB {
				return nil
			}
			e = v.X
		case *ast.BasicLit:
			if v.Kind == token.INT {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}
