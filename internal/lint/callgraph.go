package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// sinkNames lists the functions whose invocation order is order-sensitive
// simulation state: scheduling on the event queue, (re)arming timers, and
// appending to the trace ring. A function from which any of these is
// reachable must not iterate maps (see MapOrder).
func sinkNames(modPath string) map[string]bool {
	return map[string]bool{
		"(*" + modPath + "/internal/sim.Engine).At":             true,
		"(*" + modPath + "/internal/sim.Engine).Schedule":       true,
		"(*" + modPath + "/internal/sim.Timer).Reset":           true,
		"(*" + modPath + "/internal/sim.Ticker).Start":          true,
		"(*" + modPath + "/internal/trace.Tracer).Record":       true,
		"(*" + modPath + "/internal/trace.Tracer).RecordPacket": true,
		"(*" + modPath + "/internal/trace.Tracer).RecordFault":  true,
		"(*" + modPath + "/internal/fabric.Network).Inject":     true,
	}
}

// CallEdge is one statically-resolved call: Caller invokes Callee at Pos.
// Interface calls fan out into one edge per concrete module implementation.
type CallEdge struct {
	Caller string // types.Func.FullName of the enclosing declaration
	Callee string // types.Func.FullName of the resolved callee
	Pos    token.Pos
}

// FuncInfo ties a module function's type object to its declaration site.
type FuncInfo struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Graph is the module-wide static call graph shared by the interprocedural
// analyzers (map-order reach, nondeterminism taint, hot-path allocation).
// The construction is simple by design:
//
//   - direct calls (pkg.F, recv.M, local f) produce edges;
//   - calls through an interface method are resolved class-hierarchy style to
//     every concrete method in the module that implements the interface;
//   - calls through plain function values are not tracked.
//
// Closures count toward their enclosing declaration: a function that builds
// an event callback inside a map range is exactly the bug the taint and
// map-order analyzers hunt, even though the callback body runs later.
type Graph struct {
	// Edges holds the out-edges of each caller, in source order.
	Edges map[string][]CallEdge
	// Funcs maps FullName to the declaration for every module function.
	Funcs map[string]*FuncInfo
	// FuncNames is the deterministic iteration order over Funcs.
	FuncNames []string
}

// BuildGraph constructs the call graph over all loaded module packages.
func BuildGraph(pkgs []*Package, modPath string) *Graph {
	// Concrete (non-interface) named types, for interface-call resolution.
	var concrete []types.Type
	for _, p := range pkgs {
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if !types.IsInterface(tn.Type()) {
				concrete = append(concrete, tn.Type())
			}
		}
	}

	// implementers resolves an interface method to the matching concrete
	// methods in the module.
	implementers := func(iface *types.Interface, name string, pkg *types.Package) []*types.Func {
		var out []*types.Func
		for _, t := range concrete {
			pt := types.NewPointer(t)
			if !types.Implements(t, iface) && !types.Implements(pt, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(pt, true, pkg, name)
			if fn, ok := obj.(*types.Func); ok {
				out = append(out, fn)
			}
		}
		return out
	}

	g := &Graph{
		Edges: make(map[string][]CallEdge),
		Funcs: make(map[string]*FuncInfo),
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				caller, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				from := caller.FullName()
				g.Funcs[from] = &FuncInfo{Fn: caller, Decl: fd, Pkg: p}
				g.FuncNames = append(g.FuncNames, from)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeFunc(p.Info, call)
					if fn == nil {
						return true
					}
					g.Edges[from] = append(g.Edges[from], CallEdge{Caller: from, Callee: fn.FullName(), Pos: call.Pos()})
					if recv := recvOf(fn); recv != nil {
						if iface, ok := recv.Underlying().(*types.Interface); ok {
							for _, impl := range implementers(iface, fn.Name(), fn.Pkg()) {
								g.Edges[from] = append(g.Edges[from], CallEdge{Caller: from, Callee: impl.FullName(), Pos: call.Pos()})
							}
						}
					}
					return true
				})
			}
		}
	}
	sort.Strings(g.FuncNames)
	return g
}

// ReachableFrom computes the forward closure of the given roots: every
// function reachable from a root through the static call graph, roots
// included (when they exist in the module).
func (g *Graph) ReachableFrom(roots []string) map[string]bool {
	hot := make(map[string]bool)
	var queue []string
	for _, r := range roots {
		if !hot[r] {
			hot[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.Edges[cur] {
			if !hot[e.Callee] {
				hot[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
	}
	return hot
}

// ReachingTo computes the reverse closure of the given sinks: every function
// from which a sink is reachable through the static call graph.
func (g *Graph) ReachingTo(sinks map[string]bool) map[string]bool {
	rev := make(map[string][]string)
	for _, edges := range g.Edges {
		for _, e := range edges {
			rev[e.Callee] = append(rev[e.Callee], e.Caller)
		}
	}
	reach := make(map[string]bool)
	var queue []string
	for s := range sinks {
		reach[s] = true
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, caller := range rev[cur] {
			if !reach[caller] {
				reach[caller] = true
				queue = append(queue, caller)
			}
		}
	}
	return reach
}

// BuildReach computes, over all loaded module packages, the set of functions
// (keyed by types.Func.FullName) from which an event-queue or trace sink is
// reachable through the static call graph.
func BuildReach(pkgs []*Package, modPath string) map[string]bool {
	return BuildGraph(pkgs, modPath).ReachingTo(sinkNames(modPath))
}

// calleeFunc resolves the statically-known callee of a call expression.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// recvOf returns the receiver type of a method, nil for plain functions.
func recvOf(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}
