// Package lint is themis-lint: a stdlib-only static-analysis suite that
// enforces the two properties the whole repo rests on — bit-for-bit
// deterministic simulation and the paper's protocol invariants.
//
// Five analyzer families run over ./internal/... and ./cmd/...:
//
//   - no-wallclock / no-global-rand: simulation packages must not read the
//     wall clock (time.Now, time.Since, ...) or the process-global math/rand
//     source; virtual time comes from sim.Engine and randomness from the
//     seeded *rand.Rand threaded through the scenario seed.
//
//   - map-order: `range` over a map inside any function that (transitively,
//     through a simple call graph) schedules simulation events or appends to
//     the trace ring is flagged — Go randomizes map iteration order, so such
//     a loop feeds nondeterminism straight into the event queue. Bodies that
//     are verified commutative carry a `//lint:ordered` annotation.
//
//   - psn-compare: direct `<` `>` `<=` `>=` between packet.PSN operands is
//     wrong near the 24-bit wrap point; use the serial-number-safe
//     Before/After/Diff helpers.
//
//   - time-units: untyped integer literals added to or subtracted from
//     sim.Time / sim.Duration values are raw picoseconds in disguise; scale
//     a unit constant instead (e.g. 5*sim.Microsecond).
//
//   - hotpath: map iteration in any internal/core function reachable from a
//     fabric.TorPipeline method body is O(registered flows) work per packet;
//     keep incremental state instead, or annotate a reviewed event-rate sweep
//     with `//lint:hotpath-ok`.
//
// The driver (cmd/themis-lint) exits non-zero on findings so the suite gates
// `make verify`. Analyzers are built on go/parser + go/types only — no
// dependencies beyond the standard library.
package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, carrying an exact source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string // analyzer name
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Pass is the per-package unit of analyzer work.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	// Reach is the set of functions from which an event-queue or trace sink
	// is reachable (used by the map-order analyzer; nil disables the check).
	Reach map[string]bool
}

// Analyzer is one rule family.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) []Diagnostic
}

// Analyzers is the full suite, in reporting order.
var Analyzers = []*Analyzer{Wallclock, MapOrder, PSNCompare, TimeUnits, Hotpath}

// Run loads every package matched by patterns (relative to modRoot), runs the
// suite with its per-analyzer package scoping, and returns the findings
// sorted by position. Patterns are directories or `dir/...` wildcards, as the
// go tool spells them; `testdata` trees are always skipped.
func Run(modRoot string, patterns []string) ([]Diagnostic, error) {
	ldr, err := NewLoader(modRoot)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(modRoot, patterns)
	if err != nil {
		return nil, err
	}
	var targets []*Package
	for _, dir := range dirs {
		p, err := ldr.LoadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: loading %s: %w", dir, err)
		}
		targets = append(targets, p)
	}
	reach := BuildReach(ldr.Packages(), ldr.ModPath)
	var diags []Diagnostic
	for _, p := range targets {
		for _, a := range Analyzers {
			if !inScope(a, p.Path, ldr.ModPath) {
				continue
			}
			pass := &Pass{Fset: ldr.Fset, Pkg: p, Reach: reach}
			diags = append(diags, a.Run(pass)...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags, nil
}

// inScope applies the per-analyzer package scoping:
//   - no-wallclock runs on simulation packages (internal/...) only — CLIs may
//     legitimately read the wall clock for progress reporting;
//   - time-units skips package sim itself, which defines the unit constants;
//   - the lint package and its fixtures are exempt from everything (they
//     contain violations on purpose).
func inScope(a *Analyzer, pkgPath, modPath string) bool {
	lintPath := modPath + "/internal/lint"
	if pkgPath == lintPath || strings.HasPrefix(pkgPath, lintPath+"/") {
		return false
	}
	switch a {
	case Wallclock:
		return strings.HasPrefix(pkgPath, modPath+"/internal/")
	case TimeUnits:
		return pkgPath != modPath+"/internal/sim"
	case Hotpath:
		// The TorPipeline hot-path rule is about the middleware itself; other
		// packages may legitimately name a method SelectUplink (e.g. stubs in
		// fabric tests).
		return pkgPath == modPath+"/internal/core"
	default:
		return true
	}
}

// expandPatterns resolves go-style package patterns to directories holding at
// least one non-test Go file.
func expandPatterns(modRoot string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "" || pat == "." {
			pat = modRoot
		} else if !filepath.IsAbs(pat) {
			pat = filepath.Join(modRoot, pat)
		}
		if !recursive {
			add(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
