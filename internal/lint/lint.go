// Package lint is themis-lint: a stdlib-only static-analysis suite that
// enforces the two properties the whole repo rests on — bit-for-bit
// deterministic simulation and the paper's protocol invariants.
//
// The suite has two tiers. Five site analyzers flag single constructs:
//
//   - no-wallclock / no-global-rand: simulation packages must not read the
//     wall clock (time.Now, time.Since, ...) or the process-global math/rand
//     source; virtual time comes from sim.Engine and randomness from the
//     seeded *rand.Rand threaded through the scenario seed.
//
//   - map-order: `range` over a map inside any function that (transitively,
//     through the module call graph) schedules simulation events or appends
//     to the trace ring is flagged — Go randomizes map iteration order, so
//     such a loop feeds nondeterminism straight into the event queue.
//
//   - psn-compare: direct `<` `>` `<=` `>=` between packet.PSN operands is
//     wrong near the 24-bit wrap point; use the serial-number-safe
//     Before/After/Diff helpers.
//
//   - time-units: untyped integer literals added to or subtracted from
//     sim.Time / sim.Duration values are raw picoseconds in disguise; scale
//     a unit constant instead (e.g. 5*sim.Microsecond).
//
//   - escapes: every `//lint:*` escape directive must carry a justification
//     after the directive; a bare escape is itself a finding.
//
// Four dataflow analyzers prove the determinism contract interprocedurally,
// reporting full source→sink paths:
//
//   - nd-taint: values originating at nondeterministic sources (map range
//     order, multi-case select, unseeded math/rand, sync.Map.Range,
//     pointer→uintptr, time.Now) are tracked along the call graph into
//     determinism sinks (event scheduling, trace recording, report JSON,
//     JSONL export, FIB construction).
//
//   - purity: the deterministic core (sim, fabric, rnic, core, route, lb,
//     cc, exp) must stay free of goroutines, channels, select and sync
//     primitives, so sharding can assume a goroutine-free single-shard
//     engine; exp.Runner's worker pool is the one allowlisted exception.
//
//   - hotpath: map iteration in any internal/core function reachable from a
//     fabric.TorPipeline method body is O(registered flows) work per packet.
//
//   - hot-alloc: allocation sites (composite literals, make/new, closures,
//     escaping append, interface boxing) reachable from the pinned zero-alloc
//     paths (engine schedule, fabric forward, TorPipeline, counters) turn the
//     AllocsPerRun benchmark guarantees into compile-time findings.
//
// The driver (cmd/themis-lint) exits non-zero on findings so the suite gates
// `make verify`; it also emits JSON and SARIF for CI annotation, honors a
// checked-in baseline of accepted findings, and lists active escape hatches
// with -escapes. Analyzers are built on go/parser + go/types only — no
// dependencies beyond the standard library.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Step is one hop of an interprocedural source→sink path.
type Step struct {
	Pos  token.Position `json:"pos"`
	Note string         `json:"note"`
}

// Diagnostic is one finding, carrying an exact source position and, for the
// dataflow analyzers, the source→sink path that produced it.
type Diagnostic struct {
	Pos     token.Position `json:"pos"`
	Rule    string         `json:"rule"` // analyzer name
	Message string         `json:"message"`
	Path    []Step         `json:"path,omitempty"` // source→sink chain, nil for site findings
}

// String renders the diagnostic in the conventional file:line:col form, with
// the source→sink path, if any, on indented continuation lines.
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
	for _, s := range d.Path {
		fmt.Fprintf(&b, "\n\t%s:%d: %s", s.Pos.Filename, s.Pos.Line, s.Note)
	}
	return b.String()
}

// Pass is the per-package unit of analyzer work.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	// Reach is the set of functions from which an event-queue or trace sink
	// is reachable (used by the map-order analyzer; nil disables the check).
	Reach map[string]bool
	// Prog is the whole-module context shared by the interprocedural
	// analyzers; they compute module-wide results once, memoized on Prog, and
	// filter diagnostics down to Pkg.
	Prog *Program
}

// Analyzer is one rule family.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) []Diagnostic
}

// Analyzers is the full suite, in reporting order.
var Analyzers = []*Analyzer{Wallclock, MapOrder, PSNCompare, TimeUnits, Hotpath, NDTaint, Purity, HotAlloc, Escapes}

// Program is the whole-module analysis context: every loaded package plus the
// call graph over them, with memoized module-wide analysis results so a run
// over N target packages does the interprocedural work once, not N times.
type Program struct {
	ModPath string
	Fset    *token.FileSet
	Pkgs    []*Package
	Graph   *Graph

	reach          map[string]bool
	hot            *hotSet
	taintDiags     map[string][]Diagnostic // keyed by package path
	taintSinkCalls map[string][]token.Pos  // sink category -> call sites seen
	allocDiags     map[string][]Diagnostic
}

// NewProgram builds the shared context over all loaded module packages.
func NewProgram(fset *token.FileSet, pkgs []*Package, modPath string) *Program {
	return &Program{
		ModPath: modPath,
		Fset:    fset,
		Pkgs:    pkgs,
		Graph:   BuildGraph(pkgs, modPath),
	}
}

// Reach memoizes the reverse closure of the event-queue/trace sinks.
func (prog *Program) Reach() map[string]bool {
	if prog.reach == nil {
		prog.reach = prog.Graph.ReachingTo(sinkNames(prog.ModPath))
	}
	return prog.reach
}

// Run loads every package matched by patterns (relative to modRoot), runs the
// suite with its per-analyzer package scoping, and returns the findings
// sorted by position. Patterns are directories or `dir/...` wildcards, as the
// go tool spells them; `testdata` trees are always skipped.
func Run(modRoot string, patterns []string) ([]Diagnostic, error) {
	ldr, err := NewLoader(modRoot)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(modRoot, patterns)
	if err != nil {
		return nil, err
	}
	var targets []*Package
	for _, dir := range dirs {
		p, err := ldr.LoadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: loading %s: %w", dir, err)
		}
		targets = append(targets, p)
	}
	prog := NewProgram(ldr.Fset, ldr.Packages(), ldr.ModPath)
	reach := prog.Reach()
	var diags []Diagnostic
	for _, p := range targets {
		rel, ok := relPkgPath(ldr.ModPath, p.Path)
		if !ok {
			continue
		}
		for _, a := range Analyzers {
			if !inScope(a, rel) {
				continue
			}
			pass := &Pass{Fset: ldr.Fset, Pkg: p, Reach: reach, Prog: prog}
			diags = append(diags, a.Run(pass)...)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders findings by position, then rule, for stable output.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}
