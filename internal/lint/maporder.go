package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` over a map inside any function from which an
// event-queue or trace sink is reachable. Go randomizes map iteration order,
// so such a loop feeds nondeterminism straight into the simulation schedule.
// A loop whose body is verified commutative (e.g. deleting independent stale
// entries) may carry a `//lint:ordered` annotation on the `for` line or the
// line directly above it.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "forbid map iteration in functions that reach the event queue or trace ring",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pass.Pkg.Files {
		ordered := annotatedLines(pass.Fset, f, "lint:ordered")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok || !pass.Reach[fn.FullName()] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.Pkg.Info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				line := pass.Fset.Position(rs.For).Line
				if ordered[line] || ordered[line-1] {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:  pass.Fset.Position(rs.For),
					Rule: "maporder",
					Message: "map iteration in " + fn.Name() +
						", which reaches the event queue or trace ring; iterate sorted keys or annotate //lint:ordered",
				})
				return true
			})
		}
	}
	return diags
}

// annotatedLines collects the source lines carrying the given lint marker.
func annotatedLines(fset *token.FileSet, f *ast.File, marker string) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, marker) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}
