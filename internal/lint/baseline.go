package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is a checked-in set of accepted legacy findings. CI loads it so
// new findings fail the build while known ones only annotate: the suite can
// grow stricter without blocking on a flag-day cleanup. Entries match on
// (rule, file, message) — line numbers are deliberately absent so unrelated
// edits above a finding don't invalidate the baseline.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry identifies one accepted finding.
type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"` // module-root-relative, forward slashes
	Message string `json:"message"`
}

func (e BaselineEntry) key() string { return e.Rule + "\x00" + e.File + "\x00" + e.Message }

// LoadBaseline reads a baseline file; a missing file is an empty baseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: 1}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("lint: baseline %s has unsupported version %d", path, b.Version)
	}
	return &b, nil
}

// Filter splits findings into new ones (returned) and baselined ones
// (counted). Each baseline entry absorbs any number of identical findings.
func (b *Baseline) Filter(modRoot string, diags []Diagnostic) (fresh []Diagnostic, baselined int) {
	accepted := make(map[string]bool, len(b.Findings))
	for _, e := range b.Findings {
		accepted[e.key()] = true
	}
	for _, d := range diags {
		e := BaselineEntry{Rule: d.Rule, File: relFile(modRoot, d.Pos.Filename), Message: d.Message}
		if accepted[e.key()] {
			baselined++
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh, baselined
}

// WriteBaseline serializes the findings as a baseline file, deduplicated and
// sorted for stable diffs.
func WriteBaseline(path, modRoot string, diags []Diagnostic) error {
	seen := make(map[string]bool)
	b := Baseline{Version: 1}
	for _, d := range diags {
		e := BaselineEntry{Rule: d.Rule, File: relFile(modRoot, d.Pos.Filename), Message: d.Message}
		if seen[e.key()] {
			continue
		}
		seen[e.key()] = true
		b.Findings = append(b.Findings, e)
	}
	sort.Slice(b.Findings, func(i, j int) bool { return b.Findings[i].key() < b.Findings[j].key() })
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
