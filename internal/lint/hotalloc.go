package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotAlloc turns the AllocsPerRun benchmark guarantees into compile-time
// findings: allocation sites reachable from the pinned zero-alloc paths —
// the 18 ns engine schedule/cancel, the 852 ns fabric forward, the per-packet
// TorPipeline methods, and the 14 ns counter update — are flagged with the
// full root→site call chain. Flagged sites:
//
//   - composite literals that allocate (&T{...}, slice and map literals);
//   - make and new;
//   - closures (a func literal built per packet escapes to the heap the
//     moment it is scheduled — use AtArg/ScheduleArg instead);
//   - append whose destination escapes (a field, an element, a return value);
//   - interface boxing: passing a non-pointer-shaped concrete value to an
//     interface parameter copies it to the heap.
//
// Two cold-path refinements keep the signal honest. Arguments to panic() are
// never scanned — a panicking run is over, not on the steady-state path. And a
// `//lint:alloc-ok` directive on a function DECLARATION marks the whole
// function as a reviewed cold branch (per-flow setup, cache fill, post-failure
// recompute): its body is not scanned and the hot set does not propagate
// through it to callees. A site-level justified `//lint:alloc-ok` on the
// flagged line still suppresses a single site (amortized growth, pool miss).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocation sites reachable from the pinned zero-alloc hot paths",
	Run:  runHotAlloc,
}

// hotAllocRootNames are the exact entry points of the pinned zero-alloc
// paths, spelled relative to the module path. LinkStateChanged is
// deliberately absent: link events are rare-path, only per-packet work is
// held to the zero-alloc bar.
func hotAllocRootNames(modPath string) []string {
	return []string{
		"(*" + modPath + "/internal/sim.Engine).At",
		"(*" + modPath + "/internal/sim.Engine).AtArg",
		"(*" + modPath + "/internal/sim.Engine).AtPri",
		"(*" + modPath + "/internal/sim.Engine).AtArgPri",
		"(*" + modPath + "/internal/sim.Engine).Schedule",
		"(*" + modPath + "/internal/sim.Engine).ScheduleArg",
		"(*" + modPath + "/internal/sim.Engine).Cancel",
		// Run/AdvanceTo pin the pop side of the scheduler: step, the wheel's
		// pop/refill/cascade machinery and the heap oracle are all reachable
		// from here, so slot-migration or run-heap maintenance growing an
		// allocation fails the lint before it shows up in a benchmark.
		"(*" + modPath + "/internal/sim.Engine).Run",
		"(*" + modPath + "/internal/sim.Engine).AdvanceTo",
		"(*" + modPath + "/internal/fabric.Network).Inject",
		"(*" + modPath + "/internal/fabric.Network).deliverToHost",
		"(*" + modPath + "/internal/fabric.swInst).receive",
		// The egress serializer's completion path and the propagation pipe's
		// burst drain are per-packet work on every hop.
		"(*" + modPath + "/internal/fabric.outQueue).txDone",
		"(*" + modPath + "/internal/fabric.outQueue).deliverBurst",
		"(*" + modPath + "/internal/obs.Counter).Inc",
		"(*" + modPath + "/internal/obs.Counter).Add",
	}
}

// hotAllocEntryMethods are per-packet TorPipeline entry points matched by
// method name on any receiver, like the hotpath analyzer's seeding: the
// middleware contract is the interface, not one concrete type.
var hotAllocEntryMethods = map[string]bool{
	"SelectUplink":      true,
	"OnDeliverToHost":   true,
	"FilterHostControl": true,
}

// hotSet is the memoized forward closure of the hot roots, with the BFS
// parent edges that reconstruct a root→function call chain for reporting.
type hotSet struct {
	in     map[string]bool
	parent map[string]CallEdge // first edge by which a function was reached
	roots  map[string]bool
}

// hotFuncs computes (once per Program) every function reachable from a
// pinned zero-alloc root through the static call graph. Calls through plain
// function values are not tracked, so a callback scheduled on the engine does
// not drag its body into the hot set — its construction site does the
// escaping, and that is what gets flagged.
func (prog *Program) hotFuncs() *hotSet {
	if prog.hot != nil {
		return prog.hot
	}
	g := prog.Graph
	roots := make(map[string]bool)
	for _, r := range hotAllocRootNames(prog.ModPath) {
		if g.Funcs[r] != nil {
			roots[r] = true
		}
	}
	for _, name := range g.FuncNames {
		fi := g.Funcs[name]
		if fi.Decl.Recv != nil && hotAllocEntryMethods[fi.Fn.Name()] {
			roots[name] = true
		}
	}
	// A //lint:alloc-ok on a function declaration marks a reviewed cold
	// branch: the function is excluded from the hot set entirely, so neither
	// its body nor its callees (via it) are scanned.
	annCache := make(map[*ast.File]map[int]bool)
	cold := func(name string) bool {
		fi := g.Funcs[name]
		if fi == nil {
			return false
		}
		f := enclosingFile(fi.Pkg, fi.Decl.Pos())
		if f == nil {
			return false
		}
		ann, ok := annCache[f]
		if !ok {
			ann = annotatedLines(prog.Fset, f, "lint:alloc-ok")
			annCache[f] = ann
		}
		line := prog.Fset.Position(fi.Decl.Pos()).Line
		return ann[line] || ann[line-1]
	}
	hs := &hotSet{in: make(map[string]bool), parent: make(map[string]CallEdge), roots: roots}
	var queue []string
	for _, r := range sortedKeys(roots) {
		if cold(r) {
			continue
		}
		hs.in[r] = true
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.Edges[cur] {
			if !hs.in[e.Callee] && !cold(e.Callee) {
				hs.in[e.Callee] = true
				hs.parent[e.Callee] = e
				queue = append(queue, e.Callee)
			}
		}
	}
	prog.hot = hs
	return hs
}

// HotFunctions exposes the hot set for the vacuity guards: the analyzer is
// only meaningful while real packages actually sit on the pinned paths.
func (prog *Program) HotFunctions() []string {
	hs := prog.hotFuncs()
	return sortedKeys(hs.in)
}

// pathTo renders the root→fn call chain recorded by the BFS parents.
func (hs *hotSet) pathTo(prog *Program, fn string) []Step {
	var chain []CallEdge
	cur := fn
	for !hs.roots[cur] {
		e, ok := hs.parent[cur]
		if !ok {
			break
		}
		chain = append(chain, e)
		cur = e.Caller
	}
	var steps []Step
	if fi := prog.Graph.Funcs[cur]; fi != nil {
		steps = append(steps, Step{
			Pos:  prog.Fset.Position(fi.Decl.Pos()),
			Note: "pinned zero-alloc root " + shortFuncName(prog.ModPath, cur),
		})
	}
	for i := len(chain) - 1; i >= 0; i-- {
		e := chain[i]
		steps = append(steps, Step{
			Pos:  prog.Fset.Position(e.Pos),
			Note: shortFuncName(prog.ModPath, e.Caller) + " calls " + shortFuncName(prog.ModPath, e.Callee),
		})
	}
	return steps
}

// shortFuncName strips the module path from a FullName for readable reports:
// "(*themis/internal/sim.Engine).Schedule" -> "(*sim.Engine).Schedule".
func shortFuncName(modPath, full string) string {
	full = strings.ReplaceAll(full, modPath+"/internal/", "")
	return strings.ReplaceAll(full, modPath+"/", "")
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func runHotAlloc(pass *Pass) []Diagnostic {
	prog := pass.Prog
	if prog == nil {
		return nil
	}
	if prog.allocDiags == nil {
		prog.allocDiags = make(map[string][]Diagnostic)
		hs := prog.hotFuncs()
		for _, name := range prog.Graph.FuncNames {
			if !hs.in[name] {
				continue
			}
			fi := prog.Graph.Funcs[name]
			pkgPath := fi.Pkg.Path
			diags := hotAllocScan(prog, hs, name, fi)
			prog.allocDiags[pkgPath] = append(prog.allocDiags[pkgPath], diags...)
		}
	}
	return prog.allocDiags[pass.Pkg.Path]
}

// hotAllocScan flags the allocation sites inside one hot function body.
func hotAllocScan(prog *Program, hs *hotSet, name string, fi *FuncInfo) []Diagnostic {
	var diags []Diagnostic
	info := fi.Pkg.Info
	file := enclosingFile(fi.Pkg, fi.Decl.Pos())
	var allowed map[int]bool
	if file != nil {
		allowed = annotatedLines(prog.Fset, file, "lint:alloc-ok")
	}
	report := func(pos token.Pos, what string) {
		line := prog.Fset.Position(pos).Line
		if allowed[line] || allowed[line-1] {
			return
		}
		diags = append(diags, Diagnostic{
			Pos:  prog.Fset.Position(pos),
			Rule: "hotalloc",
			Message: what + " in " + shortFuncName(prog.ModPath, name) +
				", which is on a pinned zero-alloc hot path — hoist it, pool it, or justify with //lint:alloc-ok",
			Path: append(hs.pathTo(prog, name), Step{Pos: prog.Fset.Position(pos), Note: what}),
		})
	}

	// escaping destinations for the append heuristic: a slice stored through
	// a selector or index, or returned, outlives the call and drags the
	// grown backing array to the heap.
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CompositeLit:
			switch info.Types[e].Type.Underlying().(type) {
			case *types.Slice:
				report(e.Pos(), "slice literal")
			case *types.Map:
				report(e.Pos(), "map literal")
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					report(e.Pos(), "&composite literal")
				}
			}
		case *ast.FuncLit:
			report(e.Pos(), "closure (func literal)")
			return false // the body runs later; its allocations are its scheduler's problem
		case *ast.CallExpr:
			if isBuiltinCall(info, e, "panic") {
				// A panicking run is over; allocations building the panic
				// message are not on the steady-state path.
				return false
			}
			hotAllocCall(fi, e, report)
		case *ast.AssignStmt:
			for i, rhs := range e.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinCall(info, call, "append") || i >= len(e.Lhs) {
					continue
				}
				switch ast.Unparen(e.Lhs[i]).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					report(call.Pos(), "append into an escaping destination")
				}
			}
		case *ast.ReturnStmt:
			for _, r := range e.Results {
				if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && isBuiltinCall(info, call, "append") {
					report(call.Pos(), "append returned to the caller")
				}
			}
		}
		return true
	})
	return diags
}

// hotAllocCall flags make/new and interface-boxing argument conversions at a
// call site inside a hot function.
func hotAllocCall(fi *FuncInfo, call *ast.CallExpr, report func(token.Pos, string)) {
	info := fi.Pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				switch info.Types[call].Type.Underlying().(type) {
				case *types.Slice:
					report(call.Pos(), "make([]T)")
				case *types.Map:
					report(call.Pos(), "make(map)")
				case *types.Chan:
					report(call.Pos(), "make(chan)")
				}
			case "new":
				report(call.Pos(), "new(T)")
			}
			return
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // []T... passed whole, no boxing
			} else if sl, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.Type == nil || types.IsInterface(at.Type) || at.IsNil() {
			continue
		}
		if isPointerShaped(at.Type) {
			continue
		}
		report(arg.Pos(), "interface boxing of "+at.Type.String()+" into "+fn.Name()+" parameter")
	}
}

// isPointerShaped reports whether values of the type fit the interface data
// word without a heap copy.
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// isBuiltinCall reports whether the call invokes the named builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// enclosingFile returns the package file containing pos.
func enclosingFile(p *Package, pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}
