// Package hotpath is a themis-lint golden fixture for the hot-path analyzer:
// map iteration is flagged in any function reachable, through same-package
// calls, from a fabric.TorPipeline method body (SelectUplink,
// OnDeliverToHost, FilterHostControl, LinkStateChanged), and the
// //lint:hotpath-ok annotation suppresses the finding.
package hotpath

type pipeline struct {
	flows map[uint32]int
	ports map[int]bool
}

// SelectUplink is a per-packet entry point: a direct map range is flagged.
func (p *pipeline) SelectUplink() int {
	total := 0
	for _, v := range p.flows { // want "map iteration in SelectUplink, which is reachable from a TorPipeline hot-path method"
		total += v
	}
	return total
}

// OnDeliverToHost only reaches the map range through a helper.
func (p *pipeline) OnDeliverToHost() {
	p.recount()
}

// recount is transitively hot via OnDeliverToHost.
func (p *pipeline) recount() {
	for k := range p.flows { // want "map iteration in recount, which is reachable from a TorPipeline hot-path method"
		_ = k
	}
}

// FilterHostControl ranges a slice, which is ordered, bounded work: clean.
func (p *pipeline) FilterHostControl(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// LinkStateChanged carries the audited annotation: link events are rare, so
// a one-off sweep there was reviewed and accepted.
func (p *pipeline) LinkStateChanged() {
	for k := range p.ports { //lint:hotpath-ok link events are rare-path; the sweep was reviewed
		_ = k
	}
}

// resync shows the annotation on the line above the loop.
func (p *pipeline) resync() {
	//lint:hotpath-ok — reviewed: runs only on link events
	for k := range p.ports {
		_ = k
	}
}

// Stats is pull-based and never called from a hot method: not flagged.
func (p *pipeline) Stats() int {
	n := 0
	for range p.flows {
		n++
	}
	return n
}

// SelectUplink as a free function has no receiver, so it is not a pipeline
// method and seeds nothing.
func SelectUplink(m map[int]int) {
	for k := range m {
		_ = k
	}
}
