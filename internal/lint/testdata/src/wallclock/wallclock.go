// Package wallclock is a themis-lint golden fixture: every line below marked
// `// want` must produce exactly that diagnostic, and nothing else may fire.
package wallclock

import (
	"math/rand"
	"time"
)

func bad() {
	_ = time.Now()               // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	_ = time.Since(time.Time{})  // want "time.Since reads the wall clock"
	_ = rand.Int()               // want "rand.Int uses the process-global source"
	rand.Shuffle(3, func(i, j int) {}) // want "rand.Shuffle uses the process-global source"
}

func good() {
	// Explicitly seeded generators are the sanctioned randomness source.
	r := rand.New(rand.NewSource(42))
	_ = r.Int()
	// time.Duration arithmetic and formatting never touch the clock.
	d := 5 * time.Millisecond
	_ = d.String()
}
