// Package purity is a themis-lint golden fixture for the concurrency-purity
// analyzer: the deterministic core must stay free of goroutines, channels,
// select and sync primitives (the event loop is the only scheduler), and a
// justified //lint:purity-ok records the review of anything unavoidable.
package purity

import (
	"sync"
	"sync/atomic"
)

type worker struct {
	mu   sync.Mutex // want "sync.Mutex in the deterministic core"
	hits uint64
}

// spawn exercises every banned construct around a goroutine fan-out.
func (w *worker) spawn(jobs []func()) {
	done := make(chan struct{}) // want "make\(chan\) in the deterministic core"
	for _, j := range jobs {
		j := j
		go func() { // want "go statement in the deterministic core"
			j()
			done <- struct{}{} // want "channel send in the deterministic core"
		}()
	}
	for range jobs {
		<-done // want "channel receive in the deterministic core"
	}
	close(done) // want "close on channel in the deterministic core"
}

// drain shows the range-over-channel form.
func (w *worker) drain(ch chan int) int {
	total := 0
	for v := range ch { // want "range over channel in the deterministic core"
		total += v
	}
	return total
}

// count uses the atomic package: flagged at the selector.
func (w *worker) count() {
	atomic.AddUint64(&w.hits, 1) // want "atomic.AddUint64 in the deterministic core"
}

// guarded shows the reviewed escape: the justification records why the
// primitive cannot leak into simulation state.
type guarded struct {
	mu sync.Mutex //lint:purity-ok guards a debug-only registry that is never read on the sim path
}

// pure is the idiomatic alternative: plain sequential control flow.
func pure(jobs []func()) {
	for _, j := range jobs {
		j()
	}
}
