// Package psncompare is a themis-lint golden fixture: ordered comparisons
// between packet.PSN operands must go through the serial-number helpers.
package psncompare

import "themis/internal/packet"

func bad(a, b packet.PSN) bool {
	if a < b { // want "raw < between PSN operands"
		return true
	}
	if a >= b { // want "raw >= between PSN operands"
		return false
	}
	return b > packet.NewPSN(100) // want "raw > between PSN operands"
}

func good(a, b packet.PSN) bool {
	if a == b || a != b.Next() {
		return a.Before(b)
	}
	// Diff returns a plain int32; comparing it is the sanctioned idiom.
	return a.Diff(b) < 0
}

// untyped is unrelated integer ordering and must not fire.
func untyped(a, b uint32) bool { return a < b }
