// Package maporder is a themis-lint golden fixture for the map-order
// analyzer: map iteration is flagged only in functions from which an
// event-queue sink is reachable, directly or transitively, and the
// //lint:ordered annotation suppresses the finding.
package maporder

import "themis/internal/sim"

type node struct {
	eng *sim.Engine
}

// fire reaches the event queue, making every caller order-sensitive.
func (n *node) fire() {
	n.eng.Schedule(sim.Microsecond, func() {})
}

func (n *node) direct(m map[int]int) {
	for k := range m { // want "map iteration in direct, which reaches the event queue"
		_ = k
		n.eng.Schedule(sim.Microsecond, func() {})
	}
}

func (n *node) transitive(m map[string]bool) {
	for k := range m { // want "map iteration in transitive, which reaches the event queue"
		_ = k
		n.fire()
	}
}

func (n *node) deferred(m map[int]int) {
	// Building callbacks inside a map range is order-sensitive even though
	// they run later.
	for k := range m { // want "map iteration in deferred, which reaches the event queue"
		k := k
		n.eng.At(sim.Time(k), func() {}) // want "nondeterministic value \(map iteration order, maporder.go:\d+\) reaches event scheduling"
	}
}

func (n *node) annotated(m map[int]int) {
	// Deleting independent entries is commutative; the annotation records
	// that the body was audited.
	for k := range m { //lint:ordered deleting independent entries is commutative
		delete(m, k)
	}
	n.fire()
}

func (n *node) annotatedAbove(m map[int]int) {
	//lint:ordered — sums are commutative
	for _, v := range m {
		_ = v
	}
	n.fire()
}

// pure never reaches a sink: its map order stays local and is not flagged.
func pure(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// slices reaches a sink but ranges a slice, which is ordered.
func (n *node) slices(xs []int) {
	for _, x := range xs {
		_ = x
	}
	n.fire()
}
