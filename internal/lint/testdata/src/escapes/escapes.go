// Package escapes is a themis-lint golden fixture for the escape-hatch
// audit: every //lint:* directive must carry a justification recording what
// was reviewed, and an unknown directive — a typo silently suppressing
// nothing — is a finding in its own right. The markers sit in block comments
// because the directive itself must be the whole line comment.
package escapes

// justified escapes are inventory (see themis-lint -escapes), not findings.
func ok(m map[int]int) int {
	s := 0
	for _, v := range m { //lint:ordered commutative sum; reviewed with the 2026-08 determinism audit
		s += v
	}
	return s
}

// bare: the directive suppresses the map-order analyzer but records nothing.
func bare(m map[int]int) {
	for k := range m { /* want "bare //lint:ordered escape without justification" */ //lint:ordered
		_ = k
	}
}

// dashed: decorative separators alone do not count as a justification.
func dashed(m map[int]int) {
	for k := range m { /* want "bare //lint:ordered escape without justification" */ //lint:ordered —
		_ = k
	}
}

// typo: the directive is not one the suite honors, so it suppresses nothing.
var _ = 0 /* want "unknown lint directive //lint:taintok suppresses nothing" */ //lint:taintok the right spelling is taint-ok
