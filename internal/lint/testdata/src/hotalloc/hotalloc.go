// Package hotalloc is a themis-lint golden fixture for the hot-path
// allocation analyzer: allocation sites reachable from a pinned zero-alloc
// root (here the TorPipeline entry methods, matched by name) are flagged
// with the full root→site call chain. Arguments to panic() are cold, a
// line-level //lint:alloc-ok accepts one reviewed site, and a
// declaration-level //lint:alloc-ok excludes a whole reviewed cold branch —
// its callees included — from the hot set.
package hotalloc

import "fmt"

type entry struct{ port int }

type pipeline struct {
	table   map[uint32]*entry
	scratch []int
	names   map[string]int
}

// SelectUplink is a hot root by method name: every allocating form in the
// body is flagged.
func (p *pipeline) SelectUplink(n int) int {
	p.guard(n)
	e := &entry{port: n}               // want "&composite literal in .*SelectUplink"
	ids := make([]int, 0, n)           // want "make\(\[\]T\) in .*SelectUplink"
	seen := make(map[int]bool)         // want "make\(map\) in .*SelectUplink"
	q := new(entry)                    // want "new\(T\) in .*SelectUplink"
	cb := func() int { return e.port } // want "closure \(func literal\) in .*SelectUplink"
	ids = p.grow(ids)
	_ = seen
	_ = q
	return cb() + len(ids)
}

// OnDeliverToHost reaches its allocations through helpers: each finding's
// path names the chain.
func (p *pipeline) OnDeliverToHost(k uint32) *entry {
	p.refill(int(k))
	return p.lookup(k)
}

// lookup is transitively hot via OnDeliverToHost.
func (p *pipeline) lookup(k uint32) *entry {
	e, ok := p.table[k]
	if !ok {
		e = &entry{} // want "&composite literal in .*lookup"
		p.table[k] = e
	}
	return e
}

// FilterHostControl shows the boxing finding: a non-pointer-shaped concrete
// value passed to an interface parameter is copied to the heap.
func (p *pipeline) FilterHostControl(id uint32) {
	if id == 0 {
		p.register(id)
	}
	p.log("drop", id) // want "interface boxing of uint32 into log parameter in .*FilterHostControl"
}

func (p *pipeline) log(msg string, args ...any) { _, _ = msg, args }

// grow returns an append: the grown backing array escapes to the caller.
func (p *pipeline) grow(xs []int) []int {
	return append(xs, 1) // want "append returned to the caller in .*grow"
}

// guard panics on contract violation: a panicking run is over, so the
// message formatting — boxing included — is cold and not flagged.
func (p *pipeline) guard(n int) {
	if n < 0 {
		panic(fmt.Sprintf("hotalloc: negative count %d", n))
	}
}

// refill shows the line-level escape: growth is amortized, reviewed.
func (p *pipeline) refill(x int) {
	p.scratch = append(p.scratch, x) //lint:alloc-ok scratch grows once to the high-water mark, then is reused
}

// register is a reviewed cold branch reachable from a hot entry: the
// declaration-level escape excludes the whole function, and expand below
// stays out of the hot set because this is its only caller.
//
//lint:alloc-ok per-flow registration: runs once per new flow, not per packet
func (p *pipeline) register(k uint32) *entry {
	e := &entry{}
	p.table[k] = e
	p.expand()
	return e
}

// expand is only called from the cold register: not scanned.
func (p *pipeline) expand() {
	p.names = make(map[string]int)
}

// Stats is never called from a hot entry: allocation is fine here.
func (p *pipeline) Stats() []int {
	return make([]int, 8)
}
