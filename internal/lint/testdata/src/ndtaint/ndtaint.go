// Package ndtaint is a themis-lint golden fixture for the nondeterminism
// taint analyzer: values originating at nondeterministic sources (map
// iteration order, multi-ready select, unseeded math/rand, wall-clock reads,
// pointer→uintptr conversions) are tracked along the call graph into
// determinism sinks, and each finding carries the full source→sink path.
// Several lines double as site-analyzer fixtures (wallclock, map-order,
// purity) because the golden harness runs the whole suite.
package ndtaint

import (
	"math/rand"
	"time"
	"unsafe"

	"themis/internal/sim"
)

type node struct {
	eng *sim.Engine
}

// direct: the ranged key flows into the event queue inside the loop.
func (n *node) direct(m map[int]int) {
	for k := range m { // want "map iteration in direct, which reaches the event queue"
		n.eng.At(sim.Time(k), func() {}) // want "nondeterministic value \(map iteration order, ndtaint.go:\d+\) reaches event scheduling"
	}
}

// pickLast leaks map order through its return value; no sink is called here,
// so the source only becomes a finding at launch's call site below.
func pickLast(m map[int]int) int {
	last := 0
	for k := range m {
		last = k
	}
	return last
}

// launch shows the interprocedural hop: the tainted return value crosses
// into the event queue one call later.
func (n *node) launch(m map[int]int) {
	n.eng.At(sim.Time(pickLast(m)), func() {}) // want "nondeterministic value \(map iteration order, ndtaint.go:\d+\) reaches event scheduling"
}

// clock stamps an event with the wall clock: the read itself is a wallclock
// site finding, and the value's flow into the queue is a taint finding.
func (n *node) clock() {
	t := sim.Time(time.Now().UnixNano()) // want "time.Now reads the wall clock"
	n.eng.At(t, func() {})               // want "nondeterministic value \(time.Now \(wall clock\), ndtaint.go:\d+\) reaches event scheduling"
}

// jitter draws from the process-global source: same two-layer reporting.
func (n *node) jitter() {
	d := sim.Duration(rand.Int63()) // want "rand.Int63 uses the process-global source"
	n.eng.Schedule(d, func() {})    // want "nondeterministic value \(rand.Int63 \(process-global source\), ndtaint.go:\d+\) reaches event scheduling"
}

// addr turns pointer identity — ASLR-dependent — into a schedule time.
func (n *node) addr(p *int) {
	u := uintptr(unsafe.Pointer(p))
	n.eng.At(sim.Time(u), func() {}) // want "nondeterministic value \(pointer→uintptr conversion, ndtaint.go:\d+\) reaches event scheduling"
}

// race picks whichever channel is ready first; the winner is
// scheduling-order-dependent. The select and receives are also concurrency
// findings in their own right (purity).
func (n *node) race(a, b chan int) {
	v := 0
	select { // want "select statement in the deterministic core"
	case v = <-a: // want "channel receive in the deterministic core"
	case v = <-b: // want "channel receive in the deterministic core"
	}
	n.eng.At(sim.Time(v), func() {}) // want "nondeterministic value \(select with multiple ready cases, ndtaint.go:\d+\) reaches event scheduling"
}

// audited: a justified //lint:ordered review suppresses both the map-order
// finding and the taint source.
func (n *node) audited(m map[int]int) {
	total := 0
	for _, v := range m { //lint:ordered commutative sum; the total is order-independent
		total += v
	}
	n.eng.At(sim.Time(total), func() {})
}

// cookie: //lint:taint-ok on the source line accepts a reviewed flow.
func (n *node) cookie(p *int) {
	u := uintptr(unsafe.Pointer(p)) //lint:taint-ok reviewed: identity cookie, never ordered on
	n.eng.At(sim.Time(u), func() {})
}

// local nondeterminism that never reaches a sink is not a taint finding.
func lastName(m map[string]bool) string {
	out := ""
	for k := range m {
		out = k
	}
	return out
}
