// Package timeunits is a themis-lint golden fixture: bare integer literals
// in sim.Time / sim.Duration addition are raw picoseconds in disguise.
package timeunits

import "themis/internal/sim"

// Constant unit scaling is the idiom the analyzer must leave alone.
const budget = 10 * sim.Microsecond

func bad(t sim.Time, d sim.Duration) sim.Time {
	t = t + 500 // want "bare integer literal in sim time arithmetic"
	t += 3      // want "bare integer literal in sim time arithmetic"
	d -= 7      // want "bare integer literal in sim time arithmetic"
	return t - 1 + sim.Time(d) // want "bare integer literal in sim time arithmetic"
}

func good(t sim.Time, d sim.Duration) sim.Time {
	t = t.Add(5 * sim.Microsecond)
	t = t + sim.Time(d)
	d = 2 * d // scaling by a literal is how unit constants are built
	t += sim.Time(budget)
	return t
}
