package lint

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// relPkgPath normalizes an import path against the module path read from
// go.mod at load time. It returns "" for the module root and the
// slash-separated subdirectory ("internal/sim", "cmd/themis-lint", ...) for
// subpackages; ok is false for packages outside the module, which are never
// in scope. Scoping decisions work on this normalized form only — no
// analyzer string-matches absolute module paths.
func relPkgPath(modPath, pkgPath string) (rel string, ok bool) {
	if pkgPath == modPath {
		return "", true
	}
	if rest, found := strings.CutPrefix(pkgPath, modPath+"/"); found {
		return rest, true
	}
	return "", false
}

// hasPathSegment reports whether rel contains the given path segment (e.g.
// "testdata" in "internal/lint/testdata/src/maporder").
func hasPathSegment(rel, seg string) bool {
	for rel != "" {
		head, rest, _ := strings.Cut(rel, "/")
		if head == seg {
			return true
		}
		rel = rest
	}
	return false
}

// purityScope lists the deterministic-core package subtrees (relative to the
// module root) that must stay free of concurrency primitives so the sharded
// space-parallel engine can assume a provably goroutine-free single shard.
// internal/exp is included because its Runner is the one sanctioned worker
// pool: the allowlist in purity.go carves out exactly (*exp.Runner).Run.
var purityScope = []string{
	"internal/sim",
	"internal/fabric",
	"internal/rnic",
	"internal/core",
	"internal/route",
	"internal/lb",
	"internal/cc",
	"internal/exp",
}

// inPurityScope reports whether the normalized package path is inside one of
// the deterministic-core subtrees.
func inPurityScope(rel string) bool {
	for _, s := range purityScope {
		if rel == s || strings.HasPrefix(rel, s+"/") {
			return true
		}
	}
	return false
}

// inScope applies the per-analyzer package scoping to a normalized module
// path (see relPkgPath):
//   - the lint package, its fixtures, and any testdata tree are exempt from
//     everything (fixtures contain violations on purpose);
//   - no-wallclock runs on simulation packages (internal/...) only — CLIs may
//     legitimately read the wall clock for progress reporting;
//   - time-units skips package sim itself, which defines the unit constants;
//   - hotpath is scoped to internal/core, where the TorPipeline middleware
//     lives; hot-alloc scopes itself through the hot-function set instead;
//   - purity covers the deterministic-core subtrees listed in purityScope.
func inScope(a *Analyzer, rel string) bool {
	if rel == "internal/lint" || strings.HasPrefix(rel, "internal/lint/") {
		return false
	}
	if hasPathSegment(rel, "testdata") {
		return false
	}
	switch a {
	case Wallclock:
		return strings.HasPrefix(rel, "internal/")
	case TimeUnits:
		return rel != "internal/sim"
	case Hotpath:
		// The TorPipeline hot-path rule is about the middleware itself; other
		// packages may legitimately name a method SelectUplink (e.g. stubs in
		// fabric tests).
		return rel == "internal/core"
	case Purity:
		return inPurityScope(rel)
	default:
		return true
	}
}

// expandPatterns resolves go-style package patterns to directories holding at
// least one non-test Go file.
func expandPatterns(modRoot string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		if pat == "" || pat == "." {
			pat = modRoot
		} else if !filepath.IsAbs(pat) {
			pat = filepath.Join(modRoot, pat)
		}
		if !recursive {
			add(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
