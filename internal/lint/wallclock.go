package lint

import (
	"go/ast"
	"go/types"
)

// Wallclock forbids wall-clock reads and the process-global math/rand source
// in simulation packages. Virtual time comes from sim.Engine; randomness comes
// from the seeded *rand.Rand threaded through the scenario configuration.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/Sleep/timers and package-level math/rand in simulation packages",
	Run:  runWallclock,
}

// forbiddenTime are the package time functions that read or wait on the wall
// clock. time.Duration arithmetic and formatting helpers stay allowed.
var forbiddenTime = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Sleep":     true,
}

// allowedRand are the math/rand package-level functions that do NOT touch the
// global source: constructors for explicitly seeded generators.
var allowedRand = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runWallclock(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Pkg.Info.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if forbiddenTime[sel.Sel.Name] {
					diags = append(diags, Diagnostic{
						Pos:     pass.Fset.Position(sel.Pos()),
						Rule:    "wallclock",
						Message: "time." + sel.Sel.Name + " reads the wall clock; simulation time must come from sim.Engine",
					})
				}
			case "math/rand", "math/rand/v2":
				if obj, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func); ok && !allowedRand[obj.Name()] {
					diags = append(diags, Diagnostic{
						Pos:     pass.Fset.Position(sel.Pos()),
						Rule:    "wallclock",
						Message: "rand." + sel.Sel.Name + " uses the process-global source; use the seeded *rand.Rand from the scenario",
					})
				}
			}
			return true
		})
	}
	return diags
}
