package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// WriteJSON emits the findings as an indented JSON array — the
// machine-readable twin of the file:line:col text output. File names are
// rewritten relative to modRoot so output is stable across checkouts.
func WriteJSON(w io.Writer, modRoot string, diags []Diagnostic) error {
	out := make([]Diagnostic, len(diags))
	for i, d := range diags {
		d.Pos.Filename = relFile(modRoot, d.Pos.Filename)
		if d.Path != nil {
			steps := make([]Step, len(d.Path))
			for j, s := range d.Path {
				s.Pos.Filename = relFile(modRoot, s.Pos.Filename)
				steps[j] = s
			}
			d.Path = steps
		}
		out[i] = d
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// sarif mirrors the slice of the SARIF 2.1.0 schema the suite emits: one run,
// one result per finding, and the source→sink path as a codeFlow so PR
// annotation UIs can render the full chain.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
	CodeFlows []sarifCodeFlow `json:"codeFlows,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
	Message          *sarifText    `json:"message,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifCodeFlow struct {
	ThreadFlows []sarifThreadFlow `json:"threadFlows"`
}

type sarifThreadFlow struct {
	Locations []sarifThreadFlowLoc `json:"locations"`
}

type sarifThreadFlowLoc struct {
	Location sarifLocation `json:"location"`
}

// WriteSARIF emits the findings as SARIF 2.1.0 for CI annotation.
func WriteSARIF(w io.Writer, modRoot string, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(Analyzers))
	for _, a := range Analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		res := sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relFile(modRoot, d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		}
		if len(d.Path) > 0 {
			flow := sarifThreadFlow{}
			for _, s := range d.Path {
				note := s.Note
				flow.Locations = append(flow.Locations, sarifThreadFlowLoc{Location: sarifLocation{
					PhysicalLocation: sarifPhysical{
						ArtifactLocation: sarifArtifact{URI: relFile(modRoot, s.Pos.Filename)},
						Region:           sarifRegion{StartLine: s.Pos.Line, StartColumn: s.Pos.Column},
					},
					Message: &sarifText{Text: note},
				}})
			}
			res.CodeFlows = []sarifCodeFlow{{ThreadFlows: []sarifThreadFlow{flow}}}
		}
		results = append(results, res)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "themis-lint", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// relFile rewrites an absolute file name relative to the module root, with
// forward slashes, so emitted artifacts are checkout-independent.
func relFile(modRoot, name string) string {
	if modRoot == "" {
		return name
	}
	if rel, err := filepath.Rel(modRoot, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}
