package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PSNCompare flags direct ordered comparisons between packet.PSN operands.
// PSNs live in the 24-bit BTH sequence space and wrap; raw `<` is wrong for
// any pair straddling the wrap point. Use the serial-number-safe
// Before/After/Diff methods instead. Equality comparisons are fine.
var PSNCompare = &Analyzer{
	Name: "psncompare",
	Doc:  "forbid raw </>/<=/>= between PSN operands; use Before/After/Diff",
	Run:  runPSNCompare,
}

var psnCmpOps = map[token.Token]bool{
	token.LSS: true,
	token.GTR: true,
	token.LEQ: true,
	token.GEQ: true,
}

func runPSNCompare(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || !psnCmpOps[be.Op] {
				return true
			}
			if isPSN(pass, be.X) || isPSN(pass, be.Y) {
				diags = append(diags, Diagnostic{
					Pos:  pass.Fset.Position(be.OpPos),
					Rule: "psncompare",
					Message: "raw " + be.Op.String() +
						" between PSN operands breaks at the 24-bit wrap; use Before/After/Diff",
				})
			}
			return true
		})
	}
	return diags
}

// isPSN reports whether the expression has the named type packet.PSN.
func isPSN(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "PSN" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "/internal/packet")
}
