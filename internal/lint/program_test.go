package lint

import (
	"go/types"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// realProg loads the real module (internal/... and cmd/...) exactly once for
// all vacuity-guard tests: the interprocedural results are memoized on the
// Program, so every guard reads the same analysis the production Run sees.
var realProg = sync.OnceValues(func() (*Program, error) {
	modRoot, err := filepath.Abs("../..")
	if err != nil {
		return nil, err
	}
	ldr, err := NewLoader(modRoot)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(modRoot, []string{"internal/...", "cmd/..."})
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		if _, err := ldr.LoadDir(dir); err != nil {
			return nil, err
		}
	}
	return NewProgram(ldr.Fset, ldr.Packages(), ldr.ModPath), nil
})

// TestTaintSinksNonVacuous pins every nd-taint sink category to at least one
// real call site in the module. A sink table entry that matches nothing —
// because the sink was renamed, moved, or never existed — silently turns the
// taint analyzer into a no-op for that category; this guard makes such rot a
// test failure instead.
func TestTaintSinksNonVacuous(t *testing.T) {
	prog, err := realProg()
	if err != nil {
		t.Fatal(err)
	}
	calls := prog.TaintSinkCalls()
	for _, category := range []string{
		"event scheduling",
		"trace recording",
		"report JSON encoding",
		"trace JSONL export",
		"FIB construction",
	} {
		sites := calls[category]
		real := 0
		for _, pos := range sites {
			file := prog.Fset.Position(pos).Filename
			if !strings.Contains(file, "testdata") {
				real++
			}
		}
		if real == 0 {
			t.Errorf("taint sink category %q has no call site outside testdata — the analyzer checks nothing for it", category)
		}
	}
}

// TestHotSetSpansRealPackages pins the hot-alloc root set to the packages the
// pinned zero-alloc benchmarks actually live in: the 18 ns schedule path
// (internal/sim), the 852 ns forward path (internal/fabric + internal/core),
// and the metrics gauges (internal/obs). If a root is renamed away, the hot
// set collapses to fixtures only and this guard fails before the analyzer can
// rot into vacuity.
func TestHotSetSpansRealPackages(t *testing.T) {
	prog, err := realProg()
	if err != nil {
		t.Fatal(err)
	}
	hot := prog.HotFunctions()
	for _, pkg := range []string{
		"/internal/sim.",
		"/internal/fabric.",
		"/internal/core.",
		"/internal/obs.",
		"/internal/lb.",
	} {
		found := false
		for _, fn := range hot {
			if strings.Contains(fn, pkg) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("hot set contains no function from %s — a pinned zero-alloc root no longer resolves there", strings.Trim(pkg, "/."))
		}
	}
	// The timing-wheel pop path and the fabric burst drain are pinned by
	// name: Run/AdvanceTo must drag the wheel internals into the hot set, and
	// the outQueue roots must resolve against the real receiver. The lb
	// selectors ride the lb.Selector interface fan-out from swInst.receive:
	// every concrete Select in the module is per-packet work on the forward
	// path, so the hot-alloc scan must reach the spraying arms — if the
	// congestion-aware or flowlet Select falls out, its //lint:alloc-ok
	// reviews guard nothing. If any of these vanish the corresponding root
	// has rotted into vacuity.
	for _, fn := range []string{
		"/internal/sim.wheel).pop",
		"/internal/sim.wheel).refill",
		"/internal/sim.wheel).cascade",
		"/internal/fabric.outQueue).txDone",
		"/internal/fabric.outQueue).deliverBurst",
		"/internal/fabric.outQueue).pipePush",
		"/internal/lb.CongestionAware).Select",
		"/internal/lb.Flowlet).Select",
	} {
		found := false
		for _, h := range hot {
			if strings.Contains(h, fn) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("hot set lost %s — wheel/burst entry points are no longer pinned", fn)
		}
	}
}

// TestReachCoversFeedbackPaths pins the map-order/taint reach set over the
// ACK-feedback plane: the sender's ACK/NACK hooks drive retransmission and
// RTO re-arming (event-queue sinks), and the per-path DCQCN cut re-arms the
// α-decay timer. All three must sit in the reverse closure of the sinks —
// otherwise a map range added to the feedback path would feed Go's
// randomized iteration order into the event queue without a finding, and the
// map-order analyzer would be vacuous over the entropy-cache machinery.
func TestReachCoversFeedbackPaths(t *testing.T) {
	prog, err := realProg()
	if err != nil {
		t.Fatal(err)
	}
	reach := prog.Reach()
	for _, fn := range []string{
		"/internal/rnic.SenderQP).onAck",
		"/internal/rnic.SenderQP).onNack",
		"/internal/cc.DCQCN).OnCNPPath",
	} {
		found := false
		for name, ok := range reach {
			if ok && strings.Contains(name, fn) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("reach set lost %s — the map-order analyzer no longer covers the feedback path", fn)
		}
	}
}

// TestPurityScopeCoversArms proves the purity analyzer is non-vacuous over
// the LB arms and the congestion-control state: internal/lb and internal/cc
// are inside the purity scope, and the loaded module actually declares
// functions there — so a goroutine, channel, or mutex smuggled into REPS,
// CongestionAware, or PathAlpha is a lint finding, not a silent
// shard-determinism hazard.
func TestPurityScopeCoversArms(t *testing.T) {
	prog, err := realProg()
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"internal/lb", "internal/cc"} {
		if !inScope(Purity, rel) {
			t.Errorf("purity scope lost %s", rel)
		}
		n := 0
		for _, name := range prog.Graph.FuncNames {
			if strings.Contains(name, "/"+rel+".") {
				n++
			}
		}
		if n == 0 {
			t.Errorf("no %s functions loaded — the purity scope entry is vacuous", rel)
		}
	}
}

// TestPurityAllowlistMatchesRunner proves the purity allowlist is not
// vacuous: the one sanctioned concurrency site, exp.Runner.Run, must actually
// be matched by purityAllowed against the real type object — a receiver-shape
// or package-move drift would otherwise re-flag the worker pool (or worse,
// allowlist nothing while the escape comments claim otherwise).
func TestPurityAllowlistMatchesRunner(t *testing.T) {
	prog, err := realProg()
	if err != nil {
		t.Fatal(err)
	}
	var run *types.Func
	for _, p := range prog.Pkgs {
		if p.Path != prog.ModPath+"/internal/exp" {
			continue
		}
		obj := p.Pkg.Scope().Lookup("Runner")
		if obj == nil {
			t.Fatal("internal/exp no longer declares Runner")
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			t.Fatalf("exp.Runner is %T, not a named type", obj.Type())
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == "Run" {
				run = m
			}
		}
	}
	if run == nil {
		t.Fatal("exp.Runner.Run not found — the purity allowlist has nothing to allow")
	}
	if !purityAllowed(run, prog.ModPath) {
		t.Errorf("purityAllowed rejects the real %s — the sanctioned worker pool would be flagged", run.FullName())
	}
}

// TestPurityAllowlistMatchesShardGroup is the same vacuity guard for the
// second sanctioned concurrency site, sim.ShardGroup.Run (the space-parallel
// barrier coordinator). If the symbol is renamed or moved, the allowlist
// entry goes dead and this test fails before the stale escape comment can
// mislead anyone.
func TestPurityAllowlistMatchesShardGroup(t *testing.T) {
	prog, err := realProg()
	if err != nil {
		t.Fatal(err)
	}
	var run *types.Func
	for _, p := range prog.Pkgs {
		if p.Path != prog.ModPath+"/internal/sim" {
			continue
		}
		obj := p.Pkg.Scope().Lookup("ShardGroup")
		if obj == nil {
			t.Fatal("internal/sim no longer declares ShardGroup")
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			t.Fatalf("sim.ShardGroup is %T, not a named type", obj.Type())
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == "Run" {
				run = m
			}
		}
	}
	if run == nil {
		t.Fatal("sim.ShardGroup.Run not found — the purity allowlist has nothing to allow")
	}
	if !purityAllowed(run, prog.ModPath) {
		t.Errorf("purityAllowed rejects the real %s — the sanctioned barrier coordinator would be flagged", run.FullName())
	}
}

// TestSuiteWallBudget keeps the full-suite wall time inside the CI budget:
// the suite runs on every verify, so a quadratic regression in the loader or
// the taint solver must fail loudly here rather than slowly rot the edit
// cycle. The 30 s ceiling is ~7x the current cost on the CI runner class.
func TestSuiteWallBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-budget guard is not meaningful under -short")
	}
	modRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := Run(modRoot, []string{"internal/...", "cmd/..."}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("full lint suite took %v, over the 30s budget", elapsed)
	}
}
