package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader parses and type-checks module packages without any tooling beyond
// the standard library: module-internal imports are resolved by mapping the
// import path onto the module directory tree, everything else (the standard
// library) is type-checked from $GOROOT/src by the go/importer source
// importer. Loaded packages are memoized, so a whole-tree run type-checks
// each package once.
type Loader struct {
	ModRoot string
	ModPath string
	Fset    *token.FileSet

	pkgs    map[string]*Package
	order   []string // load order, for deterministic Packages()
	std     types.Importer
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module directory containing
// go.mod.
func NewLoader(modRoot string) (*Loader, error) {
	modPath, err := modulePath(modRoot)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModRoot: modRoot,
		ModPath: modPath,
		Fset:    fset,
		pkgs:    make(map[string]*Package),
		std:     importer.ForCompiler(fset, "source", nil),
		loading: make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from go.mod.
func modulePath(modRoot string) (string, error) {
	data, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", modRoot)
}

// Import implements types.Importer: module-internal paths load from the
// module tree, everything else falls back to the standard-library source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		p, err := l.LoadDir(filepath.Join(l.ModRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// importPath maps a directory inside the module onto its import path.
func (l *Loader) importPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	root, err := filepath.Abs(l.ModRoot)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir parses and type-checks the package in dir (non-test files only).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.importPath(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Pkg: tpkg, Info: info}
	l.pkgs[path] = p
	l.order = append(l.order, path)
	return p, nil
}

// Packages returns every module package loaded so far (targets plus their
// module-internal dependencies), in deterministic load order.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.order))
	for _, path := range l.order {
		out = append(out, l.pkgs[path])
	}
	return out
}
