package lint

import (
	"fmt"
	"sort"
	"strings"
)

// Escapes audits the suite's escape hatches. Every `//lint:*` directive —
// `//lint:ordered`, `//lint:hotpath-ok`, `//lint:purity-ok`,
// `//lint:alloc-ok`, `//lint:taint-ok` — suppresses a real analyzer, so each
// must carry a justification after the directive recording what was reviewed
// and why the suppression is sound. A bare escape is itself a finding, and an
// unknown directive (a typo silently suppressing nothing) is too.
// `themis-lint -escapes` lists every active escape with its location.
var Escapes = &Analyzer{
	Name: "escapes",
	Doc:  "require a justification on every //lint:* escape directive",
	Run:  runEscapes,
}

// knownDirectives are the escape markers honored by the suite.
var knownDirectives = map[string]bool{
	"ordered":    true,
	"hotpath-ok": true,
	"purity-ok":  true,
	"alloc-ok":   true,
	"taint-ok":   true,
}

func runEscapes(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pass.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				directive, just, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				if !knownDirectives[directive] {
					diags = append(diags, Diagnostic{
						Pos:     pass.Fset.Position(c.Pos()),
						Rule:    "escapes",
						Message: fmt.Sprintf("unknown lint directive //lint:%s suppresses nothing — known directives: %s", directive, knownDirectiveList()),
					})
					continue
				}
				if just == "" {
					diags = append(diags, Diagnostic{
						Pos:     pass.Fset.Position(c.Pos()),
						Rule:    "escapes",
						Message: fmt.Sprintf("bare //lint:%s escape without justification — state what was reviewed and why the suppression is sound", directive),
					})
				}
			}
		}
	}
	return diags
}

// parseDirective recognizes `//lint:<directive> <justification>` comments.
// The directive must follow `//` immediately (prose mentioning a directive
// after a space is not a directive).
func parseDirective(text string) (directive, justification string, ok bool) {
	rest, found := strings.CutPrefix(text, "//lint:")
	if !found {
		return "", "", false
	}
	directive = rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		directive = rest[:i]
		justification = strings.TrimSpace(rest[i+1:])
	}
	// Strip decorative separators so `//lint:ordered — reason` and
	// `//lint:ordered: reason` both count the reason, but `//lint:ordered —`
	// does not.
	justification = strings.TrimLeft(justification, "—–-: \t")
	justification = strings.TrimSpace(justification)
	return directive, justification, directive != ""
}

func knownDirectiveList() string {
	names := make([]string, 0, len(knownDirectives))
	for n := range knownDirectives {
		names = append(names, n)
	}
	sort.Strings(names)
	return "lint:" + strings.Join(names, ", lint:")
}

// ActiveEscape is one escape directive with its resolved location, for the
// `themis-lint -escapes` inventory.
type ActiveEscape struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Directive     string `json:"directive"`
	Justification string `json:"justification"`
}

// ListEscapes loads the packages matched by patterns and returns every
// active escape directive, in file/line order.
func ListEscapes(modRoot string, patterns []string) ([]ActiveEscape, error) {
	ldr, err := NewLoader(modRoot)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(modRoot, patterns)
	if err != nil {
		return nil, err
	}
	var out []ActiveEscape
	for _, dir := range dirs {
		p, err := ldr.LoadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: loading %s: %w", dir, err)
		}
		rel, ok := relPkgPath(ldr.ModPath, p.Path)
		if !ok || rel == "internal/lint" || strings.HasPrefix(rel, "internal/lint/") {
			continue
		}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					directive, just, ok := parseDirective(c.Text)
					if !ok || !knownDirectives[directive] {
						continue
					}
					pos := ldr.Fset.Position(c.Pos())
					out = append(out, ActiveEscape{File: pos.Filename, Line: pos.Line, Directive: directive, Justification: just})
				}
			}
		}
	}
	return out, nil
}
