package lint

import (
	"go/ast"
	"go/types"
)

// hotEntryNames are the fabric.TorPipeline methods — the per-packet and
// per-event entry points of the middleware. Work done there is paid on every
// data packet, NACK, or link event the switch sees.
var hotEntryNames = map[string]bool{
	"SelectUplink":      true,
	"OnDeliverToHost":   true,
	"FilterHostControl": true,
	"LinkStateChanged":  true,
}

// Hotpath flags full-map iteration in the middleware's packet hot path: any
// function reachable (through same-package call edges) from a
// fabric.TorPipeline method body. A map range there is O(registered flows)
// work per packet — the class of bug that turned OnDeliverToHost into a 92 µs
// call at 8k flows. Scoped to internal/core (see inScope). A loop that is
// deliberately O(n) — and not on the per-packet path, e.g. pull-based stats —
// may carry a `//lint:hotpath-ok` annotation on the `for` line or the line
// directly above it.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid map iteration reachable from fabric.TorPipeline hot-path methods",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) []Diagnostic {
	// Same-package call edges and bodies, keyed by types.Func.FullName.
	// Closures count toward their enclosing declaration, like in BuildReach:
	// a callback built on the hot path still runs per packet.
	edges := make(map[string][]string)
	bodies := make(map[string]*ast.FuncDecl)
	names := make(map[string]*types.Func)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			from := fn.FullName()
			bodies[from] = fd
			names[from] = fn
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass.Pkg.Info, call)
				if callee == nil || callee.Pkg() != pass.Pkg.Pkg {
					return true
				}
				edges[from] = append(edges[from], callee.FullName())
				return true
			})
		}
	}

	// Forward BFS from the pipeline methods.
	hot := make(map[string]bool)
	var queue []string
	for name, fn := range names {
		if fd := bodies[name]; fd.Recv != nil && hotEntryNames[fn.Name()] {
			hot[name] = true
			queue = append(queue, name)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, callee := range edges[cur] {
			if !hot[callee] {
				hot[callee] = true
				queue = append(queue, callee)
			}
		}
	}

	var diags []Diagnostic
	for _, f := range pass.Pkg.Files {
		allowed := annotatedLines(pass.Fset, f, "lint:hotpath-ok")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok || !hot[fn.FullName()] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.Pkg.Info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				line := pass.Fset.Position(rs.For).Line
				if allowed[line] || allowed[line-1] {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:  pass.Fset.Position(rs.For),
					Rule: "hotpath",
					Message: "map iteration in " + fn.Name() +
						", which is reachable from a TorPipeline hot-path method; this is O(flows) per packet — keep incremental state instead or annotate //lint:hotpath-ok",
				})
				return true
			})
		}
	}
	return diags
}
