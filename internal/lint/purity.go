package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Purity bans concurrency inside the deterministic core: `go` statements,
// channel operations (send, receive, close, make(chan), range-over-channel),
// `select`, and any use of sync / sync/atomic in the purityScope subtrees
// (sim, fabric, rnic, core, route, lb, cc, exp). The simulator's determinism
// contract — and the planned sharded space-parallel engine, which wants a
// provably goroutine-free single-shard core — rests on the event loop being
// the only scheduler. The one sanctioned exception is the exp.Runner seed-
// sweep worker pool, allowlisted by name; anything else needs a justified
// `//lint:purity-ok` escape.
var Purity = &Analyzer{
	Name: "purity",
	Doc:  "forbid goroutines, channels, select and sync primitives in the deterministic core",
	Run:  runPurity,
}

// purityAllowed returns whether the function may use concurrency primitives.
// Exactly two parallel constructs are sanctioned, both allowlisted by exact
// symbol name:
//
//   - exp.Runner.Run — the seed-sweep worker pool: trials never share
//     mutable state and the output slice is index-addressed, so the report
//     stays independent of scheduling.
//   - sim.ShardGroup.Run — the space-parallel shard coordinator: every
//     goroutine, channel and barrier lives lexically inside this one method
//     (the analyzer skips whole function declarations, so that lexical
//     containment is load-bearing), shards own disjoint state during an
//     epoch, and cross-shard mail drains in a deterministic sorted order.
func purityAllowed(fn *types.Func, modPath string) bool {
	if fn == nil {
		return false
	}
	name := fn.FullName()
	return name == "("+modPath+"/internal/exp.Runner).Run" ||
		name == "(*"+modPath+"/internal/exp.Runner).Run" ||
		name == "("+modPath+"/internal/sim.ShardGroup).Run" ||
		name == "(*"+modPath+"/internal/sim.ShardGroup).Run"
}

func runPurity(pass *Pass) []Diagnostic {
	modPath := pass.Pkg.Pkg.Path() // fallback when no Program is attached
	if pass.Prog != nil {
		modPath = pass.Prog.ModPath
	}
	var diags []Diagnostic
	for _, f := range pass.Pkg.Files {
		allowed := annotatedLines(pass.Fset, f, "lint:purity-ok")
		report := func(pos token.Pos, what string) {
			line := pass.Fset.Position(pos).Line
			if allowed[line] || allowed[line-1] {
				return
			}
			diags = append(diags, Diagnostic{
				Pos:  pass.Fset.Position(pos),
				Rule: "purity",
				Message: what + " in the deterministic core; the event loop is the only scheduler" +
					" (sharding assumes a goroutine-free single-shard engine) — justify with //lint:purity-ok if truly unavoidable",
			})
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func); purityAllowed(fn, modPath) {
					continue
				}
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.GoStmt:
					report(e.Pos(), "go statement")
				case *ast.SendStmt:
					report(e.Arrow, "channel send")
				case *ast.UnaryExpr:
					if e.Op == token.ARROW {
						report(e.OpPos, "channel receive")
					}
				case *ast.SelectStmt:
					report(e.Select, "select statement")
				case *ast.RangeStmt:
					if tv, ok := pass.Pkg.Info.Types[e.X]; ok {
						if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
							report(e.For, "range over channel")
						}
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
						if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok {
							if b.Name() == "close" {
								report(e.Pos(), "close on channel")
							}
							if b.Name() == "make" && len(e.Args) > 0 {
								if tv, ok := pass.Pkg.Info.Types[e.Args[0]]; ok {
									if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
										report(e.Pos(), "make(chan)")
									}
								}
							}
						}
					}
				case *ast.SelectorExpr:
					if id, ok := e.X.(*ast.Ident); ok {
						if pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName); ok {
							switch pn.Imported().Path() {
							case "sync", "sync/atomic":
								report(e.Pos(), pn.Imported().Name()+"."+e.Sel.Name)
							}
						}
					}
				}
				return true
			})
		}
	}
	return diags
}
