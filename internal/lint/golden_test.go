package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts `// want "..."` (or `/* want "..." */`, for lines whose
// line comment is itself under test) expectations from fixture lines. The
// quoted text is a regexp matched against the diagnostic message.
var wantRe = regexp.MustCompile(`(?://|/\*) want "([^"]*)"`)

// expectation is one `// want` marker.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

func parseWants(t *testing.T, dir string) []expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, line, m[1], err)
				}
				wants = append(wants, expectation{file: path, line: line, re: re})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

// TestGolden runs the full analyzer suite over each fixture package and
// requires an exact match between the diagnostics produced and the `// want`
// markers: every marker must be satisfied by a diagnostic on its line, and
// every diagnostic must be claimed by a marker.
func TestGolden(t *testing.T) {
	modRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	families := []string{
		"wallclock", "maporder", "psncompare", "timeunits", "hotpath",
		"ndtaint", "purity", "hotalloc", "escapes",
	}
	// One loader and one Program over every fixture package: the
	// interprocedural analyzers key their module-wide results by package, so
	// fixtures cannot contaminate each other, and sharing the stdlib
	// type-check keeps the suite fast.
	ldr, err := NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkgs := make(map[string]*Package, len(families))
	for _, family := range families {
		dir := filepath.Join(modRoot, "internal", "lint", "testdata", "src", family)
		pkg, err := ldr.LoadDir(dir)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", family, err)
		}
		pkgs[family] = pkg
	}
	prog := NewProgram(ldr.Fset, ldr.Packages(), ldr.ModPath)
	reach := prog.Reach()
	for _, family := range families {
		t.Run(family, func(t *testing.T) {
			dir := filepath.Join(modRoot, "internal", "lint", "testdata", "src", family)
			pass := &Pass{Fset: ldr.Fset, Pkg: pkgs[family], Reach: reach, Prog: prog}
			var got []Diagnostic
			for _, a := range Analyzers {
				got = append(got, a.Run(pass)...)
			}

			wants := parseWants(t, dir)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no // want markers", family)
			}
			claimed := make([]bool, len(got))
			for _, w := range wants {
				matched := false
				for i, d := range got {
					if claimed[i] || d.Pos.Filename != w.file || d.Pos.Line != w.line {
						continue
					}
					if w.re.MatchString(d.Message) {
						claimed[i] = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
				}
			}
			for i, d := range got {
				if !claimed[i] {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
		})
	}
}

// TestRunSkipsFixtures ensures the top-level driver never reports the seeded
// violations in the fixture tree: testdata is excluded from pattern
// expansion, and the lint package itself is out of every analyzer's scope.
func TestRunSkipsFixtures(t *testing.T) {
	modRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(modRoot, []string{"internal/lint/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic from lint's own tree: %s", d)
	}
}

// TestRunCoversRoutePlane pins the lint suite's coverage of the routing
// control plane. internal/route must lint clean, and — non-vacuously — its
// update-propagation path must be inside the map-order analyzer's reach set:
// Plane.send schedules engine events, so a `range` over a map anywhere on
// that path without a `//lint:ordered` review feeds Go's randomized
// iteration order straight into the event queue and breaks the delay-0
// oracle/distributed byte-identity guarantee.
func TestRunCoversRoutePlane(t *testing.T) {
	modRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(modRoot, []string{"internal/route"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("internal/route does not lint clean: %s", d)
	}

	ldr, err := NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ldr.LoadDir(filepath.Join(modRoot, "internal", "route")); err != nil {
		t.Fatal(err)
	}
	reach := BuildReach(ldr.Packages(), ldr.ModPath)
	routeReached := false
	for fn, ok := range reach {
		if ok && strings.Contains(fn, "/internal/route.") {
			routeReached = true
			break
		}
	}
	if !routeReached {
		t.Fatal("no internal/route function reaches an event-queue sink — the map-order analyzer is vacuous over the routing plane")
	}
}

// TestRunCleanTree is the self-test that gates make verify from inside the
// test suite as well: the repaired repository must lint clean.
func TestRunCleanTree(t *testing.T) {
	modRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(modRoot, []string{"internal/...", "cmd/..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repository does not lint clean: %s", d)
	}
	if testing.Verbose() {
		fmt.Printf("lint: clean over internal/... and cmd/...\n")
	}
}
