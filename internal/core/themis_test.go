package core

import (
	"testing"

	"themis/internal/lb"
	"themis/internal/packet"
	"themis/internal/sim"
	"themis/internal/topo"
)

func leafSpine(t testing.TB, leaves, spines, hosts int) *topo.Topology {
	t.Helper()
	tp, err := topo.NewLeafSpine(topo.LeafSpineConfig{
		Leaves: leaves, Spines: spines, HostsPerLeaf: hosts,
		HostLink:   topo.LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
		FabricLink: topo.LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func dataPkt(qp packet.QPID, src, dst packet.NodeID, psn packet.PSN) *packet.Packet {
	return &packet.Packet{Kind: packet.Data, Src: src, Dst: dst, QP: qp, SPort: 1000, DPort: 4791, PSN: psn, Payload: 1000}
}

func nackPkt(qp packet.QPID, src, dst packet.NodeID, epsn packet.PSN) *packet.Packet {
	return &packet.Packet{Kind: packet.Nack, Src: src, Dst: dst, QP: qp, SPort: 1000, DPort: 4791, PSN: epsn}
}

// setup registers QP 1 from host 0 (leaf 0) to host dst on a 2x2x2
// leaf-spine and returns the source-side and destination-side instances.
func setup(t *testing.T, cfg Config) (*Themis, *Themis, *topo.Topology) {
	t.Helper()
	tp := leafSpine(t, 2, 2, 2)
	src, dst := New(tp, 0, cfg), New(tp, 1, cfg)
	if err := src.RegisterFlow(1, 0, 2, 1000); err != nil {
		t.Fatal(err)
	}
	if err := dst.RegisterFlow(1, 0, 2, 1000); err != nil {
		t.Fatal(err)
	}
	return src, dst, tp
}

func TestRegisterFlowRoles(t *testing.T) {
	src, dst, _ := setup(t, Config{})
	if len(src.srcFlows) != 1 || len(src.dstFlows) != 0 {
		t.Fatal("source ToR roles wrong")
	}
	if len(dst.srcFlows) != 0 || len(dst.dstFlows) != 1 {
		t.Fatal("destination ToR roles wrong")
	}
}

func TestRegisterFlowSameRackIgnored(t *testing.T) {
	tp := leafSpine(t, 2, 2, 2)
	th := New(tp, 0, Config{})
	if err := th.RegisterFlow(1, 0, 1, 1000); err != nil {
		t.Fatal(err)
	}
	if len(th.srcFlows)+len(th.dstFlows) != 0 {
		t.Fatal("same-rack flow registered")
	}
}

func TestRegisterFlowUnrelatedToRIgnored(t *testing.T) {
	tp := leafSpine(t, 3, 2, 2)
	th := New(tp, 2, Config{}) // neither src nor dst ToR
	if err := th.RegisterFlow(1, 0, 2, 1000); err != nil {
		t.Fatal(err)
	}
	if len(th.srcFlows)+len(th.dstFlows) != 0 {
		t.Fatal("unrelated ToR registered flow")
	}
}

func TestDirectSprayEq1(t *testing.T) {
	src, _, tp := setup(t, Config{})
	cands := tp.CandidatePorts(0, 2) // two uplinks
	key := packet.FlowKey{Src: 0, Dst: 2, SPort: 1000, DPort: 4791}
	hash := lb.Hash(key) ^ lb.SwitchSeed(0)
	for psn := packet.PSN(0); psn < 16; psn++ {
		p := dataPkt(1, 0, 2, psn)
		port, ok := src.SelectUplink(p, cands)
		if !ok {
			t.Fatal("Themis-S did not steer a registered flow")
		}
		want := cands[lb.SprayIndex(psn, hash, 2)]
		if port != want {
			t.Fatalf("psn %d: port %d want %d", psn, port, want)
		}
	}
	// Consecutive PSNs must alternate between the two uplinks.
	p0, _ := src.SelectUplink(dataPkt(1, 0, 2, 0), cands)
	p1, _ := src.SelectUplink(dataPkt(1, 0, 2, 1), cands)
	if p0 == p1 {
		t.Fatal("consecutive PSNs took the same path")
	}
	if src.Stats().Sprayed == 0 {
		t.Fatal("spray counter idle")
	}
}

func TestUnregisteredFlowNotSteered(t *testing.T) {
	src, _, tp := setup(t, Config{})
	cands := tp.CandidatePorts(0, 2)
	if _, ok := src.SelectUplink(dataPkt(99, 0, 2, 0), cands); ok {
		t.Fatal("unregistered QP was steered")
	}
}

func TestDirectSprayRequiresMatchingUplinks(t *testing.T) {
	// 4 spines but host pair with... leaf-spine always has N == uplinks, so
	// force the mismatch with a fat-tree cross-pod flow: N = (K/2)^2 = 4
	// but the edge switch has only K/2 = 2 uplinks.
	tp, err := topo.NewFatTree(topo.FatTreeConfig{
		K:          4,
		HostLink:   topo.LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
		FabricLink: topo.LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	th := New(tp, tp.ToROf(0), Config{Mode: DirectSpray})
	if err := th.RegisterFlow(1, 0, 15, 1000); err == nil {
		t.Fatal("direct spray on a 3-tier fabric must be rejected")
	}
}

// Feed the destination ToR the Fig. 4b scenario and check blocking.
func TestNackValidationFig4b(t *testing.T) {
	_, dst, _ := setup(t, Config{}) // N = 2
	// Packets leave the ToR towards the NIC in order 0,1,3,2.
	for _, psn := range []packet.PSN{0, 1, 3, 2} {
		dst.OnDeliverToHost(dataPkt(1, 0, 2, psn))
	}
	// NACK(2): tPSN=3, 3 mod 2 != 2 mod 2 -> invalid -> blocked.
	if dst.FilterHostControl(nackPkt(1, 2, 0, 2)) {
		t.Fatal("invalid NACK forwarded")
	}
	st := dst.Stats()
	if st.NacksBlocked != 1 || st.NacksForwarded != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Later, 6 leaves towards the NIC (4 and 5 are lost), NACK(4) arrives:
	// tPSN=6, 6 mod 2 == 4 mod 2 -> valid -> forwarded.
	dst.OnDeliverToHost(dataPkt(1, 0, 2, 6))
	if !dst.FilterHostControl(nackPkt(1, 2, 0, 4)) {
		t.Fatal("valid NACK blocked")
	}
	st = dst.Stats()
	if st.NacksForwarded != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNackScanMissForwards(t *testing.T) {
	_, dst, _ := setup(t, Config{})
	// Ring is empty: conservative forward.
	if !dst.FilterHostControl(nackPkt(1, 2, 0, 0)) {
		t.Fatal("scan miss should forward")
	}
	if dst.Stats().ScanMisses != 1 {
		t.Fatal("scan miss not counted")
	}
}

func TestAcksAlwaysPass(t *testing.T) {
	_, dst, _ := setup(t, Config{})
	ack := &packet.Packet{Kind: packet.Ack, Src: 2, Dst: 0, QP: 1, PSN: 5}
	if !dst.FilterHostControl(ack) {
		t.Fatal("ACK filtered")
	}
	if dst.Stats().NacksSeen != 0 {
		t.Fatal("ACK counted as NACK")
	}
}

func TestNackForUnregisteredQPPasses(t *testing.T) {
	_, dst, _ := setup(t, Config{})
	if !dst.FilterHostControl(nackPkt(42, 2, 0, 0)) {
		t.Fatal("NACK for unknown QP blocked")
	}
}

func TestCompensationGeneratedFig4c(t *testing.T) {
	_, dst, _ := setup(t, Config{}) // N = 2
	// 0,1,3 leave towards the NIC; 2 is genuinely lost.
	for _, psn := range []packet.PSN{0, 1, 3} {
		dst.OnDeliverToHost(dataPkt(1, 0, 2, psn))
	}
	// NACK(2): tPSN=3 -> invalid -> blocked; BePSN=2, Valid=true.
	if dst.FilterHostControl(nackPkt(1, 2, 0, 2)) {
		t.Fatal("NACK should have been blocked")
	}
	// PSN 4 arrives: 4 mod 2 == 2 mod 2 and 4 > 2 -> the packet with
	// BePSN=2 is confirmed lost -> compensation NACK(2).
	out := dst.OnDeliverToHost(dataPkt(1, 0, 2, 4))
	if len(out) != 1 {
		t.Fatalf("compensations = %d", len(out))
	}
	n := out[0]
	if n.Kind != packet.Nack || n.PSN != 2 || n.Src != 2 || n.Dst != 0 || n.QP != 1 {
		t.Fatalf("compensation NACK = %+v", n)
	}
	// Valid flipped to false: no second compensation for the same BePSN.
	out = dst.OnDeliverToHost(dataPkt(1, 0, 2, 6))
	if len(out) != 0 {
		t.Fatal("duplicate compensation")
	}
	if dst.Stats().Compensations != 1 {
		t.Fatalf("stats = %+v", dst.Stats())
	}
}

func TestCompensationCancelledWhenBePSNArrives(t *testing.T) {
	_, dst, _ := setup(t, Config{})
	for _, psn := range []packet.PSN{0, 1, 3} {
		dst.OnDeliverToHost(dataPkt(1, 0, 2, psn))
	}
	if dst.FilterHostControl(nackPkt(1, 2, 0, 2)) {
		t.Fatal("NACK should have been blocked")
	}
	// The delayed packet 2 finally arrives: no loss after all.
	if out := dst.OnDeliverToHost(dataPkt(1, 0, 2, 2)); len(out) != 0 {
		t.Fatal("compensation for a packet that arrived")
	}
	// A later same-path packet must not compensate either.
	if out := dst.OnDeliverToHost(dataPkt(1, 0, 2, 4)); len(out) != 0 {
		t.Fatal("compensation after cancel")
	}
	if dst.Stats().CompensationCancelled != 1 {
		t.Fatalf("stats = %+v", dst.Stats())
	}
}

func TestDisableBlockingAblation(t *testing.T) {
	_, dst, _ := setup(t, Config{DisableBlocking: true})
	for _, psn := range []packet.PSN{0, 1, 3, 2} {
		dst.OnDeliverToHost(dataPkt(1, 0, 2, psn))
	}
	if !dst.FilterHostControl(nackPkt(1, 2, 0, 2)) {
		t.Fatal("blocking disabled but NACK blocked")
	}
}

func TestDisableCompensationAblation(t *testing.T) {
	_, dst, _ := setup(t, Config{DisableCompensation: true})
	for _, psn := range []packet.PSN{0, 1, 3} {
		dst.OnDeliverToHost(dataPkt(1, 0, 2, psn))
	}
	if dst.FilterHostControl(nackPkt(1, 2, 0, 2)) {
		t.Fatal("NACK should still be blocked")
	}
	if out := dst.OnDeliverToHost(dataPkt(1, 0, 2, 4)); len(out) != 0 {
		t.Fatal("compensation generated despite ablation")
	}
}

func TestFailureFallbackDisablesThemis(t *testing.T) {
	src, _, tp := setup(t, Config{FallbackOnFailure: true})
	cands := tp.CandidatePorts(0, 2)
	src.LinkStateChanged(2, false)
	if !src.Disabled() {
		t.Fatal("not disabled on link failure")
	}
	if _, ok := src.SelectUplink(dataPkt(1, 0, 2, 0), cands); ok {
		t.Fatal("steering while disabled")
	}
	if src.Stats().Bypassed == 0 {
		t.Fatal("bypass not counted")
	}
	src.LinkStateChanged(2, true)
	if src.Disabled() {
		t.Fatal("not re-enabled on recovery")
	}
	if _, ok := src.SelectUplink(dataPkt(1, 0, 2, 0), cands); !ok {
		t.Fatal("steering not restored")
	}
}

func TestSetDisabledBypassesFiltering(t *testing.T) {
	_, dst, _ := setup(t, Config{})
	for _, psn := range []packet.PSN{0, 1, 3, 2} {
		dst.OnDeliverToHost(dataPkt(1, 0, 2, psn))
	}
	dst.SetDisabled(true)
	if !dst.FilterHostControl(nackPkt(1, 2, 0, 2)) {
		t.Fatal("disabled Themis still blocked a NACK")
	}
}

func TestRingCapacityFromBDP(t *testing.T) {
	_, dst, _ := setup(t, Config{})
	fs := dst.dstFlows[1]
	// 100 Gbps, 2 us RTT -> BDP = 25000 B -> /1500 * 1.5 = 25 entries.
	if fs.ring.Cap() != 25 {
		t.Fatalf("ring capacity = %d, want 25", fs.ring.Cap())
	}
}

// Validation must hold for every N and any OOO pattern: a NACK is blocked
// iff its identified tPSN is not congruent to ePSN mod N.
func TestValidationCongruence(t *testing.T) {
	for _, spines := range []int{2, 4, 8} {
		tp := leafSpine(t, 2, spines, 2)
		dst := New(tp, 1, Config{})
		hostDst := packet.NodeID(2)
		if err := dst.RegisterFlow(1, 0, hostDst, 1000); err != nil {
			t.Fatal(err)
		}
		// Deliver psns 0..spines*3 skipping one per stride.
		for psn := packet.PSN(1); psn < packet.PSN(spines*3); psn++ {
			dst.OnDeliverToHost(dataPkt(1, 0, hostDst, psn))
		}
		// NACK for ePSN 0: tPSN = 1; valid iff 1 mod N == 0 (never for N>1).
		got := dst.FilterHostControl(nackPkt(1, hostDst, 0, 0))
		if got {
			t.Fatalf("N=%d: NACK(0) with tPSN=1 must be invalid", spines)
		}
	}
}

func TestSprayModeString(t *testing.T) {
	if DirectSpray.String() != "direct" || PathMapSpray.String() != "pathmap" {
		t.Fatal("mode names")
	}
}

func TestPathSubsetSpraysOnlyKUplinks(t *testing.T) {
	tp := leafSpine(t, 2, 8, 2) // N = 8
	src := New(tp, 0, Config{PathSubset: 2})
	if err := src.RegisterFlow(1, 0, 2, 1000); err != nil {
		t.Fatal(err)
	}
	cands := tp.CandidatePorts(0, 2)
	used := map[int]bool{}
	for psn := packet.PSN(0); psn < 64; psn++ {
		port, ok := src.SelectUplink(dataPkt(1, 0, 2, psn), cands)
		if !ok {
			t.Fatal("not steered")
		}
		used[port] = true
	}
	if len(used) != 2 {
		t.Fatalf("subset of 2 used %d uplinks", len(used))
	}
}

func TestPathSubsetFlowsCoverDifferentPaths(t *testing.T) {
	tp := leafSpine(t, 2, 8, 2)
	src := New(tp, 0, Config{PathSubset: 2})
	cands := tp.CandidatePorts(0, 2)
	used := map[int]bool{}
	for qp := packet.QPID(1); qp <= 32; qp++ {
		sport := uint16(1000 + qp)
		if err := src.RegisterFlow(qp, 0, 2, sport); err != nil {
			t.Fatal(err)
		}
		p := dataPkt(qp, 0, 2, 0)
		p.SPort = sport
		port, _ := src.SelectUplink(p, cands)
		used[port] = true
	}
	// With 32 flows and per-flow bases, (nearly) all 8 uplinks see traffic.
	if len(used) < 6 {
		t.Fatalf("flow bases cover only %d/8 uplinks", len(used))
	}
}

func TestPathSubsetValidationUsesSubsetModulus(t *testing.T) {
	tp := leafSpine(t, 2, 8, 2)
	dst := New(tp, 1, Config{PathSubset: 2}) // k = 2
	if err := dst.RegisterFlow(1, 0, 2, 1000); err != nil {
		t.Fatal(err)
	}
	// Departures 0,1,3 (2 lost); NACK(2) triggered by 3: 3-2=1, 1 mod 2 != 0
	// -> invalid -> blocked (with k=8 this would also be invalid; use a
	// same-parity case to discriminate: NACK(1) triggered by 3: delta 2,
	// 2 mod 2 == 0 -> valid under k=2 even though 2 mod 8 != 0).
	for _, psn := range []packet.PSN{0, 3} {
		dst.OnDeliverToHost(dataPkt(1, 0, 2, psn))
	}
	if !dst.FilterHostControl(nackPkt(1, 2, 0, 1)) {
		t.Fatal("NACK(1) with tPSN=3 must be VALID under subset k=2")
	}
}

func TestRebootClearsStateAndForwardsNacks(t *testing.T) {
	src, dst, tp := setup(t, Config{})
	cands := tp.CandidatePorts(0, 2)
	// Populate Themis-D state, then block an invalid NACK to arm compensation.
	for _, psn := range []packet.PSN{0, 1, 3} {
		dst.OnDeliverToHost(dataPkt(1, 0, 2, psn))
	}
	if dst.FilterHostControl(nackPkt(1, 2, 0, 2)) {
		t.Fatal("NACK should have been blocked")
	}
	if dst.PendingCompensations() != 1 {
		t.Fatal("compensation not armed")
	}
	dst.Reboot()
	if s, d := dst.FlowCounts(); s != 0 || d != 0 {
		t.Fatalf("flow counts after reboot = (%d,%d)", s, d)
	}
	if dst.Stats().Reboots != 1 {
		t.Fatal("reboot not counted")
	}
	if dst.PendingCompensations() != 0 {
		t.Fatal("compensation survived reboot")
	}
	// Post-reboot degradation: the same (now valid-or-not) NACK is unknown-QP
	// and must be forwarded unmodified, never blocked.
	if !dst.FilterHostControl(nackPkt(1, 2, 0, 2)) {
		t.Fatal("rebooted ToR blocked a NACK")
	}
	// A rebooted source ToR without Relearn defers to ECMP.
	src.Reboot()
	if _, ok := src.SelectUplink(dataPkt(1, 0, 2, 0), cands); ok {
		t.Fatal("rebooted ToR without Relearn still steered")
	}
}

func TestRelearnRebuildsSourceState(t *testing.T) {
	src, _, tp := setup(t, Config{Relearn: true})
	cands := tp.CandidatePorts(0, 2)
	want, _ := src.SelectUplink(dataPkt(1, 0, 2, 7), cands)
	src.Reboot()
	got, ok := src.SelectUplink(dataPkt(1, 0, 2, 7), cands)
	if !ok {
		t.Fatal("relearn did not rebuild Themis-S state")
	}
	if got != want {
		t.Fatalf("relearned spray differs: port %d want %d", got, want)
	}
	if src.Stats().Relearns != 1 {
		t.Fatalf("relearns = %d", src.Stats().Relearns)
	}
}

func TestRelearnRebuildsDestinationStateFromData(t *testing.T) {
	_, dst, _ := setup(t, Config{Relearn: true})
	for _, psn := range []packet.PSN{0, 1, 3, 2} {
		dst.OnDeliverToHost(dataPkt(1, 0, 2, psn))
	}
	dst.Reboot()
	// First data packet after the reboot re-registers the flow...
	dst.OnDeliverToHost(dataPkt(1, 0, 2, 4))
	if _, d := dst.FlowCounts(); d != 1 {
		t.Fatal("relearn did not rebuild Themis-D state")
	}
	// ...with a fresh ring: a NACK whose trigger departed pre-reboot has no
	// in-flight PSN after it in the rebuilt ring — a scan miss, forwarded
	// (conservative restart).
	if !dst.FilterHostControl(nackPkt(1, 2, 0, 5)) {
		t.Fatal("post-reboot NACK blocked despite empty ring history")
	}
	if dst.Stats().ScanMisses == 0 {
		t.Fatal("expected a scan miss on the rebuilt ring")
	}
}

func TestRelearnFromNackReversesDirection(t *testing.T) {
	_, dst, _ := setup(t, Config{Relearn: true})
	dst.Reboot()
	// A NACK travels receiver(2) -> sender(0); relearn must register the flow
	// in its data direction (0 -> 2) so this ToR resumes the Themis-D role.
	if !dst.FilterHostControl(nackPkt(1, 2, 0, 0)) {
		t.Fatal("first post-reboot NACK must be forwarded")
	}
	if _, d := dst.FlowCounts(); d != 1 {
		t.Fatal("NACK did not relearn the destination flow")
	}
	if dst.Stats().Relearns != 1 {
		t.Fatalf("relearns = %d", dst.Stats().Relearns)
	}
}

func TestRelearnDeclinedIsCachedNotRetried(t *testing.T) {
	tp := leafSpine(t, 2, 2, 2)
	th := New(tp, 0, Config{Relearn: true})
	cands := tp.CandidatePorts(0, 2)
	// Same-rack flow (hosts 0 and 1 both under ToR 0): relearn declines.
	p := dataPkt(7, 0, 1, 0)
	for i := 0; i < 3; i++ {
		if _, ok := th.SelectUplink(p, cands); ok {
			t.Fatal("same-rack flow steered")
		}
	}
	if th.Stats().Relearns != 0 {
		t.Fatal("declined relearn counted as success")
	}
	if _, cached := th.relearnIgnored[7]; !cached {
		t.Fatal("declined QP not cached")
	}
}

func TestRingStatsAndFlowCounts(t *testing.T) {
	src, dst, _ := setup(t, Config{})
	if s, d := src.FlowCounts(); s != 1 || d != 0 {
		t.Fatalf("src flow counts = (%d,%d)", s, d)
	}
	for psn := packet.PSN(0); psn < 10; psn++ {
		dst.OnDeliverToHost(dataPkt(1, 0, 2, psn))
	}
	entries, capacity, overflows := dst.RingStats()
	if entries != 10 || capacity != 25 || overflows != 0 {
		t.Fatalf("ring stats = (%d,%d,%d)", entries, capacity, overflows)
	}
	if entries > capacity {
		t.Fatal("ring leaked entries beyond capacity")
	}
}

func TestPathSubsetLargerThanNIgnored(t *testing.T) {
	tp := leafSpine(t, 2, 2, 2) // N = 2
	src := New(tp, 0, Config{PathSubset: 16})
	if err := src.RegisterFlow(1, 0, 2, 1000); err != nil {
		t.Fatal(err)
	}
	if got := src.srcFlows[1].nPaths; got != 2 {
		t.Fatalf("nPaths = %d, want full 2", got)
	}
}
