package core

import (
	"testing"

	"themis/internal/memmodel"
	"themis/internal/packet"
	"themis/internal/sim"
)

// fakeClock is a settable Config.Clock for lifecycle tests.
type fakeClock struct{ now sim.Time }

func (c *fakeClock) Now() sim.Time { return c.now }

// dstEntryBytes is the Table 1 footprint of one Themis-D entry on the test
// topology: 20 B flow-table entry + 25 ring slots (100 Gbps x 2 us last-hop
// BDP / 1500 B MTU x F=1.5).
const dstEntryBytes = memmodel.FlowTableEntryBytes + 25*memmodel.QueueEntryBytes

func TestEntryCostMatchesMemmodel(t *testing.T) {
	_, dst, _ := setup(t, Config{})
	if got := dst.TableBytes(); got != dstEntryBytes {
		t.Fatalf("dst entry charged %d bytes, want %d", got, dstEntryBytes)
	}
	src, _, _ := setup(t, Config{})
	if got := src.TableBytes(); got != memmodel.FlowTableEntryBytes {
		t.Fatalf("direct-mode src entry charged %d bytes, want %d", got, memmodel.FlowTableEntryBytes)
	}
}

func TestTableBudgetDerivation(t *testing.T) {
	p := memmodel.PaperDefaults()
	if got, want := TableBudget(p, 10), 10*p.PerQPBytes(); got != want {
		t.Fatalf("TableBudget = %d, want %d", got, want)
	}
}

func TestBudgetEvictsLRU(t *testing.T) {
	tp := leafSpine(t, 2, 2, 2)
	th := New(tp, 1, Config{TableBudgetBytes: 2 * dstEntryBytes})
	for qp := packet.QPID(1); qp <= 2; qp++ {
		if err := th.RegisterFlow(qp, 0, 2, 1000); err != nil {
			t.Fatal(err)
		}
	}
	if th.TableBytes() != 2*dstEntryBytes {
		t.Fatalf("table bytes %d, want %d", th.TableBytes(), 2*dstEntryBytes)
	}
	if err := th.RegisterFlow(3, 0, 2, 1000); err != nil {
		t.Fatal(err)
	}
	if th.TableBytes() > th.TableBudgetBytes() {
		t.Fatalf("occupancy %d exceeds budget %d", th.TableBytes(), th.TableBudgetBytes())
	}
	if _, ok := th.dstFlows[1]; ok {
		t.Fatal("LRU entry (QP 1) should have been evicted")
	}
	if _, ok := th.dstFlows[3]; !ok {
		t.Fatal("new flow not admitted")
	}
	if s := th.Stats(); s.Evictions != 1 || s.TableFull != 0 {
		t.Fatalf("stats = %+v, want 1 eviction, 0 table-full", s)
	}
}

func TestTouchProtectsActiveFlow(t *testing.T) {
	tp := leafSpine(t, 2, 2, 2)
	th := New(tp, 1, Config{TableBudgetBytes: 2 * dstEntryBytes})
	for qp := packet.QPID(1); qp <= 2; qp++ {
		if err := th.RegisterFlow(qp, 0, 2, 1000); err != nil {
			t.Fatal(err)
		}
	}
	// QP 1 is older but active: delivering a packet must move it to the MRU
	// end so the idle QP 2 becomes the victim.
	th.OnDeliverToHost(dataPkt(1, 0, 2, 0))
	if err := th.RegisterFlow(3, 0, 2, 1000); err != nil {
		t.Fatal(err)
	}
	if _, ok := th.dstFlows[1]; !ok {
		t.Fatal("recently-touched QP 1 was evicted")
	}
	if _, ok := th.dstFlows[2]; ok {
		t.Fatal("idle QP 2 should have been the LRU victim")
	}
}

func TestArmedCompensationProtectedFromEviction(t *testing.T) {
	tp := leafSpine(t, 2, 2, 2)
	th := New(tp, 1, Config{TableBudgetBytes: dstEntryBytes})
	if err := th.RegisterFlow(1, 0, 2, 1000); err != nil {
		t.Fatal(err)
	}
	// Arm the §3.4 compensation: data PSN 2 then an invalid NACK for ePSN 1
	// (delta 1 mod 2 paths != 0) blocks and records BePSN.
	th.OnDeliverToHost(dataPkt(1, 0, 2, 2))
	if th.FilterHostControl(nackPkt(1, 2, 0, 1)) {
		t.Fatal("NACK should have been blocked")
	}
	if !th.dstFlows[1].valid {
		t.Fatal("compensation not armed")
	}
	// While armed, the sole resident entry is protected: the new flow is
	// rejected (transiently) rather than stranding the blocked NACK.
	if err := th.RegisterFlow(2, 1, 3, 1000); err != ErrTableFull {
		t.Fatalf("RegisterFlow = %v, want ErrTableFull", err)
	}
	if s := th.Stats(); s.TableFull != 1 || s.Evictions != 0 {
		t.Fatalf("stats = %+v, want 1 table-full, 0 evictions", s)
	}
	// A later same-path arrival resolves the compensation; the entry becomes
	// evictable and the registration succeeds.
	if out := th.OnDeliverToHost(dataPkt(1, 0, 2, 3)); len(out) != 1 {
		t.Fatalf("expected 1 compensation NACK, got %d", len(out))
	}
	if err := th.RegisterFlow(2, 1, 3, 1000); err != nil {
		t.Fatalf("post-disarm RegisterFlow: %v", err)
	}
	if s := th.Stats(); s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 1 eviction", s)
	}
}

func TestBudgetSmallerThanEntryRejects(t *testing.T) {
	tp := leafSpine(t, 2, 2, 2)
	th := New(tp, 1, Config{TableBudgetBytes: dstEntryBytes - 1})
	if err := th.RegisterFlow(1, 0, 2, 1000); err != ErrTableFull {
		t.Fatalf("RegisterFlow = %v, want ErrTableFull", err)
	}
	if th.TableBytes() != 0 {
		t.Fatalf("rejected flow charged %d bytes", th.TableBytes())
	}
}

func TestIdleSweep(t *testing.T) {
	ck := &fakeClock{}
	tp := leafSpine(t, 2, 2, 2)
	th := New(tp, 1, Config{IdleTimeout: 10 * sim.Microsecond, Clock: ck})
	if err := th.RegisterFlow(1, 0, 2, 1000); err != nil {
		t.Fatal(err)
	}
	ck.now = 5 * sim.Time(sim.Microsecond)
	if err := th.RegisterFlow(2, 0, 2, 1000); err != nil {
		t.Fatal(err)
	}
	ck.now = 12 * sim.Time(sim.Microsecond)
	if n := th.SweepIdle(); n != 1 {
		t.Fatalf("SweepIdle reclaimed %d entries, want 1 (only QP 1 is idle)", n)
	}
	if _, ok := th.dstFlows[1]; ok {
		t.Fatal("idle QP 1 not evicted")
	}
	if _, ok := th.dstFlows[2]; !ok {
		t.Fatal("young QP 2 wrongly evicted")
	}
	if s := th.Stats(); s.IdleEvictions != 1 || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 1 idle eviction", s)
	}
	// Registration sweeps opportunistically: QP 2 goes idle, a new flow's
	// RegisterFlow reclaims it even without budget pressure.
	ck.now = 30 * sim.Time(sim.Microsecond)
	if err := th.RegisterFlow(3, 0, 2, 1000); err != nil {
		t.Fatal(err)
	}
	if _, ok := th.dstFlows[2]; ok {
		t.Fatal("RegisterFlow did not sweep idle QP 2")
	}
}

func TestUnregisterFlow(t *testing.T) {
	src, dst, _ := setup(t, Config{})
	for _, th := range []*Themis{src, dst} {
		if !th.UnregisterFlow(1) {
			t.Fatal("UnregisterFlow missed a registered flow")
		}
		if th.TableBytes() != 0 {
			t.Fatalf("table still charged %d bytes after unregister", th.TableBytes())
		}
		if th.UnregisterFlow(1) {
			t.Fatal("UnregisterFlow should be idempotent")
		}
		if s, d := th.FlowCounts(); s+d != 0 {
			t.Fatal("flow still registered")
		}
		if st := th.Stats(); st.Unregistered != 1 {
			t.Fatalf("Unregistered = %d, want 1", st.Unregistered)
		}
	}
}

func TestReRegisterReplacesEntry(t *testing.T) {
	_, dst, _ := setup(t, Config{})
	if err := dst.RegisterFlow(1, 0, 2, 2000); err != nil {
		t.Fatal(err)
	}
	if n := len(dst.dstFlows); n != 1 {
		t.Fatalf("%d entries after re-registration, want 1", n)
	}
	if dst.TableBytes() != dstEntryBytes {
		t.Fatalf("table charged %d bytes, want %d (no leak)", dst.TableBytes(), dstEntryBytes)
	}
}

func TestRebootResetsTableCharge(t *testing.T) {
	_, dst, _ := setup(t, Config{TableBudgetBytes: 4 * dstEntryBytes})
	dst.Reboot()
	if dst.TableBytes() != 0 {
		t.Fatalf("table charged %d bytes after reboot", dst.TableBytes())
	}
	// The LRU list must be reset too: registrations after the reboot work.
	for qp := packet.QPID(10); qp < 16; qp++ {
		if err := dst.RegisterFlow(qp, 0, 2, 1000); err != nil {
			t.Fatal(err)
		}
	}
	if dst.TableBytes() > dst.TableBudgetBytes() {
		t.Fatalf("occupancy %d exceeds budget after reboot", dst.TableBytes())
	}
}

func TestEvictedFlowDegradesGracefully(t *testing.T) {
	tp := leafSpine(t, 2, 2, 2)
	th := New(tp, 1, Config{TableBudgetBytes: dstEntryBytes})
	if err := th.RegisterFlow(1, 0, 2, 1000); err != nil {
		t.Fatal(err)
	}
	if err := th.RegisterFlow(2, 1, 3, 1000); err != nil {
		t.Fatal(err) // evicts QP 1
	}
	// The evicted QP's NACK must pass unfiltered (conservative forwarding,
	// same as post-reboot) and be counted for the chaos invariant.
	if !th.FilterHostControl(nackPkt(1, 2, 0, 5)) {
		t.Fatal("NACK for evicted QP was blocked")
	}
	s := th.Stats()
	if s.UnknownNacksForwarded != 1 {
		t.Fatalf("UnknownNacksForwarded = %d, want 1", s.UnknownNacksForwarded)
	}
	if s.NacksBlocked != 0 || s.NacksSeen != 0 {
		t.Fatalf("evicted flow entered the validation path: %+v", s)
	}
	// Its data packets see no Themis-D processing either.
	if out := th.OnDeliverToHost(dataPkt(1, 0, 2, 6)); out != nil {
		t.Fatal("evicted flow generated compensation traffic")
	}
}

func TestRelearnRetriesAfterTableFull(t *testing.T) {
	tp := leafSpine(t, 2, 2, 2)
	th := New(tp, 1, Config{TableBudgetBytes: dstEntryBytes, Relearn: true})
	if err := th.RegisterFlow(1, 0, 2, 1000); err != nil {
		t.Fatal(err)
	}
	// Arm QP 1 so it is protected, then present traffic for an unknown QP:
	// relearn hits ErrTableFull and must NOT cache the QP as permanently
	// unmanaged.
	th.OnDeliverToHost(dataPkt(1, 0, 2, 2))
	th.FilterHostControl(nackPkt(1, 2, 0, 1))
	th.OnDeliverToHost(dataPkt(2, 1, 3, 0))
	if _, ok := th.dstFlows[2]; ok {
		t.Fatal("QP 2 admitted despite full table of protected entries")
	}
	if _, cached := th.relearnIgnored[2]; cached {
		t.Fatal("transient table-full cached as a permanent relearn decline")
	}
	// Disarm QP 1; the next packet of QP 2 relearns successfully.
	th.OnDeliverToHost(dataPkt(1, 0, 2, 3))
	th.OnDeliverToHost(dataPkt(2, 1, 3, 1))
	if _, ok := th.dstFlows[2]; !ok {
		t.Fatal("QP 2 not relearned after budget pressure cleared")
	}
}

func TestFailureAndAdminLatchesIndependent(t *testing.T) {
	tp := leafSpine(t, 2, 2, 2)
	th := New(tp, 0, Config{FallbackOnFailure: true})
	th.LinkStateChanged(2, false)
	th.LinkStateChanged(3, false)
	if !th.Disabled() {
		t.Fatal("not disabled with two links down")
	}
	// Cluster-wide hold placed while links are down (the workload.FailLink
	// pattern): repairing one link — or even all of them — must not clear it.
	th.SetDisabled(true)
	th.LinkStateChanged(2, true)
	if !th.Disabled() {
		t.Fatal("repair of one link cleared the disable with another still down")
	}
	th.LinkStateChanged(3, true)
	if !th.Disabled() {
		t.Fatal("link repairs cleared the operator/cluster hold")
	}
	th.SetDisabled(false)
	if th.Disabled() {
		t.Fatal("still disabled with no hold and all links up")
	}
	// And the converse: clearing the hold must not re-enable a ToR whose
	// links are still down.
	th.SetDisabled(true)
	th.LinkStateChanged(2, false)
	th.SetDisabled(false)
	if !th.Disabled() {
		t.Fatal("clearing the hold re-enabled a ToR with a down link")
	}
	th.LinkStateChanged(2, true)
	if th.Disabled() {
		t.Fatal("not re-enabled after final repair")
	}
}

func TestDownPortsClampNonNegative(t *testing.T) {
	tp := leafSpine(t, 2, 2, 2)
	th := New(tp, 0, Config{FallbackOnFailure: true})
	// A spurious up edge (e.g. a double repair) must not underflow.
	th.LinkStateChanged(2, true)
	if th.DownPorts() != 0 {
		t.Fatalf("DownPorts = %d, want 0", th.DownPorts())
	}
	th.LinkStateChanged(2, false)
	if th.DownPorts() != 1 || !th.Disabled() {
		t.Fatal("down edge after spurious up edge lost")
	}
	th.LinkStateChanged(2, true)
	if th.DownPorts() != 0 || th.Disabled() {
		t.Fatal("state wrong after symmetric repair")
	}
}
