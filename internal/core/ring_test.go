package core

import (
	"testing"
	"testing/quick"
)

func TestSeqAfter(t *testing.T) {
	cases := []struct {
		a, b uint8
		want bool
	}{
		{1, 0, true},
		{0, 0, false},
		{0, 1, false},
		{127, 0, true},
		{128, 0, false}, // half window boundary
		{0, 200, true},  // wraparound: 0 is after 200
		{199, 200, false},
		{255, 254, true},
		{0, 255, true},
	}
	for _, c := range cases {
		if got := seqAfter(c.a, c.b); got != c.want {
			t.Errorf("seqAfter(%d,%d) = %v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSeqDelta(t *testing.T) {
	if seqDelta(5, 3) != 2 {
		t.Fatal("simple delta")
	}
	if seqDelta(1, 255) != 2 {
		t.Fatal("wraparound delta")
	}
}

// Property: within a half-window, truncation preserves order and distance.
func TestSeqTruncationFaithfulProperty(t *testing.T) {
	f := func(base uint32, fwd uint8) bool {
		d := uint32(fwd % 128)
		a, b := base+d, base
		if d == 0 {
			return !seqAfter(uint8(a), uint8(b))
		}
		return seqAfter(uint8(a), uint8(b)) && uint32(seqDelta(uint8(a), uint8(b))) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRingPushPop(t *testing.T) {
	r := newPSNRing(4)
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty")
	}
	for i := uint8(0); i < 4; i++ {
		r.Push(i)
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("len/cap = %d/%d", r.Len(), r.Cap())
	}
	for i := uint8(0); i < 4; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d,%v", i, v, ok)
		}
	}
}

func TestRingEvictsOldestOnOverflow(t *testing.T) {
	r := newPSNRing(3)
	for i := uint8(0); i < 5; i++ {
		r.Push(i)
	}
	if r.Overflows() != 2 {
		t.Fatalf("overflows = %d", r.Overflows())
	}
	want := []uint8{2, 3, 4}
	for _, w := range want {
		v, _ := r.Pop()
		if v != w {
			t.Fatalf("got %d want %d", v, w)
		}
	}
}

func TestRingMinCapacity(t *testing.T) {
	r := newPSNRing(0)
	if r.Cap() != 1 {
		t.Fatalf("cap = %d", r.Cap())
	}
}

func TestRingScanForFig4b(t *testing.T) {
	// Fig. 4b: arrival order 0,1,3,2 then NACK(ePSN=2) -> tPSN=3.
	r := newPSNRing(8)
	for _, p := range []uint8{0, 1, 3, 2} {
		r.Push(p)
	}
	tpsn, ok := r.ScanFor(2)
	if !ok || tpsn != 3 {
		t.Fatalf("tPSN = %d,%v want 3", tpsn, ok)
	}
	// The scan consumed 0,1,3; entry 2 remains.
	if r.Len() != 1 {
		t.Fatalf("len after scan = %d", r.Len())
	}
	// Continue the figure: 6 arrives (4,5 delayed/lost), NACK(4) -> tPSN=6.
	r.Push(6)
	tpsn, ok = r.ScanFor(4)
	if !ok || tpsn != 6 {
		t.Fatalf("tPSN = %d,%v want 6", tpsn, ok)
	}
	if r.Len() != 0 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestRingScanMiss(t *testing.T) {
	r := newPSNRing(8)
	r.Push(1)
	r.Push(2)
	if _, ok := r.ScanFor(5); ok {
		t.Fatal("scan should miss when no PSN is after ePSN")
	}
	if r.Len() != 0 {
		t.Fatal("scan miss should drain the ring")
	}
}

func TestRingScanWraparound(t *testing.T) {
	r := newPSNRing(8)
	// PSNs around the 8-bit wrap: 254, 255, 1 (0 delayed), ePSN=0.
	for _, p := range []uint8{254, 255, 1} {
		r.Push(p)
	}
	tpsn, ok := r.ScanFor(0)
	if !ok || tpsn != 1 {
		t.Fatalf("wraparound tPSN = %d,%v want 1", tpsn, ok)
	}
}

func TestRingString(t *testing.T) {
	r := newPSNRing(4)
	r.Push(7)
	r.Push(9)
	if r.String() != "[7 9]" {
		t.Fatalf("String = %q", r.String())
	}
}

// Property: ScanFor returns the first pushed value after epsn, in push order.
func TestRingScanFirstAfterProperty(t *testing.T) {
	f := func(vals []uint8, epsn uint8) bool {
		r := newPSNRing(256)
		for _, v := range vals {
			r.Push(v)
		}
		got, ok := r.ScanFor(epsn)
		for _, v := range vals {
			if seqAfter(v, epsn) {
				return ok && got == v
			}
		}
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
