package core_test

import (
	"testing"

	"themis/internal/core"
	"themis/internal/fabric"
	"themis/internal/lb"
	"themis/internal/packet"
	"themis/internal/rnic"
	"themis/internal/sim"
	"themis/internal/topo"
)

// bed is a full stack: topology + fabric + NICs + Themis on every ToR.
type bed struct {
	engine *sim.Engine
	topo   *topo.Topology
	net    *fabric.Network
	nics   []*rnic.NIC
	themis map[int]*core.Themis // by ToR switch ID
}

func newBed(t *testing.T, tp *topo.Topology, fcfg fabric.Config, ncfg rnic.Config, tcfg core.Config, withThemis bool) *bed {
	t.Helper()
	e := sim.NewEngine(11)
	n := fabric.NewNetwork(e, tp, fcfg)
	b := &bed{engine: e, topo: tp, net: n, themis: make(map[int]*core.Themis)}
	if ncfg.LineRate == 0 {
		ncfg.LineRate = 100e9
	}
	for h := 0; h < tp.NumHosts(); h++ {
		id := packet.NodeID(h)
		nic := rnic.New(e, id, ncfg, func(p *packet.Packet) { n.Inject(id, p) })
		n.AttachHost(id, nic.HandlePacket)
		b.nics = append(b.nics, nic)
	}
	if withThemis {
		for _, sw := range tp.Switches() {
			if sw.Tier == 0 && len(sw.Hosts()) > 0 {
				th := core.New(tp, sw.ID, tcfg)
				n.SetTorPipeline(sw.ID, th)
				b.themis[sw.ID] = th
			}
		}
	}
	return b
}

// flow opens a QP end to end and registers it with the relevant ToRs.
func (b *bed) flow(t *testing.T, qp packet.QPID, src, dst packet.NodeID, sport uint16) (*rnic.SenderQP, *rnic.ReceiverQP) {
	t.Helper()
	s := b.nics[src].OpenSender(qp, dst, sport)
	r := b.nics[dst].OpenReceiver(qp, src, sport)
	for _, th := range b.themis {
		if err := th.RegisterFlow(qp, src, dst, sport); err != nil {
			t.Fatal(err)
		}
	}
	return s, r
}

func leafSpineT(t *testing.T, leaves, spines, hosts int, bw int64) *topo.Topology {
	t.Helper()
	tp, err := topo.NewLeafSpine(topo.LeafSpineConfig{
		Leaves: leaves, Spines: spines, HostsPerLeaf: hosts,
		HostLink:   topo.LinkSpec{Bandwidth: bw, Delay: sim.Microsecond},
		FabricLink: topo.LinkSpec{Bandwidth: bw, Delay: sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// contended returns a 2-leaf x 2-spine fabric with four hosts per leaf: the
// uplinks are 2:1 oversubscribed, so DCQCN runs hot and the probabilistic
// ECN marking desynchronizes the senders — the multi-path delay variation
// that makes spraying reorder packets, exactly the regime of §2.2.
func contendedConfig() fabric.Config {
	return fabric.Config{
		ControlLossless: true,
		BufferBytes:     64 << 20,
		ECN:             fabric.DefaultECN(100e9),
	}
}

func TestThemisSprayNoLossNoSpuriousRetransmit(t *testing.T) {
	tp := leafSpineT(t, 2, 2, 4, 100e9)
	b := newBed(t, tp, contendedConfig(), rnic.Config{BurstBytes: 16 << 10}, core.Config{}, true)
	var senders []*rnic.SenderQP
	var receivers []*rnic.ReceiverQP
	done := 0
	for i := 0; i < 4; i++ {
		s, r := b.flow(t, packet.QPID(i+1), packet.NodeID(i), packet.NodeID(4+i), uint16(1000+i))
		s.SendMessage(4_000_000, func() { done++ })
		senders = append(senders, s)
		receivers = append(receivers, r)
	}
	b.engine.RunAll()
	if done != 4 {
		t.Fatalf("completions = %d", done)
	}
	if b.net.Counters().DataDrops != 0 {
		t.Fatal("unexpected drops")
	}
	var ooo, nacksTx, retrans, nacksRx uint64
	for i := range senders {
		ooo += receivers[i].Stats().OutOfOrder
		nacksTx += receivers[i].Stats().NacksTx
		retrans += senders[i].Stats().Retransmits
		nacksRx += senders[i].Stats().NacksRx
	}
	// Spraying produced OOO arrivals and NIC-SR NACKed them...
	if ooo == 0 {
		t.Fatal("no OOO under contended spraying")
	}
	if nacksTx == 0 {
		t.Fatal("receivers never NACKed")
	}
	// ...but Themis blocked every invalid NACK, so zero spurious
	// retransmissions and zero NACK-triggered slow starts.
	if retrans != 0 {
		t.Fatalf("spurious retransmits = %d with Themis", retrans)
	}
	if nacksRx != 0 {
		t.Fatalf("NACKs reached senders: %d", nacksRx)
	}
	dstTor := b.themis[tp.ToROf(4)]
	if dstTor.Stats().NacksBlocked == 0 {
		t.Fatal("Themis-D blocked nothing")
	}
	if dstTor.Stats().NacksForwarded != 0 {
		t.Fatalf("forwarded %d NACKs with no loss", dstTor.Stats().NacksForwarded)
	}
}

func TestThemisUsesAllSpines(t *testing.T) {
	tp := leafSpineT(t, 2, 4, 1, 100e9)
	b := newBed(t, tp, fabric.Config{ControlLossless: true}, rnic.Config{}, core.Config{}, true)
	s, _ := b.flow(t, 1, 0, 1, 1000)
	s.SendMessage(1_000_000, nil)
	b.engine.RunAll()
	// Leaf 0 uplinks are ports 1..4; each must carry ~1/4 of the packets.
	var counts [4]uint64
	total := uint64(0)
	for i := 0; i < 4; i++ {
		counts[i], _ = b.net.PortTxStats(0, 1+i)
		total += counts[i]
	}
	for i, c := range counts {
		if c < total/8 {
			t.Fatalf("uplink %d underused: %v of %d", i, counts, total)
		}
	}
}

func TestThemisLossRecoveredWithoutTimeout(t *testing.T) {
	dropped := false
	tp := leafSpineT(t, 2, 4, 2, 100e9)
	b := newBed(t, tp, fabric.Config{
		ControlLossless: true,
		LossFunc: func(p *packet.Packet, sw, port int) bool {
			if !dropped && p.PSN == 40 && sw < 2 {
				dropped = true
				return true
			}
			return false
		},
	}, rnic.Config{RTO: 10 * sim.Millisecond}, core.Config{}, true)
	s, r := b.flow(t, 1, 0, 2, 1000)
	var end sim.Time
	s.SendMessage(1_000_000, func() { end = b.engine.Now() })
	b.engine.RunAll()
	if end == 0 {
		t.Fatal("did not complete")
	}
	if !dropped {
		t.Fatal("loss not injected")
	}
	if s.Stats().Timeouts != 0 {
		t.Fatal("loss recovery fell back to RTO — NACK path broken")
	}
	if s.Stats().Retransmits != 1 {
		t.Fatalf("retransmits = %d, want exactly the lost packet", s.Stats().Retransmits)
	}
	if r.Stats().BytesRecv != 1_000_000 {
		t.Fatalf("receiver bytes = %d", r.Stats().BytesRecv)
	}
	// Recovery was via a forwarded valid NACK or a compensation NACK.
	th := b.themis[tp.ToROf(2)]
	if th.Stats().NacksForwarded == 0 && th.Stats().Compensations == 0 {
		t.Fatalf("no recovery path used: %+v", th.Stats())
	}
}

func TestThemisCompensationAblationFallsBackToRTO(t *testing.T) {
	// Count timeouts with compensation on vs off under identical loss. With
	// compensation disabled, a blocked NACK for a real loss can only be
	// repaired by the sender's RTO.
	run := func(disable bool) uint64 {
		dropped := false
		tp := leafSpineT(t, 2, 4, 2, 100e9)
		b := newBed(t, tp, fabric.Config{
			ControlLossless: true,
			LossFunc: func(p *packet.Packet, sw, port int) bool {
				if !dropped && p.PSN == 40 && sw < 2 {
					dropped = true
					return true
				}
				return false
			},
		}, rnic.Config{RTO: 500 * sim.Microsecond}, core.Config{DisableCompensation: disable}, true)
		s, _ := b.flow(t, 1, 0, 2, 1000)
		done := false
		s.SendMessage(1_000_000, func() { done = true })
		b.engine.RunAll()
		if !done {
			t.Fatal("did not complete")
		}
		return s.Stats().Timeouts
	}
	withComp, withoutComp := run(false), run(true)
	if withComp != 0 {
		t.Fatalf("timeouts with compensation = %d", withComp)
	}
	if withoutComp == 0 {
		t.Fatal("compensation ablation should need the RTO")
	}
}

func TestThemisPathMapModeFatTree(t *testing.T) {
	tp, err := topo.NewFatTree(topo.FatTreeConfig{
		K:          4,
		HostLink:   topo.LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
		FabricLink: topo.LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := newBed(t, tp, fabric.Config{ControlLossless: true}, rnic.Config{}, core.Config{Mode: core.PathMapSpray}, true)
	s, r := b.flow(t, 1, 0, 15, 1000) // cross-pod: N = 4
	done := false
	s.SendMessage(2_000_000, func() { done = true })
	b.engine.RunAll()
	if !done {
		t.Fatal("did not complete")
	}
	if r.Stats().OutOfOrder == 0 {
		t.Fatal("PathMap spraying produced no OOO — inactive?")
	}
	if s.Stats().Retransmits != 0 {
		t.Fatalf("spurious retransmits = %d in PathMap mode", s.Stats().Retransmits)
	}
	if s.Stats().NacksRx != 0 {
		t.Fatalf("NACKs leaked to sender: %d", s.Stats().NacksRx)
	}
	// All four cross-pod paths must carry data: check the two edge uplinks
	// both transmitted.
	edge := tp.ToROf(0)
	up1, _ := b.net.PortTxStats(edge, 2)
	up2, _ := b.net.PortTxStats(edge, 3)
	if up1 == 0 || up2 == 0 {
		t.Fatalf("edge uplinks unused: %d %d", up1, up2)
	}
}

func TestThemisLinkFailureFallback(t *testing.T) {
	tp := leafSpineT(t, 2, 4, 2, 100e9)
	b := newBed(t, tp, fabric.Config{ControlLossless: true}, rnic.Config{},
		core.Config{FallbackOnFailure: true}, true)
	s, _ := b.flow(t, 1, 0, 2, 1000)
	// Fail one of leaf0's uplinks before traffic starts: Themis-S reverts
	// to ECMP; the flow completes over the remaining paths.
	b.net.SetLinkState(0, 2, false)
	done := false
	s.SendMessage(1_000_000, func() { done = true })
	b.engine.RunAll()
	if !done {
		t.Fatal("did not complete after failure fallback")
	}
	if !b.themis[0].Disabled() {
		t.Fatal("source Themis not disabled")
	}
	if s.Stats().Retransmits != 0 {
		// ECMP is in-order: no spurious retransmissions either.
		t.Fatalf("retransmits = %d under ECMP fallback", s.Stats().Retransmits)
	}
}

func TestThemisManyFlowsIndependentState(t *testing.T) {
	tp := leafSpineT(t, 2, 4, 4, 100e9)
	b := newBed(t, tp, fabric.Config{ControlLossless: true}, rnic.Config{}, core.Config{}, true)
	type pair struct {
		s *rnic.SenderQP
		r *rnic.ReceiverQP
	}
	var pairs []pair
	for i := 0; i < 4; i++ {
		s, r := b.flow(t, packet.QPID(i+1), packet.NodeID(i), packet.NodeID(4+i), uint16(1000+i))
		pairs = append(pairs, pair{s, r})
	}
	doneCount := 0
	for _, p := range pairs {
		p.s.SendMessage(500_000, func() { doneCount++ })
	}
	b.engine.RunAll()
	if doneCount != 4 {
		t.Fatalf("completions = %d", doneCount)
	}
	for i, p := range pairs {
		if p.s.Stats().Retransmits != 0 {
			t.Fatalf("flow %d: retransmits = %d", i, p.s.Stats().Retransmits)
		}
		if p.r.Stats().BytesRecv != 500_000 {
			t.Fatalf("flow %d: bytes = %d", i, p.r.Stats().BytesRecv)
		}
	}
}

// Direct comparison: same contended spraying workload, NIC-SR, with vs
// without Themis. This is the essence of Fig. 1: without Themis, spurious
// retransmissions and NACK-driven slow starts appear and completion
// stretches.
func TestThemisVsDirectCombination(t *testing.T) {
	run := func(withThemis bool) (retrans, nacksRx uint64, dur sim.Time) {
		tp := leafSpineT(t, 2, 2, 4, 100e9)
		fcfg := contendedConfig()
		if !withThemis {
			fcfg.NewDataSelector = func() lb.Selector { return lb.PSNSpray{} }
		}
		b := newBed(t, tp, fcfg, rnic.Config{BurstBytes: 16 << 10}, core.Config{}, withThemis)
		var end sim.Time
		var senders []*rnic.SenderQP
		done := 0
		for i := 0; i < 4; i++ {
			s, _ := b.flow(t, packet.QPID(i+1), packet.NodeID(i), packet.NodeID(4+i), uint16(1000+i))
			s.SendMessage(4_000_000, func() {
				done++
				end = b.engine.Now() // slowest flow
			})
			senders = append(senders, s)
		}
		b.engine.RunAll()
		if done != 4 {
			t.Fatal("did not complete")
		}
		for _, s := range senders {
			retrans += s.Stats().Retransmits
			nacksRx += s.Stats().NacksRx
		}
		return retrans, nacksRx, end
	}
	rThemis, nThemis, dThemis := run(true)
	rPlain, nPlain, dPlain := run(false)
	if rThemis != 0 || nThemis != 0 {
		t.Fatalf("themis: retrans=%d nacks=%d", rThemis, nThemis)
	}
	if rPlain == 0 || nPlain == 0 {
		t.Fatalf("plain spray: retrans=%d nacks=%d — pathology missing", rPlain, nPlain)
	}
	if dThemis > dPlain {
		t.Fatalf("themis slower than direct combination: %v vs %v", dThemis, dPlain)
	}
}
