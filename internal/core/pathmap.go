package core

import (
	"fmt"

	"themis/internal/lb"
	"themis/internal/packet"
	"themis/internal/topo"
)

// BuildPathMap constructs the §3.2 PathMap offline for one flow: n UDP
// source-port deltas such that XOR-ing Δ_j into the flow's source port makes
// downstream ECMP realize the j-th of n distinct equal-cost paths.
//
// The construction probes deltas in ascending order, walking the fabric with
// the exact per-switch ECMP decision function (lb.ECMPIndex with
// lb.SwitchSeed), and keeps the first delta that reaches each new path.
// Because the ECMP hash is CRC32 — linear over GF(2) — and candidate fan-outs
// are powers of two in Clos fabrics, the *change* each delta induces in
// every hop's decision bits is independent of the flow's base port: one map
// therefore serves a flow regardless of its base entropy, which is what lets
// the paper precompute it offline ([37]).
//
// Each entry is 2 bytes, matching the §4 memory model (M_PathMap =
// N_paths × 2 bytes).
func BuildPathMap(t *topo.Topology, key packet.FlowKey, n int) ([]uint16, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: PathMap with %d paths", n)
	}
	pm := make([]uint16, 0, n)
	seen := make(map[string]bool, n)
	for delta := 0; delta <= 0xffff; delta++ {
		k := key
		k.SPort ^= uint16(delta)
		sig := PathSignature(t, k)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		pm = append(pm, uint16(delta))
		if len(pm) == n {
			return pm, nil
		}
	}
	return nil, fmt.Errorf("core: found only %d of %d paths probing all 65536 deltas", len(pm), n)
}

// PathSignature walks the fabric from the flow's source ToR to its
// destination ToR, applying the same ECMP decision every switch would make,
// and returns a string identifying the traversed switch/port sequence.
func PathSignature(t *topo.Topology, key packet.FlowKey) string {
	sw := t.ToROf(key.Src)
	dstTor := t.ToROf(key.Dst)
	sig := make([]byte, 0, 16)
	for sw != dstTor {
		cands := t.CandidatePorts(sw, key.Dst)
		if len(cands) == 0 {
			return string(append(sig, "!dead"...))
		}
		port := cands[lb.ECMPIndex(key, lb.TierSeed(t.Switch(sw).Tier), len(cands))]
		sig = append(sig, byte(sw), byte(sw>>8), byte(port))
		sw = t.Switch(sw).Ports[port].PeerSwitch
	}
	return string(sig)
}
