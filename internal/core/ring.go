// Package core implements Themis, the paper's contribution: a lightweight
// middleware on ToR switches that makes packet spraying safe for commodity
// RNICs.
//
//   - Themis-S (source ToR, §3.2) enforces the deterministic PSN-based
//     spraying policy of Eq. 1 — either by picking the uplink directly
//     (2-tier Clos) or by rewriting the UDP source port through an offline
//     PathMap (multi-tier, exploiting ECMP hash linearity as in [37]).
//
//   - Themis-D (destination ToR, §3.3–3.4) caches the PSNs of in-flight
//     last-hop packets in a per-QP ring queue of 1-byte truncated PSNs,
//     identifies the OOO packet (tPSN) that triggered each NACK, validates
//     the NACK with Eq. 3 (tPSN ≡ ePSN mod N means the expected packet truly
//     shared the OOO packet's path and is lost), blocks invalid NACKs, and
//     compensates blocked NACKs when later arrivals prove the loss real.
//
// The middleware plugs into the simulated switch through fabric.TorPipeline;
// on real hardware the identical state machine targets a Tofino pipeline
// within the §4 memory budget (see internal/memmodel).
package core

import "fmt"

// seqAfter reports whether truncated PSN a is "after" b in the mod-256
// sequence space, using a half-window comparison. It is correct as long as
// in-flight last-hop packets span fewer than 128 PSNs — guaranteed because
// the ring queue is sized to the last-hop BDP (§3.3), which is far below 128
// packets for realistic links.
func seqAfter(a, b uint8) bool {
	d := a - b // wraps mod 256
	return d != 0 && d < 128
}

// seqDelta returns the forward distance from b to a in mod-256 space.
func seqDelta(a, b uint8) uint8 { return a - b }

// psnRing is the paper's ring-based PSN queue: a FIFO of truncated (1-byte)
// PSNs with fixed capacity. When full, the oldest entry is evicted — an
// entry that old corresponds to a packet whose NACK window has long passed.
type psnRing struct {
	buf       []uint8
	head      int // index of oldest entry
	size      int
	overflows uint64 // evictions due to a full ring
}

// newPSNRing returns a ring with the given capacity (minimum 1).
func newPSNRing(capacity int) *psnRing {
	if capacity < 1 {
		capacity = 1
	}
	return &psnRing{buf: make([]uint8, capacity)}
}

// Len returns the number of queued entries.
func (r *psnRing) Len() int { return r.size }

// Cap returns the ring capacity.
func (r *psnRing) Cap() int { return len(r.buf) }

// Overflows returns how many entries were evicted because the ring was full.
func (r *psnRing) Overflows() uint64 { return r.overflows }

// Push enqueues a truncated PSN, evicting the oldest entry if full. It
// reports whether an eviction happened so the parent can count overflows
// incrementally instead of re-summing every ring on the hot path.
func (r *psnRing) Push(psn uint8) bool {
	evicted := false
	if r.size == len(r.buf) {
		r.head = (r.head + 1) % len(r.buf)
		r.size--
		r.overflows++
		evicted = true
	}
	r.buf[(r.head+r.size)%len(r.buf)] = psn
	r.size++
	return evicted
}

// Pop dequeues the oldest entry.
func (r *psnRing) Pop() (uint8, bool) {
	if r.size == 0 {
		return 0, false
	}
	v := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.size--
	return v, true
}

// ScanFor dequeues entries until it finds the first PSN strictly after epsn
// (mod-256 half-window order) — the paper's tPSN identification (§3.3). The
// found entry is consumed too. ok is false if the ring drained without a
// match.
func (r *psnRing) ScanFor(epsn uint8) (tpsn uint8, ok bool) {
	for {
		v, got := r.Pop()
		if !got {
			return 0, false
		}
		if seqAfter(v, epsn) {
			return v, true
		}
	}
}

// Contains reports whether psn is currently queued (non-consuming peek).
// Themis-D uses it when blocking a NACK: if the NACK's ePSN is already in
// the ring, the "missing" packet departed towards the NIC while the NACK was
// in flight, so no compensation must be armed.
func (r *psnRing) Contains(psn uint8) bool {
	for i := 0; i < r.size; i++ {
		if r.buf[(r.head+i)%len(r.buf)] == psn {
			return true
		}
	}
	return false
}

// String renders the ring oldest-first for debugging.
func (r *psnRing) String() string {
	out := "["
	for i := 0; i < r.size; i++ {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprint(r.buf[(r.head+i)%len(r.buf)])
	}
	return out + "]"
}
