package core

import (
	"testing"

	"themis/internal/packet"
	"themis/internal/sim"
	"themis/internal/topo"
)

func fatTree(t *testing.T, k int) *topo.Topology {
	t.Helper()
	tp, err := topo.NewFatTree(topo.FatTreeConfig{
		K:          k,
		HostLink:   topo.LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
		FabricLink: topo.LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestBuildPathMapCrossPod(t *testing.T) {
	tp := fatTree(t, 4)
	key := packet.FlowKey{Src: 0, Dst: 15, SPort: 1000, DPort: 4791}
	n := tp.PathCount(0, 15) // 4
	pm, err := BuildPathMap(tp, key, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(pm) != n {
		t.Fatalf("pathmap size = %d", len(pm))
	}
	// Every delta yields a distinct path.
	seen := map[string]bool{}
	for _, d := range pm {
		k := key
		k.SPort ^= d
		sig := PathSignature(tp, k)
		if seen[sig] {
			t.Fatalf("delta %d repeats a path", d)
		}
		seen[sig] = true
	}
}

func TestBuildPathMapK8(t *testing.T) {
	tp := fatTree(t, 8)
	key := packet.FlowKey{Src: 0, Dst: 127, SPort: 4242, DPort: 4791}
	n := tp.PathCount(0, 127) // 16
	pm, err := BuildPathMap(tp, key, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(pm) != 16 {
		t.Fatalf("pathmap size = %d", len(pm))
	}
}

// Hash linearity: a PathMap probed with one base sport yields distinct paths
// for any other base sport of the same host pair.
func TestPathMapBaseIndependence(t *testing.T) {
	tp := fatTree(t, 4)
	base := packet.FlowKey{Src: 0, Dst: 15, SPort: 1000, DPort: 4791}
	n := tp.PathCount(0, 15)
	pm, err := BuildPathMap(tp, base, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, sport := range []uint16{0, 7, 999, 4791, 65535} {
		other := base
		other.SPort = sport
		seen := map[string]bool{}
		for _, d := range pm {
			k := other
			k.SPort ^= d
			sig := PathSignature(tp, k)
			if seen[sig] {
				t.Fatalf("base sport %d: PathMap no longer distinct", sport)
			}
			seen[sig] = true
		}
	}
}

func TestPathMapLeafSpine(t *testing.T) {
	tp := leafSpine(t, 4, 4, 2)
	key := packet.FlowKey{Src: 0, Dst: 7, SPort: 1000, DPort: 4791}
	pm, err := BuildPathMap(tp, key, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pm) != 4 {
		t.Fatalf("pathmap size = %d", len(pm))
	}
}

func TestBuildPathMapTooManyPaths(t *testing.T) {
	tp := leafSpine(t, 2, 2, 2)
	key := packet.FlowKey{Src: 0, Dst: 2, SPort: 1000, DPort: 4791}
	if _, err := BuildPathMap(tp, key, 100); err == nil {
		t.Fatal("expected error asking for more paths than exist")
	}
}

func TestBuildPathMapBadN(t *testing.T) {
	tp := leafSpine(t, 2, 2, 2)
	key := packet.FlowKey{Src: 0, Dst: 2, SPort: 1000, DPort: 4791}
	if _, err := BuildPathMap(tp, key, 0); err == nil {
		t.Fatal("expected error for n = 0")
	}
}

func TestPathSignatureSameRack(t *testing.T) {
	tp := leafSpine(t, 2, 2, 2)
	key := packet.FlowKey{Src: 0, Dst: 1, SPort: 1000, DPort: 4791}
	if sig := PathSignature(tp, key); sig != "" {
		t.Fatalf("same-ToR signature = %q, want empty", sig)
	}
}
