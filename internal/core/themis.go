package core

import (
	"fmt"
	"math"

	"themis/internal/lb"
	"themis/internal/memmodel"
	"themis/internal/obs"
	"themis/internal/packet"
	"themis/internal/sim"
	"themis/internal/topo"
	"themis/internal/trace"
)

// SprayMode selects how Themis-S enforces the PSN-based spraying policy.
type SprayMode int

const (
	// DirectSpray has the ToR pick the egress uplink from Eq. 1 directly.
	// Valid when the ToR's uplink choice fully determines the path (2-tier
	// Clos, §3.2 "Implementation limited to the ToR switch").
	DirectSpray SprayMode = iota
	// PathMapSpray rewrites the UDP source port through an offline PathMap
	// so that downstream ECMP deterministically realizes path (PSN mod N)
	// (multi-tier Clos, §3.2 / [37]). The fabric's data selector must be
	// ECMP.
	PathMapSpray
)

// String returns the mode mnemonic.
func (m SprayMode) String() string {
	switch m {
	case DirectSpray:
		return "direct"
	case PathMapSpray:
		return "pathmap"
	default:
		return fmt.Sprintf("SprayMode(%d)", int(m))
	}
}

// Config parameterizes a Themis instance (one per ToR switch).
type Config struct {
	// Mode selects the Themis-S mechanism (default DirectSpray).
	Mode SprayMode
	// QueueFactor is F, the PSN-queue capacity expansion factor over the
	// last-hop BDP (§3.3/§4; default 1.5).
	QueueFactor float64
	// MTU is used for BDP-based queue sizing (default packet.DefaultMTU).
	MTU int
	// DisableBlocking turns off Themis-D NACK filtering (ablation: spraying
	// alone, the paper's "direct combination" pathology).
	DisableBlocking bool
	// DisableCompensation turns off the §3.4 NACK compensation (ablation:
	// blocked-but-real losses must wait for the sender's RTO).
	DisableCompensation bool
	// FallbackOnFailure makes the ToR disable Themis and revert to ECMP
	// while any of its fabric links is down (§6).
	FallbackOnFailure bool
	// PathSubset, if positive, restricts each flow to this many of its N
	// equal-cost paths (the §6 future-work extension). The subset is chosen
	// per flow from P_base, so different flows cover different paths while
	// each flow's Eq. 1/Eq. 3 arithmetic runs modulo the subset size. Must
	// be configured identically on the source and destination ToRs of a
	// flow (it is part of the connection-setup handshake in deployment).
	PathSubset int
	// TableBudgetBytes caps the SRAM charged to per-QP flow state on this
	// ToR (both roles), enforcing the §4 memory model at run time: every
	// entry is charged its Table 1 footprint (flow-table entry bytes plus,
	// for Themis-D, the ring queue slots; for Themis-S, the per-flow PathMap)
	// and a registration that would exceed the budget evicts idle/LRU entries
	// to make room. When no victim is evictable the flow is rejected and runs
	// unmanaged — it degrades to ECMP and conservative NACK forwarding,
	// exactly like the post-reboot relearn path. Zero means unbounded (the
	// historical behaviour). See TableBudget to derive a value from
	// memmodel.Params.
	TableBudgetBytes int
	// IdleTimeout enables lazy reclamation of idle flow-table entries: an
	// entry untouched for this long may be evicted by SweepIdle (run
	// opportunistically on every registration) even without budget pressure.
	// Requires Clock. Zero disables idle eviction; entries are then reclaimed
	// only by UnregisterFlow or budget pressure.
	IdleTimeout sim.Duration
	// Relearn makes the ToR rebuild per-QP flow state from live traffic
	// after a state loss (Reboot): a data or NACK packet for an unknown QP
	// re-registers the flow from its header fields, exactly as the
	// connection-setup interception would have. The rebuilt Themis-D state
	// starts with an empty ring and no armed compensation, so the first
	// NACKs after a reboot fall through the conservative scan-miss path
	// (forwarded) rather than being blocked — a rebooted ToR can cause
	// spurious retransmissions but never suppress a valid NACK.
	Relearn bool
	// Tracer, if non-nil, records middleware verdicts (spray, block,
	// forward, compensate); see package trace. Requires Clock.
	Tracer *trace.Tracer
	// Clock supplies timestamps for trace events (normally the sim.Engine).
	Clock interface{ Now() sim.Time }
	// Pool, if non-nil, supplies packets for compensation NACKs. Share it
	// with fabric.Config.Pool. Nil allocates normally.
	Pool *packet.Pool
	// Metrics, if non-nil, receives this instance's verdict counters as
	// additive "themis.*" gauges (pull-based: no per-packet cost). Share one
	// registry across all ToRs to get cluster-wide totals.
	Metrics *obs.Registry
}

// Stats counts Themis events on one ToR.
type Stats struct {
	Sprayed               uint64 // data packets steered by Themis-S
	NacksSeen             uint64 // NACKs inspected by Themis-D
	NacksForwarded        uint64 // valid NACKs passed through
	NacksBlocked          uint64 // invalid NACKs blocked
	Compensations         uint64 // compensation NACKs generated (§3.4)
	CompensationCancelled uint64 // BePSN arrived: blocked NACK proven spurious
	ScanMisses            uint64 // NACKs whose tPSN was not found in the ring
	RingOverflows         uint64 // ring evictions (undersized queue)
	Bypassed              uint64 // packets passed through while disabled (failure mode)
	Reboots               uint64 // simulated state losses (Reboot calls)
	Relearns              uint64 // flows re-registered from live traffic after a reboot
	Evictions             uint64 // entries reclaimed by the lifecycle layer (budget or idle)
	IdleEvictions         uint64 // subset of Evictions reclaimed by SweepIdle
	TableFull             uint64 // registrations rejected: budget exhausted, no victim
	Unregistered          uint64 // entries retired explicitly via UnregisterFlow
	UnknownNacksForwarded uint64 // NACKs for unknown/evicted QPs passed through unfiltered
}

// flowState is the per-QP state of Table "FlowTable" in Fig. 4a: ring queue
// metadata plus the blocked-ePSN/valid pair, and the spraying parameters.
type flowState struct {
	src, dst packet.NodeID
	nPaths   int
	flowHash uint32   // seeded ECMP hash at this ToR (P_base source)
	pathMap  []uint16 // PathMapSpray: Δsport per path index (nil in direct mode)

	ring *psnRing

	// NACK-compensation fields (§3.4).
	bepsn packet.PSN
	valid bool

	// Lifecycle fields (see lifecycle.go): key back-reference, role, charged
	// Table 1 footprint, last-touch clock, and intrusive LRU links (a list,
	// not map iteration, so victim selection is O(1) and deterministic).
	qp        packet.QPID
	isDst     bool
	bytes     int
	lastTouch sim.Time
	lruPrev   *flowState
	lruNext   *flowState
}

// Themis is the middleware instance on one ToR switch. It implements
// fabric.TorPipeline. A single instance plays both the Themis-S role (for
// flows entering the fabric here) and the Themis-D role (for flows whose
// receiver is attached here); per-QP state is registered explicitly, which
// models the paper's connection-setup interception.
type Themis struct {
	topology *topo.Topology
	swID     int
	cfg      Config

	// Themis-S state: flows sourced under this ToR.
	srcFlows map[packet.QPID]*flowState
	// Themis-D state: flows terminating under this ToR.
	dstFlows map[packet.QPID]*flowState
	// relearnIgnored caches QPs a relearn attempt declined to register
	// (same-rack, single-path, or registration error) so the hot path does
	// not retry them on every packet.
	relearnIgnored map[packet.QPID]struct{}

	// Lifecycle state: intrusive LRU over all entries (head = coldest) and
	// the SRAM currently charged against Config.TableBudgetBytes.
	lruHead    *flowState
	lruTail    *flowState
	tableBytes int

	downPorts int
	// The bypass state is two independent latches so the §6 failure response
	// and the operator/cluster disable cannot clobber each other: repairing
	// this ToR's last down link clears only failDisabled, never an operator
	// hold, and vice versa.
	adminDisabled bool // operator/cluster hold (SetDisabled)
	failDisabled  bool // §6 FallbackOnFailure while any local link is down

	stats Stats
}

// New creates the Themis instance for ToR switch swID. Install it with
// fabric.Network.SetTorPipeline.
func New(t *topo.Topology, swID int, cfg Config) *Themis {
	if cfg.QueueFactor == 0 {
		cfg.QueueFactor = 1.5
	}
	if cfg.MTU == 0 {
		cfg.MTU = packet.DefaultMTU
	}
	th := &Themis{
		topology: t,
		swID:     swID,
		cfg:      cfg,
		srcFlows: make(map[packet.QPID]*flowState),
		dstFlows: make(map[packet.QPID]*flowState),
	}
	th.registerMetrics(cfg.Metrics)
	return th
}

// registerMetrics exposes the verdict counters as additive gauges. Pull-based
// (evaluated only at Snapshot time), so the per-packet cost of enabling
// metrics is exactly zero. No-op on a nil registry.
func (th *Themis) registerMetrics(r *obs.Registry) {
	r.GaugeFunc("themis.sprayed", func() float64 { return float64(th.stats.Sprayed) })
	r.GaugeFunc("themis.nacks_seen", func() float64 { return float64(th.stats.NacksSeen) })
	r.GaugeFunc("themis.nacks_forwarded", func() float64 { return float64(th.stats.NacksForwarded) })
	r.GaugeFunc("themis.nacks_blocked", func() float64 { return float64(th.stats.NacksBlocked) })
	r.GaugeFunc("themis.compensations", func() float64 { return float64(th.stats.Compensations) })
	r.GaugeFunc("themis.compensation_cancelled", func() float64 { return float64(th.stats.CompensationCancelled) })
	r.GaugeFunc("themis.scan_misses", func() float64 { return float64(th.stats.ScanMisses) })
	r.GaugeFunc("themis.ring_overflows", func() float64 { return float64(th.stats.RingOverflows) })
	r.GaugeFunc("themis.bypassed", func() float64 { return float64(th.stats.Bypassed) })
	r.GaugeFunc("themis.reboots", func() float64 { return float64(th.stats.Reboots) })
	r.GaugeFunc("themis.relearns", func() float64 { return float64(th.stats.Relearns) })
	r.GaugeFunc("themis.evictions", func() float64 { return float64(th.stats.Evictions) })
	r.GaugeFunc("themis.idle_evictions", func() float64 { return float64(th.stats.IdleEvictions) })
	r.GaugeFunc("themis.table_full", func() float64 { return float64(th.stats.TableFull) })
	r.GaugeFunc("themis.unregistered", func() float64 { return float64(th.stats.Unregistered) })
	r.GaugeFunc("themis.unknown_nacks_forwarded", func() float64 { return float64(th.stats.UnknownNacksForwarded) })
	r.GaugeFunc("themis.table_bytes", func() float64 { return float64(th.tableBytes) })
	r.GaugeFunc("themis.table_budget_bytes", func() float64 { return float64(th.cfg.TableBudgetBytes) })
	r.GaugeFunc("themis.flows", func() float64 { return float64(len(th.srcFlows) + len(th.dstFlows)) })
}

// Stats returns a snapshot of this instance's counters.
func (th *Themis) Stats() Stats { return th.stats }

// SwitchID returns the ToR this instance runs on.
func (th *Themis) SwitchID() int { return th.swID }

// Disabled reports whether Themis is currently bypassing itself, for any
// reason: an operator hold (SetDisabled) or the §6 failure response.
func (th *Themis) Disabled() bool { return th.adminDisabled || th.failDisabled }

// bypassed is the hot-path alias of Disabled.
func (th *Themis) bypassed() bool { return th.adminDisabled || th.failDisabled }

// SetDisabled sets or clears the operator/cluster hold. It is a latch
// independent of the failure-driven one: link repairs never clear it, and
// clearing it does not re-enable a ToR that still has down links under
// FallbackOnFailure.
func (th *Themis) SetDisabled(v bool) { th.adminDisabled = v }

// DownPorts returns the number of this ToR's fabric links currently down, as
// tracked from LinkStateChanged notifications.
func (th *Themis) DownPorts() int { return th.downPorts }

// Reboot simulates a power-cycle of the middleware: the flow table and every
// per-QP ring queue are lost mid-flow, exactly what a ToR reboot does to the
// paper's Fig. 4a state. Registered flows become unknown QPs — their NACKs
// are forwarded unmodified (never blocked) until state is rebuilt, either by
// re-running connection setup (RegisterFlow) or, with Config.Relearn, lazily
// from live traffic. Counters and link state survive (they model the
// monitoring plane, not switch SRAM).
func (th *Themis) Reboot() {
	th.srcFlows = make(map[packet.QPID]*flowState)
	th.dstFlows = make(map[packet.QPID]*flowState)
	th.relearnIgnored = nil
	th.lruHead, th.lruTail = nil, nil
	th.tableBytes = 0
	th.stats.Reboots++
	if th.cfg.Tracer != nil && th.cfg.Clock != nil {
		th.cfg.Tracer.RecordFault(th.cfg.Clock.Now(), trace.FaultReset, th.swID, -1)
	}
}

// relearn attempts to rebuild flow state for an unknown QP from packet header
// fields (Config.Relearn). Declined registrations are cached so the per-packet
// cost is one map lookup.
//
//lint:alloc-ok per-flow (re)registration control branch, charged against the table budget; not per-packet work
func (th *Themis) relearn(qp packet.QPID, src, dst packet.NodeID, sport uint16) {
	if _, skip := th.relearnIgnored[qp]; skip {
		return
	}
	// A failed registration (e.g. direct spray on an asymmetric fabric) is
	// treated like an unmanaged flow rather than retried per packet — except
	// ErrTableFull, which is transient (armed entries disarm, budget frees):
	// caching it would permanently unmanage a flow that was merely unlucky.
	if err := th.RegisterFlow(qp, src, dst, sport); err == ErrTableFull {
		return
	}
	_, isSrc := th.srcFlows[qp]
	_, isDst := th.dstFlows[qp]
	if isSrc || isDst {
		th.stats.Relearns++
		return
	}
	if th.relearnIgnored == nil {
		th.relearnIgnored = make(map[packet.QPID]struct{})
	}
	th.relearnIgnored[qp] = struct{}{}
}

// PendingCompensations counts destination flows with an armed compensation
// (BePSN recorded, Valid set): blocked NACKs whose verdict is still open.
// After traffic drains it must be possible for these to be zero or resolve
// via the sender's RTO — the chaos invariant checker asserts exactly that.
func (th *Themis) PendingCompensations() int {
	n := 0
	for _, fs := range th.dstFlows {
		if fs.valid {
			n++
		}
	}
	return n
}

// RingStats sums ring-queue occupancy over destination flows: entries can
// never exceed capacity (entries are evicted, not leaked).
func (th *Themis) RingStats() (entries, capacity int, overflows uint64) {
	for _, fs := range th.dstFlows { //lint:ordered commutative integer sums over every flow; the totals are iteration-order-independent
		entries += fs.ring.Len()
		capacity += fs.ring.Cap()
		overflows += fs.ring.Overflows()
	}
	return entries, capacity, overflows
}

// FlowCounts returns the number of flows registered in the Themis-S and
// Themis-D roles.
func (th *Themis) FlowCounts() (src, dst int) {
	return len(th.srcFlows), len(th.dstFlows)
}

// RegisterFlow announces a QP to this ToR — the simulation analogue of the
// paper's RNIC-handshake interception. It must be called on the source ToR
// (Themis-S role) and the destination ToR (Themis-D role); calling it on a
// switch that is neither is a no-op. Same-rack flows (a single path) are
// ignored: Themis only operates on cross-rack QPs (§4).
//
// Under a finite Config.TableBudgetBytes the table is a bounded cache:
// registering may first sweep idle entries and evict LRU victims, and returns
// ErrTableFull when no room can be made (all residents protected by an armed
// compensation). A rejected flow is unmanaged, not broken — it runs over
// plain ECMP with NACKs forwarded, and relearn retries it later.
func (th *Themis) RegisterFlow(qp packet.QPID, src, dst packet.NodeID, sport uint16) error {
	if th.topology.ToROf(src) == th.topology.ToROf(dst) {
		return nil
	}
	full := th.topology.PathCount(src, dst)
	if full < 2 {
		return nil
	}
	isSrc := th.topology.ToROf(src) == th.swID
	isDst := th.topology.ToROf(dst) == th.swID
	if !isSrc && !isDst {
		return nil
	}
	th.SweepIdle()
	// Re-registration (connection-setup retry, or a stale entry for a reused
	// QP number) replaces the old entry rather than leaking its charge.
	if th.UnregisterFlow(qp) {
		th.stats.Unregistered-- // internal replacement, not an observable retirement
	}
	n := full
	if th.cfg.PathSubset > 0 && th.cfg.PathSubset < n {
		// §6 extension: spray over a flow-specific subset of the paths.
		n = th.cfg.PathSubset
	}
	key := packet.FlowKey{Src: src, Dst: dst, SPort: sport, DPort: 4791}
	fs := &flowState{
		src:      src,
		dst:      dst,
		nPaths:   n,
		flowHash: lb.Hash(key) ^ lb.SwitchSeed(th.swID),
		qp:       qp,
	}
	if isSrc {
		if th.cfg.Mode == PathMapSpray {
			// Charge the budget before the PathMap build so a rejected flow
			// costs no allocation on the (possibly per-packet) relearn path.
			if !th.ensureRoom(memmodel.FlowTableEntryBytes + 2*n) {
				th.stats.TableFull++
				return ErrTableFull
			}
			pm, err := BuildPathMap(th.topology, key, n)
			if err != nil {
				return fmt.Errorf("core: building PathMap for qp %d: %w", qp, err)
			}
			fs.pathMap = pm
		} else {
			// Direct mode requires the ToR uplink choice to determine the
			// whole path: the number of uplink candidates must equal the
			// full path count (the subset is carved out of them at spray
			// time).
			cands := th.topology.CandidatePorts(th.swID, dst)
			if len(cands) != full {
				return fmt.Errorf("core: direct spray needs one uplink per path (have %d uplinks, %d paths); use PathMapSpray", len(cands), full)
			}
			if !th.ensureRoom(memmodel.FlowTableEntryBytes) {
				th.stats.TableFull++
				return ErrTableFull
			}
		}
		th.srcFlows[qp] = fs
	} else {
		ringCap := th.ringCapacity(dst)
		if !th.ensureRoom(memmodel.FlowTableEntryBytes + ringCap*memmodel.QueueEntryBytes) {
			th.stats.TableFull++
			return ErrTableFull
		}
		fs.ring = newPSNRing(ringCap)
		fs.isDst = true
		th.dstFlows[qp] = fs
	}
	th.install(fs)
	return nil
}

// ringCapacity sizes the per-QP PSN queue from the last-hop BDP (§3.3):
// slightly more than BDP/MTU, scaled by the expansion factor F.
func (th *Themis) ringCapacity(dst packet.NodeID) int {
	a := th.topology.HostAttach(dst)
	rtt := 2 * a.Delay // last-hop round trip
	bdpBytes := float64(a.Bandwidth) / 8 * rtt.Seconds()
	entries := int(math.Ceil(bdpBytes / float64(th.cfg.MTU) * th.cfg.QueueFactor))
	if entries < 1 {
		entries = 1
	}
	return entries
}

// --- fabric.TorPipeline implementation ---

// SelectUplink implements Themis-S: Eq. 1 steering of data packets.
func (th *Themis) SelectUplink(pkt *packet.Packet, cands []int) (int, bool) {
	fs, ok := th.srcFlows[pkt.QP]
	if !ok {
		if th.cfg.Relearn && !th.bypassed() {
			th.relearn(pkt.QP, pkt.Src, pkt.Dst, pkt.SPort)
			fs, ok = th.srcFlows[pkt.QP]
		}
		if !ok {
			return 0, false
		}
	}
	if th.bypassed() {
		th.stats.Bypassed++
		return 0, false // ECMP fallback (§6)
	}
	th.touch(fs)
	th.stats.Sprayed++
	th.trace(trace.Spray, pkt)
	if fs.pathMap != nil {
		// Multi-tier: rewrite the entropy field; downstream ECMP realizes
		// the deterministic path for PSN mod N.
		j := pkt.PSN.Mod(fs.nPaths)
		pkt.SPort ^= fs.pathMap[j]
		return 0, false
	}
	// 2-tier: pick the uplink directly. The flow's P_base is spread over
	// all uplinks; the flow then cycles through nPaths consecutive ones
	// (nPaths < len(cands) only under the PathSubset extension).
	base := lb.Index(fs.flowHash, len(cands))
	idx := (base + pkt.PSN.Mod(fs.nPaths)) % len(cands)
	return cands[idx], true
}

// OnDeliverToHost implements the Themis-D last-hop observation point: it
// records the PSN in the ring queue (§3.3) and runs the compensation state
// machine (§3.4). Returned packets are compensation NACKs the fabric routes
// back to the sender.
func (th *Themis) OnDeliverToHost(pkt *packet.Packet) []*packet.Packet {
	fs, ok := th.dstFlows[pkt.QP]
	if !ok && th.cfg.Relearn && !th.bypassed() {
		// State loss: rebuild Themis-D state from the live data packet. The
		// fresh ring starts empty, so classification restarts conservatively.
		th.relearn(pkt.QP, pkt.Src, pkt.Dst, pkt.SPort)
		fs, ok = th.dstFlows[pkt.QP]
	}
	if !ok || th.bypassed() {
		return nil
	}
	th.touch(fs)
	var out []*packet.Packet
	if fs.valid && !th.cfg.DisableCompensation {
		switch {
		case pkt.PSN == fs.bepsn:
			// The blocked NACK's packet arrived after all: no loss.
			fs.valid = false
			th.stats.CompensationCancelled++
		case pkt.PSN.After(fs.bepsn) && pkt.PSN.Mod(fs.nPaths) == fs.bepsn.Mod(fs.nPaths):
			// A later packet on the same path arrived: the BePSN packet is
			// confirmed lost. Generate the NACK the RNIC cannot (§3.4).
			fs.valid = false
			th.stats.Compensations++
			nack := th.cfg.Pool.Get()
			nack.Kind = packet.Nack
			nack.Src = fs.dst
			nack.Dst = fs.src
			nack.QP = pkt.QP
			nack.SPort = pkt.SPort
			nack.DPort = 4791
			nack.PSN = fs.bepsn
			// Trace the generated NACK, not the triggering data packet: the
			// event then carries PSN=BePSN and lands in the ledger entry of
			// the blocked NACK it stands in for.
			th.trace(trace.Compensate, nack)
			out = append(out, nack)
		}
	}
	if fs.ring.Push(pkt.PSN.Trunc()) {
		// Incremental: the ring reports its own eviction, so the hot path
		// stays O(1) in the number of registered flows. (The counter is also
		// monotone across Reboot/eviction now — it no longer gets recomputed
		// from whatever rings happen to be resident.)
		th.stats.RingOverflows++
	}
	return out
}

// FilterHostControl implements Themis-D NACK validation (§3.3): identify the
// tPSN from the ring queue, apply Eq. 3, forward valid NACKs and block
// invalid ones (recording BePSN for compensation).
func (th *Themis) FilterHostControl(pkt *packet.Packet) bool {
	if pkt.Kind != packet.Nack {
		return true
	}
	fs, ok := th.dstFlows[pkt.QP]
	if !ok && th.cfg.Relearn && !th.bypassed() {
		// The NACK travels receiver -> sender, so the flow's data direction
		// is (pkt.Dst -> pkt.Src); control packets reuse the forward sport.
		th.relearn(pkt.QP, pkt.Dst, pkt.Src, pkt.SPort)
		fs, ok = th.dstFlows[pkt.QP]
	}
	if !ok {
		// Unknown QP mid-flow is the degradation mode shared by reboot,
		// eviction, and table-full rejection: forward the NACK unmodified —
		// a spurious retransmission is always cheaper than a suppressed
		// valid NACK. Counted so the churn invariants can prove the
		// conservative path actually ran (non-vacuity).
		if !th.bypassed() && !th.cfg.DisableBlocking {
			th.stats.UnknownNacksForwarded++
		}
		return true
	}
	if th.bypassed() || th.cfg.DisableBlocking {
		return true
	}
	th.touch(fs)
	th.stats.NacksSeen++
	tpsn, found := fs.ring.ScanFor(pkt.PSN.Trunc())
	if !found {
		// No in-flight PSN after the ePSN: the trigger left the window.
		// Forward conservatively — a spurious retransmission is cheaper
		// than a lost valid NACK.
		th.stats.ScanMisses++
		th.stats.NacksForwarded++
		return true
	}
	// Eq. 3 via the truncated delta: paths match iff (tPSN-ePSN) ≡ 0 mod N.
	// The delta is exact because the in-flight window is < 128 PSNs.
	delta := seqDelta(tpsn, pkt.PSN.Trunc())
	if int(delta)%fs.nPaths == 0 {
		th.stats.NacksForwarded++
		th.trace(trace.NackForwarded, pkt)
		return true
	}
	// Invalid: block, arm compensation (§3.4) — unless the expected packet
	// already departed towards the NIC while this NACK was in flight (it
	// sits behind the trigger in the ring), in which case nothing was lost
	// and no compensation may ever fire.
	th.stats.NacksBlocked++
	th.trace(trace.NackBlocked, pkt)
	if fs.ring.Contains(pkt.PSN.Trunc()) {
		th.stats.CompensationCancelled++
		fs.valid = false
		return false
	}
	fs.bepsn = pkt.PSN
	fs.valid = true
	return false
}

// trace records a middleware event when tracing is configured.
func (th *Themis) trace(op trace.Op, pkt *packet.Packet) {
	if th.cfg.Tracer == nil || th.cfg.Clock == nil {
		return
	}
	th.cfg.Tracer.RecordPacket(th.cfg.Clock.Now(), op, th.swID, -1, pkt)
}

// LinkStateChanged implements the §6 failure response: when any of this
// ToR's fabric links is down, Themis disables itself and the switch reverts
// to its configured (ECMP) selector. Only the failure latch is driven here —
// an operator hold (SetDisabled) survives any sequence of link repairs.
//
// The fabric delivers a synthetic "down" edge for every already-down port
// when the pipeline is installed (fabric.SetTorPipeline), so downPorts is
// correct even on a switch that was degraded before Themis attached. The
// up-edge clamp guards against double-repair notifications ever driving the
// counter negative and wedging the latch logic.
func (th *Themis) LinkStateChanged(port int, up bool) {
	if up {
		if th.downPorts > 0 {
			th.downPorts--
		}
	} else {
		th.downPorts++
	}
	if th.cfg.FallbackOnFailure {
		th.failDisabled = th.downPorts > 0
	}
}
