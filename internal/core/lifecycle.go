package core

import (
	"errors"

	"themis/internal/memmodel"
	"themis/internal/packet"
)

// This file implements the flow-table lifecycle: the §4 SRAM budget enforced
// at run time, idle/LRU eviction, and explicit flow retirement. The paper's
// memory model (Table 1) sizes the ToR state for a fixed N_QP per RNIC; a
// production ToR instead sees an unbounded stream of short-lived QPs, so the
// table must be a bounded cache. A flow that falls out of the cache is not
// broken — it degrades to the exact post-reboot semantics: ECMP spraying at
// the source ToR and conservative NACK forwarding (never blocking) at the
// destination ToR, until (with Config.Relearn) live traffic re-registers it.

// ErrTableFull reports that RegisterFlow could not admit a flow because the
// table budget is exhausted and every resident entry is protected (armed
// compensation). It is transient: armed entries disarm on the next data
// packet of the blocked flow, after which registration can succeed. Callers
// must treat the flow as unmanaged (ECMP + forwarded NACKs), not as failed.
var ErrTableFull = errors.New("core: flow-table budget exhausted")

// TableBudget derives a Config.TableBudgetBytes value from the §4 memory
// model: SRAM for `entries` concurrent QPs at the Table 1 per-QP footprint
// under parameters p (flow-table entry bytes plus the BDP-sized PSN queue).
func TableBudget(p memmodel.Params, entries int) int {
	return p.PerQPBytes() * entries
}

// entryCost charges a flow-table entry its Table 1 footprint in bytes: the
// 20-byte flow-table entry plus, for Themis-D, one byte per ring slot, or,
// for Themis-S in PathMap mode, two bytes per path-map slot.
func entryCost(fs *flowState) int {
	cost := memmodel.FlowTableEntryBytes
	if fs.ring != nil {
		cost += fs.ring.Cap() * memmodel.QueueEntryBytes
	}
	cost += 2 * len(fs.pathMap)
	return cost
}

// TableBytes returns the SRAM currently charged to flow-table entries.
func (th *Themis) TableBytes() int { return th.tableBytes }

// TableBudgetBytes returns the configured budget (0 = unbounded).
func (th *Themis) TableBudgetBytes() int { return th.cfg.TableBudgetBytes }

// evictable reports whether fs may be reclaimed. An entry with an armed
// compensation (§3.4) is protected: evicting it would strand a blocked NACK
// with no one left to compensate, turning a spurious block into a real loss
// that only the sender's RTO can recover. Armed state is transient (the next
// data packet on the blocked path disarms it), so protection is too.
func (th *Themis) evictable(fs *flowState) bool {
	return !(fs.valid && !th.cfg.DisableCompensation)
}

// evict removes fs from the table and uncharges its footprint. The flow's
// traffic keeps flowing: it simply becomes an unknown QP, which the hot paths
// treat exactly like the post-reboot state (ECMP + forwarded NACKs).
func (th *Themis) evict(fs *flowState, idle bool) {
	if fs.isDst {
		delete(th.dstFlows, fs.qp)
	} else {
		delete(th.srcFlows, fs.qp)
	}
	th.lruRemove(fs)
	th.tableBytes -= fs.bytes
	th.stats.Evictions++
	if idle {
		th.stats.IdleEvictions++
	}
}

// ensureRoom makes space for an entry of the given cost, evicting
// least-recently-used evictable entries as needed. It reports false when the
// budget cannot accommodate the entry (cost alone exceeds the budget, or all
// resident entries are protected).
func (th *Themis) ensureRoom(cost int) bool {
	if th.cfg.TableBudgetBytes <= 0 {
		return true
	}
	if cost > th.cfg.TableBudgetBytes {
		return false
	}
	for th.tableBytes+cost > th.cfg.TableBudgetBytes {
		victim := th.lruHead
		for victim != nil && !th.evictable(victim) {
			victim = victim.lruNext
		}
		if victim == nil {
			return false
		}
		th.evict(victim, false)
	}
	return true
}

// SweepIdle evicts every evictable entry untouched for Config.IdleTimeout or
// longer and returns how many were reclaimed. It runs opportunistically on
// each RegisterFlow, and may be driven externally (e.g. from a housekeeping
// timer). No-op without an IdleTimeout and a Clock.
func (th *Themis) SweepIdle() int {
	if th.cfg.IdleTimeout <= 0 || th.cfg.Clock == nil {
		return 0
	}
	now := th.cfg.Clock.Now()
	n := 0
	for fs := th.lruHead; fs != nil; {
		next := fs.lruNext
		if now.Sub(fs.lastTouch) < th.cfg.IdleTimeout {
			break // LRU order: everything behind is younger
		}
		if th.evictable(fs) {
			th.evict(fs, true)
			n++
		}
		fs = next
	}
	return n
}

// UnregisterFlow retires a QP's state on this ToR — the analogue of the
// RNIC-teardown interception at connection close. It reports whether an entry
// was present. Unknown QPs (same-rack flows, already-evicted entries) are a
// no-op: teardown must be idempotent because eviction may race with it.
func (th *Themis) UnregisterFlow(qp packet.QPID) bool {
	fs, ok := th.srcFlows[qp]
	if !ok {
		fs, ok = th.dstFlows[qp]
	}
	if !ok {
		delete(th.relearnIgnored, qp)
		return false
	}
	if fs.isDst {
		delete(th.dstFlows, qp)
	} else {
		delete(th.srcFlows, qp)
	}
	th.lruRemove(fs)
	th.tableBytes -= fs.bytes
	th.stats.Unregistered++
	delete(th.relearnIgnored, qp)
	return true
}

// install charges fs against the budget and links it as most recently used.
func (th *Themis) install(fs *flowState) {
	fs.bytes = entryCost(fs)
	th.tableBytes += fs.bytes
	if th.cfg.Clock != nil {
		fs.lastTouch = th.cfg.Clock.Now()
	}
	th.lruPushBack(fs)
}

// touch marks fs as just used: refresh the idle clock and move it to the
// most-recently-used end of the LRU list. O(1), flow-count independent — it
// runs on the per-packet hot paths.
func (th *Themis) touch(fs *flowState) {
	if th.cfg.Clock != nil {
		fs.lastTouch = th.cfg.Clock.Now()
	}
	if th.lruTail == fs {
		return
	}
	th.lruRemove(fs)
	th.lruPushBack(fs)
}

// lruPushBack links fs at the most-recently-used end.
func (th *Themis) lruPushBack(fs *flowState) {
	fs.lruPrev = th.lruTail
	fs.lruNext = nil
	if th.lruTail != nil {
		th.lruTail.lruNext = fs
	} else {
		th.lruHead = fs
	}
	th.lruTail = fs
}

// lruRemove unlinks fs from the LRU list.
func (th *Themis) lruRemove(fs *flowState) {
	if fs.lruPrev != nil {
		fs.lruPrev.lruNext = fs.lruNext
	} else {
		th.lruHead = fs.lruNext
	}
	if fs.lruNext != nil {
		fs.lruNext.lruPrev = fs.lruPrev
	} else {
		th.lruTail = fs.lruPrev
	}
	fs.lruPrev, fs.lruNext = nil, nil
}
