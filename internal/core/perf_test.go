package core

import (
	"fmt"
	"testing"

	"themis/internal/packet"
)

// themisDWithFlows returns a destination-ToR instance with n registered
// Themis-D flows (hosts 0→2 across a 2×2×2 leaf-spine, one QP per flow).
func themisDWithFlows(tb testing.TB, n int, cfg Config) *Themis {
	tb.Helper()
	tp := leafSpine(tb, 2, 2, 2)
	th := New(tp, 1, cfg)
	for qp := 1; qp <= n; qp++ {
		if err := th.RegisterFlow(packet.QPID(qp), 0, 2, 1000); err != nil {
			tb.Fatal(err)
		}
	}
	return th
}

// BenchmarkOnDeliverToHost guards the Themis-D per-packet observation point:
// its cost must be independent of the number of registered flows (the churn
// workload registers thousands), so the sub-benchmarks across flow counts
// must report the same ns/op.
func BenchmarkOnDeliverToHost(b *testing.B) {
	for _, flows := range []int{16, 1024, 8192} {
		b.Run(fmt.Sprintf("flows=%d", flows), func(b *testing.B) {
			th := themisDWithFlows(b, flows, Config{})
			pkt := dataPkt(1, 0, 2, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pkt.PSN = packet.PSN(uint32(i)).Add(0)
				th.OnDeliverToHost(pkt)
			}
		})
	}
}

// TestOnDeliverToHostAllocFree is the AllocsPerRun guard behind the
// benchmark: the hot path must not allocate regardless of flow count.
func TestOnDeliverToHostAllocFree(t *testing.T) {
	th := themisDWithFlows(t, 8192, Config{})
	pkt := dataPkt(1, 0, 2, 0)
	psn := uint32(0)
	if n := testing.AllocsPerRun(200, func() {
		pkt.PSN = packet.PSN(psn).Add(0)
		psn++
		th.OnDeliverToHost(pkt)
	}); n != 0 {
		t.Fatalf("OnDeliverToHost allocates %.1f times per packet", n)
	}
}
