package core

import (
	"testing"

	"themis/internal/packet"
)

// FuzzClassifyNACK drives Themis-D with arbitrary byte-driven interleavings
// of in-order deliveries, reordered and late arrivals, and receiver NACKs,
// then audits the counter algebra that the paper's §3.3/§3.4 state machine
// guarantees: every inspected NACK gets exactly one verdict, and
// compensations/cancellations never exceed the blocked NACKs that armed them.
func FuzzClassifyNACK(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0x00, 0x0b, 0x00, 0x13})       // deliver, NACK behind, NACK ahead
	f.Add([]byte{0x00, 0x09, 0x03, 0x00, 0x00})             // skip ahead, NACK, catch up
	f.Add([]byte{0x00, 0x00, 0x43, 0x00, 0x02, 0x00, 0x83}) // block then late arrival
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip("interleaving longer than any real window")
		}
		dst := New(leafSpine(t, 2, 2, 2), 1, Config{})
		if err := dst.RegisterFlow(1, 0, 2, 1000); err != nil {
			t.Fatal(err)
		}
		next := packet.PSN(0)
		for _, b := range data {
			arg := int(b >> 2)
			switch b & 3 {
			case 0: // in-order delivery
				dst.OnDeliverToHost(dataPkt(1, 0, 2, next))
				next = next.Next()
			case 1: // reordered arrival from ahead of the cursor
				dst.OnDeliverToHost(dataPkt(1, 0, 2, next.Add(arg)))
			case 2: // late arrival from behind the cursor
				dst.OnDeliverToHost(dataPkt(1, 0, 2, next.Add(-arg)))
			default: // receiver NACK with an ePSN near the window
				dst.FilterHostControl(nackPkt(1, 2, 0, next.Add(arg-32)))
			}
		}
		st := dst.Stats()
		if st.NacksSeen != st.NacksForwarded+st.NacksBlocked {
			t.Fatalf("verdicts leak: seen=%d forwarded=%d blocked=%d",
				st.NacksSeen, st.NacksForwarded, st.NacksBlocked)
		}
		if st.Compensations > st.NacksBlocked {
			t.Fatalf("compensations=%d exceed blocked=%d", st.Compensations, st.NacksBlocked)
		}
		// Every blocked NACK either cancels immediately or arms at most one
		// compensation; each arm resolves as at most one compensation or
		// cancellation.
		if st.Compensations+st.CompensationCancelled > st.NacksBlocked {
			t.Fatalf("compensations=%d + cancelled=%d exceed blocked=%d",
				st.Compensations, st.CompensationCancelled, st.NacksBlocked)
		}
		if n := dst.PendingCompensations(); n > 1 {
			t.Fatalf("one flow has %d armed compensations", n)
		}
		if entries, capacity, _ := dst.RingStats(); entries > capacity {
			t.Fatalf("ring occupancy %d exceeds capacity %d", entries, capacity)
		}
	})
}
