package rnic_test

import (
	"testing"

	"themis/internal/fabric"
	"themis/internal/lb"
	"themis/internal/packet"
	"themis/internal/rnic"
	"themis/internal/sim"
	"themis/internal/topo"
)

// testbed wires a leaf-spine fabric with one NIC per host.
type testbed struct {
	engine *sim.Engine
	net    *fabric.Network
	nics   []*rnic.NIC
}

func newTestbed(t *testing.T, spines int, fcfg fabric.Config, ncfg rnic.Config) *testbed {
	t.Helper()
	tp, err := topo.NewLeafSpine(topo.LeafSpineConfig{
		Leaves: 2, Spines: spines, HostsPerLeaf: 2,
		HostLink:   topo.LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
		FabricLink: topo.LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine(7)
	n := fabric.NewNetwork(e, tp, fcfg)
	if ncfg.LineRate == 0 {
		ncfg.LineRate = 100e9
	}
	tb := &testbed{engine: e, net: n}
	for h := 0; h < tp.NumHosts(); h++ {
		id := packet.NodeID(h)
		nic := rnic.New(e, id, ncfg, func(p *packet.Packet) { n.Inject(id, p) })
		n.AttachHost(id, nic.HandlePacket)
		tb.nics = append(tb.nics, nic)
	}
	return tb
}

// connect opens a QP from a to b and returns the sender/receiver halves.
func (tb *testbed) connect(qp packet.QPID, a, b packet.NodeID, sport uint16) (*rnic.SenderQP, *rnic.ReceiverQP) {
	s := tb.nics[a].OpenSender(qp, b, sport)
	r := tb.nics[b].OpenReceiver(qp, a, sport)
	return s, r
}

func TestTransferECMPInOrder(t *testing.T) {
	tb := newTestbed(t, 4, fabric.Config{ControlLossless: true}, rnic.Config{})
	s, r := tb.connect(1, 0, 2, 1000) // cross-rack
	done := false
	s.SendMessage(1_000_000, func() { done = true })
	tb.engine.RunAll()
	if !done {
		t.Fatal("message did not complete")
	}
	if r.Stats().OutOfOrder != 0 {
		t.Fatalf("ECMP produced %d OOO arrivals", r.Stats().OutOfOrder)
	}
	if r.Stats().NacksTx != 0 {
		t.Fatal("NACKs on a loss-free single path")
	}
	if s.Stats().Retransmits != 0 {
		t.Fatal("retransmits on a loss-free single path")
	}
	if r.Stats().BytesRecv != 1_000_000 {
		t.Fatalf("receiver bytes = %d", r.Stats().BytesRecv)
	}
}

func TestTransferSprayNICSRSpuriousNacks(t *testing.T) {
	tb := newTestbed(t, 4, fabric.Config{
		ControlLossless: true,
		NewDataSelector: func() lb.Selector { return lb.RandomSpray{} },
	}, rnic.Config{Transport: rnic.SelectiveRepeat})
	s, r := tb.connect(1, 0, 2, 1000)
	done := false
	s.SendMessage(2_000_000, func() { done = true })
	tb.engine.RunAll()
	if !done {
		t.Fatal("message did not complete")
	}
	// No loss occurred, yet NIC-SR NACKs OOO arrivals (the paper's §2.2
	// pathology): spurious retransmissions happen.
	if tb.net.Counters().DataDrops != 0 {
		t.Fatal("unexpected drops")
	}
	if r.Stats().OutOfOrder == 0 {
		t.Fatal("spraying produced no OOO arrivals")
	}
	if r.Stats().NacksTx == 0 {
		t.Fatal("NIC-SR sent no NACKs for OOO arrivals")
	}
	if s.Stats().Retransmits == 0 {
		t.Fatal("no spurious retransmissions")
	}
	if r.Stats().BytesRecv != 2_000_000 {
		t.Fatalf("receiver bytes = %d", r.Stats().BytesRecv)
	}
}

func TestTransferSprayIdealClean(t *testing.T) {
	tb := newTestbed(t, 4, fabric.Config{
		ControlLossless: true,
		NewDataSelector: func() lb.Selector { return lb.RandomSpray{} },
	}, rnic.Config{Transport: rnic.Ideal})
	s, r := tb.connect(1, 0, 2, 1000)
	done := false
	s.SendMessage(2_000_000, func() { done = true })
	tb.engine.RunAll()
	if !done {
		t.Fatal("message did not complete")
	}
	if r.Stats().NacksTx != 0 || s.Stats().Retransmits != 0 {
		t.Fatalf("ideal transport: nacks=%d retrans=%d", r.Stats().NacksTx, s.Stats().Retransmits)
	}
}

func TestTransferLossRecoveryECMP(t *testing.T) {
	dropped := false
	tb := newTestbed(t, 2, fabric.Config{
		ControlLossless: true,
		LossFunc: func(p *packet.Packet, sw, port int) bool {
			if !dropped && p.Kind == packet.Data && p.PSN == 50 && sw < 2 {
				dropped = true
				return true
			}
			return false
		},
	}, rnic.Config{Transport: rnic.SelectiveRepeat})
	s, r := tb.connect(1, 0, 2, 1000)
	done := false
	s.SendMessage(1_000_000, func() { done = true })
	tb.engine.RunAll()
	if !done {
		t.Fatal("message did not complete after a real loss")
	}
	if !dropped {
		t.Fatal("loss was not injected")
	}
	// The loss was detected via NACK (OOO on the same path) and repaired.
	if s.Stats().Retransmits == 0 {
		t.Fatal("no retransmission repaired the loss")
	}
	if r.Stats().BytesRecv != 1_000_000 {
		t.Fatalf("receiver bytes = %d", r.Stats().BytesRecv)
	}
}

func TestTransferTailLossTimeout(t *testing.T) {
	// Drop the very last packet: no subsequent OOO arrival can trigger a
	// NACK, so only the RTO can recover.
	dropped := false
	tb := newTestbed(t, 1, fabric.Config{
		ControlLossless: true,
		LossFunc: func(p *packet.Packet, sw, port int) bool {
			if !dropped && p.Kind == packet.Data && p.PSN == 66 && sw < 2 {
				dropped = true
				return true
			}
			return false
		},
	}, rnic.Config{Transport: rnic.SelectiveRepeat, RTO: 200 * sim.Microsecond})
	s, _ := tb.connect(1, 0, 2, 1000)
	done := false
	s.SendMessage(100_000, func() { done = true }) // 67 packets: PSN 66 is last
	tb.engine.RunAll()
	if !done {
		t.Fatal("tail loss not recovered")
	}
	if s.Stats().Timeouts == 0 {
		t.Fatal("recovery should have required a timeout")
	}
}

func TestTransferGBNSprayCompletes(t *testing.T) {
	tb := newTestbed(t, 4, fabric.Config{
		ControlLossless: true,
		NewDataSelector: func() lb.Selector { return lb.RandomSpray{} },
	}, rnic.Config{Transport: rnic.GoBackN, RTO: 500 * sim.Microsecond})
	s, r := tb.connect(1, 0, 2, 1000)
	// A competing sprayed flow on the same uplinks creates the queue-depth
	// asymmetry that actually reorders packets; a lone smoothly-paced flow
	// on equal-length paths reorders only its sub-MTU tail, and only when
	// the tail draws a different spine — far too fragile to assert on.
	s2, _ := tb.connect(2, 1, 3, 2000)
	done := false
	s.SendMessage(500_000, func() { done = true })
	s2.SendMessage(500_000, nil)
	tb.engine.RunAll()
	if !done {
		t.Fatal("GBN + spray did not complete")
	}
	if r.Stats().GBNDrops == 0 {
		t.Fatal("GBN dropped no OOO packets under spraying")
	}
	// GBN under spraying is hugely wasteful: redundancy shows up as
	// retransmissions.
	if s.Stats().Retransmits == 0 {
		t.Fatal("GBN retransmitted nothing")
	}
}

func TestCongestionCNPFlow(t *testing.T) {
	// Hosts 0 and 1 (same rack) both send to host 2: the leaf1->host2 link
	// is 2:1 oversubscribed, queues build, ECN marks flow back as CNPs and
	// DCQCN cuts the rate.
	tb := newTestbed(t, 2, fabric.Config{
		ControlLossless: true,
		ECN:             fabric.DefaultECN(100e9),
		BufferBytes:     16 << 20,
	}, rnic.Config{Transport: rnic.SelectiveRepeat})
	s0, _ := tb.connect(1, 0, 2, 1000)
	s1, _ := tb.connect(2, 1, 2, 2000)
	var doneCount int
	s0.SendMessage(4_000_000, func() { doneCount++ })
	s1.SendMessage(4_000_000, func() { doneCount++ })
	tb.engine.RunAll()
	if doneCount != 2 {
		t.Fatalf("completions = %d", doneCount)
	}
	if tb.net.Counters().EcnMarks == 0 {
		t.Fatal("no ECN marks under 2:1 congestion")
	}
	if s0.Stats().CnpsRx+s1.Stats().CnpsRx == 0 {
		t.Fatal("no CNPs delivered")
	}
	if s0.CC().Stats().Decreases+s1.CC().Stats().Decreases == 0 {
		t.Fatal("DCQCN never cut the rate")
	}
}

func TestFairnessTwoSenders(t *testing.T) {
	// Both senders should finish in comparable time under DCQCN.
	tb := newTestbed(t, 2, fabric.Config{
		ControlLossless: true,
		ECN:             fabric.DefaultECN(100e9),
		BufferBytes:     16 << 20,
	}, rnic.Config{})
	s0, _ := tb.connect(1, 0, 2, 1000)
	s1, _ := tb.connect(2, 1, 2, 2000)
	var t0, t1 sim.Time
	s0.SendMessage(2_000_000, func() { t0 = tb.engine.Now() })
	s1.SendMessage(2_000_000, func() { t1 = tb.engine.Now() })
	tb.engine.RunAll()
	if t0 == 0 || t1 == 0 {
		t.Fatal("incomplete")
	}
	ratio := float64(t0) / float64(t1)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("grossly unfair completion: %v vs %v", t0, t1)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, sim.Time) {
		tb := &testbed{}
		tp, err := topo.NewLeafSpine(topo.LeafSpineConfig{
			Leaves: 2, Spines: 4, HostsPerLeaf: 2,
			HostLink:   topo.LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
			FabricLink: topo.LinkSpec{Bandwidth: 100e9, Delay: sim.Microsecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		e := sim.NewEngine(99)
		n := fabric.NewNetwork(e, tp, fabric.Config{
			ControlLossless: true,
			NewDataSelector: func() lb.Selector { return lb.RandomSpray{} },
		})
		tb.engine, tb.net = e, n
		for h := 0; h < tp.NumHosts(); h++ {
			id := packet.NodeID(h)
			nic := rnic.New(e, id, rnic.Config{LineRate: 100e9}, func(p *packet.Packet) { n.Inject(id, p) })
			n.AttachHost(id, nic.HandlePacket)
			tb.nics = append(tb.nics, nic)
		}
		s, _ := tb.connect(1, 0, 2, 1000)
		var end sim.Time
		s.SendMessage(1_000_000, func() { end = e.Now() })
		e.RunAll()
		return s.Stats().Retransmits, end
	}
	r1, e1 := run()
	r2, e2 := run()
	if r1 != r2 || e1 != e2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", r1, e1, r2, e2)
	}
}
