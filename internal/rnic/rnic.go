// Package rnic models commodity RDMA NICs at the granularity the paper
// reasons about (§2.2): queue pairs with PSN-numbered data segments,
// cumulative ACKs, and one of three reliable transports —
//
//   - SelectiveRepeat (NIC-SR): the current-generation behaviour (CX-6/CX-7).
//     The receiver keeps an ePSN and an out-of-order bitmap, accepts OOO
//     packets, and on every OOO arrival assumes the ePSN packet was lost:
//     it emits a NACK carrying only the ePSN — at most one NACK per ePSN
//     value. The sender retransmits exactly the NACKed packet and hands the
//     NACK to DCQCN as a congestion signal (the "unnecessary slow start").
//
//   - GoBackN: the previous-generation behaviour (CX-4/CX-5). OOO packets
//     are dropped, the receiver NACKs the ePSN, and the sender rewinds.
//
//   - Ideal: an oracle upper bound (Fig. 1d) that never misinterprets OOO
//     arrival as loss — no spurious NACKs, no NACK-triggered rate cuts;
//     genuine losses are recovered by timeout.
//
// One NIC instance attaches to each simulated host and multiplexes any
// number of sender and receiver QPs.
package rnic

import (
	"fmt"

	"themis/internal/cc"
	"themis/internal/lb"
	"themis/internal/obs"
	"themis/internal/packet"
	"themis/internal/sim"
)

// Transport selects the reliable transport behaviour of a QP.
type Transport int

const (
	// SelectiveRepeat is NIC-SR, the current-generation commodity RNIC
	// transport the paper targets.
	SelectiveRepeat Transport = iota
	// GoBackN is the previous-generation transport.
	GoBackN
	// Ideal is the oracle transport with perfect loss discrimination.
	Ideal
)

// String returns the transport mnemonic.
func (t Transport) String() string {
	switch t {
	case SelectiveRepeat:
		return "nic-sr"
	case GoBackN:
		return "gbn"
	case Ideal:
		return "ideal"
	default:
		return fmt.Sprintf("Transport(%d)", int(t))
	}
}

// Config parameterizes a NIC. Zero fields take defaults.
type Config struct {
	// MTU is the data payload per packet (default packet.DefaultMTU).
	MTU int
	// Transport selects the reliable transport (default SelectiveRepeat).
	Transport Transport
	// LineRate is the access link rate in bits per second (required).
	LineRate int64
	// CC configures DCQCN. CC.LineRate defaults to LineRate. Set DisableCC
	// to send at line rate unconditionally.
	CC        cc.Config
	DisableCC bool
	// RTO is the base retransmission timeout (default 1 ms).
	RTO sim.Duration
	// RTOBackoff is the multiplicative backoff applied to the RTO on every
	// consecutive timeout of a QP (default 1 = fixed RTO, the historical
	// behaviour). Values > 1 make timeout storms under heavy loss converge:
	// each barren timeout doubles (for 2.0) the next wait instead of
	// re-firing at the base period while the fabric is still broken.
	RTOBackoff float64
	// RTOMax caps the backed-off timeout. Defaults to 100 × RTO when
	// RTOBackoff > 1; ignored otherwise.
	RTOMax sim.Duration
	// CNPInterval is the minimum gap between CNPs per QP (default 50 us).
	CNPInterval sim.Duration
	// AckEvery coalesces ACKs: in-order arrivals are acknowledged every
	// AckEvery packets (default 1 = every packet). OOO/duplicate handling is
	// unaffected.
	AckEvery int
	// BurstBytes is the pacer granularity: up to this many bytes leave
	// back-to-back at line rate before the pacer inserts the rate-matching
	// gap. Hardware rate limiters on commodity RNICs schedule whole WQE
	// chunks, not single packets; this burstiness is what turns multi-path
	// spraying into out-of-order arrivals even without persistent
	// congestion. Default: one packet (perfectly smooth pacing).
	BurstBytes int
	// NewEntropy, if non-nil, gives every sender QP an EntropySource: the
	// sender stamps each data (re)transmission's source port from
	// Pick(psn) instead of the flow's constant sport, and threads transport
	// feedback back into the source — OnAck per cumulatively-acknowledged
	// PSN, OnNack per explicit NACK, OnTimeout per RTO expiry. This is the
	// ACK-feedback hook the REPS arm lives on. base is the flow's home
	// sport, so a source that returns base unchanged reproduces the legacy
	// single-path behaviour bit for bit.
	NewEntropy func(qp packet.QPID, base uint16) lb.EntropySource
	// Pool, if non-nil, is the packet free list injected packets are drawn
	// from. Share it with fabric.Config.Pool so delivered packets recycle
	// back. Nil allocates normally.
	Pool *packet.Pool
	// Metrics, if non-nil, exposes this NIC's sender counters as additive
	// "rnic.*" gauges and feeds message completion latencies into the shared
	// "rnic.message_complete_us" histogram. Share one registry across all
	// NICs for cluster totals. Gauges are pull-based (zero hot-path cost);
	// the histogram costs one nil-check per message completion when disabled.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.LineRate <= 0 {
		panic("rnic: Config.LineRate is required")
	}
	if c.MTU == 0 {
		c.MTU = packet.DefaultMTU
	}
	if c.RTO == 0 {
		c.RTO = sim.Millisecond
	}
	if c.RTOBackoff == 0 {
		c.RTOBackoff = 1
	}
	if c.RTOBackoff > 1 && c.RTOMax == 0 {
		c.RTOMax = 100 * c.RTO
	}
	if c.CNPInterval == 0 {
		c.CNPInterval = 50 * sim.Microsecond
	}
	if c.AckEvery == 0 {
		c.AckEvery = 1
	}
	if c.CC.LineRate == 0 {
		c.CC.LineRate = c.LineRate
	}
	return c
}

// NIC is one host's RNIC: a dispatch table of QPs plus the host's injection
// path into the fabric.
type NIC struct {
	engine *sim.Engine
	id     packet.NodeID
	cfg    Config
	inject func(*packet.Packet)

	senders   map[packet.QPID]*SenderQP
	receivers map[packet.QPID]*ReceiverQP

	// closedStats accumulates counters of senders retired by CloseSender so
	// the additive rnic.* gauges stay monotone under flow churn.
	closedStats SenderStats

	// msgHist receives message completion latencies (nil when metrics are
	// off; Observe on a nil histogram is a no-op).
	msgHist *obs.Histogram
}

// New creates a NIC for host id. inject transmits a packet onto the host's
// access link (normally fabric.Network.Inject bound to the host).
func New(engine *sim.Engine, id packet.NodeID, cfg Config, inject func(*packet.Packet)) *NIC {
	n := &NIC{
		engine:    engine,
		id:        id,
		cfg:       cfg.withDefaults(),
		inject:    inject,
		senders:   make(map[packet.QPID]*SenderQP),
		receivers: make(map[packet.QPID]*ReceiverQP),
	}
	n.registerMetrics(cfg.Metrics)
	return n
}

// registerMetrics exposes the NIC's aggregate sender counters as additive
// gauges; no-op on a nil registry. The closures sum over sender QPs only at
// Snapshot time, so the per-packet cost of enabled metrics is still zero.
func (n *NIC) registerMetrics(r *obs.Registry) {
	n.msgHist = r.Histogram("rnic.message_complete_us")
	sum := func(field func(*SenderStats) uint64) func() float64 {
		return func() float64 {
			total := field(&n.closedStats)
			// Summation is commutative; iteration order cannot leak.
			for _, s := range n.senders { //lint:ordered commutative sum over per-sender counters
				total += field(&s.stats)
			}
			return float64(total)
		}
	}
	r.GaugeFunc("rnic.data_packets", sum(func(s *SenderStats) uint64 { return s.DataPackets }))
	r.GaugeFunc("rnic.retransmits", sum(func(s *SenderStats) uint64 { return s.Retransmits }))
	r.GaugeFunc("rnic.goodput_bytes", sum(func(s *SenderStats) uint64 { return s.GoodputBytes }))
	r.GaugeFunc("rnic.acks_rx", sum(func(s *SenderStats) uint64 { return s.AcksRx }))
	r.GaugeFunc("rnic.nacks_rx", sum(func(s *SenderStats) uint64 { return s.NacksRx }))
	r.GaugeFunc("rnic.cnps_rx", sum(func(s *SenderStats) uint64 { return s.CnpsRx }))
	r.GaugeFunc("rnic.timeouts", sum(func(s *SenderStats) uint64 { return s.Timeouts }))
	r.GaugeFunc("rnic.completions", sum(func(s *SenderStats) uint64 { return s.Completions }))
}

// ID returns the host NodeID.
func (n *NIC) ID() packet.NodeID { return n.id }

// Config returns the NIC configuration (with defaults applied).
func (n *NIC) Config() Config { return n.cfg }

// HandlePacket is the host receive entry point; wire it to
// fabric.Network.AttachHost.
func (n *NIC) HandlePacket(p *packet.Packet) {
	switch p.Kind {
	case packet.Data:
		if r, ok := n.receivers[p.QP]; ok {
			r.onData(p)
		}
	case packet.Ack:
		if s, ok := n.senders[p.QP]; ok {
			s.onAck(p)
		}
	case packet.Nack:
		if s, ok := n.senders[p.QP]; ok {
			s.onNack(p)
		}
	case packet.Cnp:
		if s, ok := n.senders[p.QP]; ok {
			s.onCnp(p)
		}
	}
}

// OpenSender creates the send side of QP qp towards dst, using sport as the
// flow's UDP source-port entropy.
func (n *NIC) OpenSender(qp packet.QPID, dst packet.NodeID, sport uint16) *SenderQP {
	if _, dup := n.senders[qp]; dup {
		panic(fmt.Sprintf("rnic: duplicate sender QP %d on host %d", qp, n.id))
	}
	s := newSenderQP(n, qp, dst, sport)
	n.senders[qp] = s
	return s
}

// OpenReceiver creates the receive side of QP qp from src.
func (n *NIC) OpenReceiver(qp packet.QPID, src packet.NodeID, sport uint16) *ReceiverQP {
	if _, dup := n.receivers[qp]; dup {
		panic(fmt.Sprintf("rnic: duplicate receiver QP %d on host %d", qp, n.id))
	}
	r := newReceiverQP(n, qp, src, sport)
	n.receivers[qp] = r
	return r
}

// Sender returns the sender QP (nil if absent).
func (n *NIC) Sender(qp packet.QPID) *SenderQP { return n.senders[qp] }

// Receiver returns the receiver QP (nil if absent).
func (n *NIC) Receiver(qp packet.QPID) *ReceiverQP { return n.receivers[qp] }

// Senders iterates all sender QPs.
func (n *NIC) Senders() map[packet.QPID]*SenderQP { return n.senders }

// CloseSender tears down the send side of QP qp: timers and pending pacer
// events are cancelled and the QP is removed from the dispatch table, so
// stray ACKs/NACKs still in flight are simply dropped (HandlePacket ignores
// unknown QPs, matching how a real RNIC treats a destroyed QP). The QP's
// counters are folded into the NIC aggregate so the rnic.* gauges stay
// monotone across churn. Unknown QPs are a no-op.
func (n *NIC) CloseSender(qp packet.QPID) {
	s, ok := n.senders[qp]
	if !ok {
		return
	}
	s.Close()
	n.addClosed(&s.stats)
	delete(n.senders, qp)
}

// CloseReceiver tears down the receive side of QP qp. Receivers hold no
// timers, so this only removes the dispatch entry; late data packets for the
// QP are dropped. Unknown QPs are a no-op.
func (n *NIC) CloseReceiver(qp packet.QPID) {
	delete(n.receivers, qp)
}

// addClosed accumulates a retired sender's counters (see registerMetrics).
func (n *NIC) addClosed(s *SenderStats) {
	n.closedStats.DataPackets += s.DataPackets
	n.closedStats.Retransmits += s.Retransmits
	n.closedStats.BytesSent += s.BytesSent
	n.closedStats.GoodputBytes += s.GoodputBytes
	n.closedStats.AcksRx += s.AcksRx
	n.closedStats.NacksRx += s.NacksRx
	n.closedStats.CnpsRx += s.CnpsRx
	n.closedStats.Timeouts += s.Timeouts
	n.closedStats.Completions += s.Completions
}

// ClosedSenderStats returns the accumulated counters of senders already
// closed on this NIC.
func (n *NIC) ClosedSenderStats() SenderStats { return n.closedStats }
