package rnic

import (
	"testing"

	"themis/internal/packet"
	"themis/internal/sim"
)

// capture is a NIC inject sink recording emitted packets.
type capture struct {
	pkts []*packet.Packet
}

func (c *capture) inject(p *packet.Packet) { c.pkts = append(c.pkts, p) }

func (c *capture) byKind(k packet.Kind) []*packet.Packet {
	var out []*packet.Packet
	for _, p := range c.pkts {
		if p.Kind == k {
			out = append(out, p)
		}
	}
	return out
}

func newTestNIC(e *sim.Engine, id packet.NodeID, tr Transport, sink *capture) *NIC {
	return New(e, id, Config{
		LineRate:  100e9,
		Transport: tr,
		DisableCC: true,
		RTO:       sim.Second, // out of the way for unit tests
	}, sink.inject)
}

// runFor advances the engine by d from its current time. Sender-side unit
// tests cannot use RunAll: with no ACK path the RTO re-arms forever.
func runFor(e *sim.Engine, d sim.Duration) { e.Run(e.Now().Add(d)) }

func data(qp packet.QPID, src, dst packet.NodeID, psn packet.PSN, payload int) *packet.Packet {
	return &packet.Packet{Kind: packet.Data, Src: src, Dst: dst, QP: qp, SPort: 7, DPort: 4791, PSN: psn, Payload: payload}
}

// --- ReceiverQP unit tests (the §2.2 NIC-SR contract) ---

func TestReceiverInOrderAcks(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 1, SelectiveRepeat, &sink)
	r := n.OpenReceiver(1, 0, 7)
	for psn := packet.PSN(0); psn < 5; psn++ {
		r.onData(data(1, 0, 1, psn, 1000))
	}
	if r.EPSN() != 5 {
		t.Fatalf("ePSN = %d", r.EPSN())
	}
	acks := sink.byKind(packet.Ack)
	if len(acks) != 5 {
		t.Fatalf("acks = %d", len(acks))
	}
	if acks[4].PSN != 5 {
		t.Fatalf("last ack ePSN = %d", acks[4].PSN)
	}
	if len(sink.byKind(packet.Nack)) != 0 {
		t.Fatal("in-order arrivals generated NACKs")
	}
	if r.Stats().BytesRecv != 5000 {
		t.Fatalf("bytes = %d", r.Stats().BytesRecv)
	}
}

func TestReceiverOneNackPerEPSN(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 1, SelectiveRepeat, &sink)
	r := n.OpenReceiver(1, 0, 7)
	// ePSN = 0; three OOO arrivals must yield exactly one NACK(0).
	r.onData(data(1, 0, 1, 1, 1000))
	r.onData(data(1, 0, 1, 2, 1000))
	r.onData(data(1, 0, 1, 3, 1000))
	nacks := sink.byKind(packet.Nack)
	if len(nacks) != 1 || nacks[0].PSN != 0 {
		t.Fatalf("nacks = %v", nacks)
	}
	if r.Stats().OutOfOrder != 3 {
		t.Fatalf("OOO = %d", r.Stats().OutOfOrder)
	}
}

func TestReceiverBitmapDrain(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 1, SelectiveRepeat, &sink)
	r := n.OpenReceiver(1, 0, 7)
	r.onData(data(1, 0, 1, 1, 1000))
	r.onData(data(1, 0, 1, 2, 1000))
	r.onData(data(1, 0, 1, 0, 1000)) // fills the hole
	if r.EPSN() != 3 {
		t.Fatalf("ePSN = %d after drain", r.EPSN())
	}
	// The ack after the hole fill carries ePSN 3.
	acks := sink.byKind(packet.Ack)
	if len(acks) == 0 || acks[len(acks)-1].PSN != 3 {
		t.Fatalf("acks = %v", acks)
	}
}

func TestReceiverNackAgainForNewEPSN(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 1, SelectiveRepeat, &sink)
	r := n.OpenReceiver(1, 0, 7)
	r.onData(data(1, 0, 1, 1, 1000)) // NACK(0)
	r.onData(data(1, 0, 1, 0, 1000)) // ePSN -> 2
	r.onData(data(1, 0, 1, 3, 1000)) // NACK(2): new ePSN value
	nacks := sink.byKind(packet.Nack)
	if len(nacks) != 2 || nacks[0].PSN != 0 || nacks[1].PSN != 2 {
		t.Fatalf("nacks = %+v", nacks)
	}
}

func TestReceiverDuplicateReAcks(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 1, SelectiveRepeat, &sink)
	r := n.OpenReceiver(1, 0, 7)
	r.onData(data(1, 0, 1, 0, 1000))
	before := len(sink.byKind(packet.Ack))
	r.onData(data(1, 0, 1, 0, 1000)) // duplicate
	if r.Stats().Duplicates != 1 {
		t.Fatal("duplicate not counted")
	}
	if got := len(sink.byKind(packet.Ack)); got != before+1 {
		t.Fatal("duplicate did not trigger re-ack")
	}
	if r.Stats().BytesRecv != 1000 {
		t.Fatal("duplicate payload double-counted")
	}
}

func TestReceiverGBNDropsOOO(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 1, GoBackN, &sink)
	r := n.OpenReceiver(1, 0, 7)
	r.onData(data(1, 0, 1, 1, 1000))
	r.onData(data(1, 0, 1, 2, 1000))
	if r.Stats().GBNDrops != 2 {
		t.Fatalf("GBN drops = %d", r.Stats().GBNDrops)
	}
	if len(sink.byKind(packet.Nack)) != 1 {
		t.Fatal("GBN should NACK once per ePSN")
	}
	// The dropped packets are NOT buffered: delivering 0 advances only to 1.
	r.onData(data(1, 0, 1, 0, 1000))
	if r.EPSN() != 1 {
		t.Fatalf("GBN ePSN = %d, want 1", r.EPSN())
	}
}

func TestReceiverIdealNeverNacks(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 1, Ideal, &sink)
	r := n.OpenReceiver(1, 0, 7)
	for _, psn := range []packet.PSN{3, 1, 2, 7, 5} {
		r.onData(data(1, 0, 1, psn, 1000))
	}
	if len(sink.byKind(packet.Nack)) != 0 {
		t.Fatal("ideal receiver NACKed")
	}
	r.onData(data(1, 0, 1, 0, 1000))
	if r.EPSN() != 4 {
		t.Fatalf("ideal ePSN = %d, want 4", r.EPSN())
	}
}

func TestReceiverCNPRateLimit(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := New(e, 1, Config{LineRate: 100e9, DisableCC: true, CNPInterval: 50 * sim.Microsecond}, sink.inject)
	r := n.OpenReceiver(1, 0, 7)
	mk := func(psn packet.PSN) *packet.Packet {
		p := data(1, 0, 1, psn, 1000)
		p.ECN = true
		return p
	}
	r.onData(mk(0))
	r.onData(mk(1))                                                // same instant: suppressed
	e.At(sim.Time(10*sim.Microsecond), func() { r.onData(mk(2)) }) // inside interval
	e.At(sim.Time(60*sim.Microsecond), func() { r.onData(mk(3)) }) // outside
	e.RunAll()
	if got := len(sink.byKind(packet.Cnp)); got != 2 {
		t.Fatalf("CNPs = %d, want 2", got)
	}
}

func TestReceiverOnDeliverCallback(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 1, SelectiveRepeat, &sink)
	r := n.OpenReceiver(1, 0, 7)
	var delivered []packet.PSN
	r.OnDeliver = func(_ sim.Time, psn packet.PSN, _ int) { delivered = append(delivered, psn) }
	r.onData(data(1, 0, 1, 1, 1000))
	r.onData(data(1, 0, 1, 0, 1000))
	if len(delivered) != 2 || delivered[0] != 0 || delivered[1] != 1 {
		t.Fatalf("delivered = %v (must be in order)", delivered)
	}
}

// --- SenderQP unit tests ---

func TestSenderPacketization(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 0, SelectiveRepeat, &sink)
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(3500, nil) // MTU 1500: 1500+1500+500
	runFor(e, 100*sim.Microsecond)
	ds := sink.byKind(packet.Data)
	if len(ds) != 3 {
		t.Fatalf("packets = %d", len(ds))
	}
	if ds[0].Payload != 1500 || ds[1].Payload != 1500 || ds[2].Payload != 500 {
		t.Fatalf("payloads = %d,%d,%d", ds[0].Payload, ds[1].Payload, ds[2].Payload)
	}
	for i, p := range ds {
		if p.PSN != packet.PSN(i) {
			t.Fatalf("psn sequence broken at %d", i)
		}
		if p.Retransmit {
			t.Fatal("fresh packet marked retransmit")
		}
	}
}

func TestSenderPacingGaps(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	var times []sim.Time
	n := New(e, 0, Config{LineRate: 100e9, DisableCC: true}, func(p *packet.Packet) {
		sink.inject(p)
		times = append(times, e.Now())
	})
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(4500, nil) // 3 full packets
	runFor(e, 100*sim.Microsecond)
	gap := sim.TransmitTime(1500+packet.HeaderBytes, 100e9)
	for i := 1; i < len(times); i++ {
		if got := times[i].Sub(times[i-1]); got != gap {
			t.Fatalf("pacing gap %d = %v, want %v", i, got, gap)
		}
	}
}

func TestSenderCompletionOnCumAck(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 0, SelectiveRepeat, &sink)
	s := n.OpenSender(1, 1, 7)
	done := 0
	s.SendMessage(3000, func() { done++ })
	runFor(e, 100*sim.Microsecond)
	if done != 0 {
		t.Fatal("completed without acks")
	}
	s.onAck(&packet.Packet{Kind: packet.Ack, QP: 1, PSN: 1})
	if done != 0 {
		t.Fatal("completed on partial ack")
	}
	s.onAck(&packet.Packet{Kind: packet.Ack, QP: 1, PSN: 2})
	if done != 1 {
		t.Fatal("not completed on full ack")
	}
	if s.Stats().GoodputBytes != 3000 {
		t.Fatalf("goodput = %d", s.Stats().GoodputBytes)
	}
	if s.Outstanding() {
		t.Fatal("still outstanding after full ack")
	}
}

func TestSenderNackRetransmitsOnlyEPSN(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 0, SelectiveRepeat, &sink)
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(6000, nil) // PSNs 0..3
	runFor(e, 100*sim.Microsecond)
	sink.pkts = nil
	s.onNack(&packet.Packet{Kind: packet.Nack, QP: 1, PSN: 2})
	runFor(e, 100*sim.Microsecond)
	ds := sink.byKind(packet.Data)
	if len(ds) != 1 || ds[0].PSN != 2 || !ds[0].Retransmit {
		t.Fatalf("retransmissions = %+v", ds)
	}
	if s.Stats().Retransmits != 1 {
		t.Fatalf("retransmit count = %d", s.Stats().Retransmits)
	}
	// NACK(2) also acked PSNs 0,1.
	if s.Stats().GoodputBytes != 3000 {
		t.Fatalf("goodput = %d", s.Stats().GoodputBytes)
	}
}

func TestSenderEachNackRetransmitsImmediately(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 0, SelectiveRepeat, &sink)
	s := n.OpenSender(1, 1, 7)
	// A long message keeps the pacer busy; NACK retransmissions bypass it
	// and go out immediately, once per NACK (the NIC is stateless here).
	s.SendMessage(150000, nil)
	runFor(e, 2*sim.Microsecond)
	before := len(sink.byKind(packet.Data))
	s.onNack(&packet.Packet{Kind: packet.Nack, QP: 1, PSN: 0})
	s.onNack(&packet.Packet{Kind: packet.Nack, QP: 1, PSN: 0})
	rtx := 0
	for _, p := range sink.byKind(packet.Data)[before:] {
		if p.Retransmit && p.PSN == 0 {
			rtx++
		}
	}
	if rtx != 2 {
		t.Fatalf("retransmissions = %d, want one per NACK", rtx)
	}
	// An acked PSN is never retransmitted.
	s.onAck(&packet.Packet{Kind: packet.Ack, QP: 1, PSN: 5})
	before = len(sink.byKind(packet.Data))
	s.onNack(&packet.Packet{Kind: packet.Nack, QP: 1, PSN: 3})
	if got := len(sink.byKind(packet.Data)); got != before {
		t.Fatal("retransmitted an already-acked PSN")
	}
}

func TestSenderGBNRewind(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 0, GoBackN, &sink)
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(6000, nil) // PSNs 0..3
	runFor(e, 100*sim.Microsecond)
	sink.pkts = nil
	s.onNack(&packet.Packet{Kind: packet.Nack, QP: 1, PSN: 1})
	runFor(e, 100*sim.Microsecond)
	ds := sink.byKind(packet.Data)
	if len(ds) != 3 {
		t.Fatalf("GBN resent %d packets, want 3 (PSNs 1..3)", len(ds))
	}
	for i, p := range ds {
		if p.PSN != packet.PSN(1+i) || !p.Retransmit {
			t.Fatalf("GBN rewind packet %d = %+v", i, p)
		}
	}
}

func TestSenderRTORetransmit(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := New(e, 0, Config{LineRate: 100e9, DisableCC: true, RTO: 100 * sim.Microsecond}, sink.inject)
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(1500, nil)
	runFor(e, 350*sim.Microsecond) // nothing acked; RTO fires a few times
	if s.Stats().Timeouts == 0 {
		t.Fatal("no timeout fired")
	}
	ds := sink.byKind(packet.Data)
	if len(ds) < 2 {
		t.Fatal("timeout did not retransmit")
	}
	if !ds[1].Retransmit || ds[1].PSN != 0 {
		t.Fatalf("rto packet = %+v", ds[1])
	}
}

func TestSenderRTOStopsWhenAcked(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := New(e, 0, Config{LineRate: 100e9, DisableCC: true, RTO: 100 * sim.Microsecond}, sink.inject)
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(1500, nil)
	e.Run(sim.Time(50 * sim.Microsecond))
	s.onAck(&packet.Packet{Kind: packet.Ack, QP: 1, PSN: 1})
	e.RunAll()
	if s.Stats().Timeouts != 0 {
		t.Fatalf("timeouts = %d after prompt ack", s.Stats().Timeouts)
	}
}

func TestSenderNackTriggersRateCut(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := New(e, 0, Config{LineRate: 100e9}, sink.inject) // CC enabled
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(15000, nil)
	e.Run(sim.Time(2 * sim.Microsecond))
	r0 := s.Rate()
	s.onNack(&packet.Packet{Kind: packet.Nack, QP: 1, PSN: 0})
	if s.Rate() >= r0 {
		t.Fatalf("rate not cut on NACK: %d -> %d", r0, s.Rate())
	}
	if s.CC().Stats().Nacks != 1 {
		t.Fatal("cc did not see the NACK")
	}
}

func TestSenderIdealIgnoresNackForCC(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := New(e, 0, Config{LineRate: 100e9, Transport: Ideal}, sink.inject)
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(15000, nil)
	e.Run(sim.Time(2 * sim.Microsecond))
	r0 := s.Rate()
	s.onNack(&packet.Packet{Kind: packet.Nack, QP: 1, PSN: 0})
	if s.Rate() != r0 {
		t.Fatal("ideal transport cut rate on NACK")
	}
}

func TestSenderCnpCutsRate(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := New(e, 0, Config{LineRate: 100e9}, sink.inject)
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(15000, nil)
	e.Run(sim.Time(2 * sim.Microsecond))
	r0 := s.Rate()
	s.onCnp(&packet.Packet{Kind: packet.Cnp, QP: 1})
	if s.Rate() >= r0 {
		t.Fatal("CNP did not cut rate")
	}
}

func TestSenderMultipleMessagesFIFO(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 0, SelectiveRepeat, &sink)
	s := n.OpenSender(1, 1, 7)
	var order []int
	s.SendMessage(1500, func() { order = append(order, 1) })
	s.SendMessage(1500, func() { order = append(order, 2) })
	runFor(e, 100*sim.Microsecond)
	s.onAck(&packet.Packet{Kind: packet.Ack, QP: 1, PSN: 2})
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("completion order = %v", order)
	}
}

func TestSendMessageZeroPanics(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 0, SelectiveRepeat, &sink)
	s := n.OpenSender(1, 1, 7)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.SendMessage(0, nil)
}

func TestDuplicateQPPanics(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 0, SelectiveRepeat, &sink)
	n.OpenSender(1, 1, 7)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.OpenSender(1, 2, 8)
}

func TestNICDispatch(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 0, SelectiveRepeat, &sink)
	s := n.OpenSender(1, 1, 7)
	r := n.OpenReceiver(2, 1, 9)
	s.SendMessage(1500, nil)
	runFor(e, 100*sim.Microsecond)
	n.HandlePacket(&packet.Packet{Kind: packet.Ack, QP: 1, PSN: 1})
	if s.Stats().AcksRx != 1 {
		t.Fatal("ack not dispatched")
	}
	n.HandlePacket(data(2, 1, 0, 0, 500))
	if r.Stats().DataRx != 1 {
		t.Fatal("data not dispatched")
	}
	// Unknown QP: silently ignored.
	n.HandlePacket(data(99, 1, 0, 0, 500))
	n.HandlePacket(&packet.Packet{Kind: packet.Cnp, QP: 42})
}

func TestTransportString(t *testing.T) {
	if SelectiveRepeat.String() != "nic-sr" || GoBackN.String() != "gbn" || Ideal.String() != "ideal" {
		t.Fatal("transport names")
	}
}

func TestReceiverAckCoalescing(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := New(e, 1, Config{LineRate: 100e9, DisableCC: true, AckEvery: 4, RTO: sim.Second}, sink.inject)
	r := n.OpenReceiver(1, 0, 7)
	for psn := packet.PSN(0); psn < 8; psn++ {
		r.onData(data(1, 0, 1, psn, 1000))
	}
	// 8 in-order arrivals, ack every 4th: exactly 2 ACKs.
	acks := sink.byKind(packet.Ack)
	if len(acks) != 2 {
		t.Fatalf("acks = %d, want 2", len(acks))
	}
	if acks[0].PSN != 4 || acks[1].PSN != 8 {
		t.Fatalf("ack PSNs = %d,%d", acks[0].PSN, acks[1].PSN)
	}
}

func TestReceiverAckCoalescingFlushesOnOOO(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := New(e, 1, Config{LineRate: 100e9, DisableCC: true, AckEvery: 100, RTO: sim.Second}, sink.inject)
	r := n.OpenReceiver(1, 0, 7)
	r.onData(data(1, 0, 1, 0, 1000))
	r.onData(data(1, 0, 1, 2, 1000)) // OOO: NACK(1)
	r.onData(data(1, 0, 1, 1, 1000)) // fills hole; bitmap drains
	// The hole-filling arrival must ACK immediately despite coalescing so
	// the sender learns about the jump.
	acks := sink.byKind(packet.Ack)
	if len(acks) == 0 || acks[len(acks)-1].PSN != 3 {
		t.Fatalf("acks = %v", acks)
	}
}

func TestSenderMessageSmallerThanMTU(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 0, SelectiveRepeat, &sink)
	s := n.OpenSender(1, 1, 7)
	done := false
	s.SendMessage(100, func() { done = true })
	runFor(e, 10*sim.Microsecond)
	ds := sink.byKind(packet.Data)
	if len(ds) != 1 || ds[0].Payload != 100 {
		t.Fatalf("packets = %+v", ds)
	}
	s.onAck(&packet.Packet{Kind: packet.Ack, QP: 1, PSN: 1})
	if !done {
		t.Fatal("not completed")
	}
	if s.Stats().GoodputBytes != 100 {
		t.Fatalf("goodput = %d", s.Stats().GoodputBytes)
	}
}

func TestSenderTailSizesAcrossMessages(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 0, SelectiveRepeat, &sink)
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(2000, nil) // 1500 + 500 (PSNs 0,1)
	s.SendMessage(700, nil)  // 700        (PSN 2)
	runFor(e, 10*sim.Microsecond)
	ds := sink.byKind(packet.Data)
	if len(ds) != 3 || ds[0].Payload != 1500 || ds[1].Payload != 500 || ds[2].Payload != 700 {
		t.Fatalf("payloads = %+v", ds)
	}
	// Retransmission of a tail packet reproduces its size.
	sink.pkts = nil
	s.onNack(&packet.Packet{Kind: packet.Nack, QP: 1, PSN: 1})
	rtx := sink.byKind(packet.Data)
	if len(rtx) != 1 || rtx[0].Payload != 500 || !rtx[0].Retransmit {
		t.Fatalf("rtx = %+v", rtx)
	}
}

func TestSenderGBNTimeoutRewinds(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := New(e, 0, Config{LineRate: 100e9, DisableCC: true, Transport: GoBackN, RTO: 100 * sim.Microsecond}, sink.inject)
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(4500, nil) // PSNs 0..2
	runFor(e, 150*sim.Microsecond)
	if s.Stats().Timeouts == 0 {
		t.Fatal("no timeout")
	}
	ds := sink.byKind(packet.Data)
	// 3 originals + at least 3 rewound retransmissions.
	if len(ds) < 6 {
		t.Fatalf("packets = %d", len(ds))
	}
	if !ds[3].Retransmit || ds[3].PSN != 0 {
		t.Fatalf("rewind did not restart at 0: %+v", ds[3])
	}
}

func TestSenderRateNeverExceedsLine(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := New(e, 0, Config{LineRate: 100e9}, sink.inject) // CC on
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(1<<20, nil)
	runFor(e, 200*sim.Microsecond)
	if s.Rate() > 100e9 {
		t.Fatalf("rate %d above line", s.Rate())
	}
}

func TestNackForAckedRangeHarmless(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 0, SelectiveRepeat, &sink)
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(15000, nil)
	runFor(e, 10*sim.Microsecond)
	s.onAck(&packet.Packet{Kind: packet.Ack, QP: 1, PSN: 10})
	sink.pkts = nil
	// A stale NACK below the ack point: no retransmission, no crash.
	s.onNack(&packet.Packet{Kind: packet.Nack, QP: 1, PSN: 3})
	if got := len(sink.byKind(packet.Data)); got != 0 {
		t.Fatalf("stale NACK retransmitted %d packets", got)
	}
}

// --- RTO backoff (fault tolerance hardening) ---

func TestRTOBackoffDefaultsOff(t *testing.T) {
	cfg := Config{LineRate: 100e9}.withDefaults()
	if cfg.RTOBackoff != 1 {
		t.Fatalf("default backoff = %f", cfg.RTOBackoff)
	}
	if cfg.RTOMax != 0 {
		t.Fatalf("default RTOMax = %v without backoff", cfg.RTOMax)
	}
	boff := Config{LineRate: 100e9, RTO: sim.Millisecond, RTOBackoff: 2}.withDefaults()
	if boff.RTOMax != 100*sim.Millisecond {
		t.Fatalf("backoff RTOMax default = %v", boff.RTOMax)
	}
}

func TestRTOExponentialBackoffAndCap(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := New(e, 0, Config{
		LineRate: 100e9, Transport: SelectiveRepeat, DisableCC: true,
		RTO: 100 * sim.Microsecond, RTOBackoff: 2, RTOMax: 400 * sim.Microsecond,
	}, sink.inject)
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(1000, nil)
	// No ACKs ever arrive: timeouts fire at t0+100us, then backed off by 2x
	// each time (200, 400) until the 400us cap holds (800 -> 400).
	var fired []sim.Time
	prevTimeouts := uint64(0)
	for i := 0; i < 5; i++ {
		deadline := s.rto.Deadline()
		e.Run(deadline)
		if s.Stats().Timeouts != prevTimeouts+1 {
			t.Fatalf("timeout %d did not fire (total %d)", i, s.Stats().Timeouts)
		}
		prevTimeouts = s.Stats().Timeouts
		fired = append(fired, e.Now())
	}
	gaps := make([]sim.Duration, 0, 4)
	for i := 1; i < len(fired); i++ {
		gaps = append(gaps, fired[i].Sub(fired[i-1]))
	}
	want := []sim.Duration{200 * sim.Microsecond, 400 * sim.Microsecond, 400 * sim.Microsecond, 400 * sim.Microsecond}
	for i, w := range want {
		if gaps[i] != w {
			t.Fatalf("gap %d = %v, want %v (gaps %v)", i, gaps[i], w, gaps)
		}
	}
}

func TestRTOBackoffResetsOnAckProgress(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := New(e, 0, Config{
		LineRate: 100e9, Transport: SelectiveRepeat, DisableCC: true,
		RTO: 100 * sim.Microsecond, RTOBackoff: 2, RTOMax: sim.Second,
	}, sink.inject)
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(10000, nil)
	runFor(e, 10*sim.Microsecond)
	// Two barren timeouts raise the streak.
	e.Run(s.rto.Deadline())
	e.Run(s.rto.Deadline())
	if s.rtoStreak != 2 {
		t.Fatalf("streak = %d", s.rtoStreak)
	}
	// Partial ack progress resets the streak and re-arms at the base RTO.
	s.onAck(&packet.Packet{Kind: packet.Ack, QP: 1, PSN: 2})
	if s.rtoStreak != 0 {
		t.Fatalf("streak after ack = %d", s.rtoStreak)
	}
	if got := s.rto.Deadline().Sub(e.Now()); got != 100*sim.Microsecond {
		t.Fatalf("re-armed RTO = %v, want base 100us", got)
	}
}

func TestRTOFixedWithoutBackoff(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := New(e, 0, Config{
		LineRate: 100e9, Transport: SelectiveRepeat, DisableCC: true,
		RTO: 100 * sim.Microsecond,
	}, sink.inject)
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(1000, nil)
	var fired []sim.Time
	for i := 0; i < 3; i++ {
		e.Run(s.rto.Deadline())
		fired = append(fired, e.Now())
	}
	for i := 1; i < len(fired); i++ {
		if got := fired[i].Sub(fired[i-1]); got != 100*sim.Microsecond {
			t.Fatalf("gap %d = %v, want fixed 100us", i, got)
		}
	}
}
