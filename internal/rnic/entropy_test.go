package rnic

import (
	"fmt"
	"testing"

	"themis/internal/lb"
	"themis/internal/packet"
	"themis/internal/sim"
)

// recordingEntropy is a fake EntropySource that logs the exact call sequence
// the sender drives, so the tests can pin the feedback-hook orderings.
type recordingEntropy struct {
	events []string
}

func (r *recordingEntropy) Pick(psn packet.PSN) uint16 {
	r.events = append(r.events, fmt.Sprintf("pick %d", psn))
	return 9000 + uint16(psn.Mod(16))
}
func (r *recordingEntropy) OnAck(psn packet.PSN) {
	r.events = append(r.events, fmt.Sprintf("ack %d", psn))
}
func (r *recordingEntropy) OnNack(psn packet.PSN) {
	r.events = append(r.events, fmt.Sprintf("nack %d", psn))
}
func (r *recordingEntropy) OnTimeout()   { r.events = append(r.events, "timeout") }
func (r *recordingEntropy) Name() string { return "recording" }

func newEntropyNIC(e *sim.Engine, sink *capture, rec *recordingEntropy, rto sim.Duration) *NIC {
	return New(e, 0, Config{
		LineRate:  100e9,
		Transport: SelectiveRepeat,
		DisableCC: true,
		RTO:       rto,
		NewEntropy: func(qp packet.QPID, base uint16) lb.EntropySource {
			return rec
		},
	}, sink.inject)
}

// TestEntropyHookStampsEveryDataPacket: with the hook wired, every data
// (re)transmission carries the entropy the source picked for its PSN — not
// the flow's home sport.
func TestEntropyHookStampsEveryDataPacket(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	rec := &recordingEntropy{}
	n := newEntropyNIC(e, &sink, rec, sim.Second)
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(5*1500, nil)
	runFor(e, sim.Millisecond)
	datas := sink.byKind(packet.Data)
	if len(datas) == 0 {
		t.Fatal("no data packets sent")
	}
	for _, p := range datas {
		if want := 9000 + uint16(p.PSN.Mod(16)); p.SPort != want {
			t.Fatalf("psn %d stamped sport %d, want picked entropy %d", p.PSN, p.SPort, want)
		}
	}
	if got, want := rec.events[0], "pick 0"; got != want {
		t.Fatalf("first event %q, want %q", got, want)
	}
}

// TestEntropyHookAckPerPSN: a cumulative ACK reports every newly-covered PSN
// to the source, in PSN order — the recycle path.
func TestEntropyHookAckPerPSN(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	rec := &recordingEntropy{}
	n := newEntropyNIC(e, &sink, rec, sim.Second)
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(4*1500, nil)
	runFor(e, sim.Millisecond)
	rec.events = nil
	s.onAck(&packet.Packet{Kind: packet.Ack, PSN: 3})
	want := []string{"ack 0", "ack 1", "ack 2"}
	if len(rec.events) != len(want) {
		t.Fatalf("events = %v, want %v", rec.events, want)
	}
	for i, w := range want {
		if rec.events[i] != w {
			t.Fatalf("event %d = %q, want %q (%v)", i, rec.events[i], w, rec.events)
		}
	}
}

// TestEntropyHookNackEvictsBeforeRepick pins the eviction ordering: the NACK
// feedback reaches the source before the immediate retransmission re-picks,
// so the retransmit itself already avoids the suspect entropy.
func TestEntropyHookNackEvictsBeforeRepick(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	rec := &recordingEntropy{}
	n := newEntropyNIC(e, &sink, rec, sim.Second)
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(4*1500, nil)
	runFor(e, sim.Millisecond)
	rec.events = nil
	// NACK for ePSN 2: PSNs 0-1 ack, then evict 2, then re-pick 2 for the
	// datapath retransmission.
	s.onNack(&packet.Packet{Kind: packet.Nack, PSN: 2})
	want := []string{"ack 0", "ack 1", "nack 2", "pick 2"}
	if len(rec.events) != len(want) {
		t.Fatalf("events = %v, want %v", rec.events, want)
	}
	for i, w := range want {
		if rec.events[i] != w {
			t.Fatalf("event %d = %q, want %q (%v)", i, rec.events[i], w, rec.events)
		}
	}
}

// TestEntropyHookTimeoutFlush: an RTO expiry with outstanding data reports
// OnTimeout — the whole-cache staleness signal.
func TestEntropyHookTimeoutFlush(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	rec := &recordingEntropy{}
	n := newEntropyNIC(e, &sink, rec, 10*sim.Microsecond)
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(1500, nil)
	runFor(e, 50*sim.Microsecond) // no ACK path: the RTO must fire
	if s.Stats().Timeouts == 0 {
		t.Fatal("no timeout fired")
	}
	found := false
	for _, ev := range rec.events {
		if ev == "timeout" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no timeout event: %v", rec.events)
	}
}

// TestEntropyUnsetKeepsFlowSport: the hook is opt-in — without NewEntropy the
// sender stamps the flow's home sport on every packet, preserving the legacy
// single-path behavior byte-for-byte.
func TestEntropyUnsetKeepsFlowSport(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	n := newTestNIC(e, 0, SelectiveRepeat, &sink)
	s := n.OpenSender(1, 1, 7)
	s.SendMessage(4*1500, nil)
	runFor(e, sim.Millisecond)
	for _, p := range sink.byKind(packet.Data) {
		if p.SPort != 7 {
			t.Fatalf("psn %d stamped sport %d, want flow sport 7", p.PSN, p.SPort)
		}
	}
}

// TestREPSWiredIntoSender: a real REPS cache behind the hook — the cold-start
// window spreads entropy across values and a full ACK recycles them, the
// integration counterpart of the unit orderings above.
func TestREPSWiredIntoSender(t *testing.T) {
	e := sim.NewEngine(1)
	var sink capture
	var reps *lb.REPS
	n := New(e, 0, Config{
		LineRate:  100e9,
		Transport: SelectiveRepeat,
		DisableCC: true,
		RTO:       sim.Second,
		NewEntropy: func(qp packet.QPID, base uint16) lb.EntropySource {
			reps = lb.NewREPS(base, 8)
			return reps
		},
	}, sink.inject)
	s := n.OpenSender(1, 1, 1000)
	s.SendMessage(6*1500, nil)
	runFor(e, sim.Millisecond)
	if reps == nil {
		t.Fatal("factory never called")
	}
	// Cold cache: the first window explores distinct values upward of base.
	seen := map[uint16]bool{}
	for _, p := range sink.byKind(packet.Data) {
		seen[p.SPort] = true
	}
	if len(seen) < 2 {
		t.Fatalf("REPS cold start did not spread entropy: %v", seen)
	}
	// ACK everything: the entropy recycles into the cache.
	s.onAck(&packet.Packet{Kind: packet.Ack, PSN: 6})
	if reps.Cached() == 0 {
		t.Fatal("nothing recycled after full ACK")
	}
	if st := reps.Stats(); st.Explored == 0 || st.Recycled != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
