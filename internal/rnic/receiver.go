package rnic

import (
	"themis/internal/packet"
	"themis/internal/sim"
)

// ReceiverStats counts receiver-side events.
type ReceiverStats struct {
	DataRx     uint64 // data packets received
	InOrder    uint64 // arrivals matching ePSN
	OutOfOrder uint64 // arrivals with PSN > ePSN
	Duplicates uint64 // arrivals with PSN < ePSN
	GBNDrops   uint64 // OOO packets discarded by Go-Back-N
	AcksTx     uint64
	NacksTx    uint64
	CnpsTx     uint64
	BytesRecv  uint64 // payload bytes delivered in order (each byte once)
}

// ReceiverQP is the receive half of a queue pair, implementing the NIC-SR
// contract of §2.2 (or GBN / the ideal oracle).
type ReceiverQP struct {
	nic   *NIC
	qp    packet.QPID
	src   packet.NodeID
	sport uint16 // the flow's forward-direction sport (reverse control reuses it)

	epsn   packet.PSN
	bitmap map[packet.PSN]int // OOO buffer: PSN -> payload size (SelectiveRepeat/Ideal)

	// NIC-SR NACK duplication guard: at most one NACK per ePSN value.
	nackedEPSN packet.PSN
	nackedSet  bool

	inOrderStreak int // for ACK coalescing

	lastCNP     sim.Time
	cnpEverSent bool

	stats ReceiverStats

	// OnDeliver, if set, observes every in-order payload delivery (psn,
	// payload) as ePSN advances.
	OnDeliver func(t sim.Time, psn packet.PSN, payload int)
}

func newReceiverQP(n *NIC, qp packet.QPID, src packet.NodeID, sport uint16) *ReceiverQP {
	return &ReceiverQP{
		nic:    n,
		qp:     qp,
		src:    src,
		sport:  sport,
		bitmap: make(map[packet.PSN]int),
	}
}

// QP returns the queue pair ID.
func (r *ReceiverQP) QP() packet.QPID { return r.qp }

// EPSN returns the expected PSN.
func (r *ReceiverQP) EPSN() packet.PSN { return r.epsn }

// Stats returns a snapshot of the receiver counters.
func (r *ReceiverQP) Stats() ReceiverStats { return r.stats }

// onData processes a data arrival.
func (r *ReceiverQP) onData(p *packet.Packet) {
	r.stats.DataRx++
	if p.ECN {
		r.maybeSendCNP(p.SPort)
	}
	switch {
	case p.PSN == r.epsn:
		r.stats.InOrder++
		r.deliver(p.PSN, p.Payload)
		r.epsn = r.epsn.Next()
		// Drain the OOO bitmap: advance to the smallest missing PSN.
		drained := 0
		for {
			payload, ok := r.bitmap[r.epsn]
			if !ok {
				break
			}
			delete(r.bitmap, r.epsn)
			r.deliver(r.epsn, payload)
			r.epsn = r.epsn.Next()
			drained++
		}
		r.inOrderStreak++
		// ACK coalescing applies only to smooth in-order streams: a hole
		// fill (drained > 0) or a still-pending bitmap acks immediately so
		// the sender learns about the ePSN jump.
		if r.inOrderStreak >= r.nic.cfg.AckEvery || drained > 0 || len(r.bitmap) > 0 {
			r.inOrderStreak = 0
			r.sendAck()
		}

	case p.PSN.After(r.epsn):
		r.stats.OutOfOrder++
		switch r.nic.cfg.Transport {
		case SelectiveRepeat:
			r.bitmap[p.PSN] = p.Payload
			// §2.2: the NIC assumes the ePSN packet was lost and NACKs —
			// but generates at most one NACK per ePSN value.
			if !r.nackedSet || r.nackedEPSN != r.epsn {
				r.nackedEPSN = r.epsn
				r.nackedSet = true
				r.sendNack()
			}
		case GoBackN:
			// OOO packets are dropped; NACK once per ePSN.
			r.stats.GBNDrops++
			if !r.nackedSet || r.nackedEPSN != r.epsn {
				r.nackedEPSN = r.epsn
				r.nackedSet = true
				r.sendNack()
			}
		case Ideal:
			// The oracle accepts OOO silently; timeouts recover real loss.
			r.bitmap[p.PSN] = p.Payload
		}

	default: // p.PSN < r.epsn
		r.stats.Duplicates++
		// Duplicate (a spurious retransmission arriving after recovery):
		// re-ACK so the sender's cumulative state advances.
		r.sendAck()
	}
}

func (r *ReceiverQP) deliver(psn packet.PSN, payload int) {
	r.stats.BytesRecv += uint64(payload)
	if r.OnDeliver != nil {
		r.OnDeliver(r.nic.engine.Now(), psn, payload)
	}
}

func (r *ReceiverQP) sendAck() {
	r.stats.AcksTx++
	p := r.nic.cfg.Pool.Get()
	p.Kind = packet.Ack
	p.Src = r.nic.id
	p.Dst = r.src
	p.QP = r.qp
	p.SPort = r.sport
	p.DPort = 4791
	p.PSN = r.epsn
	r.nic.inject(p)
}

func (r *ReceiverQP) sendNack() {
	r.stats.NacksTx++
	p := r.nic.cfg.Pool.Get()
	p.Kind = packet.Nack
	p.Src = r.nic.id
	p.Dst = r.src
	p.QP = r.qp
	p.SPort = r.sport
	p.DPort = 4791
	p.PSN = r.epsn // NACKs carry only the ePSN (§2.2)
	r.nic.inject(p)
}

// maybeSendCNP rate-limits congestion notifications to one per CNPInterval.
// The CNP echoes the marked data packet's source-port entropy so a spraying
// sender can attribute the congestion to the path it stamped (per-path
// DCQCN); for non-spraying flows the data entropy equals the flow sport, so
// the echo is indistinguishable from the historical constant stamp.
func (r *ReceiverQP) maybeSendCNP(entropy uint16) {
	now := r.nic.engine.Now()
	if r.cnpEverSent && now.Sub(r.lastCNP) < r.nic.cfg.CNPInterval {
		return
	}
	r.lastCNP = now
	r.cnpEverSent = true
	r.stats.CnpsTx++
	p := r.nic.cfg.Pool.Get()
	p.Kind = packet.Cnp
	p.Src = r.nic.id
	p.Dst = r.src
	p.QP = r.qp
	p.SPort = entropy
	p.DPort = 4791
	r.nic.inject(p)
}
