package rnic

import (
	"themis/internal/cc"
	"themis/internal/lb"
	"themis/internal/packet"
	"themis/internal/sim"
)

// SenderStats counts sender-side events.
type SenderStats struct {
	DataPackets  uint64 // data packets injected (including retransmissions)
	Retransmits  uint64 // retransmitted data packets
	BytesSent    uint64 // payload bytes injected (incl. retransmissions)
	GoodputBytes uint64 // payload bytes acked (each byte counted once)
	AcksRx       uint64
	NacksRx      uint64
	CnpsRx       uint64
	Timeouts     uint64
	Completions  uint64
}

// message tracks one posted send.
type message struct {
	endPSN   packet.PSN // PSN one past the last packet of the message
	size     int64
	postedAt sim.Time
	done     func()
}

// SenderQP is the send half of a queue pair: packetization, rate pacing,
// retransmission and completion tracking.
type SenderQP struct {
	nic   *NIC
	qp    packet.QPID
	dst   packet.NodeID
	sport uint16

	dcqcn *cc.DCQCN

	// entropy, when non-nil (Config.NewEntropy), chooses the source port of
	// every data (re)transmission and receives the transport feedback
	// (ACK/NACK/RTO) — the REPS-style sender-side spraying hook.
	entropy lb.EntropySource

	// PSN space. All comparisons go through packet.PSN's serial-number
	// arithmetic so the window logic survives the 24-bit wrap.
	nextPSN  packet.PSN         // next fresh PSN to assign (message packetization)
	sendPSN  packet.PSN         // next PSN to transmit (rewinds under GBN)
	maxSent  packet.PSN         // one past the highest PSN ever transmitted
	cumAck   packet.PSN         // everything below is acknowledged
	lastSize map[packet.PSN]int // payload size per PSN for tail packets (non-MTU)

	// Retransmit queue (SelectiveRepeat/Ideal): PSNs to resend, FIFO.
	rtxQueue   []packet.PSN
	rtxPending map[packet.PSN]bool

	messages []message

	// Pacing.
	nextSendAt sim.Time
	pumpEv     *sim.Event
	rto        *sim.Timer
	rtoStreak  int // consecutive timeouts without ack progress (backoff exponent)

	stats SenderStats

	// OnSend, if set, observes every injected data packet (after stamping).
	OnSend func(t sim.Time, psn packet.PSN, payload int, retransmit bool)
	// OnComplete, if set, observes every completed message.
	OnComplete func(t sim.Time, size int64)
}

func newSenderQP(n *NIC, qp packet.QPID, dst packet.NodeID, sport uint16) *SenderQP {
	s := &SenderQP{
		nic:        n,
		qp:         qp,
		dst:        dst,
		sport:      sport,
		lastSize:   make(map[packet.PSN]int),
		rtxPending: make(map[packet.PSN]bool),
	}
	if !n.cfg.DisableCC {
		s.dcqcn = cc.New(n.engine, n.cfg.CC)
	}
	if n.cfg.NewEntropy != nil {
		s.entropy = n.cfg.NewEntropy(qp, sport)
	}
	s.rto = sim.NewTimer(n.engine, s.onTimeout)
	return s
}

// QP returns the queue pair ID.
func (s *SenderQP) QP() packet.QPID { return s.qp }

// Dst returns the destination host.
func (s *SenderQP) Dst() packet.NodeID { return s.dst }

// SPort returns the flow's UDP source port.
func (s *SenderQP) SPort() uint16 { return s.sport }

// Stats returns a snapshot of the sender counters.
func (s *SenderQP) Stats() SenderStats { return s.stats }

// CC returns the DCQCN instance (nil when CC is disabled).
func (s *SenderQP) CC() *cc.DCQCN { return s.dcqcn }

// Rate returns the current pacing rate.
func (s *SenderQP) Rate() int64 {
	if s.dcqcn == nil {
		return s.nic.cfg.LineRate
	}
	return s.dcqcn.Rate()
}

// Outstanding reports whether sent-but-unacknowledged data exists. Unsent
// backlog does not count: the retransmission timer must never fire just
// because the pacer is slow.
func (s *SenderQP) Outstanding() bool { return s.cumAck.Before(s.maxSent) }

// curRTO returns the retransmission timeout with the current backoff applied:
// base RTO × RTOBackoff^streak, capped at RTOMax.
func (s *SenderQP) curRTO() sim.Duration {
	rto := s.nic.cfg.RTO
	if backoff := s.nic.cfg.RTOBackoff; backoff > 1 && s.rtoStreak > 0 {
		scaled := float64(rto)
		for i := 0; i < s.rtoStreak; i++ {
			scaled *= backoff
			if limit := s.nic.cfg.RTOMax; limit > 0 && scaled >= float64(limit) {
				return limit
			}
		}
		rto = sim.Duration(scaled)
	}
	return rto
}

// SendMessage posts a message of size bytes; done (optional) fires when the
// last byte is acknowledged.
func (s *SenderQP) SendMessage(size int64, done func()) {
	if size <= 0 {
		panic("rnic: SendMessage with non-positive size")
	}
	mtu := int64(s.nic.cfg.MTU)
	packets := (size + mtu - 1) / mtu
	tail := int(size - (packets-1)*mtu)
	endPSN := s.nextPSN.Add(int(packets))
	if tail != s.nic.cfg.MTU {
		s.lastSize[endPSN.Add(-1)] = tail
	}
	s.nextPSN = endPSN
	s.messages = append(s.messages, message{
		endPSN: endPSN, size: size, postedAt: s.nic.engine.Now(), done: done,
	})
	s.pump()
}

// payloadOf returns the payload size of a PSN.
func (s *SenderQP) payloadOf(psn packet.PSN) int {
	if sz, ok := s.lastSize[psn]; ok {
		return sz
	}
	return s.nic.cfg.MTU
}

// pump drives the pacing loop: inject the next packet when the pacer allows.
func (s *SenderQP) pump() {
	if s.pumpEv != nil {
		return
	}
	now := s.nic.engine.Now()
	if now < s.nextSendAt {
		s.pumpEv = s.nic.engine.At(s.nextSendAt, s.pumpFire)
		return
	}
	s.transmitNext()
}

func (s *SenderQP) pumpFire() {
	s.pumpEv = nil
	s.transmitNext()
}

// transmitNext sends one pacer burst (retransmissions first) and schedules
// the next pacing slot so the average rate matches the DCQCN rate.
func (s *SenderQP) transmitNext() {
	now := s.nic.engine.Now()
	burstLimit := s.nic.cfg.BurstBytes
	sentWire := 0
	for {
		psn, retrans, ok := s.pickNext()
		if !ok {
			break
		}
		payload := s.payloadOf(psn)
		p := s.nic.cfg.Pool.Get()
		p.Kind = packet.Data
		p.Src = s.nic.id
		p.Dst = s.dst
		p.QP = s.qp
		p.SPort = s.sport
		if s.entropy != nil {
			p.SPort = s.entropy.Pick(psn)
		}
		p.DPort = 4791
		p.PSN = psn
		p.Payload = payload
		p.Retransmit = retrans
		s.stats.DataPackets++
		s.stats.BytesSent += uint64(payload)
		if retrans {
			s.stats.Retransmits++
		}
		if s.dcqcn != nil {
			s.dcqcn.OnBytesSent(p.Size())
		}
		if s.OnSend != nil {
			s.OnSend(now, psn, payload, retrans)
		}
		s.nic.inject(p)
		sentWire += p.Size()
		if sentWire >= burstLimit {
			break // burstLimit <= 0 still sends exactly one packet
		}
	}
	if sentWire == 0 {
		return
	}
	if !s.rto.Active() {
		s.rto.Reset(s.curRTO())
	}
	// Pacing gap: the burst's on-wire time at the current rate.
	s.nextSendAt = now.Add(sim.TransmitTime(sentWire, s.Rate()))
	s.pumpEv = s.nic.engine.At(s.nextSendAt, s.pumpFire)
}

// pickNext chooses the next PSN to send.
func (s *SenderQP) pickNext() (psn packet.PSN, retransmit bool, ok bool) {
	// Retransmissions take priority (SelectiveRepeat/Ideal path).
	for len(s.rtxQueue) > 0 {
		psn = s.rtxQueue[0]
		s.rtxQueue = s.rtxQueue[1:]
		delete(s.rtxPending, psn)
		if !psn.Before(s.cumAck) { // still unacked
			return psn, true, true
		}
	}
	if s.sendPSN.Before(s.nextPSN) {
		psn = s.sendPSN
		s.sendPSN = s.sendPSN.Next()
		retransmit = psn.Before(s.maxSent) // only under a GBN rewind
		if s.maxSent.Before(s.sendPSN) {
			s.maxSent = s.sendPSN
		}
		return psn, retransmit, true
	}
	return 0, false, false
}

// onAck processes a cumulative acknowledgment.
func (s *SenderQP) onAck(p *packet.Packet) {
	s.stats.AcksRx++
	s.advanceCumAck(p.PSN)
}

// onNack processes a NACK: the ePSN it carries acknowledges everything
// below, requests retransmission of exactly that PSN, and (on commodity
// NICs) triggers a DCQCN rate cut.
func (s *SenderQP) onNack(p *packet.Packet) {
	s.stats.NacksRx++
	s.advanceCumAck(p.PSN)
	if s.entropy != nil {
		// Evict the failed path's entropy before any retransmission
		// re-picks, so the retransmit itself avoids the suspect path.
		s.entropy.OnNack(p.PSN)
	}
	switch s.nic.cfg.Transport {
	case SelectiveRepeat:
		// §2.2: upon receiving a NACK the RNIC retransmits the ePSN packet
		// right away — the hardware responds in the datapath, not behind
		// the pacer schedule. This immediacy is what makes spraying-induced
		// NACKs so wasteful.
		s.retransmitNow(p.PSN)
		if s.dcqcn != nil {
			s.dcqcn.OnNack()
		}
	case GoBackN:
		if p.PSN.Before(s.sendPSN) {
			s.sendPSN = p.PSN
		}
		if s.dcqcn != nil {
			s.dcqcn.OnNack()
		}
	case Ideal:
		// The oracle transport retransmits what was really lost but never
		// treats a NACK as congestion.
		s.queueRetransmit(p.PSN)
	}
	s.pump()
}

// retransmitNow injects one retransmission immediately, bypassing the pacer.
func (s *SenderQP) retransmitNow(psn packet.PSN) {
	if !psn.Before(s.maxSent) || psn.Before(s.cumAck) {
		return
	}
	payload := s.payloadOf(psn)
	p := s.nic.cfg.Pool.Get()
	p.Kind = packet.Data
	p.Src = s.nic.id
	p.Dst = s.dst
	p.QP = s.qp
	p.SPort = s.sport
	if s.entropy != nil {
		p.SPort = s.entropy.Pick(psn)
	}
	p.DPort = 4791
	p.PSN = psn
	p.Payload = payload
	p.Retransmit = true
	s.stats.DataPackets++
	s.stats.BytesSent += uint64(payload)
	s.stats.Retransmits++
	if s.dcqcn != nil {
		s.dcqcn.OnBytesSent(p.Size())
	}
	if s.OnSend != nil {
		s.OnSend(s.nic.engine.Now(), psn, payload, true)
	}
	s.nic.inject(p)
	if !s.rto.Active() {
		s.rto.Reset(s.curRTO())
	}
}

func (s *SenderQP) onCnp(p *packet.Packet) {
	s.stats.CnpsRx++
	if s.dcqcn == nil {
		return
	}
	if b := s.nic.cfg.CC.PathBuckets; b > 0 {
		// The CNP echoes the marked data packet's entropy (see
		// ReceiverQP.maybeSendCNP), so the congestion can be attributed to
		// the path bucket the sender stamped it with.
		s.dcqcn.OnCNPPath(int(p.SPort-s.sport) % b)
		return
	}
	s.dcqcn.OnCNP()
}

func (s *SenderQP) queueRetransmit(psn packet.PSN) {
	if !psn.Before(s.maxSent) || psn.Before(s.cumAck) || s.rtxPending[psn] {
		return
	}
	s.rtxPending[psn] = true
	s.rtxQueue = append(s.rtxQueue, psn)
}

// advanceCumAck moves the cumulative ack point, fires completions, and
// manages the RTO.
func (s *SenderQP) advanceCumAck(epsn packet.PSN) {
	if !epsn.After(s.cumAck) {
		return
	}
	for psn := s.cumAck; psn != epsn; psn = psn.Next() {
		s.stats.GoodputBytes += uint64(s.payloadOf(psn))
		if s.entropy != nil {
			s.entropy.OnAck(psn)
		}
	}
	// Drop tail-size records below the ack point. Deleting stale entries is
	// commutative, so the map iteration order cannot leak into the run.
	for psn := range s.lastSize { //lint:ordered commutative deletes of stale entries
		if psn.Before(epsn) {
			delete(s.lastSize, psn)
		}
	}
	s.cumAck = epsn
	s.rtoStreak = 0 // ack progress: the path works again, back to the base RTO
	now := s.nic.engine.Now()
	for len(s.messages) > 0 && !s.messages[0].endPSN.After(s.cumAck) {
		m := s.messages[0]
		s.messages = s.messages[1:]
		s.stats.Completions++
		s.nic.msgHist.Observe(now.Sub(m.postedAt).Microseconds())
		if s.OnComplete != nil {
			s.OnComplete(now, m.size)
		}
		if m.done != nil {
			m.done()
		}
	}
	if s.Outstanding() {
		s.rto.Reset(s.curRTO())
	} else {
		// Idle QP: no retransmission timer. DCQCN timers keep running and
		// self-quiesce once the rate recovers to line rate (and the alpha
		// estimate decays), so an idle QP soon stops generating events
		// while still recovering its rate between collective steps.
		s.rto.Stop()
	}
	s.pump()
}

// onTimeout retransmits from the ack point after silence.
func (s *SenderQP) onTimeout() {
	if !s.Outstanding() {
		return
	}
	s.stats.Timeouts++
	s.rtoStreak++
	if s.entropy != nil {
		s.entropy.OnTimeout()
	}
	switch s.nic.cfg.Transport {
	case SelectiveRepeat, Ideal:
		s.queueRetransmit(s.cumAck)
	case GoBackN:
		if s.cumAck.Before(s.sendPSN) {
			s.sendPSN = s.cumAck
		}
	}
	if s.dcqcn != nil && s.nic.cfg.Transport != Ideal {
		s.dcqcn.OnTimeout()
	}
	s.rto.Reset(s.curRTO())
	s.pump()
}

// Close quiesces the QP: the RTO timer, any scheduled pacer event, and the
// DCQCN rate machine are cancelled so a retired sender leaves nothing in the
// event queue. Posted-but-incomplete messages are abandoned without firing
// their completion callbacks (the churn workload closes QPs only after the
// transfer completes; an operator teardown mid-message models a torn-down
// connection, whose completions will never arrive anyway).
func (s *SenderQP) Close() {
	s.rto.Stop()
	if s.pumpEv != nil {
		s.nic.engine.Cancel(s.pumpEv)
		s.pumpEv = nil
	}
	if s.dcqcn != nil {
		s.dcqcn.Stop()
	}
}
