// Package fabric is the switch dataplane of the simulator. It turns a static
// topo.Topology into a running network on a sim.Engine: output-queued
// switches with a shared buffer, RED/ECN marking, per-port store-and-forward
// serialization, propagation delays, link failures and injected loss.
//
// ToR switches expose a TorPipeline hook — the deployment point of Themis
// (§3.1: both Themis-S and Themis-D live only on ToR switches). The hook can
// steer data packets entering the fabric (Themis-S packet spraying), observe
// data packets leaving towards a host (Themis-D PSN queue + NACK
// compensation) and filter control packets arriving from a host (Themis-D
// NACK blocking).
package fabric

import (
	"fmt"

	"themis/internal/lb"
	"themis/internal/obs"
	"themis/internal/packet"
	"themis/internal/route"
	"themis/internal/sim"
	"themis/internal/topo"
	"themis/internal/trace"
)

// ECNConfig is RED-style marking applied to data packets at egress queues,
// as DCQCN requires.
type ECNConfig struct {
	Enabled   bool
	KminBytes int     // below: never mark
	KmaxBytes int     // above: always mark
	PMax      float64 // marking probability at Kmax
}

// DefaultECN returns the common DCQCN marking profile scaled to a link rate:
// Kmin ≈ 100 KB and Kmax ≈ 400 KB at 100 Gbps, scaled linearly.
func DefaultECN(linkBps int64) ECNConfig {
	scale := float64(linkBps) / 100e9
	return ECNConfig{
		Enabled:   true,
		KminBytes: int(100e3 * scale),
		KmaxBytes: int(400e3 * scale),
		PMax:      0.2,
	}
}

// TorPipeline is the programmable-ToR hook (the Themis deployment surface).
// All methods are invoked synchronously on the simulation goroutine.
type TorPipeline interface {
	// SelectUplink is consulted for data packets that enter the fabric at
	// this ToR from a locally attached host and need an uplink. cands is the
	// equal-cost port set (ascending). Return (port, true) to force a port,
	// or false to defer to the switch's configured selector (e.g. after the
	// pipeline has rewritten the packet's UDP source port).
	SelectUplink(pkt *packet.Packet, cands []int) (int, bool)
	// OnDeliverToHost observes a data packet at the moment it is enqueued on
	// the ToR→host port (the paper's "before they leave the ToR switch",
	// §3.3). Returned packets (e.g. compensation NACKs) are injected into
	// this switch and routed normally toward their destinations.
	OnDeliverToHost(pkt *packet.Packet) []*packet.Packet
	// FilterHostControl is called for every ACK/NACK arriving at this ToR
	// from an attached host. Returning false blocks (drops) the packet.
	FilterHostControl(pkt *packet.Packet) bool
	// LinkStateChanged notifies the pipeline that one of this ToR's fabric
	// links changed state (the §6 failure-tolerance hook).
	LinkStateChanged(port int, up bool)
}

// Config parameterizes the dataplane.
type Config struct {
	// BufferBytes is the shared packet buffer per switch; data packets that
	// would exceed it are dropped. Zero means unlimited.
	BufferBytes int
	// ECN is the marking profile for data packets.
	ECN ECNConfig
	// NewDataSelector constructs the per-switch selector for data packets.
	// A factory (not a shared instance) because some selectors (flowlet)
	// carry per-switch state. Defaults to ECMP.
	NewDataSelector func() lb.Selector
	// NewCtrlSelector constructs the per-switch selector for control
	// packets. Defaults to ECMP.
	NewCtrlSelector func() lb.Selector
	// LossFunc, if set, is consulted at every switch egress enqueue of a
	// data packet — and of control packets too when ControlLossless is false;
	// returning true drops the packet (fault injection).
	LossFunc func(pkt *packet.Packet, sw, port int) bool
	// ControlLossless exempts ACK/NACK/CNP from buffer accounting and drops,
	// modeling their strict priority in RoCE deployments. Default true via
	// NewNetwork.
	ControlLossless bool
	// Tracer, if non-nil, records packet life-cycle events (see package
	// trace). Nil disables tracing at negligible cost.
	Tracer *trace.Tracer
	// PFC enables per-ingress Priority Flow Control for the data class.
	PFC PFCConfig
	// Pool, if non-nil, receives packets back when they reach a terminal:
	// delivered to a host (after the receive callback returns), dropped, or
	// blocked by a ToR pipeline. Producers (RNICs, Themis compensation) should
	// Get from the same pool. Nil keeps the historical allocate-and-GC
	// behaviour — required by tests that retain delivered packets.
	Pool *packet.Pool
	// Metrics, if non-nil, exposes the network-wide Counters as "fabric.*"
	// gauges (pull-based: read only at Snapshot time, zero hot-path cost).
	Metrics *obs.Registry
	// Routing selects how candidate egress ports react to link events:
	// route.Oracle (default) is the historical instant global recompute;
	// route.Distributed gives every switch its own BGP-style RIB/FIB that
	// reconverges hop-by-hop with Routing.PerHopDelay per message, so
	// forwarding during the window uses honestly stale state.
	Routing route.Config
}

// Counters aggregates network-wide statistics.
type Counters struct {
	Delivered   uint64 // packets handed to host receivers
	DataDrops   uint64 // data packets dropped (buffer overflow or LossFunc)
	CtrlDrops   uint64 // control packets dropped (only if !ControlLossless)
	EcnMarks    uint64 // CE marks applied
	Blocked     uint64 // control packets blocked by a ToR pipeline
	Compensated uint64 // packets injected by ToR pipelines (compensation NACKs)
	LinkDrops   uint64 // packets dropped on failed links
	// LoopDrops counts packets whose TTL reached zero — forwarding loops,
	// expected only inside routing reconvergence windows.
	LoopDrops uint64
	// SteadyLoopDrops is the subset of LoopDrops that indict the routing
	// plane: the packet was injected under the current quiescent epoch, so
	// no reconvergence window can excuse the loop. Must stay zero.
	SteadyLoopDrops uint64
	// WatchdogFires counts PFC deadlock-watchdog activations; WatchdogDrops
	// the data packets those flushes discarded (see PFCConfig.WatchdogTimeout).
	WatchdogFires uint64
	WatchdogDrops uint64
}

// Network is the running dataplane.
type Network struct {
	engine   *sim.Engine
	topology *topo.Topology
	cfg      Config

	switches []*swInst
	hostRecv []func(*packet.Packet)
	hostUp   []*outQueue // host→ToR serializers, indexed by host

	// plane is the distributed control plane (nil in oracle mode).
	plane *route.Plane

	// Oracle-mode incremental reconvergence state: when any fabric link is
	// down or drained, per-destination candidate tables are computed lazily
	// on first use and invalidated in O(switches) on the next link event,
	// instead of paying a fabric-wide recompute on every SetLinkState edge.
	downLinks    int // fabric links currently down
	drainedLinks int // fabric links currently drained
	dstValid     []bool
	dstRoutes    [][][]int // [dstTor][sw] = candidate egress ports

	counters Counters
	seqNo    uint64

	// sh is the space-parallel shard wiring; nil for the classic
	// single-engine dataplane (see NewShardedNetwork in shard.go).
	sh *shardState
}

// newNetwork builds the engine-independent parts of the dataplane: switch
// instances, egress queues and host uplink serializers. Callers wire the
// engine(s), counter blocks and pools afterwards — NewNetwork points every
// component at the one shared engine, NewShardedNetwork deals them out per
// shard.
func newNetwork(t *topo.Topology, cfg Config) *Network {
	if cfg.NewDataSelector == nil {
		cfg.NewDataSelector = func() lb.Selector { return lb.ECMP{} }
	}
	if cfg.NewCtrlSelector == nil {
		cfg.NewCtrlSelector = func() lb.Selector { return lb.ECMP{} }
	}
	n := &Network{
		topology: t,
		cfg:      cfg,
		hostRecv: make([]func(*packet.Packet), t.NumHosts()),
		hostUp:   make([]*outQueue, t.NumHosts()),
		dstValid: make([]bool, t.NumSwitches()),
	}
	n.switches = make([]*swInst, t.NumSwitches())
	for _, sw := range t.Switches() {
		n.switches[sw.ID] = newSwInst(n, sw)
	}
	for h := 0; h < t.NumHosts(); h++ {
		a := t.HostAttach(packet.NodeID(h))
		sw := n.switches[a.Switch]
		inPort := a.Port
		n.hostUp[h] = &outQueue{
			net:   n,
			bw:    a.Bandwidth,
			delay: a.Delay,
			name:  fmt.Sprintf("host%d-up", h),
			deliver: func(p *packet.Packet) {
				sw.receive(p, inPort)
			},
		}
		n.hostUp[h].bind()
	}
	return n
}

// NewNetwork builds the dataplane for a topology. Hosts start detached;
// packets to a detached host are delivered to a no-op sink.
func NewNetwork(engine *sim.Engine, t *topo.Topology, cfg Config) *Network {
	n := newNetwork(t, cfg)
	n.engine = engine
	if n.cfg.Routing.Mode == route.Distributed {
		n.plane = route.NewPlane(engine, t, n.cfg.Routing)
		n.dstValid = nil
	} else {
		n.dstRoutes = make([][][]int, t.NumSwitches())
	}
	// Every component shares the one engine, counter block, pool and RNG —
	// the classic dataplane is the degenerate single-shard wiring.
	for _, s := range n.switches {
		s.eng = engine
		s.ctr = &n.counters
		s.pool = n.cfg.Pool
		s.rng = engine.Rand()
		for _, q := range s.ports {
			q.eng = engine
			q.ctr = &n.counters
			q.pool = n.cfg.Pool
		}
	}
	for _, q := range n.hostUp {
		q.eng = engine
		q.ctr = &n.counters
		q.pool = n.cfg.Pool
	}
	n.registerMetrics(n.cfg.Metrics)
	return n
}

// registerMetrics exposes the network counters as gauges; no-op on nil.
func (n *Network) registerMetrics(r *obs.Registry) {
	r.GaugeFunc("fabric.delivered", func() float64 { return float64(n.counters.Delivered) })
	r.GaugeFunc("fabric.data_drops", func() float64 { return float64(n.counters.DataDrops) })
	r.GaugeFunc("fabric.ctrl_drops", func() float64 { return float64(n.counters.CtrlDrops) })
	r.GaugeFunc("fabric.ecn_marks", func() float64 { return float64(n.counters.EcnMarks) })
	r.GaugeFunc("fabric.blocked", func() float64 { return float64(n.counters.Blocked) })
	r.GaugeFunc("fabric.compensated", func() float64 { return float64(n.counters.Compensated) })
	r.GaugeFunc("fabric.link_drops", func() float64 { return float64(n.counters.LinkDrops) })
	r.GaugeFunc("fabric.loop_drops", func() float64 { return float64(n.counters.LoopDrops) })
	r.GaugeFunc("fabric.steady_loop_drops", func() float64 { return float64(n.counters.SteadyLoopDrops) })
	r.GaugeFunc("fabric.watchdog_fires", func() float64 { return float64(n.counters.WatchdogFires) })
	r.GaugeFunc("fabric.watchdog_drops", func() float64 { return float64(n.counters.WatchdogDrops) })
	if n.plane != nil {
		r.GaugeFunc("route.msgs", func() float64 { return float64(n.plane.MessagesSent()) })
		r.GaugeFunc("route.episodes", func() float64 { return float64(n.plane.Episodes()) })
	}
}

// Engine returns the simulation engine.
func (n *Network) Engine() *sim.Engine { return n.engine }

// Topology returns the static topology.
func (n *Network) Topology() *topo.Topology { return n.topology }

// Counters returns a snapshot of network-wide counters. On a sharded
// network the per-shard blocks are summed in shard-index order.
func (n *Network) Counters() Counters {
	if n.sh == nil {
		return n.counters
	}
	var c Counters
	for i := range n.sh.counters {
		c.add(&n.sh.counters[i])
	}
	return c
}

// add folds another counter block into c (all fields are sums).
func (c *Counters) add(o *Counters) {
	c.Delivered += o.Delivered
	c.DataDrops += o.DataDrops
	c.CtrlDrops += o.CtrlDrops
	c.EcnMarks += o.EcnMarks
	c.Blocked += o.Blocked
	c.Compensated += o.Compensated
	c.LinkDrops += o.LinkDrops
	c.LoopDrops += o.LoopDrops
	c.SteadyLoopDrops += o.SteadyLoopDrops
	c.WatchdogFires += o.WatchdogFires
	c.WatchdogDrops += o.WatchdogDrops
}

// AttachHost registers the receive callback of host h.
func (n *Network) AttachHost(h packet.NodeID, recv func(*packet.Packet)) {
	n.hostRecv[h] = recv
}

// SetTorPipeline installs a TorPipeline on switch sw (must host at least one
// host port to ever see pipeline events). The pipeline is immediately told
// about every fabric port that is already down: LinkStateChanged otherwise
// only reports edges, so a pipeline installed (or reinstalled after a switch
// reboot) on a degraded switch would believe all links are up and, under
// FallbackOnFailure, fail to disable itself.
func (n *Network) SetTorPipeline(sw int, p TorPipeline) {
	s := n.switches[sw]
	s.pipeline = p
	if p == nil {
		return
	}
	for port, up := range s.portUp {
		if !up && !s.sw.Ports[port].IsHostPort() {
			p.LinkStateChanged(port, false)
		}
	}
}

// SetLossFunc installs (or replaces) the loss-injection hook after
// construction; see Config.LossFunc.
func (n *Network) SetLossFunc(f func(pkt *packet.Packet, sw, port int) bool) {
	n.cfg.LossFunc = f
}

// Inject transmits pkt from host h over its access link. The packet is
// stamped with a global sequence number for tracing, a hop limit (unless a
// test pre-set a smaller one) and the current routing epoch.
func (n *Network) Inject(h packet.NodeID, pkt *packet.Packet) {
	up := n.hostUp[h]
	if n.sh == nil {
		n.seqNo++
		pkt.SeqNo = n.seqNo
	} else {
		// Per-shard sequence spaces: SeqNo is tracing-only provenance, so
		// shards numbering independently never changes behaviour, and the
		// alternative — one shared counter — would be a data race.
		sh := up.shard
		n.sh.seq[sh]++
		pkt.SeqNo = n.sh.seq[sh]
	}
	if pkt.TTL == 0 {
		pkt.TTL = packet.DefaultTTL
	}
	pkt.RouteEpoch = n.routeEpoch()
	n.cfg.Tracer.RecordPacket(up.eng.Now(), trace.HostTx, -1, -1, pkt)
	up.enqueue(pkt)
}

// HostUplinkBytes returns the queued bytes on host h's access link,
// giving transports visibility into local backlog (used by tests).
func (n *Network) HostUplinkBytes(h packet.NodeID) int { return n.hostUp[h].bytes }

// SwitchCounters returns per-switch (drops, marks) counters.
func (n *Network) SwitchCounters(sw int) (dataDrops, ecnMarks uint64) {
	s := n.switches[sw]
	return s.dataDrops, s.ecnMarks
}

// QueueBytes returns the egress queue depth of a switch port.
func (n *Network) QueueBytes(sw, port int) int {
	return n.switches[sw].ports[port].bytes
}

// PortTxStats returns the packets and bytes transmitted by a switch port.
func (n *Network) PortTxStats(sw, port int) (pkts, bytes uint64) {
	q := n.switches[sw].ports[port]
	return q.txPackets, q.txBytes
}

// SetLinkState brings the link at (sw, port) up or down. Both directions of
// the link change state, packets already queued on a downed port are dropped
// as they reach the head of the queue, ToR pipelines are notified, and the
// routing layer reacts: in oracle mode candidate sets everywhere immediately
// exclude paths through failed links; in distributed mode only the two
// endpoint switches react immediately and everyone else learns hop-by-hop.
// Repeated same-state calls are no-ops.
func (n *Network) SetLinkState(sw, port int, up bool) {
	if n.sh != nil {
		panic("fabric: link state changes are not supported on a sharded network")
	}
	s := n.switches[sw]
	p := &s.sw.Ports[port]
	if p.IsHostPort() {
		panic("fabric: SetLinkState on a host port")
	}
	if s.portUp[port] == up {
		return
	}
	s.setPortState(port, up)
	n.switches[p.PeerSwitch].setPortState(p.PeerPort, up)
	if up {
		n.downLinks--
	} else {
		n.downLinks++
	}
	if n.plane != nil {
		n.plane.SetLinkState(sw, port, up)
		return
	}
	n.invalidateOracle()
}

// SetLinkDrained marks the fabric link at (sw, port) as drained for
// maintenance (or restores it). A drained link stays physically up — packets
// already heading for it still cross — but the routing layer withdraws it
// from candidate sets, which is the whole point of drain-before-shutdown:
// by the time the operator calls SetLinkState(down), no route uses the link
// and the drop causes zero churn. Repeated same-state calls are no-ops.
func (n *Network) SetLinkDrained(sw, port int, drained bool) {
	if n.sh != nil {
		panic("fabric: link drains are not supported on a sharded network")
	}
	s := n.switches[sw]
	p := &s.sw.Ports[port]
	if p.IsHostPort() {
		panic("fabric: SetLinkDrained on a host port")
	}
	if s.portDrained[port] == drained {
		return
	}
	s.portDrained[port] = drained
	n.switches[p.PeerSwitch].portDrained[p.PeerPort] = drained
	if drained {
		n.drainedLinks++
	} else {
		n.drainedLinks--
	}
	if n.plane != nil {
		n.plane.SetDrained(sw, port, drained)
		return
	}
	n.invalidateOracle()
}

// DrainedLinks returns the number of fabric links currently drained.
func (n *Network) DrainedLinks() int { return n.drainedLinks }

// invalidateOracle drops the oracle-mode per-destination route cache in
// O(switches); entries refill lazily on the next forwarding decision that
// needs them (see candidatePorts).
func (n *Network) invalidateOracle() {
	for i := range n.dstValid {
		n.dstValid[i] = false
	}
}

// portUsable is the routing view of a link end: physically up and not
// drained.
func (n *Network) portUsable(sw, port int) bool {
	s := n.switches[sw]
	return s.portUp[port] && !s.portDrained[port]
}

// candidatePorts returns the (failure-aware) equal-cost egress set at sw for
// dst.
func (n *Network) candidatePorts(sw int, dst packet.NodeID) []int {
	if _, ok := n.switches[sw].sw.HostPort(dst); ok {
		return n.topology.CandidatePorts(sw, dst) // host ports never fail here
	}
	if n.plane != nil {
		return n.plane.Candidates(sw, n.topology.ToROf(dst))
	}
	if n.downLinks == 0 && n.drainedLinks == 0 {
		return n.topology.CandidatePorts(sw, dst)
	}
	dstTor := n.topology.ToROf(dst)
	if !n.dstValid[dstTor] {
		n.dstRoutes[dstTor] = n.topology.RoutesForDst(dstTor, n.portUsable)
		n.dstValid[dstTor] = true
	}
	return n.dstRoutes[dstTor][sw]
}

// routeEpoch returns the current convergence epoch (0 in oracle mode, which
// is permanently converged).
func (n *Network) routeEpoch() uint32 {
	if n.plane != nil {
		return n.plane.Epoch()
	}
	return 0
}

// routeQuiescent reports whether the routing layer has no messages in
// flight; oracle mode is always quiescent.
func (n *Network) routeQuiescent() bool {
	if n.plane != nil {
		return n.plane.Quiescent()
	}
	return true
}

// RouteQuiescent is the exported view of routeQuiescent for invariants.
func (n *Network) RouteQuiescent() bool { return n.routeQuiescent() }

// RoutePlane returns the distributed control plane, or nil in oracle mode.
func (n *Network) RoutePlane() *route.Plane { return n.plane }

// RouteConverged verifies the routing layer sits on the oracle fixed point:
// in distributed mode every switch FIB must equal topo.RoutesWithFilter over
// usable links with no messages outstanding; oracle mode is converged by
// construction. Nil means converged.
func (n *Network) RouteConverged() error {
	if n.plane == nil {
		return nil
	}
	return n.plane.CheckConverged()
}

// deliverToHost hands pkt to host h's receive callback. q is the ToR→host
// egress queue the packet arrived through; its engine, counter block and
// pool are the ones owned by the host's shard (in classic mode they alias
// the network-wide singletons).
func (n *Network) deliverToHost(h packet.NodeID, pkt *packet.Packet, q *outQueue) {
	q.ctr.Delivered++
	n.cfg.Tracer.RecordPacket(q.eng.Now(), trace.Deliver, -1, -1, pkt)
	if recv := n.hostRecv[h]; recv != nil {
		recv(pkt)
	}
	// The packet's life ends here; the receive path must not retain it.
	// Recycling after recv returns means packets the handler injects in
	// response (ACKs, NACKs) never alias the one being delivered.
	q.pool.Put(pkt)
}

// Pool returns the packet pool packets are recycled through (nil when
// pooling is disabled).
func (n *Network) Pool() *packet.Pool { return n.cfg.Pool }
