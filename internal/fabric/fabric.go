// Package fabric is the switch dataplane of the simulator. It turns a static
// topo.Topology into a running network on a sim.Engine: output-queued
// switches with a shared buffer, RED/ECN marking, per-port store-and-forward
// serialization, propagation delays, link failures and injected loss.
//
// ToR switches expose a TorPipeline hook — the deployment point of Themis
// (§3.1: both Themis-S and Themis-D live only on ToR switches). The hook can
// steer data packets entering the fabric (Themis-S packet spraying), observe
// data packets leaving towards a host (Themis-D PSN queue + NACK
// compensation) and filter control packets arriving from a host (Themis-D
// NACK blocking).
package fabric

import (
	"fmt"

	"themis/internal/lb"
	"themis/internal/obs"
	"themis/internal/packet"
	"themis/internal/sim"
	"themis/internal/topo"
	"themis/internal/trace"
)

// ECNConfig is RED-style marking applied to data packets at egress queues,
// as DCQCN requires.
type ECNConfig struct {
	Enabled   bool
	KminBytes int     // below: never mark
	KmaxBytes int     // above: always mark
	PMax      float64 // marking probability at Kmax
}

// DefaultECN returns the common DCQCN marking profile scaled to a link rate:
// Kmin ≈ 100 KB and Kmax ≈ 400 KB at 100 Gbps, scaled linearly.
func DefaultECN(linkBps int64) ECNConfig {
	scale := float64(linkBps) / 100e9
	return ECNConfig{
		Enabled:   true,
		KminBytes: int(100e3 * scale),
		KmaxBytes: int(400e3 * scale),
		PMax:      0.2,
	}
}

// TorPipeline is the programmable-ToR hook (the Themis deployment surface).
// All methods are invoked synchronously on the simulation goroutine.
type TorPipeline interface {
	// SelectUplink is consulted for data packets that enter the fabric at
	// this ToR from a locally attached host and need an uplink. cands is the
	// equal-cost port set (ascending). Return (port, true) to force a port,
	// or false to defer to the switch's configured selector (e.g. after the
	// pipeline has rewritten the packet's UDP source port).
	SelectUplink(pkt *packet.Packet, cands []int) (int, bool)
	// OnDeliverToHost observes a data packet at the moment it is enqueued on
	// the ToR→host port (the paper's "before they leave the ToR switch",
	// §3.3). Returned packets (e.g. compensation NACKs) are injected into
	// this switch and routed normally toward their destinations.
	OnDeliverToHost(pkt *packet.Packet) []*packet.Packet
	// FilterHostControl is called for every ACK/NACK arriving at this ToR
	// from an attached host. Returning false blocks (drops) the packet.
	FilterHostControl(pkt *packet.Packet) bool
	// LinkStateChanged notifies the pipeline that one of this ToR's fabric
	// links changed state (the §6 failure-tolerance hook).
	LinkStateChanged(port int, up bool)
}

// Config parameterizes the dataplane.
type Config struct {
	// BufferBytes is the shared packet buffer per switch; data packets that
	// would exceed it are dropped. Zero means unlimited.
	BufferBytes int
	// ECN is the marking profile for data packets.
	ECN ECNConfig
	// NewDataSelector constructs the per-switch selector for data packets.
	// A factory (not a shared instance) because some selectors (flowlet)
	// carry per-switch state. Defaults to ECMP.
	NewDataSelector func() lb.Selector
	// NewCtrlSelector constructs the per-switch selector for control
	// packets. Defaults to ECMP.
	NewCtrlSelector func() lb.Selector
	// LossFunc, if set, is consulted at every switch egress enqueue of a
	// data packet — and of control packets too when ControlLossless is false;
	// returning true drops the packet (fault injection).
	LossFunc func(pkt *packet.Packet, sw, port int) bool
	// ControlLossless exempts ACK/NACK/CNP from buffer accounting and drops,
	// modeling their strict priority in RoCE deployments. Default true via
	// NewNetwork.
	ControlLossless bool
	// Tracer, if non-nil, records packet life-cycle events (see package
	// trace). Nil disables tracing at negligible cost.
	Tracer *trace.Tracer
	// PFC enables per-ingress Priority Flow Control for the data class.
	PFC PFCConfig
	// Pool, if non-nil, receives packets back when they reach a terminal:
	// delivered to a host (after the receive callback returns), dropped, or
	// blocked by a ToR pipeline. Producers (RNICs, Themis compensation) should
	// Get from the same pool. Nil keeps the historical allocate-and-GC
	// behaviour — required by tests that retain delivered packets.
	Pool *packet.Pool
	// Metrics, if non-nil, exposes the network-wide Counters as "fabric.*"
	// gauges (pull-based: read only at Snapshot time, zero hot-path cost).
	Metrics *obs.Registry
}

// Counters aggregates network-wide statistics.
type Counters struct {
	Delivered   uint64 // packets handed to host receivers
	DataDrops   uint64 // data packets dropped (buffer overflow or LossFunc)
	CtrlDrops   uint64 // control packets dropped (only if !ControlLossless)
	EcnMarks    uint64 // CE marks applied
	Blocked     uint64 // control packets blocked by a ToR pipeline
	Compensated uint64 // packets injected by ToR pipelines (compensation NACKs)
	LinkDrops   uint64 // packets dropped on failed links
}

// Network is the running dataplane.
type Network struct {
	engine   *sim.Engine
	topology *topo.Topology
	cfg      Config

	switches []*swInst
	hostRecv []func(*packet.Packet)
	hostUp   []*outQueue // host→ToR serializers, indexed by host

	// routeOverlay is the failure-aware candidate table (nil when every
	// link is up).
	routeOverlay [][][]int

	counters Counters
	seqNo    uint64
}

// NewNetwork builds the dataplane for a topology. Hosts start detached;
// packets to a detached host are delivered to a no-op sink.
func NewNetwork(engine *sim.Engine, t *topo.Topology, cfg Config) *Network {
	if cfg.NewDataSelector == nil {
		cfg.NewDataSelector = func() lb.Selector { return lb.ECMP{} }
	}
	if cfg.NewCtrlSelector == nil {
		cfg.NewCtrlSelector = func() lb.Selector { return lb.ECMP{} }
	}
	n := &Network{
		engine:   engine,
		topology: t,
		cfg:      cfg,
		hostRecv: make([]func(*packet.Packet), t.NumHosts()),
		hostUp:   make([]*outQueue, t.NumHosts()),
	}
	n.switches = make([]*swInst, t.NumSwitches())
	for _, sw := range t.Switches() {
		n.switches[sw.ID] = newSwInst(n, sw)
	}
	for h := 0; h < t.NumHosts(); h++ {
		a := t.HostAttach(packet.NodeID(h))
		sw := n.switches[a.Switch]
		inPort := a.Port
		n.hostUp[h] = &outQueue{
			net:   n,
			bw:    a.Bandwidth,
			delay: a.Delay,
			name:  fmt.Sprintf("host%d-up", h),
			deliver: func(p *packet.Packet) {
				sw.receive(p, inPort)
			},
		}
		n.hostUp[h].bind()
	}
	n.registerMetrics(cfg.Metrics)
	return n
}

// registerMetrics exposes the network counters as gauges; no-op on nil.
func (n *Network) registerMetrics(r *obs.Registry) {
	r.GaugeFunc("fabric.delivered", func() float64 { return float64(n.counters.Delivered) })
	r.GaugeFunc("fabric.data_drops", func() float64 { return float64(n.counters.DataDrops) })
	r.GaugeFunc("fabric.ctrl_drops", func() float64 { return float64(n.counters.CtrlDrops) })
	r.GaugeFunc("fabric.ecn_marks", func() float64 { return float64(n.counters.EcnMarks) })
	r.GaugeFunc("fabric.blocked", func() float64 { return float64(n.counters.Blocked) })
	r.GaugeFunc("fabric.compensated", func() float64 { return float64(n.counters.Compensated) })
	r.GaugeFunc("fabric.link_drops", func() float64 { return float64(n.counters.LinkDrops) })
}

// Engine returns the simulation engine.
func (n *Network) Engine() *sim.Engine { return n.engine }

// Topology returns the static topology.
func (n *Network) Topology() *topo.Topology { return n.topology }

// Counters returns a snapshot of network-wide counters.
func (n *Network) Counters() Counters { return n.counters }

// AttachHost registers the receive callback of host h.
func (n *Network) AttachHost(h packet.NodeID, recv func(*packet.Packet)) {
	n.hostRecv[h] = recv
}

// SetTorPipeline installs a TorPipeline on switch sw (must host at least one
// host port to ever see pipeline events). The pipeline is immediately told
// about every fabric port that is already down: LinkStateChanged otherwise
// only reports edges, so a pipeline installed (or reinstalled after a switch
// reboot) on a degraded switch would believe all links are up and, under
// FallbackOnFailure, fail to disable itself.
func (n *Network) SetTorPipeline(sw int, p TorPipeline) {
	s := n.switches[sw]
	s.pipeline = p
	if p == nil {
		return
	}
	for port, up := range s.portUp {
		if !up && !s.sw.Ports[port].IsHostPort() {
			p.LinkStateChanged(port, false)
		}
	}
}

// SetLossFunc installs (or replaces) the loss-injection hook after
// construction; see Config.LossFunc.
func (n *Network) SetLossFunc(f func(pkt *packet.Packet, sw, port int) bool) {
	n.cfg.LossFunc = f
}

// Inject transmits pkt from host h over its access link. The packet is
// stamped with a global sequence number for tracing.
func (n *Network) Inject(h packet.NodeID, pkt *packet.Packet) {
	n.seqNo++
	pkt.SeqNo = n.seqNo
	n.cfg.Tracer.RecordPacket(n.engine.Now(), trace.HostTx, -1, -1, pkt)
	n.hostUp[h].enqueue(pkt)
}

// HostUplinkBytes returns the queued bytes on host h's access link,
// giving transports visibility into local backlog (used by tests).
func (n *Network) HostUplinkBytes(h packet.NodeID) int { return n.hostUp[h].bytes }

// SwitchCounters returns per-switch (drops, marks) counters.
func (n *Network) SwitchCounters(sw int) (dataDrops, ecnMarks uint64) {
	s := n.switches[sw]
	return s.dataDrops, s.ecnMarks
}

// QueueBytes returns the egress queue depth of a switch port.
func (n *Network) QueueBytes(sw, port int) int {
	return n.switches[sw].ports[port].bytes
}

// PortTxStats returns the packets and bytes transmitted by a switch port.
func (n *Network) PortTxStats(sw, port int) (pkts, bytes uint64) {
	q := n.switches[sw].ports[port]
	return q.txPackets, q.txBytes
}

// SetLinkState brings the link at (sw, port) up or down. Both directions of
// the link change state, packets already queued on a downed port are dropped
// as they reach the head of the queue, ToR pipelines are notified, and the
// fabric's routing reconverges: candidate sets everywhere exclude paths
// through failed links (as a routing protocol would after detection).
func (n *Network) SetLinkState(sw, port int, up bool) {
	s := n.switches[sw]
	p := &s.sw.Ports[port]
	if p.IsHostPort() {
		panic("fabric: SetLinkState on a host port")
	}
	s.setPortState(port, up)
	peer := n.switches[p.PeerSwitch]
	peer.setPortState(p.PeerPort, up)
	n.recomputeRoutes()
}

// recomputeRoutes rebuilds the failure-aware candidate overlay.
func (n *Network) recomputeRoutes() {
	anyDown := false
	for _, s := range n.switches {
		if s.anyDown {
			anyDown = true
			break
		}
	}
	if !anyDown {
		n.routeOverlay = nil
		return
	}
	n.routeOverlay = n.topology.RoutesWithFilter(func(sw, port int) bool {
		return n.switches[sw].portUp[port]
	})
}

// candidatePorts returns the (failure-aware) equal-cost egress set at sw for
// dst.
func (n *Network) candidatePorts(sw int, dst packet.NodeID) []int {
	if n.routeOverlay == nil {
		return n.topology.CandidatePorts(sw, dst)
	}
	if _, ok := n.switches[sw].sw.HostPort(dst); ok {
		return n.topology.CandidatePorts(sw, dst) // host ports never fail here
	}
	return n.routeOverlay[sw][n.topology.ToROf(dst)]
}

func (n *Network) deliverToHost(h packet.NodeID, pkt *packet.Packet) {
	n.counters.Delivered++
	n.cfg.Tracer.RecordPacket(n.engine.Now(), trace.Deliver, -1, -1, pkt)
	if recv := n.hostRecv[h]; recv != nil {
		recv(pkt)
	}
	// The packet's life ends here; the receive path must not retain it.
	// Recycling after recv returns means packets the handler injects in
	// response (ACKs, NACKs) never alias the one being delivered.
	n.cfg.Pool.Put(pkt)
}

// Pool returns the packet pool packets are recycled through (nil when
// pooling is disabled).
func (n *Network) Pool() *packet.Pool { return n.cfg.Pool }
