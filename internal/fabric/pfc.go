package fabric

import (
	"themis/internal/packet"
	"themis/internal/sim"
)

// PFCConfig enables IEEE 802.1Qbb Priority Flow Control for the data class:
// when the bytes buffered from one ingress port cross XoffBytes, the switch
// sends PAUSE upstream (taking one link propagation delay to act); the
// upstream port stops serializing until buffered bytes fall below XonBytes
// and RESUME arrives. Control packets (ACK/NACK/CNP) ride a separate
// priority and are never paused — matching RoCE deployments where DCQCN
// runs with PFC as a lossless backstop.
type PFCConfig struct {
	Enabled   bool
	XoffBytes int // per-ingress pause threshold
	XonBytes  int // per-ingress resume threshold
	// WatchdogTimeout arms the PFC deadlock watchdog: a switch egress queue
	// that has been continuously paused for this long while holding data is
	// declared stuck — its backlog is flushed (WatchdogDrops) so the buffer
	// space and ingress accounting it pins are released and the pause cycle
	// unwinds. Transient routing loops can otherwise freeze into a permanent
	// circular buffer dependency: looped packets fill buffers, the pauses
	// they assert form a cycle, and TTL cannot help because paused packets
	// never move. Real lossless deployments run exactly this watchdog
	// (deadlock detection + drop) for the same reason. Legitimate congestion
	// pauses oscillate around Xoff/Xon on microsecond scales, orders of
	// magnitude below the timeout. Zero disables the watchdog.
	WatchdogTimeout sim.Duration
}

// DefaultPFC returns thresholds scaled to a link rate: headroom of one
// link-delay's worth of in-flight bytes plus a couple of MTUs, mirroring
// common switch defaults (Xoff ≈ 100 KB, Xon ≈ 50 KB at 100 Gbps).
func DefaultPFC(linkBps int64) PFCConfig {
	scale := float64(linkBps) / 100e9
	return PFCConfig{
		Enabled:         true,
		XoffBytes:       int(100e3 * scale),
		XonBytes:        int(50e3 * scale),
		WatchdogTimeout: 500 * sim.Microsecond,
	}
}

// pfcState is the per-switch PFC bookkeeping.
type pfcState struct {
	ingressBytes []int  // data bytes buffered per ingress port
	pauseSent    []bool // PAUSE currently asserted towards each ingress
	hostIngress  []int  // ingress bytes for host uplinks, indexed by port
	pausesTx     uint64
	resumesTx    uint64
}

func newPFCState(nPorts int) *pfcState {
	return &pfcState{
		ingressBytes: make([]int, nPorts),
		pauseSent:    make([]bool, nPorts),
	}
}

// accountIngress charges a queued data packet to its ingress port and
// asserts PAUSE upstream when the Xoff threshold is crossed.
func (s *swInst) accountIngress(pkt *packet.Packet, inPort int) {
	if s.pfc == nil || inPort < 0 || pkt.Kind.IsControl() {
		return
	}
	pkt.InPort = int32(inPort)
	pkt.Accounted = true
	s.pfc.ingressBytes[inPort] += pkt.Size()
	if !s.pfc.pauseSent[inPort] && s.pfc.ingressBytes[inPort] >= s.net.cfg.PFC.XoffBytes {
		s.pfc.pauseSent[inPort] = true
		s.pfc.pausesTx++
		s.sendPauseFrame(inPort, true)
	}
}

// releaseIngress un-charges a packet when it leaves this switch and sends
// RESUME once the backlog falls below Xon.
func (s *swInst) releaseIngress(pkt *packet.Packet) {
	if s.pfc == nil || !pkt.Accounted {
		return
	}
	pkt.Accounted = false
	inPort := int(pkt.InPort)
	s.pfc.ingressBytes[inPort] -= pkt.Size()
	if s.pfc.pauseSent[inPort] && s.pfc.ingressBytes[inPort] <= s.net.cfg.PFC.XonBytes {
		s.pfc.pauseSent[inPort] = false
		s.pfc.resumesTx++
		s.sendPauseFrame(inPort, false)
	}
}

// sendPauseFrame delivers a PAUSE/RESUME indication to whatever feeds
// ingress port inPort — the peer switch's egress queue or a host's access
// link — after one propagation delay (pause frames are real packets on the
// wire, but tiny; their serialization is ignored).
func (s *swInst) sendPauseFrame(inPort int, pause bool) {
	p := &s.sw.Ports[inPort]
	var target *outQueue
	if p.IsHostPort() {
		target = s.net.hostUp[p.Host]
	} else {
		target = s.net.switches[p.PeerSwitch].ports[p.PeerPort]
	}
	fn := target.resumeFn
	if pause {
		fn = target.pauseFn
	}
	if s.net.sh != nil {
		// Sharded dataplane: pause frames carry the target queue's pause
		// channel priority so same-time arrival order at the target engine
		// is partition-invariant, and they cross shard boundaries through
		// the epoch mailbox. Their one-link propagation delay is >= the
		// group lookahead by construction, which is what makes the post
		// legal (see topo.Lookahead).
		at := s.eng.Now().Add(p.Delay)
		pri := target.chanID*2 + 1
		if target.shard != s.shard {
			s.net.sh.group.Post(s.shard, target.shard, at, pri, fn)
		} else {
			s.eng.AtPri(at, pri, fn)
		}
		return
	}
	s.net.engine.Schedule(sim.Duration(p.Delay), fn)
}

// PFCStats reports (pauses, resumes) sent by a switch.
func (n *Network) PFCStats(sw int) (pauses, resumes uint64) {
	s := n.switches[sw]
	if s.pfc == nil {
		return 0, 0
	}
	return s.pfc.pausesTx, s.pfc.resumesTx
}
