package fabric

import (
	"math/rand"

	"themis/internal/lb"
	"themis/internal/packet"
	"themis/internal/sim"
	"themis/internal/topo"
	"themis/internal/trace"
)

// swInst is a running switch: the topo.Switch plus egress queues, selectors
// and counters. It implements lb.Context for its selectors.
type swInst struct {
	net         *Network
	sw          *topo.Switch
	ports       []*outQueue
	portUp      []bool
	portDrained []bool // maintenance drains (routing-layer only; link stays up)
	anyDown     bool
	bufUsed     int
	dataSel     lb.Selector
	ctrlSel     lb.Selector
	pipeline    TorPipeline
	seed        uint32 // cached lb.TierSeed(sw.Tier), hot on every ECMP decision

	// eng/ctr/pool are the engine, counter block and pool this switch runs
	// on; classic networks alias the singletons, sharded networks hand out
	// the owning shard's (see shard.go). rng is the switch's random source:
	// the shared engine RNG classically, a private identity-keyed stream
	// (sim.NewStream) on a sharded network so draws never depend on the
	// partition. shard is the owning shard index.
	eng   *sim.Engine
	ctr   *Counters
	pool  *packet.Pool
	rng   *rand.Rand
	shard int

	dataDrops uint64
	ecnMarks  uint64

	// pfc holds per-ingress pause state (nil when PFC is disabled).
	pfc *pfcState

	// candScratch is reused when filtering candidates under link failure.
	candScratch []int
}

func newSwInst(n *Network, sw *topo.Switch) *swInst {
	s := &swInst{
		net:         n,
		sw:          sw,
		dataSel:     n.cfg.NewDataSelector(),
		ctrlSel:     n.cfg.NewCtrlSelector(),
		portUp:      make([]bool, len(sw.Ports)),
		portDrained: make([]bool, len(sw.Ports)),
		seed:        lb.TierSeed(sw.Tier),
	}
	if n.cfg.PFC.Enabled {
		s.pfc = newPFCState(len(sw.Ports))
	}
	s.ports = make([]*outQueue, len(sw.Ports))
	for pi := range sw.Ports {
		p := &sw.Ports[pi]
		s.portUp[pi] = true
		q := &outQueue{
			net:        n,
			bw:         p.Bandwidth,
			delay:      p.Delay,
			sw:         s,
			port:       pi,
			isHostPort: p.IsHostPort(),
		}
		if p.IsHostPort() {
			host := p.Host
			q.deliver = func(pkt *packet.Packet) { n.deliverToHost(host, pkt, q) }
		} else {
			peer := p.PeerSwitch
			peerPort := p.PeerPort
			q.deliver = func(pkt *packet.Packet) { n.switches[peer].receive(pkt, peerPort) }
		}
		q.bind()
		s.ports[pi] = q
	}
	return s
}

// lb.Context implementation.
func (s *swInst) Now() sim.Time           { return s.eng.Now() }
func (s *swInst) QueueBytes(port int) int { return s.ports[port].bytes }
func (s *swInst) Rand() *rand.Rand        { return s.rng }
func (s *swInst) Seed() uint32            { return s.seed }

// receive handles a packet arriving on inPort (or injected by the pipeline
// with inPort == -1).
func (s *swInst) receive(pkt *packet.Packet, inPort int) {
	// Local delivery: the destination hangs off this switch. The Themis-D
	// observation point is the moment the packet leaves the ToR towards the
	// host (outQueue.startNext), not here: under congestion the ToR→host
	// queue adds arbitrary delay, and recording PSNs at departure keeps the
	// ring queue window equal to the true last-hop RTT (§3.3).
	if hp, ok := s.sw.HostPort(pkt.Dst); ok {
		s.enqueue(pkt, hp, inPort)
		return
	}

	// Hop limit: decremented only when forwarding (not on local delivery
	// above). During routing reconvergence stale FIBs can form micro-loops;
	// the TTL turns a would-be livelock into an accounted drop.
	if pkt.TTL > 0 {
		pkt.TTL--
		if pkt.TTL == 0 {
			s.loopDrop(pkt)
			return
		}
	}

	cands := s.net.candidatePorts(s.sw.ID, pkt.Dst)
	if len(cands) == 0 {
		// No surviving path (partitioned fabric).
		s.drop(pkt)
		s.ctr.LinkDrops++
		return
	}
	if s.anyDown {
		cands = s.filterUp(cands)
		if len(cands) == 0 {
			s.drop(pkt)
			s.ctr.LinkDrops++
			return
		}
	}

	fromHost := inPort >= 0 && s.sw.Ports[inPort].IsHostPort()
	if s.pipeline != nil && fromHost {
		if pkt.Kind.IsControl() {
			if !s.pipeline.FilterHostControl(pkt) {
				s.ctr.Blocked++
				s.free(pkt)
				return
			}
		} else if port, ok := s.pipeline.SelectUplink(pkt, cands); ok {
			s.enqueue(pkt, port, inPort)
			return
		}
	}

	sel := s.dataSel
	if pkt.Kind.IsControl() {
		sel = s.ctrlSel
	}
	s.enqueue(pkt, sel.Select(pkt, cands, s), inPort)
}

// filterUp returns the subset of cands whose links are up, reusing scratch.
func (s *swInst) filterUp(cands []int) []int {
	s.candScratch = s.candScratch[:0]
	for _, c := range cands {
		if s.portUp[c] {
			s.candScratch = append(s.candScratch, c) //lint:alloc-ok scratch grows to the max fan-out once, then is reused
		}
	}
	return s.candScratch
}

// enqueue places pkt on the egress queue of port, applying loss injection,
// buffer admission, ECN marking and PFC ingress accounting.
func (s *swInst) enqueue(pkt *packet.Packet, port, inPort int) {
	q := s.ports[port]
	isCtrl := pkt.Kind.IsControl()
	lossless := isCtrl && s.net.cfg.ControlLossless

	// Loss injection: data packets always, control packets only when the
	// control class is not lossless (DESIGN.md key decision 6 — the flag that
	// subjects ACK/NACK/CNP to loss for robustness tests).
	if s.net.cfg.LossFunc != nil && !lossless && s.net.cfg.LossFunc(pkt, s.sw.ID, port) {
		if isCtrl {
			s.ctr.CtrlDrops++
			s.net.cfg.Tracer.RecordPacket(s.eng.Now(), trace.Drop, s.sw.ID, port, pkt)
			s.free(pkt)
		} else {
			s.drop(pkt)
		}
		return
	}
	if !lossless {
		limit := s.net.cfg.BufferBytes
		if limit > 0 && s.bufUsed+pkt.Size() > limit {
			if isCtrl {
				s.ctr.CtrlDrops++
				s.free(pkt)
			} else {
				s.drop(pkt)
			}
			return
		}
		s.bufUsed += pkt.Size()
		pkt.Buffered = true
	}
	if !isCtrl && s.net.cfg.ECN.Enabled && s.shouldMark(q.bytes) {
		if !pkt.ECN {
			s.ecnMarks++
			s.ctr.EcnMarks++
			s.net.cfg.Tracer.RecordPacket(s.eng.Now(), trace.Mark, s.sw.ID, port, pkt)
		}
		pkt.ECN = true
	}
	s.accountIngress(pkt, inPort)
	s.net.cfg.Tracer.RecordPacket(s.eng.Now(), trace.SwEnq, s.sw.ID, port, pkt)
	q.enqueue(pkt)
}

// shouldMark applies the RED profile to the pre-enqueue queue depth.
func (s *swInst) shouldMark(qBytes int) bool {
	e := &s.net.cfg.ECN
	switch {
	case qBytes <= e.KminBytes:
		return false
	case qBytes >= e.KmaxBytes:
		return true
	default:
		p := e.PMax * float64(qBytes-e.KminBytes) / float64(e.KmaxBytes-e.KminBytes)
		return s.rng.Float64() < p
	}
}

// release returns buffer space and PFC ingress accounting when a packet
// leaves (transmitted or dropped at the head of a failed link).
func (s *swInst) release(pkt *packet.Packet) {
	if pkt.Buffered {
		s.bufUsed -= pkt.Size()
		pkt.Buffered = false
	}
	s.releaseIngress(pkt)
}

// loopDrop discards a packet whose TTL expired. The drop only indicts the
// routing plane (SteadyLoopDrops) when no reconvergence window can excuse
// it: the plane is quiescent and the packet was injected under the current
// quiescent epoch.
func (s *swInst) loopDrop(pkt *packet.Packet) {
	s.ctr.LoopDrops++
	if s.net.routeQuiescent() && pkt.RouteEpoch == s.net.routeEpoch() {
		s.ctr.SteadyLoopDrops++
	}
	s.net.cfg.Tracer.RecordPacket(s.eng.Now(), trace.Drop, s.sw.ID, -1, pkt)
	s.free(pkt)
}

func (s *swInst) drop(pkt *packet.Packet) {
	s.dataDrops++
	s.ctr.DataDrops++
	s.net.cfg.Tracer.RecordPacket(s.eng.Now(), trace.Drop, s.sw.ID, -1, pkt)
	s.free(pkt)
}

func (s *swInst) free(pkt *packet.Packet) {
	// Safe to recycle: transports never retain references (retransmit
	// copies are separate packets) and trace events copy fields.
	s.pool.Put(pkt)
}

func (s *swInst) setPortState(port int, up bool) {
	if s.portUp[port] == up {
		return
	}
	s.portUp[port] = up
	s.anyDown = false
	for _, u := range s.portUp {
		if !u {
			s.anyDown = true
			break
		}
	}
	if s.pipeline != nil {
		s.pipeline.LinkStateChanged(port, up)
	}
}
