package fabric

import (
	"testing"

	"themis/internal/packet"
	"themis/internal/sim"
)

// incastPFC builds a 2-leaf/1-spine fabric with `senders` hosts per leaf and
// PFC enabled, then blasts all leaf-0 hosts at one leaf-1 host.
func incastPFC(t *testing.T, senders, pkts int, buf int) (*Network, *sim.Engine, *collector) {
	t.Helper()
	tp := leafSpine(t, 2, 1, senders)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{
		BufferBytes:     buf,
		ControlLossless: true,
		PFC:             DefaultPFC(gbps100),
	})
	var c collector
	dst := packet.NodeID(senders) // first host on leaf 1
	n.AttachHost(dst, c.recv(e))
	for i := 0; i < pkts; i++ {
		for h := 0; h < senders; h++ {
			n.Inject(packet.NodeID(h), newData(packet.NodeID(h), dst, packet.PSN(i), 1000))
		}
	}
	return n, e, &c
}

func TestPFCPreventsDropsUnderIncast(t *testing.T) {
	// 4:1 oversubscription, 8.5 MB offered into a 1 MB buffer: PFC holds
	// each ingress near Xoff (100 KB + in-flight headroom), so the shared
	// buffer never overflows. The same demand without PFC drops (see the
	// control test below, which overflows an even easier setup).
	n, e, c := incastPFC(t, 4, 2000, 1<<20)
	e.RunAll()
	if n.Counters().DataDrops != 0 {
		t.Fatalf("PFC fabric dropped %d packets", n.Counters().DataDrops)
	}
	if len(c.pkts) != 8000 {
		t.Fatalf("delivered %d/8000", len(c.pkts))
	}
	// Pauses must have been sent by the congested source leaf (switch 0,
	// where 4 host links feed one uplink).
	pauses, resumes := n.PFCStats(0)
	if pauses == 0 {
		t.Fatal("no PAUSE frames under incast")
	}
	if resumes == 0 {
		t.Fatal("no RESUME frames after drain")
	}
}

func TestWithoutPFCSameIncastDrops(t *testing.T) {
	tp := leafSpine(t, 2, 1, 4)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{BufferBytes: 300_000, ControlLossless: true})
	var c collector
	n.AttachHost(4, c.recv(e))
	for i := 0; i < 200; i++ {
		for h := 0; h < 4; h++ {
			n.Inject(packet.NodeID(h), newData(packet.NodeID(h), 4, packet.PSN(i), 1000))
		}
	}
	e.RunAll()
	if n.Counters().DataDrops == 0 {
		t.Fatal("expected drops without PFC (control for the PFC test)")
	}
}

func TestPFCOrderPreservedPerPath(t *testing.T) {
	n, e, c := incastPFC(t, 2, 300, 200_000)
	_ = n
	e.RunAll()
	// Per-flow FIFO must survive pause/resume cycles.
	last := map[packet.NodeID]packet.PSN{}
	for _, p := range c.pkts {
		if prev, ok := last[p.Src]; ok && !p.PSN.After(prev) {
			t.Fatalf("flow %d reordered: %d after %d", p.Src, p.PSN, prev)
		}
		last[p.Src] = p.PSN
	}
}

func TestPFCControlNeverPaused(t *testing.T) {
	// Saturate the data class, then inject control packets: they must get
	// through promptly because control rides an unpaused priority.
	tp := leafSpine(t, 2, 1, 2)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{
		BufferBytes:     200_000,
		ControlLossless: true,
		PFC:             DefaultPFC(gbps100),
	})
	var c collector
	n.AttachHost(2, c.recv(e))
	for i := 0; i < 300; i++ {
		n.Inject(0, newData(0, 2, packet.PSN(i), 1000))
		n.Inject(1, newData(1, 2, packet.PSN(i), 1000))
	}
	n.Inject(0, &packet.Packet{Kind: packet.Ack, Src: 0, Dst: 2, PSN: 1})
	e.RunAll()
	acks := 0
	for _, p := range c.pkts {
		if p.Kind == packet.Ack {
			acks++
		}
	}
	if acks != 1 {
		t.Fatalf("acks delivered = %d", acks)
	}
}

func TestPFCBackpressurePropagatesToHost(t *testing.T) {
	// With a paused leaf ingress, the host uplink queue must absorb the
	// backlog (the NIC keeps pacing into it).
	n, e, _ := incastPFC(t, 4, 500, 200_000)
	maxUplink := 0
	probe := sim.NewTicker(e, 10*sim.Microsecond, func() {
		for h := packet.NodeID(0); h < 4; h++ {
			if b := n.HostUplinkBytes(h); b > maxUplink {
				maxUplink = b
			}
		}
	})
	probe.Start()
	e.Run(sim.Time(5 * sim.Millisecond))
	probe.Stop()
	e.RunAll()
	if maxUplink == 0 {
		t.Fatal("backpressure never reached the hosts")
	}
}

// A queue paused continuously past WatchdogTimeout while holding data is
// deadlocked by definition (legit congestion pauses oscillate on µs scales):
// the watchdog must flush the backlog and release its buffer/ingress
// accounting so the pause cycle can unwind.
func TestPFCWatchdogFlushesStuckQueue(t *testing.T) {
	tp := leafSpine(t, 2, 2, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{ControlLossless: true, PFC: DefaultPFC(gbps100)})
	s := n.switches[0]
	q := s.ports[1] // leaf0 uplink to spine 0
	q.setPaused(true)
	for i := 0; i < 5; i++ {
		s.enqueue(newData(0, 1, packet.PSN(i), 1000), 1, 0)
	}
	e.RunAll()
	c := n.Counters()
	if c.WatchdogFires != 1 || c.WatchdogDrops != 5 {
		t.Fatalf("watchdog fires=%d drops=%d, want 1/5", c.WatchdogFires, c.WatchdogDrops)
	}
	if q.bytes != 0 || q.head < len(q.q) {
		t.Fatalf("data backlog not flushed: %d bytes", q.bytes)
	}
	if s.bufUsed != 0 {
		t.Fatalf("buffer accounting leaked: %d bytes still charged", s.bufUsed)
	}
}

// A pause that clears before the timeout must not trip the watchdog: the
// backlog drains normally once RESUME arrives.
func TestPFCWatchdogSparesTransientPause(t *testing.T) {
	tp := leafSpine(t, 2, 2, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{ControlLossless: true, PFC: DefaultPFC(gbps100)})
	var c collector
	n.AttachHost(1, c.recv(e))
	s := n.switches[0]
	q := s.ports[1]
	q.setPaused(true)
	for i := 0; i < 5; i++ {
		s.enqueue(newData(0, 1, packet.PSN(i), 1000), 1, 0)
	}
	e.Schedule(100*sim.Microsecond, func() { q.setPaused(false) })
	e.RunAll()
	if got := n.Counters().WatchdogDrops; got != 0 {
		t.Fatalf("watchdog dropped %d packets from a transient pause", got)
	}
	if len(c.pkts) != 5 {
		t.Fatalf("delivered %d/5 after resume", len(c.pkts))
	}
}
