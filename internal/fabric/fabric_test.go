package fabric

import (
	"testing"
	"testing/quick"

	"themis/internal/core"
	"themis/internal/lb"
	"themis/internal/packet"
	"themis/internal/sim"
	"themis/internal/topo"
)

const (
	gbps100 = int64(100e9)
	usec    = sim.Microsecond
)

func leafSpine(t *testing.T, leaves, spines, hosts int) *topo.Topology {
	t.Helper()
	tp, err := topo.NewLeafSpine(topo.LeafSpineConfig{
		Leaves: leaves, Spines: spines, HostsPerLeaf: hosts,
		HostLink:   topo.LinkSpec{Bandwidth: gbps100, Delay: usec},
		FabricLink: topo.LinkSpec{Bandwidth: gbps100, Delay: usec},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// collector records delivered packets at a host.
type collector struct {
	pkts  []*packet.Packet
	times []sim.Time
}

func (c *collector) recv(e *sim.Engine) func(*packet.Packet) {
	return func(p *packet.Packet) {
		c.pkts = append(c.pkts, p)
		c.times = append(c.times, e.Now())
	}
}

func newData(src, dst packet.NodeID, psn packet.PSN, payload int) *packet.Packet {
	return &packet.Packet{Kind: packet.Data, Src: src, Dst: dst, QP: 1, SPort: 1000, DPort: 4791, PSN: psn, Payload: payload}
}

func TestDeliveryAndLatency(t *testing.T) {
	tp := leafSpine(t, 2, 1, 1) // host0 on leaf0, host1 on leaf1, one spine
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{ControlLossless: true})
	var c collector
	n.AttachHost(1, c.recv(e))

	p := newData(0, 1, 0, 1000)
	n.Inject(0, p)
	e.RunAll()

	if len(c.pkts) != 1 || c.pkts[0] != p {
		t.Fatalf("delivered %d packets", len(c.pkts))
	}
	// Path: host0 uplink, leaf0->spine, spine->leaf1, leaf1->host1:
	// 4 serializations of 1064B at 100Gbps + 4 x 1us propagation.
	ser := sim.TransmitTime(p.Size(), gbps100)
	want := sim.Time(4 * (sim.Duration(ser) + usec))
	if c.times[0] != want {
		t.Fatalf("latency = %v, want %v", c.times[0], want)
	}
	if got := n.Counters().Delivered; got != 1 {
		t.Fatalf("Delivered = %d", got)
	}
}

func TestSameRackStaysLocal(t *testing.T) {
	tp := leafSpine(t, 2, 2, 2)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{})
	var c collector
	n.AttachHost(1, c.recv(e))
	n.Inject(0, newData(0, 1, 0, 1000))
	e.RunAll()
	if len(c.pkts) != 1 {
		t.Fatalf("delivered %d", len(c.pkts))
	}
	// No spine must have transmitted anything.
	for sw := 2; sw < 4; sw++ {
		for port := range tp.Switch(sw).Ports {
			if pkts, _ := n.PortTxStats(sw, port); pkts != 0 {
				t.Fatalf("spine %d port %d transmitted %d packets", sw, port, pkts)
			}
		}
	}
}

func TestFIFOOrderOnOnePath(t *testing.T) {
	tp := leafSpine(t, 2, 1, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{})
	var c collector
	n.AttachHost(1, c.recv(e))
	for i := 0; i < 50; i++ {
		n.Inject(0, newData(0, 1, packet.PSN(i), 1000))
	}
	e.RunAll()
	if len(c.pkts) != 50 {
		t.Fatalf("delivered %d", len(c.pkts))
	}
	for i, p := range c.pkts {
		if p.PSN != packet.PSN(i) {
			t.Fatalf("reordered on single path: pos %d psn %d", i, p.PSN)
		}
	}
}

func TestECMPConsistentPath(t *testing.T) {
	tp := leafSpine(t, 2, 4, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{})
	n.AttachHost(1, func(*packet.Packet) {})
	for i := 0; i < 40; i++ {
		n.Inject(0, newData(0, 1, packet.PSN(i), 1000))
	}
	e.RunAll()
	// Exactly one leaf0 uplink (ports 1..4) carried all 40 packets.
	used := 0
	for port := 1; port <= 4; port++ {
		pkts, _ := n.PortTxStats(0, port)
		if pkts > 0 {
			used++
			if pkts != 40 {
				t.Fatalf("uplink %d carried %d packets", port, pkts)
			}
		}
	}
	if used != 1 {
		t.Fatalf("ECMP used %d uplinks", used)
	}
}

func TestRandomSprayUsesAllPaths(t *testing.T) {
	tp := leafSpine(t, 2, 4, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{
		NewDataSelector: func() lb.Selector { return lb.RandomSpray{} },
	})
	n.AttachHost(1, func(*packet.Packet) {})
	for i := 0; i < 200; i++ {
		n.Inject(0, newData(0, 1, packet.PSN(i), 1000))
	}
	e.RunAll()
	for port := 1; port <= 4; port++ {
		if pkts, _ := n.PortTxStats(0, port); pkts == 0 {
			t.Fatalf("spray never used uplink %d", port)
		}
	}
}

func TestBufferOverflowDrops(t *testing.T) {
	// Two senders on leaf0 share one 100G uplink: 2:1 oversubscription
	// builds a standing queue at leaf0.
	tp := leafSpine(t, 2, 1, 2)
	e := sim.NewEngine(1)
	// Tiny buffer: a few packets fit, the rest drop.
	n := NewNetwork(e, tp, Config{BufferBytes: 3300})
	var c collector
	n.AttachHost(2, c.recv(e))
	for i := 0; i < 20; i++ {
		n.Inject(0, newData(0, 2, packet.PSN(i), 1000))
		n.Inject(1, newData(1, 2, packet.PSN(i), 1000))
	}
	e.RunAll()
	ctr := n.Counters()
	if ctr.DataDrops == 0 {
		t.Fatal("expected drops with tiny buffer")
	}
	if len(c.pkts)+int(ctr.DataDrops) != 40 {
		t.Fatalf("delivered %d + dropped %d != 40", len(c.pkts), ctr.DataDrops)
	}
}

func TestECNMarking(t *testing.T) {
	tp := leafSpine(t, 2, 1, 2)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{
		ECN: ECNConfig{Enabled: true, KminBytes: 2000, KmaxBytes: 8000, PMax: 1},
	})
	var c collector
	n.AttachHost(2, c.recv(e))
	for i := 0; i < 40; i++ {
		n.Inject(0, newData(0, 2, packet.PSN(i), 1000))
		n.Inject(1, newData(1, 2, packet.PSN(i), 1000))
	}
	e.RunAll()
	if n.Counters().EcnMarks == 0 {
		t.Fatal("expected ECN marks under a standing queue")
	}
	marked := 0
	for _, p := range c.pkts {
		if p.ECN {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("no delivered packet carried CE")
	}
	// Early packets (queue below Kmin) must be unmarked.
	if c.pkts[0].ECN {
		t.Fatal("first packet marked with empty queue")
	}
}

func TestECNNeverMarksControl(t *testing.T) {
	tp := leafSpine(t, 2, 1, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{
		ECN: ECNConfig{Enabled: true, KminBytes: 0, KmaxBytes: 1, PMax: 1},
	})
	var c collector
	n.AttachHost(1, c.recv(e))
	for i := 0; i < 10; i++ {
		ack := &packet.Packet{Kind: packet.Ack, Src: 0, Dst: 1, SPort: 7, DPort: 4791, PSN: packet.PSN(i)}
		n.Inject(0, ack)
	}
	e.RunAll()
	for _, p := range c.pkts {
		if p.ECN {
			t.Fatal("control packet got CE-marked")
		}
	}
}

func TestControlLossless(t *testing.T) {
	tp := leafSpine(t, 2, 1, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{BufferBytes: 1, ControlLossless: true})
	var c collector
	n.AttachHost(1, c.recv(e))
	for i := 0; i < 10; i++ {
		n.Inject(0, &packet.Packet{Kind: packet.Nack, Src: 0, Dst: 1, PSN: packet.PSN(i)})
	}
	e.RunAll()
	if len(c.pkts) != 10 {
		t.Fatalf("lossless control: delivered %d/10", len(c.pkts))
	}
	if n.Counters().CtrlDrops != 0 {
		t.Fatal("control drops with ControlLossless")
	}
}

func TestControlLossyWhenConfigured(t *testing.T) {
	tp := leafSpine(t, 2, 1, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{BufferBytes: 70, ControlLossless: false})
	var c collector
	n.AttachHost(1, c.recv(e))
	for i := 0; i < 10; i++ {
		n.Inject(0, &packet.Packet{Kind: packet.Nack, Src: 0, Dst: 1, PSN: packet.PSN(i)})
	}
	e.RunAll()
	if n.Counters().CtrlDrops == 0 {
		t.Fatal("expected control drops with tiny buffer and lossy control")
	}
}

func TestLossFuncInjection(t *testing.T) {
	tp := leafSpine(t, 2, 1, 1)
	e := sim.NewEngine(1)
	dropPSN5 := func(p *packet.Packet, sw, port int) bool { return p.PSN == 5 && sw == 0 }
	n := NewNetwork(e, tp, Config{LossFunc: dropPSN5})
	var c collector
	n.AttachHost(1, c.recv(e))
	for i := 0; i < 10; i++ {
		n.Inject(0, newData(0, 1, packet.PSN(i), 1000))
	}
	e.RunAll()
	if len(c.pkts) != 9 {
		t.Fatalf("delivered %d, want 9", len(c.pkts))
	}
	for _, p := range c.pkts {
		if p.PSN == 5 {
			t.Fatal("psn 5 should have been dropped")
		}
	}
}

func TestLossFuncSparesControlWhenLossless(t *testing.T) {
	tp := leafSpine(t, 2, 1, 1)
	e := sim.NewEngine(1)
	dropAll := func(p *packet.Packet, sw, port int) bool { return true }
	n := NewNetwork(e, tp, Config{ControlLossless: true, LossFunc: dropAll})
	var c collector
	n.AttachHost(1, c.recv(e))
	n.Inject(0, newData(0, 1, 0, 1000))
	n.Inject(0, &packet.Packet{Kind: packet.Ack, Src: 0, Dst: 1, PSN: 1})
	e.RunAll()
	// The data packet dies, the ACK survives: lossless control is exempt
	// from loss injection.
	if len(c.pkts) != 1 || c.pkts[0].Kind != packet.Ack {
		t.Fatalf("delivered %d packets", len(c.pkts))
	}
	if n.Counters().CtrlDrops != 0 {
		t.Fatalf("ctrl drops = %d", n.Counters().CtrlDrops)
	}
}

func TestLossFuncHitsControlWhenLossy(t *testing.T) {
	tp := leafSpine(t, 2, 1, 1)
	e := sim.NewEngine(1)
	dropNacks := func(p *packet.Packet, sw, port int) bool { return p.Kind == packet.Nack }
	n := NewNetwork(e, tp, Config{ControlLossless: false, LossFunc: dropNacks})
	var c collector
	n.AttachHost(1, c.recv(e))
	n.Inject(0, &packet.Packet{Kind: packet.Nack, Src: 0, Dst: 1, PSN: 1})
	n.Inject(0, &packet.Packet{Kind: packet.Ack, Src: 0, Dst: 1, PSN: 2})
	e.RunAll()
	if len(c.pkts) != 1 || c.pkts[0].Kind != packet.Ack {
		t.Fatalf("delivered %d packets", len(c.pkts))
	}
	if n.Counters().CtrlDrops != 1 {
		t.Fatalf("ctrl drops = %d, want 1", n.Counters().CtrlDrops)
	}
	if n.Counters().DataDrops != 0 {
		t.Fatalf("data drops = %d", n.Counters().DataDrops)
	}
}

func TestLinkFailureReroutes(t *testing.T) {
	tp := leafSpine(t, 2, 2, 1) // two spines
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{
		NewDataSelector: func() lb.Selector { return lb.RandomSpray{} },
	})
	var c collector
	n.AttachHost(1, c.recv(e))
	// Kill leaf0's uplink to spine0 (port 1).
	n.SetLinkState(0, 1, false)
	for i := 0; i < 50; i++ {
		n.Inject(0, newData(0, 1, packet.PSN(i), 1000))
	}
	e.RunAll()
	if len(c.pkts) != 50 {
		t.Fatalf("delivered %d/50 after reroute", len(c.pkts))
	}
	if pkts, _ := n.PortTxStats(0, 1); pkts != 0 {
		t.Fatal("failed link still carried traffic")
	}
}

func TestAllLinksDownDrops(t *testing.T) {
	tp := leafSpine(t, 2, 1, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{})
	var c collector
	n.AttachHost(1, c.recv(e))
	n.SetLinkState(0, 1, false) // only uplink
	n.Inject(0, newData(0, 1, 0, 1000))
	e.RunAll()
	if len(c.pkts) != 0 {
		t.Fatal("packet delivered over a dead fabric")
	}
	if n.Counters().LinkDrops == 0 {
		t.Fatal("no link drop counted")
	}
}

func TestLinkRecovery(t *testing.T) {
	tp := leafSpine(t, 2, 1, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{})
	var c collector
	n.AttachHost(1, c.recv(e))
	n.SetLinkState(0, 1, false)
	n.SetLinkState(0, 1, true)
	n.Inject(0, newData(0, 1, 0, 1000))
	e.RunAll()
	if len(c.pkts) != 1 {
		t.Fatal("packet lost after link recovery")
	}
}

// recordingPipeline records hook invocations and optionally blocks control.
type recordingPipeline struct {
	uplinks   []packet.PSN // PSNs seen by SelectUplink
	delivered []packet.PSN // PSNs seen by OnDeliverToHost
	ctrl      []packet.PSN // PSNs of control packets seen
	blockAll  bool
	forcePort int // if >= 0, SelectUplink forces this port
	extras    []*packet.Packet
	linkEvts  int
}

func (r *recordingPipeline) SelectUplink(p *packet.Packet, cands []int) (int, bool) {
	r.uplinks = append(r.uplinks, p.PSN)
	if r.forcePort >= 0 {
		return r.forcePort, true
	}
	return 0, false
}
func (r *recordingPipeline) OnDeliverToHost(p *packet.Packet) []*packet.Packet {
	r.delivered = append(r.delivered, p.PSN)
	ex := r.extras
	r.extras = nil
	return ex
}
func (r *recordingPipeline) FilterHostControl(p *packet.Packet) bool {
	r.ctrl = append(r.ctrl, p.PSN)
	return !r.blockAll
}
func (r *recordingPipeline) LinkStateChanged(port int, up bool) { r.linkEvts++ }

func TestPipelineSelectUplinkForced(t *testing.T) {
	tp := leafSpine(t, 2, 4, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{})
	n.AttachHost(1, func(*packet.Packet) {})
	pl := &recordingPipeline{forcePort: 3} // uplink to spine2
	n.SetTorPipeline(0, pl)
	for i := 0; i < 10; i++ {
		n.Inject(0, newData(0, 1, packet.PSN(i), 1000))
	}
	e.RunAll()
	if len(pl.uplinks) != 10 {
		t.Fatalf("SelectUplink saw %d packets", len(pl.uplinks))
	}
	if pkts, _ := n.PortTxStats(0, 3); pkts != 10 {
		t.Fatalf("forced port carried %d packets", pkts)
	}
}

func TestPipelineOnDeliverToHostSeesDataOnly(t *testing.T) {
	tp := leafSpine(t, 2, 1, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{})
	n.AttachHost(1, func(*packet.Packet) {})
	pl := &recordingPipeline{forcePort: -1}
	n.SetTorPipeline(1, pl) // destination-side ToR
	n.Inject(0, newData(0, 1, 7, 1000))
	n.Inject(0, &packet.Packet{Kind: packet.Ack, Src: 0, Dst: 1, PSN: 9})
	e.RunAll()
	if len(pl.delivered) != 1 || pl.delivered[0] != 7 {
		t.Fatalf("OnDeliverToHost saw %v", pl.delivered)
	}
}

func TestPipelineBlocksControl(t *testing.T) {
	tp := leafSpine(t, 2, 1, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{})
	var c collector
	n.AttachHost(0, c.recv(e))
	pl := &recordingPipeline{forcePort: -1, blockAll: true}
	n.SetTorPipeline(1, pl)
	// Host 1 sends a NACK back to host 0; its ToR blocks it.
	n.Inject(1, &packet.Packet{Kind: packet.Nack, Src: 1, Dst: 0, PSN: 3})
	e.RunAll()
	if len(c.pkts) != 0 {
		t.Fatal("blocked NACK was delivered")
	}
	if n.Counters().Blocked != 1 {
		t.Fatalf("Blocked = %d", n.Counters().Blocked)
	}
	if len(pl.ctrl) != 1 || pl.ctrl[0] != 3 {
		t.Fatalf("FilterHostControl saw %v", pl.ctrl)
	}
}

func TestPipelineCompensationInjection(t *testing.T) {
	tp := leafSpine(t, 2, 1, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{})
	var c0, c1 collector
	n.AttachHost(0, c0.recv(e))
	n.AttachHost(1, c1.recv(e))
	pl := &recordingPipeline{forcePort: -1}
	// When the next data packet reaches host 1's ToR, emit a NACK to host 0.
	pl.extras = []*packet.Packet{{Kind: packet.Nack, Src: 1, Dst: 0, PSN: 42}}
	n.SetTorPipeline(1, pl)
	n.Inject(0, newData(0, 1, 0, 1000))
	e.RunAll()
	if len(c1.pkts) != 1 {
		t.Fatal("data packet not delivered")
	}
	if len(c0.pkts) != 1 || c0.pkts[0].Kind != packet.Nack || c0.pkts[0].PSN != 42 {
		t.Fatalf("compensation NACK not delivered: %v", c0.pkts)
	}
	if n.Counters().Compensated != 1 {
		t.Fatalf("Compensated = %d", n.Counters().Compensated)
	}
}

func TestPipelineLinkStateNotification(t *testing.T) {
	tp := leafSpine(t, 2, 2, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{})
	pl := &recordingPipeline{forcePort: -1}
	n.SetTorPipeline(0, pl)
	n.SetLinkState(0, 1, false)
	n.SetLinkState(0, 1, true)
	n.SetLinkState(0, 1, true) // no-op: no event
	if pl.linkEvts != 2 {
		t.Fatalf("link events = %d, want 2", pl.linkEvts)
	}
}

func TestPipelineInstallSyncsDownPorts(t *testing.T) {
	tp := leafSpine(t, 2, 2, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{})
	n.SetLinkState(0, 1, false)
	// A pipeline installed on an already-degraded switch must be told about
	// the down port: LinkStateChanged alone only ever reports edges.
	pl := &recordingPipeline{forcePort: -1}
	n.SetTorPipeline(0, pl)
	if pl.linkEvts != 1 {
		t.Fatalf("synthetic link events on install = %d, want 1", pl.linkEvts)
	}
	n.SetLinkState(0, 1, true)
	if pl.linkEvts != 2 {
		t.Fatalf("link events after repair = %d, want 2", pl.linkEvts)
	}
}

func TestThemisInstalledAfterLinkDown(t *testing.T) {
	tp := leafSpine(t, 2, 2, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{})
	n.SetLinkState(0, 1, false)
	th := core.New(tp, 0, core.Config{FallbackOnFailure: true})
	n.SetTorPipeline(0, th)
	if !th.Disabled() || th.DownPorts() != 1 {
		t.Fatalf("Themis installed on degraded switch: disabled=%v downPorts=%d, want true/1",
			th.Disabled(), th.DownPorts())
	}
	// The repair edge balances the synthetic down edge: no underflow, and
	// the §6 fallback clears exactly when the last link comes back.
	n.SetLinkState(0, 1, true)
	if th.Disabled() || th.DownPorts() != 0 {
		t.Fatalf("after repair: disabled=%v downPorts=%d, want false/0",
			th.Disabled(), th.DownPorts())
	}
}

func TestSetLinkStateOnHostPortPanics(t *testing.T) {
	tp := leafSpine(t, 2, 1, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.SetLinkState(0, 0, false) // port 0 is a host port
}

func TestBufferReleasedAfterTransit(t *testing.T) {
	tp := leafSpine(t, 2, 1, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{BufferBytes: 1 << 20})
	n.AttachHost(1, func(*packet.Packet) {})
	for i := 0; i < 100; i++ {
		n.Inject(0, newData(0, 1, packet.PSN(i), 1000))
	}
	e.RunAll()
	for sw := 0; sw < tp.NumSwitches(); sw++ {
		if used := n.switches[sw].bufUsed; used != 0 {
			t.Fatalf("switch %d leaked %d buffer bytes", sw, used)
		}
	}
}

func TestQueueDepthAccounting(t *testing.T) {
	tp := leafSpine(t, 2, 1, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{})
	n.AttachHost(1, func(*packet.Packet) {})
	for i := 0; i < 10; i++ {
		n.Inject(0, newData(0, 1, packet.PSN(i), 1000))
	}
	e.RunAll()
	// After the run everything has drained.
	for sw := 0; sw < tp.NumSwitches(); sw++ {
		for port := range tp.Switch(sw).Ports {
			if b := n.QueueBytes(sw, port); b != 0 {
				t.Fatalf("switch %d port %d left %d bytes queued", sw, port, b)
			}
		}
	}
	if n.HostUplinkBytes(0) != 0 {
		t.Fatal("host uplink not drained")
	}
}

func TestRemoteFailureReconverges(t *testing.T) {
	// 2 leaves x 2 spines, host0 -> host1 cross-rack. Fail the REMOTE link
	// spine0 <-> leaf1: leaf0 must stop using spine0 even though its own
	// links are all up (routing reconvergence).
	tp := leafSpine(t, 2, 2, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{})
	var c collector
	n.AttachHost(1, c.recv(e))
	// Leaf1 is switch 1; its uplink to spine0 (switch 2) is port 1.
	n.SetLinkState(1, 1, false)
	for i := 0; i < 20; i++ {
		n.Inject(0, newData(0, 1, packet.PSN(i), 1000))
	}
	e.RunAll()
	if len(c.pkts) != 20 {
		t.Fatalf("delivered %d/20 after remote failure", len(c.pkts))
	}
	// Spine0 (switch 2) must have carried nothing.
	for port := range tp.Switch(2).Ports {
		if pkts, _ := n.PortTxStats(2, port); pkts != 0 {
			t.Fatal("traffic still flows through the partitioned spine")
		}
	}
	// Recovery restores both paths.
	n.SetLinkState(1, 1, true)
	if n.downLinks != 0 {
		t.Fatal("down-link count not cleared after full recovery")
	}
}

func TestPartitionDropsAtIngressToR(t *testing.T) {
	tp := leafSpine(t, 2, 1, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{})
	var c collector
	n.AttachHost(1, c.recv(e))
	// Kill the only spine's link to leaf1: leaf0 has no route at all.
	n.SetLinkState(1, 1, false)
	n.Inject(0, newData(0, 1, 0, 1000))
	e.RunAll()
	if len(c.pkts) != 0 {
		t.Fatal("delivered across a partition")
	}
	if n.Counters().LinkDrops == 0 {
		t.Fatal("partition drop not counted")
	}
}

// BenchmarkFabricForward measures the per-packet cost of a full cross-rack
// traversal: host uplink serialization, leaf and spine hops, and delivery on
// the destination ToR's host port. This is the fabric's end-to-end hot path;
// allocs/op here multiply by every packet of every trial in a sweep.
func BenchmarkFabricForward(b *testing.B) {
	tp, err := topo.NewLeafSpine(topo.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 1,
		HostLink:   topo.LinkSpec{Bandwidth: gbps100, Delay: usec},
		FabricLink: topo.LinkSpec{Bandwidth: gbps100, Delay: usec},
	})
	if err != nil {
		b.Fatal(err)
	}
	e := sim.NewEngine(1)
	pool := packet.NewPool()
	n := NewNetwork(e, tp, Config{ControlLossless: true, Pool: pool})
	n.AttachHost(1, func(*packet.Packet) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pool.Get()
		p.Kind, p.Src, p.Dst, p.QP = packet.Data, 0, 1, 1
		p.SPort, p.DPort = 1000, 4791
		p.PSN, p.Payload = packet.PSN(i), 1000
		n.Inject(0, p)
		if i%64 == 63 {
			e.RunAll()
		}
	}
	e.RunAll()
}

// BenchmarkFabricThroughput reports sustained fabric capacity in packets per
// wall-clock second: a 64-packet window of cross-rack traffic kept in flight,
// counting deliveries at the far host. This is the sweep-planning number —
// how many simulated packets one core pushes per real second — complementing
// BenchmarkFabricForward's per-packet latency view.
func BenchmarkFabricThroughput(b *testing.B) {
	tp, err := topo.NewLeafSpine(topo.LeafSpineConfig{
		Leaves: 2, Spines: 2, HostsPerLeaf: 1,
		HostLink:   topo.LinkSpec{Bandwidth: gbps100, Delay: usec},
		FabricLink: topo.LinkSpec{Bandwidth: gbps100, Delay: usec},
	})
	if err != nil {
		b.Fatal(err)
	}
	e := sim.NewEngine(1)
	pool := packet.NewPool()
	n := NewNetwork(e, tp, Config{ControlLossless: true, Pool: pool})
	delivered := 0
	n.AttachHost(1, func(*packet.Packet) { delivered++ }) // deliverToHost recycles
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pool.Get()
		p.Kind, p.Src, p.Dst, p.QP = packet.Data, 0, 1, 1
		p.SPort, p.DPort = 1000, 4791
		p.PSN, p.Payload = packet.PSN(i), 1000
		n.Inject(0, p)
		if i%64 == 63 {
			e.RunAll()
		}
	}
	e.RunAll()
	b.ReportMetric(float64(delivered)/b.Elapsed().Seconds(), "pkts/s")
}

// TestPipeDeliveryOrderAndCompaction floods one path with enough packets
// that every link's propagation pipe crosses the head-compaction threshold
// while still holding a tail, then checks nothing was lost, reordered, or
// duplicated by the burst machinery.
func TestPipeDeliveryOrderAndCompaction(t *testing.T) {
	tp := leafSpine(t, 2, 1, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{ControlLossless: true})
	var c collector
	n.AttachHost(1, c.recv(e))
	const total = 300
	for i := 0; i < total; i++ {
		n.Inject(0, newData(0, 1, packet.PSN(i), 1000))
	}
	e.RunAll()
	if len(c.pkts) != total {
		t.Fatalf("delivered %d of %d", len(c.pkts), total)
	}
	for i, p := range c.pkts {
		if p.PSN != packet.PSN(i) {
			t.Fatalf("delivery %d has PSN %d — pipe reordered or duplicated", i, p.PSN)
		}
		if i > 0 && c.times[i] <= c.times[i-1] {
			t.Fatalf("delivery %d not after %d: %v <= %v", i, i-1, c.times[i], c.times[i-1])
		}
	}
}

// Conservation: every injected data packet is either delivered or counted in
// exactly one drop counter, across random fan-ins and buffer sizes.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, nPkts uint8, bufKB uint8) bool {
		tp := leafSpine(t, 2, 2, 2)
		e := sim.NewEngine(seed)
		n := NewNetwork(e, tp, Config{
			BufferBytes:     int(bufKB)*1024 + 1200, // at least one packet
			ControlLossless: true,
			NewDataSelector: func() lb.Selector { return lb.RandomSpray{} },
		})
		delivered := 0
		n.AttachHost(2, func(*packet.Packet) { delivered++ })
		n.AttachHost(3, func(*packet.Packet) { delivered++ })
		total := int(nPkts) + 1
		for i := 0; i < total; i++ {
			n.Inject(0, newData(0, 2, packet.PSN(i), 1000))
			n.Inject(1, newData(1, 3, packet.PSN(i), 1000))
		}
		e.RunAll()
		ctr := n.Counters()
		return delivered+int(ctr.DataDrops)+int(ctr.LinkDrops) == 2*total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
