package fabric

import (
	"testing"

	"themis/internal/packet"
	"themis/internal/route"
	"themis/internal/sim"
	"themis/internal/topo"
)

// TestTTLExpiryCountsLoopDrop injects a packet whose hop limit cannot cover
// the cross-rack path (leaf + spine + leaf = 3 forwarding decrements) and
// checks it dies as a loop drop, not a delivery.
func TestTTLExpiryCountsLoopDrop(t *testing.T) {
	tp := leafSpine(t, 2, 1, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{})
	var c collector
	n.AttachHost(1, c.recv(e))

	p := newData(0, 1, 0, 1000)
	p.TTL = 2 // decremented to 1 at the ingress leaf, expires at the spine
	n.Inject(0, p)
	e.RunAll()

	if len(c.pkts) != 0 {
		t.Fatal("TTL-expired packet was delivered")
	}
	if got := n.Counters().LoopDrops; got != 1 {
		t.Fatalf("LoopDrops = %d, want 1", got)
	}
	// Oracle mode is permanently quiescent at epoch 0, so an artificially
	// short TTL is charged as a steady-state loop drop — which is exactly
	// why workloads never pre-set TTL and chaos invariant 10 has teeth.
	if got := n.Counters().SteadyLoopDrops; got != 1 {
		t.Fatalf("SteadyLoopDrops = %d, want 1", got)
	}

	// A default-stamped packet crosses fine and arrives with TTL spent per
	// forwarding switch hop.
	q := newData(0, 1, 1, 1000)
	n.Inject(0, q)
	e.RunAll()
	if len(c.pkts) != 1 {
		t.Fatal("default-TTL packet not delivered")
	}
	// Two forwarding decrements (ingress leaf, spine); the egress leaf
	// delivers locally without decrementing.
	if got := c.pkts[0].TTL; got != packet.DefaultTTL-2 {
		t.Fatalf("delivered TTL = %d, want %d", got, packet.DefaultTTL-2)
	}
}

// TestDistributedDelayZeroMatchesOracleForwarding runs the same injection
// schedule with link failures through an oracle fabric and a distributed
// delay-zero fabric and requires identical delivery sets, counters, and
// engine metrics — the fabric-level half of the byte-identity criterion.
func TestDistributedDelayZeroMatchesOracleForwarding(t *testing.T) {
	run := func(routing route.Config) (deliv []packet.PSN, ctr Counters, m sim.Metrics) {
		tp := leafSpine(t, 3, 2, 1)
		e := sim.NewEngine(1)
		n := NewNetwork(e, tp, Config{Routing: routing})
		var c collector
		n.AttachHost(1, c.recv(e))
		for i := 0; i < 10; i++ {
			n.Inject(0, newData(0, 1, packet.PSN(i), 1000))
		}
		e.Schedule(5*sim.Microsecond, func() { n.SetLinkState(0, 1, false) })
		e.Schedule(40*sim.Microsecond, func() { n.SetLinkState(0, 1, true) })
		e.Schedule(50*sim.Microsecond, func() {
			for i := 10; i < 20; i++ {
				n.Inject(0, newData(0, 1, packet.PSN(i), 1000))
			}
		})
		e.RunAll()
		if err := n.RouteConverged(); err != nil {
			t.Fatal(err)
		}
		for _, p := range c.pkts {
			deliv = append(deliv, p.PSN)
		}
		return deliv, n.Counters(), e.Metrics()
	}

	oDeliv, oCtr, oM := run(route.Config{Mode: route.Oracle})
	dDeliv, dCtr, dM := run(route.Config{Mode: route.Distributed})
	if len(oDeliv) != len(dDeliv) {
		t.Fatalf("deliveries differ: oracle %d, distributed %d", len(oDeliv), len(dDeliv))
	}
	for i := range oDeliv {
		if oDeliv[i] != dDeliv[i] {
			t.Fatalf("delivery %d differs: oracle PSN %d, distributed PSN %d", i, oDeliv[i], dDeliv[i])
		}
	}
	if oCtr != dCtr {
		t.Fatalf("counters differ:\noracle      %+v\ndistributed %+v", oCtr, dCtr)
	}
	if oM != dM {
		t.Fatalf("engine metrics differ:\noracle      %+v\ndistributed %+v", oM, dM)
	}
}

// TestDistributedConvergenceWindowBlackholes shows the honest transient: with
// a positive per-hop delay, a remote failure blackholes traffic until the
// withdrawal propagates, where oracle mode would reroute instantly.
func TestDistributedConvergenceWindowBlackholes(t *testing.T) {
	tp := leafSpine(t, 2, 2, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{
		Routing: route.Config{Mode: route.Distributed, PerHopDelay: 50 * sim.Microsecond},
	})
	var c collector
	n.AttachHost(1, c.recv(e))

	// Fail the REMOTE link spine0<->leaf1. Leaf0 keeps spraying over both
	// spines until spine0's withdrawal arrives; packets sent via spine0 in
	// the window die there with no surviving path.
	n.SetLinkState(1, 1, false)
	if n.RouteConverged() == nil {
		t.Fatal("plane reported converged mid-window")
	}
	for i := 0; i < 20; i++ {
		n.Inject(0, newData(0, 1, packet.PSN(i), 1000))
	}
	e.RunAll()
	if err := n.RouteConverged(); err != nil {
		t.Fatal(err)
	}
	if len(c.pkts) == 20 {
		t.Fatal("no blackhole despite convergence window")
	}
	if n.Counters().LinkDrops == 0 {
		t.Fatal("window drops not counted")
	}
	if n.Counters().SteadyLoopDrops != 0 {
		t.Fatal("steady loop drops in a plain blackhole scenario")
	}
}

// TestDrainBeforeDropIsLossless is the maintenance story: drain the link,
// let routing converge away from it, then drop it — nothing is lost, unlike
// an abrupt failure under the same convergence delay.
func TestDrainBeforeDropIsLossless(t *testing.T) {
	tp := leafSpine(t, 2, 2, 1)
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{
		Routing: route.Config{Mode: route.Distributed, PerHopDelay: 5 * sim.Microsecond},
	})
	var c collector
	n.AttachHost(1, c.recv(e))

	n.SetLinkDrained(1, 1, true)
	if n.DrainedLinks() != 1 {
		t.Fatalf("DrainedLinks = %d", n.DrainedLinks())
	}
	// Give the withdrawal time to propagate, then drop the drained link and
	// only then offer traffic.
	e.Schedule(100*sim.Microsecond, func() { n.SetLinkState(1, 1, false) })
	e.Schedule(110*sim.Microsecond, func() {
		for i := 0; i < 20; i++ {
			n.Inject(0, newData(0, 1, packet.PSN(i), 1000))
		}
	})
	e.RunAll()
	if err := n.RouteConverged(); err != nil {
		t.Fatal(err)
	}
	if len(c.pkts) != 20 {
		t.Fatalf("drained maintenance lost packets: %d/20 delivered", len(c.pkts))
	}
	if n.Counters().LinkDrops != 0 {
		t.Fatalf("LinkDrops = %d during drained maintenance", n.Counters().LinkDrops)
	}
}

// BenchmarkLinkFlapStorm guards the incremental oracle reconvergence: each
// flap must cost O(switches) invalidation plus one lazy per-destination BFS
// at next use, not a fabric-wide recompute. The 16x16 fabric makes the old
// O(topology) full recompute per flap visibly expensive.
func BenchmarkLinkFlapStorm(b *testing.B) {
	tp, err := topo.NewLeafSpine(topo.LeafSpineConfig{
		Leaves: 16, Spines: 16, HostsPerLeaf: 4,
		HostLink:   topo.LinkSpec{Bandwidth: gbps100, Delay: usec},
		FabricLink: topo.LinkSpec{Bandwidth: gbps100, Delay: usec},
	})
	if err != nil {
		b.Fatal(err)
	}
	e := sim.NewEngine(1)
	n := NewNetwork(e, tp, Config{})
	// One cross-fabric forwarding decision per flap keeps the lazy fill
	// honest (a pure-invalidation benchmark would never pay the BFS).
	dst := packet.NodeID(4) // first host on leaf1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		leaf := i % 16
		port := 4 + i%16 // uplink ports are 4..19 on a 4-host leaf
		n.SetLinkState(leaf, port, false)
		_ = n.candidatePorts(0, dst)
		n.SetLinkState(leaf, port, true)
		_ = n.candidatePorts(0, dst)
	}
}
