package fabric

import (
	"testing"

	"themis/internal/packet"
	"themis/internal/sim"
)

// TestForwardPathZeroAllocWhenUnobserved proves that disabled observability
// really is free: with a nil tracer and a nil metrics registry, forwarding a
// pooled data packet across the fabric allocates nothing. Guards the
// zero-alloc hot path against instrumentation creep.
func TestForwardPathZeroAllocWhenUnobserved(t *testing.T) {
	tp := leafSpine(t, 2, 2, 1)
	e := sim.NewEngine(1)
	pool := packet.NewPool()
	n := NewNetwork(e, tp, Config{Pool: pool, ControlLossless: true})
	n.AttachHost(1, func(p *packet.Packet) { pool.Put(p) })

	psn := packet.PSN(0)
	send := func() {
		p := pool.Get()
		p.Kind = packet.Data
		p.Src, p.Dst = 0, 1
		p.QP = 1
		p.SPort, p.DPort = 1000, 4791
		p.PSN = psn
		p.Payload = 1000
		psn = psn.Next()
		n.Inject(0, p)
		e.RunAll()
	}
	// Warm up: grow the engine heap, pool free list and queue slices to
	// steady state before measuring.
	for i := 0; i < 100; i++ {
		send()
	}
	if allocs := testing.AllocsPerRun(200, send); allocs != 0 {
		t.Fatalf("forward path allocates %.1f/op with observability disabled", allocs)
	}
}

// TestBurstDeliveryZeroAlloc is the pipelined companion gate: a window of
// packets is kept in flight so every link's propagation pipe holds multiple
// residents and deliverBurst runs its steady-state re-arm/compaction path.
// Once the pipe backing arrays and the event free list are warm, draining a
// whole window must allocate nothing.
func TestBurstDeliveryZeroAlloc(t *testing.T) {
	tp := leafSpine(t, 2, 2, 1)
	e := sim.NewEngine(1)
	pool := packet.NewPool()
	n := NewNetwork(e, tp, Config{Pool: pool, ControlLossless: true})
	n.AttachHost(1, func(*packet.Packet) {}) // deliverToHost recycles into pool

	psn := packet.PSN(0)
	window := func() {
		for k := 0; k < 32; k++ {
			p := pool.Get()
			p.Kind = packet.Data
			p.Src, p.Dst = 0, 1
			p.QP = 1
			p.SPort, p.DPort = 1000, 4791
			p.PSN = psn
			p.Payload = 1000
			psn = psn.Next()
			n.Inject(0, p)
		}
		e.RunAll()
	}
	for i := 0; i < 20; i++ {
		window()
	}
	if allocs := testing.AllocsPerRun(50, window); allocs != 0 {
		t.Fatalf("burst delivery allocates %.1f per 32-packet window, want 0", allocs)
	}
}
