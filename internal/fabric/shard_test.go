package fabric

import (
	"testing"

	"themis/internal/lb"
	"themis/internal/packet"
	"themis/internal/sim"
	"themis/internal/topo"
	"themis/internal/trace"
)

// shardRec is one delivery observation: arrival time and packet identity,
// copied out of the packet before the fabric recycles it.
type shardRec struct {
	at  sim.Time
	src packet.NodeID
	psn packet.PSN
}

// runShardedFabric drives the same cross-rack traffic pattern over a
// leaf-spine partitioned into the given number of shards and returns what
// every host observed plus the fabric counters.
func runShardedFabric(t *testing.T, shards int) ([][]shardRec, Counters, sim.Time) {
	t.Helper()
	tp := leafSpine(t, 4, 2, 2)
	part, err := topo.PartitionRacks(tp, shards)
	if err != nil {
		t.Fatal(err)
	}
	la, err := topo.Lookahead(tp, part)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*sim.Engine, shards)
	for i := range engines {
		engines[i] = sim.NewEngine(sim.StreamSeed(42, uint64(i)))
	}
	g := sim.NewShardGroup(engines, la)
	n, err := NewShardedNetwork(g, tp, part, 42, Config{
		ControlLossless: true,
		NewDataSelector: func() lb.Selector { return lb.RandomSpray{} },
		ECN:             DefaultECN(gbps100),
		PFC:             DefaultPFC(gbps100),
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([][]shardRec, tp.NumHosts())
	for h := 0; h < tp.NumHosts(); h++ {
		h := h
		eng := g.Shard(part.HostShard[h])
		n.AttachHost(packet.NodeID(h), func(p *packet.Packet) {
			recs[h] = append(recs[h], shardRec{at: eng.Now(), src: p.Src, psn: p.PSN})
		})
	}
	// Every host blasts a burst at the host two positions over (always the
	// next rack: 2 hosts per leaf), so all traffic crosses spines and the
	// RandomSpray per-switch RNG streams are exercised.
	hosts := tp.NumHosts()
	for i := 0; i < 25; i++ {
		for h := 0; h < hosts; h++ {
			src, dst := packet.NodeID(h), packet.NodeID((h+2)%hosts)
			n.Inject(src, &packet.Packet{Kind: packet.Data, Src: src, Dst: dst, QP: 1, SPort: uint16(1000 + h), DPort: 4791, PSN: packet.PSN(i), Payload: 1000})
		}
	}
	end := g.RunAll()
	return recs, n.Counters(), end
}

// The sharded-fabric determinism contract: every host observes the exact same
// delivery sequence — times, sources, PSNs — no matter how many shards the
// topology is cut into, and the summed counters agree too.
func TestShardedNetworkShardCountInvariance(t *testing.T) {
	ref, refCtr, refEnd := runShardedFabric(t, 1)
	for _, shards := range []int{2, 4} {
		got, ctr, end := runShardedFabric(t, shards)
		if end != refEnd {
			t.Fatalf("shards=%d: end %v, want %v", shards, end, refEnd)
		}
		if ctr != refCtr {
			t.Fatalf("shards=%d: counters %+v, want %+v", shards, ctr, refCtr)
		}
		for h := range ref {
			if len(got[h]) != len(ref[h]) {
				t.Fatalf("shards=%d host %d: %d deliveries, want %d", shards, h, len(got[h]), len(ref[h]))
			}
			for i := range ref[h] {
				if got[h][i] != ref[h][i] {
					t.Fatalf("shards=%d host %d delivery %d: %+v, want %+v", shards, h, i, got[h][i], ref[h][i])
				}
			}
		}
	}
}

// Sharded networks refuse every feature that couples shards through global
// mutable state, with an explanatory error rather than a race.
func TestShardedNetworkRejectsGlobalFeatures(t *testing.T) {
	tp := leafSpine(t, 2, 2, 1)
	part, err := topo.PartitionRacks(tp, 2)
	if err != nil {
		t.Fatal(err)
	}
	la, err := topo.Lookahead(tp, part)
	if err != nil {
		t.Fatal(err)
	}
	build := func(cfg Config) error {
		g := sim.NewShardGroup([]*sim.Engine{sim.NewEngine(1), sim.NewEngine(2)}, la)
		_, err := NewShardedNetwork(g, tp, part, 1, cfg)
		return err
	}
	if err := build(Config{Tracer: trace.New(16)}); err == nil {
		t.Fatal("tracer accepted")
	}
	if err := build(Config{Pool: packet.NewPool()}); err == nil {
		t.Fatal("shared pool accepted")
	}
	if err := build(Config{}); err != nil {
		t.Fatalf("plain config rejected: %v", err)
	}
	// Mismatched group size.
	g1 := sim.NewShardGroup([]*sim.Engine{sim.NewEngine(1)}, la)
	if _, err := NewShardedNetwork(g1, tp, part, 1, Config{}); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
}

// Runtime link-state changes are a classic-network feature; on a sharded
// network they must fail loudly instead of racing the oracle recompute.
func TestShardedNetworkLinkStatePanics(t *testing.T) {
	tp := leafSpine(t, 2, 2, 1)
	part, _ := topo.PartitionRacks(tp, 2)
	la, _ := topo.Lookahead(tp, part)
	g := sim.NewShardGroup([]*sim.Engine{sim.NewEngine(1), sim.NewEngine(2)}, la)
	n, err := NewShardedNetwork(g, tp, part, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetLinkState on a sharded network did not panic")
		}
	}()
	n.SetLinkState(0, 2, false)
}
