package fabric

import (
	"themis/internal/packet"
	"themis/internal/sim"
	"themis/internal/trace"
)

// outQueue is one egress serializer: two FIFOs (a strict-priority control
// class for ACK/NACK/CNP and a data class) draining at the link rate,
// followed by the link's propagation delay. RoCE deployments carry control
// in a separate high-priority traffic class so acknowledgments never sit
// behind bulk data — the NACK return latency this preserves is exactly what
// sizes Themis-D's PSN ring (§3.3). PFC pause applies to the data class
// only. outQueue is used for every switch port and for each host's access
// link.
type outQueue struct {
	net        *Network
	sw         *swInst // owning switch; nil for host uplink serializers
	port       int     // port index on sw (meaningless when sw == nil)
	isHostPort bool    // this egress faces a host (ToR last hop)
	bw         int64
	delay      sim.Duration
	name       string
	deliver    func(*packet.Packet)

	// eng/ctr/pool are the engine, counter block and packet pool this queue
	// charges. On the classic dataplane they alias the network singletons;
	// on a sharded network they are the owning shard's (see shard.go).
	eng  *sim.Engine
	ctr  *Counters
	pool *packet.Pool

	// Sharded-mode fields. shard is the owning shard index; chanID the
	// queue's stable 1-based channel identity (pri = chanID*2 for packet
	// deliveries, chanID*2+1 for PFC pause frames addressed to this queue);
	// post, when non-nil, replaces the direct propagation-delay schedule in
	// txDone with a pri-stamped schedule or a cross-shard mailbox post.
	shard  int
	chanID uint64
	post   func(*packet.Packet)

	// txDoneFn/deliverFn are the deliver/txDone callbacks pre-bound once at
	// construction (see bind). The serializer schedules them with
	// Engine.ScheduleArg, passing the packet as the argument, so steady-state
	// forwarding allocates no closures: a *Packet stored in an interface is a
	// direct pointer, not a boxing allocation.
	txDoneFn  func(any)
	deliverFn func(any)

	// pauseFn/resumeFn are the PFC pause/resume callbacks pre-bound once, so
	// delivering a pause frame after its propagation delay schedules an
	// existing closure instead of building one per frame.
	pauseFn  func()
	resumeFn func()

	// pipe models the link's propagation delay as a FIFO of in-flight
	// packets. Arrival times are monotone per queue — txDone completions
	// strictly increase (TransmitTime rounds up to ≥1 ps) and the delay is
	// fixed — so only the head's arrival ever needs an engine event.
	// deliverBurst drains every contiguous entry sharing the head's arrival
	// timestamp in one callback (the DPDK rx-burst idiom) and re-arms for the
	// next distinct arrival, bounding the scheduler to ONE pending event per
	// link regardless of how many packets are on the wire. PFC pause frames
	// bypass the serializer entirely (see pfc.go) and never enter the pipe.
	pipe    []pipeSlot
	phead   int
	burstFn func()

	q     []*packet.Packet // data class FIFO
	head  int
	cq    []*packet.Packet // control class FIFO (strict priority)
	chead int

	bytes  int // queued data-class bytes (LB and ECN look at this)
	busy   bool
	paused bool // PFC pause asserted by the downstream ingress (data only)

	// PFC deadlock watchdog (see PFCConfig.WatchdogTimeout). pausedSince is
	// when the current pause was asserted; wdArmed is whether a check is
	// pending; wdFn is the pre-bound check callback.
	pausedSince sim.Time
	wdArmed     bool
	wdFn        func()

	txPackets uint64
	txBytes   uint64
}

// pipeSlot is one in-flight packet on a link's propagation pipe.
type pipeSlot struct {
	pkt *packet.Packet
	at  sim.Time
}

// bind installs the arg-carrying schedule callbacks. Must be called once
// after the deliver field is set.
func (q *outQueue) bind() {
	q.txDoneFn = func(a any) { q.txDone(a.(*packet.Packet)) }
	q.deliverFn = func(a any) { q.deliver(a.(*packet.Packet)) }
	q.pauseFn = func() { q.setPaused(true) }
	q.resumeFn = func() { q.setPaused(false) }
	q.wdFn = q.watchdogCheck
	q.burstFn = q.deliverBurst
}

// enqueue appends pkt to its class and starts the serializer if possible.
func (q *outQueue) enqueue(pkt *packet.Packet) {
	if pkt.Kind.IsControl() {
		q.cq = append(q.cq, pkt) //lint:alloc-ok FIFO growth is amortized; the backing array is retained
	} else {
		q.q = append(q.q, pkt) //lint:alloc-ok FIFO growth is amortized; the backing array is retained
		q.bytes += pkt.Size()
		if q.paused {
			q.armWatchdog()
		}
	}
	if !q.busy {
		q.maybeStart()
	}
}

// next dequeues the next transmittable packet: control first, then data
// unless PFC-paused.
func (q *outQueue) next() *packet.Packet {
	if q.chead < len(q.cq) {
		pkt := q.cq[q.chead]
		q.cq[q.chead] = nil
		q.chead++
		if q.chead > 64 && q.chead*2 >= len(q.cq) {
			n := copy(q.cq, q.cq[q.chead:])
			q.cq = q.cq[:n]
			q.chead = 0
		}
		return pkt
	}
	if q.paused || q.head >= len(q.q) {
		return nil
	}
	pkt := q.q[q.head]
	q.q[q.head] = nil
	q.head++
	if q.head > 64 && q.head*2 >= len(q.q) {
		n := copy(q.q, q.q[q.head:])
		q.q = q.q[:n]
		q.head = 0
	}
	q.bytes -= pkt.Size()
	return pkt
}

// maybeStart begins serializing the next eligible packet, if any.
func (q *outQueue) maybeStart() {
	pkt := q.next()
	if pkt == nil {
		return
	}
	q.busy = true
	// Themis-D hook: a data packet leaving a ToR towards its host (§3.3
	// "before they leave the ToR switch"). Compensation NACKs are injected
	// into the switch and routed normally.
	if q.sw != nil && pkt.Kind == packet.Data && q.sw.pipeline != nil && q.isHostPort {
		for _, extra := range q.sw.pipeline.OnDeliverToHost(pkt) {
			q.ctr.Compensated++
			if extra.TTL == 0 {
				extra.TTL = packet.DefaultTTL
			}
			extra.RouteEpoch = q.net.routeEpoch()
			q.sw.receive(extra, -1)
		}
	}
	ser := sim.TransmitTime(pkt.Size(), q.bw)
	q.eng.ScheduleArg(ser, q.txDoneFn, pkt)
}

// txDone fires when the last bit of pkt leaves the port: buffer space is
// released, the packet propagates (unless the link failed mid-flight), and
// the next packet starts.
func (q *outQueue) txDone(pkt *packet.Packet) {
	q.txPackets++
	q.txBytes += uint64(pkt.Size())
	if q.sw != nil {
		q.sw.release(pkt)
	}
	if q.sw != nil && !q.sw.portUp[q.port] {
		q.ctr.LinkDrops++
		q.pool.Put(pkt)
	} else if q.delay > 0 {
		if q.post != nil {
			// Sharded switch-to-switch link: pri-stamped schedule on the
			// peer's engine, via the epoch mailbox when the peer lives on
			// another shard (see shard.go).
			q.post(pkt)
		} else {
			q.pipePush(pkt)
		}
	} else {
		q.deliver(pkt)
	}
	q.busy = false
	q.maybeStart()
}

// pipePush commits pkt to the propagation pipe, arriving one link delay from
// now. Appending preserves arrival order (arrival times strictly increase per
// queue); the head-arrival engine event is armed only when the pipe was
// empty — otherwise the pending deliverBurst chains the next arm itself.
func (q *outQueue) pipePush(pkt *packet.Packet) {
	at := q.eng.Now().Add(q.delay)
	if q.phead >= len(q.pipe) {
		q.pipe = q.pipe[:0]
		q.phead = 0
		q.eng.At(at, q.burstFn)
	}
	q.pipe = append(q.pipe, pipeSlot{pkt: pkt, at: at}) //lint:alloc-ok pipe growth is amortized; the backing array is retained
}

// deliverBurst fires at the head arrival time and delivers every contiguous
// packet sharing that timestamp as one burst. The re-arm for the next
// distinct arrival happens BEFORE the deliveries: the next arrival must sort
// ahead of same-timestamp events scheduled by the delivery cascade (the
// downstream port's txDone in particular), matching the per-event model
// where every delivery was scheduled at its own transmission completion —
// ahead of anything the receiving switch schedules on arrival. A link
// failing mid-flight does not drop pipe residents: txDone gates on portUp at
// transmission completion, and a packet past that point was already
// committed to the wire under the per-event model too.
func (q *outQueue) deliverBurst() {
	now := q.eng.Now()
	end := q.phead
	for end < len(q.pipe) && q.pipe[end].at == now {
		end++
	}
	if end < len(q.pipe) {
		q.eng.At(q.pipe[end].at, q.burstFn)
	}
	for q.phead < end {
		pkt := q.pipe[q.phead].pkt
		q.pipe[q.phead] = pipeSlot{}
		q.phead++
		q.deliver(pkt)
	}
	if q.phead >= len(q.pipe) {
		q.pipe = q.pipe[:0]
		q.phead = 0
		return
	}
	if q.phead > 64 && q.phead*2 >= len(q.pipe) {
		n := copy(q.pipe, q.pipe[q.phead:])
		for i := n; i < len(q.pipe); i++ {
			q.pipe[i] = pipeSlot{}
		}
		q.pipe = q.pipe[:n]
		q.phead = 0
	}
}

// setPaused gates the data class. Resuming kicks the queue; pausing with a
// data backlog arms the deadlock watchdog.
func (q *outQueue) setPaused(pause bool) {
	if q.paused == pause {
		return
	}
	q.paused = pause
	if pause {
		q.pausedSince = q.eng.Now()
		if q.head < len(q.q) {
			q.armWatchdog()
		}
		return
	}
	if !q.busy {
		q.maybeStart()
	}
}

// armWatchdog schedules a deadlock check WatchdogTimeout from now. Host
// uplink serializers are exempt: a pause cycle is a switch-buffer
// phenomenon, and a host queue paused by its ToR is ordinary backpressure.
func (q *outQueue) armWatchdog() {
	wd := q.net.cfg.PFC.WatchdogTimeout
	if wd <= 0 || q.sw == nil || q.wdArmed {
		return
	}
	q.wdArmed = true
	q.eng.Schedule(wd, q.wdFn)
}

// watchdogCheck declares the queue deadlocked if it has been continuously
// paused for the full timeout while still holding data, and flushes the
// data backlog: releasing the buffer space and PFC ingress accounting those
// packets pin lets the upstream pauses clear and the cycle unwind. The
// check never re-arms itself unconditionally — a fresh arm needs a new
// pause assertion or a new enqueue under pause — so a drained engine stays
// drained.
func (q *outQueue) watchdogCheck() {
	q.wdArmed = false
	if !q.paused || q.head >= len(q.q) {
		return
	}
	wd := q.net.cfg.PFC.WatchdogTimeout
	if elapsed := q.eng.Now().Sub(q.pausedSince); elapsed < wd {
		// The pause toggled since this check was armed; watch the remainder
		// of the current episode.
		q.wdArmed = true
		q.eng.Schedule(wd-elapsed, q.wdFn)
		return
	}
	q.ctr.WatchdogFires++
	for q.head < len(q.q) {
		pkt := q.q[q.head]
		q.q[q.head] = nil
		q.head++
		q.bytes -= pkt.Size()
		q.sw.release(pkt)
		q.ctr.WatchdogDrops++
		q.net.cfg.Tracer.RecordPacket(q.eng.Now(), trace.Drop, q.sw.sw.ID, q.port, pkt)
		q.pool.Put(pkt)
	}
	q.q = q.q[:0]
	q.head = 0
}
