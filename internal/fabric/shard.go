package fabric

import (
	"fmt"

	"themis/internal/packet"
	"themis/internal/route"
	"themis/internal/sim"
	"themis/internal/topo"
)

// This file wires the dataplane onto a sim.ShardGroup: every switch and host
// uplink is owned by exactly one shard (engine, counter block, packet pool),
// switch-to-switch link egress crossing a shard boundary goes through the
// group's epoch mailboxes instead of a direct Schedule call, and every
// cross-component delivery carries a stable per-channel priority so that
// same-time event order at any component is invariant under repartitioning.
//
// Global mutable state that cannot be partitioned is rejected up front:
// tracers, metrics registries, loss-injection hooks, the distributed routing
// plane and runtime link state changes all couple shards through shared
// memory or global recomputation, so NewShardedNetwork refuses them. The
// classic NewNetwork dataplane keeps all of those features.

// streamKeySwitch is the sim.StreamSeed key namespace for per-switch RNG
// streams (ECN marking, randomized selectors). Keyed by the global switch ID
// — a partition-invariant identity — so the draws a switch observes are the
// same for every shard count.
func streamKeySwitch(swID int) uint64 { return 0xFA<<56 | uint64(swID) }

// shardState is the sharded-mode wiring of a Network.
type shardState struct {
	group *sim.ShardGroup
	part  topo.Partition
	// counters/pools/seq are the per-shard blocks components charge during
	// an epoch; Counters() sums them in shard-index order.
	counters []Counters
	pools    []*packet.Pool
	seq      []uint64
}

// NewShardedNetwork builds a dataplane partitioned across the engines of a
// sim.ShardGroup. seed is the trial seed per-switch RNG streams derive from
// (sim.StreamSeed). The partition must be rack-granular (every host in its
// ToR's shard, see topo.PartitionRacks) and the group's lookahead must be a
// lower bound on cross-shard link delays (topo.Lookahead).
func NewShardedNetwork(group *sim.ShardGroup, t *topo.Topology, part topo.Partition, seed int64, cfg Config) (*Network, error) {
	if part.Shards != group.Shards() {
		return nil, fmt.Errorf("fabric: partition has %d shards, group has %d", part.Shards, group.Shards())
	}
	if len(part.SwitchShard) != t.NumSwitches() || len(part.HostShard) != t.NumHosts() {
		return nil, fmt.Errorf("fabric: partition shape does not match topology")
	}
	switch {
	case cfg.Tracer != nil:
		return nil, fmt.Errorf("fabric: tracing is not supported on a sharded network (the trace ring is global mutable state)")
	case cfg.Metrics != nil:
		return nil, fmt.Errorf("fabric: a metrics registry is not supported on a sharded network (gauges read cross-shard state)")
	case cfg.LossFunc != nil:
		return nil, fmt.Errorf("fabric: LossFunc is not supported on a sharded network (a shared hook couples shards)")
	case cfg.Routing.Mode == route.Distributed:
		return nil, fmt.Errorf("fabric: distributed routing is not supported on a sharded network (the plane is a global subsystem)")
	case cfg.Pool != nil:
		return nil, fmt.Errorf("fabric: Config.Pool must be nil on a sharded network; pools are per shard (ShardPool)")
	}
	for h := 0; h < t.NumHosts(); h++ {
		if part.HostShard[h] != part.SwitchShard[t.ToROf(packet.NodeID(h))] {
			return nil, fmt.Errorf("fabric: host %d is not in its ToR's shard; the partition must be rack-granular", h)
		}
	}

	n := newNetwork(t, cfg)
	sh := &shardState{
		group:    group,
		part:     part,
		counters: make([]Counters, part.Shards),
		pools:    make([]*packet.Pool, part.Shards),
		seq:      make([]uint64, part.Shards),
	}
	for i := range sh.pools {
		sh.pools[i] = packet.NewPool()
	}
	n.sh = sh

	// Deal every switch and queue to its shard and assign channel
	// identities. chanID enumeration order (switch ID, then port; hosts
	// after all switches) is a pure function of the topology, never of the
	// partition — the invariance of delivery priorities depends on that.
	chanID := uint64(1)
	for _, s := range n.switches {
		shard := part.SwitchShard[s.sw.ID]
		s.shard = shard
		s.eng = group.Shard(shard)
		s.ctr = &sh.counters[shard]
		s.pool = sh.pools[shard]
		s.rng = sim.NewStream(seed, streamKeySwitch(s.sw.ID))
		for pi, q := range s.ports {
			q.shard = shard
			q.eng = s.eng
			q.ctr = s.ctr
			q.pool = s.pool
			q.chanID = chanID
			chanID++
			p := &s.sw.Ports[pi]
			if p.IsHostPort() {
				continue // ToR→host delivery stays a plain same-shard schedule
			}
			peerShard := part.SwitchShard[p.PeerSwitch]
			pri := q.chanID * 2
			src := q
			if peerShard == shard {
				src.post = func(pkt *packet.Packet) {
					src.eng.AtArgPri(src.eng.Now().Add(src.delay), pri, src.deliverFn, pkt)
				}
			} else {
				dst := peerShard
				src.post = func(pkt *packet.Packet) {
					sh.group.PostArg(shard, dst, src.eng.Now().Add(src.delay), pri, src.deliverFn, pkt)
				}
			}
		}
	}
	for h, q := range n.hostUp {
		shard := part.HostShard[h]
		q.shard = shard
		q.eng = group.Shard(shard)
		q.ctr = &sh.counters[shard]
		q.pool = sh.pools[shard]
		q.chanID = chanID
		chanID++
	}
	return n, nil
}

// Sharded reports whether this network runs on a shard group.
func (n *Network) Sharded() bool { return n.sh != nil }

// ShardPool returns shard i's packet pool. Components that inject packets
// (NICs, traffic sources) must allocate from the pool of the shard that owns
// them, so that Get/Put stay shard-local.
func (n *Network) ShardPool(i int) *packet.Pool { return n.sh.pools[i] }
