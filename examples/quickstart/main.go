// Quickstart: build a two-rack cluster, send one RDMA message across it with
// packet spraying, and watch Themis block the spurious NACKs that NIC-SR
// generates for out-of-order arrivals.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"themis"
)

func main() {
	// A 2-leaf x 4-spine fabric, four hosts per rack, 100 Gbps everywhere.
	// LB == Themis installs the middleware on both ToR switches: Themis-S
	// sprays data packets over the four spines by PSN; Themis-D filters the
	// NACKs coming back from the receiving RNIC.
	cl, err := themis.BuildCluster(themis.ClusterConfig{
		Seed:         42,
		Leaves:       2,
		Spines:       4,
		HostsPerLeaf: 4,
		Bandwidth:    100e9,
		LB:           themis.Themis,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Four cross-rack flows (host i -> host 4+i) create enough contention
	// on the spines for multi-path delay variation — the condition that
	// makes commodity NIC-SR misfire NACKs.
	const message = 8 << 20 // 8 MB each
	done := 0
	for i := 0; i < 4; i++ {
		conn := cl.Conn(themis.NodeID(i), themis.NodeID(4+i))
		conn.Send(message, func() { done++ })
	}

	// Drive the discrete-event simulation to completion.
	end := cl.Run(themis.Second)
	if done != 4 {
		log.Fatalf("only %d/4 flows completed by %v", done, end)
	}

	agg := cl.AggregateSenderStats()
	mid := cl.ThemisStats()
	fmt.Printf("transferred 4 x %d MB across racks in %.3f ms\n", message>>20, end.Seconds()*1e3)
	fmt.Printf("  data packets        : %d\n", agg.DataPackets)
	fmt.Printf("  spurious retransmits: %d\n", agg.Retransmits)
	fmt.Printf("  NACKs reaching NICs : %d\n", agg.NacksRx)
	fmt.Printf("  themis sprayed      : %d packets over 4 paths\n", mid.Sprayed)
	fmt.Printf("  themis blocked      : %d invalid NACKs\n", mid.NacksBlocked)
	fmt.Printf("  themis compensated  : %d real losses\n", mid.Compensations)
}
