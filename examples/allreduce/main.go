// Allreduce (Fig. 5a): the paper's headline evaluation at a reduced message
// size — 16 groups of 16 NICs on the 16x16 400 Gbps leaf-spine, ring
// Allreduce, comparing ECMP, adaptive routing and Themis under a chosen
// DCQCN configuration.
//
//	go run ./examples/allreduce [-bytes N] [-ti us] [-td us]
package main

import (
	"flag"
	"fmt"
	"log"

	"themis"
)

func main() {
	bytes := flag.Int64("bytes", 3<<20, "collective size per group (paper: 300 MB)")
	ti := flag.Int64("ti", 900, "DCQCN rate-increase timer TI, microseconds")
	td := flag.Int64("td", 4, "DCQCN rate-decrease interval TD, microseconds")
	flag.Parse()

	fmt.Printf("Fig. 5a cell: ring Allreduce, %d KB per group, DCQCN (TI,TD)=(%d,%d)us\n\n",
		*bytes>>10, *ti, *td)
	fmt.Printf("%-10s %12s %14s %10s %10s\n", "arm", "tailCCT_ms", "retransRatio", "nacksRx", "blocked")

	var ar, th float64
	for _, arm := range themis.Fig5Arms() {
		res, err := themis.RunCollective(themis.CollectiveConfig{
			Seed:         1,
			Pattern:      themis.Allreduce,
			MessageBytes: *bytes,
			LB:           arm,
			TI:           themis.Duration(*ti) * themis.Microsecond,
			TD:           themis.Duration(*td) * themis.Microsecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		ms := res.TailCCT.Seconds() * 1e3
		fmt.Printf("%-10s %12.3f %14.4f %10d %10d\n",
			arm, ms, res.RetransRatio(), res.Sender.NacksRx, res.Middleware.NacksBlocked)
		switch arm {
		case themis.Adaptive:
			ar = ms
		case themis.Themis:
			th = ms
		}
	}
	fmt.Printf("\nThemis completes %.1f%% faster than adaptive routing (paper range: 15.6%%-75.3%%).\n",
		(ar-th)/ar*100)
}
