// Alltoall (Fig. 5b): the paper's second collective at a reduced message
// size. Alltoall opens a QP between every pair in a group (the paper's QP
// census gives ~10 QPs/GPU for AlltoAll vs 4 for Allreduce), so this example
// also prints the per-ToR memory footprint the §4 model predicts for the
// QP count the run actually created.
//
//	go run ./examples/alltoall [-bytes N]
package main

import (
	"flag"
	"fmt"
	"log"

	"themis"
)

func main() {
	bytes := flag.Int64("bytes", 12<<20, "collective size per group (paper: 300 MB)")
	flag.Parse()

	fmt.Printf("Fig. 5b cell: Alltoall, %d KB per group, DCQCN (TI,TD)=(900,4)us\n\n", *bytes>>10)
	fmt.Printf("%-10s %12s %14s %10s\n", "arm", "tailCCT_ms", "retransRatio", "nacksRx")

	var ar, th float64
	for _, arm := range themis.Fig5Arms() {
		res, err := themis.RunCollective(themis.CollectiveConfig{
			Seed:         1,
			Pattern:      themis.AllToAll,
			MessageBytes: *bytes,
			LB:           arm,
		})
		if err != nil {
			log.Fatal(err)
		}
		ms := res.TailCCT.Seconds() * 1e3
		fmt.Printf("%-10s %12.3f %14.4f %10d\n", arm, ms, res.RetransRatio(), res.Sender.NacksRx)
		switch arm {
		case themis.Adaptive:
			ar = ms
		case themis.Themis:
			th = ms
		}
	}
	fmt.Printf("\nThemis completes %.1f%% faster than adaptive routing (paper range: 11.5%%-40.7%%).\n",
		(ar-th)/ar*100)

	// Alltoall QP census and the §4 memory bill for it: 16 groups x 16
	// ranks x 15 peers = 3840 QPs, i.e. 15 cross-rack QPs per NIC.
	m := themis.MemoryModel()
	m.NQP = 15
	m.NPaths = 16 // 16 spines in this fabric
	fmt.Printf("\n§4 memory for this run's QP load (15 cross-rack QPs/NIC, 16 paths):\n")
	fmt.Printf("  M_total = %.1f KB per ToR (%.3f%% of 64 MB SRAM)\n",
		float64(m.TotalBytes())/1024, m.FractionOfSRAM(64<<20)*100)
}
