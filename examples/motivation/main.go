// Motivation (Fig. 1): why packet spraying breaks commodity RNICs.
//
// Reproduces the §2.2 study at a reduced message size: two 4-node ring
// groups over a 100 Gbps leaf-spine, random packet spraying, NIC-SR
// transport. No packet is ever lost, yet the receivers NACK out-of-order
// arrivals, the senders retransmit spuriously and DCQCN keeps cutting the
// rate — and an "ideal" transport on the identical network shows what is
// being left on the table.
//
//	go run ./examples/motivation [-bytes N]
package main

import (
	"flag"
	"fmt"
	"log"

	"themis"
)

func main() {
	bytes := flag.Int64("bytes", 10<<20, "message size per flow (paper: 100 MB)")
	flag.Parse()

	fmt.Printf("Fig. 1 motivation study, %d MB per flow\n\n", *bytes>>20)
	fmt.Printf("%-8s %12s %12s %12s %12s\n", "arm", "retransRatio", "avgRateGbps", "tputGbps", "cctMs")
	var nicsr, ideal *themis.MotivationResult
	for _, tr := range []themis.Transport{themis.SelectiveRepeat, themis.Ideal} {
		res, err := themis.RunMotivation(themis.MotivationConfig{
			Seed:         1,
			MessageBytes: *bytes,
			Transport:    tr,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12.4f %12.1f %12.2f %12.3f\n",
			tr, res.AvgRetransRatio, res.AvgRateGbps, res.AvgThroughput,
			res.CompletionTime.Seconds()*1e3)
		if tr == themis.SelectiveRepeat {
			nicsr = res
		} else {
			ideal = res
		}
	}

	fmt.Printf("\nNIC-SR achieves %.0f%% of the ideal transport's throughput (paper: 71%% = 68.09/95.43 Gbps).\n",
		nicsr.AvgThroughput/ideal.AvgThroughput*100)
	fmt.Printf("All %d retransmissions were spurious: the fabric dropped nothing.\n",
		nicsr.Sender.Retransmits)

	// A glimpse of the Fig. 1b series: the first few windows of the
	// observed flow's retransmission ratio.
	fmt.Printf("\nFig. 1b head (time_us ratio):\n")
	for i, s := range nicsr.RetransRatio.Samples {
		if i >= 8 {
			break
		}
		fmt.Printf("  %8.1f %.3f\n", s.T.Microseconds(), s.V)
	}
}
