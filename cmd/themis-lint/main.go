// Command themis-lint runs the repo's static-analysis suite (internal/lint)
// over the given package patterns and prints findings in file:line:col form.
// It exits 1 when any diagnostic is reported, so it gates `make verify`.
//
// Usage:
//
//	themis-lint [-C moddir] [patterns...]
//
// Patterns default to ./internal/... ./cmd/... and follow go-tool spelling
// (a directory, or dir/... for the subtree).
package main

import (
	"flag"
	"fmt"
	"os"

	"themis/internal/lint"
)

func main() {
	modRoot := flag.String("C", ".", "module root directory (containing go.mod)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: themis-lint [-C moddir] [patterns...]\n")
		flag.PrintDefaults()
		fmt.Fprintln(flag.CommandLine.Output(), "\nanalyzers:")
		for _, a := range lint.Analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"internal/...", "cmd/..."}
	}
	diags, err := lint.Run(*modRoot, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "themis-lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "themis-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
