// Command themis-lint runs the repo's static-analysis suite (internal/lint)
// over the given package patterns and prints findings in file:line:col form,
// with source→sink paths on indented continuation lines for the dataflow
// analyzers. It exits 1 when any non-baselined finding is reported, so the
// suite gates `make verify`.
//
// Usage:
//
//	themis-lint [-C moddir] [-json] [-sarif file] [-baseline file]
//	            [-write-baseline] [-escapes] [patterns...]
//
// Patterns default to ./internal/... ./cmd/... and follow go-tool spelling
// (a directory, or dir/... for the subtree).
//
//	-json           emit findings as a JSON array on stdout
//	-sarif file     also write SARIF 2.1.0 (taint paths become codeFlows)
//	-baseline file  suppress findings recorded in the baseline (default
//	                lint.baseline.json at the module root, if present)
//	-write-baseline rewrite the baseline file to accept all current findings
//	-escapes        list every active //lint:* escape with its justification
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"themis/internal/lint"
)

func main() {
	modRoot := flag.String("C", ".", "module root directory (containing go.mod)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	sarifPath := flag.String("sarif", "", "write SARIF 2.1.0 report to this file")
	baselinePath := flag.String("baseline", "", "baseline file of accepted findings (default lint.baseline.json if present)")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the baseline file accepting all current findings")
	listEscapes := flag.Bool("escapes", false, "list active //lint:* escape directives and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: themis-lint [-C moddir] [-json] [-sarif file] [-baseline file] [-write-baseline] [-escapes] [patterns...]\n")
		flag.PrintDefaults()
		fmt.Fprintln(flag.CommandLine.Output(), "\nanalyzers:")
		for _, a := range lint.Analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"internal/...", "cmd/..."}
	}

	if *listEscapes {
		escapes, err := lint.ListEscapes(*modRoot, patterns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "themis-lint:", err)
			os.Exit(2)
		}
		for _, e := range escapes {
			just := e.Justification
			if just == "" {
				just = "(no justification)"
			}
			fmt.Printf("%s:%d: //lint:%s — %s\n", e.File, e.Line, e.Directive, just)
		}
		fmt.Fprintf(os.Stderr, "themis-lint: %d active escape(s)\n", len(escapes))
		return
	}

	diags, err := lint.Run(*modRoot, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "themis-lint:", err)
		os.Exit(2)
	}

	bp := *baselinePath
	if bp == "" {
		if def := filepath.Join(*modRoot, "lint.baseline.json"); fileExists(def) {
			bp = def
		}
	}
	if *writeBaseline {
		if bp == "" {
			bp = filepath.Join(*modRoot, "lint.baseline.json")
		}
		if err := lint.WriteBaseline(bp, *modRoot, diags); err != nil {
			fmt.Fprintln(os.Stderr, "themis-lint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "themis-lint: wrote %d finding(s) to %s\n", len(diags), bp)
		return
	}
	baselined := 0
	if bp != "" {
		base, err := lint.LoadBaseline(bp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "themis-lint:", err)
			os.Exit(2)
		}
		diags, baselined = base.Filter(*modRoot, diags)
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "themis-lint:", err)
			os.Exit(2)
		}
		err = lint.WriteSARIF(f, *modRoot, diags)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "themis-lint:", err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, *modRoot, diags); err != nil {
			fmt.Fprintln(os.Stderr, "themis-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if baselined > 0 {
		fmt.Fprintf(os.Stderr, "themis-lint: %d baselined finding(s) suppressed\n", baselined)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "themis-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && !st.IsDir()
}
