// Command memcalc prints the §4 memory-overhead analysis (Table 1): the
// worked k=32 fat-tree example plus a small sensitivity table over link
// rates and path counts.
package main

import (
	"fmt"

	"themis/internal/memmodel"
	"themis/internal/sim"
)

func main() {
	p := memmodel.PaperDefaults()
	fmt.Print(p.Report())

	ft := memmodel.FatTree{K: 32}
	fmt.Printf("\nWorked example fabric (fat-tree k=32):\n")
	fmt.Printf("  %d ToR + %d spine + %d core switches, %d NICs, max %d equal-cost paths\n",
		ft.Leaves(), ft.Spines(), ft.Cores(), ft.Hosts(), ft.MaxPaths())

	fmt.Printf("\nSensitivity (M_total KB per ToR):\n")
	fmt.Printf("%-12s %10s %10s %10s\n", "BW \\ paths", "64", "256", "1024")
	for _, bw := range []int64{100e9, 400e9, 800e9} {
		fmt.Printf("%-12s", fmt.Sprintf("%dG", bw/1e9))
		for _, paths := range []int{64, 256, 1024} {
			q := p
			q.Bandwidth = bw
			q.NPaths = paths
			fmt.Printf(" %10.1f", float64(q.TotalBytes())/1024)
		}
		fmt.Println()
	}

	fmt.Printf("\nRTT sensitivity (N_entries per QP):\n")
	for _, rtt := range []sim.Duration{1, 2, 4, 8} {
		q := p
		q.RTTLast = rtt * sim.Microsecond
		fmt.Printf("  RTT_last=%dus -> %d entries (%d B per QP)\n", rtt, q.QueueEntries(), q.PerQPBytes())
	}
}
