// Command themis-sim runs the paper's experiments from the command line.
//
//	themis-sim motivation [-bytes N] [-seed S] [-transport nic-sr|ideal|gbn] [-series]
//	    Fig. 1: the §2.2 motivation study (retransmission ratio, sending
//	    rate, throughput vs the ideal transport).
//
//	themis-sim collective [-pattern allreduce|alltoall] [-lb ecmp|rps|adaptive|flowlet|spray-nothemis|themis|reps|congestion]
//	    [-bytes N] [-ti us] [-td us] [-leaves N] [-spines N] [-hosts N] [-bw gbps] [-seed S]
//	    One Fig. 5 cell: tail completion time of the slowest group.
//
//	themis-sim run [-workload motivation|collective|incast|chaos|churn|convergence|spray] [-lb ...] [-transport ...]
//	    [-pattern ...] [-bytes N] [-seed S] [-leaves N] [-spines N] [-hosts N] [-fattree-k K] [-bw gbps]
//	    [-shards N] [-json out.json]
//	    [-qps N] [-concurrency N] [-faults] [-table-budget BYTES] [-idle-timeout US] [-relearn]
//	    [-distributed] [-convergence-delay US] [-drain]
//	    [-metrics] [-flight-dir DIR] [-cpuprofile F] [-memprofile F] [-pprof-addr HOST:PORT]
//	    One declarative scenario through the experiment harness; prints the
//	    trial record and optionally writes it as a JSON report. -metrics
//	    snapshots the trial's metrics registry into the record; -flight-dir
//	    arms a flight recorder that dumps a JSONL trace on failure. The churn
//	    workload takes -qps/-concurrency (flow churn shape), -faults (seeded
//	    ToR reboots + a link flap), and the lifecycle knobs: -table-budget
//	    caps each instance's flow table at the §4 SRAM budget, -idle-timeout
//	    evicts entries idle for that long, -relearn re-registers evicted
//	    flows from live data packets. -distributed replaces the instant
//	    routing oracle with the per-switch BGP-style control plane and
//	    -convergence-delay sets its per-hop message delay (delay 0 is the
//	    oracle fixed point, bit-identical to oracle mode); the convergence
//	    workload runs the seeded routing-stressor fault schedule (flap
//	    storms, pod-uplink loss, maintenance drains) and -drain appends an
//	    explicit maintenance drain to it. The spray workload is the
//	    space-parallel fat-tree permutation (-fattree-k sets the radix);
//	    -shards N partitions any workload's trial across N engine shards —
//	    results are byte-identical for every shard count, so like -parallel
//	    it is an execution knob, not an experiment arm. The reps and
//	    congestion LB arms take -reps-cache (entropy-cache ring capacity)
//	    and -path-buckets (per-path entropy buckets for the switch EWMA and
//	    per-path DCQCN coupling).
//
//	themis-sim sweep [-grid fig5|fig1|smoke|chaos|churn|convergence|spray|reps|queue-factor|path-subset|loss-recovery]
//	    [-pattern allreduce|alltoall] [-bytes N] [-seed S] [-seeds N] [-parallel N] [-shards N] [-json out.json]
//	    [-sched wheel|heap] [-metrics] [-flight-dir DIR] [-cpuprofile F] [-memprofile F] [-pprof-addr HOST:PORT]
//	    A scenario grid through the parallel runner (default: the full Fig. 5
//	    matrix, all five DCQCN settings × {ECMP, AR, Themis}). -parallel N
//	    runs N trials concurrently — per-seed results are bit-identical to a
//	    sequential run. -json writes the aggregated report artifact. -sched
//	    selects the engine's event-queue backend: the timing wheel (default)
//	    or the binary-heap differential oracle — reports are byte-identical
//	    under both, which bench-smoke re-proves on every run.
//	    -cpuprofile/-memprofile write pprof profiles of the sweep;
//	    -pprof-addr serves live net/http/pprof while it runs.
//
//	themis-sim memory [-paths N] [-bw gbps] [-rtt us] [-nics N] [-qps N] [-mtu N] [-factor F]
//	    Table 1 / §4: the Themis memory-overhead model.
//
//	themis-sim trace [-qp N] [-last N] [-json out.jsonl]
//	    Run a small contended Themis scenario and dump the packet/middleware
//	    event trace — the evidence trail behind each NACK verdict. -json
//	    exports the full trace as a schema-v1 JSONL dump for `inspect`.
//
//	themis-sim inspect <dump.jsonl> [-qp N] [-psn N] [-events]
//	    Reconstruct per-flow timelines from a JSONL trace dump (written by
//	    `trace -json` or a flight recorder), re-check the ledger invariants,
//	    and explain NACK verdicts ("why was this NACK blocked?").
//
//	themis-sim chaos [-seed S] [-seeds N] [-bytes N] [-flows N] [-leaves N] [-spines N] [-hosts N]
//	    [-flight-dir DIR] [-v]
//	    Deterministic fault-injection soak: N seeded scenarios (link flaps,
//	    drop/corruption rates, control-plane loss, ToR reboots, blackholes)
//	    against the hardened cluster, auditing the graceful-degradation
//	    invariants after each. Exits non-zero if any invariant is violated;
//	    rerun with -seed to replay a single violating scenario. -flight-dir
//	    arms a per-scenario flight recorder: a violating seed dumps its
//	    trace ring as <DIR>/flight-seed<S>.jsonl for `inspect`.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"themis"
	"themis/internal/exp"
	"themis/internal/memmodel"
	"themis/internal/obs"
	"themis/internal/packet"
	"themis/internal/rnic"
	"themis/internal/sim"
	"themis/internal/trace"
	"themis/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "motivation":
		err = runMotivation(os.Args[2:])
	case "collective":
		err = runCollective(os.Args[2:])
	case "run":
		err = runScenario(os.Args[2:])
	case "sweep":
		err = runSweep(os.Args[2:])
	case "memory":
		err = runMemory(os.Args[2:])
	case "trace":
		err = runTrace(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "chaos":
		err = runChaos(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "themis-sim: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "themis-sim:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: themis-sim <motivation|collective|run|sweep|memory|trace|inspect|chaos> [flags]")
	fmt.Fprintln(os.Stderr, "run 'themis-sim <command> -h' for command flags")
}

func parseTransport(s string) (rnic.Transport, error) {
	switch s {
	case "nic-sr":
		return rnic.SelectiveRepeat, nil
	case "ideal":
		return rnic.Ideal, nil
	case "gbn":
		return rnic.GoBackN, nil
	default:
		return 0, fmt.Errorf("unknown transport %q (nic-sr|ideal|gbn)", s)
	}
}

func parseLB(s string) (workload.LBMode, error) {
	switch s {
	case "ecmp":
		return workload.ECMP, nil
	case "rps":
		return workload.RandomSpray, nil
	case "adaptive":
		return workload.Adaptive, nil
	case "flowlet":
		return workload.Flowlet, nil
	case "spray-nothemis":
		return workload.SprayNoThemis, nil
	case "themis":
		return workload.Themis, nil
	case "reps":
		return workload.REPS, nil
	case "congestion":
		return workload.CongestionAware, nil
	default:
		return 0, fmt.Errorf("unknown lb mode %q", s)
	}
}

func parsePattern(s string) (themis.Pattern, error) {
	switch s {
	case "allreduce":
		return themis.Allreduce, nil
	case "alltoall":
		return themis.AllToAll, nil
	default:
		return 0, fmt.Errorf("unknown pattern %q (allreduce|alltoall)", s)
	}
}

func runMotivation(args []string) error {
	fs := flag.NewFlagSet("motivation", flag.ExitOnError)
	bytes := fs.Int64("bytes", 100<<20, "message size per flow")
	seed := fs.Int64("seed", 1, "random seed")
	transport := fs.String("transport", "nic-sr", "reliable transport: nic-sr|ideal|gbn")
	series := fs.Bool("series", false, "print full time series (Fig. 1b/1c data)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := parseTransport(*transport)
	if err != nil {
		return err
	}
	res, err := themis.RunMotivation(themis.MotivationConfig{
		Seed: *seed, MessageBytes: *bytes, Transport: tr,
	})
	if err != nil {
		return err
	}
	fmt.Printf("motivation (Fig. 1): transport=%s bytes=%d seed=%d\n", tr, *bytes, *seed)
	fmt.Printf("  completion time          : %.3f ms\n", res.CompletionTime.Seconds()*1e3)
	fmt.Printf("  avg retransmission ratio : %.4f   (Fig. 1b, paper ~0.16)\n", res.AvgRetransRatio)
	fmt.Printf("  avg sending rate         : %.1f Gbps (Fig. 1c, paper ~86)\n", res.AvgRateGbps)
	fmt.Printf("  avg flow throughput      : %.2f Gbps (Fig. 1d, paper 68.09 nic-sr / 95.43 ideal)\n", res.AvgThroughput)
	fmt.Printf("  sender: packets=%d retransmits=%d nacks=%d timeouts=%d\n",
		res.Sender.DataPackets, res.Sender.Retransmits, res.Sender.NacksRx, res.Sender.Timeouts)
	if *series {
		fmt.Println()
		fmt.Print(res.RetransRatio.Table())
		fmt.Println()
		fmt.Print(res.RateGbps.Table())
	}
	return nil
}

func collectiveConfig(fs *flag.FlagSet) (pattern, lbs *string, bytes, seed *int64, ti, td *int64, leaves, spines, hosts *int, bw *float64) {
	pattern = fs.String("pattern", "allreduce", "collective: allreduce|alltoall")
	lbs = fs.String("lb", "themis", "load balancing arm")
	bytes = fs.Int64("bytes", 300<<20, "collective size per group")
	seed = fs.Int64("seed", 1, "random seed")
	ti = fs.Int64("ti", 900, "DCQCN rate-increase timer, microseconds")
	td = fs.Int64("td", 4, "DCQCN rate-decrease interval, microseconds")
	leaves = fs.Int("leaves", 16, "leaf switches")
	spines = fs.Int("spines", 16, "spine switches")
	hosts = fs.Int("hosts", 16, "hosts per leaf")
	bw = fs.Float64("bw", 400, "link bandwidth, Gbps")
	return
}

func runCollective(args []string) error {
	fs := flag.NewFlagSet("collective", flag.ExitOnError)
	pattern, lbs, bytes, seed, ti, td, leaves, spines, hosts, bw := collectiveConfig(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := parsePattern(*pattern)
	if err != nil {
		return err
	}
	lbMode, err := parseLB(*lbs)
	if err != nil {
		return err
	}
	res, err := themis.RunCollective(themis.CollectiveConfig{
		Seed: *seed, Pattern: p, MessageBytes: *bytes,
		Leaves: *leaves, Spines: *spines, HostsPerLeaf: *hosts,
		Bandwidth: int64(*bw * 1e9),
		LB:        lbMode,
		TI:        sim.Duration(*ti) * sim.Microsecond,
		TD:        sim.Duration(*td) * sim.Microsecond,
	})
	if err != nil {
		return err
	}
	fmt.Printf("collective (Fig. 5): pattern=%s lb=%s bytes=%d (TI,TD)=(%d,%d)us\n",
		p, lbMode, *bytes, *ti, *td)
	fmt.Printf("  tail completion time : %.3f ms\n", res.TailCCT.Seconds()*1e3)
	fmt.Printf("  retransmission ratio : %.4f\n", res.RetransRatio())
	fmt.Printf("  sender: packets=%d retransmits=%d nacks=%d cnps=%d timeouts=%d\n",
		res.Sender.DataPackets, res.Sender.Retransmits, res.Sender.NacksRx, res.Sender.CnpsRx, res.Sender.Timeouts)
	if lbMode == workload.Themis {
		fmt.Printf("  themis: sprayed=%d blocked=%d forwarded=%d compensated=%d\n",
			res.Middleware.Sprayed, res.Middleware.NacksBlocked, res.Middleware.NacksForwarded, res.Middleware.Compensations)
	}
	return nil
}

func parseWorkload(s string) (exp.Workload, error) {
	switch exp.Workload(s) {
	case exp.Motivation, exp.Collective, exp.Incast, exp.Chaos, exp.Churn, exp.Convergence, exp.Spray:
		return exp.Workload(s), nil
	default:
		return "", fmt.Errorf("unknown workload %q (motivation|collective|incast|chaos|churn|convergence|spray)", s)
	}
}

// writeReport serializes trials to path as a BENCH-style report artifact.
func writeReport(name, path string, trials []exp.Trial) error {
	b, err := exp.NewReport(name, trials).JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d trials)\n", path, len(trials))
	return nil
}

func printTrial(t exp.Trial) {
	if t.Err != "" {
		fmt.Printf("%-40s ERROR: %s\n", t.Name, t.Err)
		return
	}
	fmt.Printf("%-40s cct=%10.3fms retrans=%.4f timeouts=%d events=%d\n",
		t.Name, t.CCTMillis, t.RetransRatio, t.Sender.Timeouts, t.Engine.EventsExecuted)
	for _, v := range t.Violations {
		fmt.Printf("  VIOLATION: %s\n", v)
	}
	if t.FlightDump != "" {
		fmt.Printf("  flight dump: %s\n", t.FlightDump)
	}
}

func runScenario(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	wl := fs.String("workload", "collective", "workload: motivation|collective|incast|chaos|churn|convergence|spray")
	pattern := fs.String("pattern", "allreduce", "collective: allreduce|alltoall")
	lbs := fs.String("lb", "themis", "load balancing arm")
	repsCache := fs.Int("reps-cache", 0, "reps: entropy-cache ring capacity (0 = default)")
	pathBuckets := fs.Int("path-buckets", 0, "congestion: per-path entropy buckets (0 = default)")
	transport := fs.String("transport", "nic-sr", "reliable transport: nic-sr|ideal|gbn")
	bytes := fs.Int64("bytes", 0, "message/collective size (0 = workload default)")
	seed := fs.Int64("seed", 1, "random seed")
	leaves := fs.Int("leaves", 0, "leaf switches (0 = workload default)")
	spines := fs.Int("spines", 0, "spine switches")
	hosts := fs.Int("hosts", 0, "hosts per leaf")
	bw := fs.Float64("bw", 0, "link bandwidth, Gbps")
	shards := fs.Int("shards", 0, "space-parallel engine shards (0 = classic single engine; results are byte-identical for any value)")
	fatTreeK := fs.Int("fattree-k", 0, "spray: fat-tree radix k (0 = workload default)")
	qps := fs.Int("qps", 0, "churn: total flows opened over the run (0 = workload default)")
	concurrency := fs.Int("concurrency", 0, "churn: flows open at a time (0 = workload default)")
	faults := fs.Bool("faults", false, "churn: inject seeded ToR reboots and a link flap")
	tableBudget := fs.Int("table-budget", 0, "flow-table budget per Themis instance, bytes (0 = unbounded)")
	idleTimeout := fs.Int64("idle-timeout", 0, "evict flow-table entries idle this long, microseconds (0 = off)")
	relearn := fs.Bool("relearn", false, "re-register evicted/lost flows from live data packets")
	distributed := fs.Bool("distributed", false, "run the per-switch BGP-style routing plane instead of the oracle")
	convergenceDelay := fs.Int64("convergence-delay", 0, "per-hop routing-message delay, microseconds (implies -distributed when > 0)")
	drain := fs.Bool("drain", false, "convergence: append a maintenance drain to the fault schedule")
	jsonOut := fs.String("json", "", "write the trial as a JSON report to this path")
	metrics := fs.Bool("metrics", false, "snapshot the metrics registry into the trial record")
	flightDir := fs.String("flight-dir", "", "arm a flight recorder; dump a JSONL trace here on failure")
	pf := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := parseWorkload(*wl)
	if err != nil {
		return err
	}
	p, err := parsePattern(*pattern)
	if err != nil {
		return err
	}
	lbMode, err := parseLB(*lbs)
	if err != nil {
		return err
	}
	tr, err := parseTransport(*transport)
	if err != nil {
		return err
	}
	// The chaos workload's LB arm is opt-in (see exp.Scenario.LBArmed): arm it
	// exactly when the user passed -lb explicitly.
	lbArmed := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "lb" {
			lbArmed = true
		}
	})
	sc := exp.Scenario{
		Workload: w, Seed: *seed, Shards: *shards,
		Pattern: p, LB: lbMode, LBArmed: lbArmed, Transport: tr,
		RepsCache: *repsCache, PathBuckets: *pathBuckets,
		MessageBytes: *bytes,
		Leaves:       *leaves, Spines: *spines, HostsPerLeaf: *hosts,
		FatTreeK:  *fatTreeK,
		Bandwidth: int64(*bw * 1e9),
		QPs:       *qps, Concurrency: *concurrency, Faults: *faults,

		DistributedRouting: *distributed || *convergenceDelay > 0,
		ConvergenceDelay:   sim.Duration(*convergenceDelay) * sim.Microsecond,
		Drain:              *drain,
	}
	sc.Themis.TableBudgetBytes = *tableBudget
	sc.Themis.IdleTimeout = sim.Duration(*idleTimeout) * sim.Microsecond
	sc.Themis.Relearn = *relearn
	if _, err := pf.start(); err != nil {
		return err
	}
	trial := exp.RunObserved(sc, exp.Obs{Metrics: *metrics, FlightDir: *flightDir})
	if err := pf.stop(); err != nil {
		return err
	}
	printTrial(trial)
	if trial.Metrics != nil {
		printSnapshot(trial.Metrics)
	}
	if trial.Err != "" {
		return fmt.Errorf("scenario failed: %s", trial.Err)
	}
	if *jsonOut != "" {
		return writeReport(trial.Name, *jsonOut, []exp.Trial{trial})
	}
	return nil
}

// printSnapshot renders a metrics-registry snapshot (already sorted by name).
func printSnapshot(s *obs.Snapshot) {
	fmt.Println("metrics:")
	for _, c := range s.Counters {
		fmt.Printf("  %-32s %g\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Printf("  %-32s %g\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Printf("  %-32s n=%d mean=%.2f p50=%.2f p99=%.2f max=%.2f\n",
			h.Name, h.Count, h.Mean, h.P50, h.P99, h.Max)
	}
}

func runSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	gridName := fs.String("grid", "fig5", "scenario grid: fig5|fig1|smoke|chaos|churn|convergence|spray|reps|queue-factor|path-subset|loss-recovery")
	pattern := fs.String("pattern", "allreduce", "collective: allreduce|alltoall (fig5)")
	bytes := fs.Int64("bytes", 300<<20, "collective size per group (fig5) / message size (fig1)")
	seed := fs.Int64("seed", 1, "random seed (first seed for multi-seed grids)")
	seeds := fs.Int("seeds", 1, "seed count (fig1, smoke, chaos)")
	parallel := fs.Int("parallel", 1, "worker pool size")
	shards := fs.Int("shards", 0, "space-parallel engine shards per trial (0 = classic single engine; reports are byte-identical for any value)")
	jsonOut := fs.String("json", "", "write the aggregated report JSON to this path")
	metrics := fs.Bool("metrics", false, "snapshot a per-trial metrics registry into each record")
	flightDir := fs.String("flight-dir", "", "arm per-trial flight recorders; dump JSONL traces here on failure")
	sched := fs.String("sched", "wheel", "event scheduler backend: wheel|heap (the heap is the differential oracle; reports are byte-identical under both)")
	pf := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *sched {
	case "wheel":
		sim.SetDefaultScheduler(sim.SchedulerWheel)
	case "heap":
		sim.SetDefaultScheduler(sim.SchedulerHeap)
	default:
		return fmt.Errorf("unknown scheduler %q (wheel|heap)", *sched)
	}
	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = *seed + int64(i)
	}
	var grid []exp.Scenario
	switch *gridName {
	case "fig5":
		p, err := parsePattern(*pattern)
		if err != nil {
			return err
		}
		grid = exp.Fig5Grid(*seed, *bytes, p)
	case "fig1":
		b := *bytes
		if b == 300<<20 {
			b = 100 << 20 // the motivation study's default message size
		}
		grid = exp.Fig1Grid(b, seedList...)
	case "smoke":
		grid = exp.SmokeGrid(seedList...)
	case "chaos":
		grid = exp.ChaosGrid(*seed, *seeds)
	case "churn":
		grid = exp.ChurnGrid(*seed, *seeds)
	case "convergence":
		grid = exp.ConvergenceGrid(*seed, *seeds)
	case "spray":
		grid = exp.SprayGrid(seedList...)
	case "reps":
		grid = exp.RepsGrid(*seed, *seeds)
	case "queue-factor":
		grid = exp.QueueFactorGrid(*seed, []float64{0.05, 0.2, 0.5, 1.5, 3.0})
	case "path-subset":
		grid = exp.PathSubsetGrid(*seed, []int{1, 2, 4, 8, 16})
	case "loss-recovery":
		grid = exp.LossRecoveryGrid(*seed)
	default:
		return fmt.Errorf("unknown grid %q", *gridName)
	}
	for i := range grid {
		grid[i].Shards = *shards
	}

	if _, err := pf.start(); err != nil {
		return err
	}
	start := time.Now()
	trials := exp.Runner{
		Parallel: *parallel,
		Obs:      exp.Obs{Metrics: *metrics, FlightDir: *flightDir},
	}.Run(grid)
	elapsed := time.Since(start)
	if err := pf.stop(); err != nil {
		return err
	}

	fmt.Printf("sweep %s: %d scenarios, parallel=%d, wall=%.2fs\n", *gridName, len(grid), *parallel, elapsed.Seconds())
	if *gridName == "fig5" {
		printFig5Table(trials)
	} else {
		for _, t := range trials {
			printTrial(t)
		}
	}
	failed := 0
	for _, t := range trials {
		if t.Err != "" {
			failed++
		}
	}
	if *jsonOut != "" {
		if err := writeReport(*gridName, *jsonOut, trials); err != nil {
			return err
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d/%d scenarios failed", failed, len(trials))
	}
	return nil
}

// printFig5Table renders the Fig. 5 matrix from its trials (settings × arms,
// in grid order).
func printFig5Table(trials []exp.Trial) {
	arms := themis.Fig5Arms()
	fmt.Printf("%-12s %10s %10s %10s %12s\n", "(TI,TD) us", "ecmp", "adaptive", "themis", "themis-vs-AR")
	for si, s := range themis.PaperDCQCNSettings() {
		row := make([]float64, len(arms))
		for ai := range arms {
			t := trials[si*len(arms)+ai]
			if t.Err != "" {
				fmt.Printf("  %s: ERROR: %s\n", t.Name, t.Err)
				return
			}
			row[ai] = t.CCTMillis
		}
		red := (row[1] - row[2]) / row[1] * 100
		fmt.Printf("(%d,%d)%*s %10.3f %10.3f %10.3f %11.1f%%\n",
			int64(s.TI.Microseconds()), int64(s.TD.Microseconds()),
			12-len(fmt.Sprintf("(%d,%d)", int64(s.TI.Microseconds()), int64(s.TD.Microseconds()))), "",
			row[0], row[1], row[2], red)
	}
}

func runChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "first scenario seed")
	seeds := fs.Int("seeds", 50, "number of consecutive seeds to run")
	bytes := fs.Int64("bytes", 2<<20, "message size per flow")
	flows := fs.Int("flows", 0, "cross-rack flows (0 = one per host)")
	leaves := fs.Int("leaves", 3, "leaf switches")
	spines := fs.Int("spines", 3, "spine switches")
	hosts := fs.Int("hosts", 2, "hosts per leaf")
	verbose := fs.Bool("v", false, "print every scenario, not just violations")
	flightDir := fs.String("flight-dir", "", "arm per-scenario flight recorders; dump JSONL traces here on violation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt := themis.ChaosOptions{
		Leaves: *leaves, Spines: *spines, HostsPerLeaf: *hosts,
		Flows: *flows, MessageBytes: *bytes,
		FlightDir: *flightDir,
	}
	results, err := themis.ChaosSoak(*seed, *seeds, opt)
	if err != nil {
		return err
	}
	violated := 0
	for _, res := range results {
		bad := len(res.Violations) > 0
		if bad {
			violated++
		}
		if bad || *verbose {
			fmt.Printf("%v\n", res.Scenario)
			fmt.Printf("  end=%.3fms completions=%d retransmits=%d timeouts=%d\n",
				res.End.Seconds()*1e3, res.Sender.Completions, res.Sender.Retransmits, res.Sender.Timeouts)
			fmt.Printf("  drops: data=%d ctrl=%d link=%d  themis: blocked=%d compensated=%d reboots=%d relearns=%d\n",
				res.Net.DataDrops, res.Net.CtrlDrops, res.Net.LinkDrops,
				res.Middleware.NacksBlocked, res.Middleware.Compensations,
				res.Middleware.Reboots, res.Middleware.Relearns)
			for _, v := range res.Violations {
				fmt.Printf("  VIOLATION: %s\n", v)
			}
			if res.FlightDump != "" {
				fmt.Printf("  flight dump: %s\n", res.FlightDump)
			}
		}
	}
	fmt.Printf("chaos soak: %d scenarios, %d with invariant violations\n", len(results), violated)
	if violated > 0 {
		return fmt.Errorf("%d scenarios violated invariants (replay with -seed <seed> -seeds 1)", violated)
	}
	return nil
}

func runMemory(args []string) error {
	fs := flag.NewFlagSet("memory", flag.ExitOnError)
	paths := fs.Int("paths", 256, "equal-cost paths N_paths")
	bw := fs.Float64("bw", 400, "last-hop bandwidth, Gbps")
	rtt := fs.Int64("rtt", 2, "last-hop RTT, microseconds")
	nics := fs.Int("nics", 16, "NICs per ToR")
	qps := fs.Int("qps", 100, "cross-rack QPs per NIC")
	mtu := fs.Int("mtu", 1500, "MTU bytes")
	factor := fs.Float64("factor", 1.5, "queue expansion factor F")
	k := fs.Int("fattree", 0, "derive N_paths and NICs/ToR from a k-port fat-tree (overrides -paths/-nics)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := memmodel.Params{
		NPaths:    *paths,
		Bandwidth: int64(*bw * 1e9),
		RTTLast:   sim.Duration(*rtt) * sim.Microsecond,
		NNIC:      *nics,
		NQP:       *qps,
		MTU:       *mtu,
		Factor:    *factor,
	}
	if *k > 0 {
		ft := memmodel.FatTree{K: *k}
		p.NPaths = ft.MaxPaths()
		p.NNIC = ft.NICsPerToR()
		fmt.Printf("fat-tree k=%d: %d leaves, %d spines, %d cores, %d hosts\n",
			*k, ft.Leaves(), ft.Spines(), ft.Cores(), ft.Hosts())
	}
	fmt.Print(p.Report())
	return nil
}

func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	qp := fs.Int("qp", 0, "restrict the dump to one QP (0 = all)")
	last := fs.Int("last", 60, "print only the last N events")
	jsonOut := fs.String("json", "", "export the full trace as a JSONL dump to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr := trace.New(1 << 16)
	cl, err := workload.BuildCluster(workload.ClusterConfig{
		Seed: 42, Leaves: 2, Spines: 2, HostsPerLeaf: 4, Bandwidth: 100e9,
		LB: workload.Themis, Tracer: tr,
	})
	if err != nil {
		return err
	}
	done := 0
	for i := 0; i < 4; i++ {
		cl.Conn(packet.NodeID(i), packet.NodeID(4+i)).Send(2<<20, func() { done++ })
	}
	cl.Run(sim.Second)
	if done != 4 {
		return fmt.Errorf("scenario incomplete (%d/4 flows)", done)
	}
	evs := tr.Events()
	if *qp > 0 {
		evs = tr.ByQP(packet.QPID(*qp))
	}
	if len(evs) > *last {
		fmt.Printf("... (%d earlier events elided)\n", len(evs)-*last)
		evs = evs[len(evs)-*last:]
	}
	for _, ev := range evs {
		fmt.Println(ev)
	}
	fmt.Println()
	fmt.Print(tr.Summary())
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		d := obs.NewDump("trace", 42, tr, nil)
		if err := obs.WriteJSONL(f, d); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events)\n", *jsonOut, len(d.Events))
	}
	return nil
}
