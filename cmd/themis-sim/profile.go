package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
)

// profileFlags bundles the profiling options shared by the run and sweep
// subcommands. Zero-valued flags cost nothing; the profiles exist to answer
// "where does a sweep spend its time / memory" without external tooling.
type profileFlags struct {
	cpu   *string
	mem   *string
	pprof *string

	cpuFile *os.File
}

// addProfileFlags registers -cpuprofile, -memprofile and -pprof-addr on fs.
func addProfileFlags(fs *flag.FlagSet) *profileFlags {
	return &profileFlags{
		cpu:   fs.String("cpuprofile", "", "write a CPU profile to this file"),
		mem:   fs.String("memprofile", "", "write a heap profile to this file on exit"),
		pprof: fs.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; port 0 picks one)"),
	}
}

// start begins CPU profiling and the pprof server as requested. It returns
// the bound pprof address ("" when not serving) so callers/tests can connect
// even with port 0. Call stop (always non-nil) when the workload is done.
func (p *profileFlags) start() (addr string, err error) {
	if *p.cpu != "" {
		f, err := os.Create(*p.cpu)
		if err != nil {
			return "", fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return "", fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpuFile = f
	}
	if *p.pprof != "" {
		ln, err := net.Listen("tcp", *p.pprof)
		if err != nil {
			p.stopCPU()
			return "", fmt.Errorf("pprof-addr: %w", err)
		}
		addr = ln.Addr().String()
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", addr)
		go func() {
			// The server lives for the process; Serve only returns on error.
			_ = http.Serve(ln, nil)
		}()
	}
	return addr, nil
}

func (p *profileFlags) stopCPU() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
		p.cpuFile = nil
	}
}

// stop finalizes profiling: flushes the CPU profile and writes the heap
// profile if requested.
func (p *profileFlags) stop() error {
	p.stopCPU()
	if *p.mem != "" {
		f, err := os.Create(*p.mem)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC() // materialize final live-heap state
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}
