package main

import (
	"flag"
	"fmt"
	"os"

	"themis/internal/obs"
	"themis/internal/packet"
)

// runInspect reconstructs per-flow timelines from a JSONL trace dump — the
// offline half of the flight recorder: a violating run dumps its ring, and
// this command answers "what happened to that flow" after the fact.
func runInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	qp := fs.Int("qp", 0, "show only this QP's timeline (0 = all)")
	psn := fs.Int("psn", -1, "explain the Themis verdict for this PSN (requires -qp)")
	events := fs.Bool("events", false, "print the full per-PSN event ledger, not just summaries")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: themis-sim inspect [-qp N] [-psn N] [-events] <dump.jsonl>")
	}
	if *psn >= 0 && *qp == 0 {
		return fmt.Errorf("-psn requires -qp (a PSN is only meaningful within one flow)")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	d, err := obs.ReadJSONL(f)
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(0), err)
	}

	fmt.Printf("dump %s: label=%q seed=%d events=%d/%d recorded", fs.Arg(0), d.Label, d.Seed, len(d.Events), d.Total)
	if d.Truncated() {
		fmt.Printf(" (ring evicted %d oldest)", d.Total-uint64(len(d.Events)))
	}
	fmt.Println()
	for _, v := range d.Violations {
		fmt.Printf("  VIOLATION: %s\n", v)
	}

	qps := obs.QPs(d.Events)
	if *qp > 0 {
		qps = []packet.QPID{packet.QPID(*qp)}
	}
	bad := 0
	for _, id := range qps {
		tl := obs.TimelineFromDump(d, id)
		if *psn >= 0 {
			fmt.Println(tl.ExplainNACK(packet.NewPSN(uint32(*psn))))
			continue
		}
		if *events {
			if err := tl.Format(os.Stdout); err != nil {
				return err
			}
		} else {
			fmt.Printf("flow qp=%d: %d events over %d PSNs\n", id, len(tl.Events), len(tl.Entries))
		}
		for _, v := range tl.CheckInvariants() {
			fmt.Printf("  LEDGER: %s\n", v)
			bad++
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d ledger invariant violations", bad)
	}
	return nil
}
