package main

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// readProfile validates that path holds a pprof profile: gzip-compressed
// (magic 0x1f 0x8b) with a non-empty protobuf payload. A full protobuf parse
// would need the pprof package; the magic + payload check catches the real
// failure modes (file never written, CPU profile not stopped/flushed).
func readProfile(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatalf("%s: not gzip-compressed (pprof profiles are): % x", path, raw[:min(4, len(raw))])
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("%s: bad gzip stream: %v", path, err)
	}
	payload, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("%s: corrupt gzip payload: %v", path, err)
	}
	if len(payload) == 0 {
		t.Fatalf("%s: empty profile payload", path)
	}
	return payload
}

// TestSweepWritesProfiles is the e2e check for the profiling flags: a real
// (small) sweep through the CLI entry point must leave parsable CPU and heap
// profiles behind.
func TestSweepWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	report := filepath.Join(dir, "report.json")
	err := runSweep([]string{
		"-grid", "smoke", "-seeds", "1",
		"-cpuprofile", cpu, "-memprofile", mem, "-json", report,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	readProfile(t, cpu)
	readProfile(t, mem)
	if _, err := os.Stat(report); err != nil {
		t.Fatalf("report not written: %v", err)
	}
}

// TestTraceExportInspectRoundTrip drives trace -json and then inspect on the
// resulting dump — the full offline-debugging loop.
func TestTraceExportInspectRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full trace scenario")
	}
	dump := filepath.Join(t.TempDir(), "dump.jsonl")
	if err := runTrace([]string{"-last", "1", "-json", dump}); err != nil {
		t.Fatalf("trace: %v", err)
	}
	// inspect exits non-nil when any ledger invariant fails, so a clean run
	// doubles as an invariant check over every flow in the dump.
	if err := runInspect([]string{dump}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if err := runInspect([]string{"-qp", "1", "-psn", "0", dump}); err != nil {
		t.Fatalf("inspect -qp -psn: %v", err)
	}
}

// TestRunWithMetricsAndFlightDir covers the run subcommand's observability
// flags: metrics snapshot printed, flight dir accepted (no dump on success).
func TestRunWithMetricsAndFlightDir(t *testing.T) {
	dir := t.TempDir()
	err := runScenario([]string{
		"-workload", "collective", "-bytes", "1048576",
		"-leaves", "2", "-spines", "2", "-hosts", "2", "-bw", "100",
		"-metrics", "-flight-dir", dir,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("successful run must not leave flight dumps, found %v", ents)
	}
}
