module themis

go 1.22
