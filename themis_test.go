package themis_test

import (
	"strings"
	"testing"

	"themis"
)

func TestFacadeMotivation(t *testing.T) {
	res, err := themis.RunMotivation(themis.MotivationConfig{Seed: 1, MessageBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgThroughput <= 0 {
		t.Fatal("no throughput")
	}
}

func TestFacadeCollective(t *testing.T) {
	res, err := themis.RunCollective(themis.CollectiveConfig{
		Seed: 1, Pattern: themis.Allreduce, MessageBytes: 1 << 20,
		Leaves: 4, Spines: 4, HostsPerLeaf: 4, Bandwidth: 100e9, Groups: 2,
		LB: themis.Themis,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TailCCT <= 0 {
		t.Fatal("no tail CCT")
	}
}

func TestFacadeMemoryModel(t *testing.T) {
	m := themis.MemoryModel()
	if m.TotalBytes() != 192512 {
		t.Fatalf("total = %d", m.TotalBytes())
	}
	if !strings.Contains(m.Report(), "M_total") {
		t.Fatal("report malformed")
	}
}

func TestFacadeSettings(t *testing.T) {
	if len(themis.PaperDCQCNSettings()) != 5 {
		t.Fatal("settings")
	}
	arms := themis.Fig5Arms()
	if len(arms) != 3 || arms[0] != themis.ECMP || arms[2] != themis.Themis {
		t.Fatalf("arms = %v", arms)
	}
}

func TestFacadeBuildCluster(t *testing.T) {
	cl, err := themis.BuildCluster(themis.ClusterConfig{
		Seed: 1, Leaves: 2, Spines: 2, HostsPerLeaf: 1, Bandwidth: 100e9,
		LB: themis.Themis,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	cl.Conn(0, 1).Send(100_000, func() { done = true })
	cl.Run(themis.Second)
	if !done {
		t.Fatal("transfer incomplete")
	}
}
