// Benchmarks regenerating every table and figure of the paper. Each
// benchmark builds the corresponding scenario grid and drives it through the
// experiment harness (internal/exp); `go test -bench=. -benchmem` therefore
// doubles as the reproduction harness (see EXPERIMENTS.md for recorded
// outputs). The Fig. 1b/1c time series are emitted by
// `themis-sim motivation -series`; the benchmarks report the scalar averages.
//
// Scale: by default messages are scaled down from the paper (10 MB instead
// of 100 MB for Fig. 1, 3 MB instead of 300 MB for Fig. 5) so the whole
// suite finishes in minutes. Set THEMIS_FULL=1 to run the paper's sizes.
package themis_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"themis"
	"themis/internal/exp"
	"themis/internal/rnic"
)

func fullScale() bool { return os.Getenv("THEMIS_FULL") == "1" }

func fig1Bytes() int64 {
	if fullScale() {
		return 100 << 20
	}
	return 10 << 20
}

func fig5Bytes(pattern themis.Pattern) int64 {
	if fullScale() {
		return 300 << 20
	}
	if pattern == themis.AllToAll {
		// Alltoall splits the group size across G-1 peer messages; below
		// ~12 MB the per-pair messages are too small for the transport
		// dynamics to differentiate the arms (see EXPERIMENTS.md).
		return 12 << 20
	}
	return 3 << 20
}

// benchRunner is the worker pool every benchmark sweep shares: one worker
// per core, since each trial owns a whole engine.
func benchRunner() exp.Runner { return exp.Runner{Parallel: runtime.GOMAXPROCS(0)} }

// mustTrials fails the benchmark on the first errored trial.
func mustTrials(b *testing.B, trials []exp.Trial) []exp.Trial {
	b.Helper()
	for _, t := range trials {
		if t.Err != "" {
			b.Fatalf("%s: %s", t.Name, t.Err)
		}
	}
	return trials
}

// BenchmarkFig1b_RetransRatio regenerates Fig. 1b: the average retransmission
// ratio under random packet spraying + NIC-SR (paper: ≈ 0.16 average; ours is
// lower but decisively non-zero — see EXPERIMENTS.md).
func BenchmarkFig1b_RetransRatio(b *testing.B) {
	grid := []exp.Scenario{exp.Fig1Scenario(1, fig1Bytes(), rnic.SelectiveRepeat)}
	for i := 0; i < b.N; i++ {
		t := mustTrials(b, benchRunner().Run(grid))[0]
		if i == 0 {
			fmt.Printf("\n# Fig 1b: retransmission ratio, NIC-SR + random spraying (series: themis-sim motivation -series)\n")
			fmt.Printf("# average retransmission ratio (all flows): %.4f\n", t.RetransRatio)
		}
		b.ReportMetric(t.RetransRatio, "retrans/pkt")
	}
}

// BenchmarkFig1c_SendRate regenerates Fig. 1c: the average sending rate of
// flow 0→2 (paper: NACK-triggered drops, average ≈ 86 Gbps of 100 Gbps).
func BenchmarkFig1c_SendRate(b *testing.B) {
	grid := []exp.Scenario{exp.Fig1Scenario(1, fig1Bytes(), rnic.SelectiveRepeat)}
	for i := 0; i < b.N; i++ {
		t := mustTrials(b, benchRunner().Run(grid))[0]
		if i == 0 {
			fmt.Printf("\n# Fig 1c: sending rate (flow 0->2), NIC-SR + random spraying (series: themis-sim motivation -series)\n")
			fmt.Printf("# average rate: %.1f Gbps (line rate 100 Gbps)\n", t.AvgRateGbps)
		}
		b.ReportMetric(t.AvgRateGbps, "Gbps")
	}
}

// BenchmarkFig1d_Throughput regenerates Fig. 1d: average flow throughput of
// NIC-SR vs an ideal transport under random spraying (paper: 68.09 vs 95.43
// Gbps, a 0.71 ratio).
func BenchmarkFig1d_Throughput(b *testing.B) {
	grid := exp.Fig1Grid(fig1Bytes(), 1) // [nic-sr, ideal]
	for i := 0; i < b.N; i++ {
		trials := mustTrials(b, benchRunner().Run(grid))
		nicsr, ideal := trials[0], trials[1]
		if i == 0 {
			fmt.Printf("\n# Fig 1d: average throughput (Gbps), NIC-SR vs Ideal reliable transport\n")
			fmt.Printf("nic-sr %.2f\nideal  %.2f\nratio  %.2f (paper: 68.09/95.43 = 0.71)\n",
				nicsr.GoodputGbps, ideal.GoodputGbps, nicsr.GoodputGbps/ideal.GoodputGbps)
		}
		b.ReportMetric(nicsr.GoodputGbps, "Gbps-nicsr")
		b.ReportMetric(ideal.GoodputGbps, "Gbps-ideal")
	}
}

// BenchmarkTable1_MemoryModel regenerates Table 1 and the §4 worked example
// (paper: M_total ≈ 193 KB for a k=32 fat-tree ToR).
func BenchmarkTable1_MemoryModel(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		m := themis.MemoryModel()
		total = m.TotalBytes()
		if i == 0 {
			fmt.Printf("\n%s", m.Report())
		}
	}
	b.ReportMetric(float64(total)/1024, "KB")
}

// fig5 sweeps the Fig. 5 matrix for one pattern through the parallel runner
// and prints the paper's rows.
func fig5(b *testing.B, pattern themis.Pattern, label string) {
	grid := exp.Fig5Grid(1, fig5Bytes(pattern), pattern)
	arms := themis.Fig5Arms()
	for i := 0; i < b.N; i++ {
		trials := mustTrials(b, benchRunner().Run(grid))
		minRed, maxRed := 1.0, 0.0
		for s := 0; s < len(trials); s += len(arms) {
			arCCT, themisCCT := trials[s+1].CCTMillis, trials[s+2].CCTMillis
			red := (arCCT - themisCCT) / arCCT
			if red < minRed {
				minRed = red
			}
			if red > maxRed {
				maxRed = red
			}
		}
		if i == 0 {
			fmt.Printf("\n# Fig 5%s: %s tail completion time (ms), %d MB per group\n", label, pattern, fig5Bytes(pattern)>>20)
			fmt.Printf("%-12s %10s %10s %10s\n", "(TI,TD) us", "ecmp", "adaptive", "themis")
			for j, s := range themis.PaperDCQCNSettings() {
				row := trials[j*len(arms) : (j+1)*len(arms)]
				fmt.Printf("(%d,%d)%*s %10.3f %10.3f %10.3f\n",
					int64(s.TI.Microseconds()), int64(s.TD.Microseconds()),
					12-len(fmt.Sprintf("(%d,%d)", int64(s.TI.Microseconds()), int64(s.TD.Microseconds()))), "",
					row[0].CCTMillis, row[1].CCTMillis, row[2].CCTMillis)
			}
			fmt.Printf("# themis vs adaptive reduction: %.1f%% .. %.1f%%", minRed*100, maxRed*100)
			if pattern == themis.Allreduce {
				fmt.Printf(" (paper: 15.6%% .. 75.3%%)\n")
			} else {
				fmt.Printf(" (paper: 11.5%% .. 40.7%%)\n")
			}
		}
		b.ReportMetric(minRed*100, "minRed%")
		b.ReportMetric(maxRed*100, "maxRed%")
	}
}

// BenchmarkFig5a_Allreduce regenerates Fig. 5a: Allreduce tail CCT across
// DCQCN (TI,TD) settings for ECMP / adaptive routing / Themis.
func BenchmarkFig5a_Allreduce(b *testing.B) { fig5(b, themis.Allreduce, "a") }

// BenchmarkFig5b_Alltoall regenerates Fig. 5b: Alltoall tail CCT across
// DCQCN (TI,TD) settings for ECMP / adaptive routing / Themis.
func BenchmarkFig5b_Alltoall(b *testing.B) { fig5(b, themis.AllToAll, "b") }
