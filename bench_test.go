// Benchmarks regenerating every table and figure of the paper. Each
// benchmark runs the corresponding experiment and prints the same rows or
// series the paper reports; `go test -bench=. -benchmem` therefore doubles
// as the reproduction harness (see EXPERIMENTS.md for recorded outputs).
//
// Scale: by default messages are scaled down from the paper (10 MB instead
// of 100 MB for Fig. 1, 3 MB instead of 300 MB for Fig. 5) so the whole
// suite finishes in minutes. Set THEMIS_FULL=1 to run the paper's sizes.
package themis_test

import (
	"fmt"
	"os"
	"testing"

	"themis"
)

func fullScale() bool { return os.Getenv("THEMIS_FULL") == "1" }

func fig1Bytes() int64 {
	if fullScale() {
		return 100 << 20
	}
	return 10 << 20
}

func fig5Bytes(pattern themis.Pattern) int64 {
	if fullScale() {
		return 300 << 20
	}
	if pattern == themis.AllToAll {
		// Alltoall splits the group size across G-1 peer messages; below
		// ~12 MB the per-pair messages are too small for the transport
		// dynamics to differentiate the arms (see EXPERIMENTS.md).
		return 12 << 20
	}
	return 3 << 20
}

// BenchmarkFig1b_RetransRatio regenerates Fig. 1b: the retransmission ratio
// over time of flow 0→2 under random packet spraying + NIC-SR, and its
// average (paper: ≈ 0.16 average; ours is lower but decisively non-zero —
// see EXPERIMENTS.md).
func BenchmarkFig1b_RetransRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := themis.RunMotivation(themis.MotivationConfig{Seed: 1, MessageBytes: fig1Bytes()})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n# Fig 1b: retransmission ratio over time (flow 0->2), NIC-SR + random spraying\n")
			fmt.Print(sampleSeries(res.RetransRatio.Table(), 24))
			fmt.Printf("# average retransmission ratio (all flows): %.4f\n", res.AvgRetransRatio)
		}
		b.ReportMetric(res.AvgRetransRatio, "retrans/pkt")
	}
}

// BenchmarkFig1c_SendRate regenerates Fig. 1c: the sending rate over time of
// flow 0→2 (paper: NACK-triggered drops, average ≈ 86 Gbps of 100 Gbps).
func BenchmarkFig1c_SendRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := themis.RunMotivation(themis.MotivationConfig{Seed: 1, MessageBytes: fig1Bytes()})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n# Fig 1c: sending rate over time (flow 0->2), NIC-SR + random spraying\n")
			fmt.Print(sampleSeries(res.RateGbps.Table(), 24))
			fmt.Printf("# average rate: %.1f Gbps (line rate 100 Gbps)\n", res.AvgRateGbps)
		}
		b.ReportMetric(res.AvgRateGbps, "Gbps")
	}
}

// BenchmarkFig1d_Throughput regenerates Fig. 1d: average flow throughput of
// NIC-SR vs an ideal transport under random spraying (paper: 68.09 vs 95.43
// Gbps, a 0.71 ratio).
func BenchmarkFig1d_Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nicsr, err := themis.RunMotivation(themis.MotivationConfig{Seed: 1, MessageBytes: fig1Bytes()})
		if err != nil {
			b.Fatal(err)
		}
		ideal, err := themis.RunMotivation(themis.MotivationConfig{
			Seed: 1, MessageBytes: fig1Bytes(), Transport: themis.Ideal,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n# Fig 1d: average throughput (Gbps), NIC-SR vs Ideal reliable transport\n")
			fmt.Printf("nic-sr %.2f\nideal  %.2f\nratio  %.2f (paper: 68.09/95.43 = 0.71)\n",
				nicsr.AvgThroughput, ideal.AvgThroughput, nicsr.AvgThroughput/ideal.AvgThroughput)
		}
		b.ReportMetric(nicsr.AvgThroughput, "Gbps-nicsr")
		b.ReportMetric(ideal.AvgThroughput, "Gbps-ideal")
	}
}

// BenchmarkTable1_MemoryModel regenerates Table 1 and the §4 worked example
// (paper: M_total ≈ 193 KB for a k=32 fat-tree ToR).
func BenchmarkTable1_MemoryModel(b *testing.B) {
	var total int
	for i := 0; i < b.N; i++ {
		m := themis.MemoryModel()
		total = m.TotalBytes()
		if i == 0 {
			fmt.Printf("\n%s", m.Report())
		}
	}
	b.ReportMetric(float64(total)/1024, "KB")
}

// fig5 sweeps the Fig. 5 matrix for one pattern and prints the paper's rows.
func fig5(b *testing.B, pattern themis.Pattern, label string) {
	type cell struct {
		setting themis.DCQCNSetting
		arm     themis.LBMode
		cct     float64 // milliseconds
	}
	for i := 0; i < b.N; i++ {
		var cells []cell
		minRed, maxRed := 1.0, 0.0
		for _, s := range themis.PaperDCQCNSettings() {
			var arCCT, themisCCT float64
			for _, arm := range themis.Fig5Arms() {
				res, err := themis.RunCollective(themis.CollectiveConfig{
					Seed:         1,
					Pattern:      pattern,
					MessageBytes: fig5Bytes(pattern),
					LB:           arm,
					TI:           s.TI,
					TD:           s.TD,
				})
				if err != nil {
					b.Fatal(err)
				}
				ms := res.TailCCT.Seconds() * 1e3
				cells = append(cells, cell{s, arm, ms})
				switch arm {
				case themis.Adaptive:
					arCCT = ms
				case themis.Themis:
					themisCCT = ms
				}
			}
			red := (arCCT - themisCCT) / arCCT
			if red < minRed {
				minRed = red
			}
			if red > maxRed {
				maxRed = red
			}
		}
		if i == 0 {
			fmt.Printf("\n# Fig 5%s: %s tail completion time (ms), %d MB per group\n", label, pattern, fig5Bytes(pattern)>>20)
			fmt.Printf("%-12s %10s %10s %10s\n", "(TI,TD) us", "ecmp", "adaptive", "themis")
			for j := 0; j < len(cells); j += 3 {
				s := cells[j].setting
				fmt.Printf("(%d,%d)%*s %10.3f %10.3f %10.3f\n",
					int64(s.TI.Microseconds()), int64(s.TD.Microseconds()),
					12-len(fmt.Sprintf("(%d,%d)", int64(s.TI.Microseconds()), int64(s.TD.Microseconds()))), "",
					cells[j].cct, cells[j+1].cct, cells[j+2].cct)
			}
			fmt.Printf("# themis vs adaptive reduction: %.1f%% .. %.1f%%", minRed*100, maxRed*100)
			if pattern == themis.Allreduce {
				fmt.Printf(" (paper: 15.6%% .. 75.3%%)\n")
			} else {
				fmt.Printf(" (paper: 11.5%% .. 40.7%%)\n")
			}
		}
		b.ReportMetric(minRed*100, "minRed%")
		b.ReportMetric(maxRed*100, "maxRed%")
	}
}

// BenchmarkFig5a_Allreduce regenerates Fig. 5a: Allreduce tail CCT across
// DCQCN (TI,TD) settings for ECMP / adaptive routing / Themis.
func BenchmarkFig5a_Allreduce(b *testing.B) { fig5(b, themis.Allreduce, "a") }

// BenchmarkFig5b_Alltoall regenerates Fig. 5b: Alltoall tail CCT across
// DCQCN (TI,TD) settings for ECMP / adaptive routing / Themis.
func BenchmarkFig5b_Alltoall(b *testing.B) { fig5(b, themis.AllToAll, "b") }

// sampleSeries thins a long "# header\nt v\n..." table to at most n rows.
func sampleSeries(table string, n int) string {
	lines := splitLines(table)
	if len(lines) <= n+1 {
		return table
	}
	out := lines[0] + "\n"
	step := (len(lines) - 1 + n - 1) / n
	for i := 1; i < len(lines); i += step {
		out += lines[i] + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				lines = append(lines, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
