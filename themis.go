// Package themis is the public façade of the Themis reproduction: a
// discrete-event, packet-level reimplementation of "Enabling Packet Spraying
// over Commodity RNICs with In-Network Support" (Liu, Li, Chen).
//
// Themis is an in-network middleware for ToR switches that makes packet-level
// load balancing safe for commodity RNICs whose NIC-SR transport treats every
// out-of-order arrival as a loss. Themis-S sprays packets deterministically by
// PSN (Eq. 1); Themis-D validates each NACK against the PSNs actually in
// flight on the last hop (Eq. 3), blocks the spurious ones, and re-generates
// NACKs for real losses the RNIC can no longer report (§3.4).
//
// The package re-exports the experiment harness used to regenerate every
// figure and table of the paper:
//
//	res, err := themis.RunMotivation(themis.MotivationConfig{Seed: 1})   // Fig. 1
//	res, err := themis.RunCollective(themis.CollectiveConfig{...})       // Fig. 5
//	fmt.Print(themis.MemoryModel().Report())                             // Table 1 / §4
//
// Lower-level building blocks (the simulator, fabric, RNIC models and the
// middleware itself) live under internal/ and are wired together by
// BuildCluster for custom experiments.
package themis

import (
	"themis/internal/chaos"
	"themis/internal/collective"
	"themis/internal/core"
	"themis/internal/exp"
	"themis/internal/memmodel"
	"themis/internal/packet"
	"themis/internal/rnic"
	"themis/internal/sim"
	"themis/internal/workload"
)

// Version identifies this reproduction release.
const Version = "1.0.0"

// Re-exported configuration and result types. These are aliases, so the full
// field documentation lives on the underlying types.
type (
	// MotivationConfig parameterizes the Fig. 1 motivation experiment.
	MotivationConfig = workload.MotivationConfig
	// MotivationResult carries the Fig. 1 measurements.
	MotivationResult = workload.MotivationResult
	// CollectiveConfig parameterizes a Fig. 5 evaluation cell.
	CollectiveConfig = workload.CollectiveConfig
	// CollectiveResult carries one Fig. 5 data point.
	CollectiveResult = workload.CollectiveResult
	// ClusterConfig describes a custom simulated cluster.
	ClusterConfig = workload.ClusterConfig
	// Cluster is a fully wired simulation instance.
	Cluster = workload.Cluster
	// LBMode selects a load-balancing arm.
	LBMode = workload.LBMode
	// Pattern selects a collective schedule.
	Pattern = collective.Pattern
	// DCQCNSetting is one (TI, TD) column of Fig. 5.
	DCQCNSetting = workload.DCQCNSetting
	// MemoryParams are the Table 1 symbols of the §4 memory model.
	MemoryParams = memmodel.Params
	// ThemisConfig parameterizes the middleware itself.
	ThemisConfig = core.Config
	// Transport selects the RNIC reliable transport.
	Transport = rnic.Transport
	// Duration is a span of virtual time in picoseconds.
	Duration = sim.Duration
	// Time is a virtual-time instant in picoseconds.
	Time = sim.Time
	// NodeID identifies a host (NIC) in the simulated network.
	NodeID = packet.NodeID
	// Conn is a reliable connection (QP pair) between two hosts.
	Conn = workload.Conn
	// ChaosScenario is a seeded fault schedule for the chaos harness.
	ChaosScenario = chaos.Scenario
	// ChaosFault is one scheduled fault of a ChaosScenario.
	ChaosFault = chaos.Fault
	// ChaosOptions parameterizes the chaos scenario harness.
	ChaosOptions = chaos.Options
	// ChaosResult is the audited outcome of one chaos scenario.
	ChaosResult = chaos.Result
	// Scenario declaratively describes one experiment-harness trial.
	Scenario = exp.Scenario
	// Trial is the result record of one scenario run.
	Trial = exp.Trial
	// Runner executes a grid of scenarios across a worker pool.
	Runner = exp.Runner
	// Report is the serialized BENCH_<name>.json artifact of one sweep.
	Report = exp.Report
)

// Load-balancing arms.
const (
	ECMP          = workload.ECMP
	RandomSpray   = workload.RandomSpray
	Adaptive      = workload.Adaptive
	Flowlet       = workload.Flowlet
	SprayNoThemis = workload.SprayNoThemis
	Themis        = workload.Themis
)

// Collective patterns.
const (
	Allreduce = collective.RingAllreduce
	AllToAll  = collective.AllToAll
)

// RNIC transports.
const (
	SelectiveRepeat = rnic.SelectiveRepeat
	GoBackN         = rnic.GoBackN
	Ideal           = rnic.Ideal
)

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// RunMotivation executes the Fig. 1 motivation experiment.
func RunMotivation(cfg MotivationConfig) (*MotivationResult, error) {
	return workload.RunMotivation(cfg)
}

// RunCollective executes one Fig. 5 evaluation cell.
func RunCollective(cfg CollectiveConfig) (*CollectiveResult, error) {
	return workload.RunCollective(cfg)
}

// BuildCluster assembles a custom simulated cluster.
func BuildCluster(cfg ClusterConfig) (*Cluster, error) {
	return workload.BuildCluster(cfg)
}

// MemoryModel returns the §4 memory model with the paper's Table 1 values.
func MemoryModel() MemoryParams { return memmodel.PaperDefaults() }

// PaperDCQCNSettings returns the five Fig. 5 DCQCN (TI, TD) configurations.
func PaperDCQCNSettings() []DCQCNSetting { return workload.PaperDCQCNSettings() }

// RunChaosScenario executes one deterministic fault-injection scenario on
// the hardened cluster and audits the graceful-degradation invariants.
func RunChaosScenario(sc ChaosScenario, opt ChaosOptions) (*ChaosResult, error) {
	return chaos.RunScenario(sc, opt)
}

// ChaosSoak generates and runs count seeded scenarios starting at seed
// first; see internal/chaos.Soak.
func ChaosSoak(first int64, count int, opt ChaosOptions) ([]*ChaosResult, error) {
	return chaos.Soak(first, count, opt)
}

// Fig5Arms returns the three systems Fig. 5 compares, in paper order.
func Fig5Arms() []LBMode { return workload.Fig5Arms() }

// RunScenario executes one declarative scenario through the experiment
// harness on a private engine; failures are reported in Trial.Err.
func RunScenario(sc Scenario) Trial { return exp.Run(sc) }

// NewReport aggregates trials into a named BENCH artifact; see internal/exp.
func NewReport(name string, trials []Trial) *Report { return exp.NewReport(name, trials) }
